package store_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"revtr/internal/obs"
	"revtr/internal/store"
)

type rec struct {
	ID  int    `json:"id"`
	Dst string `json:"dst"`
	N   int    `json:"n"`
}

func appendRec(t *testing.T, l *store.Log, n int) uint64 {
	t.Helper()
	id, err := l.Append(func(id uint64) any {
		return rec{ID: int(id), Dst: fmt.Sprintf("10.0.0.%d", n%250), N: n}
	})
	if err != nil {
		t.Fatal(err)
	}
	return id
}

// snapshotAll renders the live record set as one byte blob for
// bit-identity comparisons across restarts.
func snapshotAll(t *testing.T, l *store.Log) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := l.Replay(func(id uint64, data []byte) error {
		fmt.Fprintf(&buf, "%d\t%s\n", id, data)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestMemoryOnlyAppendGet(t *testing.T) {
	l, err := store.Open("", store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if id := appendRec(t, l, i); id != uint64(i) {
			t.Fatalf("id = %d, want %d", id, i)
		}
	}
	var r rec
	ok, err := l.Get(7, &r)
	if err != nil || !ok {
		t.Fatalf("get: %v %v", ok, err)
	}
	if r.ID != 7 || r.N != 7 {
		t.Fatalf("record = %+v", r)
	}
	if ok, _ := l.Get(99, nil); ok {
		t.Fatal("phantom record")
	}
	if l.Len() != 10 || l.NextID() != 10 {
		t.Fatalf("len=%d next=%d", l.Len(), l.NextID())
	}
}

func TestRestartRecoversIdenticalSet(t *testing.T) {
	dir := t.TempDir()
	l, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		appendRec(t, l, i)
	}
	before := snapshotAll(t, l)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := snapshotAll(t, l2); !bytes.Equal(got, before) {
		t.Fatalf("recovered set differs:\nbefore:\n%s\nafter:\n%s", before, got)
	}
	// IDs keep growing from where they left off.
	if id := appendRec(t, l2, 100); id != 100 {
		t.Fatalf("post-restart id = %d, want 100", id)
	}
}

func TestRecoveryAcrossCompaction(t *testing.T) {
	dir := t.TempDir()
	// A tiny WAL cap forces several compactions over 50 appends.
	l, err := store.Open(dir, store.Options{MaxWALBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		appendRec(t, l, i)
	}
	before := snapshotAll(t, l)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := store.Open(dir, store.Options{MaxWALBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := snapshotAll(t, l2); !bytes.Equal(got, before) {
		t.Fatal("compacted store did not recover the identical set")
	}
}

func TestTornWALTailTolerated(t *testing.T) {
	dir := t.TempDir()
	l, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		appendRec(t, l, i)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash mid-append: chop the last 9 bytes off the WAL,
	// leaving a malformed final line.
	walPath := filepath.Join(dir, "wal.jsonl")
	raw, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(walPath, raw[:len(raw)-9], 0o644); err != nil {
		t.Fatal(err)
	}

	o := obs.New()
	l2, err := store.Open(dir, store.Options{Obs: o})
	if err != nil {
		t.Fatalf("torn tail rejected: %v", err)
	}
	defer l2.Close()
	// Every fully written record before the torn line survives.
	if l2.Len() != 19 {
		t.Fatalf("recovered %d records, want 19", l2.Len())
	}
	var r rec
	if ok, err := l2.Get(18, &r); !ok || err != nil || r.N != 18 {
		t.Fatalf("record 18: ok=%v err=%v r=%+v", ok, err, r)
	}
	if o.Counter("store_torn_tail_total").Value() != 1 {
		t.Fatal("torn tail not counted")
	}
	// Appends continue from the recovered frontier.
	if id := appendRec(t, l2, 19); id != 19 {
		t.Fatalf("post-torn id = %d, want 19", id)
	}
}

func TestRetentionCapAdvancesBaseKeepsIDs(t *testing.T) {
	l, err := store.Open("", store.Options{MaxRecords: 10})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		appendRec(t, l, i)
	}
	if l.Len() != 10 || l.Base() != 15 {
		t.Fatalf("len=%d base=%d", l.Len(), l.Base())
	}
	if _, err := l.Get(3, nil); err != store.ErrDropped {
		t.Fatalf("dropped record: err=%v", err)
	}
	var r rec
	if ok, err := l.Get(24, &r); !ok || err != nil || r.N != 24 {
		t.Fatalf("surviving record moved: %+v %v", r, err)
	}
	// Restarting a capped durable store applies the same cap.
	dir := t.TempDir()
	ld, err := store.Open(dir, store.Options{MaxRecords: 10})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		appendRec(t, ld, i)
	}
	before := snapshotAll(t, ld)
	ld.Close()
	ld2, err := store.Open(dir, store.Options{MaxRecords: 10})
	if err != nil {
		t.Fatal(err)
	}
	defer ld2.Close()
	if got := snapshotAll(t, ld2); !bytes.Equal(got, before) {
		t.Fatalf("capped recovery differs:\n%s\nvs\n%s", before, got)
	}
}

func TestWALBytesMetricAndCompactionReset(t *testing.T) {
	o := obs.New()
	dir := t.TempDir()
	l, err := store.Open(dir, store.Options{Obs: o})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	appendRec(t, l, 1)
	if o.Gauge("store_wal_bytes").Value() == 0 || l.WALBytes() == 0 {
		t.Fatal("wal bytes not tracked")
	}
	if err := l.Compact(); err != nil {
		t.Fatal(err)
	}
	if o.Gauge("store_wal_bytes").Value() != 0 || l.WALBytes() != 0 {
		t.Fatal("compaction did not reset wal bytes")
	}
	if o.Counter("store_compactions_total").Value() != 1 {
		t.Fatal("compaction not counted")
	}
}

func TestConcurrentAppendsAssignUniqueIDs(t *testing.T) {
	l, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	const g, per = 8, 50
	var wg sync.WaitGroup
	ids := make([][]uint64, g)
	for i := 0; i < g; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < per; j++ {
				id, err := l.Append(func(id uint64) any { return rec{ID: int(id), N: j} })
				if err != nil {
					t.Error(err)
					return
				}
				ids[i] = append(ids[i], id)
			}
		}(i)
	}
	wg.Wait()
	seen := map[uint64]bool{}
	for _, s := range ids {
		for _, id := range s {
			if seen[id] {
				t.Fatalf("duplicate id %d", id)
			}
			seen[id] = true
		}
	}
	if len(seen) != g*per || l.Len() != g*per {
		t.Fatalf("ids=%d len=%d", len(seen), l.Len())
	}
	// Every record's embedded ID matches its assigned ID.
	if err := l.Replay(func(id uint64, data []byte) error {
		var r rec
		if err := json.Unmarshal(data, &r); err != nil {
			return err
		}
		if uint64(r.ID) != id {
			t.Fatalf("record %d embeds id %d", id, r.ID)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestTornTailTruncatedBeforeNewAppends is the double-crash regression:
// records appended after a torn-tail recovery must survive the next
// restart. Recovery that merely stopped replay at the tear but left the
// WAL intact would append new records *behind* the torn line (O_APPEND),
// where a second replay never reaches them — acknowledged, even fsynced,
// writes would vanish and their IDs be silently reassigned.
func TestTornTailTruncatedBeforeNewAppends(t *testing.T) {
	dir := t.TempDir()
	l, err := store.Open(dir, store.Options{Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		appendRec(t, l, i)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Crash mid-append: the last record's line is torn.
	walPath := filepath.Join(dir, "wal.jsonl")
	raw, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(walPath, raw[:len(raw)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	// First restart: ids 0 and 1 recover; id 2 (torn) is gone and is
	// reassigned to the next append, which the caller sees acknowledged
	// and fsynced.
	l2, err := store.Open(dir, store.Options{Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	if l2.Len() != 2 {
		t.Fatalf("recovered %d records, want 2", l2.Len())
	}
	if id := appendRec(t, l2, 2); id != 2 {
		t.Fatalf("post-recovery id = %d, want 2", id)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}

	// Second restart: the post-recovery record must still be there, with
	// no torn tail in sight (recovery compacted the tear away).
	o := obs.New()
	l3, err := store.Open(dir, store.Options{Obs: o})
	if err != nil {
		t.Fatal(err)
	}
	defer l3.Close()
	if l3.Len() != 3 || l3.NextID() != 3 {
		t.Fatalf("len=%d next=%d, want 3/3: post-recovery append lost", l3.Len(), l3.NextID())
	}
	var r rec
	if ok, err := l3.Get(2, &r); !ok || err != nil || r.N != 2 {
		t.Fatalf("record 2 after double restart: ok=%v err=%v r=%+v", ok, err, r)
	}
	if o.Counter("store_torn_tail_total").Value() != 0 {
		t.Fatal("second restart still sees a torn tail; recovery did not truncate the WAL")
	}
}

// TestAppendCompactionFailureKeepsRecord: when the post-append
// compaction fails, the append itself already succeeded — Append must
// return the valid consumed id next to an error wrapping ErrCompaction,
// so callers do not retry (and duplicate) a durably written record.
func TestAppendCompactionFailureKeepsRecord(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "s")
	// A 1-byte WAL cap makes every append attempt a compaction.
	l, err := store.Open(dir, store.Options{MaxWALBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	appendRec(t, l, 0) // compacts successfully

	// Break compaction: the directory vanishes, so the snapshot temp
	// file cannot be created; the WAL fd itself still accepts writes.
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	id, err := l.Append(func(id uint64) any { return rec{ID: int(id), N: 1} })
	if !errors.Is(err, store.ErrCompaction) {
		t.Fatalf("err = %v, want ErrCompaction", err)
	}
	if id != 1 {
		t.Fatalf("id = %d, want 1 (the append succeeded)", id)
	}
	var r rec
	if ok, err := l.Get(1, &r); !ok || err != nil || r.N != 1 {
		t.Fatalf("record written before failed compaction lost: ok=%v err=%v r=%+v", ok, err, r)
	}
	if l.NextID() != 2 {
		t.Fatalf("next id = %d, want 2", l.NextID())
	}
}
