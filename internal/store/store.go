// Package store is the durable measurement archive behind the service:
// an append-only log of JSON records with monotonically increasing IDs,
// persisted as a JSON-lines write-ahead log plus a periodic snapshot.
// A restarted server replays snapshot + WAL and recovers the identical
// record set — same IDs, same bytes — which is what lets measurement
// IDs handed to clients survive a crash (the paper's open service keeps
// revtrs retrievable for a day; Insight 1.4).
//
// Durability model:
//
//   - Append marshals the record once and writes one line
//     `{"id":N,"data":<record>}` to wal.jsonl (optionally fsynced).
//   - When the WAL grows past MaxWALBytes, the log compacts: the live
//     records are written to snapshot.jsonl.tmp, renamed into place
//     atomically, and the WAL is truncated.
//   - Recovery loads the snapshot, then replays the WAL on top. A
//     truncated tail line (the torn write of a crash mid-append) is
//     tolerated: replay stops at the first malformed line, and Open
//     then compacts immediately — the recovered set is snapshotted and
//     the WAL restarted empty — so new appends can never land behind
//     the torn garbage (where a later restart would stop replay before
//     them and silently drop acknowledged writes).
//   - MaxRecords caps the live set; exceeding it drops the oldest
//     records (the base ID advances, so surviving IDs never move).
//
// A Log opened with dir == "" is memory-only: same API, same IDs, no
// files — the mode unit tests and the default in-process registry use.
package store

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"revtr/internal/obs"
)

// Options tunes durability and retention.
type Options struct {
	// MaxWALBytes triggers compaction (snapshot + WAL truncate) when the
	// WAL file exceeds it. <= 0 means the default 4 MiB.
	MaxWALBytes int64
	// MaxRecords caps the live record set; the oldest records are
	// dropped (base advances) when exceeded. <= 0 means unbounded.
	MaxRecords int
	// Sync fsyncs the WAL after every append. Slow but loses nothing;
	// off by default (a crash can lose the last buffered appends, never
	// corrupt earlier ones).
	Sync bool
	// Obs, when set, receives store metrics (store_wal_bytes,
	// store_records, store_appends_total, store_compactions_total,
	// store_dropped_total, store_replayed_total, store_torn_tail_total).
	Obs *obs.Registry
}

// defaultMaxWALBytes bounds WAL growth between compactions.
const defaultMaxWALBytes = 4 << 20

const (
	walName      = "wal.jsonl"
	snapName     = "snapshot.jsonl"
	snapTempName = "snapshot.jsonl.tmp"
)

// ErrDropped is returned by Get for IDs older than the retention cap.
var ErrDropped = errors.New("store: record dropped by retention cap")

// ErrCompaction wraps a failure of the post-append compaction. The
// append itself already succeeded — the record is durably in the WAL
// and the id returned next to this error is valid and consumed — so
// callers must not retry the append; compaction is retried when the
// next append crosses the WAL cap.
var ErrCompaction = errors.New("store: compaction failed")

// walRecord is one WAL/snapshot line.
type walRecord struct {
	ID   uint64          `json:"id"`
	Data json.RawMessage `json:"data"`
}

// snapHeader is the first line of a snapshot file.
type snapHeader struct {
	Base uint64 `json:"base"`
	N    int    `json:"n"`
}

// Log is the append-only record log. Safe for concurrent use.
type Log struct {
	mu   sync.Mutex
	dir  string
	opts Options

	base uint64   // ID of recs[0]
	recs [][]byte // marshalled record JSON, index i holds ID base+i

	wal      *os.File
	walBytes int64

	mWALBytes    *obs.Gauge
	mRecords     *obs.Gauge
	mAppends     *obs.Counter
	mCompactions *obs.Counter
	mDropped     *obs.Counter
	mReplayed    *obs.Counter
	mTorn        *obs.Counter

	// Replay outcomes are also kept as plain fields so SetObs can
	// republish them: recovery runs in Open, typically before the
	// registry that will serve /metrics exists.
	nReplayed uint64
	nTorn     uint64
}

// bindObs hoists every metric handle from o (nil disables them; the
// handles stay usable either way). The single registration site per
// name keeps the obsnames contract.
func (l *Log) bindObs(o *obs.Registry) {
	l.mWALBytes = o.Gauge("store_wal_bytes")
	l.mRecords = o.Gauge("store_records")
	l.mAppends = o.Counter("store_appends_total")
	l.mCompactions = o.Counter("store_compactions_total")
	l.mDropped = o.Counter("store_dropped_total")
	l.mReplayed = o.Counter("store_replayed_total")
	l.mTorn = o.Counter("store_torn_tail_total")
}

// SetObs re-homes the log's metrics onto o and republishes the current
// gauge values plus the recovery counters (replayed records, torn
// tails), which predate any registry handed in here. The service uses
// this to pull an archive opened before the registry existed into the
// registry's /metrics namespace; the remaining counters restart from
// zero in the new registry.
func (l *Log) SetObs(o *obs.Registry) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.bindObs(o)
	l.mWALBytes.Set(l.walBytes)
	l.mRecords.Set(int64(len(l.recs)))
	l.mReplayed.Add(l.nReplayed)
	l.mTorn.Add(l.nTorn)
}

// Open opens (or creates) a log rooted at dir, replaying any snapshot
// and WAL found there. dir == "" opens a memory-only log.
func Open(dir string, opts Options) (*Log, error) {
	if opts.MaxWALBytes <= 0 {
		opts.MaxWALBytes = defaultMaxWALBytes
	}
	l := &Log{dir: dir, opts: opts}
	l.bindObs(opts.Obs)
	if dir == "" {
		return l, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if err := l.recover(); err != nil {
		return nil, err
	}
	wal, err := os.OpenFile(filepath.Join(dir, walName), os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	st, err := wal.Stat()
	if err != nil {
		wal.Close()
		return nil, fmt.Errorf("store: %w", err)
	}
	l.wal = wal
	l.walBytes = st.Size()
	if l.nTorn > 0 {
		// Replay stopped before the end of a file (torn tail or damaged
		// ID sequence). The WAL still holds the unreadable bytes, and
		// O_APPEND would write new records *after* them — a second
		// restart would stop replay at the old tear and silently lose
		// every acknowledged post-recovery append, then reassign their
		// IDs. Compact now: snapshot the recovered set and restart the
		// WAL empty, so the tear is gone before the first new append.
		if err := l.compactLocked(); err != nil {
			wal.Close()
			return nil, err
		}
	}
	l.mWALBytes.Set(l.walBytes)
	l.mRecords.Set(int64(len(l.recs)))
	return l, nil
}

// recover loads snapshot then WAL into memory. Torn WAL tails (a
// malformed or truncated last line) end the replay without error.
func (l *Log) recover() error {
	if err := l.loadLines(filepath.Join(l.dir, snapName), true); err != nil {
		return err
	}
	if err := l.loadLines(filepath.Join(l.dir, walName), false); err != nil {
		return err
	}
	l.enforceCap()
	l.nReplayed = uint64(len(l.recs))
	l.mReplayed.Add(l.nReplayed)
	return nil
}

// loadLines replays one JSON-lines file. Snapshot files carry a header
// line; both kinds tolerate a torn final line.
func (l *Log) loadLines(path string, snapshot bool) error {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 64<<10), 64<<20)
	first := snapshot
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		if first {
			first = false
			var h snapHeader
			if err := json.Unmarshal(line, &h); err != nil {
				return fmt.Errorf("store: corrupt snapshot header in %s: %w", path, err)
			}
			l.base = h.Base
			l.recs = l.recs[:0]
			continue
		}
		var rec walRecord
		if err := json.Unmarshal(line, &rec); err != nil || rec.Data == nil {
			// Torn tail from a crash mid-append: keep what replayed so
			// far and stop. Anything after a torn line is unreachable by
			// construction (appends are sequential).
			l.nTorn++
			l.mTorn.Inc()
			return nil
		}
		next := l.base + uint64(len(l.recs))
		if rec.ID < next {
			continue // WAL line already covered by the snapshot
		}
		if rec.ID > next {
			// A gap means the file is damaged beyond a torn tail; stop
			// replay rather than invent IDs.
			l.nTorn++
			l.mTorn.Inc()
			return nil
		}
		data := make([]byte, len(rec.Data))
		copy(data, rec.Data)
		l.recs = append(l.recs, data)
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("store: reading %s: %w", path, err)
	}
	return nil
}

// Append marshals and durably appends one record. build receives the ID
// the record will carry, so callers can embed it in the record itself
// (the service stamps Measurement.ID this way); the marshalled bytes
// are what Get and recovery return, bit for bit.
//
// An error wrapping ErrCompaction is the one partial-success case: the
// record was durably appended and the returned id is valid, only the
// post-append compaction failed. Every other error means the record was
// not appended and the id was not consumed.
func (l *Log) Append(build func(id uint64) any) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	id := l.base + uint64(len(l.recs))
	data, err := json.Marshal(build(id))
	if err != nil {
		return 0, fmt.Errorf("store: marshal: %w", err)
	}
	if l.wal != nil {
		line, err := json.Marshal(walRecord{ID: id, Data: data})
		if err != nil {
			return 0, fmt.Errorf("store: marshal wal record: %w", err)
		}
		line = append(line, '\n')
		if _, err := l.wal.Write(line); err != nil {
			return 0, fmt.Errorf("store: wal append: %w", err)
		}
		if l.opts.Sync {
			if err := l.wal.Sync(); err != nil {
				return 0, fmt.Errorf("store: wal sync: %w", err)
			}
		}
		l.walBytes += int64(len(line))
		l.mWALBytes.Set(l.walBytes)
	}
	l.recs = append(l.recs, data)
	l.enforceCap()
	l.mAppends.Inc()
	l.mRecords.Set(int64(len(l.recs)))
	if l.wal != nil && l.walBytes > l.opts.MaxWALBytes {
		if err := l.compactLocked(); err != nil {
			// The record is already durably in the WAL and in recs; only
			// the compaction failed. Hand the caller its valid id next to
			// the error so the append is not mistaken for a failure (a
			// retry would duplicate the record).
			return id, fmt.Errorf("%w: %v", ErrCompaction, err)
		}
	}
	return id, nil
}

// enforceCap drops oldest records past MaxRecords. Callers hold l.mu.
func (l *Log) enforceCap() {
	if l.opts.MaxRecords <= 0 || len(l.recs) <= l.opts.MaxRecords {
		return
	}
	drop := len(l.recs) - l.opts.MaxRecords
	l.recs = append(l.recs[:0], l.recs[drop:]...)
	l.base += uint64(drop)
	l.mDropped.Add(uint64(drop))
}

// Get unmarshals the record with the given ID into v (which may be nil
// to just probe existence). Returns ErrDropped for IDs that fell to the
// retention cap and false for IDs never assigned.
func (l *Log) Get(id uint64, v any) (bool, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if id < l.base {
		return false, ErrDropped
	}
	i := id - l.base
	if i >= uint64(len(l.recs)) {
		return false, nil
	}
	if v == nil {
		return true, nil
	}
	if err := json.Unmarshal(l.recs[i], v); err != nil {
		return true, fmt.Errorf("store: unmarshal record %d: %w", id, err)
	}
	return true, nil
}

// Len is the live record count.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.recs)
}

// Base is the lowest live ID (IDs below it were dropped by retention).
func (l *Log) Base() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.base
}

// NextID is the ID the next Append will assign.
func (l *Log) NextID() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.base + uint64(len(l.recs))
}

// Replay streams every live record in ID order.
func (l *Log) Replay(fn func(id uint64, data []byte) error) error {
	l.mu.Lock()
	base := l.base
	recs := make([][]byte, len(l.recs))
	copy(recs, l.recs)
	l.mu.Unlock()
	for i, data := range recs {
		if err := fn(base+uint64(i), data); err != nil {
			return err
		}
	}
	return nil
}

// WALBytes reports the current WAL file size (0 when memory-only).
func (l *Log) WALBytes() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.walBytes
}

// Compact forces a snapshot + WAL truncation.
func (l *Log) Compact() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.wal == nil {
		return nil
	}
	return l.compactLocked()
}

// compactLocked writes the live set to a temp snapshot, renames it into
// place, and truncates the WAL. Callers hold l.mu.
func (l *Log) compactLocked() error {
	tmpPath := filepath.Join(l.dir, snapTempName)
	tmp, err := os.Create(tmpPath)
	if err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	w := bufio.NewWriter(tmp)
	hdr, _ := json.Marshal(snapHeader{Base: l.base, N: len(l.recs)})
	w.Write(hdr)
	w.WriteByte('\n')
	for i, data := range l.recs {
		line, err := json.Marshal(walRecord{ID: l.base + uint64(i), Data: data})
		if err != nil {
			tmp.Close()
			return fmt.Errorf("store: compact: %w", err)
		}
		w.Write(line)
		w.WriteByte('\n')
	}
	if err := w.Flush(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: compact: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: compact: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	if err := os.Rename(tmpPath, filepath.Join(l.dir, snapName)); err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	// The snapshot now covers everything; restart the WAL from empty.
	if err := l.wal.Close(); err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	wal, err := os.Create(filepath.Join(l.dir, walName))
	if err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	l.wal = wal
	l.walBytes = 0
	l.mWALBytes.Set(0)
	l.mCompactions.Inc()
	return nil
}

// Close flushes and closes the WAL. The Log must not be used after.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.wal == nil {
		return nil
	}
	err := l.wal.Sync()
	if cerr := l.wal.Close(); err == nil {
		err = cerr
	}
	l.wal = nil
	return err
}
