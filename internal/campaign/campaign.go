// Package campaign runs large batches of reverse traceroutes in parallel —
// the topology-mapping use case of §3 ("measuring from 800,000
// destinations to the 146 M-Lab sites in 10 days requires ≈11.7M reverse
// traceroutes per day") and the scalability story of §5.2.4.
//
// Work is sharded by source: each worker owns one or more sources with a
// private prober and engine (engines cache measurements per source, and
// atlas usefulness marks are per source), while the simulated data plane
// and routing tables are shared and concurrency-safe. Throughput therefore
// scales with workers the way the real system scales with vantage points
// and parallel request handling.
package campaign

import (
	"runtime"
	"sync"

	"revtr"
	"revtr/internal/core"
	"revtr/internal/measure"
	"revtr/internal/netsim/ipv4"
)

// Task is one reverse traceroute request.
type Task struct {
	SourceIdx int // index into the campaign's sources
	Dst       ipv4.Addr
}

// Outcome is one completed task.
type Outcome struct {
	Task   Task
	Result *core.Result
}

// Summary aggregates a campaign.
type Summary struct {
	Attempted int
	Complete  int
	Aborted   int
	Failed    int
	Probes    measure.Counters
	// VirtualUS sums per-measurement virtual durations (the system runs
	// them concurrently, so wall time is this divided by parallelism).
	VirtualUS int64
}

// Coverage is the completed fraction.
func (s Summary) Coverage() float64 {
	if s.Attempted == 0 {
		return 0
	}
	return float64(s.Complete) / float64(s.Attempted)
}

// Runner executes campaigns over a deployment.
type Runner struct {
	D       *revtr.Deployment
	Sources []core.Source
	Opts    core.Options
	// Workers defaults to GOMAXPROCS (capped by the number of sources:
	// sharding is per source).
	Workers int
	// OnResult, if set, receives every outcome (called concurrently).
	OnResult func(Outcome)
}

// Run measures every (source, destination) task. Tasks are sharded by
// source so each engine's cache and atlas stay single-writer.
func (r *Runner) Run(tasks []Task) Summary {
	workers := r.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(r.Sources) {
		workers = len(r.Sources)
	}
	if workers < 1 {
		workers = 1
	}

	// Shard tasks by source, then assign sources round-robin to workers.
	bySource := make([][]Task, len(r.Sources))
	for _, t := range tasks {
		bySource[t.SourceIdx] = append(bySource[t.SourceIdx], t)
	}

	var (
		mu  sync.Mutex
		sum Summary
		wg  sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			local := Summary{}
			for si := w; si < len(r.Sources); si += workers {
				// A fresh prober + engine per source: measurement state
				// (probe nonces, caches) is single-writer and — because
				// the fabric is deterministic — per-source results are
				// identical regardless of how sources map to workers.
				prober := measure.NewProber(r.D.Fabric)
				eng := core.NewEngine(r.D.Fabric, prober, r.D.IngressSvc, r.D.SiteAgents,
					r.D.Alias, r.D.Mapper, nil, r.Opts)
				src := r.Sources[si]
				for _, t := range bySource[si] {
					res := eng.MeasureReverse(src, t.Dst)
					local.Attempted++
					switch res.Status {
					case core.StatusComplete:
						local.Complete++
					case core.StatusAborted:
						local.Aborted++
					default:
						local.Failed++
					}
					local.VirtualUS += res.DurationUS
					if r.OnResult != nil {
						r.OnResult(Outcome{Task: t, Result: res})
					}
				}
				local.Probes.Add(prober.Count)
			}
			mu.Lock()
			sum.Attempted += local.Attempted
			sum.Complete += local.Complete
			sum.Aborted += local.Aborted
			sum.Failed += local.Failed
			sum.VirtualUS += local.VirtualUS
			sum.Probes.Add(local.Probes)
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	return sum
}

// AllPairs builds the full cross product of sources and destinations.
func AllPairs(nSources int, dsts []ipv4.Addr) []Task {
	out := make([]Task, 0, nSources*len(dsts))
	for si := 0; si < nSources; si++ {
		for _, d := range dsts {
			out = append(out, Task{SourceIdx: si, Dst: d})
		}
	}
	return out
}
