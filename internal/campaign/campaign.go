// Package campaign runs large batches of reverse traceroutes in parallel —
// the topology-mapping use case of §3 ("measuring from 800,000
// destinations to the 146 M-Lab sites in 10 days requires ≈11.7M reverse
// traceroutes per day") and the scalability story of §5.2.4.
//
// Work is sharded by source: each worker owns one or more sources and an
// engine per source (engines cache measurements per source, and atlas
// usefulness marks are per source), while all workers share one
// probe.Pool over the concurrency-safe data plane. Probe identities are
// deterministic functions of each measurement's own sequence numbers, so
// parallel campaigns are bit-identical to serial ones — the regression
// test in campaign_test.go holds the Summary and every per-task hop list
// equal across worker counts.
package campaign

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"revtr"
	"revtr/internal/core"
	"revtr/internal/measure"
	"revtr/internal/netsim/ipv4"
	"revtr/internal/obs"
	"revtr/internal/probe"
)

// Task is one reverse traceroute request.
type Task struct {
	SourceIdx int // index into the campaign's sources
	Dst       ipv4.Addr
}

// Outcome is one completed task.
type Outcome struct {
	Task   Task
	Result *core.Result
}

// Summary aggregates a campaign.
type Summary struct {
	Attempted int
	Complete  int
	Aborted   int
	Failed    int
	// Invalid counts tasks rejected up front (SourceIdx out of range).
	// They are included in Attempted and Failed.
	Invalid int
	Probes  measure.Counters
	// VirtualUS sums per-measurement virtual durations (the system runs
	// them concurrently, so wall time is this divided by parallelism).
	VirtualUS int64
}

// Coverage is the completed fraction.
func (s Summary) Coverage() float64 {
	if s.Attempted == 0 {
		return 0
	}
	return float64(s.Complete) / float64(s.Attempted)
}

// Progress is a live snapshot of a running campaign, delivered through
// Runner.OnProgress — the §5.2.4 throughput accounting (revtrs completed,
// probes spent, virtual time consumed) observable while the campaign runs
// instead of only in the final Summary.
type Progress struct {
	Done, Total int
	Complete    int
	Aborted     int
	Failed      int
	Invalid     int
	Probes      uint64
	VirtualUS   int64
}

// Runner executes campaigns over a deployment.
type Runner struct {
	D       *revtr.Deployment
	Sources []core.Source
	Opts    core.Options
	// Workers defaults to GOMAXPROCS (capped by the number of sources:
	// sharding is per source).
	Workers int
	// ProbeWorkers bounds the campaign's shared probe pool (0 = the
	// deployment's own pool with its existing bound). All campaign
	// workers submit batches to one pool, mirroring how the real system
	// shares its vantage-point fleet across concurrent measurements.
	ProbeWorkers int
	// OnResult, if set, receives every outcome (called concurrently).
	OnResult func(Outcome)
	// OnProgress, if set, receives a snapshot every ProgressEvery
	// completed tasks and once at the end (called concurrently from
	// workers; keep it cheap).
	OnProgress func(Progress)
	// ProgressEvery is the OnProgress cadence in tasks (default 64).
	ProgressEvery int
	// Obs, if set, receives campaign_* counters/gauges plus the shared
	// engine metrics of every worker engine, live while the campaign
	// runs. The same registry can back a service's GET /metrics.
	Obs *obs.Registry
}

// progressState tracks live campaign counters shared across workers.
type progressState struct {
	total     int
	done      atomic.Int64
	complete  atomic.Int64
	aborted   atomic.Int64
	failed    atomic.Int64
	invalid   atomic.Int64
	probes    atomic.Uint64
	virtualUS atomic.Int64
}

func (p *progressState) snapshot() Progress {
	return Progress{
		Done:      int(p.done.Load()),
		Total:     p.total,
		Complete:  int(p.complete.Load()),
		Aborted:   int(p.aborted.Load()),
		Failed:    int(p.failed.Load()),
		Invalid:   int(p.invalid.Load()),
		Probes:    p.probes.Load(),
		VirtualUS: p.virtualUS.Load(),
	}
}

// Run measures every (source, destination) task. Tasks are sharded by
// source so each engine's cache and atlas stay single-writer. Tasks whose
// SourceIdx is out of range are rejected up front and counted as Failed
// (and Invalid) instead of panicking the campaign. The context flows to
// every MeasureReverse, so cancelling it drains the campaign promptly.
func (r *Runner) Run(ctx context.Context, tasks []Task) Summary {
	workers := r.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(r.Sources) {
		workers = len(r.Sources)
	}
	if workers < 1 {
		workers = 1
	}
	every := r.ProgressEvery
	if every <= 0 {
		every = 64
	}

	// Shard valid tasks by source; reject the rest up front.
	bySource := make([][]Task, len(r.Sources))
	invalid := 0
	for _, t := range tasks {
		if t.SourceIdx < 0 || t.SourceIdx >= len(r.Sources) {
			invalid++
			continue
		}
		bySource[t.SourceIdx] = append(bySource[t.SourceIdx], t)
	}

	prog := &progressState{total: len(tasks)}
	prog.done.Add(int64(invalid))
	prog.failed.Add(int64(invalid))
	prog.invalid.Add(int64(invalid))

	// One probe pool shared by every worker: probing concurrency is a
	// property of the campaign (how many probes are in flight), separate
	// from task concurrency (how many measurements run at once).
	pool := r.D.Pool
	if r.ProbeWorkers > 0 {
		pool = probe.New(r.D.Fabric, r.D.Clock, r.ProbeWorkers)
		pool.SetRetry(r.D.Pool.Retry())
	}
	if r.Obs != nil {
		pool.SetObs(r.Obs)
	}

	// Campaign metrics and shared engine metrics: counters are atomic,
	// so every worker engine can record into the same set.
	var engineMetrics *core.Metrics
	var obsDone, obsFailed, obsInvalid *obs.Counter
	if r.Obs != nil {
		engineMetrics = core.NewMetrics(r.Obs)
		r.Obs.Gauge("campaign_tasks_total").Set(int64(len(tasks)))
		obsDone = r.Obs.Counter("campaign_tasks_done_total")
		obsFailed = r.Obs.Counter("campaign_tasks_failed_total")
		obsInvalid = r.Obs.Counter("campaign_tasks_invalid_total")
		obsDone.Add(uint64(invalid))
		obsFailed.Add(uint64(invalid))
		obsInvalid.Add(uint64(invalid))
	}
	if invalid > 0 && r.OnProgress != nil {
		r.OnProgress(prog.snapshot())
	}

	var (
		mu  sync.Mutex
		sum Summary
		wg  sync.WaitGroup
	)
	sum.Attempted = invalid
	sum.Failed = invalid
	sum.Invalid = invalid

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			local := Summary{}
			for si := w; si < len(r.Sources); si += workers {
				// A fresh engine per source over the shared pool: the
				// per-source cache stays deterministic (tasks of one
				// source run in order), probe identities derive from
				// per-measurement sequence numbers, and the fabric is
				// deterministic — so per-source results are identical
				// regardless of how sources map to workers.
				eng := core.NewEngine(r.D.Fabric, pool, r.D.IngressSvc, r.D.SiteAgents,
					r.D.Alias, r.D.Mapper, nil, r.Opts)
				eng.SetMetrics(engineMetrics)
				src := r.Sources[si]
				for _, t := range bySource[si] {
					res := eng.MeasureReverse(ctx, src, t.Dst)
					local.Attempted++
					switch res.Status {
					case core.StatusComplete:
						local.Complete++
						prog.complete.Add(1)
					case core.StatusAborted:
						local.Aborted++
						prog.aborted.Add(1)
					default:
						local.Failed++
						prog.failed.Add(1)
						obsFailed.Inc()
					}
					local.VirtualUS += res.DurationUS
					local.Probes = local.Probes.Add(res.Probes)
					prog.virtualUS.Add(res.DurationUS)
					prog.probes.Add(res.Probes.Total())
					if r.OnResult != nil {
						r.OnResult(Outcome{Task: t, Result: res})
					}
					done := prog.done.Add(1)
					obsDone.Inc()
					if r.OnProgress != nil && (done%int64(every) == 0 || done == int64(prog.total)) {
						r.OnProgress(prog.snapshot())
					}
				}
			}
			mu.Lock()
			sum.Attempted += local.Attempted
			sum.Complete += local.Complete
			sum.Aborted += local.Aborted
			sum.Failed += local.Failed
			sum.VirtualUS += local.VirtualUS
			sum.Probes = sum.Probes.Add(local.Probes)
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	return sum
}

// AllPairs builds the full cross product of sources and destinations.
func AllPairs(nSources int, dsts []ipv4.Addr) []Task {
	out := make([]Task, 0, nSources*len(dsts))
	for si := 0; si < nSources; si++ {
		for _, d := range dsts {
			out = append(out, Task{SourceIdx: si, Dst: d})
		}
	}
	return out
}
