package campaign_test

import (
	"context"
	"fmt"
	"strings"

	"sync"
	"sync/atomic"
	"testing"

	"revtr"
	"revtr/internal/campaign"
	"revtr/internal/core"
	"revtr/internal/netsim/ipv4"
	"revtr/internal/obs"
)

func testRunner(t *testing.T, workers int) (*campaign.Runner, []ipv4.Addr) {
	t.Helper()
	cfg := revtr.DefaultConfig(300)
	cfg.Seed = 41
	cfg.Topology.Seed = 41
	d := revtr.Build(cfg)
	var sources []core.Source
	for i := 0; i < 4 && i < len(d.SiteAgents); i++ {
		sources = append(sources, d.SourceFromAgent(d.SiteAgents[i]))
	}
	var dsts []ipv4.Addr
	for i, h := range d.OnePerPrefix() {
		if i >= 40 {
			break
		}
		dsts = append(dsts, h.Addr)
	}
	return &campaign.Runner{
		D:       d,
		Sources: sources,
		Opts:    core.Revtr20Options(),
		Workers: workers,
	}, dsts
}

func TestCampaignSerial(t *testing.T) {
	r, dsts := testRunner(t, 1)
	tasks := campaign.AllPairs(len(r.Sources), dsts)
	sum := r.Run(context.Background(), tasks)
	if sum.Attempted != len(tasks) {
		t.Fatalf("attempted %d != %d", sum.Attempted, len(tasks))
	}
	if sum.Complete == 0 {
		t.Fatal("nothing completed")
	}
	if sum.Complete+sum.Aborted+sum.Failed != sum.Attempted {
		t.Fatal("status counts do not add up")
	}
	if sum.Probes.Total() == 0 {
		t.Fatal("no probes accounted")
	}
	t.Logf("serial: %d/%d complete, %d probes", sum.Complete, sum.Attempted, sum.Probes.Total())
}

// taskKey identifies one task across campaign runs.
type taskKey struct {
	srcIdx int
	dst    ipv4.Addr
}

// renderResult flattens a task result into a comparable string: status
// plus every hop address and technique, in order.
func renderResult(res *core.Result) string {
	var sb strings.Builder
	sb.WriteString(res.Status.String())
	for _, h := range res.Hops {
		fmt.Fprintf(&sb, " %s/%s/%v", h.Addr, h.Tech, h.SuspectBefore)
	}
	return sb.String()
}

// runCollecting runs a campaign with the given worker counts and returns
// the summary plus every per-task rendered result.
func runCollecting(t *testing.T, workers, probeWorkers int) (campaign.Summary, map[taskKey]string) {
	t.Helper()
	r, dsts := testRunner(t, workers)
	r.ProbeWorkers = probeWorkers
	var mu sync.Mutex
	got := make(map[taskKey]string)
	r.OnResult = func(o campaign.Outcome) {
		mu.Lock()
		got[taskKey{o.Task.SourceIdx, o.Task.Dst}] = renderResult(o.Result)
		mu.Unlock()
	}
	sum := r.Run(context.Background(), campaign.AllPairs(len(r.Sources), dsts))
	return sum, got
}

// TestCampaignParallelMatchesSerial: per-source sharding, deterministic
// per-measurement probe identities, and a deterministic fabric make
// parallel campaigns bit-identical to serial ones — the same Summary
// (including probe counters and virtual time) and the same hops,
// techniques, and status for every individual task.
func TestCampaignParallelMatchesSerial(t *testing.T) {
	s1, res1 := runCollecting(t, 1, 1)
	s4, res4 := runCollecting(t, 4, 8)
	if s1 != s4 {
		t.Fatalf("summaries differ:\nserial   %+v\nparallel %+v", s1, s4)
	}
	if len(res1) != len(res4) {
		t.Fatalf("result counts differ: %d vs %d", len(res1), len(res4))
	}
	for k, want := range res1 {
		if got, ok := res4[k]; !ok {
			t.Errorf("task src=%d dst=%s missing from parallel run", k.srcIdx, k.dst)
		} else if got != want {
			t.Errorf("task src=%d dst=%s differs:\nserial   %s\nparallel %s",
				k.srcIdx, k.dst, want, got)
		}
	}
}

func TestCampaignCallback(t *testing.T) {
	r, dsts := testRunner(t, 2)
	var calls atomic.Int64
	r.OnResult = func(o campaign.Outcome) {
		if o.Result == nil {
			t.Error("nil result in callback")
		}
		calls.Add(1)
	}
	tasks := campaign.AllPairs(len(r.Sources), dsts)
	r.Run(context.Background(), tasks)
	if int(calls.Load()) != len(tasks) {
		t.Fatalf("callback calls %d != tasks %d", calls.Load(), len(tasks))
	}
}

// TestCampaignMalformedTasks: tasks with out-of-range SourceIdx must not
// panic the runner (the seed crashed with index-out-of-range); they count
// as Failed (and Invalid) in the summary alongside the valid work.
func TestCampaignMalformedTasks(t *testing.T) {
	r, dsts := testRunner(t, 2)
	tasks := campaign.AllPairs(len(r.Sources), dsts[:5])
	nValid := len(tasks)
	tasks = append(tasks,
		campaign.Task{SourceIdx: -1, Dst: dsts[0]},
		campaign.Task{SourceIdx: len(r.Sources), Dst: dsts[1]},
		campaign.Task{SourceIdx: 9999, Dst: dsts[2]},
	)
	sum := r.Run(context.Background(), tasks)
	if sum.Attempted != len(tasks) {
		t.Fatalf("attempted %d != %d", sum.Attempted, len(tasks))
	}
	if sum.Invalid != 3 {
		t.Fatalf("invalid = %d, want 3", sum.Invalid)
	}
	if sum.Failed < 3 {
		t.Fatalf("failed = %d, want >= 3 (invalid tasks count as failed)", sum.Failed)
	}
	if sum.Complete+sum.Aborted+sum.Failed != sum.Attempted {
		t.Fatal("status counts do not add up")
	}
	if sum.Complete == 0 && nValid > 0 {
		t.Fatal("valid tasks did not run")
	}
}

// TestCampaignAllMalformed: a campaign of only invalid tasks terminates
// with everything failed and no panic.
func TestCampaignAllMalformed(t *testing.T) {
	r, dsts := testRunner(t, 2)
	tasks := []campaign.Task{
		{SourceIdx: -5, Dst: dsts[0]},
		{SourceIdx: 100, Dst: dsts[0]},
	}
	sum := r.Run(context.Background(), tasks)
	if sum.Attempted != 2 || sum.Failed != 2 || sum.Invalid != 2 {
		t.Fatalf("summary = %+v, want 2 attempted/failed/invalid", sum)
	}
}

// TestCampaignProgress: OnProgress delivers monotonically advancing
// snapshots ending at Done == Total, and the obs registry carries the
// same accounting.
func TestCampaignProgress(t *testing.T) {
	r, dsts := testRunner(t, 2)
	reg := obs.New()
	r.Obs = reg
	r.ProgressEvery = 7
	var (
		mu       sync.Mutex
		lastDone int
		calls    int
		final    campaign.Progress
	)
	r.OnProgress = func(p campaign.Progress) {
		mu.Lock()
		defer mu.Unlock()
		calls++
		if p.Done < lastDone {
			t.Errorf("progress went backwards: %d after %d", p.Done, lastDone)
		}
		lastDone = p.Done
		final = p
	}
	tasks := campaign.AllPairs(len(r.Sources), dsts[:10])
	sum := r.Run(context.Background(), tasks)
	if calls == 0 {
		t.Fatal("OnProgress never called")
	}
	if final.Done != len(tasks) || final.Total != len(tasks) {
		t.Fatalf("final progress %d/%d, want %d/%d", final.Done, final.Total, len(tasks), len(tasks))
	}
	if got := reg.Counter("campaign_tasks_done_total").Value(); got != uint64(len(tasks)) {
		t.Fatalf("obs done counter = %d, want %d", got, len(tasks))
	}
	if reg.Gauge("campaign_tasks_total").Value() != int64(len(tasks)) {
		t.Fatal("obs total gauge wrong")
	}
	// Engine metrics are shared across workers via the same registry.
	eng := reg.Counter("engine_measure_complete_total").Value() +
		reg.Counter("engine_measure_aborted_total").Value() +
		reg.Counter("engine_measure_failed_total").Value()
	if eng != uint64(sum.Attempted-sum.Invalid) {
		t.Fatalf("engine outcome counters = %d, want %d", eng, sum.Attempted-sum.Invalid)
	}
}

func TestCampaignWorkerClamp(t *testing.T) {
	r, dsts := testRunner(t, 99) // more workers than sources
	sum := r.Run(context.Background(), campaign.AllPairs(len(r.Sources), dsts))
	if sum.Attempted == 0 {
		t.Fatal("nothing ran")
	}
}
