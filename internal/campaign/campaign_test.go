package campaign_test

import (
	"sync/atomic"
	"testing"

	"revtr"
	"revtr/internal/campaign"
	"revtr/internal/core"
	"revtr/internal/netsim/ipv4"
)

func testRunner(t *testing.T, workers int) (*campaign.Runner, []ipv4.Addr) {
	t.Helper()
	cfg := revtr.DefaultConfig(300)
	cfg.Seed = 41
	cfg.Topology.Seed = 41
	d := revtr.Build(cfg)
	var sources []core.Source
	for i := 0; i < 4 && i < len(d.SiteAgents); i++ {
		sources = append(sources, d.SourceFromAgent(d.SiteAgents[i]))
	}
	var dsts []ipv4.Addr
	for i, h := range d.OnePerPrefix() {
		if i >= 40 {
			break
		}
		dsts = append(dsts, h.Addr)
	}
	return &campaign.Runner{
		D:       d,
		Sources: sources,
		Opts:    core.Revtr20Options(),
		Workers: workers,
	}, dsts
}

func TestCampaignSerial(t *testing.T) {
	r, dsts := testRunner(t, 1)
	tasks := campaign.AllPairs(len(r.Sources), dsts)
	sum := r.Run(tasks)
	if sum.Attempted != len(tasks) {
		t.Fatalf("attempted %d != %d", sum.Attempted, len(tasks))
	}
	if sum.Complete == 0 {
		t.Fatal("nothing completed")
	}
	if sum.Complete+sum.Aborted+sum.Failed != sum.Attempted {
		t.Fatal("status counts do not add up")
	}
	if sum.Probes.Total() == 0 {
		t.Fatal("no probes accounted")
	}
	t.Logf("serial: %d/%d complete, %d probes", sum.Complete, sum.Attempted, sum.Probes.Total())
}

// TestCampaignParallelMatchesSerial: per-source sharding plus a
// deterministic fabric means parallel campaigns complete the same tasks
// (counts may differ marginally only via per-packet nonce ordering, which
// per-worker probers make source-deterministic too).
func TestCampaignParallelMatchesSerial(t *testing.T) {
	r1, dsts := testRunner(t, 1)
	s1 := r1.Run(campaign.AllPairs(len(r1.Sources), dsts))
	r4, dsts4 := testRunner(t, 4)
	s4 := r4.Run(campaign.AllPairs(len(r4.Sources), dsts4))
	if s1.Attempted != s4.Attempted {
		t.Fatalf("attempted differ: %d vs %d", s1.Attempted, s4.Attempted)
	}
	if s1.Complete != s4.Complete || s1.Aborted != s4.Aborted {
		t.Fatalf("outcomes differ: serial %d/%d vs parallel %d/%d",
			s1.Complete, s1.Aborted, s4.Complete, s4.Aborted)
	}
}

func TestCampaignCallback(t *testing.T) {
	r, dsts := testRunner(t, 2)
	var calls atomic.Int64
	r.OnResult = func(o campaign.Outcome) {
		if o.Result == nil {
			t.Error("nil result in callback")
		}
		calls.Add(1)
	}
	tasks := campaign.AllPairs(len(r.Sources), dsts)
	r.Run(tasks)
	if int(calls.Load()) != len(tasks) {
		t.Fatalf("callback calls %d != tasks %d", calls.Load(), len(tasks))
	}
}

func TestCampaignWorkerClamp(t *testing.T) {
	r, dsts := testRunner(t, 99) // more workers than sources
	sum := r.Run(campaign.AllPairs(len(r.Sources), dsts))
	if sum.Attempted == 0 {
		t.Fatal("nothing ran")
	}
}
