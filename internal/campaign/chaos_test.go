package campaign_test

// Campaign-level chaos: a full multi-source campaign over a faulty
// fabric must keep the serial/parallel bit-identity guarantee and its
// probe accounting, and must terminate cleanly even when vantage points
// are blacked out mid-plan. Run with -race; `make chaos` does.

import (
	"context"
	"sync"
	"testing"

	"revtr"
	"revtr/internal/campaign"
	"revtr/internal/core"
	"revtr/internal/netsim/faults"
	"revtr/internal/netsim/ipv4"
	"revtr/internal/probe"
)

// faultyRunner is testRunner plus a fault plan attached after Build —
// atlas and ingress are surveyed healthy, the campaign's measurements
// contend with the faults — and per-probe retries enabled so the
// campaign's cloned pools inherit the policy.
func faultyRunner(t *testing.T, workers int, plan *faults.Plan) (*campaign.Runner, []ipv4.Addr) {
	t.Helper()
	cfg := revtr.DefaultConfig(300)
	cfg.Seed = 41
	cfg.Topology.Seed = 41
	d := revtr.Build(cfg)
	if err := plan.Validate(); err != nil {
		t.Fatalf("fault plan: %v", err)
	}
	d.Fabric.SetFaults(plan)
	d.Pool.SetRetry(probe.RetryPolicy{Max: 2, BackoffUS: 30_000})
	var sources []core.Source
	for i := 0; i < 4 && i < len(d.SiteAgents); i++ {
		sources = append(sources, d.SourceFromAgent(d.SiteAgents[i]))
	}
	var dsts []ipv4.Addr
	for i, h := range d.OnePerPrefix() {
		if i >= 30 {
			break
		}
		dsts = append(dsts, h.Addr)
	}
	return &campaign.Runner{
		D:       d,
		Sources: sources,
		Opts:    core.Revtr20Options(),
		Workers: workers,
	}, dsts
}

func runFaultyCollecting(t *testing.T, workers, probeWorkers int, plan *faults.Plan) (campaign.Summary, map[taskKey]string) {
	t.Helper()
	r, dsts := faultyRunner(t, workers, plan)
	r.ProbeWorkers = probeWorkers
	var mu sync.Mutex
	got := make(map[taskKey]string)
	r.OnResult = func(o campaign.Outcome) {
		mu.Lock()
		got[taskKey{o.Task.SourceIdx, o.Task.Dst}] = renderResult(o.Result)
		mu.Unlock()
	}
	sum := r.Run(context.Background(), campaign.AllPairs(len(r.Sources), dsts))
	return sum, got
}

// TestCampaignChaosParallelMatchesSerial: the campaign determinism
// contract survives an active fault plan — identical Summary (statuses,
// probe counters, virtual time) and identical per-task hops between a
// serial run and a 4-worker/8-probe-worker run under the same plan.
func TestCampaignChaosParallelMatchesSerial(t *testing.T) {
	mk := func() *faults.Plan {
		return &faults.Plan{Seed: 17, LinkLoss: 0.1, ICMPFrac: 0.3, ICMPPass: 0.5, FlapFrac: 0.05}
	}
	s1, res1 := runFaultyCollecting(t, 1, 1, mk())
	s4, res4 := runFaultyCollecting(t, 4, 8, mk())
	if s1 != s4 {
		t.Fatalf("summaries differ under faults:\nserial   %+v\nparallel %+v", s1, s4)
	}
	if len(res1) != len(res4) {
		t.Fatalf("result counts differ: %d vs %d", len(res1), len(res4))
	}
	for k, want := range res1 {
		if got := res4[k]; got != want {
			t.Errorf("task src=%d dst=%s differs:\nserial   %s\nparallel %s",
				k.srcIdx, k.dst, want, got)
		}
	}
	if s1.Complete == 0 {
		t.Fatal("nothing completed under 10% loss with retries")
	}
	t.Logf("chaos campaign: %d/%d complete, %d probes", s1.Complete, s1.Attempted, s1.Probes.Total())
}

// TestCampaignChaosVPBlackout: blacking out every spoof-capable
// non-source site still yields a terminating campaign with consistent
// status accounting, and the plan records the blackout hits.
func TestCampaignChaosVPBlackout(t *testing.T) {
	plan := &faults.Plan{Seed: 23, LinkLoss: 0.05}
	r, dsts := faultyRunner(t, 4, plan)
	// Blackouts attach before Run but after Build: sources (indices
	// 0..3) stay alive, every other spoof-capable site goes dark.
	n := 0
	for i := len(r.D.SiteAgents) - 1; i >= len(r.Sources); i-- {
		if r.D.SiteAgents[i].CanSpoof {
			plan.AddBlackout(r.D.SiteAgents[i].Addr, 0, 0)
			n++
		}
	}
	if n == 0 {
		t.Skip("no spoof-capable non-source sites")
	}
	sum := r.Run(context.Background(), campaign.AllPairs(len(r.Sources), dsts))
	if sum.Complete+sum.Aborted+sum.Failed != sum.Attempted {
		t.Fatalf("status counts do not add up: %+v", sum)
	}
	if plan.Count(faults.KindBlackout) == 0 {
		t.Fatal("no blackout faults recorded despite dead vantage points")
	}
	t.Logf("blackout campaign: %d sites dark, %d/%d complete, %d blackout hits",
		n, sum.Complete, sum.Attempted, plan.Count(faults.KindBlackout))
}
