package eval

import (
	"bytes"
	"revtr/internal/netsim/topology"
	"strings"
	"testing"
)

func TestDist(t *testing.T) {
	var d Dist
	for _, x := range []float64{1, 2, 3, 4, 5} {
		d.Add(x)
	}
	if d.Mean() != 3 {
		t.Errorf("mean %f", d.Mean())
	}
	if d.Quantile(0.5) != 3 {
		t.Errorf("median %f", d.Quantile(0.5))
	}
	if d.FracAtLeast(4) != 0.4 {
		t.Errorf("ccdf %f", d.FracAtLeast(4))
	}
	if d.FracAtMost(2) != 0.4 {
		t.Errorf("cdf %f", d.FracAtMost(2))
	}
	rows := d.CCDFRow([]float64{1, 3, 6})
	if rows[0] != 1 || rows[2] != 0 {
		t.Errorf("ccdf row %v", rows)
	}
	var empty Dist
	if empty.Mean() != 0 || empty.Quantile(0.5) != 0 || empty.FracAtLeast(1) != 0 {
		t.Error("empty dist not zero")
	}
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{Title: "T", Header: []string{"a", "bb"}}
	tbl.AddRow("x", "y")
	var buf bytes.Buffer
	tbl.Fprint(&buf)
	out := buf.String()
	if !strings.Contains(out, "== T ==") || !strings.Contains(out, "x") {
		t.Errorf("rendered:\n%s", out)
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"table2", "table3", "table4", "table5", "table6", "table7",
		"fig5a", "fig5b", "fig5c", "fig6", "fig7", "fig8a", "fig8b",
		"fig9a", "fig9b", "fig9c", "fig9d", "fig11", "fig12", "fig13", "fig14",
		"appxD1", "appxE", "appxB2", "insights", "ablation", "throughput",
		"segments",
	}
	for _, id := range want {
		if _, ok := Find(id); !ok {
			t.Errorf("experiment %q not registered", id)
		}
	}
	if _, ok := Find("nonsense"); ok {
		t.Error("phantom experiment found")
	}
}

func TestHelpers(t *testing.T) {
	if !asPathsEqual(asns(1, 2, 3), asns(1, 2, 3)) {
		t.Error("equal paths unequal")
	}
	if asPathsEqual(asns(1, 2), asns(1, 2, 3)) {
		t.Error("unequal lengths equal")
	}
	if !asSubsequence(asns(1, 3), asns(1, 2, 3)) {
		t.Error("subsequence not found")
	}
	if asSubsequence(asns(3, 1), asns(1, 2, 3)) {
		t.Error("reversed subsequence found")
	}
	if f, ok := asFracSeen(asns(1, 2), asns(2, 9)); !ok || f != 0.5 {
		t.Errorf("frac %v %v", f, ok)
	}
}

func asns(xs ...topology.ASN) []topology.ASN { return xs }
