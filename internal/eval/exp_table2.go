package eval

import (
	"context"
	"fmt"
	"io"
	"math/rand"

	"revtr"
	"revtr/internal/alias"
	"revtr/internal/ingress"
	"revtr/internal/ip2as"
	"revtr/internal/measure"
	"revtr/internal/netsim/ipv4"
	"revtr/internal/vantage"
)

// Table 2 (§4.4): how often is the penultimate hop of a forward traceroute
// also on the reverse path? The answer justifies revtr 2.0's policy of
// assuming symmetry only on intradomain links.
//
// Methodology (as in the paper): for each SNMPv3-responsive interface,
// target the other address of its /30; traceroute from a random site to
// the target to get the penultimate hop; reveal reverse hops with a
// (spoofed) RR ping; classify the penultimate hop as on the reverse path
// (it or an alias appears among the reverse hops), not on it (it is
// SNMPv3-responsive — reliable alias info — but absent), or unknown.

type table2Row struct {
	yes, no, unknown int
}

func (r table2Row) cells(name string) []string {
	total := r.yes + r.no + r.unknown
	if total == 0 {
		return []string{name, "-", "-", "-", "-"}
	}
	f := func(n int) string { return Pct(float64(n) / float64(total)) }
	yesRate := "-"
	if r.yes+r.no > 0 {
		yesRate = Pct(float64(r.yes) / float64(r.yes+r.no))
	}
	return []string{name, f(r.yes), f(r.no), f(r.unknown), yesRate}
}

type table2Result struct {
	intra, inter, all table2Row
}

func runTable2(s Scale) table2Result {
	d := deployment(s, vantage.Vintage2020)
	rng := rand.New(rand.NewSource(s.Seed + 2))
	var res table2Result
	var p2p alias.Slash30

	// Collect /30 partner targets of SNMPv3-responsive interfaces.
	type target struct{ addr ipv4.Addr }
	var targets []target
	for ii := range d.Topo.Ifaces {
		ifc := &d.Topo.Ifaces[ii]
		if !d.Topo.Routers[ifc.Router].SNMPv3 {
			continue
		}
		// The /30 partner: flip the low bits .1 <-> .2.
		base := ifc.Addr.Mask(30)
		partner := base + 1
		if partner == ifc.Addr {
			partner = base + 2
		}
		if _, ok := d.Topo.Owner(partner); !ok {
			continue
		}
		targets = append(targets, target{addr: partner})
	}
	rng.Shuffle(len(targets), func(i, j int) { targets[i], targets[j] = targets[j], targets[i] })
	limit := s.Pairs * 4
	if limit > len(targets) {
		limit = len(targets)
	}

	classify := func(intra bool, cls int) {
		rows := []*table2Row{&res.all}
		if intra {
			rows = append(rows, &res.intra)
		} else {
			rows = append(rows, &res.inter)
		}
		for _, r := range rows {
			switch cls {
			case 0:
				r.yes++
			case 1:
				r.no++
			default:
				r.unknown++
			}
		}
	}

	for _, tg := range targets[:limit] {
		site := d.SiteAgents[rng.Intn(len(d.SiteAgents))]
		tr := d.Prober.Traceroute(site, tg.addr)
		if !tr.ReachedDst {
			continue
		}
		hops := tr.HopAddrs()
		if len(hops) < 2 {
			continue
		}
		penult := hops[len(hops)-2]
		if penult.IsPrivate() {
			continue
		}
		// Reveal reverse hops: direct RR, then the ingress-selected VPs.
		revHops := revealReverseHops(d, site, tg.addr)
		if len(revHops) == 0 {
			continue
		}
		intra := ip2as.SameAS(d.Mapper, penult, tg.addr)
		// Classification per the paper: "yes" if penult or an alias is
		// among the reverse hops; "no" if penult answers SNMPv3 (so we
		// have reliable alias info) but is absent; else unknown.
		onPath := false
		for _, h := range revHops {
			if h == penult || d.Alias.SNMP.SameRouter(h, penult) ||
				d.Alias.Midar.SameRouter(h, penult) || p2p.SameLink(h, penult) {
				onPath = true
				break
			}
		}
		switch {
		case onPath:
			classify(intra, 0)
		case d.Alias.SNMP.Known(penult):
			classify(intra, 1)
		default:
			classify(intra, 2)
		}
	}
	return res
}

// revealReverseHops issues the study's RR measurement: a direct RR ping
// from the site, then spoofed RR pings from the survey's closest VPs
// (§4.3 selection), returning the reverse-path stamps after the target.
func revealReverseHops(d *revtr.Deployment, site measure.Agent, target ipv4.Addr) []ipv4.Addr {
	rr := d.Prober.RRPing(site, target)
	if hops := extractAfterTarget(rr.Recorded, target); len(hops) > 0 {
		return hops
	}
	pfx, ok := d.Topo.BGPPrefixOf(target)
	if !ok {
		return nil
	}
	plan := d.IngressSvc.PlanFor(pfx, ingress.SelIngress)
	tried := 0
	for _, si := range plan.Order {
		vp := d.SiteAgents[si]
		if vp.Addr == site.Addr {
			continue
		}
		srr := d.Prober.SpoofedRRPing(vp, site.Addr, target)
		if hops := extractAfterTarget(srr.Recorded, target); len(hops) > 0 {
			return hops
		}
		tried++
		if tried >= 6 {
			break
		}
	}
	return nil
}

// extractAfterTarget returns the recorded RR addresses after the target's
// own stamp (or its /30 forward marker).
func extractAfterTarget(recorded []ipv4.Addr, target ipv4.Addr) []ipv4.Addr {
	var p2p alias.Slash30
	marker := -1
	for k, x := range recorded {
		if x == target {
			marker = k
		}
	}
	if marker < 0 {
		for k, x := range recorded {
			if p2p.SameLink(x, target) {
				marker = k
				break
			}
		}
	}
	if marker < 0 || marker+1 >= len(recorded) {
		return nil
	}
	return recorded[marker+1:]
}

func init() {
	register("table2", "Table 2: penultimate-hop symmetry by link type", func(ctx context.Context, s Scale, w io.Writer) error {
		res := runTable2(s)
		t := &Table{
			Title:  "Table 2 — penultimate traceroute hop also on the reverse path?",
			Header: []string{"link type", "Yes", "No", "Unknown", "Yes/(Yes+No)"},
		}
		t.AddRow(res.intra.cells("intradomain")...)
		t.AddRow(res.inter.cells("interdomain")...)
		t.AddRow(res.all.cells("all")...)
		t.Fprint(w)
		fmt.Fprintf(w, "  paper: intradomain 0.90, interdomain 0.57, all 0.81\n\n")
		return nil
	})
}
