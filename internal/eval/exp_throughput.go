package eval

import (
	"context"
	"fmt"
	"io"
)

// §5.2.4 throughput: the paper reports 173 reverse traceroutes per second
// for revtr 2.0 (≈15M/day) versus 4/s (354K/day) for its revtr 1.0
// reimplementation. Two resources bound throughput, and both are
// measurable from the fig5 workload:
//
//   - latency-bound: with P parallel measurements in flight, throughput is
//     P / mean(duration) — spoofed batches hold a slot for their 10 s
//     timeout;
//   - probe-budget-bound: vantage points cap probing at 100 pps (§8), so
//     throughput can never exceed sites×100 / probes-per-revtr.
//
// The realizable rate is the smaller of the two.
func init() {
	register("throughput", "§5.2.4: system throughput, revtr 1.0 vs 2.0", func(ctx context.Context, s Scale, w io.Writer) error {
		f := runFig5(ctx, s)
		nSites := float64(len(f.d.SiteAgents))
		// Concurrent measurements the service sustains. The resumable
		// machine keeps each in-flight measurement as a ~1 KB suspended
		// record rather than a parked goroutine, and BENCH_engine.json
		// records the engine holding 10k in flight; that is the slot
		// count the latency bound divides over.
		const parallel = 10_000.0
		const ppsPerVP = 100.0 // §8's self-imposed probing cap

		t := &Table{
			Title: "§5.2.4 — sustainable reverse traceroutes per second",
			Header: []string{"configuration", "probes/revtr", "mean dur (s)",
				"latency-bound (/s)", "probe-bound (/s)", "sustainable (/s)"},
		}
		var r10, r20 float64
		for _, name := range []string{"revtr1.0", "revtr2.0"} {
			st := f.byName[name]
			probesPer := float64(st.counters.Total()) / float64(max(1, st.attempted))
			meanDur := st.durations.Mean()
			latBound := parallel / meanDur
			probeBound := nSites * ppsPerVP / probesPer
			sustainable := latBound
			if probeBound < sustainable {
				sustainable = probeBound
			}
			t.AddRow(name, F(probesPer), F(meanDur), F(latBound), F(probeBound), F(sustainable))
			if name == "revtr1.0" {
				r10 = sustainable
			} else {
				r20 = sustainable
			}
		}
		t.Fprint(w)
		if r10 > 0 {
			fmt.Fprintf(w, "  revtr2.0 / revtr1.0 throughput ratio: %.1fx (paper: 43x — 173/s vs 4/s)\n", r20/r10)
		}
		fmt.Fprintf(w, "  per day at the sustainable rate: revtr2.0 ≈ %.1fM (paper: ≈15M)\n\n", r20*86400/1e6)
		return nil
	})
}
