package eval

import (
	"context"

	"fmt"
	"io"
	"sync"

	"revtr"
	"revtr/internal/alias"
	"revtr/internal/core"
	"revtr/internal/ingress"
	"revtr/internal/ip2as"
	"revtr/internal/measure"
	"revtr/internal/netsim/ipv4"
	"revtr/internal/netsim/topology"
	"revtr/internal/vantage"
)

// The §5.2 comparison workload: reverse traceroutes from RIPE-Atlas-style
// probes (destinations) to vantage point sites (sources), with direct
// traceroutes from the probes as approximate ground truth. Five engine
// configurations reproduce Table 4's incremental ablation
// (Eq. 1: revtr 2.0 = revtr 1.0 + ingress + cache − TS + RR atlas),
// and the full configurations feed Fig 5a (accuracy), Fig 5b (coverage)
// and Fig 5c (latency).

type pairOutcome struct {
	dst    measure.Agent
	srcIdx int
	res    *core.Result
	direct measure.TracerouteResult
}

type runStats struct {
	name      string
	counters  measure.Counters
	durations Dist

	attempted, completed int
	pairs                []pairOutcome
}

type fig5Data struct {
	d       *revtr.Deployment
	sources []core.Source
	configs []*runStats
	byName  map[string]*runStats

	// forward RR baseline (src→dst single-packet paths).
	fwdRRFrac Dist
}

var (
	fig5Mu    sync.Mutex
	fig5Cache = map[string]*fig5Data{}
)

// ablationNames in Table 4 order.
var ablationNames = []string{
	"revtr1.0",
	"revtr1.0+ingress",
	"revtr1.0+ingress+cache",
	"revtr1.0+ingress+cache-TS",
	"revtr2.0",
	"revtr2.0+TS",
	"revtr2.0+TS+oracle-adj",
}

func fig5Key(s Scale) string {
	return fmt.Sprintf("%d/%d/%d/%d/%d/%d", s.ASes, s.Sites, s.Probes, s.AtlasSize, s.Pairs, s.Seed)
}

// oracleAdjacencies builds the Appendix D.1 perfect-information provider.
func oracleAdjacencies(d *revtr.Deployment) core.OracleAdjacencies {
	return core.OracleAdjacencies{NextReverse: func(cur, src ipv4.Addr) ipv4.Addr {
		r, ok := d.Topo.RouterOf(cur)
		if !ok {
			return 0
		}
		path := d.Fabric.ForwardRouterPath(r, src, cur, 0)
		if len(path) < 2 {
			return 0
		}
		return d.Topo.Routers[path[1]].Loopback
	}}
}

func fig5Configs(d *revtr.Deployment) map[string]struct {
	opts core.Options
	adj  core.AdjacencyProvider
} {
	arkAdj := d.BuildAdjacencies(300)
	o10 := core.Revtr10Options()
	o10.ExcludeAtlasFromDstAS = true
	o10i := o10
	o10i.VPSelection = ingress.SelIngress
	o10ic := o10i
	o10ic.UseCache = true
	o10icN := o10ic
	o10icN.UseTimestamp = false
	o20 := core.Revtr20Options()
	o20.ExcludeAtlasFromDstAS = true
	o20t := o20
	o20t.UseTimestamp = true
	cfg := map[string]struct {
		opts core.Options
		adj  core.AdjacencyProvider
	}{
		"revtr1.0":                  {o10, arkAdj},
		"revtr1.0+ingress":          {o10i, arkAdj},
		"revtr1.0+ingress+cache":    {o10ic, arkAdj},
		"revtr1.0+ingress+cache-TS": {o10icN, nil},
		"revtr2.0":                  {o20, nil},
		"revtr2.0+TS":               {o20t, arkAdj},
		"revtr2.0+TS+oracle-adj":    {o20t, oracleAdjacencies(d)},
	}
	return cfg
}

// runFig5 executes (or returns the cached) §5.2 workload at scale s.
func runFig5(ctx context.Context, s Scale) *fig5Data {
	fig5Mu.Lock()
	if f, ok := fig5Cache[fig5Key(s)]; ok {
		fig5Mu.Unlock()
		return f
	}
	fig5Mu.Unlock()

	d := deployment(s, vantage.Vintage2020)
	f := &fig5Data{
		d:       d,
		sources: sourcesFor(d, s.Sources),
		byName:  make(map[string]*runStats),
	}

	// Enumerate pairs: destination probes × sources.
	type pair struct {
		dst    measure.Agent
		srcIdx int
	}
	var pairs []pair
	dests := probeDestinations(d)
	for i, dst := range dests {
		srcIdx := i % len(f.sources)
		if dst.AS == f.sources[srcIdx].Agent.AS {
			continue
		}
		pairs = append(pairs, pair{dst, srcIdx})
		if len(pairs) >= s.Pairs {
			break
		}
	}

	// Direct traceroutes (approximate ground truth, not visible to the
	// engines) and the forward-RR baseline.
	directs := make([]measure.TracerouteResult, len(pairs))
	var res alias.Resolver = d.Alias
	for i, p := range pairs {
		directs[i] = d.Prober.Traceroute(p.dst, f.sources[p.srcIdx].Agent.Addr)
		// Forward RR + forward traceroute from the source to the probe.
		src := f.sources[p.srcIdx].Agent
		fwd := d.Prober.Traceroute(src, p.dst.Addr)
		rr := d.Prober.RRPing(src, p.dst.Addr)
		if rr.Responded && fwd.ReachedDst {
			if frac, ok := hopMatchFraction(fwd.HopAddrs(), rr.Recorded, res, false); ok {
				f.fwdRRFrac.Add(frac)
			}
		}
	}

	for _, name := range ablationNames {
		c := fig5Configs(d)[name]
		eng := d.EngineWithAdjacencies(c.opts, c.adj)
		st := &runStats{name: name}
		for i, p := range pairs {
			r := eng.MeasureReverse(ctx, f.sources[p.srcIdx], p.dst.Addr)
			st.attempted++
			if r.Status == core.StatusComplete {
				st.completed++
			}
			st.counters = st.counters.Add(r.Probes)
			st.durations.Add(float64(r.DurationUS) / 1e6)
			st.pairs = append(st.pairs, pairOutcome{dst: p.dst, srcIdx: p.srcIdx, res: r, direct: directs[i]})
		}
		f.configs = append(f.configs, st)
		f.byName[name] = st
	}

	fig5Mu.Lock()
	fig5Cache[fig5Key(s)] = f
	fig5Mu.Unlock()
	return f
}

// hopMatchFraction computes the fraction of reference hops also present
// in measured, matching by identity, alias resolution, or the /30
// heuristic. With optimistic true, unresolvable reference hops count as
// matched (Fig 5a's router-optimistic band). Returns ok=false when the
// reference is empty.
func hopMatchFraction(reference, measured []ipv4.Addr, res alias.Resolver, optimistic bool) (float64, bool) {
	if len(reference) == 0 {
		return 0, false
	}
	var p2p alias.Slash30
	match := 0
	for _, h := range reference {
		seen := false
		for _, x := range measured {
			if x == h || (res != nil && res.SameRouter(x, h)) || p2p.SameLink(x, h) {
				seen = true
				break
			}
		}
		if !seen && optimistic && res != nil && !res.Known(h) {
			seen = true
		}
		if seen {
			match++
		}
	}
	return float64(match) / float64(len(reference)), true
}

// asPathsEqual / asSubsequence compare AS paths.
func asPathsEqual(a, b []topology.ASN) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// asSubsequence reports whether sub appears within full in order.
func asSubsequence(sub, full []topology.ASN) bool {
	j := 0
	for _, x := range full {
		if j < len(sub) && sub[j] == x {
			j++
		}
	}
	return j == len(sub)
}

// asFracSeen returns the fraction of reference AS hops present in the
// measured AS path.
func asFracSeen(reference, measured []topology.ASN) (float64, bool) {
	if len(reference) == 0 {
		return 0, false
	}
	in := map[topology.ASN]bool{}
	for _, a := range measured {
		in[a] = true
	}
	n := 0
	for _, a := range reference {
		if in[a] {
			n++
		}
	}
	return float64(n) / float64(len(reference)), true
}

// accuracyOf scores a configuration's completed measurements against the
// direct traceroutes.
type accuracy struct {
	comparable int
	exactAS    int
	subseqAS   int // incomplete but not wrong (missing hops only)
	wrongAS    int
	fracAS     Dist
	fracRouter Dist
	fracOpt    Dist
	suspects   int
}

func scoreAccuracy(d *revtr.Deployment, st *runStats) accuracy {
	var acc accuracy
	mapper := d.Mapper
	for _, p := range st.pairs {
		if p.res.Status != core.StatusComplete || !p.direct.ReachedDst {
			continue
		}
		acc.comparable++
		directHops := p.direct.HopAddrs()
		revHops := p.res.Addrs()
		dAS := ip2as.ASPath(mapper, directHops)
		rAS := ip2as.ASPath(mapper, revHops)
		// The direct traceroute runs dst→src; the reverse traceroute is
		// also dst→src. Compare directly.
		switch {
		case asPathsEqual(rAS, dAS):
			acc.exactAS++
		case asSubsequence(rAS, dAS):
			acc.subseqAS++
		default:
			acc.wrongAS++
		}
		if f, ok := asFracSeen(dAS, rAS); ok {
			acc.fracAS.Add(f)
		}
		if f, ok := hopMatchFraction(directHops, revHops, d.Alias, false); ok {
			acc.fracRouter.Add(f)
		}
		if f, ok := hopMatchFraction(directHops, revHops, d.Alias, true); ok {
			acc.fracOpt.Add(f)
		}
		if p.res.HasSuspect() {
			acc.suspects++
		}
	}
	return acc
}

func init() {
	register("table4", "Table 4: probe counts per ablation stage", func(ctx context.Context, s Scale, w io.Writer) error {
		f := runFig5(ctx, s)
		t := &Table{
			Title:  "Table 4 — packets sent per configuration (lower is better)",
			Header: []string{"configuration", "RR", "SpoofRR", "TS", "SpoofTS", "Total"},
		}
		base := f.byName["revtr1.0"].counters.Total()
		for _, name := range ablationNames[:5] {
			c := f.byName[name].counters
			t.AddRow(name,
				fmt.Sprint(c.RR), fmt.Sprint(c.SpoofRR),
				fmt.Sprint(c.TS), fmt.Sprint(c.SpoofTS),
				fmt.Sprint(c.RR+c.SpoofRR+c.TS+c.SpoofTS))
		}
		t.Fprint(w)
		r20 := f.byName["revtr2.0"].counters.Total()
		fmt.Fprintf(w, "  revtr2.0 sends %s as many probes as revtr1.0 (paper: 26%%)\n\n",
			Pct(float64(r20)/float64(base)))
		return nil
	})

	register("fig5a", "Fig 5a: accuracy vs direct traceroutes", func(ctx context.Context, s Scale, w io.Writer) error {
		f := runFig5(ctx, s)
		a20 := scoreAccuracy(f.d, f.byName["revtr2.0"])
		a10 := scoreAccuracy(f.d, f.byName["revtr1.0"])
		t := &Table{
			Title: "Fig 5a — fraction of direct-traceroute hops also on the reverse traceroute",
			Header: []string{"line", "n", "exact-AS", "AS-match-or-missing", "wrong-AS",
				"median-frac-AS", "median-frac-router", "median-frac-router-opt"},
		}
		row := func(name string, a accuracy) {
			exact := 0.0
			incompl := 0.0
			wrong := 0.0
			if a.comparable > 0 {
				exact = float64(a.exactAS) / float64(a.comparable)
				incompl = float64(a.exactAS+a.subseqAS) / float64(a.comparable)
				wrong = float64(a.wrongAS) / float64(a.comparable)
			}
			t.AddRow(name, fmt.Sprint(a.comparable), Pct(exact), Pct(incompl), Pct(wrong),
				F(a.fracAS.Quantile(0.5)), F(a.fracRouter.Quantile(0.5)), F(a.fracOpt.Quantile(0.5)))
		}
		row("revtr2.0", a20)
		row("revtr1.0", a10)
		t.AddRow("forward-RR", fmt.Sprint(f.fwdRRFrac.N()), "-", "-", "-", "-",
			F(f.fwdRRFrac.Quantile(0.5)), "-")
		t.Fprint(w)
		fmt.Fprintf(w, "  paper: revtr2.0 92.3%% exact AS + 6.1%% missing-hop-only; revtr1.0 81.8%% exact\n\n")
		return nil
	})

	register("fig5b", "Fig 5b: coverage per configuration", func(ctx context.Context, s Scale, w io.Writer) error {
		f := runFig5(ctx, s)
		t := &Table{
			Title:  "Fig 5b — coverage (completed / attempted)",
			Header: []string{"technique", "coverage", "completed", "attempted"},
		}
		for _, name := range []string{"revtr1.0", "revtr2.0", "revtr2.0+TS", "revtr2.0+TS+oracle-adj"} {
			st := f.byName[name]
			t.AddRow(name, Pct(float64(st.completed)/float64(st.attempted)),
				fmt.Sprint(st.completed), fmt.Sprint(st.attempted))
		}
		t.Fprint(w)
		fmt.Fprintf(w, "  paper: revtr1.0 100%%, revtr2.0 78.1%%, +TS 78.2%%, +TS+oracle 79.2%%\n\n")
		return nil
	})

	register("fig5c", "Fig 5c: latency CDF per configuration", func(ctx context.Context, s Scale, w io.Writer) error {
		f := runFig5(ctx, s)
		t := &Table{
			Title:  "Fig 5c — reverse traceroute duration (seconds)",
			Header: []string{"configuration", "p10", "p50", "p90", "mean"},
		}
		for _, name := range ablationNames[:5] {
			st := f.byName[name]
			t.AddRow(name, F(st.durations.Quantile(0.1)), F(st.durations.Quantile(0.5)),
				F(st.durations.Quantile(0.9)), F(st.durations.Mean()))
		}
		t.Fprint(w)
		fmt.Fprintf(w, "  paper: median drops from 78s (revtr1.0) to 6s (revtr2.0)\n\n")
		return nil
	})

	register("appxD1", "Appx D.1: marginal utility of Timestamp", func(ctx context.Context, s Scale, w io.Writer) error {
		f := runFig5(ctx, s)
		no := f.byName["revtr2.0"]
		ts := f.byName["revtr2.0+TS"]
		oracle := f.byName["revtr2.0+TS+oracle-adj"]
		t := &Table{
			Title:  "Appx D.1 — Timestamp rescues vs probe cost",
			Header: []string{"configuration", "completed", "TS packets", "SpoofTS packets"},
		}
		for _, st := range []*runStats{no, ts, oracle} {
			t.AddRow(st.name, fmt.Sprint(st.completed), fmt.Sprint(st.counters.TS), fmt.Sprint(st.counters.SpoofTS))
		}
		t.Fprint(w)
		gain := float64(oracle.completed-no.completed) / float64(max(1, no.attempted))
		fmt.Fprintf(w, "  oracle-TS coverage gain: %s (paper: ~1%%, not worth the probes)\n\n", Pct(gain))
		return nil
	})
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
