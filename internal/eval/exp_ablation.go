package eval

import (
	"context"

	"fmt"
	"io"

	"revtr/internal/alias"
	"revtr/internal/core"
	"revtr/internal/ip2as"
	"revtr/internal/vantage"
)

// The ablation experiment covers the DESIGN.md §4 design choices not
// already exercised by a paper artifact: the symmetry policy spectrum
// (never / intradomain-only / always — Q5's dial between coverage and
// trust) and alias-dataset coverage (which bounds both reverse-hop
// extraction and the accuracy evaluation itself).
func init() {
	register("ablation", "design-choice ablations (symmetry policy, alias coverage)", func(ctx context.Context, s Scale, w io.Writer) error {
		d := deployment(s, vantage.Vintage2020)
		src := d.SourceFromAgent(d.SiteAgents[0])
		dests := probeDestinations(d)
		if len(dests) > s.Pairs {
			dests = dests[:s.Pairs]
		}

		// --- Symmetry policy spectrum (design choice 5) ---
		type row struct {
			name                string
			completed, wrong, n int
		}
		runPolicy := func(name string, pol core.SymmetryPolicy) row {
			opts := core.Revtr20Options()
			opts.Symmetry = pol
			opts.ExcludeAtlasFromDstAS = true
			eng := d.EngineWithAdjacencies(opts, nil)
			r := row{name: name}
			for _, dst := range dests {
				if dst.AS == src.Agent.AS {
					continue
				}
				r.n++
				res := eng.MeasureReverse(ctx, src, dst.Addr)
				if res.Status != core.StatusComplete {
					continue
				}
				r.completed++
				truth := d.Fabric.ForwardRouterPath(dst.Router, src.Agent.Addr, dst.Addr, 0)
				if truth == nil {
					continue
				}
				tAS := d.Fabric.ASPath(truth)
				rAS := ip2as.ASPath(d.TruthMapper, res.Addrs())
				if !asPathsEqual(rAS, tAS) && !asSubsequence(rAS, tAS) {
					r.wrong++
				}
			}
			return r
		}
		t := &Table{
			Title:  "Ablation — Q5 symmetry policy: coverage vs wrong paths",
			Header: []string{"policy", "coverage", "wrong-path rate (of completed)"},
		}
		for _, x := range []struct {
			name string
			pol  core.SymmetryPolicy
		}{
			{"never assume", core.SymNever},
			{"intradomain only (revtr2.0)", core.SymIntraOnly},
			{"always assume (revtr1.0)", core.SymAlways},
		} {
			r := runPolicy(x.name, x.pol)
			t.AddRow(r.name, Pct(float64(r.completed)/float64(max(1, r.n))),
				Pct(float64(r.wrong)/float64(max(1, r.completed))))
		}
		t.Fprint(w)
		fmt.Fprintf(w, "  expected: coverage rises down the table, and so does the wrong-path rate (Insight 1.10)\n\n")

		// --- Alias coverage (design choice 8) ---
		t2 := &Table{
			Title:  "Ablation — alias dataset coverage: reverse-hop extraction and accuracy",
			Header: []string{"MIDAR coverage", "coverage", "median router-frac vs direct traceroute"},
		}
		for _, cov := range []float64{0.05, 0.35, 0.90} {
			res := &alias.Combined{
				Midar: alias.NewMidar(d.Topo, cov, s.Seed+20),
				SNMP:  d.Alias.SNMP,
			}
			opts := core.Revtr20Options()
			opts.ExcludeAtlasFromDstAS = true
			eng := core.NewEngine(d.Fabric, d.Pool, d.IngressSvc, d.SiteAgents, res, d.Mapper, nil, opts)
			completed, n := 0, 0
			var frac Dist
			for _, dst := range dests {
				if dst.AS == src.Agent.AS {
					continue
				}
				n++
				r := eng.MeasureReverse(ctx, src, dst.Addr)
				if r.Status != core.StatusComplete {
					continue
				}
				completed++
				direct := d.Prober.Traceroute(dst, src.Agent.Addr)
				if !direct.ReachedDst {
					continue
				}
				if f, ok := hopMatchFraction(direct.HopAddrs(), r.Addrs(), res, false); ok {
					frac.Add(f)
				}
			}
			t2.AddRow(Pct(cov), Pct(float64(completed)/float64(max(1, n))), F(frac.Quantile(0.5)))
		}
		t2.Fprint(w)
		fmt.Fprintf(w, "  expected: richer alias data raises both extraction success and the measured router-level match\n")
		fmt.Fprintf(w, "  (§5.2.2: \"75%% of the direct traceroute hops not seen ... do not allow for alias resolution\")\n\n")
		return nil
	})
}
