package eval

import (
	"context"
	"fmt"
	"io"

	"revtr/internal/core"
	"revtr/internal/core/segments"
	"revtr/internal/netsim/ipv4"
	"revtr/internal/obs"
	"revtr/internal/vantage"
)

// The segments experiment ablates Doubletree-style segment memoization
// (internal/core/segments): the same destination list is measured twice
// with a repeated pass — store off, then store on — and the table
// reports what memoization buys (probes per attempt, splice share) and
// what it must not cost (reverse paths that differ from the
// memoization-free measurement). On a static fabric the divergence
// column must be zero: splicing reproduces the exact hop sequence a
// fresh measurement would have stitched (the differential harness in
// internal/core pins this bit-for-bit).
func init() {
	register("segments", "segment memoization ablation: probe savings vs path fidelity", func(ctx context.Context, s Scale, w io.Writer) error {
		d := deployment(s, vantage.Vintage2020)
		src := d.SourceFromAgent(d.SiteAgents[0])
		dests := probeDestinations(d)
		if len(dests) > s.Pairs/2 {
			dests = dests[:s.Pairs/2]
		}

		// Each pass measures every destination twice: repetition is where
		// shared reverse suffixes recur, which is the regime stop sets
		// target (one-shot workloads cannot splice anything).
		type pass struct {
			probes   uint64
			attempts int
			splices  uint64
			paths    map[ipv4.Addr]string
		}
		run := func(st *segments.Store) pass {
			opts := core.Revtr20Options()
			opts.UseCache = false // isolate memoization from the day cache
			opts.SegmentStore = st
			eng := d.EngineWithAdjacencies(opts, nil)
			reg := obs.New()
			eng.SetMetrics(core.NewMetrics(reg))
			p := pass{paths: make(map[ipv4.Addr]string, len(dests))}
			for round := 0; round < 2; round++ {
				for _, dst := range dests {
					if dst.AS == src.Agent.AS {
						continue
					}
					p.attempts++
					res := eng.MeasureReverse(ctx, src, dst.Addr)
					p.probes += res.Probes.Total()
					if round == 1 && res.Status == core.StatusComplete {
						p.paths[dst.Addr] = fmt.Sprint(res.Addrs())
					}
				}
			}
			p.splices = reg.Counter("engine_segment_splices_total").Value()
			return p
		}

		off := run(nil)
		on := run(segments.New(segments.Options{TTLUS: 1 << 60}))

		diverged, compared := 0, 0
		for dst, path := range off.paths {
			onPath, ok := on.paths[dst]
			if !ok {
				continue
			}
			compared++
			if path != onPath {
				diverged++
			}
		}

		t := &Table{
			Title:  "Segment memoization ablation — probe budget vs path fidelity",
			Header: []string{"store", "probes/attempt", "splice share", "paths diverged"},
		}
		t.AddRow("off", F(float64(off.probes)/float64(max(1, off.attempts))), Pct(0), "—")
		t.AddRow("on", F(float64(on.probes)/float64(max(1, on.attempts))),
			Pct(float64(on.splices)/float64(max(1, on.attempts))),
			fmt.Sprintf("%d of %d", diverged, compared))
		t.Fprint(w)
		saved := 1 - float64(on.probes)/float64(max(1, int(off.probes)))
		fmt.Fprintf(w, "  probe budget saved: %s; expected: substantial savings on the repeated pass with zero diverged paths\n", Pct(saved))
		fmt.Fprintf(w, "  (Doubletree stop sets, Donnet et al.: shared reverse suffixes are measured once and spliced thereafter)\n\n")
		return nil
	})
}
