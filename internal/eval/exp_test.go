package eval

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

// TestAllExperimentsRunAtSmallScale is the integration smoke test for the
// full harness: every registered experiment must run to completion at
// small scale and produce non-trivial output.
func TestAllExperimentsRunAtSmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments take ~30s combined")
	}
	s := SmallScale()
	for _, e := range Experiments() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.Run(context.Background(), s, &buf); err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if buf.Len() < 40 {
				t.Fatalf("%s produced almost no output:\n%s", e.ID, buf.String())
			}
		})
	}
}

// TestFig5ShapesHold asserts the paper's qualitative results at small
// scale: revtr 2.0 uses far fewer probes than revtr 1.0, has higher
// AS-level accuracy, and gives up some coverage to get it.
func TestFig5ShapesHold(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the fig5 workload")
	}
	s := MediumScale()
	f := runFig5(context.Background(), s)
	r10 := f.byName["revtr1.0"]
	r20 := f.byName["revtr2.0"]

	if r20.counters.Total() >= r10.counters.Total() {
		t.Errorf("revtr2.0 probes (%d) not fewer than revtr1.0 (%d)",
			r20.counters.Total(), r10.counters.Total())
	}
	if r20.counters.TS != 0 || r20.counters.SpoofTS != 0 {
		t.Error("revtr2.0 sent Timestamp probes")
	}
	if r20.completed >= r10.completed {
		t.Errorf("revtr2.0 coverage (%d) not below revtr1.0 (%d): the accuracy trade is missing",
			r20.completed, r10.completed)
	}
	a10 := scoreAccuracy(f.d, r10)
	a20 := scoreAccuracy(f.d, r20)
	if a10.comparable > 10 && a20.comparable > 10 {
		f10 := float64(a10.exactAS) / float64(a10.comparable)
		f20 := float64(a20.exactAS) / float64(a20.comparable)
		if f20 <= f10 {
			t.Errorf("revtr2.0 exact-AS %.2f not above revtr1.0 %.2f", f20, f10)
		}
	}
	// Latency: the ablation should be monotone from revtr1.0 to revtr2.0.
	if r20.durations.Quantile(0.5) >= r10.durations.Quantile(0.5) {
		t.Errorf("revtr2.0 median latency %.1fs not below revtr1.0 %.1fs",
			r20.durations.Quantile(0.5), r10.durations.Quantile(0.5))
	}
}

// TestVPSelectionShapesHold asserts §5.3: ingress-based selection tries
// far fewer VPs and reveals at least as much as the baselines.
func TestVPSelectionShapesHold(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the VP-selection workload")
	}
	v := runVPSel(MediumScale())
	ing := v.tried["ingress (revtr2.0)"]
	sc := v.tried["revtr1.0 set-cover"]
	if ing.Quantile(0.5) > sc.Quantile(0.5) {
		t.Errorf("ingress median tried %.1f > set-cover %.1f", ing.Quantile(0.5), sc.Quantile(0.5))
	}
	fi := v.firstBatch["ingress (revtr2.0)"][3]
	fs := v.firstBatch["revtr1.0 set-cover"][3]
	if fi.Mean() < fs.Mean() {
		t.Errorf("ingress first-batch reveal %.2f < set-cover %.2f", fi.Mean(), fs.Mean())
	}
	opt := v.firstBatch["optimal"][3]
	if fi.Mean() > opt.Mean()+1e-9 {
		t.Errorf("ingress reveal %.2f exceeds optimal %.2f", fi.Mean(), opt.Mean())
	}
}

// TestTable2Direction asserts Q5's justification: intradomain symmetry
// holds more often than interdomain symmetry.
func TestTable2Direction(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the table2 study")
	}
	r := runTable2(MediumScale())
	intra := float64(r.intra.yes) / float64(max(1, r.intra.yes+r.intra.no))
	inter := float64(r.inter.yes) / float64(max(1, r.inter.yes+r.inter.no))
	t.Logf("intra=%.2f inter=%.2f", intra, inter)
	if intra <= inter {
		t.Errorf("intradomain symmetry (%.2f) not above interdomain (%.2f)", intra, inter)
	}
}

func TestExperimentOutputMentionsPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("runs an experiment")
	}
	e, _ := Find("fig9a")
	var buf bytes.Buffer
	if err := e.Run(context.Background(), SmallScale(), &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "paper:") {
		t.Error("experiment output lacks the paper reference line")
	}
}
