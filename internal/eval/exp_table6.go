package eval

import (
	"context"
	"fmt"
	"io"

	"revtr"
	"revtr/internal/netsim/ipv4"
)

// Table 6 + Fig 11 (Appx F): Record Route responsiveness and reachability
// surveys, on the 2020 deployment versus a 2016-style pre-flattening
// Internet with education-hosted vantage points. Also quantifies the
// Insight 1.3 claim: spoofing nearly doubles the fraction of
// ⟨source, destination⟩ pairs for which reverse hops can be measured.

type surveyStats struct {
	probed      int
	pingResp    int
	rrResp      int
	reachable8  int  // some VP within 8 RR hops
	distToVP    Dist // closest-VP RR distance for RR-responsive dests
	pairInRange int  // ⟨src,dst⟩ pairs with the src itself within 8 hops
	pairTotal   int
}

// runSurvey measures one destination per announced prefix from every site.
func runSurvey(d *revtr.Deployment, maxDests int) surveyStats {
	var st surveyStats
	dests := d.FirstHostPerPrefix() // raw population, no responsiveness filter
	if len(dests) > maxDests {
		dests = dests[:maxDests]
	}
	for _, h := range dests {
		st.probed++
		// Three plain pings.
		alive := false
		for k := 0; k < 3 && !alive; k++ {
			alive = d.Prober.Ping(d.SiteAgents[k%len(d.SiteAgents)], h.Addr).Alive
		}
		if !alive {
			continue
		}
		st.pingResp++
		// One RR ping per site; track the closest distance at which the
		// destination's stamp appears.
		best := -1
		responded := false
		for si, vp := range d.SiteAgents {
			rr := d.Prober.RRPing(vp, h.Addr)
			if !rr.Responded {
				continue
			}
			responded = true
			dist := rrDistanceTo(rr.Recorded, h.Addr)
			if dist > 0 && (best < 0 || dist < best) {
				best = dist
			}
			st.pairTotal++
			if dist > 0 && dist <= 8 {
				st.pairInRange++
			}
			_ = si
		}
		if responded {
			st.rrResp++
		}
		if best > 0 {
			st.distToVP.Add(float64(best))
			if best <= 8 {
				st.reachable8++
			}
		}
	}
	return st
}

// rrDistanceTo finds the 1-based slot position of the destination's stamp
// (or its /30 forward marker) in the recorded array — the RR distance from
// the prober.
func rrDistanceTo(recorded []ipv4.Addr, dst ipv4.Addr) int {
	for k, x := range recorded {
		if x == dst {
			return k + 1
		}
	}
	// Non-stamping destination: fall back to the /30 marker.
	for k, x := range recorded {
		if x != dst && (x.Mask(30) == dst.Mask(30)) {
			return k + 1
		}
	}
	return -1
}

func init() {
	register("table6", "Table 6: RR responsiveness and reachability, 2016 vs 2020", func(ctx context.Context, s Scale, w io.Writer) error {
		d20 := deploymentNoSurvey(s)
		d16 := deployment2016(s)
		st20 := runSurvey(d20, 2*s.Pairs)
		st16 := runSurvey(d16, 2*s.Pairs)
		t := &Table{
			Title:  "Table 6 — destination survey",
			Header: []string{"metric", "2016-style", "2020-style"},
		}
		row := func(name string, f func(surveyStats) string) {
			t.AddRow(name, f(st16), f(st20))
		}
		row("all probed", func(s surveyStats) string { return fmt.Sprint(s.probed) })
		row("ping responsive", func(s surveyStats) string {
			return fmt.Sprintf("%d (%s)", s.pingResp, Pct(float64(s.pingResp)/float64(max(1, s.probed))))
		})
		row("RR responsive", func(s surveyStats) string {
			return fmt.Sprintf("%d (%s)", s.rrResp, Pct(float64(s.rrResp)/float64(max(1, s.probed))))
		})
		row("RR-reachable in <=8 hops", func(s surveyStats) string {
			return fmt.Sprintf("%d (%s of RR-responsive)", s.reachable8, Pct(float64(s.reachable8)/float64(max(1, s.rrResp))))
		})
		t.Fprint(w)
		fmt.Fprintf(w, "  paper: RR-responsive ~57-58%% of probed both years; 62-63%% of RR-responsive within 8 hops\n\n")
		return nil
	})

	register("fig11", "Fig 11 + Appx F: closest-VP RR distance, 2016 vs 2020; spoofing gain", func(ctx context.Context, s Scale, w io.Writer) error {
		d20 := deploymentNoSurvey(s)
		d16 := deployment2016(s)
		st20 := runSurvey(d20, 2*s.Pairs)
		st16 := runSurvey(d16, 2*s.Pairs)
		t := &Table{
			Title:  "Fig 11 — CDF of RR hops from the closest VP (RR-responsive destinations)",
			Header: []string{"deployment", "<=2", "<=4", "<=6", "<=8"},
		}
		for _, x := range []struct {
			name string
			st   surveyStats
		}{{"2016-style", st16}, {"2020-style", st20}} {
			r := x.st.distToVP.CDFRow([]float64{2, 4, 6, 8})
			t.AddRow(x.name, Pct(r[0]), Pct(r[1]), Pct(r[2]), Pct(r[3]))
		}
		t.Fprint(w)
		fmt.Fprintf(w, "  paper: within-4-hops jumps from 16%% (2016) to 39%% (2020)\n")
		// Insight 1.3: without spoofing a pair works only when that
		// particular source is in range; with spoofing the closest VP
		// serves every source.
		noSpoof := float64(st20.pairInRange) / float64(max(1, st20.pairTotal))
		withSpoof := float64(st20.reachable8) / float64(max(1, st20.rrResp))
		fmt.Fprintf(w, "  spoofing coverage: %s of pairs without spoofing vs %s of destinations with (paper: 32%% vs 63%%)\n\n",
			Pct(noSpoof), Pct(withSpoof))
		return nil
	})
}
