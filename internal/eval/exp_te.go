package eval

import (
	"context"

	"fmt"
	"io"
	"sort"

	"revtr"
	"revtr/internal/core"
	"revtr/internal/ip2as"
	"revtr/internal/measure"
	"revtr/internal/netsim/bgp"
	"revtr/internal/netsim/fabric"
	"revtr/internal/netsim/ipv4"
	"revtr/internal/netsim/topology"
	"revtr/internal/vantage"
)

// Fig 7 (§6.1): the PEERING traffic-engineering case study. A testbed
// prefix is anycast from seven sites; reverse traceroutes measured with
// the anycast address as the source reveal which networks carry the
// return paths, informing two interventions:
//
//	Left:  a large transit ("Cogent") carries routes to a distant site,
//	       inflating latency; poisoning it on that site's announcement
//	       shifts its routes to the near site and cuts RTTs.
//	Right: one site has two providers at an IXP ("Coloclue"/"BIT"); the
//	       catchment is skewed because a feeder AS ("Fusix") funnels
//	       routes to one provider. No-export communities — iterated as
//	       feeders shift ("True") — rebalance the split.

const teSvcPrefix = "198.51.100.0/24"

type teRound struct {
	routes *bgp.Routes
	// catchment[site] = targets whose pings landed at that site.
	catchment map[int]int
	// siteOf / rtt per target AS (ping-measured).
	siteOf map[topology.ASN]int
	rtt    map[topology.ASN]int64
	// upstream per routed AS: the AS adjacent to the origin on its path.
	upstream map[topology.ASN]topology.ASN
}

type teEnv struct {
	poisonSite int
	d          *revtr.Deployment
	ann        *bgp.Announcement
	group      *fabric.AnycastGroup
	targets    []*topology.Host
	svc        ipv4.Addr
	source     core.Source
	eng        *core.Engine
	siteName   []string
}

func buildTE(s Scale) *teEnv {
	cfg := revtr.Config{
		Topology:      topology.DefaultConfig(s.ASes),
		Sites:         s.Sites,
		Vintage:       vantage.Vintage2020,
		Probes:        s.Probes,
		ProbeCredits:  1 << 30,
		AtlasSize:     s.AtlasSize,
		AliasCoverage: 0.35,
		Seed:          s.Seed + 11,
	}
	cfg.Topology.Seed = s.Seed + 11
	d := revtr.Build(cfg)

	// Attachment ASes for the 7 sites: a far "UFMG" site behind an NREN
	// (RNP-like), a near "NEU" site behind a transit, an "AMS" site with
	// two colo providers, and four others.
	nrens := d.Topo.ASesByTier(topology.NREN)
	transits := d.Topo.ASesByTier(topology.Transit)
	colos := d.Topo.ASesByTier(topology.Colo)
	pick := func(list []topology.ASN, i int) topology.ASN { return list[i%len(list)] }
	ufmgUp := pick(nrens, 0)
	neuUp := pick(transits, 1)
	amsA, amsB := pick(colos, 0), pick(colos, 1)
	ann := &bgp.Announcement{
		Prefix: ipv4.MustParsePrefix(teSvcPrefix),
		Origin: topology.ASN(len(d.Topo.ASes)),
		Sites: []bgp.AnnSite{
			{Name: "UFMG", Neighbors: []bgp.AnnNeighbor{{ASN: ufmgUp, Rel: topology.RelCustomer}}},
			{Name: "NEU", Neighbors: []bgp.AnnNeighbor{{ASN: neuUp, Rel: topology.RelCustomer}}},
			{Name: "AMS", Neighbors: []bgp.AnnNeighbor{
				{ASN: amsA, Rel: topology.RelCustomer},
				{ASN: amsB, Rel: topology.RelCustomer},
			}},
			{Name: "s4", Neighbors: []bgp.AnnNeighbor{{ASN: pick(transits, 3), Rel: topology.RelCustomer}}},
			{Name: "s5", Neighbors: []bgp.AnnNeighbor{{ASN: pick(transits, 5), Rel: topology.RelCustomer}}},
			{Name: "s6", Neighbors: []bgp.AnnNeighbor{{ASN: pick(colos, 2), Rel: topology.RelCustomer}}},
			{Name: "s7", Neighbors: []bgp.AnnNeighbor{{ASN: pick(transits, 7), Rel: topology.RelCustomer}}},
		},
	}
	svc := ipv4.MustParseAddr("198.51.100.1")
	group := &fabric.AnycastGroup{Prefix: ann.Prefix, ServiceAddr: svc}
	for _, site := range ann.Sites {
		via := site.Neighbors[0].ASN
		group.Sites = append(group.Sites, fabric.AnycastSite{
			Name: site.Name, Via: via, Router: d.Topo.ASes[via].Borders[0],
		})
	}

	// Monitoring targets: representative responsive hosts (the paper's
	// 15,300 routing-equivalence groups, scaled).
	var targets []*topology.Host
	for _, h := range d.OnePerPrefix() {
		targets = append(targets, h)
		if len(targets) >= s.Pairs {
			break
		}
	}

	env := &teEnv{d: d, ann: ann, group: group, targets: targets, svc: svc}
	for _, st := range ann.Sites {
		env.siteName = append(env.siteName, st.Name)
	}
	return env
}

// apply recomputes BGP for the current announcement and installs the
// anycast group in the data plane.
func (e *teEnv) apply() *bgp.Routes {
	routes := bgp.Compute(e.d.Topo, e.ann, e.d.Routing.TieBreakFn(), e.d.Routing.Pref())
	e.group.Routes = routes
	e.d.Fabric.ClearAnycast()
	e.d.Fabric.AddAnycast(e.group)
	return routes
}

// measure runs one measurement round: catchments and RTTs by ping from
// every target toward the anycast address.
func (e *teEnv) measure() *teRound {
	r := &teRound{
		routes:    e.apply(),
		catchment: map[int]int{},
		siteOf:    map[topology.ASN]int{},
		rtt:       map[topology.ASN]int64{},
		upstream:  map[topology.ASN]topology.ASN{},
	}
	// The anycast revtr source (the PEERING mux: replies from any site
	// arrive at the measurement VM).
	if e.source.Atlas == nil {
		e.source = e.d.SourceFromAgent(measure.Agent{
			Name: "anycast-src", Addr: e.svc,
			Router: e.group.Sites[0].Router,
			AS:     e.group.Sites[0].Via,
			Site:   0,
		})
		e.eng = e.d.Engine(core.Revtr20Options())
	}
	for asn := range e.d.Topo.ASes {
		rt := r.routes.Per[asn]
		if rt.Site < 0 {
			continue
		}
		real := rt.Path[:len(rt.Path)-1-len(e.ann.Sites[rt.Site].Poison)]
		if len(real) > 0 {
			r.upstream[topology.ASN(asn)] = real[len(real)-1]
		} else {
			r.upstream[topology.ASN(asn)] = topology.ASN(asn)
		}
	}
	for _, h := range e.targets {
		agent := measure.AgentFromHost(e.d.Topo, h)
		pr := e.d.Prober.Ping(agent, e.svc)
		if pr.Site >= 0 {
			r.catchment[pr.Site]++
			r.siteOf[h.AS] = pr.Site
		}
		if pr.Alive {
			r.rtt[h.AS] = pr.RTTUS
		}
	}
	return r
}

// reverseSplit measures reverse traceroutes from the given targets with
// the anycast source and tallies, for paths traversing carrier, the site
// each target's traffic lands at (the Fig 7 left-hand pie).
func (e *teEnv) reverseSplit(ctx context.Context, r *teRound, targets []*topology.Host, carrier topology.ASN) (map[int]int, int) {
	split := map[int]int{}
	seenOnRev := 0
	for _, h := range targets {
		res := e.eng.MeasureReverse(ctx, e.source, h.Addr)
		if res.Status != core.StatusComplete {
			continue
		}
		through := false
		for _, asn := range ip2as.ASPath(e.d.Mapper, res.Addrs()) {
			if asn == carrier {
				through = true
				break
			}
		}
		if !through {
			continue
		}
		seenOnRev++
		if site, ok := r.siteOf[h.AS]; ok {
			split[site]++
		}
	}
	return split, seenOnRev
}

// dataPath returns the AS-level path a target's traffic to the anycast
// address actually takes in the data plane (per-router alternative
// selection included).
func (e *teEnv) dataPath(h *topology.Host) []topology.ASN {
	rp := e.d.Fabric.ForwardRouterPath(h.Router, e.svc, h.Addr, uint64(h.ID))
	return e.d.Fabric.ASPath(rp)
}

// dominantCarrier picks the transit AS observed on the most data-plane
// paths toward the anycast prefix while holding tied-best routes to at
// least two sites — the "Cogent" of the story, whose ingress routers
// hot-potato to different sites.
func (e *teEnv) dominantCarrier(r *teRound) topology.ASN {
	ups := map[topology.ASN]bool{}
	for _, st := range e.ann.Sites {
		for _, nb := range st.Neighbors {
			ups[nb.ASN] = true
		}
	}
	// For each (carrier, site) pair, collect the RTTs of targets routed
	// through that carrier into that site. The intervention targets the
	// pair with the worst latency — the paper's "Cogent routers in the
	// southeastern US chose routes to Brazil" situation.
	type key struct {
		c topology.ASN
		s int
	}
	rtts := map[key]*Dist{}
	for _, h := range e.targets {
		site, ok := r.siteOf[h.AS]
		if !ok {
			continue
		}
		rtt, ok := r.rtt[h.AS]
		if !ok {
			continue
		}
		for _, hop := range e.dataPath(h) {
			if ups[hop] || hop == h.AS {
				continue
			}
			tier := e.d.Topo.ASes[hop].Tier
			if tier != topology.Transit && tier != topology.Tier1 {
				continue
			}
			k := key{hop, site}
			if rtts[k] == nil {
				rtts[k] = &Dist{}
			}
			rtts[k].Add(float64(rtt))
		}
	}
	best := key{topology.None, -1}
	bestScore := 0.0
	//revtr:unordered max-selection with total-order tie-break (score, then carrier, then site); any iteration order picks the same pair
	for k, d := range rtts {
		if d.N() < 5 {
			continue // need a few suffering clients
		}
		altSites := map[int]bool{r.routes.Per[k.c].Site: true}
		for _, alt := range r.routes.Per[k.c].Alts {
			altSites[alt.Site] = true
		}
		if len(altSites) < 2 {
			continue // poisoning one site must leave alternatives
		}
		score := d.Mean() * float64(d.N())
		if score > bestScore || (score == bestScore && bestScore > 0 && (k.c < best.c || (k.c == best.c && k.s < best.s))) {
			best, bestScore = k, score
		}
	}
	e.poisonSite = best.s
	return best.c
}

func sitesShare(m map[int]int, names []string) string {
	type kv struct {
		site int
		n    int
	}
	var all []kv
	total := 0
	for s, n := range m {
		all = append(all, kv{s, n})
		total += n
	}
	sort.Slice(all, func(i, j int) bool { return all[i].n > all[j].n })
	out := ""
	for _, x := range all {
		if x.site < 0 || x.site >= len(names) {
			continue
		}
		out += fmt.Sprintf("%s=%s ", names[x.site], Pct(float64(x.n)/float64(max(1, total))))
	}
	return out
}

func init() {
	register("fig7", "Fig 7 (§6.1): traffic engineering with reverse traceroutes", func(ctx context.Context, s Scale, w io.Writer) error {
		e := buildTE(s)

		fmt.Fprintln(w, "== Fig 7 — anycast traffic engineering on the PEERING-like testbed ==")
		base := e.measure()
		fmt.Fprintf(w, "  baseline catchments: %s\n", sitesShare(base.catchment, e.siteName))

		// Left: poison the dominant carrier on the far (UFMG) site.
		carrier := e.dominantCarrier(base)
		if carrier == topology.None {
			fmt.Fprintln(w, "  no split carrier found; skipping poisoning scenario")
		} else {
			// Reverse traceroutes from targets routed through the carrier
			// (control-plane candidates, revtr-verified — the real study
			// could only see this via revtr 2.0).
			var affected []*topology.Host
			for _, h := range e.targets {
				if site, ok := base.siteOf[h.AS]; !ok || site != e.poisonSite {
					continue
				}
				for _, asn := range e.dataPath(h) {
					if asn == carrier {
						affected = append(affected, h)
						break
					}
				}
			}
			if len(affected) > s.Pairs/3 {
				affected = affected[:s.Pairs/3]
			}
			split, seen := e.reverseSplit(ctx, base, affected, carrier)
			fmt.Fprintf(w, "  carrier AS%d (%s, cone %d): %d reverse paths verified through it; site split: %s\n",
				carrier, e.d.Topo.ASes[carrier].Tier, e.d.Topo.ASes[carrier].ConeSize,
				seen, sitesShare(split, e.siteName))
			e.ann.Sites[e.poisonSite].Poison = []topology.ASN{carrier}
			after := e.measure()
			split2, _ := e.reverseSplit(ctx, after, affected, carrier)
			fmt.Fprintf(w, "  after poisoning AS%d on the %s announcement: site split %s\n",
				carrier, e.siteName[e.poisonSite], sitesShare(split2, e.siteName))
			var rttBefore, rttAfter Dist
			moved := 0
			for _, h := range affected {
				b, ok1 := base.rtt[h.AS]
				a, ok2 := after.rtt[h.AS]
				if ok1 && ok2 {
					rttBefore.Add(float64(b) / 1000)
					rttAfter.Add(float64(a) / 1000)
					if base.siteOf[h.AS] != after.siteOf[h.AS] {
						moved++
					}
				}
			}
			fmt.Fprintf(w, "  %d/%d affected targets changed site; RTT %.1fms -> %.1fms (mean; paper: -70ms/-99ms for two clients)\n",
				moved, len(affected), rttBefore.Mean(), rttAfter.Mean())
			e.ann.Sites[e.poisonSite].Poison = nil
		}

		// Right: balance the AMS site's two providers.
		amsSite := 2
		amsA := e.ann.Sites[amsSite].Neighbors[0].ASN
		amsB := e.ann.Sites[amsSite].Neighbors[1].ASN
		split := func(r *teRound) (int, int) {
			na, nb := 0, 0
			for asn, up := range r.upstream {
				if r.routes.Per[asn].Site != amsSite {
					continue
				}
				switch up {
				case amsA:
					na++
				case amsB:
					nb++
				}
			}
			return na, nb
		}
		r1 := e.measure()
		a1, b1 := split(r1)
		fmt.Fprintf(w, "  AMS providers: AS%d=%d AS%d=%d (default)\n", amsA, a1, amsB, b1)
		// Feeder: most common AS before the dominant provider.
		dom := amsA
		if b1 > a1 {
			dom = amsB
		}
		feeder := map[topology.ASN]int{}
		for asn := range e.d.Topo.ASes {
			rt := r1.routes.Per[asn]
			if rt.Site != amsSite {
				continue
			}
			real := rt.Path[:len(rt.Path)-1]
			for j := 0; j+1 < len(real); j++ {
				if real[j+1] == dom {
					feeder[real[j]]++
				}
			}
		}
		var f1 topology.ASN = topology.None
		bestN := 0
		//revtr:unordered max-selection with tie-break on smallest ASN; any iteration order picks the same feeder
		for asn, n := range feeder {
			if n > bestN || (n == bestN && asn < f1) {
				f1, bestN = asn, n
			}
		}
		if f1 == topology.None {
			fmt.Fprintln(w, "  no feeder found; skipping no-export scenario")
			fmt.Fprintln(w)
			return nil
		}
		e.ann.Sites[amsSite].Neighbors[0].NoExportTo = nil
		domIdx := 0
		if dom == amsB {
			domIdx = 1
		}
		e.ann.Sites[amsSite].Neighbors[domIdx].NoExportTo = []topology.ASN{f1}
		r2 := e.measure()
		a2, b2 := split(r2)
		fmt.Fprintf(w, "  after no-export to feeder AS%d: AS%d=%d AS%d=%d\n", f1, amsA, a2, amsB, b2)
		// Second feeder iteration ("True"): recompute, block the next one.
		feeder2 := map[topology.ASN]int{}
		for asn := range e.d.Topo.ASes {
			rt := r2.routes.Per[asn]
			if rt.Site != amsSite {
				continue
			}
			real := rt.Path[:len(rt.Path)-1]
			for j := 0; j+1 < len(real); j++ {
				if real[j+1] == dom && real[j] != f1 {
					feeder2[real[j]]++
				}
			}
		}
		var f2 topology.ASN = topology.None
		bestN = 0
		//revtr:unordered max-selection with tie-break on smallest ASN; any iteration order picks the same feeder
		for asn, n := range feeder2 {
			if n > bestN || (n == bestN && asn < f2) {
				f2, bestN = asn, n
			}
		}
		if f2 != topology.None {
			e.ann.Sites[amsSite].Neighbors[domIdx].NoExportTo = []topology.ASN{f1, f2}
			r3 := e.measure()
			a3, b3 := split(r3)
			fmt.Fprintf(w, "  after also blocking AS%d: AS%d=%d AS%d=%d\n", f2, amsA, a3, amsB, b3)
		}
		fmt.Fprintf(w, "  paper: split moves from 91.2:8.8 to 60.5:39.5 across three configurations\n\n")
		return nil
	})
}
