package eval

import (
	"context"
	"fmt"
	"io"
	"sort"
	"sync"

	"revtr"
	"revtr/internal/ingress"
	"revtr/internal/measure"
	"revtr/internal/netsim/ipv4"
	"revtr/internal/vantage"
)

// §5.3: evaluating Record Route vantage point selection. For every BGP
// prefix with at least three responsive destinations (two consumed by the
// survey, one held out for evaluation), each technique's VP plan is probed
// in batches, measuring reverse hops uncovered by the first batch
// (Fig 6a/6b), spoofers tried until a reveal (Fig 6c), and whether the
// technique finds a VP within 8 RR hops at all (Table 5).

type vpselData struct {
	d *revtr.Deployment
	// held-out evaluation destination per prefix.
	evalDst map[ipv4.Prefix]ipv4.Addr
	// firstBatch[technique][batchSize] -> reveal counts.
	firstBatch map[string]map[int]*Dist
	// tried[technique] -> number of spoofers tried until reveal/give-up.
	tried map[string]*Dist
	// found[technique] -> prefixes where a VP within range was found.
	found     map[string]int
	nPrefixes int
}

var (
	vpselMu    sync.Mutex
	vpselCache = map[string]*vpselData{}
)

// revealCount probes dst from vantage point vp spoofing src and counts
// reverse hops uncovered.
func revealCount(d *revtr.Deployment, vp, src measure.Agent, dst ipv4.Addr) int {
	if vp.Addr == src.Addr {
		return 0
	}
	rr := d.Prober.SpoofedRRPing(vp, src.Addr, dst)
	return len(extractAfterTarget(rr.Recorded, dst))
}

func runVPSel(s Scale) *vpselData {
	key := fig5Key(s)
	vpselMu.Lock()
	if v, ok := vpselCache[key]; ok {
		vpselMu.Unlock()
		return v
	}
	vpselMu.Unlock()

	d := deployment(s, vantage.Vintage2020)
	v := &vpselData{
		d:          d,
		evalDst:    map[ipv4.Prefix]ipv4.Addr{},
		firstBatch: map[string]map[int]*Dist{},
		tried:      map[string]*Dist{},
		found:      map[string]int{},
	}
	src := d.SiteAgents[0]

	// Held-out destinations: third responsive host per announced prefix.
	count := 0
	for _, as := range d.Topo.ASes {
		for _, pfx := range as.Prefixes {
			var resp []ipv4.Addr
			for _, hid := range as.Hosts {
				h := &d.Topo.Hosts[hid]
				if pfx.Contains(h.Addr) && h.PingResponsive && h.RRResponsive {
					resp = append(resp, h.Addr)
				}
			}
			if len(resp) >= 3 {
				v.evalDst[pfx] = resp[2]
				count++
			}
		}
		if count >= s.Pairs {
			break
		}
	}
	v.nPrefixes = len(v.evalDst)

	techniques := map[string]ingress.Selection{
		"ingress (revtr2.0)": ingress.SelIngress,
		"revtr1.0 set-cover": ingress.SelSetCover,
		"global":             ingress.SelGlobal,
	}
	for name := range techniques {
		v.firstBatch[name] = map[int]*Dist{}
		v.tried[name] = &Dist{}
	}
	v.firstBatch["optimal"] = map[int]*Dist{}
	v.firstBatch["optimal"][3] = &Dist{}

	for pfx, dst := range v.evalDst {
		// Optimal: the best any site can do.
		bestAny := 0
		for _, vp := range d.SiteAgents {
			if n := revealCount(d, vp, src, dst); n > bestAny {
				bestAny = n
			}
		}
		v.firstBatch["optimal"][3].Add(float64(bestAny))
		if bestAny > 0 {
			v.found["optimal"]++
		}

		for name, sel := range techniques {
			plan := d.IngressSvc.PlanFor(pfx, sel)
			// First-batch reveals for batch sizes 1, 3, 5.
			for _, bs := range []int{1, 3, 5} {
				if name != "ingress (revtr2.0)" && bs != 3 {
					continue // Fig 6a varies batch size on the ingress plan
				}
				if v.firstBatch[name][bs] == nil {
					v.firstBatch[name][bs] = &Dist{}
				}
				best := 0
				for i := 0; i < bs && i < len(plan.Order); i++ {
					if n := revealCount(d, d.SiteAgents[plan.Order[i]], src, dst); n > best {
						best = n
					}
				}
				v.firstBatch[name][bs].Add(float64(best))
			}
			// Spoofers tried until first reveal (Fig 6c) and in-range
			// determination (Table 5).
			tried := 0
			foundOne := false
			for _, si := range plan.Order {
				tried++
				if revealCount(d, d.SiteAgents[si], src, dst) > 0 {
					foundOne = true
					break
				}
			}
			if tried == 0 {
				tried = 1 // empty plan: counts as one decision
			}
			v.tried[name].Add(float64(tried))
			if foundOne {
				v.found[name]++
			}
		}
	}

	vpselMu.Lock()
	vpselCache[key] = v
	vpselMu.Unlock()
	return v
}

// runHeuristicAblation re-surveys with reduced heuristics to produce the
// Table 5 ingress rows.
func runHeuristicAblation(s Scale, v *vpselData) map[string]int {
	d := v.d
	src := d.SiteAgents[0]
	out := map[string]int{}
	for name, heur := range map[string]ingress.Heuristics{
		"ingress (no heuristics)": {},
		"ingress + double-stamp":  {DoubleStamp: true},
	} {
		svc := ingress.NewService(d.Prober, d.SiteAgents, heur, s.Seed)
		// Survey consumes the service's seeded stream per prefix, so the
		// prefix order must be deterministic, not map order.
		var prefixes []ipv4.Prefix
		for pfx := range v.evalDst {
			prefixes = append(prefixes, pfx)
		}
		sort.Slice(prefixes, func(i, j int) bool {
			if prefixes[i].Addr != prefixes[j].Addr {
				return prefixes[i].Addr < prefixes[j].Addr
			}
			return prefixes[i].Bits < prefixes[j].Bits
		})
		svc.Survey(prefixes, d.SurveyDestinations)
		found := 0
		for pfx, dst := range v.evalDst {
			plan := svc.PlanFor(pfx, ingress.SelIngress)
			for _, si := range plan.Order {
				if revealCount(d, d.SiteAgents[si], src, dst) > 0 {
					found++
					break
				}
			}
		}
		out[name] = found
	}
	return out
}

func init() {
	register("fig6", "Fig 6a-c: RR vantage point selection", func(ctx context.Context, s Scale, w io.Writer) error {
		v := runVPSel(s)
		t := &Table{
			Title:  "Fig 6a — reverse hops uncovered by the first batch (ingress plan)",
			Header: []string{"batch size", "mean", "P(>=1)", "P(>=4)"},
		}
		for _, bs := range []int{1, 3, 5} {
			d := v.firstBatch["ingress (revtr2.0)"][bs]
			t.AddRow(fmt.Sprint(bs), F(d.Mean()), Pct(d.FracAtLeast(1)), Pct(d.FracAtLeast(4)))
		}
		od := v.firstBatch["optimal"][3]
		t.AddRow("optimal", F(od.Mean()), Pct(od.FracAtLeast(1)), Pct(od.FracAtLeast(4)))
		t.Fprint(w)
		fmt.Fprintf(w, "  paper: batches of 3 ≈ batches of 5; both near optimal\n\n")

		t2 := &Table{
			Title:  "Fig 6b — reverse hops uncovered by first batch of 3, per technique",
			Header: []string{"technique", "mean", "P(>=1)", "P(>=4)"},
		}
		for _, name := range []string{"ingress (revtr2.0)", "revtr1.0 set-cover", "global", "optimal"} {
			d := v.firstBatch[name][3]
			t2.AddRow(name, F(d.Mean()), Pct(d.FracAtLeast(1)), Pct(d.FracAtLeast(4)))
		}
		t2.Fprint(w)
		fmt.Fprintf(w, "  paper: ingress near optimal; revtr1.0 reveals 4+ hops for 20%% vs 50%% for revtr2.0\n\n")

		t3 := &Table{
			Title:  "Fig 6c — spoofing VPs tried before reveal/give-up",
			Header: []string{"technique", "median", "P(>=10)", "P(>=min(100,#sites))"},
		}
		cap100 := float64(len(v.d.SiteAgents))
		if cap100 > 100 {
			cap100 = 100
		}
		for _, name := range []string{"ingress (revtr2.0)", "revtr1.0 set-cover", "global"} {
			d := v.tried[name]
			t3.AddRow(name, F(d.Quantile(0.5)), Pct(d.FracAtLeast(10)), Pct(d.FracAtLeast(cap100)))
		}
		t3.Fprint(w)
		fmt.Fprintf(w, "  paper: revtr2.0 tries 10+ VPs for <5%% of prefixes vs 28%% for revtr1.0/global\n\n")
		return nil
	})

	register("table5", "Table 5: VP found within 8 RR hops per technique", func(ctx context.Context, s Scale, w io.Writer) error {
		v := runVPSel(s)
		abl := runHeuristicAblation(s, v)
		t := &Table{
			Title:  "Table 5 — fraction of prefixes where a VP within 8 RR hops is found",
			Header: []string{"technique", "fraction"},
		}
		n := float64(max(1, v.nPrefixes))
		t.AddRow("ingress (no heuristics)", F(float64(abl["ingress (no heuristics)"])/n))
		t.AddRow("ingress + double-stamp", F(float64(abl["ingress + double-stamp"])/n))
		t.AddRow("ingress + double-stamp + loop (revtr2.0)", F(float64(v.found["ingress (revtr2.0)"])/n))
		t.AddRow("revtr1.0", F(float64(v.found["revtr1.0 set-cover"])/n))
		t.AddRow("optimal", F(float64(v.found["optimal"])/n))
		t.Fprint(w)
		fmt.Fprintf(w, "  paper: 0.65 / 0.70 / 0.71 / 0.72 / 0.72\n\n")
		return nil
	})
}
