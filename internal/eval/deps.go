package eval

import (
	"fmt"
	"sync"

	"revtr"
	"revtr/internal/core"
	"revtr/internal/measure"
	"revtr/internal/netsim/topology"
	"revtr/internal/vantage"
)

// Deployments are expensive (topology generation + ingress survey), so
// experiments sharing a scale share one.
var (
	depMu    sync.Mutex
	depCache = map[string]*revtr.Deployment{}
)

func deployment(s Scale, vintage vantage.Vintage) *revtr.Deployment {
	key := fmt.Sprintf("%d/%d/%d/%d/%d/%d", s.ASes, s.Sites, s.Probes, s.AtlasSize, s.Seed, vintage)
	depMu.Lock()
	defer depMu.Unlock()
	if d, ok := depCache[key]; ok {
		return d
	}
	cfg := revtr.Config{
		Topology:      topology.DefaultConfig(s.ASes),
		Sites:         s.Sites,
		Vintage:       vintage,
		Probes:        s.Probes,
		ProbeCredits:  1 << 30,
		AtlasSize:     s.AtlasSize,
		AliasCoverage: 0.35,
		Seed:          s.Seed,
	}
	cfg.Topology.Seed = s.Seed
	d := revtr.Build(cfg)
	depCache[key] = d
	return d
}

// deploymentNoSurvey builds a 2020 deployment without the ingress survey,
// for experiments that issue all probes themselves (Table 6, Fig 11).
func deploymentNoSurvey(s Scale) *revtr.Deployment {
	key := fmt.Sprintf("nosurvey/%d/%d/%d/%d/%d", s.ASes, s.Sites, s.Probes, s.AtlasSize, s.Seed)
	depMu.Lock()
	defer depMu.Unlock()
	if d, ok := depCache[key]; ok {
		return d
	}
	cfg := revtr.Config{
		Topology:      topology.DefaultConfig(s.ASes),
		Sites:         s.Sites,
		Vintage:       vantage.Vintage2020,
		Probes:        s.Probes,
		ProbeCredits:  1 << 30,
		AtlasSize:     s.AtlasSize,
		AliasCoverage: 0.35,
		Seed:          s.Seed,
		SkipSurvey:    true,
	}
	cfg.Topology.Seed = s.Seed
	d := revtr.Build(cfg)
	depCache[key] = d
	return d
}

// deployment2016 builds the pre-flattening variant for Table 6 / Fig 11.
func deployment2016(s Scale) *revtr.Deployment {
	key := fmt.Sprintf("2016/%d/%d/%d/%d/%d", s.ASes, s.Sites, s.Probes, s.AtlasSize, s.Seed)
	depMu.Lock()
	defer depMu.Unlock()
	if d, ok := depCache[key]; ok {
		return d
	}
	cfg := revtr.Config{
		Topology:      topology.Config2016(s.ASes),
		Sites:         s.Sites / 2, // fewer sites existed in 2016
		Vintage:       vantage.Vintage2016,
		Probes:        s.Probes,
		ProbeCredits:  1 << 30,
		AtlasSize:     s.AtlasSize,
		AliasCoverage: 0.35,
		Seed:          s.Seed,
		SkipSurvey:    true, // Table 6 / Fig 11 only issue their own probes
	}
	cfg.Topology.Seed = s.Seed
	d := revtr.Build(cfg)
	depCache[key] = d
	return d
}

// ResetDeployments clears the cache (tests that mutate deployments).
func ResetDeployments() {
	depMu.Lock()
	defer depMu.Unlock()
	depCache = map[string]*revtr.Deployment{}
}

// sourcesFor registers the first n vantage point sites as Reverse
// Traceroute sources with atlases (the paper's sources are the M-Lab
// sites).
func sourcesFor(d *revtr.Deployment, n int) []core.Source {
	if n > len(d.SiteAgents) {
		n = len(d.SiteAgents)
	}
	out := make([]core.Source, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, d.SourceFromAgent(d.SiteAgents[i]))
	}
	return out
}

// probeDestinations returns probe hosts usable as reverse traceroute
// destinations (the §5.2.1 workload measures from RIPE Atlas probes to
// M-Lab; the probes "are all configured to respond to record route").
func probeDestinations(d *revtr.Deployment) []measure.Agent {
	var out []measure.Agent
	for _, p := range d.Probes {
		out = append(out, p.Agent)
	}
	return out
}
