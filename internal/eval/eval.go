// Package eval reproduces every table and figure of the paper's
// evaluation (§5, §6, and the appendices) against the simulated Internet.
// Each experiment is a named function that runs a workload, computes the
// paper's metric, and renders the same rows or series the paper reports.
// See DESIGN.md §3 for the experiment index and EXPERIMENTS.md for
// paper-versus-measured results.
package eval

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Scale sizes an experiment run.
type Scale struct {
	// ASes in the generated topology.
	ASes int
	// Sites / Probes / AtlasSize size the measurement infrastructure.
	Sites     int
	Probes    int
	AtlasSize int
	// Pairs bounds ⟨destination, source⟩ measurement pairs per
	// experiment; Sources bounds how many sources are exercised.
	Pairs   int
	Sources int
	Seed    int64
}

// SmallScale runs in seconds — used by tests.
func SmallScale() Scale {
	return Scale{ASes: 300, Sites: 12, Probes: 60, AtlasSize: 25, Pairs: 120, Sources: 2, Seed: 42}
}

// MediumScale is the default for the eval CLI and benches.
func MediumScale() Scale {
	return Scale{ASes: 1000, Sites: 30, Probes: 300, AtlasSize: 120, Pairs: 500, Sources: 4, Seed: 42}
}

// LargeScale approaches the paper's relative proportions.
func LargeScale() Scale {
	return Scale{ASes: 4000, Sites: 60, Probes: 600, AtlasSize: 150, Pairs: 2000, Sources: 8, Seed: 42}
}

// Experiment is one reproducible table or figure. Run takes the
// caller's context (the context contract: measurement loops pass it to
// every MeasureReverse, so a cancelled CLI run stops promptly).
type Experiment struct {
	ID    string
	Paper string // which paper artifact it regenerates
	Run   func(ctx context.Context, s Scale, w io.Writer) error
}

var registry []Experiment

func register(id, paper string, run func(context.Context, Scale, io.Writer) error) {
	registry = append(registry, Experiment{ID: id, Paper: paper, Run: run})
}

// Experiments lists all registered experiments in registration order.
func Experiments() []Experiment { return registry }

// Find returns the experiment with the given ID.
func Find(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// ---- metric helpers ----

// Dist is an empirical distribution.
type Dist struct{ xs []float64 }

// Add appends a sample.
func (d *Dist) Add(x float64) { d.xs = append(d.xs, x) }

// N returns the sample count.
func (d *Dist) N() int { return len(d.xs) }

// Mean returns the sample mean (0 for empty).
func (d *Dist) Mean() float64 {
	if len(d.xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range d.xs {
		s += x
	}
	return s / float64(len(d.xs))
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of the samples.
func (d *Dist) Quantile(q float64) float64 {
	if len(d.xs) == 0 {
		return 0
	}
	s := append([]float64(nil), d.xs...)
	sort.Float64s(s)
	i := int(q * float64(len(s)-1))
	return s[i]
}

// FracAtLeast returns the fraction of samples ≥ x (a CCDF point).
func (d *Dist) FracAtLeast(x float64) float64 {
	if len(d.xs) == 0 {
		return 0
	}
	n := 0
	for _, v := range d.xs {
		if v >= x {
			n++
		}
	}
	return float64(n) / float64(len(d.xs))
}

// FracAtMost returns the fraction of samples ≤ x (a CDF point).
func (d *Dist) FracAtMost(x float64) float64 {
	if len(d.xs) == 0 {
		return 0
	}
	n := 0
	for _, v := range d.xs {
		if v <= x {
			n++
		}
	}
	return float64(n) / float64(len(d.xs))
}

// CCDFRow renders CCDF points for the given thresholds.
func (d *Dist) CCDFRow(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = d.FracAtLeast(x)
	}
	return out
}

// CDFRow renders CDF points for the given thresholds.
func (d *Dist) CDFRow(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = d.FracAtMost(x)
	}
	return out
}

// ---- table rendering ----

// Table renders aligned text tables.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Fprint writes the table.
func (t *Table) Fprint(w io.Writer) {
	if t.Title != "" {
		fmt.Fprintf(w, "== %s ==\n", t.Title)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			parts[i] = fmt.Sprintf("%-*s", w, c)
		}
		fmt.Fprintln(w, "  "+strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
}

// F formats a float for table cells.
func F(x float64) string { return fmt.Sprintf("%.3f", x) }

// Pct formats a fraction as a percentage.
func Pct(x float64) string { return fmt.Sprintf("%.1f%%", 100*x) }
