package eval

import (
	"context"
	"fmt"
	"io"
	"math/rand"

	"revtr/internal/core"
	"revtr/internal/ingress"
	"revtr/internal/ip2as"
	"revtr/internal/measure"
	"revtr/internal/netsim/ipv4"
	"revtr/internal/vantage"
)

// Appendix E: quantifying destination-based routing violations. For each
// spoofed RR measurement uncovering adjacent reverse hops (R, R'), a
// follow-up spoofed RR ping to R (same spoofed source) checks whether R'
// is still the next hop. Disagreement from a router that gives consistent
// answers across repeats is a violation; routers giving different answers
// across repeated probes are per-packet load balancers and excluded
// (Fig 10 — a single RR packet records both sides of a link, so load
// balancing does not make the measured path wrong).
func init() {
	register("appxE", "Appx E: destination-based routing violations", func(ctx context.Context, s Scale, w io.Writer) error {
		d := deployment(s, vantage.Vintage2020)
		rng := rand.New(rand.NewSource(s.Seed + 13))
		dests := d.OnePerPrefix()
		tuples, violations, asAffecting, lbExcluded := 0, 0, 0, 0

		// reveal issues a spoofed RR ping from the best-placed VPs.
		reveal := func(src measure.Agent, target ipv4.Addr) []ipv4.Addr {
			pfx, ok := d.Topo.BGPPrefixOf(target)
			if !ok {
				return nil
			}
			for _, si := range d.IngressSvc.PlanFor(pfx, ingress.SelIngress).Order {
				vp := d.SiteAgents[si]
				if vp.Addr == src.Addr {
					continue
				}
				rr := d.Prober.SpoofedRRPing(vp, src.Addr, target)
				if rev := extractAfterTarget(rr.Recorded, target); len(rev) > 0 {
					return rev
				}
			}
			return nil
		}
		for n := 0; n < 2*s.Pairs && n < len(dests); n++ {
			dst := dests[n]
			src := d.SiteAgents[rng.Intn(len(d.SiteAgents))]
			if dst.AS == src.AS {
				continue
			}
			rev := reveal(src, dst.Addr)
			for i := 0; i+1 < len(rev); i++ {
				r, rNext := rev[i], rev[i+1]
				if r.IsPrivate() || rNext.IsPrivate() {
					continue
				}
				tuples++
				// Re-probe R spoofing the same source: destination-based
				// routing says R' must still be the next hop toward it.
				seen := 0
				nextHops := map[ipv4.Addr]bool{}
				for k := 0; k < 3; k++ {
					rev2 := reveal(src, r)
					if len(rev2) > 0 {
						seen++
						nextHops[rev2[0]] = true
					}
				}
				if seen == 0 {
					tuples--
					continue
				}
				if len(nextHops) > 1 {
					lbExcluded++ // random balancing of option packets
					continue
				}
				if !nextHops[rNext] {
					// A consistent, different next hop: violation.
					violations++
					a1, ok1 := d.Mapper.ASOf(rNext)
					var other ipv4.Addr
					//revtr:unordered min-selection; nextHops has exactly one key here (len>1 excluded above)
					for h := range nextHops {
						if other == 0 || h < other {
							other = h
						}
					}
					a2, ok2 := d.Mapper.ASOf(other)
					if ok1 && ok2 && a1 != a2 {
						asAffecting++
					}
				}
			}
		}
		t := &Table{
			Title:  "Appx E — destination-based routing violations",
			Header: []string{"metric", "count", "fraction"},
		}
		t.AddRow("(R, R', S) tuples tested", fmt.Sprint(tuples), "-")
		t.AddRow("load-balancer exclusions", fmt.Sprint(lbExcluded), Pct(float64(lbExcluded)/float64(max(1, tuples+lbExcluded))))
		t.AddRow("violations", fmt.Sprint(violations), Pct(float64(violations)/float64(max(1, tuples))))
		t.AddRow("violations changing the AS path", fmt.Sprint(asAffecting), Pct(float64(asAffecting)/float64(max(1, tuples))))
		t.Fprint(w)
		fmt.Fprintf(w, "  paper: 6.6%% of tuples violate; 1.3%% cause an AS-path deviation\n\n")
		return nil
	})

	// Appendix B.2: how much would a bdrmapit-quality IP-to-AS mapping
	// change revtr 2.0's intradomain/interdomain decisions?
	register("appxB2", "Appx B.2: IP-to-AS mapping ablation on symmetry decisions", func(ctx context.Context, s Scale, w io.Writer) error {
		f := runFig5(ctx, s)
		d := f.d
		origin := ip2as.Origin{Topo: d.Topo}
		bdr := ip2as.NewBdrmap(d.Topo, 0.99, 0.001, s.Seed+14)
		truth := d.TruthMapper

		// Collect every symmetry assumption's (penultimate, current) link
		// from the revtr2.0 run and classify under each mapper.
		type counts struct{ intra2inter, inter2intra, total int }
		compare := func(m ip2as.Mapper) counts {
			var c counts
			for _, p := range f.byName["revtr2.0"].pairs {
				hops := p.res.Hops
				for i := 1; i < len(hops); i++ {
					if hops[i].Tech != core.TechSymmetry {
						continue
					}
					c.total++
					prodIntra := ip2as.SameAS(d.Mapper, hops[i].Addr, hops[i-1].Addr)
					altIntra := ip2as.SameAS(m, hops[i].Addr, hops[i-1].Addr)
					if prodIntra && !altIntra {
						c.intra2inter++
					}
					if !prodIntra && altIntra {
						c.inter2intra++
					}
				}
			}
			return c
		}
		cb := compare(bdr)
		co := compare(origin)
		ct := compare(truth)
		t := &Table{
			Title:  "Appx B.2 — symmetry-link classification changes vs the production mapper",
			Header: []string{"alternative mapper", "assumptions", "intra->inter", "inter->intra"},
		}
		row := func(name string, c counts) {
			t.AddRow(name, fmt.Sprint(c.total),
				Pct(float64(c.intra2inter)/float64(max(1, c.total))),
				Pct(float64(c.inter2intra)/float64(max(1, c.total))))
		}
		row("bdrmapit-like (99% borders)", cb)
		row("pure origin mapping", co)
		row("ground truth", ct)
		t.Fprint(w)
		fmt.Fprintf(w, "  paper: bdrmapit flips 0.07%% intra->inter and 1.5%% inter->intra — not worth its 30min runtime\n\n")
		return nil
	})

	// Table 1 rollup: the quantitative insight claims, measured.
	register("insights", "Table 1: quantitative insight rollup", func(ctx context.Context, s Scale, w io.Writer) error {
		f := runFig5(ctx, s)
		t2 := runTable2(s)
		a := runAsym(ctx, s)
		d20 := deploymentNoSurvey(s)
		sv := runSurvey(d20, s.Pairs)

		t := &Table{
			Title:  "Table 1 — measured insight claims",
			Header: []string{"insight", "measured", "paper"},
		}
		intraYes := float64(t2.intra.yes) / float64(max(1, t2.intra.yes+t2.intra.no))
		interYes := float64(t2.inter.yes) / float64(max(1, t2.inter.yes+t2.inter.no))
		t.AddRow("1.2 options-responsive destinations (of ping-responsive)",
			Pct(float64(sv.rrResp)/float64(max(1, sv.pingResp))), "78%")
		t.AddRow("1.3 destinations in spoofed-RR range",
			Pct(float64(sv.reachable8)/float64(max(1, sv.rrResp))), "63%")
		r20 := f.byName["revtr2.0"]
		r10 := f.byName["revtr1.0"]
		t.AddRow("1.9 coverage gain from Timestamp",
			Pct(float64(f.byName["revtr2.0+TS"].completed-r20.completed)/float64(max(1, r20.attempted))), "<1%")
		t.AddRow("1.10 revtr2.0 coverage (trust over completeness)",
			Pct(float64(r20.completed)/float64(max(1, r20.attempted))), "78%")
		t.AddRow("probe budget: revtr2.0 / revtr1.0",
			Pct(float64(r20.counters.Total())/float64(max(1, int(r10.counters.Total())))), "26%")
		t.AddRow("Q5 intradomain symmetry holds", Pct(intraYes), "90%")
		t.AddRow("Q5 interdomain symmetry holds", Pct(interYes), "57%")
		t.AddRow("§6.2 AS-symmetric paths", Pct(a.asFrac.FracAtLeast(0.999)), "53%")
		t.Fprint(w)
		fmt.Fprintln(w)
		return nil
	})
}
