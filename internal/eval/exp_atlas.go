package eval

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"sync"

	"revtr"
	"revtr/internal/core"
	"revtr/internal/ip2as"
	"revtr/internal/measure"
	"revtr/internal/netsim/dynamics"
	"revtr/internal/netsim/ipv4"
	"revtr/internal/netsim/topology"
	"revtr/internal/vantage"
)

// Appx D.2: traceroute atlas design studies. Fig 9a–c operate on a corpus
// of probe→source traceroutes split into an atlas-candidate pool and a
// pseudo-reverse-traceroute pool, comparing random selection against the
// greedy weighted-max-coverage optimum. Fig 9d runs a day-long virtual
// campaign under routing churn and counts reverse traceroutes that
// intersected a stale atlas entry.

// atlasCorpus is the per-source traceroute dataset.
type atlasCorpus struct {
	// pool are atlas candidates; revtrs simulate reverse traceroutes.
	pool   [][]ipv4.Addr
	revtrs [][]ipv4.Addr
}

var (
	corpusMu    sync.Mutex
	corpusCache = map[string][]*atlasCorpus{}
)

// buildCorpora measures traceroutes from every probe to each source and
// splits them per the Appendix D.2.1 methodology.
func buildCorpora(s Scale) []*atlasCorpus {
	key := fig5Key(s)
	corpusMu.Lock()
	if c, ok := corpusCache[key]; ok {
		corpusMu.Unlock()
		return c
	}
	corpusMu.Unlock()

	d := deploymentNoSurvey(s)
	rng := rand.New(rand.NewSource(s.Seed + 4))
	var out []*atlasCorpus
	nSources := s.Sources
	if nSources > len(d.SiteAgents) {
		nSources = len(d.SiteAgents)
	}
	for si := 0; si < nSources; si++ {
		src := d.SiteAgents[si]
		var all [][]ipv4.Addr
		for _, p := range d.Probes {
			if p.Agent.AS == src.AS {
				continue
			}
			tr := d.Prober.Traceroute(p.Agent, src.Addr)
			if !tr.ReachedDst {
				continue
			}
			hops := tr.HopAddrs()
			if len(hops) >= 3 {
				all = append(all, hops)
			}
		}
		rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
		half := len(all) / 2
		out = append(out, &atlasCorpus{pool: all[:half], revtrs: all[half:]})
	}

	corpusMu.Lock()
	corpusCache[key] = out
	corpusMu.Unlock()
	return out
}

// meanIntersected computes the Appendix D.2.1 metric: the mean fraction of
// hops a pseudo-reverse-traceroute saves via its earliest intersection
// with the atlas.
func meanIntersected(atlasSet [][]ipv4.Addr, revtrs [][]ipv4.Addr) float64 {
	index := map[ipv4.Addr]bool{}
	for _, tr := range atlasSet {
		for _, h := range tr {
			index[h] = true
		}
	}
	if len(revtrs) == 0 {
		return 0
	}
	sum := 0.0
	for _, rv := range revtrs {
		for i, h := range rv {
			if index[h] {
				sum += float64(len(rv)-i) / float64(len(rv))
				break
			}
		}
	}
	return sum / float64(len(revtrs))
}

// greedyOptimal selects k traceroutes from pool by weighted max coverage,
// where an address's weight is the summed distance-to-source over the
// traceroutes of weightSet it appears on.
func greedyOptimal(pool [][]ipv4.Addr, weightSet [][]ipv4.Addr, k int) [][]ipv4.Addr {
	weight := map[ipv4.Addr]float64{}
	for _, tr := range weightSet {
		for i, h := range tr {
			weight[h] += float64(len(tr) - i)
		}
	}
	covered := map[ipv4.Addr]bool{}
	chosen := make([]bool, len(pool))
	var out [][]ipv4.Addr
	for len(out) < k {
		best, bestGain := -1, 0.0
		for i, tr := range pool {
			if chosen[i] {
				continue
			}
			gain := 0.0
			for _, h := range tr {
				if !covered[h] {
					gain += weight[h]
				}
			}
			if gain > bestGain {
				best, bestGain = i, gain
			}
		}
		if best < 0 {
			break
		}
		chosen[best] = true
		for _, h := range pool[best] {
			covered[h] = true
		}
		out = append(out, pool[best])
	}
	return out
}

func init() {
	register("fig9a", "Fig 9a: atlas savings vs size, random vs optimal", func(ctx context.Context, s Scale, w io.Writer) error {
		corpora := buildCorpora(s)
		rng := rand.New(rand.NewSource(s.Seed + 5))
		t := &Table{
			Title:  "Fig 9a — mean fraction of hops intersected per reverse traceroute",
			Header: []string{"atlas size (frac of pool)", "random", "optimal", "optimal-revtr"},
		}
		for _, frac := range []float64{0.1, 0.2, 0.4, 0.7, 1.0} {
			var rnd, opt, optR Dist
			for _, c := range corpora {
				k := int(frac * float64(len(c.pool)))
				if k == 0 {
					continue
				}
				perm := rng.Perm(len(c.pool))
				var randSet [][]ipv4.Addr
				for _, i := range perm[:k] {
					randSet = append(randSet, c.pool[i])
				}
				rnd.Add(meanIntersected(randSet, c.revtrs))
				opt.Add(meanIntersected(greedyOptimal(c.pool, c.pool, k), c.revtrs))
				optR.Add(meanIntersected(greedyOptimal(c.pool, c.revtrs, k), c.revtrs))
			}
			t.AddRow(fmt.Sprintf("%.0f%%", 100*frac), F(rnd.Mean()), F(opt.Mean()), F(optR.Mean()))
		}
		t.Fprint(w)
		fmt.Fprintf(w, "  paper: 20%% of the pool yields 56%% intersected (full pool: 60%%); random ≈ 90%% of optimal\n\n")
		return nil
	})

	register("fig9b", "Fig 9b: Random++ replacement converges to optimal", func(ctx context.Context, s Scale, w io.Writer) error {
		corpora := buildCorpora(s)
		rng := rand.New(rand.NewSource(s.Seed + 6))
		frac := 0.2
		t := &Table{
			Title:  "Fig 9b — Random++ iterations (atlas = 20% of pool)",
			Header: []string{"iteration", "mean intersected", "optimal"},
		}
		perIter := make([]Dist, 8)
		var optD Dist
		for _, c := range corpora {
			k := int(frac * float64(len(c.pool)))
			if k == 0 {
				continue
			}
			optD.Add(meanIntersected(greedyOptimal(c.pool, c.pool, k), c.revtrs))
			// Random++ on this corpus.
			inAtlas := map[int]bool{}
			perm := rng.Perm(len(c.pool))
			for _, i := range perm[:k] {
				inAtlas[i] = true
			}
			for iter := 0; iter < len(perIter); iter++ {
				// Iterate atlas membership in sorted order: the first-writer-
				// wins index below must not depend on map iteration order.
				members := make([]int, 0, len(inAtlas))
				for i := range inAtlas {
					members = append(members, i)
				}
				sort.Ints(members)
				var set [][]ipv4.Addr
				for _, i := range members {
					set = append(set, c.pool[i])
				}
				perIter[iter].Add(meanIntersected(set, c.revtrs))
				// Keep entries whose hops provided a first intersection.
				index := map[ipv4.Addr]int{}
				for _, i := range members {
					for _, h := range c.pool[i] {
						if _, dup := index[h]; !dup {
							index[h] = i
						}
					}
				}
				used := map[int]bool{}
				sample := c.revtrs
				for _, rv := range sample {
					for _, h := range rv {
						if i, ok := index[h]; ok {
							used[i] = true
							break
						}
					}
				}
				// Refill with fresh random entries.
				next := map[int]bool{}
				for i := range used {
					next[i] = true
				}
				perm2 := rng.Perm(len(c.pool))
				for _, i := range perm2 {
					if len(next) >= k {
						break
					}
					next[i] = true
				}
				inAtlas = next
			}
		}
		for i := range perIter {
			t.AddRow(fmt.Sprint(i), F(perIter[i].Mean()), F(optD.Mean()))
		}
		t.Fprint(w)
		fmt.Fprintf(w, "  paper: five iterations suffice to converge to the optimal atlas\n\n")
		return nil
	})

	register("fig9c", "Fig 9c: savings stable as reverse traceroutes scale", func(ctx context.Context, s Scale, w io.Writer) error {
		corpora := buildCorpora(s)
		rng := rand.New(rand.NewSource(s.Seed + 7))
		t := &Table{
			Title:  "Fig 9c — mean intersected vs number of reverse traceroutes",
			Header: []string{"atlas frac", "n=25%", "n=50%", "n=100%"},
		}
		for _, frac := range []float64{0.2, 0.6, 1.0} {
			cells := []string{fmt.Sprintf("%.0f%%", 100*frac)}
			for _, rvFrac := range []float64{0.25, 0.5, 1.0} {
				var d Dist
				for _, c := range corpora {
					k := int(frac * float64(len(c.pool)))
					nrv := int(rvFrac * float64(len(c.revtrs)))
					if k == 0 || nrv == 0 {
						continue
					}
					perm := rng.Perm(len(c.pool))
					var set [][]ipv4.Addr
					for _, i := range perm[:k] {
						set = append(set, c.pool[i])
					}
					d.Add(meanIntersected(set, c.revtrs[:nrv]))
				}
				cells = append(cells, F(d.Mean()))
			}
			t.AddRow(cells...)
		}
		t.Fprint(w)
		fmt.Fprintf(w, "  paper: <1%% drift as the number of reverse traceroutes grows\n\n")
		return nil
	})

	register("fig9d", "Fig 9d: atlas staleness over a day of churn", func(ctx context.Context, s Scale, w io.Writer) error {
		// Dedicated deployment: churn mutates routing state.
		cfg := revtr.Config{
			Topology:      topology.DefaultConfig(s.ASes),
			Sites:         s.Sites,
			Vintage:       vantage.Vintage2020,
			Probes:        s.Probes,
			ProbeCredits:  1 << 30,
			AtlasSize:     s.AtlasSize,
			AliasCoverage: 0.35,
			Seed:          s.Seed + 9,
		}
		cfg.Topology.Seed = s.Seed + 9
		d := revtr.Build(cfg)
		churn := dynamics.New(d.Fabric, s.Seed+9)
		src := d.SourceFromAgent(d.SiteAgents[0])
		eng := d.Engine(core.Revtr20Options())

		probeByName := map[string]topology.RouterID{}
		probeAddr := map[string]ipv4.Addr{}
		for _, p := range d.Probes {
			probeByName[p.Agent.Name] = p.Agent.Router
			probeAddr[p.Agent.Name] = p.Agent.Addr
		}

		dests := d.OnePerPrefix()
		perHour := maxInt2(5, s.Pairs/24)
		staleNoInt, staleASPath, totalIntersecting := 0, 0, 0
		total := 0
		t := &Table{
			Title:  "Fig 9d — cumulative reverse traceroutes intersecting a stale traceroute",
			Header: []string{"hour", "revtrs", "stale (no intersection)", "stale (AS path changed)"},
		}
		rng := rand.New(rand.NewSource(s.Seed + 10))
		for hour := 0; hour < 24; hour++ {
			// ~0.2% of ASes re-roll policy per hour → a few percent of
			// paths change over the day, matching the paper's regime.
			churn.Step(0.02, 1)
			d.Prober.SetNow(int64(hour) * 3_600_000_000)
			for i := 0; i < perHour; i++ {
				dst := dests[rng.Intn(len(dests))]
				if dst.AS == src.Agent.AS {
					continue
				}
				res := eng.MeasureReverse(ctx, src, dst.Addr)
				total++
				for _, use := range res.AtlasUses {
					e := use.Entry
					totalIntersecting++
					// Fresh re-measurement from the same probe.
					router, ok := probeByName[e.ProbeName]
					if !ok {
						continue
					}
					fresh := d.Prober.Traceroute(agentAt(probeAddr[e.ProbeName], router), src.Agent.Addr)
					freshHops := fresh.HopAddrs()
					fi := map[ipv4.Addr]int{}
					for j, h := range freshHops {
						fi[h] = j
					}
					// The intersected hop must still be on the fresh path.
					j, onPath := fi[e.Hops[use.Pos]]
					if !onPath {
						staleNoInt++
						e.Stale = true
						continue
					}
					// AS path after the intersection changed?
					oldAS := ip2as.ASPath(d.Mapper, e.Hops[use.Pos:])
					newAS := ip2as.ASPath(d.Mapper, freshHops[j:])
					if !asPathsEqual(oldAS, newAS) {
						staleASPath++
						e.Stale = true
					}
				}
			}
			if hour%6 == 5 || hour == 23 {
				t.AddRow(fmt.Sprint(hour+1), fmt.Sprint(total),
					Pct(float64(staleNoInt)/float64(max(1, total))),
					Pct(float64(staleASPath)/float64(max(1, total))))
			}
		}
		t.Fprint(w)
		fmt.Fprintf(w, "  intersecting measurements: %d; paper: 0.7%% of revtrs intersected a stale traceroute after 24h\n\n",
			totalIntersecting)
		return nil
	})
}

func agentAt(addr ipv4.Addr, router topology.RouterID) measure.Agent {
	return measure.Agent{Addr: addr, Router: router}
}

func maxInt2(a, b int) int {
	if a > b {
		return a
	}
	return b
}
