package eval

import (
	"context"

	"fmt"
	"io"
	"sort"
	"sync"

	"revtr"
	"revtr/internal/core"
	"revtr/internal/ip2as"
	"revtr/internal/measure"
	"revtr/internal/netsim/topology"
	"revtr/internal/vantage"
)

// The large-scale bidirectional campaign (§5.1, §6.2): reverse traceroutes
// from one ping-responsive host per routed prefix back to the vantage
// point sources, paired with forward traceroutes in the other direction.
// Feeds Table 3 (correctness/completeness of the reverse AS graph),
// Fig 8a/8b + Table 7 (asymmetry), and Figs 12–14.

type campaignRec struct {
	srcIdx int
	dst    *topology.Host
	fwd    measure.TracerouteResult // src -> dst
	rev    *core.Result             // dst -> src
}

type campaignData struct {
	d       *revtr.Deployment
	sources []core.Source
	recs    []campaignRec
}

var (
	campMu    sync.Mutex
	campCache = map[string]*campaignData{}
)

func runCampaign(ctx context.Context, s Scale) *campaignData {
	key := fig5Key(s)
	campMu.Lock()
	if c, ok := campCache[key]; ok {
		campMu.Unlock()
		return c
	}
	campMu.Unlock()

	d := deployment(s, vantage.Vintage2020)
	c := &campaignData{d: d, sources: sourcesFor(d, s.Sources)}
	eng := d.Engine(core.Revtr20Options())

	dests := d.OnePerPrefix()
	limit := 2 * s.Pairs
	n := 0
	for i, dst := range dests {
		if n >= limit {
			break
		}
		srcIdx := i % len(c.sources)
		src := c.sources[srcIdx]
		if dst.AS == src.Agent.AS {
			continue
		}
		n++
		fwd := d.Prober.Traceroute(src.Agent, dst.Addr)
		rev := eng.MeasureReverse(ctx, src, dst.Addr)
		c.recs = append(c.recs, campaignRec{srcIdx: srcIdx, dst: dst, fwd: fwd, rev: rev})
	}

	campMu.Lock()
	campCache[key] = c
	campMu.Unlock()
	return c
}

// asSetOf builds the set of ASes on an AS path.
func asSetOf(path []topology.ASN) map[topology.ASN]bool {
	m := make(map[topology.ASN]bool, len(path))
	for _, a := range path {
		m[a] = true
	}
	return m
}

// symmetryOf computes, for one bidirectional pair, the fraction of forward
// traceroute hops also on the reverse traceroute at router and AS
// granularity (§6.2's metric).
func symmetryOf(c *campaignData, r *campaignRec) (router, as float64, ok bool) {
	if r.rev.Status != core.StatusComplete || !r.fwd.ReachedDst {
		return 0, 0, false
	}
	fwdHops := r.fwd.HopAddrs()
	revHops := r.rev.Addrs()
	fr, ok1 := hopMatchFraction(fwdHops, revHops, c.d.Alias, false)
	fAS := ip2as.ASPath(c.d.Mapper, fwdHops)
	rAS := ip2as.ASPath(c.d.Mapper, revHops)
	fa, ok2 := asFracSeen(fAS, rAS)
	return fr, fa, ok1 && ok2
}

// ---- Table 3 ----

type table3Row struct {
	correctness  float64
	completeness float64
}

func runTable3(ctx context.Context, s Scale) (revtrRow, ripeRow, fwdRow table3Row, userWeighted float64) {
	c := runCampaign(ctx, s)
	d := c.d
	totalASes := float64(len(d.Topo.ASes))
	truth := d.TruthMapper

	// revtr 2.0: ASes seen on measured reverse paths; correctness checked
	// against ground-truth reverse paths at the link level.
	revASes := map[topology.ASN]bool{}
	linkOK, linkTotal := 0, 0
	for i := range c.recs {
		r := &c.recs[i]
		if r.rev.Status != core.StatusComplete {
			continue
		}
		rAS := ip2as.ASPath(truth, r.rev.Addrs())
		for _, a := range rAS {
			revASes[a] = true
		}
		trueRev := d.TrueReversePath(r.dst, c.sources[r.srcIdx].Agent.Addr)
		if trueRev == nil {
			continue
		}
		tAS := d.Fabric.ASPath(trueRev)
		next := map[topology.ASN]topology.ASN{}
		for j := 0; j+1 < len(tAS); j++ {
			next[tAS[j]] = tAS[j+1]
		}
		for j := 0; j+1 < len(rAS); j++ {
			linkTotal++
			if next[rAS[j]] == rAS[j+1] {
				linkOK++
			}
		}
	}
	revtrRow = table3Row{completeness: float64(len(revASes)) / totalASes}
	if linkTotal > 0 {
		revtrRow.correctness = float64(linkOK) / float64(linkTotal)
	}

	// RIPE Atlas: only probe-hosting ASes can measure a path toward the
	// source (correct, since traceroutes measure real paths).
	probeASes := map[topology.ASN]bool{}
	for _, p := range d.Probes {
		probeASes[p.Agent.AS] = true
	}
	ripeRow = table3Row{correctness: 1.0, completeness: float64(len(probeASes)) / totalASes}

	// Forward traceroutes + assume symmetry: high completeness, but a
	// link is correct only when the reverse path actually uses it.
	fwdASes := map[topology.ASN]bool{}
	symOK, symTotal := 0, 0
	for i := range c.recs {
		r := &c.recs[i]
		if !r.fwd.ReachedDst {
			continue
		}
		fAS := ip2as.ASPath(truth, r.fwd.HopAddrs())
		for _, a := range fAS {
			fwdASes[a] = true
		}
		trueRev := d.TrueReversePath(r.dst, c.sources[r.srcIdx].Agent.Addr)
		if trueRev == nil {
			continue
		}
		tAS := d.Fabric.ASPath(trueRev)
		next := map[topology.ASN]topology.ASN{}
		for j := 0; j+1 < len(tAS); j++ {
			next[tAS[j]] = tAS[j+1]
		}
		// Assuming symmetry: the reverse link at fAS[j] is (fAS[j], fAS[j-1]).
		for j := 1; j < len(fAS); j++ {
			symTotal++
			if next[fAS[j]] == fAS[j-1] {
				symOK++
			}
		}
	}
	fwdRow = table3Row{completeness: float64(len(fwdASes)) / totalASes}
	if symTotal > 0 {
		fwdRow.correctness = float64(symOK) / float64(symTotal)
	}

	// User-weighted coverage: hosts in ASes from which at least one
	// reverse path was measured (the paper's 92.6%-of-users figure,
	// approximated with hosts as user weight).
	usersCovered, users := 0, 0
	for _, h := range d.Topo.Hosts {
		users++
		if revASes[h.AS] {
			usersCovered++
		}
	}
	userWeighted = float64(usersCovered) / float64(users)
	return revtrRow, ripeRow, fwdRow, userWeighted
}

// ---- asymmetry study ----

type asymData struct {
	routerFrac Dist // fraction of fwd hops on reverse (router)
	asFrac     Dist // same at AS granularity
	// noAssume variants: pairs whose reverse path used no symmetry
	// assumptions (Fig 12).
	routerFracNA Dist
	asFracNA     Dist

	// per-AS asymmetry involvement (Fig 8b / Table 7).
	asymCount map[topology.ASN]int
	asymTotal int

	// per-pair AS path lengths and symmetry (Fig 13).
	lenAll    Dist
	lenSymT1  Dist
	lenAsymT1 Dist

	// position-wise presence (Fig 14): per AS-path length, per position.
	posOn  map[int][]int
	posTot map[int][]int
}

func runAsym(ctx context.Context, s Scale) *asymData {
	c := runCampaign(ctx, s)
	d := c.d
	a := &asymData{
		asymCount: map[topology.ASN]int{},
		posOn:     map[int][]int{},
		posTot:    map[int][]int{},
	}
	tier1 := map[topology.ASN]bool{}
	for _, asn := range d.Topo.ASesByTier(topology.Tier1) {
		tier1[asn] = true
	}
	for i := range c.recs {
		r := &c.recs[i]
		fr, fa, ok := symmetryOf(c, r)
		if !ok {
			continue
		}
		a.routerFrac.Add(fr)
		a.asFrac.Add(fa)
		if r.rev.SymAssumed == 0 {
			a.routerFracNA.Add(fr)
			a.asFracNA.Add(fa)
		}
		fAS := ip2as.ASPath(d.Mapper, r.fwd.HopAddrs())
		rAS := ip2as.ASPath(d.Mapper, r.rev.Addrs())
		fSet, rSet := asSetOf(fAS), asSetOf(rAS)
		symmetric := fa >= 0.999 && len(fAS) == len(rAS)

		throughT1 := false
		for _, asn := range fAS {
			if tier1[asn] {
				throughT1 = true
			}
		}
		a.lenAll.Add(float64(len(fAS)))
		if throughT1 {
			if symmetric {
				a.lenSymT1.Add(float64(len(fAS)))
			} else {
				a.lenAsymT1.Add(float64(len(fAS)))
			}
		}

		if !symmetric {
			a.asymTotal++
			for asn := range fSet {
				if !rSet[asn] {
					a.asymCount[asn]++
				}
			}
			for asn := range rSet {
				if !fSet[asn] {
					a.asymCount[asn]++
				}
			}
		}

		// Fig 14: presence by position for AS path lengths 3..6.
		l := len(fAS)
		if l >= 3 && l <= 6 {
			if a.posOn[l] == nil {
				a.posOn[l] = make([]int, l)
				a.posTot[l] = make([]int, l)
			}
			for j, asn := range fAS {
				a.posTot[l][j]++
				if rSet[asn] {
					a.posOn[l][j]++
				}
			}
		}
	}
	return a
}

func init() {
	register("table3", "Table 3 + §5.1: reverse AS graph correctness/completeness", func(ctx context.Context, s Scale, w io.Writer) error {
		rt, ripe, fwd, uw := runTable3(ctx, s)
		t := &Table{
			Title:  "Table 3 — reverse AS graph by technique",
			Header: []string{"technique", "correctness", "completeness"},
		}
		t.AddRow("revtr 2.0", F(rt.correctness), F(rt.completeness))
		t.AddRow("RIPE Atlas", F(ripe.correctness), F(ripe.completeness))
		t.AddRow("fwd traceroute + assume symmetry", F(fwd.correctness), F(fwd.completeness))
		t.Fprint(w)
		fmt.Fprintf(w, "  host-weighted coverage of revtr-measurable ASes: %s (paper: 92.6%% of users)\n", Pct(uw))
		fmt.Fprintf(w, "  paper: revtr 1.00/0.55, RIPE 1.00/0.06, fwd+sym 0.60/0.78\n\n")
		return nil
	})

	register("fig8a", "Fig 8a: path asymmetry at router and AS granularity", func(ctx context.Context, s Scale, w io.Writer) error {
		a := runAsym(ctx, s)
		t := &Table{
			Title:  "Fig 8a — fraction of forward hops also on the reverse path",
			Header: []string{"granularity", "n", "frac-symmetric(=1.0)", "median", "p25"},
		}
		t.AddRow("AS", fmt.Sprint(a.asFrac.N()), Pct(a.asFrac.FracAtLeast(0.999)),
			F(a.asFrac.Quantile(0.5)), F(a.asFrac.Quantile(0.25)))
		t.AddRow("router", fmt.Sprint(a.routerFrac.N()), Pct(a.routerFrac.FracAtLeast(0.999)),
			F(a.routerFrac.Quantile(0.5)), F(a.routerFrac.Quantile(0.25)))
		t.Fprint(w)
		fmt.Fprintf(w, "  paper: 53%% of paths symmetric at AS granularity, ~1%% at router granularity\n\n")
		return nil
	})

	register("fig8b", "Fig 8b: asymmetry involvement vs customer cone", func(ctx context.Context, s Scale, w io.Writer) error {
		a := runAsym(ctx, s)
		c := runCampaign(ctx, s)
		type row struct {
			asn  topology.ASN
			prev float64
			cone int
			tier topology.Tier
		}
		var rows []row
		for asn, cnt := range a.asymCount {
			rows = append(rows, row{
				asn:  asn,
				prev: float64(cnt) / float64(max(1, a.asymTotal)),
				cone: c.d.Topo.ASes[asn].ConeSize,
				tier: c.d.Topo.ASes[asn].Tier,
			})
		}
		sort.Slice(rows, func(i, j int) bool { return rows[i].prev > rows[j].prev })
		t := &Table{
			Title:  "Fig 8b — top ASes by asymmetry prevalence vs customer cone",
			Header: []string{"ASN", "tier", "prevalence", "cone"},
		}
		nrenHigh := false
		for i, r := range rows {
			if i >= 15 {
				break
			}
			t.AddRow(fmt.Sprintf("AS%d", r.asn), r.tier.String(), F(r.prev), fmt.Sprint(r.cone))
			if r.tier == topology.NREN {
				nrenHigh = true
			}
		}
		t.Fprint(w)
		fmt.Fprintf(w, "  large-cone networks dominate; NREN outlier in top-15: %v (paper: tier-1s high, NREN outliers)\n\n", nrenHigh)
		return nil
	})

	register("table7", "Table 7: top-10 ASes in path asymmetry", func(ctx context.Context, s Scale, w io.Writer) error {
		a := runAsym(ctx, s)
		c := runCampaign(ctx, s)
		type row struct {
			asn  topology.ASN
			prev float64
			cone int
			tier topology.Tier
		}
		var rows []row
		for asn, cnt := range a.asymCount {
			rows = append(rows, row{asn, float64(cnt) / float64(max(1, a.asymTotal)),
				c.d.Topo.ASes[asn].ConeSize, c.d.Topo.ASes[asn].Tier})
		}
		sort.Slice(rows, func(i, j int) bool { return rows[i].prev > rows[j].prev })
		t := &Table{
			Title:  "Table 7 — top 10 ASes most frequently involved in asymmetry",
			Header: []string{"rank", "ASN", "tier", "prevalence", "customer cone"},
		}
		for i, r := range rows {
			if i >= 10 {
				break
			}
			t.AddRow(fmt.Sprint(i+1), fmt.Sprintf("AS%d", r.asn), r.tier.String(), F(r.prev), fmt.Sprint(r.cone))
		}
		t.Fprint(w)
		fmt.Fprintf(w, "  paper: Cogent/Telia/Level3-class transit networks lead the table\n\n")
		return nil
	})

	register("fig12", "Fig 12: symmetry without assumption-bearing paths", func(ctx context.Context, s Scale, w io.Writer) error {
		a := runAsym(ctx, s)
		t := &Table{
			Title:  "Fig 12 — symmetry for reverse traceroutes with no symmetry assumptions",
			Header: []string{"granularity", "n", "frac-symmetric", "median"},
		}
		t.AddRow("AS", fmt.Sprint(a.asFracNA.N()), Pct(a.asFracNA.FracAtLeast(0.999)), F(a.asFracNA.Quantile(0.5)))
		t.AddRow("router", fmt.Sprint(a.routerFracNA.N()), Pct(a.routerFracNA.FracAtLeast(0.999)), F(a.routerFracNA.Quantile(0.5)))
		t.Fprint(w)
		fmt.Fprintf(w, "  paper: results within ~3%% of Fig 8a — assumptions do not drive the study\n\n")
		return nil
	})

	register("fig13", "Fig 13: AS-path length of (a)symmetric paths", func(ctx context.Context, s Scale, w io.Writer) error {
		a := runAsym(ctx, s)
		t := &Table{
			Title:  "Fig 13 — AS-path length distribution",
			Header: []string{"subset", "n", "mean", "p50", "p90"},
		}
		for _, x := range []struct {
			name string
			d    *Dist
		}{
			{"symmetric through tier-1", &a.lenSymT1},
			{"all paths", &a.lenAll},
			{"asymmetric through tier-1", &a.lenAsymT1},
		} {
			t.AddRow(x.name, fmt.Sprint(x.d.N()), F(x.d.Mean()), F(x.d.Quantile(0.5)), F(x.d.Quantile(0.9)))
		}
		t.Fprint(w)
		fmt.Fprintf(w, "  paper: symmetric paths are shorter; 5+-AS paths through tier-1s are mostly asymmetric\n\n")
		return nil
	})

	register("fig14", "Fig 14: hop presence on reverse path by position", func(ctx context.Context, s Scale, w io.Writer) error {
		a := runAsym(ctx, s)
		t := &Table{
			Title:  "Fig 14 — P(forward AS hop also on reverse path) by position",
			Header: []string{"AS-path len", "positions (src ... dst)"},
		}
		for _, l := range []int{3, 4, 5, 6} {
			if a.posTot[l] == nil {
				continue
			}
			row := ""
			for j := range a.posTot[l] {
				p := 0.0
				if a.posTot[l][j] > 0 {
					p = float64(a.posOn[l][j]) / float64(a.posTot[l][j])
				}
				row += fmt.Sprintf("%.2f ", p)
			}
			t.AddRow(fmt.Sprint(l), row)
		}
		t.Fprint(w)
		fmt.Fprintf(w, "  paper: endpoints nearly always shared; middle hops dip, more so on longer paths\n\n")
		return nil
	})
}
