package core_test

import (
	"bytes"
	"context"
	"log/slog"
	"strings"
	"testing"
)

// TestStructuredDebugLogging: decision events flow through the slog
// logger with src/dst/stage attributes, and the legacy Debugf hook keeps
// receiving formatted lines.
func TestStructuredDebugLogging(t *testing.T) {
	h, eng := newHarness(t, nil)
	var buf bytes.Buffer
	eng.SetLogger(slog.New(slog.NewTextHandler(&buf, &slog.HandlerOptions{Level: slog.LevelDebug})))
	var legacy []string
	eng.Debugf = func(format string, args ...any) {
		legacy = append(legacy, format)
	}

	dst := h.env.ResponsiveHost(0, h.src.Agent.AS)
	eng.MeasureReverse(context.Background(), h.src, dst.Addr)

	out := buf.String()
	if out == "" {
		t.Fatal("no structured debug events emitted")
	}
	for _, attr := range []string{"src=" + h.src.Agent.Addr.String(), "dst=", "stage="} {
		if !strings.Contains(out, attr) {
			t.Errorf("debug events missing %q attribute:\n%s", attr, out)
		}
	}
	if len(legacy) == 0 {
		t.Fatal("legacy Debugf shim not invoked")
	}
}
