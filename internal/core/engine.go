package core

import (
	"context"
	"log/slog"
	"time"

	"revtr/internal/alias"
	"revtr/internal/atlas"
	"revtr/internal/ingress"
	"revtr/internal/ip2as"
	"revtr/internal/measure"
	"revtr/internal/netsim/fabric"
	"revtr/internal/netsim/ipv4"
	"revtr/internal/probe"
)

// Source is a Reverse Traceroute source: an endpoint the user controls,
// with its traceroute atlas (built at registration, Appx A).
type Source struct {
	Agent measure.Agent
	Atlas *atlas.Atlas
}

// Hop is one hop of a measured reverse path, destination first.
type Hop struct {
	Addr ipv4.Addr
	Tech Technique
	// SuspectBefore flags a possible missing hop ("*") before this hop:
	// the AS-level link into it is not a known adjacency (§5.2.2).
	SuspectBefore bool
	// DBRSuspect flags a hop whose router answered redundant probes with
	// a different next hop — a destination-based-routing violator
	// (Appendix E's optional detection).
	DBRSuspect bool
}

// Result is a completed (or abandoned) reverse traceroute.
type Result struct {
	Src, Dst ipv4.Addr
	Status   Status
	// Hops runs from the destination to the source inclusive.
	Hops []Hop

	// SymAssumed counts symmetry assumptions taken; InterdomainAssumed
	// counts those crossing AS boundaries (only possible under
	// SymAlways).
	SymAssumed         int
	InterdomainAssumed int

	// Probes is the packet budget this measurement consumed.
	Probes measure.Counters
	// DurationUS is the virtual wall-clock cost (spoofed batches wait
	// out a 10 s timeout each, §5.2.4).
	DurationUS   int64
	SpoofBatches int

	// AtlasUses lists atlas traceroutes this measurement intersected and
	// the hop position adopted.
	AtlasUses []AtlasUse
}

// AtlasUse records one atlas intersection of a measurement.
type AtlasUse struct {
	Entry *atlas.Entry
	Pos   int
}

// Addrs returns the hop addresses, destination first.
func (r *Result) Addrs() []ipv4.Addr {
	out := make([]ipv4.Addr, len(r.Hops))
	for i, h := range r.Hops {
		out[i] = h.Addr
	}
	return out
}

// HasSuspect reports whether any hop carries the missing-hop flag.
func (r *Result) HasSuspect() bool {
	for _, h := range r.Hops {
		if h.SuspectBefore {
			return true
		}
	}
	return false
}

// Engine measures reverse paths. One engine serves one source's
// measurements and is safe for concurrent use: probes run through the
// shared probe.Pool, the cache is internally locked, and atlas
// usefulness marks are atomic. Each MeasureReverse call keeps its own
// probe accounting, so concurrent measurements do not blur each other's
// budgets.
type Engine struct {
	F       *fabric.Fabric
	Pool    *probe.Pool
	Ingress *ingress.Service
	Sites   []measure.Agent
	Alias   alias.Resolver
	Mapper  ip2as.Mapper
	Adj     AdjacencyProvider
	Opts    Options

	// Debugf, when set, receives a line per engine decision — the legacy
	// printf hook, kept as a shim over the structured logger below.
	Debugf func(format string, args ...any)

	logger  *slog.Logger
	cache   *cache
	metrics *Metrics
}

// NewEngine assembles an engine over a probe pool. adj may be nil (no
// Timestamp adjacencies).
func NewEngine(f *fabric.Fabric, pool *probe.Pool, ing *ingress.Service, sites []measure.Agent,
	res alias.Resolver, mapper ip2as.Mapper, adj AdjacencyProvider, opts Options) *Engine {
	if adj == nil {
		adj = NoAdjacencies{}
	}
	if opts.MaxHops == 0 {
		opts.MaxHops = 40
	}
	if opts.DBRRepeats <= 0 {
		opts.DBRRepeats = 2
	}
	return &Engine{
		F: f, Pool: pool, Ingress: ing, Sites: sites,
		Alias: res, Mapper: mapper, Adj: adj, Opts: opts,
		cache: newCache(opts.CacheTTLUS, opts.CacheMaxEntries),
	}
}

// FlushCache drops cached measurements (e.g. between experiment phases).
func (e *Engine) FlushCache() { e.cache.Flush() }

// SetMetrics attaches an observability metric set (nil detaches). The
// engine and its cache record into it from then on. Call before issuing
// measurements.
func (e *Engine) SetMetrics(m *Metrics) {
	e.metrics = m
	e.cache.metrics = m
}

// SetLogger attaches a structured debug logger. Engine decision events
// are emitted at Debug level with src/dst/stage attributes. Call before
// issuing measurements.
func (e *Engine) SetLogger(l *slog.Logger) { e.logger = l }

// debug emits one engine decision event: to the structured logger with
// src/dst/stage attributes, and to the legacy Debugf shim as a line.
func (e *Engine) debug(src Source, cur ipv4.Addr, stage, msg string, attrs ...any) {
	if e.logger != nil {
		e.logger.Debug(msg, append([]any{
			slog.String("src", src.Agent.Addr.String()),
			slog.String("dst", cur.String()),
			slog.String("stage", stage),
		}, attrs...)...)
	}
	if e.Debugf != nil {
		e.Debugf("%s: %s (src=%s cur=%s)", stage, msg, src.Agent.Addr, cur)
	}
}

// mctx is one measurement's probing context: the caller's context
// (deadline and cancellation are checked between Fig 2 stages), the
// per-measurement probe tally, and the deterministic sequence counter
// probe identities derive from. Keeping the tally here — rather than
// diffing a shared prober's counters — is what lets measurements share
// one pool without blurring each other's budgets.
type mctx struct {
	ctx   context.Context
	count measure.Counters
	seq   uint64
	// dead is the set of vantage points observed blacked out during this
	// measurement. It is per-measurement (not shared engine state) so the
	// failover decisions stay deterministic: a VP is skipped only after
	// this measurement itself saw it dead, never because a concurrent
	// measurement did.
	dead map[ipv4.Addr]bool
}

// isDead reports whether this measurement saw the VP at a blacked out.
func (m *mctx) isDead(a ipv4.Addr) bool { return m.dead[a] }

// markDead remembers that the VP at a is blacked out.
func (m *mctx) markDead(a ipv4.Addr) {
	if m.dead == nil {
		m.dead = make(map[ipv4.Addr]bool)
	}
	m.dead[a] = true
}

// retryPolicy resolves the measurement retry policy: the engine's
// Options budget when set, else the pool's default.
func (e *Engine) retryPolicy() probe.RetryPolicy {
	switch {
	case e.Opts.ProbeRetries > 0:
		return probe.RetryPolicy{
			Max:          e.Opts.ProbeRetries,
			BackoffUS:    e.Opts.RetryBackoffUS,
			MaxBackoffUS: e.Opts.RetryMaxBackoffUS,
		}
	case e.Opts.ProbeRetries < 0:
		return probe.RetryPolicy{}
	}
	return e.Pool.Retry()
}

// next allocates the next probe sequence number.
func (m *mctx) next() uint64 {
	m.seq++
	return m.seq
}

// reserve allocates a contiguous block of n sequence numbers and returns
// the base (used by traceroutes, one number per TTL).
func (m *mctx) reserve(n int) uint64 {
	base := m.seq
	m.seq += uint64(n)
	return base
}

// rrPing issues one direct Record Route ping through the pool (as a
// single-request batch, so the measurement retry policy applies and the
// batch's Sent tally charges every attempt).
func (e *Engine) rrPing(m *mctx, a measure.Agent, dst ipv4.Addr) measure.RRResult {
	b := e.Pool.DoPolicy(m.ctx,
		[]probe.Request{{Kind: measure.KindRR, VP: a, Dst: dst, Seq: m.next()}}, e.retryPolicy())
	m.count = m.count.Add(b.Sent)
	return b.Replies[0].RR
}

// tsPing issues one direct tsprespec Timestamp ping through the pool.
func (e *Engine) tsPing(m *mctx, a measure.Agent, dst ipv4.Addr, prespec []ipv4.Addr) measure.TSResult {
	b := e.Pool.DoPolicy(m.ctx,
		[]probe.Request{{Kind: measure.KindTS, VP: a, Dst: dst, Prespec: prespec, Seq: m.next()}}, e.retryPolicy())
	m.count = m.count.Add(b.Sent)
	return b.Replies[0].TS
}

// spoofedTSPing issues one spoofed Timestamp ping through the pool.
func (e *Engine) spoofedTSPing(m *mctx, vp measure.Agent, src, dst ipv4.Addr, prespec []ipv4.Addr) measure.TSResult {
	b := e.Pool.DoPolicy(m.ctx,
		[]probe.Request{{Kind: measure.KindSpoofedTS, VP: vp, Src: src, Dst: dst, Prespec: prespec, Seq: m.next()}}, e.retryPolicy())
	m.count = m.count.Add(b.Sent)
	if b.Replies[0].VPDead {
		m.markDead(vp.Addr)
		e.metrics.vpFailover()
	}
	return b.Replies[0].TS
}

// MeasureReverse measures the reverse path from dst back to src,
// implementing the Fig 2 control flow. ctx deadlines and cancellation
// are honoured between stages and between spoofed batches: a cancelled
// measurement returns promptly with StatusFailed and its partial probe
// accounting. ctx may be nil (treated as context.Background()).
func (e *Engine) MeasureReverse(ctx context.Context, src Source, dst ipv4.Addr) *Result {
	if ctx == nil {
		ctx = context.Background()
	}
	m := &mctx{ctx: ctx}
	wallStart := time.Now() //revtr:wallclock engine wall-time metric, distinct from virtual probe time
	res := &Result{
		Src:  src.Agent.Addr,
		Dst:  dst,
		Hops: []Hop{{Addr: dst, Tech: TechDestination}},
	}
	defer func() {
		res.Probes = m.count
		e.flagSuspects(res)
		e.metrics.outcome(res, time.Since(wallStart).Microseconds(), e.cache.size()) //revtr:wallclock engine wall-time metric, distinct from virtual probe time
	}()

	cur := dst
	visited := map[ipv4.Addr]bool{dst: true}
	var excludeAS int32 = -1
	if e.Opts.ExcludeAtlasFromDstAS {
		if asn, ok := e.Mapper.ASOf(dst); ok {
			excludeAS = int32(asn)
		}
	}

	for step := 0; step < e.Opts.MaxHops; step++ {
		if err := ctx.Err(); err != nil {
			e.debug(src, cur, "cancel", "context done between stages", "err", err.Error())
			res.Status = StatusFailed
			return res
		}
		if e.reachedSource(cur, src) {
			e.finish(res, src)
			return res
		}

		// Step 1: does the current hop intersect a traceroute to S?
		if x, ok := e.atlasLookup(src, cur, excludeAS); ok {
			e.metrics.stage(TechTrIntersect)
			x.Entry.MarkUseful()
			e.debug(src, cur, "atlas", "intersected atlas traceroute",
				"entry", x.Entry.ID, "pos", x.Pos, "suffix", len(x.Suffix))
			res.AtlasUses = append(res.AtlasUses, AtlasUse{Entry: x.Entry, Pos: x.Pos})
			for _, h := range x.Suffix {
				res.Hops = append(res.Hops, Hop{Addr: h, Tech: TechTrIntersect})
			}
			e.finish(res, src)
			return res
		}

		// Step 2: Record Route.
		rev := e.revealRR(m, src, cur)
		res.DurationUS += rev.elapsedUS
		res.SpoofBatches += rev.batches
		if err := ctx.Err(); err != nil {
			e.debug(src, cur, "cancel", "context done during RR step", "err", err.Error())
			res.Status = StatusFailed
			return res
		}
		if len(rev.hops) > 0 {
			e.metrics.stage(rev.tech)
			e.debug(src, cur, "rr", "revealed reverse hops",
				"tech", rev.tech.String(), "hops", len(rev.hops), "batches", rev.batches)
			dbrSuspect := false
			if e.Opts.DetectDBRViolations {
				var dbrUS int64
				dbrSuspect, dbrUS = e.checkDBR(m, src, cur, rev.hops[0])
				res.DurationUS += dbrUS
			}
			for i, h := range rev.hops {
				res.Hops = append(res.Hops, Hop{Addr: h, Tech: rev.tech, DBRSuspect: i == 0 && dbrSuspect})
			}
			next := lastProbeable(rev.hops)
			if !next.IsZero() && !visited[next] {
				visited[next] = true
				cur = next
				continue
			}
			// All new hops private or already seen: fall through to the
			// remaining techniques from the last public hop.
			if !next.IsZero() {
				cur = next
			}
		}

		// Step 3: Timestamp adjacency testing (Q4; revtr 1.0 only).
		if e.Opts.UseTimestamp {
			if next, rtt := e.tryTimestamp(m, src, cur); !next.IsZero() {
				res.DurationUS += rtt
				if !visited[next] {
					e.metrics.stage(TechTS)
					visited[next] = true
					res.Hops = append(res.Hops, Hop{Addr: next, Tech: TechTS})
					cur = next
					continue
				}
			} else {
				res.DurationUS += rtt
			}
		}

		// Step 4: forward traceroute + symmetry assumption (Q5). For the
		// destination itself the traceroute must actually reach it — a
		// host that answered nothing gives no evidence a reverse path
		// exists at all.
		penult, intra, adjacent, rtt, ok := e.penultimateHop(m, src, cur, cur == dst)
		res.DurationUS += rtt
		if adjacent {
			// The traceroute reaches cur within the source's first-hop
			// neighborhood: the only gap left is the source's own
			// attachment, a (usually intradomain) symmetry assumption
			// away.
			intra = ip2as.SameAS(e.Mapper, cur, src.Agent.Addr)
			if e.Opts.Symmetry == SymIntraOnly && !intra || e.Opts.Symmetry == SymNever {
				e.debug(src, cur, "symmetry", "abort: first-hop assumption not allowed", "intra", intra)
				res.Status = StatusAborted
				return res
			}
			res.SymAssumed++
			if !intra {
				res.InterdomainAssumed++
			}
			e.metrics.symmetry(!intra)
			e.finish(res, src)
			return res
		}
		if !ok {
			e.debug(src, cur, "symmetry", "fail: no penultimate hop", "hops", len(res.Hops))
			res.Status = StatusFailed
			return res
		}
		switch e.Opts.Symmetry {
		case SymAlways:
			// revtr 1.0: assume regardless, at known accuracy cost.
		case SymIntraOnly:
			if !intra {
				e.debug(src, cur, "symmetry", "abort: interdomain assumption required", "penult", penult.String())
				res.Status = StatusAborted
				return res
			}
		case SymNever:
			res.Status = StatusAborted
			return res
		}
		res.SymAssumed++
		if !intra {
			res.InterdomainAssumed++
		}
		e.metrics.symmetry(!intra)
		if visited[penult] {
			e.debug(src, cur, "symmetry", "fail: penultimate already visited", "penult", penult.String())
			res.Status = StatusFailed
			return res
		}
		visited[penult] = true
		res.Hops = append(res.Hops, Hop{Addr: penult, Tech: TechSymmetry})
		cur = penult
	}
	res.Status = StatusFailed
	return res
}

// reachedSource reports whether addr is the source or sits on the
// source's first-hop router.
func (e *Engine) reachedSource(addr ipv4.Addr, src Source) bool {
	if addr == src.Agent.Addr {
		return true
	}
	if r, ok := e.F.Topo.RouterOf(addr); ok && r == src.Agent.Router {
		return true
	}
	return false
}

// finish closes a completed path, appending the source hop if the last
// measured hop is not already it.
func (e *Engine) finish(res *Result, src Source) {
	if len(res.Hops) == 0 || res.Hops[len(res.Hops)-1].Addr != src.Agent.Addr {
		res.Hops = append(res.Hops, Hop{Addr: src.Agent.Addr, Tech: TechSource})
	}
	res.Status = StatusComplete
}

// atlasLookup applies the configuration's intersection rules.
func (e *Engine) atlasLookup(src Source, cur ipv4.Addr, excludeAS int32) (atlas.Intersection, bool) {
	if src.Atlas == nil {
		return atlas.Intersection{}, false
	}
	x, ok := src.Atlas.Lookup(cur)
	if !ok {
		return atlas.Intersection{}, false
	}
	if excludeAS >= 0 && x.Entry.ProbeAS == excludeAS {
		return atlas.Intersection{}, false
	}
	if x.ViaRRAlias && !e.Opts.UseRRAtlas {
		return atlas.Intersection{}, false
	}
	if e.Opts.AtlasMaxAgeUS > 0 && e.Pool.Now()-x.Entry.MeasuredAtUS > e.Opts.AtlasMaxAgeUS {
		return atlas.Intersection{}, false
	}
	return x, true
}

// revealed is the outcome of the RR step.
type revealed struct {
	hops      []ipv4.Addr
	tech      Technique
	batches   int
	elapsedUS int64
}

// revealRR uncovers reverse hops from cur toward the source: first a
// direct RR ping from the source (Fig 1b), then spoofed RR pings from
// vantage points chosen by the configured policy, in batches (Fig 1c–d).
// Each batch is submitted to the pool as one unit and executes
// concurrently; the engine stops issuing further batches once one
// reveals hops (batch-granular early exit, which keeps probe counts
// deterministic — every launched batch runs to completion).
func (e *Engine) revealRR(m *mctx, src Source, cur ipv4.Addr) revealed {
	if e.Opts.UseCache {
		if hops, tech, ok := e.cache.getRR(cur, src.Agent.Addr, e.Pool.Now()); ok {
			return revealed{hops: hops, tech: tech}
		}
	}
	var out revealed

	// Direct RR from the source.
	rr := e.rrPing(m, src.Agent, cur)
	out.elapsedUS += rr.RTTUS
	if rr.Responded {
		if hops := extractReverse(rr.Recorded, cur, e.Alias); len(hops) > 0 {
			out.hops, out.tech = hops, TechRR
			if e.Opts.UseCache {
				e.cache.putRR(cur, src.Agent.Addr, hops, TechRR, e.Pool.Now())
			}
			return out
		}
	}

	// Spoofed RR from selected vantage points.
	pfx, ok := e.F.Topo.BGPPrefixOf(cur)
	if !ok {
		return out
	}
	plan := e.Ingress.PlanFor(pfx, e.Opts.VPSelection)
	tried := 0
	cursor := 0
	for cursor < len(plan.Order) {
		if m.ctx.Err() != nil {
			return out
		}
		// Build the next batch from the §4.3 ingress order, skipping the
		// source and any VP this measurement already saw blacked out, and
		// backfilling from further down the order so a dead VP costs its
		// slot, not the whole batch (graceful degradation).
		reqs := make([]probe.Request, 0, e.Opts.BatchSize)
		vps := make([]measure.Agent, 0, e.Opts.BatchSize)
		for cursor < len(plan.Order) && len(reqs) < e.Opts.BatchSize {
			site := e.Sites[plan.Order[cursor]]
			cursor++
			if site.Addr == src.Agent.Addr { // that would be the direct probe again
				continue
			}
			if m.isDead(site.Addr) {
				continue
			}
			reqs = append(reqs, probe.Request{
				Kind: measure.KindSpoofedRR, VP: site,
				Src: src.Agent.Addr, Dst: cur, Seq: m.next(),
			})
			vps = append(vps, site)
		}
		if len(reqs) == 0 {
			break
		}
		out.batches++
		out.elapsedUS += e.Opts.SpoofTimeoutUS
		b := e.Pool.DoPolicy(m.ctx, reqs, e.retryPolicy())
		m.count = m.count.Add(b.Sent)
		deadHere := 0
		var best []ipv4.Addr
		for i, rep := range b.Replies {
			if rep.VPDead {
				// The VP could not send at all: remember it and fail over
				// to the next-closest VP in the ingress order instead of
				// charging the attempt against the spoof budget.
				m.markDead(vps[i].Addr)
				e.metrics.vpFailover()
				deadHere++
				e.debug(src, cur, "spoof-rr", "vantage point dead, failing over",
					"vp", vps[i].Addr.String())
				continue
			}
			if !rep.RR.Responded {
				continue
			}
			if hops := extractReverse(rep.RR.Recorded, cur, e.Alias); len(hops) > len(best) {
				best = hops
			}
		}
		tried += len(reqs) - b.Skipped - deadHere
		if len(best) > 0 {
			out.hops, out.tech = best, TechSpoofRR
			if e.Opts.UseCache {
				e.cache.putRR(cur, src.Agent.Addr, best, TechSpoofRR, e.Pool.Now())
			}
			return out
		}
		if tried >= e.Opts.MaxSpoofVPs {
			break
		}
	}
	return out
}

// firstLiveVP returns the first vantage point in the §4.3 ingress order
// this measurement has not seen blacked out.
func (e *Engine) firstLiveVP(m *mctx, order []int) (measure.Agent, bool) {
	for _, si := range order {
		if site := e.Sites[si]; !m.isDead(site.Addr) {
			return site, true
		}
	}
	return measure.Agent{}, false
}

// checkDBR implements Appendix E's optional redundancy: re-reveal the
// next hop after cur Opts.DBRRepeats more times (default 2, so three
// samples total counting the original revelation) and report whether a
// consistent disagreement with firstNext was observed, plus the virtual
// time spent. The repeats distinguish violators (deterministic,
// source-dependent next hops) from per-packet load balancers (random
// next hops), which do not harm accuracy. The direct repeats go out as
// one concurrent batch; repeats whose direct probe revealed nothing fall
// back to one spoofed probe each, batched the same way.
func (e *Engine) checkDBR(m *mctx, src Source, cur, firstNext ipv4.Addr) (bool, int64) {
	direct := make([]probe.Request, e.Opts.DBRRepeats)
	for k := range direct {
		direct[k] = probe.Request{Kind: measure.KindRR, VP: src.Agent, Dst: cur, Seq: m.next()}
	}
	b := e.Pool.DoPolicy(m.ctx, direct, e.retryPolicy())
	m.count = m.count.Add(b.Sent)
	elapsed := b.MaxRTTUS

	observed := map[ipv4.Addr]bool{firstNext: true}
	got := 0
	var fallback []probe.Request
	for _, rep := range b.Replies {
		hops := extractReverse(rep.RR.Recorded, cur, e.Alias)
		if len(hops) == 0 {
			// Direct probe out of range: one spoofed try for this repeat.
			pfx, ok := e.F.Topo.BGPPrefixOf(cur)
			if !ok {
				continue
			}
			plan := e.Ingress.PlanFor(pfx, e.Opts.VPSelection)
			vp, ok := e.firstLiveVP(m, plan.Order)
			if !ok {
				continue
			}
			fallback = append(fallback, probe.Request{
				Kind: measure.KindSpoofedRR, VP: vp,
				Src: src.Agent.Addr, Dst: cur, Seq: m.next(),
			})
			continue
		}
		got++
		observed[hops[0]] = true
	}
	if len(fallback) > 0 {
		fb := e.Pool.DoPolicy(m.ctx, fallback, e.retryPolicy())
		m.count = m.count.Add(fb.Sent)
		elapsed += fb.MaxRTTUS
		for i, rep := range fb.Replies {
			if rep.VPDead {
				m.markDead(fallback[i].VP.Addr)
				e.metrics.vpFailover()
				continue
			}
			if hops := extractReverse(rep.RR.Recorded, cur, e.Alias); len(hops) > 0 {
				got++
				observed[hops[0]] = true
			}
		}
	}
	if got == 0 || len(observed) == 1 {
		return false, elapsed
	}
	// Multiple distinct next hops: if every repeat disagreed with every
	// other, it is random per-packet balancing, not a violation. We flag
	// when exactly two distinct values were seen across the 1+DBRRepeats
	// samples — the repeats agreed with each other against the original.
	return len(observed) == 2, elapsed
}

// tryTimestamp tests traceroute-derived adjacencies of cur with
// tsprespec probes ⟨cur, adjacency⟩ (Fig 1e). A reply stamping both
// addresses proves the adjacency is on the reverse path.
func (e *Engine) tryTimestamp(m *mctx, src Source, cur ipv4.Addr) (ipv4.Addr, int64) {
	var elapsed int64
	adjs := e.Adj.Adjacent(cur, src.Agent.Addr)
	n := 0
	for _, adj := range adjs {
		if n >= e.Opts.MaxTSAdjacencies {
			break
		}
		if adj.IsPrivate() || adj == cur {
			continue
		}
		n++
		ts := e.tsPing(m, src.Agent, cur, []ipv4.Addr{cur, adj})
		elapsed += ts.RTTUS
		if !ts.Responded {
			// Some hops only answer options probes arriving on other
			// paths; try once spoofed from a site (Table 4's spoof-TS).
			for _, site := range e.Sites {
				if !site.CanSpoof || site.Addr == src.Agent.Addr || m.isDead(site.Addr) {
					continue
				}
				ts = e.spoofedTSPing(m, site, src.Agent.Addr, cur, []ipv4.Addr{cur, adj})
				elapsed += ts.RTTUS
				break
			}
		}
		if ts.Responded && len(ts.Stamped) == 2 && ts.Stamped[0] && ts.Stamped[1] {
			return adj, elapsed
		}
	}
	return 0, elapsed
}

// penultimateHop issues (or reuses) a forward traceroute from the source
// to cur and classifies the last link (Q5). Returns the penultimate hop,
// whether the (penultimate, cur) link is intradomain under the engine's
// IP-to-AS mapping, whether cur sits inside the source's first-hop
// neighborhood (traceroute reaches it in ≤2 hops with no responsive
// penultimate), the elapsed time, and whether a usable hop was found.
func (e *Engine) penultimateHop(m *mctx, src Source, cur ipv4.Addr, requireReached bool) (penult ipv4.Addr, intra, adjacent bool, elapsedOut int64, ok bool) {
	var tr measure.TracerouteResult
	var elapsed int64
	if e.Opts.UseCache {
		if c, ok := e.cache.getTraceroute(cur, src.Agent.Addr, e.Pool.Now()); ok {
			tr = c
		}
	}
	if tr.Hops == nil {
		var sent int
		tr, sent = e.Pool.Traceroute(m.ctx, src.Agent, cur, m.reserve(measure.MaxTracerouteTTL))
		m.count.Traceroute += uint64(sent)
		elapsed = tr.RTTUS
		// A cancelled traceroute measured nothing; caching it would
		// poison later measurements with an empty result.
		if e.Opts.UseCache && m.ctx.Err() == nil {
			e.cache.putTraceroute(cur, src.Agent.Addr, tr, e.Pool.Now())
		}
	}
	if requireReached && !tr.ReachedDst {
		return 0, false, false, elapsed, false
	}
	hops := tr.HopAddrs()
	// When the traceroute reaches cur, hops ends with cur's echo reply
	// and the penultimate responsive hop precedes it. When cur itself
	// does not answer (common for option-responsive but ping-filtered
	// hops), the last responsive hop stands in as the penultimate — the
	// symmetry policy still gates whether it is usable.
	last := len(hops) - 1
	if tr.ReachedDst {
		last = len(hops) - 2
	}
	for i := last; i >= 0; i-- {
		if !hops[i].IsPrivate() {
			penult = hops[i]
			break
		}
	}
	if penult.IsZero() || penult == cur {
		// No usable penultimate. If cur is within two hops of the
		// source (counting silent hops), the gap is the source's own
		// first-hop region.
		if tr.ReachedDst && len(tr.Hops) <= 2 {
			return 0, false, true, elapsed, false
		}
		return 0, false, false, elapsed, false
	}
	return penult, ip2as.SameAS(e.Mapper, penult, cur), false, elapsed, true
}

// flagSuspects inserts "*" markers where the AS-level path crosses a link
// that is not a known AS adjacency — the §5.2.2 heuristic for routers
// that forward RR packets without stamping. Private (unmappable) hops are
// visible as private addresses and need no flag.
func (e *Engine) flagSuspects(res *Result) {
	topo := e.F.Topo
	prevAS := int32(-1)
	prevIdx := -1
	for i := range res.Hops {
		a := res.Hops[i].Addr
		asn, ok := e.Mapper.ASOf(a)
		if !ok {
			continue
		}
		if prevIdx >= 0 && int32(asn) != prevAS {
			if topo.ASes[prevAS].Neighbor(asn) == nil {
				res.Hops[i].SuspectBefore = true
			}
		}
		prevAS = int32(asn)
		prevIdx = i
	}
}
