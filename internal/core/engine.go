package core

import (
	"time"

	"revtr/internal/alias"
	"revtr/internal/atlas"
	"revtr/internal/ingress"
	"revtr/internal/ip2as"
	"revtr/internal/measure"
	"revtr/internal/netsim/fabric"
	"revtr/internal/netsim/ipv4"
)

// Source is a Reverse Traceroute source: an endpoint the user controls,
// with its traceroute atlas (built at registration, Appx A).
type Source struct {
	Agent measure.Agent
	Atlas *atlas.Atlas
}

// Hop is one hop of a measured reverse path, destination first.
type Hop struct {
	Addr ipv4.Addr
	Tech Technique
	// SuspectBefore flags a possible missing hop ("*") before this hop:
	// the AS-level link into it is not a known adjacency (§5.2.2).
	SuspectBefore bool
	// DBRSuspect flags a hop whose router answered redundant probes with
	// a different next hop — a destination-based-routing violator
	// (Appendix E's optional detection).
	DBRSuspect bool
}

// Result is a completed (or abandoned) reverse traceroute.
type Result struct {
	Src, Dst ipv4.Addr
	Status   Status
	// Hops runs from the destination to the source inclusive.
	Hops []Hop

	// SymAssumed counts symmetry assumptions taken; InterdomainAssumed
	// counts those crossing AS boundaries (only possible under
	// SymAlways).
	SymAssumed         int
	InterdomainAssumed int

	// Probes is the packet budget this measurement consumed.
	Probes measure.Counters
	// DurationUS is the virtual wall-clock cost (spoofed batches wait
	// out a 10 s timeout each, §5.2.4).
	DurationUS   int64
	SpoofBatches int

	// AtlasUses lists atlas traceroutes this measurement intersected and
	// the hop position adopted.
	AtlasUses []AtlasUse
}

// AtlasUse records one atlas intersection of a measurement.
type AtlasUse struct {
	Entry *atlas.Entry
	Pos   int
}

// Addrs returns the hop addresses, destination first.
func (r *Result) Addrs() []ipv4.Addr {
	out := make([]ipv4.Addr, len(r.Hops))
	for i, h := range r.Hops {
		out[i] = h.Addr
	}
	return out
}

// HasSuspect reports whether any hop carries the missing-hop flag.
func (r *Result) HasSuspect() bool {
	for _, h := range r.Hops {
		if h.SuspectBefore {
			return true
		}
	}
	return false
}

// Engine measures reverse paths.
type Engine struct {
	F       *fabric.Fabric
	P       *measure.Prober
	Ingress *ingress.Service
	Sites   []measure.Agent
	Alias   alias.Resolver
	Mapper  ip2as.Mapper
	Adj     AdjacencyProvider
	Opts    Options

	// Debugf, when set, receives a line per engine decision (tests and
	// diagnostics only).
	Debugf func(format string, args ...any)

	cache   *cache
	metrics *Metrics
}

// NewEngine assembles an engine. adj may be nil (no Timestamp
// adjacencies).
func NewEngine(f *fabric.Fabric, p *measure.Prober, ing *ingress.Service, sites []measure.Agent,
	res alias.Resolver, mapper ip2as.Mapper, adj AdjacencyProvider, opts Options) *Engine {
	if adj == nil {
		adj = NoAdjacencies{}
	}
	if opts.MaxHops == 0 {
		opts.MaxHops = 40
	}
	return &Engine{
		F: f, P: p, Ingress: ing, Sites: sites,
		Alias: res, Mapper: mapper, Adj: adj, Opts: opts,
		cache: newCache(opts.CacheTTLUS, opts.CacheMaxEntries),
	}
}

// FlushCache drops cached measurements (e.g. between experiment phases).
func (e *Engine) FlushCache() { e.cache.Flush() }

// SetMetrics attaches an observability metric set (nil detaches). The
// engine and its cache record into it from then on.
func (e *Engine) SetMetrics(m *Metrics) {
	e.metrics = m
	e.cache.metrics = m
}

// MeasureReverse measures the reverse path from dst back to src,
// implementing the Fig 2 control flow.
func (e *Engine) MeasureReverse(src Source, dst ipv4.Addr) *Result {
	before := e.P.Count
	wallStart := time.Now()
	res := &Result{
		Src:  src.Agent.Addr,
		Dst:  dst,
		Hops: []Hop{{Addr: dst, Tech: TechDestination}},
	}
	defer func() {
		res.Probes = e.P.Count.Sub(before)
		e.flagSuspects(res)
		e.metrics.outcome(res, time.Since(wallStart).Microseconds(), e.cache.size())
	}()

	cur := dst
	visited := map[ipv4.Addr]bool{dst: true}
	var excludeAS int32 = -1
	if e.Opts.ExcludeAtlasFromDstAS {
		if asn, ok := e.Mapper.ASOf(dst); ok {
			excludeAS = int32(asn)
		}
	}

	for step := 0; step < e.Opts.MaxHops; step++ {
		if e.reachedSource(cur, src) {
			e.finish(res, src)
			return res
		}

		// Step 1: does the current hop intersect a traceroute to S?
		if x, ok := e.atlasLookup(src, cur, excludeAS); ok {
			e.metrics.stage(TechTrIntersect)
			x.Entry.Useful = true
			res.AtlasUses = append(res.AtlasUses, AtlasUse{Entry: x.Entry, Pos: x.Pos})
			for _, h := range x.Suffix {
				res.Hops = append(res.Hops, Hop{Addr: h, Tech: TechTrIntersect})
			}
			e.finish(res, src)
			return res
		}

		// Step 2: Record Route.
		rev := e.revealRR(src, cur)
		res.DurationUS += rev.elapsedUS
		res.SpoofBatches += rev.batches
		if len(rev.hops) > 0 {
			e.metrics.stage(rev.tech)
			dbrSuspect := false
			if e.Opts.DetectDBRViolations {
				dbrSuspect = e.checkDBR(src, cur, rev.hops[0])
			}
			for i, h := range rev.hops {
				res.Hops = append(res.Hops, Hop{Addr: h, Tech: rev.tech, DBRSuspect: i == 0 && dbrSuspect})
			}
			next := lastProbeable(rev.hops)
			if !next.IsZero() && !visited[next] {
				visited[next] = true
				cur = next
				continue
			}
			// All new hops private or already seen: fall through to the
			// remaining techniques from the last public hop.
			if !next.IsZero() {
				cur = next
			}
		}

		// Step 3: Timestamp adjacency testing (Q4; revtr 1.0 only).
		if e.Opts.UseTimestamp {
			if next, rtt := e.tryTimestamp(src, cur); !next.IsZero() {
				res.DurationUS += rtt
				if !visited[next] {
					e.metrics.stage(TechTS)
					visited[next] = true
					res.Hops = append(res.Hops, Hop{Addr: next, Tech: TechTS})
					cur = next
					continue
				}
			} else {
				res.DurationUS += rtt
			}
		}

		// Step 4: forward traceroute + symmetry assumption (Q5). For the
		// destination itself the traceroute must actually reach it — a
		// host that answered nothing gives no evidence a reverse path
		// exists at all.
		penult, intra, adjacent, rtt, ok := e.penultimateHop(src, cur, cur == dst)
		res.DurationUS += rtt
		if adjacent {
			// The traceroute reaches cur within the source's first-hop
			// neighborhood: the only gap left is the source's own
			// attachment, a (usually intradomain) symmetry assumption
			// away.
			intra = ip2as.SameAS(e.Mapper, cur, src.Agent.Addr)
			if e.Opts.Symmetry == SymIntraOnly && !intra || e.Opts.Symmetry == SymNever {
				res.Status = StatusAborted
				return res
			}
			res.SymAssumed++
			if !intra {
				res.InterdomainAssumed++
			}
			e.metrics.symmetry(!intra)
			e.finish(res, src)
			return res
		}
		if !ok {
			if e.Debugf != nil {
				e.Debugf("fail: no penultimate for cur=%s (hops=%d)", cur, len(res.Hops))
			}
			res.Status = StatusFailed
			return res
		}
		switch e.Opts.Symmetry {
		case SymAlways:
			// revtr 1.0: assume regardless, at known accuracy cost.
		case SymIntraOnly:
			if !intra {
				res.Status = StatusAborted
				return res
			}
		case SymNever:
			res.Status = StatusAborted
			return res
		}
		res.SymAssumed++
		if !intra {
			res.InterdomainAssumed++
		}
		e.metrics.symmetry(!intra)
		if visited[penult] {
			if e.Debugf != nil {
				e.Debugf("fail: penultimate %s already visited (cur=%s)", penult, cur)
			}
			res.Status = StatusFailed
			return res
		}
		visited[penult] = true
		res.Hops = append(res.Hops, Hop{Addr: penult, Tech: TechSymmetry})
		cur = penult
	}
	res.Status = StatusFailed
	return res
}

// reachedSource reports whether addr is the source or sits on the
// source's first-hop router.
func (e *Engine) reachedSource(addr ipv4.Addr, src Source) bool {
	if addr == src.Agent.Addr {
		return true
	}
	if r, ok := e.F.Topo.RouterOf(addr); ok && r == src.Agent.Router {
		return true
	}
	return false
}

// finish closes a completed path, appending the source hop if the last
// measured hop is not already it.
func (e *Engine) finish(res *Result, src Source) {
	if len(res.Hops) == 0 || res.Hops[len(res.Hops)-1].Addr != src.Agent.Addr {
		res.Hops = append(res.Hops, Hop{Addr: src.Agent.Addr, Tech: TechSource})
	}
	res.Status = StatusComplete
}

// atlasLookup applies the configuration's intersection rules.
func (e *Engine) atlasLookup(src Source, cur ipv4.Addr, excludeAS int32) (atlas.Intersection, bool) {
	if src.Atlas == nil {
		return atlas.Intersection{}, false
	}
	x, ok := src.Atlas.Lookup(cur)
	if !ok {
		return atlas.Intersection{}, false
	}
	if excludeAS >= 0 && x.Entry.ProbeAS == excludeAS {
		return atlas.Intersection{}, false
	}
	if x.ViaRRAlias && !e.Opts.UseRRAtlas {
		return atlas.Intersection{}, false
	}
	if e.Opts.AtlasMaxAgeUS > 0 && e.P.Now()-x.Entry.MeasuredAtUS > e.Opts.AtlasMaxAgeUS {
		return atlas.Intersection{}, false
	}
	return x, true
}

// revealed is the outcome of the RR step.
type revealed struct {
	hops      []ipv4.Addr
	tech      Technique
	batches   int
	elapsedUS int64
}

// revealRR uncovers reverse hops from cur toward the source: first a
// direct RR ping from the source (Fig 1b), then spoofed RR pings from
// vantage points chosen by the configured policy, in batches (Fig 1c–d).
func (e *Engine) revealRR(src Source, cur ipv4.Addr) revealed {
	if e.Opts.UseCache {
		if hops, tech, ok := e.cache.getRR(cur, src.Agent.Addr, e.P.Now()); ok {
			return revealed{hops: hops, tech: tech}
		}
	}
	var out revealed

	// Direct RR from the source.
	rr := e.P.RRPing(src.Agent, cur)
	out.elapsedUS += rr.RTTUS
	if rr.Responded {
		if hops := extractReverse(rr.Recorded, cur, e.Alias); len(hops) > 0 {
			out.hops, out.tech = hops, TechRR
			if e.Opts.UseCache {
				e.cache.putRR(cur, src.Agent.Addr, hops, TechRR, e.P.Now())
			}
			return out
		}
	}

	// Spoofed RR from selected vantage points.
	pfx, ok := e.F.Topo.BGPPrefixOf(cur)
	if !ok {
		return out
	}
	plan := e.Ingress.PlanFor(pfx, e.Opts.VPSelection)
	tried := 0
	for start := 0; start < len(plan.Order); start += e.Opts.BatchSize {
		end := start + e.Opts.BatchSize
		if end > len(plan.Order) {
			end = len(plan.Order)
		}
		out.batches++
		out.elapsedUS += e.Opts.SpoofTimeoutUS
		var best []ipv4.Addr
		for _, si := range plan.Order[start:end] {
			site := e.Sites[si]
			if site.Addr == src.Agent.Addr {
				continue // that would be the direct probe again
			}
			srr := e.P.SpoofedRRPing(site, src.Agent.Addr, cur)
			tried++
			if !srr.Responded {
				continue
			}
			if hops := extractReverse(srr.Recorded, cur, e.Alias); len(hops) > len(best) {
				best = hops
			}
		}
		if len(best) > 0 {
			out.hops, out.tech = best, TechSpoofRR
			if e.Opts.UseCache {
				e.cache.putRR(cur, src.Agent.Addr, best, TechSpoofRR, e.P.Now())
			}
			return out
		}
		if tried >= e.Opts.MaxSpoofVPs {
			break
		}
	}
	return out
}

// checkDBR implements Appendix E's optional redundancy: re-reveal the
// next hop after cur and report whether a consistent disagreement with
// firstNext was observed. Two extra probes distinguish violators
// (deterministic, source-dependent next hops) from per-packet load
// balancers (random next hops), which do not harm accuracy.
func (e *Engine) checkDBR(src Source, cur, firstNext ipv4.Addr) bool {
	observed := map[ipv4.Addr]bool{firstNext: true}
	got := 0
	for k := 0; k < 2; k++ {
		rr := e.P.RRPing(src.Agent, cur)
		hops := extractReverse(rr.Recorded, cur, e.Alias)
		if len(hops) == 0 {
			// Direct probe out of range: one spoofed try.
			pfx, ok := e.F.Topo.BGPPrefixOf(cur)
			if !ok {
				continue
			}
			plan := e.Ingress.PlanFor(pfx, e.Opts.VPSelection)
			if len(plan.Order) == 0 {
				continue
			}
			srr := e.P.SpoofedRRPing(e.Sites[plan.Order[0]], src.Agent.Addr, cur)
			hops = extractReverse(srr.Recorded, cur, e.Alias)
		}
		if len(hops) > 0 {
			got++
			observed[hops[0]] = true
		}
	}
	if got == 0 || len(observed) == 1 {
		return false
	}
	// Multiple distinct next hops: if every repeat disagreed with every
	// other, it is random per-packet balancing, not a violation. With
	// only three samples we flag when exactly two distinct values were
	// seen and the repeats agreed with each other.
	return len(observed) == 2
}

// tryTimestamp tests traceroute-derived adjacencies of cur with
// tsprespec probes ⟨cur, adjacency⟩ (Fig 1e). A reply stamping both
// addresses proves the adjacency is on the reverse path.
func (e *Engine) tryTimestamp(src Source, cur ipv4.Addr) (ipv4.Addr, int64) {
	var elapsed int64
	adjs := e.Adj.Adjacent(cur, src.Agent.Addr)
	n := 0
	for _, adj := range adjs {
		if n >= e.Opts.MaxTSAdjacencies {
			break
		}
		if adj.IsPrivate() || adj == cur {
			continue
		}
		n++
		ts := e.P.TSPing(src.Agent, cur, []ipv4.Addr{cur, adj})
		elapsed += ts.RTTUS
		if !ts.Responded {
			// Some hops only answer options probes arriving on other
			// paths; try once spoofed from a site (Table 4's spoof-TS).
			for _, site := range e.Sites {
				if !site.CanSpoof || site.Addr == src.Agent.Addr {
					continue
				}
				ts = e.P.SpoofedTSPing(site, src.Agent.Addr, cur, []ipv4.Addr{cur, adj})
				elapsed += ts.RTTUS
				break
			}
		}
		if ts.Responded && len(ts.Stamped) == 2 && ts.Stamped[0] && ts.Stamped[1] {
			return adj, elapsed
		}
	}
	return 0, elapsed
}

// penultimateHop issues (or reuses) a forward traceroute from the source
// to cur and classifies the last link (Q5). Returns the penultimate hop,
// whether the (penultimate, cur) link is intradomain under the engine's
// IP-to-AS mapping, whether cur sits inside the source's first-hop
// neighborhood (traceroute reaches it in ≤2 hops with no responsive
// penultimate), the elapsed time, and whether a usable hop was found.
func (e *Engine) penultimateHop(src Source, cur ipv4.Addr, requireReached bool) (penult ipv4.Addr, intra, adjacent bool, elapsedOut int64, ok bool) {
	var tr measure.TracerouteResult
	var elapsed int64
	if e.Opts.UseCache {
		if c, ok := e.cache.getTraceroute(cur, src.Agent.Addr, e.P.Now()); ok {
			tr = c
		}
	}
	if tr.Hops == nil {
		tr = e.P.Traceroute(src.Agent, cur)
		elapsed = tr.RTTUS
		if e.Opts.UseCache {
			e.cache.putTraceroute(cur, src.Agent.Addr, tr, e.P.Now())
		}
	}
	if requireReached && !tr.ReachedDst {
		return 0, false, false, elapsed, false
	}
	hops := tr.HopAddrs()
	// When the traceroute reaches cur, hops ends with cur's echo reply
	// and the penultimate responsive hop precedes it. When cur itself
	// does not answer (common for option-responsive but ping-filtered
	// hops), the last responsive hop stands in as the penultimate — the
	// symmetry policy still gates whether it is usable.
	last := len(hops) - 1
	if tr.ReachedDst {
		last = len(hops) - 2
	}
	for i := last; i >= 0; i-- {
		if !hops[i].IsPrivate() {
			penult = hops[i]
			break
		}
	}
	if penult.IsZero() || penult == cur {
		// No usable penultimate. If cur is within two hops of the
		// source (counting silent hops), the gap is the source's own
		// first-hop region.
		if tr.ReachedDst && len(tr.Hops) <= 2 {
			return 0, false, true, elapsed, false
		}
		return 0, false, false, elapsed, false
	}
	return penult, ip2as.SameAS(e.Mapper, penult, cur), false, elapsed, true
}

// flagSuspects inserts "*" markers where the AS-level path crosses a link
// that is not a known AS adjacency — the §5.2.2 heuristic for routers
// that forward RR packets without stamping. Private (unmappable) hops are
// visible as private addresses and need no flag.
func (e *Engine) flagSuspects(res *Result) {
	topo := e.F.Topo
	prevAS := int32(-1)
	prevIdx := -1
	for i := range res.Hops {
		a := res.Hops[i].Addr
		asn, ok := e.Mapper.ASOf(a)
		if !ok {
			continue
		}
		if prevIdx >= 0 && int32(asn) != prevAS {
			if topo.ASes[prevAS].Neighbor(asn) == nil {
				res.Hops[i].SuspectBefore = true
			}
		}
		prevAS = int32(asn)
		prevIdx = i
	}
}
