package core

import (
	"context"
	"log/slog"

	"revtr/internal/alias"
	"revtr/internal/atlas"
	"revtr/internal/ingress"
	"revtr/internal/ip2as"
	"revtr/internal/measure"
	"revtr/internal/netsim/fabric"
	"revtr/internal/netsim/ipv4"
	"revtr/internal/probe"
	"revtr/internal/stream"
)

// Source is a Reverse Traceroute source: an endpoint the user controls,
// with its traceroute atlas (built at registration, Appx A).
type Source struct {
	Agent measure.Agent
	Atlas *atlas.Atlas
}

// Hop is one hop of a measured reverse path, destination first.
type Hop struct {
	Addr ipv4.Addr
	Tech Technique
	// SuspectBefore flags a possible missing hop ("*") before this hop:
	// the AS-level link into it is not a known adjacency (§5.2.2).
	SuspectBefore bool
	// DBRSuspect flags a hop whose router answered redundant probes with
	// a different next hop — a destination-based-routing violator
	// (Appendix E's optional detection).
	DBRSuspect bool
	// Spliced marks a hop adopted from the shared segment store
	// (Options.SegmentStore) rather than measured by this reverse
	// traceroute: Tech records the technique of the measurement that
	// originally revealed it. SegmentSpliced provenance, Doubletree-style.
	Spliced bool
}

// SegmentSpliced reports whether any hop of the result was adopted from
// the shared segment store rather than measured directly.
func (r *Result) SegmentSpliced() bool {
	for _, h := range r.Hops {
		if h.Spliced {
			return true
		}
	}
	return false
}

// Result is a completed (or abandoned) reverse traceroute.
type Result struct {
	Src, Dst ipv4.Addr
	Status   Status
	// Cancelled marks a measurement cut short by its context: Status is
	// StatusFailed, but the failure reflects cancellation rather than a
	// probing outcome, and the metrics account it separately so partial
	// runs do not skew technique-coverage statistics.
	Cancelled bool
	// Hops runs from the destination to the source inclusive.
	Hops []Hop

	// SymAssumed counts symmetry assumptions taken; InterdomainAssumed
	// counts those crossing AS boundaries (only possible under
	// SymAlways).
	SymAssumed         int
	InterdomainAssumed int

	// Probes is the packet budget this measurement consumed.
	Probes measure.Counters
	// DurationUS is the virtual wall-clock cost (spoofed batches wait
	// out a 10 s timeout each, §5.2.4).
	DurationUS   int64
	SpoofBatches int

	// AtlasUses lists atlas traceroutes this measurement intersected and
	// the hop position adopted.
	AtlasUses []AtlasUse
}

// AtlasUse records one atlas intersection of a measurement.
type AtlasUse struct {
	Entry *atlas.Entry
	Pos   int
}

// Addrs returns the hop addresses, destination first.
func (r *Result) Addrs() []ipv4.Addr {
	out := make([]ipv4.Addr, len(r.Hops))
	for i, h := range r.Hops {
		out[i] = h.Addr
	}
	return out
}

// HasSuspect reports whether any hop carries the missing-hop flag.
func (r *Result) HasSuspect() bool {
	for _, h := range r.Hops {
		if h.SuspectBefore {
			return true
		}
	}
	return false
}

// Engine measures reverse paths. One engine serves one source's
// measurements and is safe for concurrent use: probes run through the
// shared probe.Pool, the cache is internally locked, and atlas
// usefulness marks are atomic. Each MeasureReverse call keeps its own
// probe accounting, so concurrent measurements do not blur each other's
// budgets.
type Engine struct {
	F       *fabric.Fabric
	Pool    *probe.Pool
	Ingress *ingress.Service
	Sites   []measure.Agent
	Alias   alias.Resolver
	Mapper  ip2as.Mapper
	Adj     AdjacencyProvider
	Opts    Options

	// Debugf, when set, receives a line per engine decision — the legacy
	// printf hook, kept as a shim over the structured logger below.
	Debugf func(format string, args ...any)

	logger  *slog.Logger
	cache   *cache
	deadVPs *deadVPCache
	metrics *Metrics
}

// NewEngine assembles an engine over a probe pool. adj may be nil (no
// Timestamp adjacencies).
func NewEngine(f *fabric.Fabric, pool *probe.Pool, ing *ingress.Service, sites []measure.Agent,
	res alias.Resolver, mapper ip2as.Mapper, adj AdjacencyProvider, opts Options) *Engine {
	if adj == nil {
		adj = NoAdjacencies{}
	}
	if opts.MaxHops == 0 {
		opts.MaxHops = 40
	}
	if opts.DBRRepeats <= 0 {
		opts.DBRRepeats = 2
	}
	return &Engine{
		F: f, Pool: pool, Ingress: ing, Sites: sites,
		Alias: res, Mapper: mapper, Adj: adj, Opts: opts,
		cache:   newCache(opts.CacheTTLUS, opts.CacheMaxEntries),
		deadVPs: newDeadVPCache(opts.DeadVPTTLUS),
	}
}

// FlushCache drops cached measurements (e.g. between experiment phases),
// including the engine-level dead-VP cache.
func (e *Engine) FlushCache() {
	e.cache.Flush()
	e.deadVPs.flush()
}

// SetMetrics attaches an observability metric set (nil detaches). The
// engine and its cache record into it from then on. Call before issuing
// measurements.
func (e *Engine) SetMetrics(m *Metrics) {
	e.metrics = m
	e.cache.metrics = m
}

// SetLogger attaches a structured debug logger. Engine decision events
// are emitted at Debug level with src/dst/stage attributes. Call before
// issuing measurements.
func (e *Engine) SetLogger(l *slog.Logger) { e.logger = l }

// debug emits one engine decision event: to the structured logger with
// src/dst/stage attributes, and to the legacy Debugf shim as a line.
func (e *Engine) debug(src Source, cur ipv4.Addr, stage, msg string, attrs ...any) {
	if e.logger != nil {
		e.logger.Debug(msg, append([]any{
			slog.String("src", src.Agent.Addr.String()),
			slog.String("dst", cur.String()),
			slog.String("stage", stage),
		}, attrs...)...)
	}
	if e.Debugf != nil {
		e.Debugf("%s: %s (src=%s cur=%s)", stage, msg, src.Agent.Addr, cur)
	}
}

// mctx is one measurement's probing context: the caller's context
// (deadline and cancellation are checked between Fig 2 stages), the
// per-measurement probe tally, and the deterministic sequence counter
// probe identities derive from. Keeping the tally here — rather than
// diffing a shared prober's counters — is what lets measurements share
// one pool without blurring each other's budgets.
type mctx struct {
	ctx   context.Context
	count measure.Counters
	seq   uint64
	// dead is the set of vantage points observed blacked out during this
	// measurement. It is per-measurement (not shared engine state) so the
	// failover decisions stay deterministic: a VP is skipped only after
	// this measurement itself saw it dead, never because a concurrent
	// measurement did.
	dead map[ipv4.Addr]bool
}

// isDead reports whether this measurement saw the VP at a blacked out.
func (m *mctx) isDead(a ipv4.Addr) bool { return m.dead[a] }

// markDead remembers that the VP at a is blacked out.
func (m *mctx) markDead(a ipv4.Addr) {
	if m.dead == nil {
		m.dead = make(map[ipv4.Addr]bool)
	}
	m.dead[a] = true
}

// retryPolicy resolves the measurement retry policy: the engine's
// Options budget when set, else the pool's default.
func (e *Engine) retryPolicy() probe.RetryPolicy {
	switch {
	case e.Opts.ProbeRetries > 0:
		return probe.RetryPolicy{
			Max:          e.Opts.ProbeRetries,
			BackoffUS:    e.Opts.RetryBackoffUS,
			MaxBackoffUS: e.Opts.RetryMaxBackoffUS,
		}
	case e.Opts.ProbeRetries < 0:
		return probe.RetryPolicy{}
	}
	return e.Pool.Retry()
}

// next allocates the next probe sequence number.
func (m *mctx) next() uint64 {
	m.seq++
	return m.seq
}

// reserve allocates a contiguous block of n sequence numbers and returns
// the base (used by traceroutes, one number per TTL).
func (m *mctx) reserve(n int) uint64 {
	base := m.seq
	m.seq += uint64(n)
	return base
}

// MeasureReverse measures the reverse path from dst back to src,
// implementing the Fig 2 control flow. It is a thin run-to-completion
// wrapper over the resumable state machine (Begin/Next/Deliver): the
// caller's goroutine drives every pending probe batch synchronously, so
// the behavior — probe identities, accounting, caching, determinism —
// is exactly the machine's. ctx deadlines and cancellation are honoured
// between stages and between spoofed batches: a cancelled measurement
// returns promptly with StatusFailed (and Cancelled set) and its
// partial probe accounting. ctx may be nil (context.Background()).
func (e *Engine) MeasureReverse(ctx context.Context, src Source, dst ipv4.Addr) *Result {
	return e.MeasureReverseStream(ctx, src, dst, nil)
}

// MeasureReverseStream is MeasureReverse with a progress-event sink:
// the machine emits typed events (started, hop reveals, fallbacks, the
// terminal status) synchronously on the caller's goroutine as it
// advances. The emitted sequence — kinds, hops, per-measurement
// sequence numbers, virtual timestamps — is bit-identical to the one
// MeasureAsyncStream emits for the same seed. A nil sink measures
// silently.
func (e *Engine) MeasureReverseStream(ctx context.Context, src Source, dst ipv4.Addr, sink func(stream.Event)) *Result {
	mm := e.Begin(ctx, src, dst)
	if sink != nil {
		mm.SetSink(sink)
	}
	for p := mm.Next(); p != nil; p = mm.Next() {
		mm.Deliver(e.ExecPending(mm.Context(), p))
	}
	return mm.Result()
}

// reachedSource reports whether addr is the source or sits on the
// source's first-hop router.
func (e *Engine) reachedSource(addr ipv4.Addr, src Source) bool {
	if addr == src.Agent.Addr {
		return true
	}
	if r, ok := e.F.Topo.RouterOf(addr); ok && r == src.Agent.Router {
		return true
	}
	return false
}

// finish closes a completed path, appending the source hop if the last
// measured hop is not already it.
func (e *Engine) finish(res *Result, src Source) {
	if len(res.Hops) == 0 || res.Hops[len(res.Hops)-1].Addr != src.Agent.Addr {
		res.Hops = append(res.Hops, Hop{Addr: src.Agent.Addr, Tech: TechSource})
	}
	res.Status = StatusComplete
}

// atlasLookup applies the configuration's intersection rules.
func (e *Engine) atlasLookup(src Source, cur ipv4.Addr, excludeAS int32) (atlas.Intersection, bool) {
	if src.Atlas == nil {
		return atlas.Intersection{}, false
	}
	x, ok := src.Atlas.Lookup(cur)
	if !ok {
		return atlas.Intersection{}, false
	}
	if excludeAS >= 0 && x.Entry.ProbeAS == excludeAS {
		return atlas.Intersection{}, false
	}
	if x.ViaRRAlias && !e.Opts.UseRRAtlas {
		return atlas.Intersection{}, false
	}
	if e.Opts.AtlasMaxAgeUS > 0 && e.Pool.Now()-x.Entry.MeasuredAtUS > e.Opts.AtlasMaxAgeUS {
		return atlas.Intersection{}, false
	}
	return x, true
}

// revealed is the outcome of the RR step: the reverse hops the direct
// probe (Fig 1b) or the spoofed sweep (Fig 1c–d) uncovered, the spoof
// batches issued, and the virtual time spent. The sweep stops issuing
// further batches once one reveals hops (batch-granular early exit,
// which keeps probe counts deterministic — every launched batch runs to
// completion). See Machine.stepSpoofNext / Machine.onSpoofBatch.
type revealed struct {
	hops      []ipv4.Addr
	tech      Technique
	batches   int
	elapsedUS int64
}

// flagSuspects inserts "*" markers where the AS-level path crosses a link
// that is not a known AS adjacency — the §5.2.2 heuristic for routers
// that forward RR packets without stamping. Private (unmappable) hops are
// visible as private addresses and need no flag.
func (e *Engine) flagSuspects(res *Result) {
	topo := e.F.Topo
	prevAS := int32(-1)
	prevIdx := -1
	for i := range res.Hops {
		a := res.Hops[i].Addr
		asn, ok := e.Mapper.ASOf(a)
		if !ok {
			continue
		}
		if prevIdx >= 0 && int32(asn) != prevAS {
			if topo.ASes[prevAS].Neighbor(asn) == nil {
				res.Hops[i].SuspectBefore = true
			}
		}
		prevAS = int32(asn)
		prevIdx = i
	}
}
