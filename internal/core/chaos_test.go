package core_test

// Chaos suite: the engine under a deterministic fault plan — random link
// loss, ICMP rate limiting, route flaps, and vantage-point blackouts —
// must not panic, must keep probe accounting consistent, must stay
// bit-identical across worker counts, and must degrade monotonically
// (never hang) as loss climbs. Run with -race; `make chaos` does.

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"revtr/internal/atlas"
	"revtr/internal/core"
	"revtr/internal/ingress"
	"revtr/internal/ip2as"
	"revtr/internal/measure"
	"revtr/internal/netsim/faults"
	"revtr/internal/netsim/ipv4"
	"revtr/internal/obs"
	"revtr/internal/probe"
	"revtr/internal/simtest"
)

// chaosEnv builds the full measurement stack over a healthy fabric —
// the ingress survey and atlas are measured fault-free, mirroring the
// binaries where faults attach after Build — and returns the pieces a
// chaos test needs to attach its own plan and engines.
type chaosEnv struct {
	env  *simtest.Env
	ing  *ingress.Service
	src  core.Source
	dsts []ipv4.Addr
}

func newChaosEnv(t testing.TB, seed int64, nDsts int) *chaosEnv {
	t.Helper()
	env := simtest.New(t, 300, seed)
	ing := ingress.NewService(env.Prober, env.Sites, ingress.AllHeuristics, 8)
	ing.Survey(env.Topo.AllBGPPrefixes(), func(pfx ipv4.Prefix) []ipv4.Addr {
		asn, ok := env.Topo.BlockAS(pfx.Addr)
		if !ok {
			return nil
		}
		var out []ipv4.Addr
		if pfx.Bits == 24 {
			for _, hid := range env.Topo.ASes[asn].Hosts {
				h := &env.Topo.Hosts[hid]
				if pfx.Contains(h.Addr) && h.PingResponsive {
					out = append(out, h.Addr)
					if len(out) == 2 {
						break
					}
				}
			}
		} else {
			for _, rid := range env.Topo.ASes[asn].Routers {
				r := env.Topo.Routers[rid]
				if r.RespondsToPing && r.RespondsToOptions {
					out = append(out, r.Loopback)
					if len(out) == 2 {
						break
					}
				}
			}
		}
		return out
	})
	srcAgent := env.Agent(env.SourceHost(0))
	svc := atlas.NewService(env.Prober, env.Probes, atlas.FixedSites(env.Sites), env.Alias, 25, true, 8)
	src := core.Source{Agent: srcAgent, Atlas: svc.BuildFor(srcAgent)}

	var dsts []ipv4.Addr
	for i := 0; len(dsts) < nDsts; i++ {
		d := env.ResponsiveHost(i*2, srcAgent.AS)
		if d == nil {
			break
		}
		dsts = append(dsts, d.Addr)
	}
	if len(dsts) == 0 {
		t.Fatal("no destinations")
	}
	return &chaosEnv{env: env, ing: ing, src: src, dsts: dsts}
}

// engine builds a fresh engine (own cache, own pool with the given
// worker count) over the environment's fabric and shared clock.
func (c *chaosEnv) engine(workers int, pol probe.RetryPolicy) (*core.Engine, *probe.Pool) {
	return c.engineOpts(workers, pol, core.Revtr20Options())
}

// engineOpts is engine with explicit engine options.
func (c *chaosEnv) engineOpts(workers int, pol probe.RetryPolicy, o core.Options) (*core.Engine, *probe.Pool) {
	pool := probe.New(c.env.Fabric, c.env.Pool.Clock(), workers)
	pool.SetRetry(pol)
	eng := core.NewEngine(c.env.Fabric, pool, c.ing, c.env.Sites, c.env.Alias,
		ip2as.Origin{Topo: c.env.Topo}, nil, o)
	return eng, pool
}

// renderCoreResult flattens a result into a comparable string: status,
// probe counters, and every hop address and technique in order.
func renderCoreResult(res *core.Result) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%v sym=%d probes=%+v", res.Status, res.SymAssumed, res.Probes)
	for _, h := range res.Hops {
		fmt.Fprintf(&sb, " %s/%v", h.Addr, h.Tech)
	}
	return sb.String()
}

// TestChaosAccountingConsistent: across seeds and loss levels, the sum
// of per-measurement probe budgets equals the pool's aggregate counters
// — retries, rate-limited drops, and VP failovers are all charged in
// exactly one place. Also the basic no-panic/no-hang smoke.
func TestChaosAccountingConsistent(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		for _, loss := range []float64{0.02, 0.2} {
			t.Run(fmt.Sprintf("seed%d/loss%g", seed, loss), func(t *testing.T) {
				c := newChaosEnv(t, seed, 8)
				c.env.Fabric.SetFaults(&faults.Plan{
					Seed: uint64(seed), LinkLoss: loss, ICMPFrac: 0.3, ICMPPass: 0.5,
				})
				eng, pool := c.engine(4, probe.RetryPolicy{Max: 2})
				var sum measure.Counters
				for _, dst := range c.dsts {
					res := eng.MeasureReverse(context.Background(), c.src, dst)
					if res.Status != core.StatusComplete && res.Status != core.StatusAborted &&
						res.Status != core.StatusFailed {
						t.Fatalf("dst %s: invalid status %v", dst, res.Status)
					}
					sum = sum.Add(res.Probes)
				}
				if got := pool.Counters(); got != sum {
					t.Fatalf("accounting drift: pool issued %+v, measurements charged %+v", got, sum)
				}
			})
		}
	}
}

// TestChaosWorkerBitIdentity: under one fixed fault plan, the full
// per-destination results (status, hops, techniques, probe budgets) are
// bit-identical between a serial engine and an 8-worker engine. Fault
// decisions are pure functions of (plan seed, entity, virtual time,
// nonce), so concurrency must not leak into outcomes.
func TestChaosWorkerBitIdentity(t *testing.T) {
	for _, seed := range []int64{2, 5} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			c := newChaosEnv(t, seed, 8)
			c.env.Fabric.SetFaults(&faults.Plan{
				Seed: 99, LinkLoss: 0.15, ICMPFrac: 0.4, ICMPPass: 0.4, FlapFrac: 0.05,
			})
			pol := probe.RetryPolicy{Max: 2, BackoffUS: 30_000}
			run := func(workers int) []string {
				eng, _ := c.engine(workers, pol)
				out := make([]string, len(c.dsts))
				for i, dst := range c.dsts {
					res := eng.MeasureReverse(context.Background(), c.src, dst)
					out[i] = renderCoreResult(res)
				}
				return out
			}
			serial, parallel := run(1), run(8)
			for i := range serial {
				if serial[i] != parallel[i] {
					t.Errorf("dst %s diverged:\n  workers=1: %s\n  workers=8: %s",
						c.dsts[i], serial[i], parallel[i])
				}
			}
		})
	}
}

// TestChaosMonotoneCompletion: completions aggregated over seeds must
// not increase as loss climbs, and even at 95%% loss every measurement
// still terminates with a valid status (graceful degradation, no hangs).
func TestChaosMonotoneCompletion(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-level sweep")
	}
	losses := []float64{0, 0.25, 0.6, 0.95}
	complete := make([]int, len(losses))
	for _, seed := range []int64{1, 2, 3} {
		c := newChaosEnv(t, seed, 6)
		for li, loss := range losses {
			c.env.Fabric.SetFaults(&faults.Plan{Seed: uint64(seed), LinkLoss: loss})
			eng, _ := c.engine(4, probe.RetryPolicy{Max: 1})
			for _, dst := range c.dsts {
				res := eng.MeasureReverse(context.Background(), c.src, dst)
				if res.Status == core.StatusComplete {
					complete[li]++
				}
			}
		}
	}
	t.Logf("completions by loss level %v: %v", losses, complete)
	if complete[0] == 0 {
		t.Fatal("nothing completed even fault-free")
	}
	for i := 1; i < len(complete); i++ {
		if complete[i] > complete[i-1] {
			t.Errorf("completions rose from %d to %d as loss climbed %g -> %g",
				complete[i-1], complete[i], losses[i-1], losses[i])
		}
	}
}

// TestChaosVPFailoverDegrades: with every spoof-capable non-source site
// blacked out, spoofed stages hit dead vantage points; the engine must
// record failovers, never charge dead VPs to the budget, and still
// finish every measurement. The engine-level dead-VP cache means each
// dead site fails over at most once per engine — before it existed,
// every measurement re-probed every blacked-out site, so two sweeps
// over 10 destinations recorded ~20x len(Blackouts) failovers and this
// test's repetition bound fails.
func TestChaosVPFailoverDegrades(t *testing.T) {
	c := newChaosEnv(t, 8, 10)
	plan := &faults.Plan{}
	for _, site := range c.env.Sites {
		if site.CanSpoof && site.Addr != c.src.Agent.Addr {
			plan.AddBlackout(site.Addr, 0, 0)
		}
	}
	if len(plan.Blackouts) == 0 {
		t.Skip("no spoof-capable non-source sites in this seed")
	}
	c.env.Fabric.SetFaults(plan)
	o := core.Revtr20Options()
	o.DeadVPTTLUS = 1 << 60 // never expires within the test's virtual horizon
	eng, _ := c.engineOpts(4, probe.RetryPolicy{}, o)
	reg := obs.New()
	eng.SetMetrics(core.NewMetrics(reg))
	for pass := 0; pass < 2; pass++ {
		for _, dst := range c.dsts {
			res := eng.MeasureReverse(context.Background(), c.src, dst)
			if res.Status != core.StatusComplete && res.Status != core.StatusAborted &&
				res.Status != core.StatusFailed {
				t.Fatalf("pass %d dst %s: invalid status %v", pass, dst, res.Status)
			}
		}
	}
	failovers := reg.Counter("vp_failover_total").Value()
	spoofBatches := reg.Counter("engine_spoof_batches_total").Value()
	deadHits := reg.Counter("engine_dead_vp_hits_total").Value()
	if spoofBatches > 0 && failovers == 0 {
		t.Fatalf("%d spoofed batches ran against all-dead vantage points without a recorded failover", spoofBatches)
	}
	if spoofBatches == 0 {
		t.Skip("no measurement reached a spoofed stage under this seed")
	}
	// Serially issued batches are built after every prior delivery has
	// been absorbed, so with the cache never expiring, a site can be
	// caught dead at most once across the engine's whole lifetime.
	if failovers > uint64(len(plan.Blackouts)) {
		t.Fatalf("failover probes repeated: %d failovers recorded for %d blacked-out sites over %d measurements",
			failovers, len(plan.Blackouts), 2*len(c.dsts))
	}
	if failovers > 0 && deadHits == 0 {
		t.Fatalf("sites failed over but no later measurement skipped them via the shared dead-VP cache")
	}
	t.Logf("vp failovers: %d over %d spoofed batches, %d dead-VP cache skips",
		failovers, spoofBatches, deadHits)
}
