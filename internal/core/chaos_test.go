package core_test

// Chaos suite: the engine under a deterministic fault plan — random link
// loss, ICMP rate limiting, route flaps, and vantage-point blackouts —
// must not panic, must keep probe accounting consistent, must stay
// bit-identical across worker counts, and must degrade monotonically
// (never hang) as loss climbs. Run with -race; `make chaos` does.

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"revtr/internal/atlas"
	"revtr/internal/core"
	"revtr/internal/core/segments"
	"revtr/internal/ingress"
	"revtr/internal/ip2as"
	"revtr/internal/measure"
	"revtr/internal/netsim/dynamics"
	"revtr/internal/netsim/faults"
	"revtr/internal/netsim/ipv4"
	"revtr/internal/obs"
	"revtr/internal/probe"
	"revtr/internal/simtest"
)

// chaosEnv builds the full measurement stack over a healthy fabric —
// the ingress survey and atlas are measured fault-free, mirroring the
// binaries where faults attach after Build — and returns the pieces a
// chaos test needs to attach its own plan and engines.
type chaosEnv struct {
	env  *simtest.Env
	ing  *ingress.Service
	src  core.Source
	dsts []ipv4.Addr
}

func newChaosEnv(t testing.TB, seed int64, nDsts int) *chaosEnv {
	t.Helper()
	env := simtest.New(t, 300, seed)
	ing := ingress.NewService(env.Prober, env.Sites, ingress.AllHeuristics, 8)
	ing.Survey(env.Topo.AllBGPPrefixes(), func(pfx ipv4.Prefix) []ipv4.Addr {
		asn, ok := env.Topo.BlockAS(pfx.Addr)
		if !ok {
			return nil
		}
		var out []ipv4.Addr
		if pfx.Bits == 24 {
			for _, hid := range env.Topo.ASes[asn].Hosts {
				h := &env.Topo.Hosts[hid]
				if pfx.Contains(h.Addr) && h.PingResponsive {
					out = append(out, h.Addr)
					if len(out) == 2 {
						break
					}
				}
			}
		} else {
			for _, rid := range env.Topo.ASes[asn].Routers {
				r := env.Topo.Routers[rid]
				if r.RespondsToPing && r.RespondsToOptions {
					out = append(out, r.Loopback)
					if len(out) == 2 {
						break
					}
				}
			}
		}
		return out
	})
	srcAgent := env.Agent(env.SourceHost(0))
	svc := atlas.NewService(env.Prober, env.Probes, atlas.FixedSites(env.Sites), env.Alias, 25, true, 8)
	src := core.Source{Agent: srcAgent, Atlas: svc.BuildFor(srcAgent)}

	var dsts []ipv4.Addr
	for i := 0; len(dsts) < nDsts; i++ {
		d := env.ResponsiveHost(i*2, srcAgent.AS)
		if d == nil {
			break
		}
		dsts = append(dsts, d.Addr)
	}
	if len(dsts) == 0 {
		t.Fatal("no destinations")
	}
	return &chaosEnv{env: env, ing: ing, src: src, dsts: dsts}
}

// engine builds a fresh engine (own cache, own pool with the given
// worker count) over the environment's fabric and shared clock.
func (c *chaosEnv) engine(workers int, pol probe.RetryPolicy) (*core.Engine, *probe.Pool) {
	return c.engineOpts(workers, pol, core.Revtr20Options())
}

// engineOpts is engine with explicit engine options.
func (c *chaosEnv) engineOpts(workers int, pol probe.RetryPolicy, o core.Options) (*core.Engine, *probe.Pool) {
	pool := probe.New(c.env.Fabric, c.env.Pool.Clock(), workers)
	pool.SetRetry(pol)
	eng := core.NewEngine(c.env.Fabric, pool, c.ing, c.env.Sites, c.env.Alias,
		ip2as.Origin{Topo: c.env.Topo}, nil, o)
	return eng, pool
}

// renderCoreResult flattens a result into a comparable string: status,
// probe counters, and every hop address and technique in order.
func renderCoreResult(res *core.Result) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%v sym=%d probes=%+v", res.Status, res.SymAssumed, res.Probes)
	for _, h := range res.Hops {
		fmt.Fprintf(&sb, " %s/%v", h.Addr, h.Tech)
	}
	return sb.String()
}

// TestChaosAccountingConsistent: across seeds and loss levels, the sum
// of per-measurement probe budgets equals the pool's aggregate counters
// — retries, rate-limited drops, and VP failovers are all charged in
// exactly one place. Also the basic no-panic/no-hang smoke.
func TestChaosAccountingConsistent(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		for _, loss := range []float64{0.02, 0.2} {
			t.Run(fmt.Sprintf("seed%d/loss%g", seed, loss), func(t *testing.T) {
				c := newChaosEnv(t, seed, 8)
				c.env.Fabric.SetFaults(&faults.Plan{
					Seed: uint64(seed), LinkLoss: loss, ICMPFrac: 0.3, ICMPPass: 0.5,
				})
				eng, pool := c.engine(4, probe.RetryPolicy{Max: 2})
				var sum measure.Counters
				for _, dst := range c.dsts {
					res := eng.MeasureReverse(context.Background(), c.src, dst)
					if res.Status != core.StatusComplete && res.Status != core.StatusAborted &&
						res.Status != core.StatusFailed {
						t.Fatalf("dst %s: invalid status %v", dst, res.Status)
					}
					sum = sum.Add(res.Probes)
				}
				if got := pool.Counters(); got != sum {
					t.Fatalf("accounting drift: pool issued %+v, measurements charged %+v", got, sum)
				}
			})
		}
	}
}

// TestChaosWorkerBitIdentity: under one fixed fault plan, the full
// per-destination results (status, hops, techniques, probe budgets) are
// bit-identical between a serial engine and an 8-worker engine. Fault
// decisions are pure functions of (plan seed, entity, virtual time,
// nonce), so concurrency must not leak into outcomes.
func TestChaosWorkerBitIdentity(t *testing.T) {
	for _, seed := range []int64{2, 5} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			c := newChaosEnv(t, seed, 8)
			c.env.Fabric.SetFaults(&faults.Plan{
				Seed: 99, LinkLoss: 0.15, ICMPFrac: 0.4, ICMPPass: 0.4, FlapFrac: 0.05,
			})
			pol := probe.RetryPolicy{Max: 2, BackoffUS: 30_000}
			run := func(workers int) []string {
				eng, _ := c.engine(workers, pol)
				out := make([]string, len(c.dsts))
				for i, dst := range c.dsts {
					res := eng.MeasureReverse(context.Background(), c.src, dst)
					out[i] = renderCoreResult(res)
				}
				return out
			}
			serial, parallel := run(1), run(8)
			for i := range serial {
				if serial[i] != parallel[i] {
					t.Errorf("dst %s diverged:\n  workers=1: %s\n  workers=8: %s",
						c.dsts[i], serial[i], parallel[i])
				}
			}
		})
	}
}

// TestChaosMonotoneCompletion: completions aggregated over seeds must
// not increase as loss climbs, and even at 95%% loss every measurement
// still terminates with a valid status (graceful degradation, no hangs).
func TestChaosMonotoneCompletion(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-level sweep")
	}
	losses := []float64{0, 0.25, 0.6, 0.95}
	complete := make([]int, len(losses))
	for _, seed := range []int64{1, 2, 3} {
		c := newChaosEnv(t, seed, 6)
		for li, loss := range losses {
			c.env.Fabric.SetFaults(&faults.Plan{Seed: uint64(seed), LinkLoss: loss})
			eng, _ := c.engine(4, probe.RetryPolicy{Max: 1})
			for _, dst := range c.dsts {
				res := eng.MeasureReverse(context.Background(), c.src, dst)
				if res.Status == core.StatusComplete {
					complete[li]++
				}
			}
		}
	}
	t.Logf("completions by loss level %v: %v", losses, complete)
	if complete[0] == 0 {
		t.Fatal("nothing completed even fault-free")
	}
	for i := 1; i < len(complete); i++ {
		if complete[i] > complete[i-1] {
			t.Errorf("completions rose from %d to %d as loss climbed %g -> %g",
				complete[i-1], complete[i], losses[i-1], losses[i])
		}
	}
}

// TestChaosVPFailoverDegrades: with every spoof-capable non-source site
// blacked out, spoofed stages hit dead vantage points; the engine must
// record failovers, never charge dead VPs to the budget, and still
// finish every measurement. The engine-level dead-VP cache means each
// dead site fails over at most once per engine — before it existed,
// every measurement re-probed every blacked-out site, so two sweeps
// over 10 destinations recorded ~20x len(Blackouts) failovers and this
// test's repetition bound fails.
func TestChaosVPFailoverDegrades(t *testing.T) {
	c := newChaosEnv(t, 8, 10)
	plan := &faults.Plan{}
	for _, site := range c.env.Sites {
		if site.CanSpoof && site.Addr != c.src.Agent.Addr {
			plan.AddBlackout(site.Addr, 0, 0)
		}
	}
	if len(plan.Blackouts) == 0 {
		t.Skip("no spoof-capable non-source sites in this seed")
	}
	c.env.Fabric.SetFaults(plan)
	o := core.Revtr20Options()
	o.DeadVPTTLUS = 1 << 60 // never expires within the test's virtual horizon
	eng, _ := c.engineOpts(4, probe.RetryPolicy{}, o)
	reg := obs.New()
	eng.SetMetrics(core.NewMetrics(reg))
	for pass := 0; pass < 2; pass++ {
		for _, dst := range c.dsts {
			res := eng.MeasureReverse(context.Background(), c.src, dst)
			if res.Status != core.StatusComplete && res.Status != core.StatusAborted &&
				res.Status != core.StatusFailed {
				t.Fatalf("pass %d dst %s: invalid status %v", pass, dst, res.Status)
			}
		}
	}
	failovers := reg.Counter("vp_failover_total").Value()
	spoofBatches := reg.Counter("engine_spoof_batches_total").Value()
	deadHits := reg.Counter("engine_dead_vp_hits_total").Value()
	if spoofBatches > 0 && failovers == 0 {
		t.Fatalf("%d spoofed batches ran against all-dead vantage points without a recorded failover", spoofBatches)
	}
	if spoofBatches == 0 {
		t.Skip("no measurement reached a spoofed stage under this seed")
	}
	// Serially issued batches are built after every prior delivery has
	// been absorbed, so with the cache never expiring, a site can be
	// caught dead at most once across the engine's whole lifetime.
	if failovers > uint64(len(plan.Blackouts)) {
		t.Fatalf("failover probes repeated: %d failovers recorded for %d blacked-out sites over %d measurements",
			failovers, len(plan.Blackouts), 2*len(c.dsts))
	}
	if failovers > 0 && deadHits == 0 {
		t.Fatalf("sites failed over but no later measurement skipped them via the shared dead-VP cache")
	}
	t.Logf("vp failovers: %d over %d spoofed batches, %d dead-VP cache skips",
		failovers, spoofBatches, deadHits)
}

// splicedWrong classifies a result's memoized suffix against *current*
// ground truth: did the measurement splice at all, and if so, does any
// spliced hop lie off every present forward router path from the splice
// anchor back to the source? A few ECMP flows are unioned so per-flow
// load balancing is not mistaken for staleness; private hops, host
// addresses, and unresolvable hops carry no router-level claim.
func splicedWrong(env *simtest.Env, srcAddr ipv4.Addr, res *core.Result) (spliced, wrong bool) {
	first := -1
	for i, h := range res.Hops {
		if h.Spliced {
			first = i
			break
		}
	}
	if first <= 0 {
		return false, false
	}
	start := res.Hops[first-1].Addr
	r, ok := env.Topo.RouterOf(start)
	if !ok {
		// Splices anchored at the destination itself start from a host
		// address; the claim is then about the path from its gateway.
		host, hok := env.Topo.HostOf(start)
		if !hok {
			return true, false
		}
		r = host.Router
	}
	onPath := map[ipv4.Addr]bool{srcAddr: true}
	for flow := uint64(0); flow < 4; flow++ {
		for _, tr := range env.Fabric.ForwardRouterPath(r, srcAddr, start, flow) {
			for _, a := range env.Topo.Aliases(tr) {
				onPath[a] = true
			}
		}
	}
	for _, h := range res.Hops[first:] {
		if h.Addr.IsPrivate() {
			continue
		}
		if _, isHost := env.Topo.HostOf(h.Addr); isHost {
			continue
		}
		if !onPath[h.Addr] {
			return true, true
		}
	}
	return true, false
}

// TestChaosSegmentStormRecovery: a route-flap storm against a shared
// segment store. During the storm, stale memoized suffixes get spliced
// into wrong paths — that is the staleness window the TTL bounds. The
// engine has an intrinsic wrong-path baseline even on fresh splices
// (symmetry-assumed hops ride inside memoized chains), so every
// assertion is against that measured baseline, not zero:
//
//  1. the storm pushes wrong splices strictly above the baseline;
//  2. once flaps stop, wrong splices never grow round over round while
//     the stale segments live (splicing never refreshes a TTL, and
//     completed paths republish only their freshly measured prefix);
//  3. once a full TTL has elapsed since the last flap, every surviving
//     stale segment has been evicted and re-measured, so wrong splices
//     recover to at most the baseline — while splicing itself keeps
//     working.
func TestChaosSegmentStormRecovery(t *testing.T) {
	c := newChaosEnv(t, 3, 24)
	churn := dynamics.New(c.env.Fabric, 42)
	c.env.Fabric.InvalidateRoutes()
	// The atlas was built before the churn policy was installed; drop it
	// so segment memoization is the only cross-measurement path state.
	src := core.Source{Agent: c.src.Agent}

	const ttl = int64(1) << 40
	o := core.Revtr20Options()
	o.UseCache = false
	o.SegmentStore = segments.New(segments.Options{TTLUS: ttl})
	eng, pool := c.engineOpts(1, probe.RetryPolicy{}, o)

	round := func() (spliced, wrong int) {
		for _, dst := range c.dsts {
			res := eng.MeasureReverse(context.Background(), src, dst)
			s, w := splicedWrong(c.env, src.Agent.Addr, res)
			if s {
				spliced++
			}
			if w {
				wrong++
			}
		}
		return
	}

	// Warm the store, then observe the fresh-segment baseline.
	round()
	splicedWarm, baseline := round()
	if splicedWarm == 0 {
		t.Fatal("no measurement spliced during the warm rounds")
	}
	t.Logf("fresh-splice baseline: %d wrong of %d measurements (%d spliced)",
		baseline, len(c.dsts), splicedWarm)

	// Storm: five flap epochs, measuring between them. Stale splices
	// must push the wrong-path count above the fresh baseline.
	peak := 0
	for i := 0; i < 5; i++ {
		churn.Step(1.0, 60)
		_, w := round()
		if w > peak {
			peak = w
		}
	}
	t.Logf("storm peak: %d wrong-spliced measurements of %d", peak, len(c.dsts))
	if peak <= baseline {
		t.Fatalf("storm never pushed wrong splices (peak %d) above the fresh baseline (%d): staleness undetected",
			peak, baseline)
	}

	// Flaps stop. The set of stale segments is now fixed, so while they
	// live, wrong splices must not grow; as virtual time crosses the TTL
	// (one third per round), they expire and are re-measured against
	// current routes, recovering the baseline. Rounds 2+ start beyond
	// the full TTL window.
	quiet := make([]int, 6)
	splicedLast := 0
	for i := range quiet {
		pool.Clock().Advance(ttl/3 + 1)
		splicedLast, quiet[i] = round()
	}
	t.Logf("quiet rounds wrong-spliced: %v", quiet)
	for i := 1; i < len(quiet); i++ {
		if quiet[i] > peak {
			t.Fatalf("wrong splices grew past the storm peak %d after flaps stopped: %v", peak, quiet)
		}
	}
	for i := 2; i < len(quiet); i++ {
		if quiet[i] > baseline {
			t.Fatalf("quiet round %d (a full TTL after the last flap) still has %d wrong splices, baseline %d: %v",
				i, quiet[i], baseline, quiet)
		}
	}
	if splicedLast == 0 {
		t.Fatal("no splices after TTL expiry: memoization never recovered")
	}
}
