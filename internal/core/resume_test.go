package core_test

// Suspend/resume property suite for the resumable measurement machine:
// stopping a measurement at any spoofed-batch (or any probe-batch)
// boundary, snapshotting it with Clone, and resuming only the snapshot
// must produce a Result bit-identical to the straight-through run. Also
// the S2 cancellation regression: a measurement whose probe batch was
// cut short by context cancellation must report Cancelled rather than
// masquerading as "probed but silent".

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"revtr/internal/core"
	"revtr/internal/netsim/faults"
	"revtr/internal/obs"
	"revtr/internal/probe"
)

// driveMachine pulls a machine to completion, executing every pending
// probe batch synchronously; returns the result and how many pendings
// the measurement suspended on.
func driveMachine(eng *core.Engine, mm *core.Machine) (*core.Result, int) {
	n := 0
	for p := mm.Next(); p != nil; p = mm.Next() {
		mm.Deliver(eng.ExecPending(mm.Context(), p))
		n++
	}
	return mm.Result(), n
}

// TestResumeBitIdentity: for every suspension boundary k of a
// measurement with n pendings, run the first k batches on a machine,
// Clone it mid-suspension, resume only the clone, and require a Result
// bit-identical to the reference straight-through run — then resume the
// abandoned original too and require the same, proving the clone and
// its parent share no mutable state. Three topology seeds under a lossy
// fault plan, in both the revtr 2.0 (+DBR redundancy) and revtr 1.0
// configurations.
func TestResumeBitIdentity(t *testing.T) {
	configs := []struct {
		name string
		opts func() core.Options
	}{
		{"revtr20+dbr", func() core.Options {
			o := core.Revtr20Options()
			o.DetectDBRViolations = true
			return o
		}},
		{"revtr10", core.Revtr10Options},
	}
	for _, seed := range []int64{1, 4, 9} {
		for _, cfg := range configs {
			t.Run(fmt.Sprintf("seed%d/%s", seed, cfg.name), func(t *testing.T) {
				c := newChaosEnv(t, seed, 3)
				c.env.Fabric.SetFaults(&faults.Plan{
					Seed: uint64(seed), LinkLoss: 0.1, ICMPFrac: 0.3, ICMPPass: 0.5,
				})
				o := cfg.opts()
				// Caching off: every run of a destination must be
				// independent of the runs before it.
				o.UseCache = false
				eng, _ := c.engineOpts(1, probe.RetryPolicy{Max: 1}, o)
				for _, dst := range c.dsts {
					ref, n := driveMachine(eng, eng.Begin(context.Background(), c.src, dst))
					if n == 0 {
						continue // completed without suspending; nothing to resume
					}
					for k := 0; k < n; k++ {
						mm := eng.Begin(context.Background(), c.src, dst)
						for i := 0; i < k; i++ {
							mm.Deliver(eng.ExecPending(mm.Context(), mm.Next()))
						}
						cl := mm.Clone()
						got, rest := driveMachine(eng, cl)
						if !reflect.DeepEqual(got, ref) || k+rest != n {
							t.Fatalf("dst %s: clone resumed at boundary %d/%d diverged (+%d pendings)\nref %+v\ngot %+v",
								dst, k, n, rest, ref, got)
						}
						orig, rest := driveMachine(eng, mm)
						if !reflect.DeepEqual(orig, ref) || k+rest != n {
							t.Fatalf("dst %s: original resumed after cloning at boundary %d/%d diverged\nref %+v\ngot %+v",
								dst, k, n, ref, orig)
						}
					}
				}
			})
		}
	}
}

// TestCancelledBatchNotCharged: cancelling the context while a probe
// batch is pending makes the pool skip its probes; the machine must
// read the skip as cancellation — Cancelled result, cancelled metric,
// no probes charged — not as "every vantage point went silent". Before
// the fix the zero-value replies flowed into the technique logic and
// the run counted against engine_measure_failed_total.
func TestCancelledBatchNotCharged(t *testing.T) {
	h, eng := newHarness(t, nil)
	reg := obs.New()
	eng.SetMetrics(core.NewMetrics(reg))
	dst := h.env.ResponsiveHost(0, h.src.Agent.AS)

	ctx, cancel := context.WithCancel(context.Background())
	mm := eng.Begin(ctx, h.src, dst.Addr)
	p := mm.Next()
	if p == nil {
		t.Fatal("measurement finished without suspending on a probe batch")
	}
	cancel()
	d := eng.ExecPending(mm.Context(), p)
	if d.Batch.Skipped == 0 {
		t.Fatalf("cancelled pool run skipped nothing: %+v", d.Batch)
	}
	mm.Deliver(d)
	if !mm.Done() {
		t.Fatal("machine kept running after a cancellation-skipped batch")
	}
	res := mm.Result()
	if res.Status != core.StatusFailed || !res.Cancelled {
		t.Fatalf("status = %v cancelled = %v, want failed + cancelled", res.Status, res.Cancelled)
	}
	if res.Probes != d.Batch.Sent {
		t.Fatalf("cancelled measurement charged %+v, pool sent %+v", res.Probes, d.Batch.Sent)
	}
	if got := reg.Counter("engine_measure_cancelled_total").Value(); got != 1 {
		t.Fatalf("engine_measure_cancelled_total = %d, want 1", got)
	}
	if got := reg.Counter("engine_measure_failed_total").Value(); got != 0 {
		t.Fatalf("cancelled run counted as a probing failure (engine_measure_failed_total = %d)", got)
	}
}
