package core_test

// Engine benchmark corpus (ROADMAP item 5): measurements/s at 1, 100,
// 1k, and 10k in-flight measurements through the resumable machine, and
// the footprint of one suspended measurement. `make bench` smoke-runs
// the benchmarks; `make bench` also regenerates BENCH_engine.json via
// TestWriteEngineBenchJSON (gated on the BENCH_ENGINE_JSON env var) so
// the checked-in numbers track the code.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"revtr/internal/core"
	"revtr/internal/netsim/ipv4"
)

// benchDsts collects up to n responsive destinations outside the
// source's AS.
func benchDsts(h *harness, n int) []ipv4.Addr {
	var dsts []ipv4.Addr
	for i := 0; len(dsts) < n; i++ {
		d := h.env.ResponsiveHost(i*2, h.src.Agent.AS)
		if d == nil {
			break
		}
		dsts = append(dsts, d.Addr)
	}
	return dsts
}

// runConcurrent drives n measurements with at most level in flight and
// returns the wall-clock rate.
func runConcurrent(eng *core.Engine, h *harness, dsts []ipv4.Addr, n, level int) float64 {
	sem := make(chan struct{}, level)
	var wg sync.WaitGroup
	wg.Add(n)
	start := time.Now() //revtr:wallclock benchmark timing
	for i := 0; i < n; i++ {
		sem <- struct{}{}
		eng.MeasureAsync(context.Background(), h.src, dsts[i%len(dsts)], func(*core.Result) {
			<-sem
			wg.Done()
		})
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds() //revtr:wallclock benchmark timing
	if elapsed <= 0 {
		return 0
	}
	return float64(n) / elapsed
}

func BenchmarkEngineConcurrency(b *testing.B) {
	for _, level := range []int{1, 100, 1000, 10000} {
		b.Run(fmt.Sprintf("inflight%d", level), func(b *testing.B) {
			opts := core.Revtr20Options()
			opts.UseCache = false
			h, eng := newHarness(b, &opts)
			dsts := benchDsts(h, 16)
			if len(dsts) == 0 {
				b.Skip("no destinations")
			}
			b.ReportAllocs()
			b.ResetTimer()
			rate := runConcurrent(eng, h, dsts, b.N, level)
			b.ReportMetric(rate, "revtrs/s")
		})
	}
}

// BenchmarkMachineSuspend prices one suspended measurement: Begin plus
// the compute to the first probe-batch suspension; -benchmem's B/op and
// allocs/op are the per-suspension footprint the 10k-concurrency bound
// rests on.
func BenchmarkMachineSuspend(b *testing.B) {
	opts := core.Revtr20Options()
	opts.UseCache = false
	h, eng := newHarness(b, &opts)
	dsts := benchDsts(h, 16)
	dst, ok := firstSuspendingDst(eng, h, dsts)
	if !ok {
		b.Skip("no destination suspends")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mm := eng.Begin(context.Background(), h.src, dst)
		if mm.Next() == nil {
			b.Fatal("measurement completed without suspending")
		}
	}
}

// firstSuspendingDst finds a destination whose measurement suspends on
// at least one probe batch.
func firstSuspendingDst(eng *core.Engine, h *harness, dsts []ipv4.Addr) (ipv4.Addr, bool) {
	for _, d := range dsts {
		if eng.Begin(context.Background(), h.src, d).Next() != nil {
			return d, true
		}
	}
	return 0, false
}

// suspendedFootprint parks k suspended machines and reports the
// retained heap bytes and allocation count per machine.
func suspendedFootprint(eng *core.Engine, h *harness, dst ipv4.Addr, k int) (bytesPer, allocsPer float64) {
	machines := make([]*core.Machine, k)
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	for i := range machines {
		mm := eng.Begin(context.Background(), h.src, dst)
		mm.Next()
		machines[i] = mm
	}
	runtime.GC()
	runtime.ReadMemStats(&after)
	if after.HeapAlloc > before.HeapAlloc {
		bytesPer = float64(after.HeapAlloc-before.HeapAlloc) / float64(k)
	}
	allocsPer = float64(after.Mallocs-before.Mallocs) / float64(k)
	runtime.KeepAlive(machines)
	return bytesPer, allocsPer
}

// TestWriteEngineBenchJSON regenerates BENCH_engine.json. Gated on the
// BENCH_ENGINE_JSON env var (the output path) so `go test ./...` stays
// side-effect free; `make bench` sets it.
func TestWriteEngineBenchJSON(t *testing.T) {
	path := os.Getenv("BENCH_ENGINE_JSON")
	if path == "" {
		t.Skip("set BENCH_ENGINE_JSON=<path> to write the engine benchmark corpus")
	}
	opts := core.Revtr20Options()
	opts.UseCache = false
	h, eng := newHarness(t, &opts)
	dsts := benchDsts(h, 16)
	if len(dsts) == 0 {
		t.Skip("no destinations")
	}

	type row struct {
		InFlight   int     `json:"in_flight"`
		N          int     `json:"measurements"`
		PerSec     float64 `json:"measurements_per_sec"`
		Goroutines int     `json:"goroutines_peak_sampled"`
		UsPerRevtr float64 `json:"us_per_measurement"`
	}
	var rows []row
	for _, level := range []int{1, 100, 1000, 10000} {
		n := 4 * level
		if n < 2000 {
			n = 2000
		}
		if n > 20000 {
			n = 20000
		}
		rate := runConcurrent(eng, h, dsts, n, level)
		rows = append(rows, row{
			InFlight:   level,
			N:          n,
			PerSec:     rate,
			Goroutines: runtime.NumGoroutine(),
			UsPerRevtr: 1e6 / rate,
		})
		t.Logf("in-flight %5d: %.0f measurements/s over %d", level, rate, n)
	}
	sdst, ok := firstSuspendingDst(eng, h, dsts)
	if !ok {
		t.Skip("no destination suspends")
	}
	bytesPer, allocsPer := suspendedFootprint(eng, h, sdst, 2000)
	t.Logf("suspended machine: %.0f B, %.1f allocs", bytesPer, allocsPer)

	doc := struct {
		Bench       string  `json:"bench"`
		Topology    string  `json:"topology"`
		GoMaxProcs  int     `json:"gomaxprocs"`
		Concurrency []row   `json:"concurrency"`
		SuspB       float64 `json:"suspended_machine_bytes"`
		SuspAllocs  float64 `json:"suspended_machine_allocs"`
	}{
		Bench:       "engine",
		Topology:    "simtest 300 ASes seed 8, revtr 2.0 options, cache off",
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Concurrency: rows,
		SuspB:       bytesPer,
		SuspAllocs:  allocsPer,
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}
