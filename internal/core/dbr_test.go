package core_test

import (
	"context"

	"testing"

	"revtr/internal/atlas"
	"revtr/internal/core"
	"revtr/internal/ingress"
	"revtr/internal/ip2as"
	"revtr/internal/netsim/ipv4"
	"revtr/internal/netsim/topology"
	"revtr/internal/simtest"
)

// dbrHarness builds an engine over a topology with a chosen
// destination-based-routing violator fraction.
func dbrHarness(t *testing.T, violatorP float64, opts core.Options) (*simtest.Env, *core.Engine, core.Source) {
	t.Helper()
	cfg := topology.DefaultConfig(300)
	cfg.Seed = 23
	cfg.DBRViolatorP = violatorP
	env := simtest.NewWithConfig(t, cfg)
	ing := ingress.NewService(env.Prober, env.Sites, ingress.AllHeuristics, 23)
	ing.Survey(env.Topo.AllBGPPrefixes(), func(pfx ipv4.Prefix) []ipv4.Addr {
		asn, ok := env.Topo.BlockAS(pfx.Addr)
		if !ok {
			return nil
		}
		var out []ipv4.Addr
		if pfx.Bits == 24 {
			for _, hid := range env.Topo.ASes[asn].Hosts {
				h := &env.Topo.Hosts[hid]
				if pfx.Contains(h.Addr) && h.PingResponsive {
					out = append(out, h.Addr)
					if len(out) == 2 {
						break
					}
				}
			}
		} else {
			for _, rid := range env.Topo.ASes[asn].Routers {
				r := env.Topo.Routers[rid]
				if r.RespondsToPing && r.RespondsToOptions {
					out = append(out, r.Loopback)
					if len(out) == 2 {
						break
					}
				}
			}
		}
		return out
	})
	srcAgent := env.Agent(env.SourceHost(0))
	svc := atlas.NewService(env.Prober, env.Probes, atlas.FixedSites(env.Sites), env.Alias, 25, true, 23)
	src := core.Source{Agent: srcAgent, Atlas: svc.BuildFor(srcAgent)}
	eng := core.NewEngine(env.Fabric, env.Pool, ing, env.Sites, env.Alias,
		ip2as.Origin{Topo: env.Topo}, nil, opts)
	return env, eng, src
}

func countDBRSuspects(env *simtest.Env, eng *core.Engine, src core.Source, n int) (suspects, hops int) {
	for i := 0; i < n*3 && hops < 1000; i++ {
		dst := env.ResponsiveHost(i, src.Agent.AS)
		if dst == nil {
			break
		}
		res := eng.MeasureReverse(context.Background(), src, dst.Addr)
		for _, h := range res.Hops {
			hops++
			if h.DBRSuspect {
				suspects++
			}
		}
	}
	return suspects, hops
}

// TestDBRDetectionFindsViolators: with half the routers violating
// destination-based routing, the Appendix E redundancy must flag some
// hops; with zero violators (and no per-packet balancers) it must flag
// none.
func TestDBRDetectionFindsViolators(t *testing.T) {
	opts := core.Revtr20Options()
	opts.DetectDBRViolations = true

	env, eng, src := dbrHarness(t, 0.5, opts)
	suspects, hops := countDBRSuspects(env, eng, src, 60)
	t.Logf("violator-heavy: %d/%d hops flagged", suspects, hops)
	if suspects == 0 {
		t.Error("no DBR suspects flagged despite 50% violator routers")
	}

	cfgClean := topology.DefaultConfig(300)
	cfgClean.Seed = 23
	cfgClean.DBRViolatorP = 0
	cfgClean.PerPacketLBP = 0
	envC := simtest.NewWithConfig(t, cfgClean)
	_ = envC // clean-topology flagging is covered via the harness below
	env2, eng2, src2 := dbrHarnessClean(t, opts)
	suspects2, hops2 := countDBRSuspects(env2, eng2, src2, 60)
	t.Logf("clean: %d/%d hops flagged", suspects2, hops2)
	if suspects2 > 0 {
		t.Errorf("%d false DBR suspects on a violator-free topology", suspects2)
	}
}

func dbrHarnessClean(t *testing.T, opts core.Options) (*simtest.Env, *core.Engine, core.Source) {
	t.Helper()
	cfg := topology.DefaultConfig(300)
	cfg.Seed = 23
	cfg.DBRViolatorP = 0
	cfg.PerPacketLBP = 0
	env := simtest.NewWithConfig(t, cfg)
	ing := ingress.NewService(env.Prober, env.Sites, ingress.AllHeuristics, 23)
	ing.Survey(env.Topo.AllBGPPrefixes(), func(pfx ipv4.Prefix) []ipv4.Addr {
		asn, ok := env.Topo.BlockAS(pfx.Addr)
		if !ok {
			return nil
		}
		var out []ipv4.Addr
		if pfx.Bits == 24 {
			for _, hid := range env.Topo.ASes[asn].Hosts {
				h := &env.Topo.Hosts[hid]
				if pfx.Contains(h.Addr) && h.PingResponsive {
					out = append(out, h.Addr)
					if len(out) == 2 {
						break
					}
				}
			}
		}
		return out
	})
	srcAgent := env.Agent(env.SourceHost(0))
	svc := atlas.NewService(env.Prober, env.Probes, atlas.FixedSites(env.Sites), env.Alias, 25, true, 23)
	src := core.Source{Agent: srcAgent, Atlas: svc.BuildFor(srcAgent)}
	eng := core.NewEngine(env.Fabric, env.Pool, ing, env.Sites, env.Alias,
		ip2as.Origin{Topo: env.Topo}, nil, opts)
	return env, eng, src
}

// TestDBRDetectionCostsProbes: the option must consume extra RR probes
// (that is the paper's stated trade).
func TestDBRDetectionCostsProbes(t *testing.T) {
	base := core.Revtr20Options()
	withDet := base
	withDet.DetectDBRViolations = true

	env, eng, src := dbrHarness(t, 0.1, base)
	var plain, detect uint64
	for i := 0; i < 20; i++ {
		dst := env.ResponsiveHost(i, src.Agent.AS)
		if dst == nil {
			break
		}
		res := eng.MeasureReverse(context.Background(), src, dst.Addr)
		plain += res.Probes.RR + res.Probes.SpoofRR
	}
	engD := core.NewEngine(env.Fabric, env.Pool, eng.Ingress, env.Sites, env.Alias,
		ip2as.Origin{Topo: env.Topo}, nil, withDet)
	for i := 0; i < 20; i++ {
		dst := env.ResponsiveHost(i, src.Agent.AS)
		if dst == nil {
			break
		}
		res := engD.MeasureReverse(context.Background(), src, dst.Addr)
		detect += res.Probes.RR + res.Probes.SpoofRR
	}
	t.Logf("RR probes: plain=%d detect=%d", plain, detect)
	if detect <= plain {
		t.Errorf("DBR detection did not cost extra probes (%d <= %d)", detect, plain)
	}
}
