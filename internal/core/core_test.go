package core_test

import (
	"context"

	"testing"

	"revtr/internal/atlas"
	"revtr/internal/core"
	"revtr/internal/ingress"
	"revtr/internal/ip2as"
	"revtr/internal/netsim/ipv4"
	"revtr/internal/simtest"
)

// harness assembles an engine over a simtest environment.
type harness struct {
	env *simtest.Env
	ing *ingress.Service
	src core.Source
}

func newHarness(t testing.TB, opts *core.Options) (*harness, *core.Engine) {
	t.Helper()
	env := simtest.New(t, 300, 8)
	ing := ingress.NewService(env.Prober, env.Sites, ingress.AllHeuristics, 8)
	ing.Survey(env.Topo.AllBGPPrefixes(), func(pfx ipv4.Prefix) []ipv4.Addr {
		asn, ok := env.Topo.BlockAS(pfx.Addr)
		if !ok {
			return nil
		}
		var out []ipv4.Addr
		if pfx.Bits == 24 {
			for _, hid := range env.Topo.ASes[asn].Hosts {
				h := &env.Topo.Hosts[hid]
				if pfx.Contains(h.Addr) && h.PingResponsive {
					out = append(out, h.Addr)
					if len(out) == 2 {
						break
					}
				}
			}
		} else {
			for _, rid := range env.Topo.ASes[asn].Routers {
				r := env.Topo.Routers[rid]
				if r.RespondsToPing && r.RespondsToOptions {
					out = append(out, r.Loopback)
					if len(out) == 2 {
						break
					}
				}
			}
		}
		return out
	})

	srcAgent := env.Agent(env.SourceHost(0))
	svc := atlas.NewService(env.Prober, env.Probes, atlas.FixedSites(env.Sites), env.Alias, 25, true, 8)
	src := core.Source{Agent: srcAgent, Atlas: svc.BuildFor(srcAgent)}

	o := core.Revtr20Options()
	if opts != nil {
		o = *opts
	}
	eng := core.NewEngine(env.Fabric, env.Pool, ing, env.Sites, env.Alias,
		ip2as.Origin{Topo: env.Topo}, nil, o)
	return &harness{env: env, ing: ing, src: src}, eng
}

func TestEngineCompletesSomePaths(t *testing.T) {
	h, eng := newHarness(t, nil)
	done, tried := 0, 0
	for i := 0; tried < 60; i++ {
		dst := h.env.ResponsiveHost(i*2, h.src.Agent.AS)
		if dst == nil {
			break
		}
		tried++
		res := eng.MeasureReverse(context.Background(), h.src, dst.Addr)
		if res.Status == core.StatusComplete {
			done++
			if res.Hops[0].Addr != dst.Addr {
				t.Fatal("first hop is not the destination")
			}
			last := res.Hops[len(res.Hops)-1]
			if last.Addr != h.src.Agent.Addr {
				t.Fatal("last hop is not the source")
			}
		}
	}
	if done == 0 {
		t.Fatalf("no measurements completed (of %d)", tried)
	}
	t.Logf("completed %d/%d", done, tried)
}

func TestEngineUnresponsiveDestinationFails(t *testing.T) {
	h, eng := newHarness(t, nil)
	var dead ipv4.Addr
	for hi := range h.env.Topo.Hosts {
		x := &h.env.Topo.Hosts[hi]
		if !x.PingResponsive && x.AS != h.src.Agent.AS {
			dead = x.Addr
			break
		}
	}
	if dead.IsZero() {
		t.Skip("no unresponsive host")
	}
	res := eng.MeasureReverse(context.Background(), h.src, dead)
	if res.Status == core.StatusComplete {
		// A complete path to an unresponsive destination is only
		// possible via an atlas intersection at the destination itself.
		if res.Hops[1].Tech != core.TechTrIntersect {
			t.Fatal("completed a path to an unresponsive destination without atlas help")
		}
	}
}

func TestEngineSymNeverNeverAssumes(t *testing.T) {
	opts := core.Revtr20Options()
	opts.Symmetry = core.SymNever
	h, eng := newHarness(t, &opts)
	for i := 0; i < 40; i++ {
		dst := h.env.ResponsiveHost(i*3, h.src.Agent.AS)
		if dst == nil {
			break
		}
		res := eng.MeasureReverse(context.Background(), h.src, dst.Addr)
		if res.SymAssumed > 0 {
			t.Fatal("SymNever made an assumption")
		}
		for _, hop := range res.Hops {
			if hop.Tech == core.TechSymmetry {
				t.Fatal("symmetry hop under SymNever")
			}
		}
	}
}

func TestEngineTechniquesAreLabelled(t *testing.T) {
	h, eng := newHarness(t, nil)
	techs := map[core.Technique]int{}
	for i := 0; i < 80; i++ {
		dst := h.env.ResponsiveHost(i, h.src.Agent.AS)
		if dst == nil {
			break
		}
		res := eng.MeasureReverse(context.Background(), h.src, dst.Addr)
		for _, hop := range res.Hops {
			techs[hop.Tech]++
		}
	}
	if techs[core.TechDestination] == 0 {
		t.Error("no destination hops")
	}
	if techs[core.TechRR]+techs[core.TechSpoofRR] == 0 {
		t.Error("no RR-revealed hops at all")
	}
	if techs[core.TechTrIntersect] == 0 {
		t.Error("no atlas intersections at all")
	}
	t.Logf("technique mix: %v", techs)
}

func TestResultHelpers(t *testing.T) {
	r := &core.Result{Hops: []core.Hop{
		{Addr: 1, Tech: core.TechDestination},
		{Addr: 2, Tech: core.TechRR, SuspectBefore: true},
	}}
	if len(r.Addrs()) != 2 || r.Addrs()[1] != 2 {
		t.Error("Addrs wrong")
	}
	if !r.HasSuspect() {
		t.Error("HasSuspect false")
	}
}

func TestTechniqueAndStatusStrings(t *testing.T) {
	for _, tech := range []core.Technique{core.TechDestination, core.TechTrIntersect,
		core.TechRR, core.TechSpoofRR, core.TechTS, core.TechSymmetry, core.TechSource} {
		if tech.String() == "?" {
			t.Errorf("technique %d unstringable", tech)
		}
	}
	for _, s := range []core.Status{core.StatusComplete, core.StatusAborted, core.StatusFailed} {
		if s.String() == "" {
			t.Errorf("status %d unstringable", s)
		}
	}
}

func TestAdjacencyProviders(t *testing.T) {
	ta := core.NewTracerouteAdjacencies()
	var none core.NoAdjacencies
	if got := none.Adjacent(1, 2); got != nil {
		t.Error("NoAdjacencies returned something")
	}
	if ta.Size() != 0 {
		t.Error("fresh corpus not empty")
	}
	oracle := core.OracleAdjacencies{NextReverse: func(a, s ipv4.Addr) ipv4.Addr {
		if a == 5 {
			return 6
		}
		return 0
	}}
	if got := oracle.Adjacent(5, 9); len(got) != 1 || got[0] != 6 {
		t.Errorf("oracle: %v", got)
	}
	if got := oracle.Adjacent(7, 9); got != nil {
		t.Errorf("oracle nonzero on unknown: %v", got)
	}
}
