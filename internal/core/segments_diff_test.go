package core_test

// Differential-correctness suite for Doubletree segment memoization
// (internal/core/segments): with zero churn — a static fabric, no fault
// plan — splicing memoized suffixes must change probe budgets only,
// never paths. Two properties:
//
//  1. Path identity: segments-on and segments-off engines, driven over
//     the same destination workload, produce identical reverse paths
//     (hop addresses and status; techniques legitimately differ, since
//     a spliced hop carries the technique of the measurement that first
//     revealed it). Three topology seeds x revtr 1.0/2.0.
//
//  2. Suspend/resume bit-identity under memoization: at every pending
//     boundary of a segments-on measurement, Clone mid-suspension and
//     resume — the Result must be bit-identical to the straight-through
//     segments-on run (the TestResumeBitIdentity property, now with the
//     store in the loop). Each replay runs against a Clone of the store
//     snapshot the reference run saw, since completed runs publish.

import (
	"context"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"revtr/internal/core"
	"revtr/internal/core/segments"
	"revtr/internal/obs"
	"revtr/internal/probe"
)

// renderPath flattens a result to what memoization must preserve:
// status and the hop address sequence (not techniques, not budgets).
func renderPath(res *core.Result) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%v", res.Status)
	for _, h := range res.Hops {
		fmt.Fprintf(&sb, " %s", h.Addr)
	}
	return sb.String()
}

func TestSegmentsDifferentialPathIdentity(t *testing.T) {
	configs := []struct {
		name string
		opts func() core.Options
	}{
		{"revtr20", core.Revtr20Options},
		{"revtr10", core.Revtr10Options},
	}
	totalSplices := uint64(0)
	for _, seed := range []int64{1, 4, 9} {
		for _, cfg := range configs {
			t.Run(fmt.Sprintf("seed%d/%s", seed, cfg.name), func(t *testing.T) {
				c := newChaosEnv(t, seed, 5) // no fault plan attached: churn-free
				o := cfg.opts()
				// Day cache off so segment memoization is the only
				// cross-measurement state under test.
				o.UseCache = false

				// Reference: segments off.
				offEng, _ := c.engineOpts(1, probe.RetryPolicy{}, o)
				offPaths := make([]string, len(c.dsts))
				for i, dst := range c.dsts {
					offPaths[i] = renderPath(offEng.MeasureReverse(context.Background(), c.src, dst))
				}

				// Segments on: same workload, one shared store warming
				// across measurements.
				on := o
				on.SegmentStore = segments.New(segments.Options{TTLUS: 1 << 60})
				onEng, _ := c.engineOpts(1, probe.RetryPolicy{}, on)
				reg := obs.New()
				onEng.SetMetrics(core.NewMetrics(reg))

				for i, dst := range c.dsts {
					// Snapshot the store state this destination's runs see:
					// the reference run publishes on completion, so replays
					// must start from the pre-publication snapshot.
					snap := on.SegmentStore.Clone()
					ref, n := driveMachine(onEng, onEng.Begin(context.Background(), c.src, dst))
					if got := renderPath(ref); got != offPaths[i] {
						t.Fatalf("dst %s: memoized path diverged\noff: %s\non:  %s",
							dst, offPaths[i], got)
					}
					// Property 2: clone/resume at every boundary, against a
					// fresh copy of the snapshot per replay.
					for k := 0; k < n; k++ {
						onEng.Opts.SegmentStore = snap.Clone()
						mm := onEng.Begin(context.Background(), c.src, dst)
						for j := 0; j < k; j++ {
							mm.Deliver(onEng.ExecPending(mm.Context(), mm.Next()))
						}
						cl := mm.Clone()
						got, rest := driveMachine(onEng, cl)
						if !reflect.DeepEqual(got, ref) || k+rest != n {
							t.Fatalf("dst %s: memoized clone resumed at boundary %d/%d diverged (+%d pendings)\nref %+v\ngot %+v",
								dst, k, n, rest, ref, got)
						}
						onEng.Opts.SegmentStore = snap.Clone()
						orig, rest := driveMachine(onEng, mm)
						if !reflect.DeepEqual(orig, ref) || k+rest != n {
							t.Fatalf("dst %s: original resumed after cloning at boundary %d/%d diverged\nref %+v\ngot %+v",
								dst, k, n, ref, orig)
						}
					}
					onEng.Opts.SegmentStore = on.SegmentStore
				}
				totalSplices += reg.Counter("engine_segment_splices_total").Value()
			})
		}
	}
	if totalSplices == 0 {
		t.Error("no measurement spliced a memoized segment: the differential suite proved nothing")
	}
}
