package core_test

import (
	"context"
	"sync"
	"testing"

	"revtr/internal/core"
	"revtr/internal/netsim/ipv4"
)

// TestMeasureReverseConcurrent exercises one engine (and its shared probe
// pool, cache, and atlas) from many goroutines — the service-layer usage.
// Run under -race (make ci does) it is the concurrency-safety regression
// test; it also checks the results agree with a serial pass over the same
// destinations on a cache-less engine, since with caching disabled each
// measurement is independent of interleaving.
func TestMeasureReverseConcurrent(t *testing.T) {
	opts := core.Revtr20Options()
	opts.UseCache = false
	h, eng := newHarness(t, &opts)

	var dsts []ipv4.Addr
	for i := 0; len(dsts) < 24; i++ {
		dst := h.env.ResponsiveHost(i*2, h.src.Agent.AS)
		if dst == nil {
			break
		}
		dsts = append(dsts, dst.Addr)
	}
	if len(dsts) < 4 {
		t.Skip("not enough destinations")
	}

	serial := make(map[ipv4.Addr]string, len(dsts))
	for _, d := range dsts {
		serial[d] = renderResult(eng.MeasureReverse(context.Background(), h.src, d))
	}

	var wg sync.WaitGroup
	concurrent := make([]string, len(dsts))
	for i, d := range dsts {
		wg.Add(1)
		go func(i int, d ipv4.Addr) {
			defer wg.Done()
			concurrent[i] = renderResult(eng.MeasureReverse(context.Background(), h.src, d))
		}(i, d)
	}
	wg.Wait()

	for i, d := range dsts {
		if concurrent[i] != serial[d] {
			t.Errorf("dst %s: concurrent result diverged\nserial     %s\nconcurrent %s",
				d, serial[d], concurrent[i])
		}
	}
}

// renderResult flattens a result for comparison across runs.
func renderResult(res *core.Result) string {
	s := res.Status.String()
	for _, hop := range res.Hops {
		s += " " + hop.Addr.String() + "/" + hop.Tech.String()
	}
	return s
}

// TestMeasureReverseCancelled: an already-cancelled context fails the
// measurement immediately without issuing probes.
func TestMeasureReverseCancelled(t *testing.T) {
	h, eng := newHarness(t, nil)
	dst := h.env.ResponsiveHost(0, h.src.Agent.AS)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := eng.MeasureReverse(ctx, h.src, dst.Addr)
	if res.Status != core.StatusFailed {
		t.Fatalf("status = %v, want failed", res.Status)
	}
	if res.Probes.Total() != 0 {
		t.Fatalf("cancelled measurement issued %d probes", res.Probes.Total())
	}
}

// TestMeasureReverseDeadline: a context whose deadline expires mid-
// measurement makes the engine stop between stages rather than run the
// Fig 2 loop to completion; the result is marked failed.
func TestMeasureReverseDeadline(t *testing.T) {
	h, eng := newHarness(t, nil)
	dst := h.env.ResponsiveHost(4, h.src.Agent.AS)

	// Reference run without a deadline.
	full := eng.MeasureReverse(context.Background(), h.src, dst.Addr)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cut := eng.MeasureReverse(ctx, h.src, dst.Addr)
	if cut.Status != core.StatusFailed {
		t.Fatalf("status = %v, want failed", cut.Status)
	}
	if full.Status == core.StatusComplete && len(cut.Hops) >= len(full.Hops) && full.Probes.Total() > 0 {
		if cut.Probes.Total() >= full.Probes.Total() {
			t.Fatalf("cancelled run did as much work as the full one: %d vs %d probes",
				cut.Probes.Total(), full.Probes.Total())
		}
	}
}
