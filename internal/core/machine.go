package core

// The resumable measurement state machine. A reverse traceroute is an
// explicit state record (Machine) that advances through the Fig 2
// control flow with pure compute steps and *suspends* whenever it needs
// probe results — most importantly across the 10 s spoofed-batch
// timeout that dominates measurement latency (§5.2.4). While suspended
// a measurement costs memory, not a parked goroutine, so one process
// can keep tens of thousands in flight.
//
// The protocol is pull/push:
//
//	mm := eng.Begin(ctx, src, dst)
//	for p := mm.Next(); p != nil; p = mm.Next() {
//	    mm.Deliver(eng.ExecPending(mm.Context(), p)) // or async
//	}
//	res := mm.Result()
//
// Next runs compute phases until the machine either finishes or emits a
// Pending — the description of the probe work it is waiting on. The
// caller executes that work however it likes (synchronously through
// ExecPending, or asynchronously through probe.Pool.Go) and resumes the
// machine with Deliver. Calling Next again before Deliver returns the
// same Pending.
//
// Determinism: a Machine never reads the wall clock or shared mutable
// state besides the engine caches; probe identities derive from the
// per-measurement sequence counter exactly as in the blocking engine,
// so the suspension points — and Clone/resume at any of them — cannot
// change replies, counters, or hops (TestSuspendResumeEquivalence).
import (
	"context"
	"maps"
	"slices"
	"time"

	"revtr/internal/core/segments"
	"revtr/internal/ip2as"
	"revtr/internal/measure"
	"revtr/internal/netsim/ipv4"
	"revtr/internal/probe"
	"revtr/internal/stream"
)

// PendingKind distinguishes the two shapes of suspended probe work.
type PendingKind uint8

const (
	// PendingProbes is a batch of probe requests (direct or spoofed RR,
	// Timestamp, DBR repeats) to run as one pool batch.
	PendingProbes PendingKind = iota
	// PendingTraceroute is one forward Paris traceroute.
	PendingTraceroute
)

// Pending describes the probe work a suspended Machine is waiting on.
// The requests (or the traceroute's sequence base) were already
// allocated from the measurement's sequence counter, so executing a
// Pending is deterministic no matter when or on which goroutine it runs.
type Pending struct {
	Kind PendingKind

	// Probe-batch work (Kind == PendingProbes).
	Reqs   []probe.Request
	Policy probe.RetryPolicy
	// Spoofed marks a spoofed-RR batch: the suspension points that wait
	// out the SpoofTimeoutUS window and dominate measurement latency.
	Spoofed bool

	// Traceroute work (Kind == PendingTraceroute).
	Agent   measure.Agent
	Dst     ipv4.Addr
	SeqBase uint64
}

// Delivery carries the completion of a Pending back into the machine.
type Delivery struct {
	// Batch answers a PendingProbes suspension.
	Batch probe.Batch
	// Tr and TrSent answer a PendingTraceroute suspension.
	Tr     measure.TracerouteResult
	TrSent int
}

// phase enumerates the machine's control-flow positions. *Wait phases
// always hold a Pending and are only left through Deliver; the others
// are pure compute and are advanced by Next.
type phase uint8

const (
	phTop phase = iota
	phRRWait
	phSpoofNext
	phSpoofWait
	phAfterRR
	phDBRWait
	phDBRFallbackWait
	phTS
	phTSNext
	phTSDirectWait
	phTSSpoofWait
	phSym
	phTrWait
	phDone
)

// spoofState is the spoofed-RR sweep in progress: the ingress plan
// cursor, the §5.3 spoof budget spent, and the vantage points of the
// in-flight batch (indexed in reply order).
type spoofState struct {
	plan   []int // ingress order over Engine.Sites (shared, read-only)
	cursor int
	tried  int
	vps    []measure.Agent
}

// dbrState is an Appendix E redundancy check in progress.
type dbrState struct {
	observed  map[ipv4.Addr]bool
	got       int
	elapsedUS int64
	fallback  []probe.Request
}

// tsState is the Timestamp adjacency sweep in progress.
type tsState struct {
	adjs      []ipv4.Addr
	i, n      int
	adj       ipv4.Addr
	vp        measure.Agent // spoof VP of the in-flight spoofed-TS probe
	elapsedUS int64
}

// Machine is one measurement's complete suspended state: current hop,
// visited set, partial Result, the pending probe work, per-measurement
// probe accounting, and the per-technique sweep cursors. It is
// self-contained — Clone at any suspension point yields an independent
// machine that resumes to a bit-identical Result. A Machine is not safe
// for concurrent use; drive it from one goroutine at a time (completion
// callbacks count as the driving goroutine once Deliver is called).
type Machine struct {
	e   *Engine
	src Source
	dst ipv4.Addr

	m         mctx
	res       *Result
	wallStart time.Time

	ph       phase
	pending  *Pending
	finished bool

	step      int
	cur       ipv4.Addr
	visited   map[ipv4.Addr]bool
	excludeAS int32

	rev   revealed
	spoof spoofState
	dbr   dbrState
	ts    tsState

	// segs accumulates the path's segments at adoption granularity —
	// one entry per (stitching cursor, adopted hop group) — for
	// publication to Options.SegmentStore on successful completion.
	segs []segments.PathSeg

	// sink, when set via SetSink, receives typed progress events at
	// each state transition. eseq is the per-measurement event sequence
	// counter: events are stamped only with deterministic state (eseq,
	// virtual time), so for a fixed seed the emitted sequence is
	// bit-identical across worker counts and across the blocking and
	// asynchronous drive paths.
	sink func(stream.Event)
	eseq uint64
}

// SetSink attaches a progress-event sink and emits the opening
// "started" event. Call immediately after Begin, before driving. The
// sink is invoked synchronously on whichever goroutine is advancing
// the machine (one at a time, per the Machine contract); it must not
// block — hand events to a non-blocking fan-out such as
// stream.Broker.Publish.
func (mm *Machine) SetSink(sink func(stream.Event)) {
	mm.sink = sink
	mm.emit(stream.Event{Kind: stream.KindStarted})
	// Begin seeds the result with the destination hop before any sink
	// can attach; mirror it so hop events and result hops correspond 1:1.
	mm.emitHops(0)
}

// emit stamps and delivers one progress event: the per-measurement
// sequence number and the accumulated virtual probing time — never the
// wall clock, so the stamps are deterministic. Src/Dst identify the
// measurement on every event.
func (mm *Machine) emit(ev stream.Event) {
	if mm.sink == nil {
		return
	}
	mm.eseq++
	ev.Seq = mm.eseq
	ev.VirtUS = mm.res.DurationUS
	ev.Src = mm.res.Src.String()
	ev.Dst = mm.res.Dst.String()
	mm.sink(ev)
}

// emitHops emits one hop event per result hop adopted since mark, with
// its revealing technique and splice provenance.
func (mm *Machine) emitHops(mark int) {
	if mm.sink == nil {
		return
	}
	for _, h := range mm.res.Hops[mark:] {
		mm.emit(stream.Event{
			Kind: stream.KindHop, Hop: h.Addr.String(),
			Tech: h.Tech.String(), Spliced: h.Spliced,
		})
	}
}

// emitFallback emits a technique-fallback event naming the technique
// the measurement falls back to.
func (mm *Machine) emitFallback(next Technique) {
	mm.emit(stream.Event{Kind: stream.KindFallback, Tech: next.String()})
}

// emitVPFailover emits a vantage-point failover event for a VP
// observed dead; Hop carries the VP address.
func (mm *Machine) emitVPFailover(vp ipv4.Addr) {
	mm.emit(stream.Event{Kind: stream.KindVPFailover, Hop: vp.String()})
}

// Begin opens a measurement of the reverse path from dst back to src as
// a resumable state machine. ctx may be nil (context.Background());
// deadlines and cancellation are honoured between stages and between
// spoofed batches, exactly as in MeasureReverse.
func (e *Engine) Begin(ctx context.Context, src Source, dst ipv4.Addr) *Machine {
	if ctx == nil {
		ctx = context.Background()
	}
	mm := &Machine{
		e:   e,
		src: src,
		dst: dst,
		m:   mctx{ctx: ctx},
		res: &Result{
			Src:  src.Agent.Addr,
			Dst:  dst,
			Hops: []Hop{{Addr: dst, Tech: TechDestination}},
		},
		wallStart: time.Now(), //revtr:wallclock engine wall-time metric, distinct from virtual probe time
		ph:        phTop,
		cur:       dst,
		visited:   map[ipv4.Addr]bool{dst: true},
		excludeAS: -1,
	}
	if e.Opts.ExcludeAtlasFromDstAS {
		if asn, ok := e.Mapper.ASOf(dst); ok {
			mm.excludeAS = int32(asn)
		}
	}
	return mm
}

// Next advances the machine until it suspends on probe work or
// finishes. It returns the Pending to execute, or nil when the
// measurement is done (read Result). Calling Next again before the
// current Pending is Delivered returns the same Pending.
func (mm *Machine) Next() *Pending {
	for !mm.finished && mm.pending == nil {
		switch mm.ph {
		case phTop:
			mm.stepTop()
		case phSpoofNext:
			mm.stepSpoofNext()
		case phAfterRR:
			mm.stepAfterRR()
		case phTS:
			mm.stepTS()
		case phTSNext:
			mm.stepTSNext()
		case phSym:
			mm.stepSym()
		default:
			// Wait phases always hold a Pending; phDone sets finished.
			panic("core: Machine.Next in a wait phase without pending work")
		}
	}
	return mm.pending
}

// Deliver resumes a suspended machine with the outcome of its pending
// probe work. It must be called exactly once per Pending returned by
// Next; call Next afterwards to advance to the next suspension.
func (mm *Machine) Deliver(d Delivery) {
	if mm.finished || mm.pending == nil {
		panic("core: Machine.Deliver without pending work")
	}
	p := mm.pending
	mm.pending = nil
	if mm.m.ctx.Err() != nil && skippedByCancel(p, d) {
		// The pool stopped launching on cancellation: the unsent
		// requests carry zero-value replies (Sent == false) that the
		// per-technique handlers would misread as "probed but silent",
		// skewing coverage accounting. Charge only what was actually
		// sent and terminate as cancelled, not as a technique failure.
		if p.Kind == PendingTraceroute {
			mm.m.count.Traceroute += uint64(d.TrSent)
		} else {
			mm.m.count = mm.m.count.Add(d.Batch.Sent)
		}
		mm.e.debug(mm.src, mm.cur, "cancel", "probe work cut short by cancellation",
			"skipped", d.Batch.Skipped)
		mm.failCancelled()
		return
	}
	switch mm.ph {
	case phRRWait:
		mm.onRRDirect(d.Batch)
	case phSpoofWait:
		mm.onSpoofBatch(d.Batch)
	case phDBRWait:
		mm.onDBRDirect(d.Batch)
	case phDBRFallbackWait:
		mm.onDBRFallback(d.Batch)
	case phTSDirectWait:
		mm.onTSDirect(d.Batch)
	case phTSSpoofWait:
		mm.onTSSpoof(d.Batch)
	case phTrWait:
		mm.onTraceroute(d)
	default:
		panic("core: Machine.Deliver in a non-wait phase")
	}
}

// skippedByCancel reports whether the delivery reflects probe work the
// pool skipped because the measurement's context was cancelled (the
// caller checked ctx.Err() != nil already). A batch with Skipped > 0
// can only arise from cancellation on the engine's paths (it never uses
// DoStop); a traceroute that sent zero probes never started.
func skippedByCancel(p *Pending, d Delivery) bool {
	if p.Kind == PendingTraceroute {
		return d.TrSent == 0
	}
	return d.Batch.Skipped > 0
}

// Done reports whether the measurement has finished.
func (mm *Machine) Done() bool { return mm.finished }

// Result returns the finished measurement, or nil while the machine is
// still running.
func (mm *Machine) Result() *Result {
	if !mm.finished {
		return nil
	}
	return mm.res
}

// Context returns the measurement's context (for executing Pendings).
func (mm *Machine) Context() context.Context { return mm.m.ctx }

// Clone returns an independent deep copy of the machine. Cloning at a
// suspension point and driving only the clone produces a bit-identical
// Result to driving the original — the property test behind the
// suspend/resume contract. The clone shares the engine (and its
// caches) with the original; a Pending must be executed for exactly
// one of the two, since executing it twice would double probe
// accounting.
func (mm *Machine) Clone() *Machine {
	cp := *mm
	r := *mm.res
	r.Hops = slices.Clone(mm.res.Hops)
	r.AtlasUses = slices.Clone(mm.res.AtlasUses)
	cp.res = &r
	cp.visited = maps.Clone(mm.visited)
	cp.m.dead = maps.Clone(mm.m.dead)
	cp.rev.hops = slices.Clone(mm.rev.hops)
	cp.spoof.vps = slices.Clone(mm.spoof.vps)
	cp.dbr.observed = maps.Clone(mm.dbr.observed)
	cp.dbr.fallback = slices.Clone(mm.dbr.fallback)
	cp.ts.adjs = slices.Clone(mm.ts.adjs)
	cp.segs = slices.Clone(mm.segs) // hop groups are built once and never mutated
	if mm.pending != nil {
		p := *mm.pending
		p.Reqs = slices.Clone(mm.pending.Reqs)
		cp.pending = &p
	}
	return &cp
}

// isDead reports whether the vantage point at a should be skipped:
// either this measurement saw it blacked out, or the engine-level
// dead-VP cache remembers a recent death from an earlier measurement.
// The shared cache is deterministic under serial issuance (the
// bit-identity suites vary worker counts, not issue order); under
// concurrent issuance it is advisory — see Options.DeadVPTTLUS.
func (mm *Machine) isDead(a ipv4.Addr) bool {
	if mm.m.isDead(a) {
		return true
	}
	if mm.e.deadVPs.isDead(a, mm.e.Pool.Now()) {
		mm.e.metrics.deadVPHit()
		return true
	}
	return false
}

// markDead remembers a blacked-out vantage point in both the
// per-measurement set and the engine-level TTL cache.
func (mm *Machine) markDead(a ipv4.Addr) {
	mm.m.markDead(a)
	mm.e.deadVPs.markDead(a, mm.e.Pool.Now())
}

// spliceable reports whether a memoized chain can be adopted: none of
// its hops may already be on this measurement's path. A revisit would
// mean the stored suffix loops back through ground the measurement has
// covered — the blocking-engine loop would have fallen through to the
// next technique there, so splicing must conservatively miss to stay
// path-identical with memoization off.
func (mm *Machine) spliceable(chain []segments.Hop) bool {
	for _, h := range chain {
		if mm.visited[h.Addr] {
			return false
		}
	}
	return true
}

// firstLiveVP returns the first vantage point in the §4.3 ingress order
// not currently known dead.
func (mm *Machine) firstLiveVP(order []int) (measure.Agent, bool) {
	for _, si := range order {
		if site := mm.e.Sites[si]; !mm.isDead(site.Addr) {
			return site, true
		}
	}
	return measure.Agent{}, false
}

// suspendProbes parks the machine on a probe batch.
func (mm *Machine) suspendProbes(reqs []probe.Request, spoofed bool, next phase) {
	mm.pending = &Pending{
		Kind:    PendingProbes,
		Reqs:    reqs,
		Policy:  mm.e.retryPolicy(),
		Spoofed: spoofed,
	}
	mm.ph = next
}

// goTop re-enters the Fig 2 loop for the next reverse hop.
func (mm *Machine) goTop() {
	mm.step++
	mm.ph = phTop
}

// finishMachine closes the measurement: per-measurement accounting,
// suspect flags, and outcome metrics — the old MeasureReverse defer.
func (mm *Machine) finishMachine() {
	mm.finished = true
	mm.ph = phDone
	mm.res.Probes = mm.m.count
	mm.e.flagSuspects(mm.res)
	mm.publishSegments()
	mm.e.metrics.outcome(mm.res, time.Since(mm.wallStart).Microseconds(), mm.e.cache.size()) //revtr:wallclock engine wall-time metric, distinct from virtual probe time
	kind := stream.KindDone
	switch {
	case mm.res.Cancelled:
		kind = stream.KindCancelled
	case mm.res.Status == StatusAborted:
		kind = stream.KindAborted
	case mm.res.Status != StatusComplete:
		kind = stream.KindFailed
	}
	mm.emit(stream.Event{Kind: kind, Status: mm.res.Status.String()})
}

// recordSeg captures the hops just appended to the result
// (res.Hops[mark:]) as one path segment anchored at the stitching
// cursor that adopted them. Segments are collected per adoption — not
// reconstructed from the flat hop list afterwards — because only the
// machine knows which hops it stood on: those cursors are the sole
// positions another measurement can later splice from and reproduce
// this path's addresses exactly.
func (mm *Machine) recordSeg(anchor ipv4.Addr, mark int) {
	if mm.e.Opts.SegmentStore == nil {
		return
	}
	hops := mm.res.Hops[mark:]
	if len(hops) == 0 {
		return
	}
	g := make([]segments.Hop, len(hops))
	for i, h := range hops {
		g[i] = segments.Hop{Addr: h.Addr, Tech: uint8(h.Tech)}
	}
	mm.segs = append(mm.segs, segments.PathSeg{Anchor: anchor, Hops: g})
}

// publishSegments feeds a completed path's freshly measured segments
// back into the shared segment store. A path that ended by splicing a
// stored suffix publishes only its fresh prefix (the splice branch
// records a linkage-only terminator, never the spliced hops):
// republishing a spliced suffix would refresh the TTL of segments this
// measurement never verified, letting a stale segment survive churn
// indefinitely. Aborted, failed, and cancelled measurements publish
// nothing — their hop lists do not reach the source, so their final
// segment is unconfirmed.
func (mm *Machine) publishSegments() {
	st := mm.e.Opts.SegmentStore
	if st == nil || mm.res.Status != StatusComplete || mm.res.Cancelled {
		return
	}
	st.Publish(mm.res.Src, mm.segs, mm.e.Pool.Now())
}

// finishWith terminates with a status.
func (mm *Machine) finishWith(st Status) {
	mm.res.Status = st
	mm.finishMachine()
}

// failCancelled terminates a measurement cut short by its context.
func (mm *Machine) failCancelled() {
	mm.res.Status = StatusFailed
	mm.res.Cancelled = true
	mm.finishMachine()
}

// stepTop is the head of the Fig 2 loop: hop budget, cancellation,
// source-reached, atlas intersection, then the Record Route stage.
func (mm *Machine) stepTop() {
	e, src, cur := mm.e, mm.src, mm.cur
	if mm.step >= e.Opts.MaxHops {
		mm.finishWith(StatusFailed)
		return
	}
	if err := mm.m.ctx.Err(); err != nil {
		e.debug(src, cur, "cancel", "context done between stages", "err", err.Error())
		mm.failCancelled()
		return
	}
	if e.reachedSource(cur, src) {
		mark := len(mm.res.Hops)
		e.finish(mm.res, src)
		mm.recordSeg(cur, mark)
		mm.emitHops(mark)
		mm.finishMachine()
		return
	}

	// Step 1: does the current hop intersect a traceroute to S?
	if x, ok := e.atlasLookup(src, cur, mm.excludeAS); ok {
		e.metrics.stage(TechTrIntersect)
		x.Entry.MarkUseful()
		e.debug(src, cur, "atlas", "intersected atlas traceroute",
			"entry", x.Entry.ID, "pos", x.Pos, "suffix", len(x.Suffix))
		mm.res.AtlasUses = append(mm.res.AtlasUses, AtlasUse{Entry: x.Entry, Pos: x.Pos})
		mark := len(mm.res.Hops)
		for _, h := range x.Suffix {
			mm.res.Hops = append(mm.res.Hops, Hop{Addr: h, Tech: TechTrIntersect})
		}
		e.finish(mm.res, src)
		mm.recordSeg(cur, mark)
		mm.emitHops(mark)
		mm.finishMachine()
		return
	}

	// Step 1b: Doubletree memoization — a prior measurement already
	// revealed the reverse path from cur back to S. Splice the stored
	// suffix instead of re-probing it, marking the hops Spliced. Like
	// the dead-VP cache, the shared store is deterministic under serial
	// issuance and advisory under concurrent issuance (it changes probe
	// budgets, never the freshness of what is spliced).
	if st := e.Opts.SegmentStore; st != nil {
		if chain, ok := st.Lookup(src.Agent.Addr, cur, e.Pool.Now()); ok {
			e.metrics.segmentHit()
			if mm.spliceable(chain) {
				e.metrics.segmentSplice()
				e.debug(src, cur, "segments", "spliced memoized reverse suffix",
					"hops", len(chain))
				mark := len(mm.res.Hops)
				mm.emit(stream.Event{Kind: stream.KindSpliced, Count: len(chain)})
				for _, h := range chain {
					mm.visited[h.Addr] = true
					mm.res.Hops = append(mm.res.Hops, Hop{
						Addr: h.Addr, Tech: Technique(h.Tech), Spliced: true,
					})
				}
				// Linkage-only terminator: the fresh prefix's last segment
				// must point at this anchor (where the stored chain takes
				// over), not claim to reach the source itself. The spliced
				// hops are deliberately not recorded — see publishSegments.
				mm.segs = append(mm.segs, segments.PathSeg{Anchor: cur})
				e.finish(mm.res, src)
				mm.emitHops(mark)
				mm.finishMachine()
				return
			}
			e.debug(src, cur, "segments", "hit rejected: chain revisits a hop")
		}
	}

	// Step 2: Record Route, direct first (Fig 1b).
	mm.rev = revealed{}
	mm.spoof = spoofState{}
	if e.Opts.UseCache {
		if hops, tech, ok := e.cache.getRR(cur, src.Agent.Addr, e.Pool.Now()); ok {
			mm.rev = revealed{hops: hops, tech: tech}
			mm.ph = phAfterRR
			return
		}
	}
	mm.suspendProbes([]probe.Request{
		{Kind: measure.KindRR, VP: src.Agent, Dst: cur, Seq: mm.m.next()},
	}, false, phRRWait)
}

// onRRDirect handles the direct RR reply: adopt revealed hops, or set
// up the spoofed sweep (Fig 1c–d).
func (mm *Machine) onRRDirect(b probe.Batch) {
	mm.m.count = mm.m.count.Add(b.Sent)
	e, src, cur := mm.e, mm.src, mm.cur
	rr := b.Replies[0].RR
	mm.rev.elapsedUS += rr.RTTUS
	if rr.Responded {
		if hops := extractReverse(rr.Recorded, cur, e.Alias); len(hops) > 0 {
			mm.rev.hops, mm.rev.tech = hops, TechRR
			if e.Opts.UseCache {
				e.cache.putRR(cur, src.Agent.Addr, hops, TechRR, e.Pool.Now())
			}
			mm.ph = phAfterRR
			return
		}
	}
	pfx, ok := e.F.Topo.BGPPrefixOf(cur)
	if !ok {
		mm.ph = phAfterRR
		return
	}
	mm.spoof = spoofState{plan: e.Ingress.PlanFor(pfx, e.Opts.VPSelection).Order}
	mm.ph = phSpoofNext
}

// stepSpoofNext builds the next spoofed-RR batch from the §4.3 ingress
// order, skipping the source and known-dead vantage points and
// backfilling from further down the order so a dead VP costs its slot,
// not the whole batch (graceful degradation).
func (mm *Machine) stepSpoofNext() {
	e, src, cur := mm.e, mm.src, mm.cur
	sp := &mm.spoof
	if mm.m.ctx.Err() != nil || sp.cursor >= len(sp.plan) {
		mm.ph = phAfterRR
		return
	}
	reqs := make([]probe.Request, 0, e.Opts.BatchSize)
	vps := make([]measure.Agent, 0, e.Opts.BatchSize)
	for sp.cursor < len(sp.plan) && len(reqs) < e.Opts.BatchSize {
		site := e.Sites[sp.plan[sp.cursor]]
		sp.cursor++
		if site.Addr == src.Agent.Addr { // that would be the direct probe again
			continue
		}
		if mm.isDead(site.Addr) {
			continue
		}
		reqs = append(reqs, probe.Request{
			Kind: measure.KindSpoofedRR, VP: site,
			Src: src.Agent.Addr, Dst: cur, Seq: mm.m.next(),
		})
		vps = append(vps, site)
	}
	if len(reqs) == 0 {
		mm.ph = phAfterRR
		return
	}
	sp.vps = vps
	mm.rev.batches++
	mm.rev.elapsedUS += e.Opts.SpoofTimeoutUS
	mm.suspendProbes(reqs, true, phSpoofWait)
}

// onSpoofBatch digests one spoofed batch: dead-VP failover, best
// revelation so far, and the MaxSpoofVPs budget.
func (mm *Machine) onSpoofBatch(b probe.Batch) {
	mm.m.count = mm.m.count.Add(b.Sent)
	e, src, cur := mm.e, mm.src, mm.cur
	sp := &mm.spoof
	deadHere := 0
	var best []ipv4.Addr
	for i, rep := range b.Replies {
		if rep.VPDead {
			// The VP could not send at all: remember it and fail over to
			// the next-closest VP in the ingress order instead of
			// charging the attempt against the spoof budget.
			mm.markDead(sp.vps[i].Addr)
			e.metrics.vpFailover()
			mm.emitVPFailover(sp.vps[i].Addr)
			deadHere++
			e.debug(src, cur, "spoof-rr", "vantage point dead, failing over",
				"vp", sp.vps[i].Addr.String())
			continue
		}
		if !rep.RR.Responded {
			continue
		}
		if hops := extractReverse(rep.RR.Recorded, cur, e.Alias); len(hops) > len(best) {
			best = hops
		}
	}
	sp.tried += len(b.Replies) - b.Skipped - deadHere
	if len(best) > 0 {
		mm.rev.hops, mm.rev.tech = best, TechSpoofRR
		if e.Opts.UseCache {
			e.cache.putRR(cur, src.Agent.Addr, best, TechSpoofRR, e.Pool.Now())
		}
		mm.ph = phAfterRR
		return
	}
	if sp.tried >= e.Opts.MaxSpoofVPs {
		mm.ph = phAfterRR
		return
	}
	mm.ph = phSpoofNext
}

// stepAfterRR closes the RR stage: charge its virtual time, re-check
// cancellation, then adopt revealed hops (optionally after the DBR
// redundancy check) or move on to Timestamp.
func (mm *Machine) stepAfterRR() {
	e, src, cur := mm.e, mm.src, mm.cur
	mm.res.DurationUS += mm.rev.elapsedUS
	mm.res.SpoofBatches += mm.rev.batches
	if err := mm.m.ctx.Err(); err != nil {
		e.debug(src, cur, "cancel", "context done during RR step", "err", err.Error())
		mm.failCancelled()
		return
	}
	if len(mm.rev.hops) > 0 {
		e.metrics.stage(mm.rev.tech)
		e.debug(src, cur, "rr", "revealed reverse hops",
			"tech", mm.rev.tech.String(), "hops", len(mm.rev.hops), "batches", mm.rev.batches)
		if e.Opts.DetectDBRViolations {
			mm.beginDBR()
			return
		}
		mm.adoptRevealed(false)
		return
	}
	mm.emitFallback(TechTS)
	mm.ph = phTS
}

// beginDBR starts Appendix E's redundancy check: re-reveal the next hop
// DBRRepeats more times as one direct batch.
func (mm *Machine) beginDBR() {
	e := mm.e
	direct := make([]probe.Request, e.Opts.DBRRepeats)
	for k := range direct {
		direct[k] = probe.Request{Kind: measure.KindRR, VP: mm.src.Agent, Dst: mm.cur, Seq: mm.m.next()}
	}
	mm.dbr = dbrState{observed: map[ipv4.Addr]bool{mm.rev.hops[0]: true}}
	mm.suspendProbes(direct, false, phDBRWait)
}

// onDBRDirect digests the direct DBR repeats; repeats whose direct
// probe revealed nothing fall back to one spoofed probe each, batched.
func (mm *Machine) onDBRDirect(b probe.Batch) {
	mm.m.count = mm.m.count.Add(b.Sent)
	e, src, cur := mm.e, mm.src, mm.cur
	d := &mm.dbr
	d.elapsedUS += b.MaxRTTUS
	var fallback []probe.Request
	for _, rep := range b.Replies {
		hops := extractReverse(rep.RR.Recorded, cur, e.Alias)
		if len(hops) == 0 {
			// Direct probe out of range: one spoofed try for this repeat.
			pfx, ok := e.F.Topo.BGPPrefixOf(cur)
			if !ok {
				continue
			}
			plan := e.Ingress.PlanFor(pfx, e.Opts.VPSelection)
			vp, ok := mm.firstLiveVP(plan.Order)
			if !ok {
				continue
			}
			fallback = append(fallback, probe.Request{
				Kind: measure.KindSpoofedRR, VP: vp,
				Src: src.Agent.Addr, Dst: cur, Seq: mm.m.next(),
			})
			continue
		}
		d.got++
		d.observed[hops[0]] = true
	}
	if len(fallback) > 0 {
		d.fallback = fallback
		mm.suspendProbes(fallback, true, phDBRFallbackWait)
		return
	}
	mm.finishDBR()
}

// onDBRFallback digests the spoofed DBR fallbacks.
func (mm *Machine) onDBRFallback(b probe.Batch) {
	mm.m.count = mm.m.count.Add(b.Sent)
	e, cur := mm.e, mm.cur
	d := &mm.dbr
	d.elapsedUS += b.MaxRTTUS
	for i, rep := range b.Replies {
		if rep.VPDead {
			mm.markDead(d.fallback[i].VP.Addr)
			e.metrics.vpFailover()
			mm.emitVPFailover(d.fallback[i].VP.Addr)
			continue
		}
		if hops := extractReverse(rep.RR.Recorded, cur, e.Alias); len(hops) > 0 {
			d.got++
			d.observed[hops[0]] = true
		}
	}
	d.fallback = nil
	mm.finishDBR()
}

// finishDBR classifies the samples: exactly two distinct next hops
// across 1+DBRRepeats samples means the repeats agreed with each other
// against the original — a violator, not per-packet load balancing.
func (mm *Machine) finishDBR() {
	d := &mm.dbr
	suspect := d.got > 0 && len(d.observed) == 2
	mm.res.DurationUS += d.elapsedUS
	mm.adoptRevealed(suspect)
}

// adoptRevealed appends the RR-revealed hops to the result and decides
// where the loop continues.
func (mm *Machine) adoptRevealed(dbrSuspect bool) {
	mark := len(mm.res.Hops)
	for i, h := range mm.rev.hops {
		mm.res.Hops = append(mm.res.Hops, Hop{Addr: h, Tech: mm.rev.tech, DBRSuspect: i == 0 && dbrSuspect})
	}
	mm.recordSeg(mm.cur, mark)
	mm.emitHops(mark)
	next := lastProbeable(mm.rev.hops)
	if !next.IsZero() && !mm.visited[next] {
		mm.visited[next] = true
		mm.cur = next
		mm.goTop()
		return
	}
	// All new hops private or already seen: fall through to the
	// remaining techniques from the last public hop.
	if !next.IsZero() {
		mm.cur = next
	}
	mm.emitFallback(TechTS)
	mm.ph = phTS
}

// stepTS opens the Timestamp adjacency stage (Q4; revtr 1.0 only).
func (mm *Machine) stepTS() {
	if !mm.e.Opts.UseTimestamp {
		mm.emitFallback(TechSymmetry)
		mm.ph = phSym
		return
	}
	mm.ts = tsState{adjs: mm.e.Adj.Adjacent(mm.cur, mm.src.Agent.Addr)}
	mm.ph = phTSNext
}

// stepTSNext issues the next tsprespec probe ⟨cur, adjacency⟩ (Fig 1e).
func (mm *Machine) stepTSNext() {
	e, cur := mm.e, mm.cur
	t := &mm.ts
	for t.i < len(t.adjs) {
		if t.n >= e.Opts.MaxTSAdjacencies {
			break
		}
		adj := t.adjs[t.i]
		t.i++
		if adj.IsPrivate() || adj == cur {
			continue
		}
		t.n++
		t.adj = adj
		mm.suspendProbes([]probe.Request{
			{Kind: measure.KindTS, VP: mm.src.Agent, Dst: cur, Prespec: []ipv4.Addr{cur, adj}, Seq: mm.m.next()},
		}, false, phTSDirectWait)
		return
	}
	mm.tsDone(0)
}

// onTSDirect digests a direct Timestamp reply; silent hops get one
// spoofed try from a site (Table 4's spoof-TS).
func (mm *Machine) onTSDirect(b probe.Batch) {
	mm.m.count = mm.m.count.Add(b.Sent)
	e, src, cur := mm.e, mm.src, mm.cur
	t := &mm.ts
	ts := b.Replies[0].TS
	t.elapsedUS += ts.RTTUS
	if !ts.Responded {
		// Some hops only answer options probes arriving on other paths.
		for _, site := range e.Sites {
			if !site.CanSpoof || site.Addr == src.Agent.Addr || mm.isDead(site.Addr) {
				continue
			}
			t.vp = site
			mm.suspendProbes([]probe.Request{
				{Kind: measure.KindSpoofedTS, VP: site, Src: src.Agent.Addr, Dst: cur,
					Prespec: []ipv4.Addr{cur, t.adj}, Seq: mm.m.next()},
			}, false, phTSSpoofWait)
			return
		}
	}
	mm.evalTS(ts)
}

// onTSSpoof digests the spoofed Timestamp fallback.
func (mm *Machine) onTSSpoof(b probe.Batch) {
	mm.m.count = mm.m.count.Add(b.Sent)
	rep := b.Replies[0]
	if rep.VPDead {
		mm.markDead(mm.ts.vp.Addr)
		mm.e.metrics.vpFailover()
		mm.emitVPFailover(mm.ts.vp.Addr)
	}
	mm.ts.elapsedUS += rep.TS.RTTUS
	mm.evalTS(rep.TS)
}

// evalTS checks whether a reply stamped both prespecified addresses,
// proving the adjacency is on the reverse path.
func (mm *Machine) evalTS(ts measure.TSResult) {
	if ts.Responded && len(ts.Stamped) == 2 && ts.Stamped[0] && ts.Stamped[1] {
		mm.tsDone(mm.ts.adj)
		return
	}
	mm.ph = phTSNext
}

// tsDone closes the Timestamp stage, adopting next if it is new.
func (mm *Machine) tsDone(next ipv4.Addr) {
	mm.res.DurationUS += mm.ts.elapsedUS
	mm.ts.elapsedUS = 0
	if !next.IsZero() && !mm.visited[next] {
		mm.e.metrics.stage(TechTS)
		mm.visited[next] = true
		mark := len(mm.res.Hops)
		mm.res.Hops = append(mm.res.Hops, Hop{Addr: next, Tech: TechTS})
		mm.recordSeg(mm.cur, mark)
		mm.emitHops(mark)
		mm.cur = next
		mm.goTop()
		return
	}
	mm.emitFallback(TechSymmetry)
	mm.ph = phSym
}

// stepSym opens step 4: forward traceroute + symmetry assumption (Q5).
func (mm *Machine) stepSym() {
	e, src, cur := mm.e, mm.src, mm.cur
	var tr measure.TracerouteResult
	if e.Opts.UseCache {
		if c, ok := e.cache.getTraceroute(cur, src.Agent.Addr, e.Pool.Now()); ok {
			tr = c
		}
	}
	if tr.Hops == nil {
		mm.pending = &Pending{
			Kind:    PendingTraceroute,
			Agent:   src.Agent,
			Dst:     cur,
			SeqBase: mm.m.reserve(measure.MaxTracerouteTTL),
		}
		mm.ph = phTrWait
		return
	}
	mm.classifyTraceroute(tr, 0)
}

// onTraceroute accounts a measured traceroute and classifies it.
func (mm *Machine) onTraceroute(d Delivery) {
	e, src, cur := mm.e, mm.src, mm.cur
	mm.m.count.Traceroute += uint64(d.TrSent)
	// A cancelled traceroute measured nothing; caching it would poison
	// later measurements with an empty result.
	if e.Opts.UseCache && mm.m.ctx.Err() == nil {
		e.cache.putTraceroute(cur, src.Agent.Addr, d.Tr, e.Pool.Now())
	}
	mm.classifyTraceroute(d.Tr, d.Tr.RTTUS)
}

// classifyTraceroute is the last-link classification of penultimateHop
// plus the symmetry policy decision. For the destination itself the
// traceroute must actually reach it — a host that answered nothing
// gives no evidence a reverse path exists at all.
func (mm *Machine) classifyTraceroute(tr measure.TracerouteResult, elapsed int64) {
	e, src, cur := mm.e, mm.src, mm.cur
	mm.res.DurationUS += elapsed
	requireReached := cur == mm.dst

	var penult ipv4.Addr
	intra, adjacent, usable := false, false, false
	if !requireReached || tr.ReachedDst {
		hops := tr.HopAddrs()
		// When the traceroute reaches cur, hops ends with cur's echo
		// reply and the penultimate responsive hop precedes it. When cur
		// itself does not answer, the last responsive hop stands in as
		// the penultimate — the symmetry policy still gates whether it
		// is usable.
		last := len(hops) - 1
		if tr.ReachedDst {
			last = len(hops) - 2
		}
		for i := last; i >= 0; i-- {
			if !hops[i].IsPrivate() {
				penult = hops[i]
				break
			}
		}
		if penult.IsZero() || penult == cur {
			// No usable penultimate. If cur is within two hops of the
			// source (counting silent hops), the gap is the source's own
			// first-hop region.
			penult = 0
			if tr.ReachedDst && len(tr.Hops) <= 2 {
				adjacent = true
			}
		} else {
			intra = ip2as.SameAS(e.Mapper, penult, cur)
			usable = true
		}
	}

	if adjacent {
		// The traceroute reaches cur within the source's first-hop
		// neighborhood: the only gap left is the source's own
		// attachment, a (usually intradomain) symmetry assumption away.
		intra = ip2as.SameAS(e.Mapper, cur, src.Agent.Addr)
		if e.Opts.Symmetry == SymIntraOnly && !intra || e.Opts.Symmetry == SymNever {
			e.debug(src, cur, "symmetry", "abort: first-hop assumption not allowed", "intra", intra)
			mm.finishWith(StatusAborted)
			return
		}
		mm.res.SymAssumed++
		if !intra {
			mm.res.InterdomainAssumed++
		}
		e.metrics.symmetry(!intra)
		mark := len(mm.res.Hops)
		e.finish(mm.res, src)
		mm.recordSeg(cur, mark)
		mm.emitHops(mark)
		mm.finishMachine()
		return
	}
	if !usable {
		e.debug(src, cur, "symmetry", "fail: no penultimate hop", "hops", len(mm.res.Hops))
		mm.finishWith(StatusFailed)
		return
	}
	switch e.Opts.Symmetry {
	case SymAlways:
		// revtr 1.0: assume regardless, at known accuracy cost.
	case SymIntraOnly:
		if !intra {
			e.debug(src, cur, "symmetry", "abort: interdomain assumption required", "penult", penult.String())
			mm.finishWith(StatusAborted)
			return
		}
	case SymNever:
		mm.finishWith(StatusAborted)
		return
	}
	mm.res.SymAssumed++
	if !intra {
		mm.res.InterdomainAssumed++
	}
	e.metrics.symmetry(!intra)
	if mm.visited[penult] {
		e.debug(src, cur, "symmetry", "fail: penultimate already visited", "penult", penult.String())
		mm.finishWith(StatusFailed)
		return
	}
	mm.visited[penult] = true
	mark := len(mm.res.Hops)
	mm.res.Hops = append(mm.res.Hops, Hop{Addr: penult, Tech: TechSymmetry})
	mm.recordSeg(cur, mark)
	mm.emitHops(mark)
	mm.cur = penult
	mm.goTop()
}

// ExecPending executes one pending work descriptor synchronously on the
// caller's goroutine and returns the Delivery that resumes the machine.
// MeasureReverse uses it as its drive loop; tests use it to drive
// machines by hand at chosen suspension points.
func (e *Engine) ExecPending(ctx context.Context, p *Pending) Delivery {
	if p.Kind == PendingTraceroute {
		tr, sent := e.Pool.Traceroute(ctx, p.Agent, p.Dst, p.SeqBase)
		return Delivery{Tr: tr, TrSent: sent}
	}
	return Delivery{Batch: e.Pool.DoPolicy(ctx, p.Reqs, p.Policy)}
}

// MeasureAsync runs one measurement without parking a goroutine: the
// machine's pending probe work is queued on the pool's asynchronous
// executors and each completion resumes the machine where it suspended.
// done is called exactly once with the finished Result — possibly
// synchronously (cache hits, atlas intersections at the destination, or
// an already-cancelled ctx complete without probe work), otherwise from
// a pool executor goroutine. A measurement that panics mid-flight
// reports done(nil), mirroring the service layer's recover contract for
// the blocking path. Concurrency is bounded by memory: 10k+ suspended
// machines cost heap, while goroutines stay bounded by the pool's
// worker budget.
//
//revtr:suspends parks the machine between probe rounds; completions resume it on pool executors
func (e *Engine) MeasureAsync(ctx context.Context, src Source, dst ipv4.Addr, done func(*Result)) {
	e.MeasureAsyncStream(ctx, src, dst, nil, done)
}

// MeasureAsyncStream is MeasureAsync with a progress-event sink: the
// machine emits typed events (started, hop reveals, fallbacks, the
// terminal status) as it advances — from whichever goroutine is
// driving it at the time, so the sink must be safe for use across
// goroutines (though never concurrently for one measurement). A nil
// sink measures silently.
//
//revtr:suspends parks the machine between probe rounds; completions resume it on pool executors
func (e *Engine) MeasureAsyncStream(ctx context.Context, src Source, dst ipv4.Addr, sink func(stream.Event), done func(*Result)) {
	mm := e.Begin(ctx, src, dst)
	if sink != nil {
		mm.SetSink(sink)
	}
	e.driveAsync(mm, nil, done)
}

// driveAsync advances a machine until it suspends, then hands the
// pending work to the pool with a completion callback that re-enters
// driveAsync. d, when non-nil, is delivered first (the completion that
// woke the machine).
func (e *Engine) driveAsync(mm *Machine, d *Delivery, done func(*Result)) {
	completed := false
	defer func() {
		if v := recover(); v != nil {
			if completed {
				panic(v)
			}
			done(nil)
		}
	}()
	if d != nil {
		mm.Deliver(*d)
	}
	p := mm.Next()
	if p == nil {
		completed = true
		done(mm.Result())
		return
	}
	if p.Kind == PendingTraceroute {
		e.Pool.GoTraceroute(mm.Context(), p.Agent, p.Dst, p.SeqBase, func(tr measure.TracerouteResult, sent int) {
			e.driveAsync(mm, &Delivery{Tr: tr, TrSent: sent}, done)
		})
		return
	}
	e.Pool.Go(mm.Context(), p.Reqs, p.Policy, func(b probe.Batch) {
		e.driveAsync(mm, &Delivery{Batch: b}, done)
	})
}
