package core

import (
	"fmt"
	"testing"

	"revtr/internal/measure"
	"revtr/internal/netsim/ipv4"
	"revtr/internal/obs"
)

func addr(t *testing.T, s string) ipv4.Addr {
	t.Helper()
	a, err := ipv4.ParseAddr(s)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// TestCacheEvictsExpiredOnGet: a lookup that finds a TTL-expired entry
// must delete it (the seed only reported a miss and kept the entry
// forever).
func TestCacheEvictsExpiredOnGet(t *testing.T) {
	reg := obs.New()
	c := newCache(1_000, 0)
	c.metrics = NewMetrics(reg)
	src := addr(t, "10.0.0.1")
	tgt := addr(t, "10.0.0.2")

	c.putRR(tgt, src, []ipv4.Addr{src}, TechRR, 0)
	c.putTraceroute(tgt, src, measure.TracerouteResult{ReachedDst: true}, 0)
	if c.size() != 2 {
		t.Fatalf("size = %d, want 2", c.size())
	}

	// Past the TTL: both lookups miss AND remove the entries.
	if _, _, ok := c.getRR(tgt, src, 5_000); ok {
		t.Fatal("expired RR entry served")
	}
	if _, ok := c.getTraceroute(tgt, src, 5_000); ok {
		t.Fatal("expired traceroute entry served")
	}
	if c.size() != 0 {
		t.Fatalf("expired entries not deleted: size = %d", c.size())
	}
	if got := reg.Counter("engine_cache_evictions_total").Value(); got != 2 {
		t.Fatalf("evictions counter = %d, want 2", got)
	}
}

// TestCacheSweepDropsExpired: entries never touched by a lookup are still
// reclaimed by the periodic write-triggered sweep.
func TestCacheSweepDropsExpired(t *testing.T) {
	c := newCache(1_000, 0)
	src := addr(t, "10.0.0.1")
	for i := 0; i < cacheSweepEvery-1; i++ {
		c.putRR(addr(t, fmt.Sprintf("10.1.%d.%d", i/200, i%200+1)), src, nil, TechRR, 0)
	}
	// The write that completes the sweep interval arrives far in the
	// future: the sweep must reclaim every expired entry.
	c.putRR(addr(t, "10.9.9.9"), src, nil, TechRR, 10_000)
	if got := len(c.rr); got != 1 {
		t.Fatalf("sweep left %d entries, want 1 (the fresh one)", got)
	}
}

// TestCacheSizeCap: unexpired entries beyond CacheMaxEntries evict
// oldest-first so the maps stay bounded even within one TTL window.
func TestCacheSizeCap(t *testing.T) {
	const maxN = 32
	c := newCache(1<<60, maxN) // nothing ever expires
	src := addr(t, "10.0.0.1")
	for i := 0; i < 4*maxN; i++ {
		c.putRR(addr(t, fmt.Sprintf("10.2.%d.%d", i/200, i%200+1)), src, nil, TechRR, int64(i))
		if c.size() > maxN+1 {
			t.Fatalf("cache exceeded cap: size = %d after %d puts", c.size(), i+1)
		}
	}
	if c.size() > maxN {
		t.Fatalf("final size %d > cap %d", c.size(), maxN)
	}
	// The newest entry must have survived oldest-first eviction.
	last := addr(t, fmt.Sprintf("10.2.%d.%d", (4*maxN-1)/200, (4*maxN-1)%200+1))
	if _, _, ok := c.getRR(last, src, int64(4*maxN)); !ok {
		t.Fatal("newest entry was evicted")
	}
}

// TestCacheEvictOldestDeterministic pins the under-pressure sweep's
// selection order directly: strictly oldest first across both maps,
// age ties broken rr before tr, and within a map by smallest key — so
// eviction is identical on every run despite Go's randomized map
// iteration.
func TestCacheEvictOldestDeterministic(t *testing.T) {
	c := newCache(1<<60, 1<<20) // nothing expires, cap never triggers
	src := addr(t, "10.0.0.1")
	a, b, d := addr(t, "10.4.0.1"), addr(t, "10.4.0.2"), addr(t, "10.4.0.3")

	c.putRR(b, src, nil, TechRR, 1)
	c.putRR(a, src, nil, TechRR, 1)
	c.putTraceroute(a, src, measure.TracerouteResult{}, 1)
	c.putTraceroute(d, src, measure.TracerouteResult{}, 0) // strictly oldest

	hasRR := func(k ipv4.Addr) bool { _, ok := c.rr[cacheKey{k, src}]; return ok }
	hasTR := func(k ipv4.Addr) bool { _, ok := c.tr[cacheKey{k, src}]; return ok }

	// 1: the strictly oldest entry goes first even though it is a tr.
	c.evictOldest()
	if hasTR(d) {
		t.Fatal("strictly oldest tr entry survived the first eviction")
	}
	// 2: among the three age-1 entries, rr wins the tie over tr, and the
	// smallest rr key goes first.
	c.evictOldest()
	if hasRR(a) || !hasRR(b) || !hasTR(a) {
		t.Fatalf("second eviction: want rr[a] evicted, have rr[a]=%v rr[b]=%v tr[a]=%v",
			hasRR(a), hasRR(b), hasTR(a))
	}
	// 3: the remaining rr entry still precedes the tied tr entry.
	c.evictOldest()
	if hasRR(b) || !hasTR(a) {
		t.Fatalf("third eviction: want rr[b] evicted before tr[a], have rr[b]=%v tr[a]=%v",
			hasRR(b), hasTR(a))
	}
	// 4: the tr entry last; the cache is then empty and a further call
	// must be a no-op.
	c.evictOldest()
	if c.size() != 0 {
		t.Fatalf("size = %d after evicting everything, want 0", c.size())
	}
	if got := c.evictOldest(); got != 0 {
		t.Fatalf("evictOldest on empty cache returned %d, want 0", got)
	}
}

// TestEngineCacheBounded drives the cap through the engine-facing option.
func TestEngineCacheBounded(t *testing.T) {
	opts := Revtr20Options()
	opts.CacheMaxEntries = 8
	c := newCache(opts.CacheTTLUS, opts.CacheMaxEntries)
	src := addr(t, "10.0.0.1")
	for i := 0; i < 100; i++ {
		c.putTraceroute(addr(t, fmt.Sprintf("10.3.0.%d", i+1)), src,
			measure.TracerouteResult{}, int64(i))
	}
	if c.size() > 8 {
		t.Fatalf("size %d > configured cap 8", c.size())
	}
}
