//go:build race

package core_test

// raceEnabled reports whether the race detector is compiled in, so big
// fan-out tests can shrink to a race-budget-friendly size.
const raceEnabled = true
