package core

import (
	"revtr/internal/alias"
	"revtr/internal/netsim/ipv4"
)

// extractReverse segments a Record Route reply into the hops that were
// stamped on the reverse path from target back toward the source.
//
// The recorded array holds forward-path stamps, possibly the target's own
// stamp, then reverse-path stamps. The engine locates the target's stamp
// (the marker) by exact match, alias resolution, or the /30 point-to-point
// heuristic, and returns everything after it. If the target never stamps
// but the probe looped (an address appearing twice non-adjacent), the
// reverse hops follow the second occurrence (Appx C). Without any marker
// the reply is unusable: the engine cannot tell forward stamps from
// reverse ones.
func extractReverse(recorded []ipv4.Addr, target ipv4.Addr, res alias.Resolver) []ipv4.Addr {
	marker := -1
	// Exact or alias match: prefer the last occurrence, since the target
	// stamping twice (double stamp) means forward + reply stamps.
	for k, x := range recorded {
		if x == target || (res != nil && res.SameRouter(x, target)) {
			marker = k
		}
	}
	if marker < 0 {
		// /30 heuristic: the last forward stamp before the target is the
		// previous router's egress on the target's ingress link.
		var p2p alias.Slash30
		for k, x := range recorded {
			if p2p.SameLink(x, target) {
				marker = k
				break
			}
		}
	}
	if marker < 0 {
		// Loop heuristic: a − S − a means the probe reached the target
		// and came back through a; hops after the second a are reverse.
		first := map[ipv4.Addr]int{}
		for k, x := range recorded {
			if j, seen := first[x]; seen && k > j+1 {
				marker = k
				break
			}
			if _, seen := first[x]; !seen {
				first[x] = k
			}
		}
	}
	if marker < 0 || marker+1 >= len(recorded) {
		return nil
	}
	return dedupeAdjacent(recorded[marker+1:])
}

// dedupeAdjacent removes immediately repeated addresses.
func dedupeAdjacent(in []ipv4.Addr) []ipv4.Addr {
	out := make([]ipv4.Addr, 0, len(in))
	for _, a := range in {
		if len(out) == 0 || out[len(out)-1] != a {
			out = append(out, a)
		}
	}
	return out
}

// lastProbeable returns the last address of hops that the engine can keep
// probing from (public addresses only), or zero.
func lastProbeable(hops []ipv4.Addr) ipv4.Addr {
	for i := len(hops) - 1; i >= 0; i-- {
		if !hops[i].IsPrivate() && !hops[i].IsZero() {
			return hops[i]
		}
	}
	return 0
}
