package core

import (
	"revtr/internal/obs"
)

// Metrics is the engine's observability surface: per-stage outcome
// counters matching the Fig 2 control flow, cache accounting, and the
// latency histograms the §5.2.4 throughput analysis is built from. All
// methods are safe on a nil *Metrics (no-ops), so instrumented engine code
// runs unchanged whether or not a registry was attached. Engines built
// from the same obs.Registry share the underlying metrics (counters are
// atomic), which is how campaign workers aggregate into one set of
// numbers.
type Metrics struct {
	// Stage counters: how each adopted reverse hop (or terminal decision)
	// was produced.
	StageAtlas    *obs.Counter // atlas traceroute intersections (Q1/Q2)
	StageDirectRR *obs.Counter // direct Record Route revelations
	StageSpoofRR  *obs.Counter // spoofed Record Route revelations
	StageTS       *obs.Counter // Timestamp adjacency confirmations
	StageSym      *obs.Counter // symmetry assumptions taken
	SymInterAS    *obs.Counter // ...of which interdomain (SymAlways only)

	// Outcome counters. Cancelled counts measurements cut short by their
	// context (Result.Cancelled): they end StatusFailed but are accounted
	// here instead of Failed so partial runs do not skew the
	// technique-coverage statistics.
	Complete  *obs.Counter
	Aborted   *obs.Counter
	Failed    *obs.Counter
	Cancelled *obs.Counter

	// SpoofBatches counts spoofed-RR batches issued (each costs a
	// 10 s timeout in virtual time, §5.2.4).
	SpoofBatches *obs.Counter

	// VPFailover counts probes redirected to another vantage point after
	// the planned VP was observed inside a blackout window. DeadVPHits
	// counts plan slots skipped because the engine-level dead-VP cache
	// already knew the VP was out — failovers that cost nothing.
	VPFailover *obs.Counter
	DeadVPHits *obs.Counter

	// Segment-store accounting (Doubletree memoization,
	// Options.SegmentStore). SegmentHits counts lookups that returned a
	// full fresh chain; SegmentSplices counts the hits actually spliced
	// into a path (a hit is rejected when the chain would revisit a hop
	// this measurement already adopted). The store itself counts
	// engine_segment_stale_evictions_total via segments.Store.SetObs.
	SegmentHits    *obs.Counter
	SegmentSplices *obs.Counter

	// Cache accounting (Insight 1.4 reuse).
	CacheHitRR     *obs.Counter
	CacheMissRR    *obs.Counter
	CacheHitTR     *obs.Counter
	CacheMissTR    *obs.Counter
	CacheEvictions *obs.Counter
	CacheSize      *obs.Gauge

	// VirtualUS observes per-measurement virtual duration (spoof
	// timeouts included); WallUS observes real wall-clock time spent in
	// MeasureReverse.
	VirtualUS *obs.Histogram
	WallUS    *obs.Histogram
}

// NewMetrics registers (or re-attaches to) the engine metric set on reg.
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		StageAtlas:    reg.Counter("engine_stage_atlas_intersect_total"),
		StageDirectRR: reg.Counter("engine_stage_direct_rr_total"),
		StageSpoofRR:  reg.Counter("engine_stage_spoofed_rr_total"),
		StageTS:       reg.Counter("engine_stage_timestamp_total"),
		StageSym:      reg.Counter("engine_stage_symmetry_total"),
		SymInterAS:    reg.Counter("engine_symmetry_interdomain_total"),

		Complete:  reg.Counter("engine_measure_complete_total"),
		Aborted:   reg.Counter("engine_measure_aborted_total"),
		Failed:    reg.Counter("engine_measure_failed_total"),
		Cancelled: reg.Counter("engine_measure_cancelled_total"),

		SpoofBatches: reg.Counter("engine_spoof_batches_total"),
		VPFailover:   reg.Counter("vp_failover_total"),
		DeadVPHits:   reg.Counter("engine_dead_vp_hits_total"),

		SegmentHits:    reg.Counter("engine_segment_hits_total"),
		SegmentSplices: reg.Counter("engine_segment_splices_total"),

		CacheHitRR:     reg.Counter("engine_cache_rr_hits_total"),
		CacheMissRR:    reg.Counter("engine_cache_rr_misses_total"),
		CacheHitTR:     reg.Counter("engine_cache_tr_hits_total"),
		CacheMissTR:    reg.Counter("engine_cache_tr_misses_total"),
		CacheEvictions: reg.Counter("engine_cache_evictions_total"),
		CacheSize:      reg.Gauge("engine_cache_entries"),

		VirtualUS: reg.Histogram("engine_measure_virtual_us", nil),
		WallUS:    reg.Histogram("engine_measure_wall_us", nil),
	}
}

// stage records how a hop (or batch of hops) was revealed.
func (m *Metrics) stage(t Technique) {
	if m == nil {
		return
	}
	switch t {
	case TechTrIntersect:
		m.StageAtlas.Inc()
	case TechRR:
		m.StageDirectRR.Inc()
	case TechSpoofRR:
		m.StageSpoofRR.Inc()
	case TechTS:
		m.StageTS.Inc()
	case TechSymmetry:
		m.StageSym.Inc()
	}
}

// vpFailover records one dead-VP failover.
func (m *Metrics) vpFailover() {
	if m == nil {
		return
	}
	m.VPFailover.Inc()
}

// deadVPHit records one plan slot skipped via the shared dead-VP cache.
func (m *Metrics) deadVPHit() {
	if m == nil {
		return
	}
	m.DeadVPHits.Inc()
}

// symmetry records one symmetry assumption.
func (m *Metrics) symmetry(interdomain bool) {
	if m == nil {
		return
	}
	m.StageSym.Inc()
	if interdomain {
		m.SymInterAS.Inc()
	}
}

// outcome closes one measurement.
func (m *Metrics) outcome(res *Result, wallUS int64, cacheEntries int) {
	if m == nil {
		return
	}
	switch {
	case res.Status == StatusComplete:
		m.Complete.Inc()
	case res.Status == StatusAborted:
		m.Aborted.Inc()
	case res.Cancelled:
		m.Cancelled.Inc()
	default:
		m.Failed.Inc()
	}
	m.SpoofBatches.Add(uint64(res.SpoofBatches))
	m.VirtualUS.Observe(res.DurationUS)
	m.WallUS.Observe(wallUS)
	m.CacheSize.Set(int64(cacheEntries))
}

// segmentHit records one full-chain segment-store hit.
func (m *Metrics) segmentHit() {
	if m == nil {
		return
	}
	m.SegmentHits.Inc()
}

// segmentSplice records one memoized suffix spliced into a path.
func (m *Metrics) segmentSplice() {
	if m == nil {
		return
	}
	m.SegmentSplices.Inc()
}

// cacheRR records an RR-cache lookup.
func (m *Metrics) cacheRR(hit bool) {
	if m == nil {
		return
	}
	if hit {
		m.CacheHitRR.Inc()
	} else {
		m.CacheMissRR.Inc()
	}
}

// cacheTR records a traceroute-cache lookup.
func (m *Metrics) cacheTR(hit bool) {
	if m == nil {
		return
	}
	if hit {
		m.CacheHitTR.Inc()
	} else {
		m.CacheMissTR.Inc()
	}
}

// evicted records n cache evictions.
func (m *Metrics) evicted(n int) {
	if m == nil || n <= 0 {
		return
	}
	m.CacheEvictions.Add(uint64(n))
}
