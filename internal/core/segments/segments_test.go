package segments

import (
	"fmt"
	"testing"

	"revtr/internal/netsim/ipv4"
	"revtr/internal/obs"
)

func addr(t testing.TB, s string) ipv4.Addr {
	t.Helper()
	a, err := ipv4.ParseAddr(s)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// chainSegs turns an address walk d -> h1 -> ... -> src into single-hop
// segments: each anchor adopts exactly the next address.
func chainSegs(addrs ...ipv4.Addr) []PathSeg {
	segs := make([]PathSeg, 0, len(addrs)-1)
	for i := 0; i+1 < len(addrs); i++ {
		segs = append(segs, PathSeg{Anchor: addrs[i], Hops: []Hop{{Addr: addrs[i+1], Tech: uint8(i + 1)}}})
	}
	return segs
}

func TestLookupWalksPublishedChain(t *testing.T) {
	s := New(Options{})
	src := addr(t, "16.0.0.1")
	d := addr(t, "16.9.0.1")
	h1 := addr(t, "16.1.0.1")
	h2 := addr(t, "16.2.0.1")
	s.Publish(src, chainSegs(d, h1, h2, src), 0)
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3 segments", s.Len())
	}

	// Full chain from the destination.
	chain, ok := s.Lookup(src, d, 10)
	if !ok || len(chain) != 3 {
		t.Fatalf("Lookup(d) = %v, %v", chain, ok)
	}
	if chain[0].Addr != h1 || chain[1].Addr != h2 || chain[2].Addr != src {
		t.Fatalf("chain = %v", chain)
	}
	// Techniques ride along (publisher's values).
	if chain[0].Tech != 1 || chain[2].Tech != 3 {
		t.Fatalf("techs = %v", chain)
	}

	// Mid-chain entry at a later anchor: shared-suffix reuse.
	chain, ok = s.Lookup(src, h2, 10)
	if !ok || len(chain) != 1 || chain[0].Addr != src {
		t.Fatalf("Lookup(h2) = %v, %v", chain, ok)
	}
}

func TestGroupHopsRideInsideSegments(t *testing.T) {
	s := New(Options{})
	src := addr(t, "16.0.0.1")
	d := addr(t, "16.9.0.1")
	p := addr(t, "10.0.0.1") // private hop revealed mid-group
	h := addr(t, "16.1.0.1")
	s.Publish(src, []PathSeg{
		{Anchor: d, Hops: []Hop{{Addr: p}, {Addr: h}}},
		{Anchor: h, Hops: []Hop{{Addr: src}}},
	}, 0)

	chain, ok := s.Lookup(src, d, 0)
	if !ok || len(chain) != 3 || chain[0].Addr != p || chain[1].Addr != h || chain[2].Addr != src {
		t.Fatalf("Lookup(d) = %v, %v", chain, ok)
	}
	// Non-anchor group hops are never entry points: a measurement landing
	// on p would have probed it itself, revealing its own addresses.
	if _, ok := s.Lookup(src, p, 0); ok {
		t.Fatal("lookup entered at a non-anchor group hop")
	}
}

func TestLookupMissesOnBrokenChain(t *testing.T) {
	s := New(Options{})
	src := addr(t, "16.0.0.1")
	d := addr(t, "16.9.0.1")
	h1 := addr(t, "16.1.0.1")
	// Publish a path that never reaches src: lookups must miss
	// (full-chain-or-nothing).
	s.Publish(src, chainSegs(d, h1), 0)
	if _, ok := s.Lookup(src, d, 0); ok {
		t.Fatal("chain not terminating at the source served")
	}
	// Unknown hop and hop == src miss trivially.
	if _, ok := s.Lookup(src, addr(t, "16.8.8.8"), 0); ok {
		t.Fatal("unknown hop hit")
	}
	if _, ok := s.Lookup(src, src, 0); ok {
		t.Fatal("lookup from the source itself hit")
	}
}

func TestTerminatorLinksIntoExistingChain(t *testing.T) {
	s := New(Options{})
	src := addr(t, "16.0.0.1")
	b := addr(t, "16.2.0.1")
	d := addr(t, "16.9.0.1")
	x := addr(t, "16.1.0.1")
	// An earlier measurement stored the suffix from b.
	s.Publish(src, chainSegs(b, src), 0)
	// A later one measured d -> x -> b fresh, then spliced the stored
	// suffix at b: it publishes its prefix plus a linkage-only terminator.
	s.Publish(src, []PathSeg{
		{Anchor: d, Hops: []Hop{{Addr: x}, {Addr: b}}},
		{Anchor: b},
	}, 5)

	chain, ok := s.Lookup(src, d, 5)
	if !ok || len(chain) != 3 || chain[0].Addr != x || chain[1].Addr != b || chain[2].Addr != src {
		t.Fatalf("Lookup(d) = %v, %v", chain, ok)
	}
	// The terminator stored nothing at b — in particular it did not
	// refresh b's TTL or overwrite its segment.
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	if e := s.m[Key{Src: src, Anchor: b}]; e.atUS != 0 {
		t.Fatalf("terminator refreshed the spliced segment: atUS = %d", e.atUS)
	}
}

func TestLookupExpiresAndCounts(t *testing.T) {
	reg := obs.New()
	s := New(Options{TTLUS: 1_000})
	s.SetObs(reg)
	src := addr(t, "16.0.0.1")
	d := addr(t, "16.9.0.1")
	s.Publish(src, chainSegs(d, src), 0)

	if _, ok := s.Lookup(src, d, 1_000); !ok {
		t.Fatal("fresh entry missed at exactly the TTL boundary")
	}
	if _, ok := s.Lookup(src, d, 1_001); ok {
		t.Fatal("expired entry served")
	}
	if s.Len() != 0 {
		t.Fatalf("expired entry not dropped: Len = %d", s.Len())
	}
	if got := reg.Counter("engine_segment_stale_evictions_total").Value(); got != 1 {
		t.Fatalf("stale evictions = %d, want 1", got)
	}
}

func TestLookupMixedAgeChainMisses(t *testing.T) {
	s := New(Options{TTLUS: 1_000})
	src := addr(t, "16.0.0.1")
	d := addr(t, "16.9.0.1")
	h1 := addr(t, "16.1.0.1")
	// Segment d -> h1 at t=0 (terminator carries the linkage), h1 -> src
	// at t=2000.
	s.Publish(src, []PathSeg{{Anchor: d, Hops: []Hop{{Addr: h1}}}, {Anchor: h1}}, 0)
	s.Publish(src, chainSegs(h1, src), 2_000)
	// At t=2500 the d segment is stale: the whole lookup must miss even
	// though the tail is fresh.
	if _, ok := s.Lookup(src, d, 2_500); ok {
		t.Fatal("chain with a stale segment served")
	}
	// The fresh tail alone still resolves.
	if _, ok := s.Lookup(src, h1, 2_500); !ok {
		t.Fatal("fresh tail missed")
	}
}

func TestLookupCycleGuard(t *testing.T) {
	s := New(Options{})
	src := addr(t, "16.0.0.1")
	a := addr(t, "16.1.0.1")
	b := addr(t, "16.2.0.1")
	// Two churn epochs published contradicting continuations: a -> b and
	// b -> a, neither reaching src.
	s.Publish(src, []PathSeg{{Anchor: a, Hops: []Hop{{Addr: b}}}, {Anchor: b}}, 0)
	s.Publish(src, []PathSeg{{Anchor: b, Hops: []Hop{{Addr: a}}}, {Anchor: a}}, 0)
	if _, ok := s.Lookup(src, a, 0); ok {
		t.Fatal("cyclic chain served")
	}
	if _, ok := s.Lookup(src, b, 0); ok {
		t.Fatal("cyclic chain served")
	}
}

func TestLookupChainLengthBound(t *testing.T) {
	s := New(Options{})
	src := addr(t, "16.0.0.1")
	addrs := make([]ipv4.Addr, 0, MaxChain+3)
	for i := 0; i < MaxChain+2; i++ {
		addrs = append(addrs, addr(t, fmt.Sprintf("16.2.%d.%d", i/250, i%250+1)))
	}
	addrs = append(addrs, src)
	s.Publish(src, chainSegs(addrs...), 0)
	if _, ok := s.Lookup(src, addrs[0], 0); ok {
		t.Fatal("over-long chain served")
	}
	// Entering within the bound still resolves.
	if _, ok := s.Lookup(src, addrs[3], 0); !ok {
		t.Fatal("in-bound suffix missed")
	}
}

func TestPublishGuards(t *testing.T) {
	s := New(Options{})
	src := addr(t, "16.0.0.1")
	h := addr(t, "16.1.0.1")

	s.Publish(src, nil, 0)
	s.Publish(src, []PathSeg{{Anchor: addr(t, "16.9.0.1")}}, 0) // terminator alone
	if s.Len() != 0 {
		t.Fatalf("degenerate publishes stored %d segments", s.Len())
	}

	// Zero, private, and source anchors are never keyed; the valid
	// segment among them survives.
	s.Publish(src, []PathSeg{
		{Anchor: 0, Hops: []Hop{{Addr: h}}},
		{Anchor: addr(t, "10.0.0.1"), Hops: []Hop{{Addr: h}}},
		{Anchor: src, Hops: []Hop{{Addr: h}}},
		{Anchor: h, Hops: []Hop{{Addr: src}}},
	}, 0)
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want only the valid segment", s.Len())
	}
	if _, ok := s.Lookup(src, h, 0); !ok {
		t.Fatal("valid segment lost among degenerate ones")
	}
}

func TestPublishMergesConsecutiveAnchors(t *testing.T) {
	s := New(Options{})
	src := addr(t, "16.0.0.1")
	a := addr(t, "16.1.0.1")
	b := addr(t, "16.2.0.1")
	x := addr(t, "16.3.0.1")
	y := addr(t, "16.4.0.1")
	// The engine can adopt twice from one cursor (RR group, then a TS
	// fall-through); both groups belong to the same anchor.
	s.Publish(src, []PathSeg{
		{Anchor: a, Hops: []Hop{{Addr: x}}},
		{Anchor: a, Hops: []Hop{{Addr: y}}},
		{Anchor: b, Hops: []Hop{{Addr: src}}},
	}, 0)
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (consecutive a-segments merged)", s.Len())
	}
	chain, ok := s.Lookup(src, a, 0)
	if !ok || len(chain) != 3 || chain[0].Addr != x || chain[1].Addr != y || chain[2].Addr != src {
		t.Fatalf("Lookup(a) = %v, %v", chain, ok)
	}
}

func TestPublishStopsAtRepeatedAnchor(t *testing.T) {
	s := New(Options{})
	src := addr(t, "16.0.0.1")
	a := addr(t, "16.1.0.1")
	b := addr(t, "16.2.0.1")
	c := addr(t, "16.3.0.1")
	x := addr(t, "16.4.0.1")
	// A path that loops back through anchor a: publication stops there —
	// overwriting a's first segment would corrupt the chain.
	s.Publish(src, []PathSeg{
		{Anchor: a, Hops: []Hop{{Addr: x}}},
		{Anchor: b, Hops: []Hop{{Addr: a}}},
		{Anchor: a, Hops: []Hop{{Addr: c}}},
		{Anchor: c, Hops: []Hop{{Addr: src}}},
	}, 0)
	if _, ok := s.m[Key{Src: src, Anchor: c}]; ok {
		t.Fatal("segments past the repeated anchor stored")
	}
	if e := s.m[Key{Src: src, Anchor: a}]; len(e.hops) != 1 || e.hops[0].Addr != x {
		t.Fatalf("first segment at the repeated anchor overwritten: %v", e.hops)
	}
	// The loop cannot be walked to the source.
	if _, ok := s.Lookup(src, a, 0); ok {
		t.Fatal("looping chain served")
	}
}

func TestRepublishRefreshes(t *testing.T) {
	s := New(Options{TTLUS: 1_000})
	src := addr(t, "16.0.0.1")
	d := addr(t, "16.9.0.1")
	s.Publish(src, chainSegs(d, src), 0)
	s.Publish(src, chainSegs(d, src), 900) // re-measured: TTL restarts
	if _, ok := s.Lookup(src, d, 1_800); !ok {
		t.Fatal("republished entry expired on the original timestamp")
	}
}

func TestSizeCapEvictsOldestDeterministically(t *testing.T) {
	const maxN = 8
	s := New(Options{TTLUS: 1 << 60, MaxEntries: maxN})
	src := addr(t, "16.0.0.1")
	for i := 0; i < 4*maxN; i++ {
		d := addr(t, fmt.Sprintf("16.3.%d.%d", i/250, i%250+1))
		s.Publish(src, chainSegs(d, src), int64(i))
		if s.Len() > maxN {
			t.Fatalf("store exceeded cap: Len = %d after %d publishes", s.Len(), i+1)
		}
	}
	// The newest segment survived oldest-first eviction.
	last := addr(t, fmt.Sprintf("16.3.%d.%d", (4*maxN-1)/250, (4*maxN-1)%250+1))
	if _, ok := s.Lookup(src, last, int64(4*maxN)); !ok {
		t.Fatal("newest segment evicted")
	}
	// The surviving set is exactly the last maxN publishes, on every run:
	// timestamps are distinct so age alone decides.
	for i := 0; i < 4*maxN-maxN; i++ {
		old := addr(t, fmt.Sprintf("16.3.%d.%d", i/250, i%250+1))
		if _, ok := s.Lookup(src, old, int64(4*maxN)); ok {
			t.Fatalf("stale-ranked segment %d survived", i)
		}
	}
}

func TestEvictionTieBreakByKey(t *testing.T) {
	s := New(Options{TTLUS: 1 << 60, MaxEntries: 2})
	src := addr(t, "16.0.0.1")
	a := addr(t, "16.1.0.1")
	b := addr(t, "16.2.0.1")
	c := addr(t, "16.3.0.1")
	// Three segments, identical timestamps: the smallest key must go.
	s.Publish(src, chainSegs(c, b, a, src), 5)
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	if _, ok := s.m[Key{Src: src, Anchor: a}]; ok {
		t.Fatal("tie-break kept the smallest key; want it evicted deterministically")
	}
	if _, ok := s.m[Key{Src: src, Anchor: b}]; !ok {
		t.Fatal("key b evicted")
	}
	if _, ok := s.m[Key{Src: src, Anchor: c}]; !ok {
		t.Fatal("key c evicted")
	}
}

func TestSweepDropsExpiredOnWriteInterval(t *testing.T) {
	reg := obs.New()
	s := New(Options{TTLUS: 1_000, MaxEntries: 1 << 20})
	s.SetObs(reg)
	src := addr(t, "16.0.0.1")
	for i := 0; i < sweepEvery-1; i++ {
		d := addr(t, fmt.Sprintf("16.4.%d.%d", i/250, i%250+1))
		s.Publish(src, chainSegs(d, src), 0)
	}
	// The write completing the sweep interval lands past the TTL: the
	// sweep reclaims everything expired.
	s.Publish(src, chainSegs(addr(t, "16.9.9.9"), src), 10_000)
	if got := s.Len(); got != 1 {
		t.Fatalf("sweep left %d segments, want 1 (the fresh one)", got)
	}
	if got := reg.Counter("engine_segment_stale_evictions_total").Value(); got != sweepEvery-1 {
		t.Fatalf("stale evictions = %d, want %d", got, sweepEvery-1)
	}
}

func TestCloneIsIndependent(t *testing.T) {
	s := New(Options{TTLUS: 123, MaxEntries: 7})
	src := addr(t, "16.0.0.1")
	d := addr(t, "16.9.0.1")
	s.Publish(src, chainSegs(d, src), 0)
	cp := s.Clone()
	if cp.TTLUS() != 123 || cp.maxEntries != 7 || cp.Len() != 1 {
		t.Fatalf("clone config/content lost: ttl=%d max=%d len=%d", cp.TTLUS(), cp.maxEntries, cp.Len())
	}
	s.Flush()
	if s.Len() != 0 || cp.Len() != 1 {
		t.Fatalf("clone shares storage with original: orig=%d clone=%d", s.Len(), cp.Len())
	}
	if _, ok := cp.Lookup(src, d, 0); !ok {
		t.Fatal("clone lost the chain")
	}
}

func TestNilStoreIsSafe(t *testing.T) {
	var s *Store
	src := ipv4.Addr(1)
	s.Publish(src, chainSegs(ipv4.Addr(9), src), 0)
	if _, ok := s.Lookup(src, ipv4.Addr(9), 0); ok {
		t.Fatal("nil store hit")
	}
	if s.Len() != 0 || s.TTLUS() != 0 {
		t.Fatal("nil store reported content")
	}
	s.Flush()
	s.SetObs(obs.New())
	if s.Clone() != nil {
		t.Fatal("nil store cloned to non-nil")
	}
}

func TestDefaultsApplied(t *testing.T) {
	s := New(Options{})
	if s.ttlUS != DefaultTTLUS || s.maxEntries != DefaultMaxEntries {
		t.Fatalf("defaults not applied: ttl=%d max=%d", s.ttlUS, s.maxEntries)
	}
	s = New(Options{TTLUS: -5, MaxEntries: -5})
	if s.ttlUS != DefaultTTLUS || s.maxEntries != DefaultMaxEntries {
		t.Fatalf("negative options not defaulted: ttl=%d max=%d", s.ttlUS, s.maxEntries)
	}
}
