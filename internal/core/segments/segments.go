// Package segments implements Doubletree-style cross-measurement
// memoization of reverse-path segments (Donnet et al., "Efficient
// Algorithms for Large-Scale Topology Discovery"): at scale, distinct
// (src, dst) pairs share most of their reverse *suffixes*, so once one
// measurement has revealed the path from some hop H back to the source
// S, later measurements reaching H can splice the stored suffix instead
// of re-probing it hop by hop.
//
// The store is a reverse-path tree keyed by (source, anchor): an anchor
// is a hop the publishing measurement actually stood on (its stitching
// cursor) when it adopted the following group of hops, and the entry
// records that adopted group plus the next anchor toward the source.
// Anchor granularity — rather than flat (hop -> next hop) links — is
// what makes splicing path-preserving: the group a measurement adopts
// from a hop is a deterministic function of (hop, source) on a static
// fabric, whereas the individual addresses inside a group were recorded
// by a probe *to the anchor* and can name different router interfaces
// than a probe to an intermediate hop would. Entering chains only at
// anchors reproduces exactly what a fresh measurement from that hop
// would have revealed; shared suffixes are still stored once, because
// paths that funnel into an anchor share all segments after it.
//
// A lookup walks anchor -> next anchor -> ... -> src and succeeds only
// when the whole chain is present, fresh, and terminates at the source
// (full-chain-or-nothing): a partial suffix would leave the engine
// mid-path with nothing to continue from.
//
// Staleness and determinism follow the engine's other caches
// (internal/core's cache and dead-VP cache): entries expire after a TTL
// in *virtual* time — never the wall clock — so runs are reproducible;
// expired entries are dropped on lookup and by a write-triggered sweep;
// and a hard size cap evicts oldest-first with a total-order tie-break
// so eviction is deterministic under Go's randomized map iteration.
// Under serial issuance the store contents are a pure function of the
// measurement history; under concurrent issuance the store is advisory
// (a racing measurement may or may not see a freshly published
// segment), which changes only how much probing is saved, never whether
// a returned chain was fresh. A nil *Store is valid and always misses.
package segments

import (
	"sync"

	"revtr/internal/netsim/ipv4"
	"revtr/internal/obs"
)

// DefaultTTLUS is the default segment lifetime: one virtual hour. Much
// shorter than the engine's one-day measurement cache because a stale
// segment is spliced into a *different* measurement's path (a wrong
// path), whereas a stale day-cache entry only re-serves the same pair.
const DefaultTTLUS int64 = 3_600_000_000

// DefaultMaxEntries bounds the store when Options does not: ~a quarter
// million anchor segments per process.
const DefaultMaxEntries = 1 << 18

// MaxChain bounds the total hop count of a spliced suffix. Chains
// beyond it are treated as misses: real reverse paths are far shorter,
// so an over-long walk indicates a corrupted or adversarial chain.
const MaxChain = 64

// sweepEvery is the opportunistic sweep interval, in store writes.
const sweepEvery = 1024

// Hop is one memoized reverse hop: its address and the technique that
// revealed it. Tech carries the raw core.Technique value as uint8 so
// this package does not import core (core imports segments).
type Hop struct {
	Addr ipv4.Addr
	Tech uint8
}

// PathSeg is one segment of a measured reverse path as the engine
// adopted it: the anchor hop the measurement stood on, and the group of
// hops it adopted from there (in path order, ending at the next anchor
// or the source).
type PathSeg struct {
	Anchor ipv4.Addr
	Hops   []Hop
}

// Key addresses one stored segment: the group adopted from Anchor on
// the path back to Src. Keys include the source because reverse paths
// are per-destination-of-the-reply: the same hop routes differently
// toward different sources.
type Key struct {
	Src    ipv4.Addr
	Anchor ipv4.Addr
}

type entry struct {
	hops []Hop
	next ipv4.Addr // the following anchor; the source terminates a chain
	atUS int64
}

// Options configures a Store.
type Options struct {
	// TTLUS is the segment lifetime in virtual microseconds; <= 0
	// selects DefaultTTLUS.
	TTLUS int64
	// MaxEntries caps the store; <= 0 selects DefaultMaxEntries. Oldest
	// entries are evicted deterministically past the cap.
	MaxEntries int
}

// Store is a shared, TTL'd reverse-segment store. It is internally
// locked: one store typically serves every engine of a process (all
// campaign workers, all service measurements), which is exactly what
// makes cross-measurement sharing pay.
type Store struct {
	mu         sync.Mutex
	ttlUS      int64
	maxEntries int
	m          map[Key]entry

	writesSinceSweep int
	staleEvictions   *obs.Counter
}

// New builds a segment store. The zero Options selects the defaults.
func New(o Options) *Store {
	if o.TTLUS <= 0 {
		o.TTLUS = DefaultTTLUS
	}
	if o.MaxEntries <= 0 {
		o.MaxEntries = DefaultMaxEntries
	}
	return &Store{ttlUS: o.TTLUS, maxEntries: o.MaxEntries, m: make(map[Key]entry)}
}

// SetObs attaches an observability registry: TTL-expired evictions are
// counted from then on. Call before issuing measurements.
func (s *Store) SetObs(reg *obs.Registry) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.staleEvictions = reg.Counter("engine_segment_stale_evictions_total")
}

// TTLUS returns the configured segment lifetime.
func (s *Store) TTLUS() int64 {
	if s == nil {
		return 0
	}
	return s.ttlUS
}

// Len is the number of stored anchor segments.
func (s *Store) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.m)
}

// Flush drops everything (used between experiment phases).
func (s *Store) Flush() {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m = make(map[Key]entry)
	s.writesSinceSweep = 0
}

// Clone returns an independent deep copy of the store's contents with
// the same configuration — snapshot support for the differential test
// harness, which must replay measurements against a fixed store state.
func (s *Store) Clone() *Store {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	cp := &Store{ttlUS: s.ttlUS, maxEntries: s.maxEntries,
		m: make(map[Key]entry, len(s.m)), staleEvictions: s.staleEvictions}
	for k, e := range s.m { // copy; iteration order cannot leak into contents
		cp.m[k] = e
	}
	return cp
}

// Lookup walks the stored segments from the anchor `from` back to src
// and returns the concatenated hop suffix (source inclusive). It
// succeeds only when every segment is present and fresh as of virtual
// time nowUS and the chain terminates at the source; expired segments
// encountered on the walk are dropped (and counted as stale evictions)
// and the lookup misses. Cycles and over-long chains miss defensively —
// churn can legitimately publish segments that loop across epochs.
func (s *Store) Lookup(src, from ipv4.Addr, nowUS int64) ([]Hop, bool) {
	if s == nil || from == src {
		return nil, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var chain []Hop
	seen := map[ipv4.Addr]bool{from: true}
	cur := from
	for cur != src {
		k := Key{Src: src, Anchor: cur}
		e, ok := s.m[k]
		if !ok {
			return nil, false
		}
		if nowUS-e.atUS > s.ttlUS {
			delete(s.m, k)
			s.staleEvictions.Inc()
			return nil, false
		}
		chain = append(chain, e.hops...)
		if len(chain) > MaxChain {
			return nil, false
		}
		if e.next != src && seen[e.next] {
			return nil, false
		}
		seen[e.next] = true
		cur = e.next
	}
	if len(chain) == 0 || chain[len(chain)-1].Addr != src {
		return nil, false
	}
	return chain, true
}

// Publish stores the segments of one measured reverse path at virtual
// time nowUS. segs must be in path order (destination side first);
// consecutive segments with the same anchor are merged (the engine can
// adopt twice from one hop when a technique falls through), and
// publication stops at a repeated anchor — a second visit means the
// path looped and overwriting the first segment would corrupt the
// chain. A segment with no hops stores nothing but still supplies the
// next-anchor pointer of the segment before it: the engine appends one
// as a terminator when a path ended by splicing a stored suffix, so the
// fresh prefix links into the existing chain. Callers pass only freshly
// measured segments: republishing a spliced suffix would refresh the
// TTL of segments this measurement never verified, and a
// stale-but-self-refreshing segment would survive churn forever.
func (s *Store) Publish(src ipv4.Addr, segs []PathSeg, nowUS int64) {
	if s == nil || len(segs) == 0 {
		return
	}
	merged := make([]PathSeg, 0, len(segs))
	for _, sg := range segs {
		if n := len(merged); n > 0 && merged[n-1].Anchor == sg.Anchor {
			hops := make([]Hop, 0, len(merged[n-1].Hops)+len(sg.Hops))
			hops = append(append(hops, merged[n-1].Hops...), sg.Hops...)
			merged[n-1].Hops = hops
			continue
		}
		merged = append(merged, sg)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	seen := make(map[ipv4.Addr]bool, len(merged))
	for i, sg := range merged {
		a := sg.Anchor
		if seen[a] {
			break
		}
		seen[a] = true
		// Anchors are the publisher's probed cursor hops: public and
		// non-zero in normal operation. Private or degenerate anchors
		// are ambiguous across routers, so they are never keyed.
		if a.IsZero() || a.IsPrivate() || a == src || len(sg.Hops) == 0 {
			continue
		}
		next := src
		if i+1 < len(merged) {
			next = merged[i+1].Anchor
		}
		s.m[Key{Src: src, Anchor: a}] = entry{hops: sg.Hops, next: next, atUS: nowUS}
		s.writesSinceSweep++
	}
	s.maybeSweep(nowUS)
}

// maybeSweep runs the periodic sweep every sweepEvery writes, or
// immediately when the size cap is exceeded. Callers hold s.mu.
func (s *Store) maybeSweep(nowUS int64) {
	if s.writesSinceSweep < sweepEvery && len(s.m) <= s.maxEntries {
		return
	}
	s.writesSinceSweep = 0
	s.sweep(nowUS)
}

// sweep drops TTL-expired segments, then — if the store is still over
// its cap — evicts oldest-first until it fits. Callers hold s.mu.
func (s *Store) sweep(nowUS int64) {
	stale := 0
	for k, e := range s.m { // deletion of expired entries is order-independent
		if nowUS-e.atUS > s.ttlUS {
			delete(s.m, k)
			stale++
		}
	}
	s.staleEvictions.Add(uint64(stale))
	for len(s.m) > s.maxEntries {
		s.evictOldest()
	}
}

// keyLess orders keys so timestamp ties evict the same segment on every
// run regardless of map iteration order.
func keyLess(a, b Key) bool {
	if a.Src != b.Src {
		return a.Src < b.Src
	}
	return a.Anchor < b.Anchor
}

// evictOldest removes the single oldest segment. Slow path, only
// reached when unexpired segments alone exceed the cap. Ties on age
// break by key so eviction is deterministic under Go's randomized map
// iteration.
func (s *Store) evictOldest() {
	var (
		found    bool
		oldestK  Key
		oldestUS int64
	)
	//revtr:unordered min-selection with total-order tie-break (age, then key); any iteration order picks the same entry
	for k, e := range s.m {
		if !found || e.atUS < oldestUS || (e.atUS == oldestUS && keyLess(k, oldestK)) {
			found, oldestK, oldestUS = true, k, e.atUS
		}
	}
	if found {
		delete(s.m, oldestK)
	}
}
