package segments

import (
	"testing"

	"revtr/internal/netsim/ipv4"
)

// FuzzSegmentStore drives a small store with an adversarial op stream —
// publishes of arbitrary segment sequences (cycles, repeated anchors,
// private and zero anchors, linkage-only terminators, paths that never
// reach the source), lookups, time jumps, and flushes — and checks the
// store's invariants after every op: no panics, the size cap holds, and
// a successful lookup always returns a fresh, anchor-acyclic chain that
// terminates at the source.
func FuzzSegmentStore(f *testing.F) {
	f.Add([]byte{0x01, 0x02, 0x03, 0x00})
	f.Add([]byte{0x10, 0x21, 0x32, 0x43, 0x54, 0x65})
	f.Add([]byte{0x80, 0x91, 0xa2, 0xff, 0x00, 0x13, 0x24})

	f.Fuzz(func(t *testing.T, data []byte) {
		const (
			ttlUS = 100
			maxN  = 32
		)
		s := New(Options{TTLUS: ttlUS, MaxEntries: maxN})
		// A tiny address space forces collisions, cycles, and overwrites:
		// 12 public addresses (16.0.0.x) plus 4 private ones (10.0.0.x);
		// public addr 1 is the source.
		mkAddr := func(b byte) ipv4.Addr {
			if b%16 < 12 {
				return ipv4.Addr(0x10000000 | uint32(b%16))
			}
			return ipv4.Addr(0x0a000000 | uint32(b%16))
		}
		src := mkAddr(1)
		var nowUS int64
		published := make(map[ipv4.Addr]int64) // anchor -> last publish time

		i := 0
		next := func() (byte, bool) {
			if i >= len(data) {
				return 0, false
			}
			b := data[i]
			i++
			return b, true
		}
		for {
			op, ok := next()
			if !ok {
				break
			}
			switch op % 4 {
			case 0: // publish up to 6 segments of up to 3 hops each
				n, _ := next()
				segs := make([]PathSeg, 0, 6)
				for j := 0; j < int(n%6)+1; j++ {
					a, ok := next()
					if !ok {
						break
					}
					m, _ := next()
					hops := make([]Hop, 0, 3)
					for k := 0; k < int(m%4); k++ {
						b, ok := next()
						if !ok {
							break
						}
						hops = append(hops, Hop{Addr: mkAddr(b), Tech: b >> 4})
					}
					segs = append(segs, PathSeg{Anchor: mkAddr(a), Hops: hops})
				}
				s.Publish(src, segs, nowUS)
				for _, sg := range segs {
					if len(sg.Hops) > 0 {
						published[sg.Anchor] = nowUS
					}
				}
			case 1: // lookup from an arbitrary hop
				b, _ := next()
				from := mkAddr(b)
				chain, ok := s.Lookup(src, from, nowUS)
				if !ok {
					continue
				}
				if len(chain) == 0 || len(chain) > MaxChain {
					t.Fatalf("chain length %d out of bounds", len(chain))
				}
				if chain[len(chain)-1].Addr != src {
					t.Fatalf("chain does not terminate at src: %v", chain)
				}
				// Freshness: the entry segment's anchor was published within
				// the TTL. (Publish times only grow, so the recorded
				// last-publish time is an upper bound on the entry's age.)
				at, ok := published[from]
				if !ok {
					t.Fatalf("chain served from anchor %v that was never published", from)
				}
				if nowUS-at > ttlUS {
					t.Fatalf("lookup served a segment published %d us ago (ttl %d)", nowUS-at, ttlUS)
				}
			case 2: // advance virtual time
				b, _ := next()
				nowUS += int64(b)
				if b%16 == 0 { // occasional jump far past the TTL
					nowUS += 10 * ttlUS
				}
			case 3: // flush occasionally, otherwise probe accessors
				b, _ := next()
				if b%8 == 0 {
					s.Flush()
					published = make(map[ipv4.Addr]int64)
				} else {
					_ = s.Clone().Len()
				}
			}
			if s.Len() > maxN {
				t.Fatalf("size cap violated: %d > %d", s.Len(), maxN)
			}
		}
	})
}
