package core_test

// Deterministic event contract (DESIGN.md §10): for a fixed seed, a
// measurement's progress-event sequence — kinds, per-measurement seq
// numbers, virtual timestamps, hops, techniques — is bit-identical
// between the blocking MeasureReverseStream and the suspended
// MeasureAsyncStream paths, across concurrent async interleavings, and
// between a workers=1 and a workers=N probe pool. Events are stamped
// only with per-measurement state (eseq, accumulated virtual probing
// time), never with wall clocks or cross-measurement counters, which
// is what makes this hold.

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"

	"revtr/internal/core"
	"revtr/internal/ip2as"
	"revtr/internal/netsim/ipv4"
	"revtr/internal/probe"
	"revtr/internal/stream"
)

// renderEvents flattens an event sequence into a comparable string.
// Per-topic delivery IDs are broker state, explicitly outside the
// determinism contract, and are not rendered.
func renderEvents(evs []stream.Event) string {
	var b strings.Builder
	for _, ev := range evs {
		fmt.Fprintf(&b, "%d:%s@%dus hop=%s tech=%s spliced=%v count=%d status=%s\n",
			ev.Seq, ev.Kind, ev.VirtUS, ev.Hop, ev.Tech, ev.Spliced, ev.Count, ev.Status)
	}
	return b.String()
}

// collector accumulates one measurement's events. The async path calls
// the sink from whichever pool executor resumes the machine, so append
// is locked.
type collector struct {
	mu  sync.Mutex
	evs []stream.Event
}

func (c *collector) sink(ev stream.Event) {
	c.mu.Lock()
	c.evs = append(c.evs, ev)
	c.mu.Unlock()
}

func TestStreamEventDeterminism(t *testing.T) {
	opts := core.Revtr20Options()
	opts.UseCache = false // cached results skip probing and so skip events
	h, eng := newHarness(t, &opts)

	var dsts []ipv4.Addr
	for i := 0; len(dsts) < 10; i++ {
		d := h.env.ResponsiveHost(i*2, h.src.Agent.AS)
		if d == nil {
			break
		}
		dsts = append(dsts, d.Addr)
	}
	if len(dsts) < 4 {
		t.Skip("not enough destinations")
	}

	// Blocking baseline on the default multi-worker pool.
	want := make(map[ipv4.Addr]string, len(dsts))
	for _, d := range dsts {
		var c collector
		res := eng.MeasureReverseStream(context.Background(), h.src, d, c.sink)
		if len(c.evs) == 0 {
			t.Fatalf("%s: no events emitted", d)
		}
		if c.evs[0].Kind != stream.KindStarted {
			t.Fatalf("%s: first event %q, want started", d, c.evs[0].Kind)
		}
		last := c.evs[len(c.evs)-1]
		switch {
		case res.Status == core.StatusComplete && last.Kind != stream.KindDone:
			t.Fatalf("%s: complete measurement ended with %q event", d, last.Kind)
		case res.Status != core.StatusComplete && last.Kind == stream.KindDone:
			t.Fatalf("%s: %s measurement ended with done event", d, res.Status)
		}
		// Every revealed hop is mirrored by exactly one hop event.
		hops := 0
		for _, ev := range c.evs {
			if ev.Kind == stream.KindHop {
				hops++
			}
		}
		if hops != len(res.Hops) {
			t.Fatalf("%s: %d hop events for %d result hops", d, hops, len(res.Hops))
		}
		// Seq numbers are 1..n with no holes.
		for i, ev := range c.evs {
			if ev.Seq != uint64(i+1) {
				t.Fatalf("%s: event %d has seq %d", d, i, ev.Seq)
			}
		}
		want[d] = renderEvents(c.evs)
	}

	// Async path, all destinations in flight concurrently: every
	// per-measurement sequence must match its blocking twin even though
	// pool executors interleave the measurements arbitrarily.
	const rounds = 3
	for round := 0; round < rounds; round++ {
		collectors := make([]*collector, len(dsts))
		var wg sync.WaitGroup
		wg.Add(len(dsts))
		for i, d := range dsts {
			c := &collector{}
			collectors[i] = c
			eng.MeasureAsyncStream(context.Background(), h.src, d, c.sink, func(*core.Result) {
				wg.Done()
			})
		}
		wg.Wait()
		for i, d := range dsts {
			if got := renderEvents(collectors[i].evs); got != want[d] {
				t.Fatalf("round %d, %s: async event sequence diverged from blocking\nasync:\n%s\nblocking:\n%s",
					round, d, got, want[d])
			}
		}
	}

	// Workers=1 pool over the same fabric: serializing every probe batch
	// must not change a single event.
	p1 := probe.New(h.env.Fabric, h.env.Pool.Clock(), 1)
	eng1 := core.NewEngine(h.env.Fabric, p1, h.ing, h.env.Sites, h.env.Alias,
		ip2as.Origin{Topo: h.env.Topo}, nil, opts)
	for _, d := range dsts {
		var c collector
		eng1.MeasureReverseStream(context.Background(), h.src, d, c.sink)
		if got := renderEvents(c.evs); got != want[d] {
			t.Fatalf("%s: workers=1 event sequence diverged from workers=N\nworkers=1:\n%s\nworkers=N:\n%s",
				d, got, want[d])
		}
	}
}

// TestStreamSinkOptional: a machine without a sink emits nothing and
// measures identically to one with a sink (the sink is observation,
// never behavior).
func TestStreamSinkOptional(t *testing.T) {
	opts := core.Revtr20Options()
	opts.UseCache = false
	h, eng := newHarness(t, &opts)
	d := h.env.ResponsiveHost(2, h.src.Agent.AS)
	if d == nil {
		t.Skip("no destination")
	}
	var c collector
	with := eng.MeasureReverseStream(context.Background(), h.src, d.Addr, c.sink)
	without := eng.MeasureReverse(context.Background(), h.src, d.Addr)
	if renderCoreResult(with) != renderCoreResult(without) {
		t.Fatalf("sink changed the measurement:\nwith:    %s\nwithout: %s",
			renderCoreResult(with), renderCoreResult(without))
	}
	if len(c.evs) == 0 {
		t.Fatal("sink saw no events")
	}
}
