package core_test

import (
	"context"

	"testing"

	"revtr/internal/core"
)

// TestCacheTTLExpiry: cached RR results are reused within the TTL window
// and re-measured after it — the Insight 1.4 one-day reuse policy.
func TestCacheTTLExpiry(t *testing.T) {
	opts := core.Revtr20Options()
	opts.CacheTTLUS = 1_000_000 // one virtual second, for the test
	h, eng := newHarness(t, &opts)

	var dstAddr = h.env.ResponsiveHost(2, h.src.Agent.AS).Addr
	r1 := eng.MeasureReverse(context.Background(), h.src, dstAddr)
	p1 := r1.Probes.RR + r1.Probes.SpoofRR

	// Within the TTL: RR results come from cache.
	r2 := eng.MeasureReverse(context.Background(), h.src, dstAddr)
	p2 := r2.Probes.RR + r2.Probes.SpoofRR
	if p2 > p1 {
		t.Errorf("cached re-measurement used more RR probes (%d > %d)", p2, p1)
	}

	// Past the TTL: the engine must probe again.
	h.env.Prober.Advance(2_000_000)
	r3 := eng.MeasureReverse(context.Background(), h.src, dstAddr)
	p3 := r3.Probes.RR + r3.Probes.SpoofRR
	if r1.Status == core.StatusComplete && p1 > 0 && p3 == 0 {
		t.Error("expired cache still served RR results")
	}
}

// TestAtlasMaxAge: entries older than AtlasMaxAgeUS are not used for
// intersections.
func TestAtlasMaxAge(t *testing.T) {
	opts := core.Revtr20Options()
	opts.AtlasMaxAgeUS = 1_000_000
	opts.UseCache = false
	h, eng := newHarness(t, &opts)

	// Find a destination whose measurement uses the atlas.
	for i := 0; i < 60; i++ {
		dst := h.env.ResponsiveHost(i, h.src.Agent.AS)
		if dst == nil {
			break
		}
		res := eng.MeasureReverse(context.Background(), h.src, dst.Addr)
		usedAtlas := false
		for _, hop := range res.Hops {
			if hop.Tech == core.TechTrIntersect {
				usedAtlas = true
			}
		}
		if !usedAtlas {
			continue
		}
		// Age the world past the limit: the same measurement must no
		// longer intersect (entries were measured at time 0).
		h.env.Prober.Advance(5_000_000)
		res2 := eng.MeasureReverse(context.Background(), h.src, dst.Addr)
		for _, hop := range res2.Hops {
			if hop.Tech == core.TechTrIntersect {
				t.Fatal("stale atlas entry used despite AtlasMaxAgeUS")
			}
		}
		return
	}
	t.Skip("no atlas-using measurement found")
}

// TestSuspectFlagConsistency: every "*"-flagged hop must actually sit
// after an AS-level jump that is not a known adjacency (§5.2.2's
// suspicious-link rule), and unflagged transitions must be adjacencies.
func TestSuspectFlagConsistency(t *testing.T) {
	h, eng := newHarness(t, nil)
	flagged := 0
	for i := 0; i < 80; i++ {
		dst := h.env.ResponsiveHost(i, h.src.Agent.AS)
		if dst == nil {
			break
		}
		res := eng.MeasureReverse(context.Background(), h.src, dst.Addr)
		prevAS := -1
		for _, hop := range res.Hops {
			asn, ok := eng.Mapper.ASOf(hop.Addr)
			if !ok {
				continue // unmappable (private) hops carry no flag info
			}
			if prevAS >= 0 && int(asn) != prevAS {
				adjacent := h.env.Topo.ASes[prevAS].Neighbor(asn) != nil
				if hop.SuspectBefore && adjacent {
					t.Fatalf("hop %s flagged but AS%d-AS%d are adjacent", hop.Addr, prevAS, asn)
				}
				if !hop.SuspectBefore && !adjacent {
					t.Fatalf("hop %s unflagged but AS%d-AS%d are not adjacent", hop.Addr, prevAS, asn)
				}
				if hop.SuspectBefore {
					flagged++
				}
			}
			prevAS = int(asn)
		}
	}
	t.Logf("suspect flags observed: %d", flagged)
}
