package core

import (
	"revtr/internal/measure"
	"revtr/internal/netsim/ipv4"
)

// AdjacencyProvider supplies candidate next reverse hops for the
// Timestamp technique (Q4): routers seen adjacent to an address in
// traceroute corpora. revtr 1.0 used the iPlane dataset; our
// reimplementation extracts adjacencies from recent traceroutes, like the
// paper's "links found in the Ark traceroutes from the two previous
// weeks" (§5.2.1).
type AdjacencyProvider interface {
	// Adjacent returns candidate neighbors of addr to test with
	// tsprespec probes, ordered most-likely first.
	Adjacent(addr, src ipv4.Addr) []ipv4.Addr
}

// NoAdjacencies is the empty provider (revtr 2.0 does not use TS).
type NoAdjacencies struct{}

// Adjacent implements AdjacencyProvider.
func (NoAdjacencies) Adjacent(_, _ ipv4.Addr) []ipv4.Addr { return nil }

// TracerouteAdjacencies accumulates hop adjacencies from traceroutes (an
// Ark-corpus analogue). Both orientations are recorded: the reverse path
// traverses links in the opposite direction.
type TracerouteAdjacencies struct {
	adj map[ipv4.Addr][]ipv4.Addr
}

// NewTracerouteAdjacencies creates an empty corpus.
func NewTracerouteAdjacencies() *TracerouteAdjacencies {
	return &TracerouteAdjacencies{adj: make(map[ipv4.Addr][]ipv4.Addr)}
}

// Ingest records the adjacencies of one traceroute.
func (t *TracerouteAdjacencies) Ingest(tr measure.TracerouteResult) {
	hops := tr.HopAddrs()
	for i := 0; i+1 < len(hops); i++ {
		t.add(hops[i], hops[i+1])
		t.add(hops[i+1], hops[i])
	}
}

func (t *TracerouteAdjacencies) add(a, b ipv4.Addr) {
	for _, x := range t.adj[a] {
		if x == b {
			return
		}
	}
	t.adj[a] = append(t.adj[a], b)
}

// Adjacent implements AdjacencyProvider.
func (t *TracerouteAdjacencies) Adjacent(addr, _ ipv4.Addr) []ipv4.Addr { return t.adj[addr] }

// Size returns the number of addresses with known adjacencies.
func (t *TracerouteAdjacencies) Size() int { return len(t.adj) }

// OracleAdjacencies returns the true next reverse hop — the Appendix D.1
// upper bound ("perfect (unrealistic) information about adjacencies"). It
// is backed by a ground-truth callback rather than measurements.
type OracleAdjacencies struct {
	// NextReverse returns the true next hop address from addr toward
	// src, or zero.
	NextReverse func(addr, src ipv4.Addr) ipv4.Addr
}

// Adjacent implements AdjacencyProvider.
func (o OracleAdjacencies) Adjacent(addr, src ipv4.Addr) []ipv4.Addr {
	if n := o.NextReverse(addr, src); !n.IsZero() {
		return []ipv4.Addr{n}
	}
	return nil
}
