package core

import (
	"sync"

	"revtr/internal/netsim/ipv4"
)

// DefaultDeadVPTTLUS is how long a blacked-out vantage point stays in
// the engine-level dead-VP cache: 5 virtual minutes, long enough to
// cover a burst of measurements hitting the same ingress order, short
// enough that a recovered VP rejoins the rotation promptly.
const DefaultDeadVPTTLUS int64 = 300_000_000

// deadVPCache remembers vantage points recently observed blacked out,
// shared across measurements, so a dead VP is discovered once and then
// skipped instead of being re-probed (and timed out on) by every
// subsequent measurement. It is clocked on the pool's virtual time —
// never the wall clock — so engine runs stay deterministic: within one
// run the virtual clock does not advance between the mark and the
// lookups, and the bit-identity suites issue measurements serially, so
// the cache contents at each lookup are a pure function of the
// measurement history. Under concurrent issuance the cache is advisory
// (a racing measurement may or may not see a freshly-marked VP), which
// affects only how fast failover converges, never a measurement's
// correctness. A nil *deadVPCache is valid and always misses (the
// cache disabled, restoring strictly per-measurement dead-VP state).
type deadVPCache struct {
	mu    sync.Mutex
	ttlUS int64
	until map[ipv4.Addr]int64
}

// newDeadVPCache builds a cache with the given TTL in virtual
// microseconds: 0 means DefaultDeadVPTTLUS, negative disables the
// cache entirely (returns nil).
func newDeadVPCache(ttlUS int64) *deadVPCache {
	if ttlUS < 0 {
		return nil
	}
	if ttlUS == 0 {
		ttlUS = DefaultDeadVPTTLUS
	}
	return &deadVPCache{ttlUS: ttlUS, until: make(map[ipv4.Addr]int64)}
}

// isDead reports whether the VP at a was marked dead within the TTL as
// of virtual time nowUS, dropping the entry once expired.
func (c *deadVPCache) isDead(a ipv4.Addr, nowUS int64) bool {
	if c == nil {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	until, ok := c.until[a]
	if !ok {
		return false
	}
	if nowUS >= until {
		delete(c.until, a)
		return false
	}
	return true
}

// markDead remembers the VP at a as dead until nowUS + TTL.
func (c *deadVPCache) markDead(a ipv4.Addr, nowUS int64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.until[a] = nowUS + c.ttlUS
}

// flush drops all entries.
func (c *deadVPCache) flush() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	clear(c.until)
}
