package core_test

// Segment-memoization benchmark (Doubletree stop sets): a zipf-skewed
// workload over shared destinations, measured twice — segments off and
// segments on — over the same churn-free fabric. The claims under test:
// memoization saves a substantial share of the probe budget (the whole
// point of stop sets), and under zero churn it adds exactly zero wrong
// paths over the baseline. TestSegmentsProbeSavings asserts both on
// every `go test` run; TestWriteSegmentsBenchJSON additionally
// regenerates BENCH_segments.json when BENCH_SEGMENTS_JSON names the
// output path (`make bench` sets it), like BENCH_engine.json.

import (
	"context"
	"encoding/json"
	"os"
	"testing"

	"revtr/internal/core"
	"revtr/internal/core/segments"
	"revtr/internal/netsim/ipv4"
	"revtr/internal/obs"
	"revtr/internal/probe"
	"revtr/internal/simtest"
)

// wrongPath reports whether a completed result's hops leave the
// ground-truth reverse path (the forward router path from the
// destination back to the source). Private hops, host addresses, and
// the endpoints carry no router-level claim and are skipped.
func wrongPath(env *simtest.Env, srcAddr ipv4.Addr, res *core.Result) bool {
	if res.Status != core.StatusComplete {
		return false
	}
	host, ok := env.Topo.HostOf(res.Dst)
	if !ok {
		return false
	}
	truth := env.Fabric.ForwardRouterPath(host.Router, srcAddr, res.Dst, 0)
	if truth == nil {
		return false
	}
	onPath := map[ipv4.Addr]bool{srcAddr: true}
	for _, r := range truth {
		for _, a := range env.Topo.Aliases(r) {
			onPath[a] = true
		}
	}
	for _, h := range res.Hops {
		if h.Addr.IsPrivate() {
			continue
		}
		if _, isHost := env.Topo.HostOf(h.Addr); isHost {
			continue
		}
		if !onPath[h.Addr] {
			return true
		}
	}
	return false
}

// zipfWorkload spreads repetition zipf-ishly over the destinations:
// destination i is measured every i+1 rounds, so the head of the list
// dominates — the regime where shared reverse suffixes recur and stop
// sets pay. Deterministic: no RNG, same workload every run.
func zipfWorkload(dsts []ipv4.Addr, rounds int) []ipv4.Addr {
	var out []ipv4.Addr
	for r := 0; r < rounds; r++ {
		for i, d := range dsts {
			if r%(i+1) == 0 {
				out = append(out, d)
			}
		}
	}
	return out
}

type segmentsBench struct {
	Bench        string  `json:"bench"`
	Topology     string  `json:"topology"`
	Measurements int     `json:"measurements"`
	ProbesOff    uint64  `json:"probes_off"`
	ProbesOn     uint64  `json:"probes_on"`
	SavedFrac    float64 `json:"probe_budget_saved_frac"`
	Hits         uint64  `json:"segment_hits"`
	Splices      uint64  `json:"segment_splices"`
	SpliceRate   float64 `json:"splice_rate"`
	WrongOff     int     `json:"wrong_paths_off"`
	WrongOn      int     `json:"wrong_paths_on"`
	WrongDelta   int     `json:"wrong_path_delta"`
	StoreLen     int     `json:"store_segments"`
}

// runSegmentsBench measures the zipf workload through a segments-off
// and a segments-on engine over the same fault-free environment.
func runSegmentsBench(t testing.TB) segmentsBench {
	t.Helper()
	c := newChaosEnv(t, 8, 16)
	o := core.Revtr20Options()
	o.UseCache = false // isolate memoization from the per-pair day cache

	workload := zipfWorkload(c.dsts, 30)
	b := segmentsBench{
		Bench:        "segments",
		Topology:     "simtest 300 ASes seed 8, revtr 2.0 options, cache off, zipf workload",
		Measurements: len(workload),
	}

	offEng, _ := c.engineOpts(1, probe.RetryPolicy{}, o)
	for _, dst := range workload {
		res := offEng.MeasureReverse(context.Background(), c.src, dst)
		b.ProbesOff += res.Probes.Total()
		if wrongPath(c.env, c.src.Agent.Addr, res) {
			b.WrongOff++
		}
	}

	on := o
	on.SegmentStore = segments.New(segments.Options{TTLUS: 1 << 60})
	onEng, _ := c.engineOpts(1, probe.RetryPolicy{}, on)
	reg := obs.New()
	onEng.SetMetrics(core.NewMetrics(reg))
	on.SegmentStore.SetObs(reg)
	for _, dst := range workload {
		res := onEng.MeasureReverse(context.Background(), c.src, dst)
		b.ProbesOn += res.Probes.Total()
		if wrongPath(c.env, c.src.Agent.Addr, res) {
			b.WrongOn++
		}
	}

	b.Hits = reg.Counter("engine_segment_hits_total").Value()
	b.Splices = reg.Counter("engine_segment_splices_total").Value()
	b.SpliceRate = float64(b.Splices) / float64(max(1, b.Measurements))
	b.WrongDelta = b.WrongOn - b.WrongOff
	b.StoreLen = on.SegmentStore.Len()
	if b.ProbesOff > 0 {
		b.SavedFrac = 1 - float64(b.ProbesOn)/float64(b.ProbesOff)
	}
	t.Logf("segments bench: %d measurements, probes %d -> %d (%.1f%% saved), %d hits, %d splices, wrong %d -> %d",
		b.Measurements, b.ProbesOff, b.ProbesOn, 100*b.SavedFrac, b.Hits, b.Splices, b.WrongOff, b.WrongOn)
	return b
}

func TestSegmentsProbeSavings(t *testing.T) {
	b := runSegmentsBench(t)
	if b.Splices == 0 {
		t.Fatal("no measurement spliced a memoized segment")
	}
	if b.SavedFrac < 0.30 {
		t.Fatalf("memoization saved only %.1f%% of the probe budget, want >= 30%%", 100*b.SavedFrac)
	}
	if b.WrongDelta != 0 {
		t.Fatalf("memoization changed the wrong-path count under zero churn: off %d, on %d",
			b.WrongOff, b.WrongOn)
	}
}

func TestWriteSegmentsBenchJSON(t *testing.T) {
	path := os.Getenv("BENCH_SEGMENTS_JSON")
	if path == "" {
		t.Skip("set BENCH_SEGMENTS_JSON=<path> to write the segments benchmark corpus")
	}
	b := runSegmentsBench(t)
	buf, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}
