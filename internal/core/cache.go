package core

import (
	"sync"

	"revtr/internal/measure"
	"revtr/internal/netsim/ipv4"
)

// cache reuses RR revelations and forward traceroutes across reverse
// traceroutes within a TTL window (Insight 1.4: most paths are stable, so
// measurements can be cached for a day). Keys include the source because
// reverse hops depend on the destination of the reply.
//
// Entries are evicted three ways so a long-running service never grows the
// maps without bound: a lookup that finds an expired entry deletes it, an
// opportunistic sweep every cacheSweepEvery writes drops everything past
// its TTL, and a hard size cap (Options.CacheMaxEntries across both maps)
// evicts oldest-first when the sweep alone is not enough. The cache is
// internally locked so one engine can serve concurrent measurements;
// eviction counts flow into the engine's Metrics.
type cache struct {
	mu         sync.Mutex
	ttlUS      int64
	maxEntries int
	rr         map[cacheKey]rrEntry
	tr         map[cacheKey]trEntry

	writesSinceSweep int
	metrics          *Metrics
}

// cacheSweepEvery is the opportunistic sweep interval, in cache writes.
const cacheSweepEvery = 1024

// defaultCacheMaxEntries bounds each engine cache when Options does not.
const defaultCacheMaxEntries = 1 << 16

type cacheKey struct {
	target ipv4.Addr
	src    ipv4.Addr
}

type rrEntry struct {
	revHops []ipv4.Addr
	tech    Technique
	atUS    int64
}

type trEntry struct {
	tr   measure.TracerouteResult
	atUS int64
}

func newCache(ttlUS int64, maxEntries int) *cache {
	if maxEntries <= 0 {
		maxEntries = defaultCacheMaxEntries
	}
	return &cache{
		ttlUS:      ttlUS,
		maxEntries: maxEntries,
		rr:         make(map[cacheKey]rrEntry),
		tr:         make(map[cacheKey]trEntry),
	}
}

// size is the total entry count across both maps.
func (c *cache) size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.rr) + len(c.tr)
}

func (c *cache) getRR(target, src ipv4.Addr, nowUS int64) ([]ipv4.Addr, Technique, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	k := cacheKey{target, src}
	e, ok := c.rr[k]
	if ok && nowUS-e.atUS > c.ttlUS {
		delete(c.rr, k)
		c.metrics.evicted(1)
		ok = false
	}
	c.metrics.cacheRR(ok)
	if !ok {
		return nil, 0, false
	}
	return e.revHops, e.tech, true
}

func (c *cache) putRR(target, src ipv4.Addr, hops []ipv4.Addr, tech Technique, nowUS int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.rr[cacheKey{target, src}] = rrEntry{revHops: hops, tech: tech, atUS: nowUS}
	c.maybeSweep(nowUS)
}

func (c *cache) getTraceroute(target, src ipv4.Addr, nowUS int64) (measure.TracerouteResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	k := cacheKey{target, src}
	e, ok := c.tr[k]
	if ok && nowUS-e.atUS > c.ttlUS {
		delete(c.tr, k)
		c.metrics.evicted(1)
		ok = false
	}
	c.metrics.cacheTR(ok)
	if !ok {
		return measure.TracerouteResult{}, false
	}
	return e.tr, true
}

func (c *cache) putTraceroute(target, src ipv4.Addr, tr measure.TracerouteResult, nowUS int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tr[cacheKey{target, src}] = trEntry{tr: tr, atUS: nowUS}
	c.maybeSweep(nowUS)
}

// maybeSweep runs the periodic sweep every cacheSweepEvery writes, or
// immediately when the size cap is exceeded. Callers hold c.mu.
func (c *cache) maybeSweep(nowUS int64) {
	c.writesSinceSweep++
	if c.writesSinceSweep < cacheSweepEvery && len(c.rr)+len(c.tr) <= c.maxEntries {
		return
	}
	c.writesSinceSweep = 0
	c.sweep(nowUS)
}

// sweep drops TTL-expired entries, then — if the cache is still over its
// cap — evicts oldest-first until it fits. Callers hold c.mu.
func (c *cache) sweep(nowUS int64) {
	evicted := 0
	for k, e := range c.rr {
		if nowUS-e.atUS > c.ttlUS {
			delete(c.rr, k)
			evicted++
		}
	}
	for k, e := range c.tr {
		if nowUS-e.atUS > c.ttlUS {
			delete(c.tr, k)
			evicted++
		}
	}
	for len(c.rr)+len(c.tr) > c.maxEntries {
		evicted += c.evictOldest()
	}
	c.metrics.evicted(evicted)
}

// keyLess orders cache keys so timestamp ties evict the same entry on
// every run regardless of map iteration order.
func keyLess(a, b cacheKey) bool {
	if a.target != b.target {
		return a.target < b.target
	}
	return a.src < b.src
}

// evictOldest removes the single oldest entry across both maps. It is the
// slow path, only reached when unexpired entries alone exceed the cap.
// Ties on age break by key (and rr before tr) so eviction is
// deterministic under Go's randomized map iteration.
func (c *cache) evictOldest() int {
	var (
		found    bool
		fromRR   bool
		oldestK  cacheKey
		oldestUS int64
	)
	//revtr:unordered min-selection with total-order tie-break (age, then key); any iteration order picks the same entry
	for k, e := range c.rr {
		if !found || e.atUS < oldestUS || (e.atUS == oldestUS && fromRR && keyLess(k, oldestK)) {
			found, fromRR, oldestK, oldestUS = true, true, k, e.atUS
		}
	}
	//revtr:unordered min-selection with total-order tie-break (age, then key); rr wins age ties over tr
	for k, e := range c.tr {
		if !found || e.atUS < oldestUS || (e.atUS == oldestUS && !fromRR && keyLess(k, oldestK)) {
			found, fromRR, oldestK, oldestUS = true, false, k, e.atUS
		}
	}
	if !found {
		return 0
	}
	if fromRR {
		delete(c.rr, oldestK)
	} else {
		delete(c.tr, oldestK)
	}
	return 1
}

// Flush drops everything (used between experiment phases).
func (c *cache) Flush() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.rr = make(map[cacheKey]rrEntry)
	c.tr = make(map[cacheKey]trEntry)
	c.writesSinceSweep = 0
}
