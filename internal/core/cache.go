package core

import (
	"revtr/internal/measure"
	"revtr/internal/netsim/ipv4"
)

// cache reuses RR revelations and forward traceroutes across reverse
// traceroutes within a TTL window (Insight 1.4: most paths are stable, so
// measurements can be cached for a day). Keys include the source because
// reverse hops depend on the destination of the reply.
type cache struct {
	ttlUS int64
	rr    map[cacheKey]rrEntry
	tr    map[cacheKey]trEntry
}

type cacheKey struct {
	target ipv4.Addr
	src    ipv4.Addr
}

type rrEntry struct {
	revHops []ipv4.Addr
	tech    Technique
	atUS    int64
}

type trEntry struct {
	tr   measure.TracerouteResult
	atUS int64
}

func newCache(ttlUS int64) *cache {
	return &cache{
		ttlUS: ttlUS,
		rr:    make(map[cacheKey]rrEntry),
		tr:    make(map[cacheKey]trEntry),
	}
}

func (c *cache) getRR(target, src ipv4.Addr, nowUS int64) ([]ipv4.Addr, Technique, bool) {
	e, ok := c.rr[cacheKey{target, src}]
	if !ok || nowUS-e.atUS > c.ttlUS {
		return nil, 0, false
	}
	return e.revHops, e.tech, true
}

func (c *cache) putRR(target, src ipv4.Addr, hops []ipv4.Addr, tech Technique, nowUS int64) {
	c.rr[cacheKey{target, src}] = rrEntry{revHops: hops, tech: tech, atUS: nowUS}
}

func (c *cache) getTraceroute(target, src ipv4.Addr, nowUS int64) (measure.TracerouteResult, bool) {
	e, ok := c.tr[cacheKey{target, src}]
	if !ok || nowUS-e.atUS > c.ttlUS {
		return measure.TracerouteResult{}, false
	}
	return e.tr, true
}

func (c *cache) putTraceroute(target, src ipv4.Addr, tr measure.TracerouteResult, nowUS int64) {
	c.tr[cacheKey{target, src}] = trEntry{tr: tr, atUS: nowUS}
}

// Flush drops everything (used between experiment phases).
func (c *cache) Flush() {
	c.rr = make(map[cacheKey]rrEntry)
	c.tr = make(map[cacheKey]trEntry)
}
