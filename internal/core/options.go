// Package core implements the Reverse Traceroute engine: the Fig 2
// control flow that measures the path from an arbitrary destination D back
// to a controlled source S by stitching together traceroute-atlas
// intersections, (spoofed) Record Route revelations, optional Timestamp
// adjacency tests, and restricted symmetry assumptions.
//
// The engine is parameterized so one codebase expresses both systems the
// paper compares (§5.2.1): revtr 1.0 (set-cover VP selection, Timestamp,
// unconditional symmetry assumptions) and revtr 2.0 (ingress-based VP
// selection, RR-atlas intersections, intradomain-only symmetry, caching),
// plus every intermediate configuration of Table 4's ablation.
package core

import (
	"revtr/internal/core/segments"
	"revtr/internal/ingress"
)

// SymmetryPolicy controls Q5: what to do when no technique finds the next
// reverse hop.
type SymmetryPolicy int

const (
	// SymAlways assumes the penultimate traceroute hop is on the reverse
	// path regardless of AS ownership (revtr 1.0).
	SymAlways SymmetryPolicy = iota
	// SymIntraOnly assumes symmetry only when the link is intradomain,
	// aborting otherwise (revtr 2.0; intradomain symmetry holds 90% of
	// the time vs 57% interdomain, Table 2).
	SymIntraOnly
	// SymNever aborts whenever a symmetry assumption would be needed.
	SymNever
)

// Options selects the engine configuration.
type Options struct {
	// VPSelection picks the spoofed-RR vantage point policy (Q3).
	VPSelection ingress.Selection
	// UseRRAtlas enables §4.2 RR-alias intersections with the traceroute
	// atlas (Q2). The atlas must have been built with RR aliases.
	UseRRAtlas bool
	// UseTimestamp enables the IP Timestamp adjacency technique (Q4).
	UseTimestamp bool
	// UseCache reuses RR and traceroute measurements for CacheTTLUS
	// across reverse traceroutes (Insight 1.4).
	UseCache bool
	// Symmetry is the Q5 policy.
	Symmetry SymmetryPolicy

	// BatchSize is the number of spoofed VPs probed per round (3 in
	// revtr 2.0, §5.3).
	BatchSize int
	// SpoofTimeoutUS is the wall-clock cost of each spoofed batch: the
	// system cannot know when all spoofed replies have arrived, so it
	// waits out a timeout (10 s, §5.2.4).
	SpoofTimeoutUS int64
	// MaxSpoofVPs bounds the total vantage points tried per stuck hop.
	MaxSpoofVPs int
	// MaxTSAdjacencies bounds Timestamp probes per stuck hop.
	MaxTSAdjacencies int
	// CacheTTLUS is the measurement reuse window (one day).
	CacheTTLUS int64
	// CacheMaxEntries caps the engine cache (RR + traceroute entries
	// combined); oldest entries are evicted past the cap. 0 uses a
	// default of 65536. TTL-expired entries are always evicted on lookup
	// and by a periodic sweep regardless of this cap.
	CacheMaxEntries int
	// AtlasMaxAgeUS rejects atlas entries older than this (0 = no limit).
	AtlasMaxAgeUS int64
	// DeadVPTTLUS is how long a blacked-out vantage point stays in the
	// engine-level dead-VP cache (virtual microseconds), letting later
	// measurements skip it instead of re-discovering the blackout with a
	// timed-out spoofed batch of their own. 0 selects
	// DefaultDeadVPTTLUS; negative disables the shared cache, reverting
	// to strictly per-measurement dead-VP state.
	DeadVPTTLUS int64
	// SegmentStore, when non-nil, enables Doubletree-style
	// cross-measurement memoization: before probing for the next reverse
	// hop the engine consults the store and splices a memoized suffix
	// (hops marked Spliced), and every completed measurement publishes
	// its freshly revealed segments back. The store is shared: pass the
	// same pointer to every engine of a process (campaign workers, the
	// service backend) so measurements feed each other. nil (the
	// default) disables memoization entirely — behavior is bit-identical
	// to a build without the feature.
	SegmentStore *segments.Store
	// ExcludeAtlasFromDstAS ignores atlas traceroutes measured from
	// probes in the destination's AS — the §5.2.1 evaluation rule that
	// keeps the system from trivially "measuring" a path by reading the
	// ground-truth traceroute.
	ExcludeAtlasFromDstAS bool
	// DetectDBRViolations enables Appendix E's optional redundancy: each
	// Record Route revelation is re-measured, and hops whose next hop
	// differs consistently across probes (i.e. not per-packet load
	// balancing) are flagged DBRSuspect. Costs roughly one extra RR
	// probe per revelation; off in both standard configurations.
	DetectDBRViolations bool
	// DBRRepeats is how many redundant re-revelations checkDBR issues on
	// top of the original one (1+DBRRepeats samples total). <= 0 selects
	// the default of 2.
	DBRRepeats int
	// ProbeRetries is the engine's retry budget: unanswered probes are
	// re-issued up to this many times with doubling backoff in virtual
	// time. 0 inherits the probe pool's default policy; negative forces
	// retries off even when the pool has one.
	ProbeRetries int
	// RetryBackoffUS is the delay before the first retry
	// (probe.DefaultBackoffUS when 0); it doubles per retry up to
	// RetryMaxBackoffUS.
	RetryBackoffUS int64
	// RetryMaxBackoffUS caps a single backoff step (0: uncapped).
	RetryMaxBackoffUS int64
	// MaxHops bounds the reverse path length.
	MaxHops int
}

// Revtr20Options returns the revtr 2.0 configuration.
func Revtr20Options() Options {
	return Options{
		VPSelection:      ingress.SelIngress,
		UseRRAtlas:       true,
		UseTimestamp:     false,
		UseCache:         true,
		Symmetry:         SymIntraOnly,
		BatchSize:        3,
		SpoofTimeoutUS:   10_000_000,
		MaxSpoofVPs:      12,
		MaxTSAdjacencies: 10,
		CacheTTLUS:       24 * 3_600_000_000,
		MaxHops:          40,
	}
}

// Revtr10Options returns the revtr 1.0 configuration (as reimplemented in
// §5.2.1: same vantage points and atlas, original algorithms).
func Revtr10Options() Options {
	o := Revtr20Options()
	o.VPSelection = ingress.SelSetCover
	o.UseRRAtlas = false
	o.UseTimestamp = true
	o.UseCache = false
	o.Symmetry = SymAlways
	// revtr 1.0 tried vantage points until one reached the destination.
	o.MaxSpoofVPs = 200
	return o
}

// Technique records how a reverse hop was measured.
type Technique uint8

const (
	// TechDestination marks the starting hop D.
	TechDestination Technique = iota
	// TechTrIntersect: adopted from an atlas traceroute intersection.
	TechTrIntersect
	// TechRR: revealed by a direct Record Route ping from the source.
	TechRR
	// TechSpoofRR: revealed by a spoofed Record Route ping.
	TechSpoofRR
	// TechTS: confirmed by an IP Timestamp adjacency test.
	TechTS
	// TechSymmetry: assumed from the penultimate forward-traceroute hop.
	TechSymmetry
	// TechSource marks the source S.
	TechSource
)

func (t Technique) String() string {
	switch t {
	case TechDestination:
		return "dst"
	case TechTrIntersect:
		return "tr-intersect"
	case TechRR:
		return "rr"
	case TechSpoofRR:
		return "spoof-rr"
	case TechTS:
		return "ts"
	case TechSymmetry:
		return "assume-sym"
	case TechSource:
		return "src"
	}
	return "?"
}

// Status is the outcome of a reverse traceroute.
type Status uint8

const (
	// StatusComplete: the path was measured back to the source.
	StatusComplete Status = iota
	// StatusAborted: measuring on would have required an interdomain
	// symmetry assumption (Insight 1.10) — revtr 2.0 returns nothing
	// rather than risk a wrong path.
	StatusAborted
	// StatusFailed: the destination was unresponsive or the engine ran
	// out of techniques/hops.
	StatusFailed
)

func (s Status) String() string {
	switch s {
	case StatusComplete:
		return "complete"
	case StatusAborted:
		return "aborted"
	}
	return "failed"
}
