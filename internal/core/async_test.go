package core_test

// Concurrency-at-scale test for the resumable machine: MeasureAsync
// must sustain 10k concurrent measurements with memory-bounded state
// (suspended Machines on the heap) rather than a parked goroutine per
// measurement, and every result must match the synchronous engine.

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"revtr/internal/core"
	"revtr/internal/netsim/ipv4"
)

// TestMeasureAsyncTenThousand launches 10k measurements (2k under the
// race detector) through MeasureAsync before any of them completes its
// probing, then checks (a) the process never grew a goroutine per
// in-flight measurement — concurrency lives in suspended machine
// records drained by the probe pool's bounded executors — and (b) every
// async result is identical to a synchronous MeasureReverse of the same
// destination.
func TestMeasureAsyncTenThousand(t *testing.T) {
	n := 10_000
	if raceEnabled {
		n = 2_000 // the race detector makes the full size needlessly slow
	}
	opts := core.Revtr20Options()
	opts.UseCache = false // async results must not depend on completion order
	h, eng := newHarness(t, &opts)

	var dsts []ipv4.Addr
	for i := 0; len(dsts) < 12; i++ {
		d := h.env.ResponsiveHost(i*2, h.src.Agent.AS)
		if d == nil {
			break
		}
		dsts = append(dsts, d.Addr)
	}
	if len(dsts) < 4 {
		t.Skip("not enough destinations")
	}
	want := make(map[ipv4.Addr]string, len(dsts))
	for _, d := range dsts {
		want[d] = renderCoreResult(eng.MeasureReverse(context.Background(), h.src, d))
	}

	baseline := runtime.NumGoroutine()
	var peak atomic.Int64
	results := make([]*core.Result, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		i := i
		eng.MeasureAsync(context.Background(), h.src, dsts[i%len(dsts)], func(res *core.Result) {
			results[i] = res
			wg.Done()
		})
		if i%64 == 0 {
			g := int64(runtime.NumGoroutine())
			for {
				m := peak.Load()
				if g <= m || peak.CompareAndSwap(m, g) {
					break
				}
			}
		}
	}
	wg.Wait()

	// A goroutine-per-measurement design would park thousands here; the
	// pool's executor budget plus runtime service goroutines is two
	// orders of magnitude below the in-flight count.
	if limit := int64(baseline + 100); peak.Load() > limit {
		t.Fatalf("goroutines peaked at %d for %d in-flight measurements (baseline %d)",
			peak.Load(), n, baseline)
	}
	for i, res := range results {
		if res == nil {
			t.Fatalf("measurement %d never completed", i)
		}
		d := dsts[i%len(dsts)]
		if got := renderCoreResult(res); got != want[d] {
			t.Fatalf("measurement %d (dst %s) diverged from synchronous run\nsync  %s\nasync %s",
				i, d, want[d], got)
		}
	}
	t.Logf("%d async measurements, goroutine peak %d (baseline %d)", n, peak.Load(), baseline)
}
