// Package obs is the in-process observability substrate: lock-free
// counters, gauges, and fixed-bucket latency histograms built on
// sync/atomic, collected in a Registry that renders a Prometheus-style
// text exposition. The paper sizes revtr 2.0 from latency and probe-budget
// accounting (§5.2.4: 173 revtrs/s from per-stage timings); this package
// is how the reproduction produces the same accounting about itself.
//
// All metric operations are wait-free after creation; the Registry mutex
// is only taken to register a new name, so instrumented hot paths never
// contend. Every metric type is safe to use through a nil pointer (a
// no-op), which lets instrumented code run unconditionally whether or not
// a registry was attached.
package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing value.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value reads the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a value that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adds delta (negative to decrement).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value reads the gauge.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram counts observations into fixed buckets of inclusive upper
// bounds, plus an implicit +Inf bucket, and tracks sum and count.
// Observe is wait-free.
type Histogram struct {
	bounds []int64         // sorted inclusive upper bounds
	counts []atomic.Uint64 // len(bounds)+1; last is +Inf
	sum    atomic.Int64
	n      atomic.Uint64
}

// DurationBucketsUS is the default latency bucket layout in microseconds:
// 1ms to 2min, spanning cached sub-millisecond hits through multi-batch
// spoofed measurements that wait out 10 s timeouts (§5.2.4).
var DurationBucketsUS = []int64{
	1_000, 10_000, 100_000, 1_000_000, 5_000_000,
	10_000_000, 30_000_000, 60_000_000, 120_000_000,
}

func newHistogram(bounds []int64) *Histogram {
	b := make([]int64, len(bounds))
	copy(b, bounds)
	sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.n.Add(1)
}

// Count reports how many values were observed.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// Sum reports the sum of observed values.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Registry is a named collection of metrics. Metric accessors get or
// create by name, so independent subsystems that ask for the same name
// share one metric (campaign workers sharing stage counters, for
// example).
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// New creates an empty registry.
func New() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the counter registered under name, creating it if
// needed. Safe on a nil registry (returns a nil, no-op counter).
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it with
// the given bucket upper bounds if needed (nil bounds = DurationBucketsUS).
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		if bounds == nil {
			bounds = DurationBucketsUS
		}
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Label renders name{k1="v1",k2="v2"} from alternating key/value pairs,
// for per-entity metric names (e.g. per-user quota gauges).
func Label(name string, kv ...string) string {
	if len(kv) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(strings.NewReplacer(`"`, `\"`, `\`, `\\`).Replace(kv[i+1]))
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

// splitLabels separates a (possibly labelled) metric name into its base
// name and label block: `m{a="b"}` → (`m`, `a="b"`).
func splitLabels(name string) (base, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 && strings.HasSuffix(name, "}") {
		return name[:i], name[i+1 : len(name)-1]
	}
	return name, ""
}

// series renders base+suffix with the given label block plus an optional
// extra label appended: series("m", "_bucket", `a="b"`, `le="10"`) →
// `m_bucket{a="b",le="10"}`.
func series(base, suffix, labels, extra string) string {
	name := base + suffix
	all := labels
	if extra != "" {
		if all != "" {
			all += ","
		}
		all += extra
	}
	if all == "" {
		return name
	}
	return name + "{" + all + "}"
}

// WriteText renders every metric in the Prometheus text format, sorted by
// name for stable output. Histograms render cumulative buckets plus _sum
// and _count series.
func (r *Registry) WriteText(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	type hsnap struct {
		name string
		h    *Histogram
	}
	counters := make(map[string]uint64, len(r.counters))
	for n, c := range r.counters {
		counters[n] = c.Value()
	}
	gauges := make(map[string]int64, len(r.gauges))
	for n, g := range r.gauges {
		gauges[n] = g.Value()
	}
	var hists []hsnap
	for n, h := range r.hists {
		hists = append(hists, hsnap{n, h})
	}
	r.mu.Unlock()

	var lines []string
	for n, v := range counters {
		lines = append(lines, fmt.Sprintf("%s %d", n, v))
	}
	for n, v := range gauges {
		lines = append(lines, fmt.Sprintf("%s %d", n, v))
	}
	for _, hs := range hists {
		base, labels := splitLabels(hs.name)
		var cum uint64
		for i, bound := range hs.h.bounds {
			cum += hs.h.counts[i].Load()
			lines = append(lines, fmt.Sprintf("%s %d",
				series(base, "_bucket", labels, fmt.Sprintf(`le="%d"`, bound)), cum))
		}
		cum += hs.h.counts[len(hs.h.bounds)].Load()
		lines = append(lines, fmt.Sprintf("%s %d", series(base, "_bucket", labels, `le="+Inf"`), cum))
		lines = append(lines, fmt.Sprintf("%s %d", series(base, "_sum", labels, ""), hs.h.Sum()))
		lines = append(lines, fmt.Sprintf("%s %d", series(base, "_count", labels, ""), hs.h.Count()))
	}
	sort.Strings(lines)
	for _, l := range lines {
		if _, err := io.WriteString(w, l+"\n"); err != nil {
			return err
		}
	}
	return nil
}
