package obs_test

import (
	"strings"
	"sync"
	"testing"

	"revtr/internal/obs"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := obs.New()
	c := r.Counter("requests_total")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("requests_total") != c {
		t.Fatal("same name must return the same counter")
	}
	g := r.Gauge("inflight")
	g.Set(3)
	g.Add(-1)
	if got := g.Value(); got != 2 {
		t.Fatalf("gauge = %d, want 2", got)
	}
}

func TestNilSafety(t *testing.T) {
	var r *obs.Registry
	// All of these must be no-ops, not panics.
	r.Counter("x").Inc()
	r.Gauge("y").Set(1)
	r.Histogram("z", nil).Observe(10)
	if r.Counter("x").Value() != 0 || r.Gauge("y").Value() != 0 {
		t.Fatal("nil registry metrics must read zero")
	}
	if err := r.WriteText(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := obs.New()
	h := r.Histogram("latency_us", []int64{10, 100, 1000})
	for _, v := range []int64{5, 10, 50, 5000} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4", h.Count())
	}
	if h.Sum() != 5065 {
		t.Fatalf("sum = %d, want 5065", h.Sum())
	}
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`latency_us_bucket{le="10"} 2`,   // 5, 10 (inclusive upper bound)
		`latency_us_bucket{le="100"} 3`,  // +50, cumulative
		`latency_us_bucket{le="1000"} 3`, // cumulative
		`latency_us_bucket{le="+Inf"} 4`, // +5000
		`latency_us_sum 5065`,
		`latency_us_count 4`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q in:\n%s", want, out)
		}
	}
}

func TestLabel(t *testing.T) {
	if got := obs.Label("user_inflight", "user", "alice"); got != `user_inflight{user="alice"}` {
		t.Fatalf("Label = %q", got)
	}
	if got := obs.Label("plain"); got != "plain" {
		t.Fatalf("Label no kv = %q", got)
	}
	// Labelled histogram names get le spliced inside the braces.
	r := obs.New()
	r.Histogram(obs.Label("lat", "route", "/x"), []int64{1}).Observe(1)
	var b strings.Builder
	_ = r.WriteText(&b)
	if !strings.Contains(b.String(), `lat_bucket{route="/x",le="1"} 1`) {
		t.Fatalf("labelled histogram output wrong:\n%s", b.String())
	}
}

// TestConcurrentUse exercises the lock-free paths under -race.
func TestConcurrentUse(t *testing.T) {
	r := obs.New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("c").Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h", nil).Observe(int64(i))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := r.Histogram("h", nil).Count(); got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
}
