// Package ingress implements revtr 2.0's Record Route vantage point
// selection (Q3, §4.3): weekly RR surveys from every site to destinations
// in every BGP prefix, ingress-candidate identification (including the
// Appendix C double-stamp and loop heuristics for destinations that do
// not stamp), greedy set-cover selection of ingresses, and the ordered
// per-prefix VP plans the engine probes in batches of three.
//
// It also implements the two baselines of §5.3: the revtr 1.0 per-corpus
// set-cover ranking and the Global greedy ranking.
package ingress

import (
	"math/rand"
	"sort"

	"revtr/internal/detrand"
	"revtr/internal/measure"
	"revtr/internal/netsim/ipv4"
)

// InRangeHops is the maximum RR distance at which a vantage point can
// still reveal reverse hops: the destination must be reached with at
// least one of the nine slots free.
const InRangeHops = 8

// SiteObs is what one site's survey probes revealed about one prefix.
type SiteObs struct {
	Site int
	// Reached reports whether either destination replied to RR.
	Reached bool
	// Dist is the number of RR slots consumed reaching the prefix
	// (1-based marker position), or -1 if unknown.
	Dist int
	// Cands are the ingress candidates: addresses on both destinations'
	// paths up to and including the first in-prefix marker.
	Cands []ipv4.Addr
	// CandIdx gives each candidate's position on this site's path.
	CandIdx map[ipv4.Addr]int
}

// Ingress is a selected ingress with the sites that traverse it.
type Ingress struct {
	Addr ipv4.Addr
	// Sites traversing this ingress, ordered closest-first (by the
	// candidate's position on each site's RR path).
	Sites []int
}

// PrefixInfo is the per-prefix product of the survey.
type PrefixInfo struct {
	Prefix    ipv4.Prefix
	Obs       []*SiteObs
	Ingresses []Ingress // ordered by number of sites covered, descending
	// InRange lists sites within InRangeHops, closest first (the
	// fallback plan when no ingress was identified).
	InRange []int
}

// Heuristics toggles the Appendix C candidate-extraction heuristics, for
// the Table 5 ablation.
type Heuristics struct {
	DoubleStamp bool
	Loop        bool
}

// AllHeuristics is the full revtr 2.0 configuration.
var AllHeuristics = Heuristics{DoubleStamp: true, Loop: true}

// Service runs surveys and answers VP-selection queries.
type Service struct {
	Prober *measure.Prober
	Sites  []measure.Agent
	Heur   Heuristics

	Info map[ipv4.Prefix]*PrefixInfo

	// rank10 is the revtr 1.0 greedy set-cover site order; rankGlobal
	// orders sites by raw in-range prefix count.
	rank10     []int
	rankGlobal []int

	rng *rand.Rand
}

// NewService creates the service.
func NewService(p *measure.Prober, sites []measure.Agent, heur Heuristics, seed int64) *Service {
	return &Service{
		Prober: p,
		Sites:  sites,
		Heur:   heur,
		Info:   make(map[ipv4.Prefix]*PrefixInfo),
		rng:    detrand.New(seed, "ingress.tiebreak"),
	}
}

// Survey probes each prefix from every site. dests must yield at least
// two (ideally responsive) destination addresses per prefix; the first
// two are used for candidate extraction.
func (s *Service) Survey(prefixes []ipv4.Prefix, dests func(ipv4.Prefix) []ipv4.Addr) {
	for _, pfx := range prefixes {
		ds := dests(pfx)
		if len(ds) == 0 {
			continue
		}
		s.Info[pfx] = s.surveyPrefix(pfx, ds)
	}
	s.computeRankings()
}

func (s *Service) surveyPrefix(pfx ipv4.Prefix, ds []ipv4.Addr) *PrefixInfo {
	info := &PrefixInfo{Prefix: pfx}
	d1 := ds[0]
	d2 := d1
	if len(ds) > 1 {
		d2 = ds[1]
	}
	for si := range s.Sites {
		obs := &SiteObs{Site: si, Dist: -1, CandIdx: make(map[ipv4.Addr]int)}
		rr1 := s.Prober.RRPing(s.Sites[si], d1)
		c1, m1 := s.extractCandidates(pfx, rr1.Recorded)
		var c2 []ipv4.Addr
		m2 := -1
		if d2 != d1 {
			rr2 := s.Prober.RRPing(s.Sites[si], d2)
			c2, m2 = s.extractCandidates(pfx, rr2.Recorded)
			obs.Reached = rr1.Responded || rr2.Responded
		} else {
			c2, m2 = c1, m1
			obs.Reached = rr1.Responded
		}
		if m1 >= 0 {
			obs.Dist = m1 + 1
		} else if m2 >= 0 {
			obs.Dist = m2 + 1
		}
		// Candidates must appear on both paths (guard against hops past
		// the real ingress, §4.3).
		onC2 := map[ipv4.Addr]bool{}
		for _, a := range c2 {
			onC2[a] = true
		}
		for i, a := range c1 {
			if onC2[a] {
				obs.Cands = append(obs.Cands, a)
				obs.CandIdx[a] = i
			}
		}
		info.Obs = append(info.Obs, obs)
	}
	s.selectIngresses(info)
	return info
}

// extractCandidates returns the ingress candidates of one recorded RR
// path — the addresses up to and including the first in-prefix marker —
// and the marker index (-1 if none found even with heuristics).
func (s *Service) extractCandidates(pfx ipv4.Prefix, rec []ipv4.Addr) ([]ipv4.Addr, int) {
	if len(rec) == 0 {
		return nil, -1
	}
	// Primary rule: first address inside the destination prefix.
	for i, a := range rec {
		if pfx.Contains(a) {
			return rec[:i+1], i
		}
	}
	if s.Heur.DoubleStamp {
		// The same address in two adjacent slots without the prefix
		// appearing: the destination's alias or the penultimate hop on
		// both directions (Appx C).
		for i := 0; i+1 < len(rec); i++ {
			if rec[i] == rec[i+1] {
				return rec[:i+1], i
			}
		}
	}
	if s.Heur.Loop {
		// A loop a‑S‑a means the probe reached the destination and came
		// back through a; every address through the second occurrence is
		// a candidate (Appx C).
		first := map[ipv4.Addr]int{}
		for i, a := range rec {
			if j, seen := first[a]; seen && i > j+1 {
				return rec[:i+1], j
			}
			if _, seen := first[a]; !seen {
				first[a] = i
			}
		}
	}
	return nil, -1
}

// selectIngresses runs the greedy set cover over candidates (§4.3) and
// builds the ordered ingress list and the in-range fallback.
func (s *Service) selectIngresses(info *PrefixInfo) {
	covered := make([]bool, len(s.Sites))
	sitesOf := map[ipv4.Addr][]int{}
	for _, obs := range info.Obs {
		for _, c := range obs.Cands {
			sitesOf[c] = append(sitesOf[c], obs.Site)
		}
	}
	for {
		var best ipv4.Addr
		bestGain := 0
		var tied []ipv4.Addr
		//revtr:unordered every max-gain candidate lands in tied, which is sorted before the seeded pick below
		for cand, sites := range sitesOf {
			gain := 0
			for _, si := range sites {
				if !covered[si] {
					gain++
				}
			}
			switch {
			case gain > bestGain:
				bestGain = gain
				best = cand
				tied = tied[:0]
				tied = append(tied, cand)
			case gain == bestGain && gain > 0:
				tied = append(tied, cand)
			}
		}
		if bestGain == 0 {
			break
		}
		if len(tied) > 1 {
			// "If multiple ingresses are tied ... choose one at random."
			sort.Slice(tied, func(i, j int) bool { return tied[i] < tied[j] })
			best = tied[s.rng.Intn(len(tied))]
		}
		ing := Ingress{Addr: best}
		for _, si := range sitesOf[best] {
			if !covered[si] {
				covered[si] = true
				ing.Sites = append(ing.Sites, si)
			}
		}
		// Closest site to the ingress first.
		obsOf := info.Obs
		sort.SliceStable(ing.Sites, func(i, j int) bool {
			return obsOf[ing.Sites[i]].CandIdx[best] < obsOf[ing.Sites[j]].CandIdx[best]
		})
		info.Ingresses = append(info.Ingresses, ing)
		delete(sitesOf, best)
	}
	sort.SliceStable(info.Ingresses, func(i, j int) bool {
		return len(info.Ingresses[i].Sites) > len(info.Ingresses[j].Sites)
	})
	// Fallback: sites in RR range ordered by distance.
	type sd struct{ site, dist int }
	var in []sd
	for _, obs := range info.Obs {
		if obs.Dist > 0 && obs.Dist <= InRangeHops {
			in = append(in, sd{obs.Site, obs.Dist})
		}
	}
	sort.Slice(in, func(i, j int) bool {
		if in[i].dist != in[j].dist {
			return in[i].dist < in[j].dist
		}
		return in[i].site < in[j].site
	})
	for _, x := range in {
		info.InRange = append(info.InRange, x.site)
	}
}

// computeRankings derives the revtr 1.0 set-cover order and the Global
// order from the survey.
func (s *Service) computeRankings() {
	inRange := make([]map[ipv4.Prefix]bool, len(s.Sites))
	for i := range inRange {
		inRange[i] = make(map[ipv4.Prefix]bool)
	}
	for pfx, info := range s.Info {
		for _, obs := range info.Obs {
			if obs.Dist > 0 && obs.Dist <= InRangeHops {
				inRange[obs.Site][pfx] = true
			}
		}
	}
	// Global: raw coverage count, descending.
	s.rankGlobal = make([]int, len(s.Sites))
	for i := range s.rankGlobal {
		s.rankGlobal[i] = i
	}
	sort.SliceStable(s.rankGlobal, func(a, b int) bool {
		return len(inRange[s.rankGlobal[a]]) > len(inRange[s.rankGlobal[b]])
	})
	// revtr 1.0: greedy set cover of prefixes by sites.
	covered := map[ipv4.Prefix]bool{}
	used := make([]bool, len(s.Sites))
	for len(s.rank10) < len(s.Sites) {
		best, bestGain := -1, -1
		for si := range s.Sites {
			if used[si] {
				continue
			}
			gain := 0
			for pfx := range inRange[si] {
				if !covered[pfx] {
					gain++
				}
			}
			if gain > bestGain {
				best, bestGain = si, gain
			}
		}
		if best < 0 {
			break
		}
		used[best] = true
		s.rank10 = append(s.rank10, best)
		for pfx := range inRange[best] {
			covered[pfx] = true
		}
	}
}

// Plan is an ordered sequence of site indices to try for a destination
// prefix, grouped for batching.
type Plan struct {
	// Order lists site indices, most promising first.
	Order []int
	// PerIngress is true when the order came from ingress identification
	// (one site per ingress, then fallbacks).
	PerIngress bool
}

// Selection names a VP-selection policy.
type Selection int

const (
	// SelIngress is revtr 2.0's ingress-based selection.
	SelIngress Selection = iota
	// SelSetCover is revtr 1.0's greedy set-cover ranking.
	SelSetCover
	// SelGlobal ranks sites by raw in-range prefix count.
	SelGlobal
)

// MaxFallbacksPerIngress is how many sites per ingress a plan includes
// ("if five vantage points in a row fail to uncover the ingress, give
// up", §4.3).
const MaxFallbacksPerIngress = 5

// PlanFor returns the VP ordering for a destination prefix under the
// given policy.
func (s *Service) PlanFor(pfx ipv4.Prefix, sel Selection) Plan {
	switch sel {
	case SelSetCover:
		return Plan{Order: s.rank10}
	case SelGlobal:
		return Plan{Order: s.rankGlobal}
	}
	info := s.Info[pfx]
	if info == nil {
		// Never surveyed: fall back to the global ranking.
		return Plan{Order: s.rankGlobal}
	}
	if len(info.Ingresses) == 0 {
		// 2.3% of prefixes: rank in-range sites by distance (§4.3). If
		// the survey found no site in RR range at all, spoofing is
		// hopeless — return an empty plan so the engine moves straight
		// to the symmetry step instead of wasting 10-second batches.
		return Plan{Order: info.InRange}
	}
	// One probe per ingress from the closest vantage point; fallback
	// VPs for an ingress come only after every other ingress's primary
	// has been tried (retrying the same ingress with another VP rarely
	// reveals anything new — §4.3's ordering).
	var order []int
	seen := map[int]bool{}
	for depth := 0; depth < MaxFallbacksPerIngress; depth++ {
		added := false
		for _, ing := range info.Ingresses {
			if depth >= len(ing.Sites) {
				continue
			}
			si := ing.Sites[depth]
			if seen[si] {
				continue
			}
			order = append(order, si)
			seen[si] = true
			added = true
		}
		if !added {
			break
		}
	}
	return Plan{Order: order, PerIngress: true}
}

// ClosestSiteDist returns the smallest surveyed RR distance from any site
// to the prefix (the "Optimal" baseline of §5.3), or -1.
func (s *Service) ClosestSiteDist(pfx ipv4.Prefix) int {
	info := s.Info[pfx]
	if info == nil {
		return -1
	}
	best := -1
	for _, obs := range info.Obs {
		if obs.Dist > 0 && (best < 0 || obs.Dist < best) {
			best = obs.Dist
		}
	}
	return best
}
