package ingress_test

import (
	"testing"

	"revtr/internal/ingress"
	"revtr/internal/netsim/ipv4"
	"revtr/internal/simtest"
)

func surveyEnv(t testing.TB) (*simtest.Env, *ingress.Service) {
	t.Helper()
	env := simtest.New(t, 300, 6)
	svc := ingress.NewService(env.Prober, env.Sites, ingress.AllHeuristics, 6)
	// Survey announced /24s only (cheap enough for tests).
	var prefixes []ipv4.Prefix
	for _, as := range env.Topo.ASes {
		prefixes = append(prefixes, as.Prefixes...)
	}
	svc.Survey(prefixes, func(pfx ipv4.Prefix) []ipv4.Addr {
		var out []ipv4.Addr
		asn, ok := env.Topo.BlockAS(pfx.Addr)
		if !ok {
			return nil
		}
		for _, hid := range env.Topo.ASes[asn].Hosts {
			h := &env.Topo.Hosts[hid]
			if pfx.Contains(h.Addr) && h.PingResponsive {
				out = append(out, h.Addr)
				if len(out) == 2 {
					break
				}
			}
		}
		return out
	})
	return env, svc
}

func TestSurveyFindsIngresses(t *testing.T) {
	env, svc := surveyEnv(t)
	withIngress, surveyed := 0, 0
	for _, info := range svc.Info {
		surveyed++
		if len(info.Ingresses) > 0 {
			withIngress++
		}
	}
	if surveyed == 0 {
		t.Fatal("nothing surveyed")
	}
	frac := float64(withIngress) / float64(surveyed)
	t.Logf("prefixes with ingresses: %d/%d (%.0f%%)", withIngress, surveyed, 100*frac)
	if frac < 0.3 {
		t.Errorf("too few prefixes with identified ingresses: %.2f", frac)
	}
	_ = env
}

func TestIngressSetCoverProperties(t *testing.T) {
	_, svc := surveyEnv(t)
	for _, info := range svc.Info {
		covered := map[int]bool{}
		for i, ing := range info.Ingresses {
			if len(ing.Sites) == 0 {
				t.Fatal("ingress with no sites")
			}
			// Ordered by coverage, descending.
			if i > 0 && len(ing.Sites) > len(info.Ingresses[i-1].Sites) {
				t.Fatalf("ingresses not ordered by coverage: %v", info.Prefix)
			}
			for _, s := range ing.Sites {
				if covered[s] {
					t.Fatalf("site %d covered by two ingresses in %v", s, info.Prefix)
				}
				covered[s] = true
			}
		}
	}
}

func TestPlanPolicies(t *testing.T) {
	_, svc := surveyEnv(t)
	var pfx ipv4.Prefix
	for p, info := range svc.Info {
		if len(info.Ingresses) > 0 {
			pfx = p
			break
		}
	}
	if pfx.Bits == 0 {
		t.Skip("no prefix with ingresses")
	}
	ingPlan := svc.PlanFor(pfx, ingress.SelIngress)
	if !ingPlan.PerIngress || len(ingPlan.Order) == 0 {
		t.Fatal("ingress plan empty")
	}
	// No duplicate sites in a plan.
	seen := map[int]bool{}
	for _, s := range ingPlan.Order {
		if seen[s] {
			t.Fatal("duplicate site in ingress plan")
		}
		seen[s] = true
	}
	scPlan := svc.PlanFor(pfx, ingress.SelSetCover)
	glPlan := svc.PlanFor(pfx, ingress.SelGlobal)
	if len(scPlan.Order) == 0 || len(glPlan.Order) == 0 {
		t.Fatal("baseline plans empty")
	}
	if scPlan.PerIngress || glPlan.PerIngress {
		t.Fatal("baseline plans should not be per-ingress")
	}
	// Unsurveyed prefix falls back to the global ranking.
	fb := svc.PlanFor(ipv4.MustParsePrefix("203.0.113.0/24"), ingress.SelIngress)
	if len(fb.Order) != len(glPlan.Order) {
		t.Fatal("fallback plan is not the global ranking")
	}
}

func TestClosestSiteDist(t *testing.T) {
	_, svc := surveyEnv(t)
	found := false
	for p := range svc.Info {
		if d := svc.ClosestSiteDist(p); d > 0 {
			found = true
			if d > 30 {
				t.Fatalf("absurd distance %d", d)
			}
		}
	}
	if !found {
		t.Error("no prefix has a known closest-site distance")
	}
	if d := svc.ClosestSiteDist(ipv4.MustParsePrefix("198.18.0.0/24")); d != -1 {
		t.Error("unknown prefix should return -1")
	}
}

func TestHeuristicsExtractMore(t *testing.T) {
	env := simtest.New(t, 300, 6)
	var prefixes []ipv4.Prefix
	for _, as := range env.Topo.ASes {
		prefixes = append(prefixes, as.Prefixes...)
	}
	dests := func(pfx ipv4.Prefix) []ipv4.Addr {
		var out []ipv4.Addr
		asn, ok := env.Topo.BlockAS(pfx.Addr)
		if !ok {
			return nil
		}
		for _, hid := range env.Topo.ASes[asn].Hosts {
			h := &env.Topo.Hosts[hid]
			if pfx.Contains(h.Addr) && h.PingResponsive {
				out = append(out, h.Addr)
				if len(out) == 2 {
					break
				}
			}
		}
		return out
	}
	plain := ingress.NewService(env.Prober, env.Sites, ingress.Heuristics{}, 6)
	plain.Survey(prefixes, dests)
	full := ingress.NewService(env.Prober, env.Sites, ingress.AllHeuristics, 6)
	full.Survey(prefixes, dests)
	count := func(s *ingress.Service) int {
		n := 0
		for _, info := range s.Info {
			if len(info.Ingresses) > 0 {
				n++
			}
		}
		return n
	}
	nPlain, nFull := count(plain), count(full)
	t.Logf("ingresses found: plain=%d full-heuristics=%d", nPlain, nFull)
	if nFull < nPlain {
		t.Errorf("heuristics reduced coverage: %d < %d", nFull, nPlain)
	}
}
