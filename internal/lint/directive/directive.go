// Package directive parses the //revtr: escape-hatch comments the lint
// suite honours. The grammar is
//
//	//revtr:wallclock <justification>
//	//revtr:unordered <justification>
//
// A directive suppresses matching diagnostics on the line it occupies
// (trailing comment) and on the line directly below it (standalone
// comment above the flagged statement). The justification is mandatory:
// a directive without one is itself a diagnostic, so every escape hatch
// in the tree carries its reason next to the code it excuses.
package directive

import (
	"go/ast"
	"go/token"
	"strings"
)

// Directive kinds.
const (
	// Wallclock excuses an intentional time.Now/time.Since site (real
	// wall-clock observability, never simulation logic).
	Wallclock = "wallclock"
	// Unordered excuses a map range whose body is order-independent in a
	// way the analyzer cannot prove.
	Unordered = "unordered"
)

const prefix = "//revtr:"

// Directive is one parsed //revtr: comment.
type Directive struct {
	Kind          string
	Justification string
	Pos           token.Pos
}

// Problem is a malformed directive (unknown kind or no justification).
type Problem struct {
	Pos     token.Pos
	Message string
}

// Map indexes a package's directives by file and line.
type Map struct {
	byLine   map[string]map[int][]Directive // filename -> line -> directives
	problems []Problem
}

// Parse extracts every //revtr: directive from the files' comments.
func Parse(fset *token.FileSet, files []*ast.File) *Map {
	m := &Map{byLine: map[string]map[int][]Directive{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, prefix) {
					continue
				}
				body := strings.TrimPrefix(c.Text, prefix)
				kind, just, _ := strings.Cut(body, " ")
				just = strings.TrimSpace(just)
				switch kind {
				case Wallclock, Unordered:
				default:
					m.problems = append(m.problems, Problem{
						Pos:     c.Pos(),
						Message: "unknown revtr directive //revtr:" + kind + " (known kinds: wallclock, unordered)",
					})
					continue
				}
				if just == "" {
					m.problems = append(m.problems, Problem{
						Pos:     c.Pos(),
						Message: "//revtr:" + kind + " requires a justification (//revtr:" + kind + " <why>)",
					})
					// Still index it: an unjustified directive suppresses the
					// underlying diagnostic so the author sees one actionable
					// message (add the justification), not two.
				}
				pos := fset.Position(c.Pos())
				lines := m.byLine[pos.Filename]
				if lines == nil {
					lines = map[int][]Directive{}
					m.byLine[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], Directive{Kind: kind, Justification: just, Pos: c.Pos()})
			}
		}
	}
	return m
}

// Allows reports whether a diagnostic of the given kind at pos is
// suppressed by a directive on the same line or the line above.
func (m *Map) Allows(fset *token.FileSet, pos token.Pos, kind string) bool {
	p := fset.Position(pos)
	lines, ok := m.byLine[p.Filename]
	if !ok {
		return false
	}
	for _, line := range [2]int{p.Line, p.Line - 1} {
		for _, d := range lines[line] {
			if d.Kind == kind {
				return true
			}
		}
	}
	return false
}

// Problems lists the malformed directives found during Parse.
func (m *Map) Problems() []Problem { return m.problems }
