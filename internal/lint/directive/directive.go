// Package directive parses the //revtr: escape-hatch comments the lint
// suite honours. The grammar is
//
//	//revtr:wallclock <justification>
//	//revtr:unordered <justification>
//	//revtr:heldacross <justification>
//	//revtr:spawnbound <justification>
//	//revtr:lockorder <justification>
//	//revtr:suspends <justification>
//	//revtr:calls <pkgpath.Func | pkgpath.Type.Method>
//
// A directive suppresses matching diagnostics on the line it occupies
// (trailing comment) and on the line directly below it (standalone
// comment above the flagged statement). The justification is mandatory:
// a directive without one is itself a diagnostic, so every escape hatch
// in the tree carries its reason next to the code it excuses. The two
// declarative kinds reuse the justification slot: //revtr:suspends
// explains *why* the function suspends, and //revtr:calls names the
// function an indirect call resolves to.
package directive

import (
	"go/ast"
	"go/token"
	"strings"
)

// Directive kinds.
const (
	// Wallclock excuses an intentional time.Now/time.Since site (real
	// wall-clock observability, never simulation logic).
	Wallclock = "wallclock"
	// Unordered excuses a map range whose body is order-independent in a
	// way the analyzer cannot prove.
	Unordered = "unordered"
	// HeldAcross excuses a lock, ticket, or quota slot intentionally held
	// across a suspension point (suspendsafe).
	HeldAcross = "heldacross"
	// SpawnBound excuses a goroutine launch whose lifetime bound the CFG
	// cannot see (spawnbound).
	SpawnBound = "spawnbound"
	// LockOrder excuses a lock-acquisition edge from the module lock-order
	// graph (lockorder) — for edges that cannot deadlock for reasons the
	// analyzer cannot prove (e.g. distinct instances).
	LockOrder = "lockorder"
	// Suspends declares that the function (or interface method) on the
	// annotated line parks the caller's measurement: calls reaching it are
	// suspension points for suspendsafe. The payload is the reason.
	Suspends = "suspends"
	// Calls declares the target of an indirect call on the annotated line
	// (a function-typed field or interface the static call graph cannot
	// resolve). The payload is the fully qualified target:
	// pkgpath.Func or pkgpath.Type.Method.
	Calls = "calls"
)

// knownKinds is the closed set of directive kinds, in grammar order.
var knownKinds = []string{Wallclock, Unordered, HeldAcross, SpawnBound, LockOrder, Suspends, Calls}

const prefix = "//revtr:"

// Directive is one parsed //revtr: comment.
type Directive struct {
	Kind          string
	Justification string
	Pos           token.Pos
}

// Problem is a malformed directive (unknown kind or no justification).
type Problem struct {
	Pos     token.Pos
	Message string
}

// Map indexes a package's directives by file and line.
type Map struct {
	byLine   map[string]map[int][]Directive // filename -> line -> directives
	problems []Problem
}

// Parse extracts every //revtr: directive from the files' comments.
func Parse(fset *token.FileSet, files []*ast.File) *Map {
	m := &Map{byLine: map[string]map[int][]Directive{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, prefix) {
					continue
				}
				body := strings.TrimPrefix(c.Text, prefix)
				kind, just, _ := strings.Cut(body, " ")
				just = strings.TrimSpace(just)
				if !known(kind) {
					m.problems = append(m.problems, Problem{
						Pos:     c.Pos(),
						Message: "unknown revtr directive //revtr:" + kind + " (known kinds: " + strings.Join(knownKinds, ", ") + ")",
					})
					continue
				}
				if just == "" {
					payload := "<why>"
					if kind == Calls {
						payload = "<pkgpath.Func>"
					}
					m.problems = append(m.problems, Problem{
						Pos:     c.Pos(),
						Message: "//revtr:" + kind + " requires a justification (//revtr:" + kind + " " + payload + ")",
					})
					// Still index it: an unjustified directive suppresses the
					// underlying diagnostic so the author sees one actionable
					// message (add the justification), not two.
				}
				pos := fset.Position(c.Pos())
				lines := m.byLine[pos.Filename]
				if lines == nil {
					lines = map[int][]Directive{}
					m.byLine[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], Directive{Kind: kind, Justification: just, Pos: c.Pos()})
			}
		}
	}
	return m
}

func known(kind string) bool {
	for _, k := range knownKinds {
		if kind == k {
			return true
		}
	}
	return false
}

// Allows reports whether a diagnostic of the given kind at pos is
// suppressed by a directive on the same line or the line above.
func (m *Map) Allows(fset *token.FileSet, pos token.Pos, kind string) bool {
	return len(m.At(fset, pos, kind)) > 0
}

// At returns the directives of the given kind attached to pos: on the
// same line (trailing comment) or the line directly above (standalone
// comment). Declarative kinds (suspends, calls) are read through At, so
// their payloads follow the same placement rule as suppressions.
func (m *Map) At(fset *token.FileSet, pos token.Pos, kind string) []Directive {
	p := fset.Position(pos)
	lines, ok := m.byLine[p.Filename]
	if !ok {
		return nil
	}
	var out []Directive
	for _, line := range [2]int{p.Line, p.Line - 1} {
		for _, d := range lines[line] {
			if d.Kind == kind {
				out = append(out, d)
			}
		}
	}
	return out
}

// Problems lists the malformed directives found during Parse.
func (m *Map) Problems() []Problem { return m.problems }
