package directive_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"revtr/internal/lint/directive"
)

func parse(t *testing.T, src string) (*token.FileSet, []*ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "d.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, []*ast.File{f}
}

func TestJustifiedDirectiveSuppresses(t *testing.T) {
	fset, files := parse(t, `package p

func f() {
	_ = 0 //revtr:wallclock operator-facing metric
	_ = 1
	//revtr:unordered commutative body
	_ = 2
}
`)
	m := directive.Parse(fset, files)
	if len(m.Problems()) != 0 {
		t.Fatalf("unexpected problems: %v", m.Problems())
	}
	pos := func(line int) token.Pos {
		return fset.File(files[0].Pos()).LineStart(line)
	}
	if !m.Allows(fset, pos(4), directive.Wallclock) {
		t.Error("trailing directive should allow its own line")
	}
	if !m.Allows(fset, pos(5), directive.Wallclock) {
		t.Error("directive should allow the line below")
	}
	if m.Allows(fset, pos(6), directive.Wallclock) {
		t.Error("directive must not reach two lines down")
	}
	if m.Allows(fset, pos(4), directive.Unordered) {
		t.Error("wallclock directive must not allow unordered diagnostics")
	}
	if !m.Allows(fset, pos(7), directive.Unordered) {
		t.Error("standalone directive should allow the statement below")
	}
}

func TestHeldAcrossDirective(t *testing.T) {
	fset, files := parse(t, `package p

func f() {
	_ = 0 //revtr:heldacross the completion callback releases the lock
	_ = 1 //revtr:heldacross
}
`)
	m := directive.Parse(fset, files)
	ps := m.Problems()
	if len(ps) != 1 {
		t.Fatalf("got %d problems, want 1: %v", len(ps), ps)
	}
	if !strings.Contains(ps[0].Message, "//revtr:heldacross requires a justification") {
		t.Errorf("problem = %q, want heldacross justification complaint", ps[0].Message)
	}
	pos := func(line int) token.Pos {
		return fset.File(files[0].Pos()).LineStart(line)
	}
	if !m.Allows(fset, pos(4), directive.HeldAcross) {
		t.Error("justified heldacross should suppress on its line")
	}
	if m.Allows(fset, pos(4), directive.SpawnBound) {
		t.Error("heldacross must not suppress spawnbound diagnostics")
	}
	// The empty-justification directive is itself a diagnostic (checked
	// above) but still suppresses, so the author sees one actionable
	// message rather than two.
	if !m.Allows(fset, pos(5), directive.HeldAcross) {
		t.Error("unjustified heldacross should still suppress")
	}
}

func TestDeclarativeDirectivePayloads(t *testing.T) {
	fset, files := parse(t, `package p

func f() {
	g() //revtr:calls example.com/pkg.T.M
}

//revtr:suspends parks the caller until the callback fires
func g() {}
`)
	m := directive.Parse(fset, files)
	if len(m.Problems()) != 0 {
		t.Fatalf("unexpected problems: %v", m.Problems())
	}
	pos := func(line int) token.Pos {
		return fset.File(files[0].Pos()).LineStart(line)
	}
	ds := m.At(fset, pos(4), directive.Calls)
	if len(ds) != 1 || ds[0].Justification != "example.com/pkg.T.M" {
		t.Errorf("At(calls) = %v, want one directive with the target payload", ds)
	}
	if len(m.At(fset, pos(8), directive.Suspends)) != 1 {
		t.Error("At(suspends) should see the declaration above the func line")
	}
}

func TestMalformedDirectives(t *testing.T) {
	fset, files := parse(t, `package p

func f() {
	_ = 0 //revtr:wallclock
	_ = 1 //revtr:frobnicate because
}
`)
	m := directive.Parse(fset, files)
	ps := m.Problems()
	if len(ps) != 2 {
		t.Fatalf("got %d problems, want 2: %v", len(ps), ps)
	}
	if !strings.Contains(ps[0].Message, "requires a justification") {
		t.Errorf("problem 0 = %q, want justification complaint", ps[0].Message)
	}
	if !strings.Contains(ps[1].Message, "unknown revtr directive") {
		t.Errorf("problem 1 = %q, want unknown-kind complaint", ps[1].Message)
	}
	// An unjustified directive still suppresses, so the author sees one
	// actionable message rather than two.
	if !m.Allows(fset, ps[0].Pos, directive.Wallclock) {
		t.Error("unjustified wallclock directive should still suppress")
	}
}
