// Package detpath enforces the determinism contract: the simulation and
// measurement packages must be bit-identical at any worker count (the
// PR 2 probe-layer guarantee) and under any map iteration order.
//
// Three rules:
//
//  1. Wall clock (all non-test packages): calls to time.Now and
//     time.Since are forbidden — virtual time comes from measure.Clock.
//     Intentional wall-clock observability sites (HTTP latency, CLI
//     progress) carry a //revtr:wallclock <why> directive.
//  2. Global math/rand (deterministic packages): package-level draws
//     (rand.Intn, rand.Perm, …) read the process-wide source and are
//     forbidden; construct a seeded stream (detrand.New / rand.New)
//     instead.
//  3. Map ranges (deterministic packages): ranging over a map whose
//     body feeds replies, counters, or output is forbidden unless the
//     collected keys are sorted afterwards in the same function, or the
//     loop carries a //revtr:unordered <why> directive. The analyzer
//     whitelists provably commutative bodies (integer accumulation, map
//     writes, deletes, boolean flags) and flags order-sensitive sinks:
//     appends that are never sorted, prints/writes, channel sends,
//     returns, string/float accumulation, and plain assignments to
//     variables declared outside the loop.
//
// The analyzer also validates //revtr: directive syntax everywhere (it
// is the one suite member that visits every package).
package detpath

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"revtr/internal/lint/analysis"
	"revtr/internal/lint/directive"
)

// deterministicPrefixes lists the packages under the determinism
// contract (DESIGN.md "Determinism contract and static enforcement").
// A path matches if it equals a prefix or extends it with "/".
var deterministicPrefixes = []string{
	"revtr/internal/netsim",
	"revtr/internal/measure",
	"revtr/internal/probe",
	"revtr/internal/core",
	"revtr/internal/campaign",
	"revtr/internal/eval",
	"revtr/internal/ingress",
	"revtr/internal/vantage",
	"revtr/internal/alias",
	"revtr/internal/atlas",
	"revtr/internal/ip2as",
	"revtr/internal/detrand",
}

// IsDeterministic reports whether the package at path is under the
// determinism contract. Lint testdata packages under a det* directory
// opt in, so the analyzer's own tests exercise both modes.
func IsDeterministic(path string) bool {
	for _, p := range deterministicPrefixes {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return strings.Contains(path, "/testdata/src/det")
}

// Analyzer is the detpath analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "detpath",
	Doc:  "forbid wall-clock reads, global math/rand, and unsorted map ranges in deterministic packages",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	dirs := directive.Parse(pass.Fset, pass.Files)
	for _, p := range dirs.Problems() {
		pass.Reportf(p.Pos, "%s", p.Message)
	}
	det := IsDeterministic(pass.Pkg.Path())

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, dirs, det, n)
			case *ast.RangeStmt:
				if det {
					checkMapRange(pass, dirs, f, n)
				}
			}
			return true
		})
	}
	return nil
}

func checkCall(pass *analysis.Pass, dirs *directive.Map, det bool, call *ast.CallExpr) {
	fn := analysis.CalleeFunc(pass.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	switch fn.Pkg().Path() {
	case "time":
		if fn.Name() == "Now" || fn.Name() == "Since" {
			if !dirs.Allows(pass.Fset, call.Pos(), directive.Wallclock) {
				pass.Reportf(call.Pos(),
					"time.%s reads the wall clock and breaks virtual-time determinism; use the deployment's measure.Clock, or annotate //revtr:wallclock <why> if this is intentional observability", fn.Name())
			}
		}
	case "math/rand", "math/rand/v2":
		if !det {
			return
		}
		if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
			return // methods on *rand.Rand are seeded streams, fine
		}
		switch fn.Name() {
		case "New", "NewSource", "NewZipf", "NewPCG", "NewChaCha8":
			return // constructors build seeded streams
		}
		pass.Reportf(call.Pos(),
			"global %s.%s draws from the process-wide seed and breaks run-to-run determinism; derive a seeded stream with detrand.New", fn.Pkg().Path(), fn.Name())
	}
}

// checkMapRange flags order-sensitive iteration over a map.
func checkMapRange(pass *analysis.Pass, dirs *directive.Map, file *ast.File, rs *ast.RangeStmt) {
	tv, ok := pass.Info.Types[rs.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	if dirs.Allows(pass.Fset, rs.Pos(), directive.Unordered) {
		return
	}
	fn := enclosingFunc(file, rs.Pos())
	if why := orderSensitive(pass, fn, rs); why != "" {
		pass.Reportf(rs.Pos(),
			"range over map %s is order-sensitive (%s): map iteration order is randomized, breaking bit-identical replies/counters/output; sort the keys first or annotate //revtr:unordered <why>",
			types.ExprString(rs.X), why)
	}
}

// enclosingFunc returns the innermost function body containing pos.
func enclosingFunc(file *ast.File, pos token.Pos) *ast.BlockStmt {
	var body *ast.BlockStmt
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil || pos < n.Pos() || pos >= n.End() {
			return n == file
		}
		switch n := n.(type) {
		case *ast.FuncDecl:
			body = n.Body
		case *ast.FuncLit:
			body = n.Body
		}
		return true
	})
	return body
}

// orderSensitive classifies the loop body; it returns a short reason if
// the body observably depends on iteration order, or "" if every
// statement is commutative.
func orderSensitive(pass *analysis.Pass, fnBody *ast.BlockStmt, rs *ast.RangeStmt) string {
	reason := ""
	depth := 0 // FuncLit nesting inside the loop body
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		if reason != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			depth++
			ast.Inspect(n.Body, visit)
			depth--
			return false
		case *ast.ReturnStmt:
			if depth == 0 {
				reason = "returns from inside the loop"
			}
			return false
		case *ast.SendStmt:
			reason = "sends on a channel"
			return false
		case *ast.CallExpr:
			if why := sinkCall(pass, n); why != "" {
				reason = why
				return false
			}
		case *ast.IncDecStmt:
			return false // x++ / x-- commute
		case *ast.AssignStmt:
			if why := assignSensitive(pass, fnBody, rs, n); why != "" {
				reason = why
				return false
			}
		}
		return true
	}
	ast.Inspect(rs.Body, visit)
	return reason
}

// sinkCall reports calls that emit in iteration order.
func sinkCall(pass *analysis.Pass, call *ast.CallExpr) string {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if strings.HasPrefix(sel.Sel.Name, "Write") {
			return "writes output via " + sel.Sel.Name
		}
	}
	fn := analysis.CalleeFunc(pass.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	switch fn.Pkg().Path() {
	case "fmt":
		if strings.HasPrefix(fn.Name(), "Print") || strings.HasPrefix(fn.Name(), "Fprint") {
			return "prints via fmt." + fn.Name()
		}
	case "io":
		if fn.Name() == "WriteString" {
			return "writes output via io.WriteString"
		}
	}
	return ""
}

// assignSensitive classifies one assignment inside the loop body.
func assignSensitive(pass *analysis.Pass, fnBody *ast.BlockStmt, rs *ast.RangeStmt, as *ast.AssignStmt) string {
	if as.Tok == token.DEFINE {
		return "" // new locals are per-iteration
	}
	for i, lhs := range as.Lhs {
		lhs = ast.Unparen(lhs)
		// Writes through an index (m2[k] = v, out[i] = v) hit distinct
		// cells per distinct key and commute.
		if _, ok := lhs.(*ast.IndexExpr); ok {
			continue
		}
		target, outside := outsideLoop(pass, rs, lhs)
		if !outside {
			continue
		}
		var rhs ast.Expr
		if len(as.Rhs) == len(as.Lhs) {
			rhs = as.Rhs[i]
		} else if len(as.Rhs) == 1 {
			rhs = as.Rhs[0]
		}
		switch as.Tok {
		case token.ASSIGN:
			if isAppend(rhs) {
				if !sortedLater(pass, fnBody, rs, target) {
					return "appends to " + target + " without sorting it afterwards"
				}
				continue
			}
			if rhs != nil {
				if tv, ok := pass.Info.Types[rhs]; ok && tv.Value != nil {
					continue // x = <constant> converges regardless of order
				}
			}
			return "assigns " + target + " (declared outside the loop) in iteration order"
		case token.ADD_ASSIGN:
			if rhs != nil {
				if tv, ok := pass.Info.Types[rhs]; ok {
					switch b := tv.Type.Underlying().(type) {
					case *types.Basic:
						if b.Info()&types.IsInteger != 0 {
							continue // integer += commutes exactly
						}
						if b.Info()&types.IsString != 0 {
							return "concatenates onto " + target + " in iteration order"
						}
						if b.Info()&types.IsFloat != 0 || b.Info()&types.IsComplex != 0 {
							return "accumulates floating point into " + target + " (float addition is order-sensitive at the bit level)"
						}
					}
				}
			}
			continue
		case token.SUB_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
			continue // commutative on integers; strings/floats don't support these
		default:
			return "updates " + target + " with non-commutative " + as.Tok.String()
		}
	}
	return ""
}

// outsideLoop reports whether lhs names a variable declared outside the
// range statement, and renders it for messages.
func outsideLoop(pass *analysis.Pass, rs *ast.RangeStmt, lhs ast.Expr) (string, bool) {
	switch l := lhs.(type) {
	case *ast.Ident:
		if l.Name == "_" {
			return "", false
		}
		obj := pass.Info.ObjectOf(l)
		if obj == nil {
			return l.Name, true
		}
		return l.Name, obj.Pos() < rs.Pos() || obj.Pos() >= rs.End()
	case *ast.SelectorExpr:
		return types.ExprString(l), true // fields persist beyond the loop
	case *ast.StarExpr:
		return types.ExprString(l), true
	}
	return types.ExprString(lhs), true
}

func isAppend(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "append"
}

// sortedLater reports whether target is passed to a sort.* / slices.*
// call after the range statement within the same function body — the
// collect-keys-then-sort idiom.
func sortedLater(pass *analysis.Pass, fnBody *ast.BlockStmt, rs *ast.RangeStmt, target string) bool {
	if fnBody == nil {
		return false
	}
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if found || n == nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		fn := analysis.CalleeFunc(pass.Info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if types.ExprString(ast.Unparen(arg)) == target {
				found = true
			}
		}
		return true
	})
	return found
}
