// Package plain exercises the detpath analyzer outside the
// deterministic set: the wall-clock rule still applies, but global
// math/rand and map ranges are unconstrained.
package plain

import (
	"fmt"
	"math/rand"
	"time"
)

func wallClockStillForbidden() time.Time {
	return time.Now() // want "time.Now reads the wall clock"
}

func randAndMapsAreFine(m map[string]int) {
	_ = rand.Intn(10)  // global rand allowed outside the deterministic set
	for k := range m { // map order allowed outside the deterministic set
		fmt.Println(k)
	}
}
