// Package det exercises the detpath analyzer inside a deterministic
// package (the /testdata/src/det path opts in).
package det

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// wallClock hits rule 1 with and without the directive.
func wallClock() time.Duration {
	start := time.Now()      // want "time.Now reads the wall clock"
	end := time.Since(start) // want "time.Since reads the wall clock"
	_ = time.Now()           //revtr:wallclock exercising the suppression path
	return end
}

// globalRand hits rule 2; seeded streams stay legal.
func globalRand() int {
	n := rand.Intn(10)                 // want "global math/rand.Intn draws from the process-wide seed"
	rand.Shuffle(3, func(i, j int) {}) // want "global math/rand.Shuffle draws from the process-wide seed"
	rng := rand.New(rand.NewSource(1)) // constructors build seeded streams: fine
	return n + rng.Intn(10)
}

// mapRanges hits rule 3 across the sink taxonomy.
func mapRanges(m map[string]int, w interface{ Write([]byte) (int, error) }) (string, int) {
	total := 0
	for _, v := range m { // integer accumulation commutes
		total += v
	}

	var keys []string
	for k := range m { // collect-then-sort idiom is fine
		keys = append(keys, k)
	}
	sort.Strings(keys)

	var unsorted []string
	for k := range m { // want "appends to unsorted without sorting it afterwards"
		unsorted = append(unsorted, k)
	}

	for k := range m { // want "prints via fmt.Println"
		fmt.Println(k)
	}

	for k := range m { // want "writes output via Write"
		w.Write([]byte(k))
	}

	last := ""
	for k := range m { // want "assigns last .declared outside the loop. in iteration order"
		last = k
	}

	joined := ""
	for k := range m { // want "concatenates onto joined in iteration order"
		joined += k
	}

	sum := 0.0
	for _, v := range m { // want "accumulates floating point into sum"
		sum += float64(v)
	}

	//revtr:unordered suppression path: body is order-sensitive on purpose
	for k := range m {
		last = k
	}

	for range m { // want "returns from inside the loop"
		return last, total
	}
	_ = unsorted
	_ = joined
	_ = sum
	return last, total
}
