package detpath_test

import (
	"testing"

	"revtr/internal/lint/detpath"
	"revtr/internal/lint/linttest"
)

func TestDeterministicPackage(t *testing.T) {
	linttest.Run(t, "testdata", "det", detpath.Analyzer)
}

func TestPlainPackage(t *testing.T) {
	linttest.Run(t, "testdata", "plain", detpath.Analyzer)
}

func TestIsDeterministic(t *testing.T) {
	for path, want := range map[string]bool{
		"revtr/internal/netsim":        true,
		"revtr/internal/netsim/faults": true,
		"revtr/internal/probe":         true,
		"revtr/internal/eval":          true,
		"revtr/internal/service":       false,
		"revtr/internal/obs":           false,
		"revtr/cmd/revtr-campaign":     false,
		"revtr/internal/netsimx":       false, // prefix must end at a path boundary
	} {
		if got := detpath.IsDeterministic(path); got != want {
			t.Errorf("IsDeterministic(%q) = %v, want %v", path, got, want)
		}
	}
}
