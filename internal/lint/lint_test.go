package lint_test

import (
	"os"
	"path/filepath"
	"slices"
	"testing"

	"revtr/internal/lint"
)

// TestRepoIsClean is the suite's meta-test: the module itself must lint
// clean under all seven analyzers — the per-package four (detpath,
// ctxflow, obsnames, locksafe) and the module-wide flow three
// (lockorder, suspendsafe, spawnbound) — so `make lint` (and the lint
// step of `make ci`) stays a zero-findings gate. Any new wall-clock
// read, global rand draw, unsorted map range, context/metrics/lock
// violation, lock-order inversion, lock held across a suspension
// point, or unbounded goroutine fails here first, with the same
// message revtr-lint prints.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("lint sweep type-checks the whole module; skipped in -short")
	}
	want := []string{"detpath", "ctxflow", "obsnames", "locksafe", "lockorder", "suspendsafe", "spawnbound"}
	if got := lint.Names(); !slices.Equal(got, want) {
		t.Fatalf("lint.Names() = %v, want %v", got, want)
	}
	root, err := moduleRoot()
	if err != nil {
		t.Fatal(err)
	}
	findings, err := lint.Run(root, "./...")
	if err != nil {
		t.Fatalf("lint.Run: %v", err)
	}
	for _, f := range findings {
		t.Errorf("%s", f.String())
	}
}

// moduleRoot walks up from the test's working directory to go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", os.ErrNotExist
		}
		dir = parent
	}
}
