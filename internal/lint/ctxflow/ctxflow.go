// Package ctxflow enforces the context contract established in PR 2:
// cancellation flows from the caller down through every layer that
// issues probes or blocks. Three rules, applied to every non-main,
// non-test package:
//
//  1. An exported function or method that takes a context.Context must
//     take it as the first parameter.
//
//  2. An exported function or method that issues context-aware work
//     (calls anything whose first parameter is a context.Context) or
//     blocks (channel operations, select, sync.WaitGroup.Wait,
//     sync.Cond.Wait, time.Sleep) must itself take a context.Context.
//
//  3. context.Background() and context.TODO() must not be synthesized
//     outside package main and tests: minting a fresh context severs
//     the caller's cancellation. The one allowed shape is nil-context
//     normalization at an API boundary:
//
//     if ctx == nil {
//     ctx = context.Background()
//     }
//
// which preserves the caller's context whenever one was provided.
package ctxflow

import (
	"go/ast"
	"go/token"
	"go/types"

	"revtr/internal/lint/analysis"
)

// Analyzer is the ctxflow analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc:  "exported probe-issuing/blocking functions take ctx first; context.Background only in main, tests, and nil-normalization",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Name() == "main" {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkSignature(pass, fd)
		}
		checkBackground(pass, f)
	}
	return nil
}

// isContext reports whether t is context.Context.
func isContext(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// exported reports whether fd is part of the package's exported API
// (exported name; for methods, an exported receiver type too).
func exported(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	if !fd.Name.IsExported() {
		return false
	}
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return true
	}
	t := pass.Info.TypeOf(fd.Recv.List[0].Type)
	if t == nil {
		return true
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Exported()
	}
	return true
}

func checkSignature(pass *analysis.Pass, fd *ast.FuncDecl) {
	if !exported(pass, fd) {
		return
	}
	obj, _ := pass.Info.Defs[fd.Name].(*types.Func)
	if obj == nil {
		return
	}
	sig := obj.Type().(*types.Signature)
	params := sig.Params()
	hasCtx := false
	for i := 0; i < params.Len(); i++ {
		if isContext(params.At(i).Type()) {
			hasCtx = true
			if i != 0 {
				pass.Reportf(fd.Name.Pos(),
					"exported %s takes context.Context as parameter %d; the context contract requires it first", fd.Name.Name, i+1)
			}
		}
	}
	if hasCtx {
		return
	}
	if why := issuesOrBlocks(pass, fd.Body); why != "" {
		pass.Reportf(fd.Name.Pos(),
			"exported %s %s but takes no context.Context; add ctx as the first parameter so callers can cancel it", fd.Name.Name, why)
	}
}

// issuesOrBlocks scans the body for probe-issuing calls (any callee whose
// first parameter is a context.Context, at any closure depth — work
// started in a goroutine still needs the caller's context) and for
// direct blocking operations (top level only: blocking inside a spawned
// goroutine does not block the exported caller).
func issuesOrBlocks(pass *analysis.Pass, body *ast.BlockStmt) string {
	why := ""
	depth := 0
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		if why != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			depth++
			ast.Inspect(n.Body, visit)
			depth--
			return false
		case *ast.CallExpr:
			if fn := analysis.CalleeFunc(pass.Info, n); fn != nil {
				if analysis.IsPkgFunc(fn, "time", "Sleep") {
					if depth == 0 {
						why = "blocks (time.Sleep)"
					}
					return true
				}
				if analysis.IsPkgFunc(fn, "sync", "Wait") {
					if depth == 0 {
						why = "blocks (sync." + recvTypeName(fn) + ".Wait)"
					}
					return true
				}
				if sig, ok := fn.Type().(*types.Signature); ok {
					if p := sig.Params(); p.Len() > 0 && isContext(p.At(0).Type()) {
						why = "issues context-aware work (calls " + fn.Name() + ")"
					}
				}
			}
		case *ast.SendStmt:
			if depth == 0 {
				why = "blocks (channel send)"
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && depth == 0 {
				why = "blocks (channel receive)"
			}
		case *ast.SelectStmt:
			if depth == 0 {
				why = "blocks (select)"
			}
		}
		return true
	}
	ast.Inspect(body, visit)
	return why
}

func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "?"
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return t.String()
}

// checkBackground flags context.Background()/TODO() synthesis outside
// the nil-normalization idiom.
func checkBackground(pass *analysis.Pass, f *ast.File) {
	analysis.WalkStack(f, func(n ast.Node, stack []ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		fn := analysis.CalleeFunc(pass.Info, call)
		if !analysis.IsPkgFunc(fn, "context", "Background", "TODO") {
			return
		}
		if fn.Name() == "Background" && isNilNormalization(pass, call, stack) {
			return
		}
		pass.Reportf(call.Pos(),
			"context.%s() synthesized outside main/tests severs the caller's cancellation; thread the caller's ctx through (or normalize only via `if ctx == nil { ctx = context.Background() }`)", fn.Name())
	})
}

// isNilNormalization matches `if x == nil { x = context.Background() }`.
func isNilNormalization(pass *analysis.Pass, call *ast.CallExpr, stack []ast.Node) bool {
	// stack: ... IfStmt BlockStmt AssignStmt CallExpr
	if len(stack) < 4 {
		return false
	}
	as, ok := stack[len(stack)-2].(*ast.AssignStmt)
	if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 || as.Rhs[0] != call {
		return false
	}
	lhs, ok := ast.Unparen(as.Lhs[0]).(*ast.Ident)
	if !ok {
		return false
	}
	ifStmt, ok := stack[len(stack)-4].(*ast.IfStmt)
	if !ok {
		return false
	}
	cond, ok := ast.Unparen(ifStmt.Cond).(*ast.BinaryExpr)
	if !ok || cond.Op != token.EQL {
		return false
	}
	x, y := ast.Unparen(cond.X), ast.Unparen(cond.Y)
	for _, pair := range [2][2]ast.Expr{{x, y}, {y, x}} {
		id, ok := pair[0].(*ast.Ident)
		if !ok {
			continue
		}
		nilIdent, ok := pair[1].(*ast.Ident)
		if !ok || nilIdent.Name != "nil" {
			continue
		}
		if pass.Info.ObjectOf(id) == pass.Info.ObjectOf(lhs) {
			return true
		}
	}
	return false
}
