package ctxflow_test

import (
	"testing"

	"revtr/internal/lint/ctxflow"
	"revtr/internal/lint/linttest"
)

func TestCtxflow(t *testing.T) {
	linttest.Run(t, "testdata", "ctxpkg", ctxflow.Analyzer)
}
