// Package ctxpkg exercises the ctxflow analyzer.
package ctxpkg

import (
	"context"
	"sync"
	"time"
)

// MeasureWith takes ctx first: the contract shape.
func MeasureWith(ctx context.Context, target string) error {
	return issue(ctx, target)
}

// MeasureLate takes ctx, but not first.
func MeasureLate(target string, ctx context.Context) error { // want "takes context.Context as parameter 2"
	return issue(ctx, target)
}

// MeasureNone issues context-aware work without accepting a context.
func MeasureNone(target string) error { // want "issues context-aware work .calls issue. but takes no context.Context"
	return issue(context.TODO(), target) // want "context.TODO.. synthesized outside main/tests"
}

// SleepyExported blocks directly without a context.
func SleepyExported() { // want "blocks .time.Sleep. but takes no context.Context"
	time.Sleep(time.Millisecond)
}

// WaitExported blocks on a WaitGroup without a context.
func WaitExported(wg *sync.WaitGroup) { // want "blocks .sync.WaitGroup.Wait. but takes no context.Context"
	wg.Wait()
}

// RecvExported blocks on a channel receive without a context.
func RecvExported(ch chan int) int { // want "blocks .channel receive. but takes no context.Context"
	return <-ch
}

// SpawnOnly starts a goroutine that blocks; the exported caller itself
// never blocks, so no context is demanded for the blocking alone.
func SpawnOnly(ch chan int) {
	go func() {
		<-ch
	}()
}

// Normalize is the one sanctioned context.Background shape.
func Normalize(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	return issue(ctx, "x")
}

// Synthesize severs the caller's cancellation.
func Synthesize(ctx context.Context) error {
	ctx = context.Background() // want "context.Background.. synthesized outside main/tests"
	return issue(ctx, "x")
}

// pure is unexported and exempt from the signature rules.
func pure(target string) error {
	return issue(context.Background(), target) // want "context.Background.. synthesized outside main/tests"
}

// issue stands in for the probe layer: ctx-first work.
func issue(ctx context.Context, target string) error {
	_ = ctx
	_ = target
	return nil
}

// hidden is an unexported type: methods on it are not package API.
type hidden struct{}

// Sleep on an unexported receiver is exempt.
func (hidden) Sleep() { time.Sleep(time.Millisecond) }

// Visible is exported: its methods are package API.
type Visible struct{}

// Block is an exported method on an exported type.
func (Visible) Block() { // want "blocks .select. but takes no context.Context"
	select {}
}
