// Package linttest runs one analyzer over a testdata package and checks
// its diagnostics against `// want "regexp"` comments, mirroring
// golang.org/x/tools/go/analysis/analysistest: every want comment must be
// matched by a diagnostic on its line, and every diagnostic must be
// expected by a want comment. Testdata packages live under
// testdata/src/<name> and are real, compiling packages of this module,
// so the analyzers are exercised against genuine type information.
//
// Run exercises a per-package analyzer against one fixture package;
// RunModule exercises a module analyzer (flow.Analyzer) against every
// package under testdata/src at once — fixtures may import each other by
// their full module paths, which is how the lockorder suite builds
// cross-package acquisition chains.
package linttest

import (
	"go/ast"
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"revtr/internal/lint/analysis"
	"revtr/internal/lint/flow"
	"revtr/internal/lint/loader"
)

var wantRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// Run loads the package rooted at testdata/src/<pkg> (relative to the
// calling test's directory) and asserts the analyzer's diagnostics match
// the package's want comments.
func Run(t *testing.T, testdata, pkg string, a *analysis.Analyzer) {
	t.Helper()
	dir := filepath.Join(testdata, "src", pkg)
	pkgs, err := loader.Load(dir, ".")
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loading %s: got %d packages, want 1", dir, len(pkgs))
	}
	p := pkgs[0]

	var got []analysis.Finding
	pass := analysis.NewPass(a, p.Fset, p.Files, p.Types, p.Info, func(d analysis.Diagnostic) {
		got = append(got, analysis.Finding{
			Position: p.Fset.Position(d.Pos),
			Analyzer: a.Name,
			Message:  d.Message,
		})
	})
	if err := a.Run(pass); err != nil {
		t.Fatalf("%s: %v", a.Name, err)
	}
	check(t, pkgs, got)
}

// RunModule loads every package under testdata/src (relative to the
// calling test's directory) in one loader call, builds the flow Program,
// runs the module analyzer, and asserts its diagnostics match the want
// comments across all fixture packages.
func RunModule(t *testing.T, testdata string, a *flow.Analyzer) {
	t.Helper()
	dir := filepath.Join(testdata, "src")
	pkgs, err := loader.Load(dir, "./...")
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("loading %s: no packages", dir)
	}
	prog := flow.BuildProgram(pkgs)

	var got []analysis.Finding
	pass := flow.NewPass(a, prog, func(d analysis.Diagnostic) {
		got = append(got, analysis.Finding{
			Position: prog.Fset.Position(d.Pos),
			Analyzer: a.Name,
			Message:  d.Message,
		})
	})
	if err := a.Run(pass); err != nil {
		t.Fatalf("%s: %v", a.Name, err)
	}
	check(t, pkgs, got)
}

// check matches diagnostics against the want comments of every loaded
// package.
func check(t *testing.T, pkgs []*loader.Package, got []analysis.Finding) {
	t.Helper()
	type key struct {
		file string
		line int
	}
	wants := map[key][]*regexp.Regexp{}
	for _, p := range pkgs {
		for _, f := range p.Files {
			collectWants(t, p.Fset, f, func(file string, line int, re *regexp.Regexp) {
				k := key{file, line}
				wants[k] = append(wants[k], re)
			})
		}
	}

	matched := map[key][]bool{}
	for k, res := range wants {
		matched[k] = make([]bool, len(res))
	}
	for _, f := range got {
		k := key{f.Position.Filename, f.Position.Line}
		ok := false
		for i, re := range wants[k] {
			if matched[k][i] {
				continue
			}
			if re.MatchString(f.Message) {
				matched[k][i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic at %s:%d: %s", relName(f.Position.Filename), f.Position.Line, f.Message)
		}
	}
	for k, res := range wants {
		for i, re := range res {
			if !matched[k][i] {
				t.Errorf("missing diagnostic at %s:%d matching %q", relName(k.file), k.line, re)
			}
		}
	}
}

func relName(path string) string { return filepath.Base(path) }

// collectWants reports each `// want "re" ...` comment as (file, line,
// regexp) triples for the line the comment sits on.
func collectWants(t *testing.T, fset *token.FileSet, f *ast.File, emit func(string, int, *regexp.Regexp)) {
	t.Helper()
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			if !strings.HasPrefix(text, "want ") {
				continue
			}
			pos := fset.Position(c.Pos())
			for _, m := range wantRE.FindAllString(text[len("want "):], -1) {
				pat, err := strconv.Unquote(m)
				if err != nil {
					t.Fatalf("%s:%d: bad want pattern %s: %v", relName(pos.Filename), pos.Line, m, err)
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", relName(pos.Filename), pos.Line, pat, err)
				}
				emit(pos.Filename, pos.Line, re)
			}
		}
	}
}
