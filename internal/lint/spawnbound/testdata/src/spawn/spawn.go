// Package spawn exercises spawnbound: every go statement must be
// WaitGroup-tracked or context-cancelled on a visible path, or carry a
// //revtr:spawnbound justification.
package spawn

import (
	"context"
	"sync"
)

// Naked leaks: nothing bounds the goroutine's lifetime.
func Naked(work chan int) {
	go func() { // want "goroutine has no provable lifetime bound"
		for range work {
		}
	}()
}

// Tracked is WaitGroup-bounded.
func Tracked(wg *sync.WaitGroup, work chan int) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		for range work {
		}
	}()
}

// Ctxed observes cancellation.
func Ctxed(ctx context.Context, work chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case <-work:
			}
		}
	}()
}

// drain never checks for cancellation.
func drain(work chan int) {
	for range work {
	}
}

// NamedNaked spawns an unbounded named function.
func NamedNaked(work chan int) {
	go drain(work) // want "goroutine has no provable lifetime bound"
}

// loop polls ctx.Err, so spawning it is bounded.
func loop(ctx context.Context, work chan int) {
	for ctx.Err() == nil {
		select {
		case <-work:
		default:
			return
		}
	}
}

// NamedCtx spawns a named function whose body observes cancellation.
func NamedCtx(ctx context.Context, work chan int) {
	go loop(ctx, work)
}

// Excused documents a deliberately process-long goroutine.
func Excused(work chan int) {
	go drain(work) //revtr:spawnbound fixture: drains until process exit by design
}
