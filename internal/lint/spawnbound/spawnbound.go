// Package spawnbound requires every `go` statement to have a provably
// bounded lifetime: the spawned body (or a function it calls) must be
// WaitGroup-tracked (calls Done, or blocks in Wait on a tracked group)
// or context-cancelled (observes ctx.Done() or ctx.Err() on a path the
// CFG can see). A goroutine with neither is a leak under sustained
// load: the 10k-in-flight engine benchmarks assume every measurement's
// worker count is bounded by the pool, not by accumulation.
//
// `package main` is exempt, matching ctxflow: a command's event loops
// live exactly as long as the process. A deliberate unbounded spawn is
// excused with //revtr:spawnbound <why> on the go statement's line.
package spawnbound

import (
	"go/ast"
	"go/types"

	"revtr/internal/lint/analysis"
	"revtr/internal/lint/directive"
	"revtr/internal/lint/flow"
	"revtr/internal/lint/loader"
)

// Analyzer is the spawnbound analyzer.
var Analyzer = &flow.Analyzer{
	Name: "spawnbound",
	Doc:  "every goroutine must be WaitGroup-tracked or ctx-cancelled (provably bounded lifetime)",
	Run:  run,
}

func run(pass *flow.Pass) error {
	prog := pass.Prog
	b := &bounder{prog: prog, memo: map[*types.Func]int{}}
	for _, pkg := range prog.Pkgs {
		if pkg.Name == "main" {
			continue
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				if b.goBounded(pkg, g) || prog.Allows(g.Pos(), directive.SpawnBound) {
					return true
				}
				pass.ReportfDir(g.Pos(), directive.SpawnBound,
					"goroutine has no provable lifetime bound (no WaitGroup Done/Wait and no ctx.Done/ctx.Err on any visible path); track it with the pool, a WaitGroup, or a context, or annotate //revtr:spawnbound <why>")
				return true
			})
		}
	}
	return nil
}

type bounder struct {
	prog *flow.Program
	// memo caches per-function boundedness: 0 unknown, 1 in progress
	// (treated as unbounded for the recursion), 2 bounded, 3 unbounded.
	memo map[*types.Func]int
}

// goBounded reports whether the spawned call's body proves a bound.
func (b *bounder) goBounded(pkg *loader.Package, g *ast.GoStmt) bool {
	if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
		return b.bodyBounded(pkg, lit.Body)
	}
	callee := b.prog.Canon(analysis.CalleeFunc(pkg.Info, g.Call))
	if callee == nil {
		return false // a function value: nothing to inspect
	}
	return b.funcBounded(callee)
}

// funcBounded reports whether calling fn reaches a lifetime-bounding
// operation (transitively through the module-local call graph).
func (b *bounder) funcBounded(fn *types.Func) bool {
	if isBoundingFunc(fn) {
		return true
	}
	switch b.memo[fn] {
	case 1, 3:
		return false
	case 2:
		return true
	}
	fi := b.prog.Funcs[fn]
	if fi == nil {
		return false
	}
	b.memo[fn] = 1
	ok := b.bodyBounded(fi.Pkg, fi.Decl.Body)
	if ok {
		b.memo[fn] = 2
	} else {
		b.memo[fn] = 3
	}
	return ok
}

// bodyBounded scans one body for a bounding operation. Nested go
// statements are skipped (each spawn is judged on its own); nested
// function literals are included (a deferred closure's wg.Done tracks
// this goroutine).
func (b *bounder) bodyBounded(pkg *loader.Package, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, isGo := n.(*ast.GoStmt); isGo {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := b.prog.Canon(analysis.CalleeFunc(pkg.Info, call))
		if callee == nil {
			return true
		}
		if isBoundingFunc(callee) || (b.prog.Funcs[callee] != nil && b.funcBounded(callee)) {
			found = true
			return false
		}
		return true
	})
	return found
}

// isBoundingFunc recognizes the primitive bounding operations:
// (*sync.WaitGroup).Done / Wait and context.Context's Done / Err.
func isBoundingFunc(fn *types.Func) bool {
	if fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "sync":
		if fn.Name() != "Done" && fn.Name() != "Wait" {
			return false
		}
		return receiverNamed(fn) == "WaitGroup"
	case "context":
		return fn.Name() == "Done" || fn.Name() == "Err"
	}
	return false
}

func receiverNamed(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}
