package spawnbound_test

import (
	"testing"

	"revtr/internal/lint/linttest"
	"revtr/internal/lint/spawnbound"
)

// TestSpawnBound proves naked go statements (literal and named) are
// flagged, WaitGroup- and context-bounded spawns pass (including a
// bound proven transitively in the spawned callee), and
// //revtr:spawnbound suppresses with a justification.
func TestSpawnBound(t *testing.T) {
	linttest.RunModule(t, "testdata", spawnbound.Analyzer)
}
