// Package analysis is a minimal, dependency-free re-implementation of
// the golang.org/x/tools/go/analysis surface the revtr-lint suite needs:
// an Analyzer runs over one type-checked package at a time and reports
// position-tagged diagnostics. The container this repo builds in has no
// module proxy access, so the framework is grown from the standard
// library (go/ast, go/types) instead of imported.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one named, self-contained static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics (e.g. "detpath").
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's non-test source files.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// Info holds the type-checker's expression and identifier facts.
	Info *types.Info

	report func(Diagnostic)
}

// NewPass assembles a pass; report receives every diagnostic.
func NewPass(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, report func(Diagnostic)) *Pass {
	return &Pass{Analyzer: a, Fset: fset, Files: files, Pkg: pkg, Info: info, report: report}
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// ReportfDir records a diagnostic at pos that the named //revtr:
// directive kind would suppress; the kind rides along so machine-read
// output (revtr-lint -json) can say which escape hatch applies.
func (p *Pass) ReportfDir(pos token.Pos, dir, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Directive: dir, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
	// Directive, when non-empty, names the //revtr: directive kind that
	// suppresses diagnostics of this sort.
	Directive string
}

// Finding is a rendered diagnostic, ready for printing or comparison.
type Finding struct {
	Position  token.Position
	Analyzer  string
	Message   string
	Directive string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Position, f.Analyzer, f.Message)
}

// SortFindings orders findings by file, line, column, then analyzer, so
// suite output is deterministic (the lint tool practices what it
// preaches).
func SortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// CalleeFunc resolves the *types.Func a call expression invokes, or nil
// for calls through function values, builtins, and type conversions.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// IsPkgFunc reports whether fn is the named package-level function (or
// method, when fn has a receiver) of the package with the given path.
func IsPkgFunc(fn *types.Func, pkgPath string, names ...string) bool {
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return false
	}
	for _, n := range names {
		if fn.Name() == n {
			return true
		}
	}
	return false
}

// WalkStack traverses the file like ast.Inspect but hands visit the full
// ancestor stack (stack[len(stack)-1] == n).
func WalkStack(file *ast.File, visit func(n ast.Node, stack []ast.Node)) {
	var stack []ast.Node
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		visit(n, stack)
		return true
	})
}
