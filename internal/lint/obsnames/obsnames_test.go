package obsnames_test

import (
	"testing"

	"revtr/internal/lint/linttest"
	"revtr/internal/lint/obsnames"
)

func TestObsnames(t *testing.T) {
	linttest.Run(t, "testdata", "obsuser", obsnames.Analyzer)
}
