// Package obsuser exercises the obsnames analyzer against the real
// internal/obs API.
package obsuser

import "revtr/internal/obs"

const histName = "stage_wall_seconds" // named constants are compile-time too

func registerAll(r *obs.Registry, dynamic string, site string) {
	r.Counter("probes_total").Inc()
	r.Gauge("inflight").Set(1)
	r.Histogram(histName, nil).Observe(1)

	r.Counter(dynamic).Inc() // want "must be a compile-time string constant"

	r.Counter("BadName").Inc()       // want "does not match the metrics contract"
	r.Gauge("2starts_digit").Set(0)  // want "does not match the metrics contract"
	r.Counter("trailing_").Inc()     // registered: grammar allows interior underscores only at word joins
	r.Histogram("x", nil).Observe(0) // single letter is within the grammar

	// Label-wrapped names: base validated, exempt from the once-per-package rule.
	r.Counter(obs.Label("site_probes_total", "site", site)).Inc()
	r.Counter(obs.Label("site_probes_total", "site", "other")).Inc()
	_ = obs.Label(dynamic, "k", "v")     // want "must be a compile-time string constant"
	_ = obs.Label("Bad-Label", "k", "v") // want "does not match the metrics contract"
}

func registerAgain(r *obs.Registry) {
	r.Gauge("inflight").Set(2) // want "already registered in this package"
}

// The batch-scheduler / durable-store metric families (internal/sched,
// internal/store): plain counters and gauges, a _bytes-suffixed gauge,
// a dispatch-latency histogram, and the labelled per-state counter.
func registerBatchFamily(r *obs.Registry, state string) {
	r.Gauge("sched_queue_depth").Set(0)
	r.Counter("sched_coalesced_total").Inc()
	r.Counter("sched_shed_total").Inc()
	r.Gauge("store_wal_bytes").Set(0)
	r.Histogram("sched_dispatch_wall_us", nil).Observe(1)
	r.Counter(obs.Label("sched_jobs_total", "state", state)).Inc()
	r.Counter(obs.Label("sched_jobs_total", "state", "coalesced")).Inc() // labelled: exempt from once-per-package
}

func registerBatchFamilyAgain(r *obs.Registry) {
	r.Gauge("store_wal_bytes").Set(1) // want "already registered in this package"
}

// The segment-memoization metric family (internal/core + the segment
// store): splice-path counters published by the engine and the store.
func registerSegmentFamily(r *obs.Registry) {
	r.Counter("engine_segment_hits_total").Inc()
	r.Counter("engine_segment_splices_total").Inc()
	r.Counter("engine_segment_stale_evictions_total").Inc()
}

// The progress-streaming metric family (internal/stream): subscriber
// gauge, delivery/gap counters, and the labelled per-kind event and
// per-reason drop counters the broker pre-registers.
func registerStreamFamily(r *obs.Registry, kind, reason string) {
	r.Gauge("stream_subscribers").Set(0)
	r.Counter("stream_delivered_total").Inc()
	r.Counter("stream_gap_events_total").Inc()
	r.Counter(obs.Label("stream_events_total", "kind", kind)).Inc()
	r.Counter(obs.Label("stream_events_total", "kind", "hop")).Inc() // labelled: exempt from once-per-package
	r.Counter(obs.Label("stream_dropped_total", "reason", reason)).Inc()
}

func registerStreamFamilyAgain(r *obs.Registry) {
	r.Gauge("stream_subscribers").Set(1) // want "already registered in this package"
}
