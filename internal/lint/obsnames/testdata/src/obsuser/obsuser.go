// Package obsuser exercises the obsnames analyzer against the real
// internal/obs API.
package obsuser

import "revtr/internal/obs"

const histName = "stage_wall_seconds" // named constants are compile-time too

func registerAll(r *obs.Registry, dynamic string, site string) {
	r.Counter("probes_total").Inc()
	r.Gauge("inflight").Set(1)
	r.Histogram(histName, nil).Observe(1)

	r.Counter(dynamic).Inc() // want "must be a compile-time string constant"

	r.Counter("BadName").Inc()       // want "does not match the metrics contract"
	r.Gauge("2starts_digit").Set(0)  // want "does not match the metrics contract"
	r.Counter("trailing_").Inc()     // registered: grammar allows interior underscores only at word joins
	r.Histogram("x", nil).Observe(0) // single letter is within the grammar

	// Label-wrapped names: base validated, exempt from the once-per-package rule.
	r.Counter(obs.Label("site_probes_total", "site", site)).Inc()
	r.Counter(obs.Label("site_probes_total", "site", "other")).Inc()
	_ = obs.Label(dynamic, "k", "v")     // want "must be a compile-time string constant"
	_ = obs.Label("Bad-Label", "k", "v") // want "does not match the metrics contract"
}

func registerAgain(r *obs.Registry) {
	r.Gauge("inflight").Set(2) // want "already registered in this package"
}
