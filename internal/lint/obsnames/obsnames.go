// Package obsnames enforces the metrics contract of internal/obs:
// metric names passed to Registry.Counter / Registry.Gauge /
// Registry.Histogram (and the base name passed to obs.Label) must be
// compile-time string constants matching
//
//	^[a-z][a-z0-9_]*(_total|_seconds|_bytes)?$
//
// and each plain (unlabelled) name must be registered from exactly one
// callsite per package — duplicated registration literals drift apart
// silently; hoist the handle and share it. Label-wrapped names are
// exempt from the single-callsite rule because the label values vary at
// runtime, but their base name is validated the same way.
package obsnames

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
	"sort"

	"revtr/internal/lint/analysis"
)

const obsPath = "revtr/internal/obs"

var nameRE = regexp.MustCompile(`^[a-z][a-z0-9_]*(_total|_seconds|_bytes)?$`)

// Analyzer is the obsnames analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "obsnames",
	Doc:  "obs metric names are compile-time constants, snake_case, and registered once per package",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	type site struct {
		pos  token.Pos
		kind string
	}
	registered := map[string][]site{} // metric name -> registration sites

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			fn := analysis.CalleeFunc(pass.Info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != obsPath {
				return true
			}
			sig, _ := fn.Type().(*types.Signature)
			isMethod := sig != nil && sig.Recv() != nil
			switch {
			case isMethod && (fn.Name() == "Counter" || fn.Name() == "Gauge" || fn.Name() == "Histogram"):
				arg := ast.Unparen(call.Args[0])
				if inner, ok := arg.(*ast.CallExpr); ok {
					if lf := analysis.CalleeFunc(pass.Info, inner); analysis.IsPkgFunc(lf, obsPath, "Label") {
						return true // obs.Label call: validated on its own visit
					}
				}
				name, ok := constName(pass, call, arg, fn.Name())
				if ok {
					registered[name] = append(registered[name], site{call.Pos(), fn.Name()})
				}
			case !isMethod && fn.Name() == "Label":
				constName(pass, call, ast.Unparen(call.Args[0]), "Label")
			}
			return true
		})
	}

	names := make([]string, 0, len(registered))
	for name := range registered {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		sites := registered[name]
		if len(sites) < 2 {
			continue
		}
		sort.Slice(sites, func(i, j int) bool { return sites[i].pos < sites[j].pos })
		first := pass.Fset.Position(sites[0].pos)
		for _, s := range sites[1:] {
			pass.Reportf(s.pos,
				"metric %q is already registered in this package at %s:%d; register it once and share the *obs.%s handle",
				name, first.Filename, first.Line, s.kind)
		}
	}
	return nil
}

// constName validates the metric-name argument and returns its constant
// value. It reports a diagnostic (and returns ok=false) for non-constant
// names and names that fail the grammar.
func constName(pass *analysis.Pass, call *ast.CallExpr, arg ast.Expr, accessor string) (string, bool) {
	tv, ok := pass.Info.Types[arg]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		pass.Reportf(call.Pos(),
			"metric name passed to obs %s must be a compile-time string constant so the metric namespace is auditable statically", accessor)
		return "", false
	}
	name := constant.StringVal(tv.Value)
	if !nameRE.MatchString(name) {
		pass.Reportf(call.Pos(),
			"metric name %q does not match the metrics contract %s", name, nameRE.String())
		return "", false
	}
	return name, true
}
