// Package locksafe extends `go vet copylocks` with two repo-specific
// mutex-hygiene checks:
//
//  1. Escaped critical sections: a function that calls mu.Lock() (or
//     RLock) without a deferred unlock must unlock on every return path.
//     The analyzer flags any return statement reachable between a Lock
//     and its matching Unlock with no intervening Unlock — the shape
//     that leaks a held mutex when an early return (or a newly added
//     one) sneaks into a manually bracketed critical section.
//  2. Guard leaks: a method of a struct that embeds or declares a
//     sync.Mutex/RWMutex must not return a pointer to one of the
//     struct's other fields — handing out &s.field lets callers mutate
//     guarded state without the lock.
//
// The analysis is linear over source positions, not path-sensitive: the
// manual unlock-before-every-return idiom passes, and conditional locks
// may rarely over-report — prefer defer, which is also faster to reason
// about in review.
package locksafe

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"revtr/internal/lint/analysis"
)

// Analyzer is the locksafe analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "locksafe",
	Doc:  "returns must not escape held mutexes; methods must not return pointers to mutex-guarded fields",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFuncBody(pass, fd.Body)
			checkGuardedFieldReturn(pass, fd)
		}
	}
	return nil
}

// mutexMethod resolves a call to a sync.Mutex / sync.RWMutex lock or
// unlock method, returning the lock-expression key and the lock mode
// ("w" for Lock/Unlock/TryLock, "r" for RLock/RUnlock/TryRLock).
func mutexMethod(pass *analysis.Pass, call *ast.CallExpr) (key, mode, name string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", "", false
	}
	fn := analysis.CalleeFunc(pass.Info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", "", false
	}
	switch fn.Name() {
	case "Lock", "Unlock", "TryLock":
		mode = "w"
	case "RLock", "RUnlock", "TryRLock":
		mode = "r"
	default:
		return "", "", "", false
	}
	return types.ExprString(sel.X), mode, fn.Name(), true
}

// tryLockCond recognizes an if condition of the shape `mu.TryLock()` or
// `!mu.TryLock()` (and the TryRLock variants), returning the lock key
// and whether the condition is negated.
func tryLockCond(pass *analysis.Pass, cond ast.Expr) (key, render string, negated, ok bool) {
	e := ast.Unparen(cond)
	if u, isNot := e.(*ast.UnaryExpr); isNot && u.Op == token.NOT {
		negated = true
		e = ast.Unparen(u.X)
	}
	call, isCall := e.(*ast.CallExpr)
	if !isCall {
		return "", "", false, false
	}
	k, mode, name, isMu := mutexMethod(pass, call)
	if !isMu || (name != "TryLock" && name != "TryRLock") {
		return "", "", false, false
	}
	return k + "\x00" + mode, k, negated, true
}

// terminates reports whether a block's last statement unconditionally
// leaves the enclosing function or loop (return / break / continue /
// goto / panic-shaped call is left out on purpose: only the syntactic
// terminators the linear simulation can trust).
func terminates(body *ast.BlockStmt) bool {
	if len(body.List) == 0 {
		return false
	}
	switch s := body.List[len(body.List)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.BranchStmt:
		return s.Tok == token.BREAK || s.Tok == token.CONTINUE || s.Tok == token.GOTO
	}
	return false
}

type lockEvent struct {
	pos    token.Pos
	key    string // lock expression + mode
	render string // lock expression for messages
	kind   string // "lock", "unlock", "return"
}

// checkFuncBody simulates lock state linearly over one function body
// (closures are checked as their own bodies). The state is a hold COUNT
// per lock-and-mode, not a boolean: sync.RWMutex read locks are
// recursive, so a body that takes a second RLock under a deferred
// RUnlock holds one real lock at return — a boolean model (what this
// analyzer used before) cancels them and misses the leak. At each
// return, a key whose count exceeds its deferred-unlock count is held.
//
// TryLock/TryRLock used as an if condition is modelled on the branch
// where it succeeded: `if mu.TryLock() { ... }` holds the lock only
// inside the body (with a synthetic release at the closing brace), and
// `if !mu.TryLock() { return }` holds it from the statement after the
// if. Any other TryLock shape is untracked, as before.
func checkFuncBody(pass *analysis.Pass, body *ast.BlockStmt) {
	var events []lockEvent
	deferred := map[string]int{} // key -> number of deferred unlocks
	renders := map[string]string{}

	record := func(pos token.Pos, key, render, kind string) {
		renders[key] = render
		events = append(events, lockEvent{pos, key, render, kind})
	}

	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			checkFuncBody(pass, n.Body)
			return false
		case *ast.DeferStmt:
			if key, mode, name, ok := mutexMethod(pass, n.Call); ok && (name == "Unlock" || name == "RUnlock") {
				deferred[key+"\x00"+mode]++
			} else if lit, isLit := ast.Unparen(n.Call.Fun).(*ast.FuncLit); isLit {
				// A deferred closure is its own scope, but any unlock it
				// performs runs at function exit, so it also counts as a
				// deferred unlock for this body.
				checkFuncBody(pass, lit.Body)
				ast.Inspect(lit.Body, func(m ast.Node) bool {
					if call, isCall := m.(*ast.CallExpr); isCall {
						if key, mode, name, ok := mutexMethod(pass, call); ok && (name == "Unlock" || name == "RUnlock") {
							deferred[key+"\x00"+mode]++
						}
					}
					return true
				})
			}
			return false
		case *ast.IfStmt:
			if key, render, negated, ok := tryLockCond(pass, n.Cond); ok {
				if n.Init != nil {
					ast.Inspect(n.Init, visit)
				}
				if !negated {
					// Held inside the taken branch only: synthetic release
					// at the closing brace catches the merge, real returns
					// inside the body are checked against the hold.
					record(n.Body.Lbrace, key, render, "lock")
					ast.Inspect(n.Body, visit)
					record(n.Body.Rbrace, key, render, "unlock")
					if n.Else != nil {
						ast.Inspect(n.Else, visit)
					}
					return false
				}
				if terminates(n.Body) {
					// `if !mu.TryLock() { return }`: the failure path
					// leaves, so the lock is held from the if statement's
					// end onward.
					ast.Inspect(n.Body, visit)
					record(n.End(), key, render, "lock")
					if n.Else != nil {
						ast.Inspect(n.Else, visit)
					}
					return false
				}
				// A non-terminating failure branch merges held and
				// not-held paths; leave the TryLock untracked.
			}
			return true
		case *ast.CallExpr:
			if key, mode, name, ok := mutexMethod(pass, n); ok {
				switch name {
				case "Unlock", "RUnlock":
					record(n.Pos(), key+"\x00"+mode, key, "unlock")
				case "Lock", "RLock":
					record(n.Pos(), key+"\x00"+mode, key, "lock")
					// TryLock/TryRLock outside a recognized if condition is
					// untracked: its success is unknowable linearly.
				}
			}
		case *ast.ReturnStmt:
			events = append(events, lockEvent{n.Pos(), "", "", "return"})
		}
		return true
	}
	ast.Inspect(body, visit)

	if len(events) == 0 {
		return
	}
	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })

	count := map[string]int{} // key -> current hold depth
	for _, e := range events {
		switch e.kind {
		case "lock":
			count[e.key]++
		case "unlock":
			if count[e.key] > 0 {
				count[e.key]--
			}
		case "return":
			keys := make([]string, 0, len(count))
			for k := range count {
				if count[k] > deferred[k] {
					keys = append(keys, k)
				}
			}
			sort.Strings(keys)
			for _, k := range keys {
				pass.Reportf(e.pos,
					"return while %s is held (no Unlock between the Lock and this return); unlock before returning or use defer %s.Unlock()",
					renders[k], renders[k])
			}
		}
	}
}

// checkGuardedFieldReturn flags `return &recv.field` in methods of
// structs that carry a sync.Mutex/RWMutex field.
func checkGuardedFieldReturn(pass *analysis.Pass, fd *ast.FuncDecl) {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return
	}
	recvName := fd.Recv.List[0].Names[0].Name
	if recvName == "_" {
		return
	}
	recvType := pass.Info.TypeOf(fd.Recv.List[0].Type)
	if recvType == nil {
		return
	}
	if p, ok := recvType.(*types.Pointer); ok {
		recvType = p.Elem()
	}
	st, ok := recvType.Underlying().(*types.Struct)
	if !ok || !hasMutexField(st) {
		return
	}
	recvObj := pass.Info.ObjectOf(fd.Recv.List[0].Names[0])

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			ue, ok := ast.Unparen(res).(*ast.UnaryExpr)
			if !ok || ue.Op != token.AND {
				continue
			}
			sel, ok := ast.Unparen(ue.X).(*ast.SelectorExpr)
			if !ok {
				continue
			}
			base, ok := ast.Unparen(sel.X).(*ast.Ident)
			if !ok || pass.Info.ObjectOf(base) != recvObj {
				continue
			}
			if ft := pass.Info.TypeOf(sel); ft != nil && isSyncType(ft) {
				continue // returning the locker itself (sync.Locker accessor)
			}
			pass.Reportf(ue.Pos(),
				"returning &%s.%s hands out a pointer to a field of mutex-guarded %s; callers can then mutate it without the lock",
				recvName, sel.Sel.Name, recvType.String())
		}
		return true
	})
}

func hasMutexField(st *types.Struct) bool {
	for i := 0; i < st.NumFields(); i++ {
		if isSyncType(st.Field(i).Type()) {
			return true
		}
	}
	return false
}

func isSyncType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}
