// Package locksafe extends `go vet copylocks` with two repo-specific
// mutex-hygiene checks:
//
//  1. Escaped critical sections: a function that calls mu.Lock() (or
//     RLock) without a deferred unlock must unlock on every return path.
//     The analyzer flags any return statement reachable between a Lock
//     and its matching Unlock with no intervening Unlock — the shape
//     that leaks a held mutex when an early return (or a newly added
//     one) sneaks into a manually bracketed critical section.
//  2. Guard leaks: a method of a struct that embeds or declares a
//     sync.Mutex/RWMutex must not return a pointer to one of the
//     struct's other fields — handing out &s.field lets callers mutate
//     guarded state without the lock.
//
// The analysis is linear over source positions, not path-sensitive: the
// manual unlock-before-every-return idiom passes, and conditional locks
// may rarely over-report — prefer defer, which is also faster to reason
// about in review.
package locksafe

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"revtr/internal/lint/analysis"
)

// Analyzer is the locksafe analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "locksafe",
	Doc:  "returns must not escape held mutexes; methods must not return pointers to mutex-guarded fields",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFuncBody(pass, fd.Body)
			checkGuardedFieldReturn(pass, fd)
		}
	}
	return nil
}

// mutexMethod resolves a call to a sync.Mutex / sync.RWMutex lock or
// unlock method, returning the lock-expression key and the lock mode
// ("w" for Lock/Unlock, "r" for RLock/RUnlock).
func mutexMethod(pass *analysis.Pass, call *ast.CallExpr) (key, mode, name string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", "", false
	}
	fn := analysis.CalleeFunc(pass.Info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", "", false
	}
	switch fn.Name() {
	case "Lock", "Unlock":
		mode = "w"
	case "RLock", "RUnlock":
		mode = "r"
	default:
		return "", "", "", false
	}
	return types.ExprString(sel.X), mode, fn.Name(), true
}

type lockEvent struct {
	pos    token.Pos
	key    string // lock expression + mode
	render string // lock expression for messages
	kind   string // "lock", "unlock", "return"
}

// checkFuncBody simulates lock state linearly over one function body
// (closures are checked as their own bodies).
func checkFuncBody(pass *analysis.Pass, body *ast.BlockStmt) {
	var events []lockEvent
	deferred := map[string]bool{}

	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			checkFuncBody(pass, n.Body)
			return false
		case *ast.DeferStmt:
			if key, mode, name, ok := mutexMethod(pass, n.Call); ok && (name == "Unlock" || name == "RUnlock") {
				deferred[key+"\x00"+mode] = true
			} else if lit, isLit := ast.Unparen(n.Call.Fun).(*ast.FuncLit); isLit {
				// A deferred closure is its own scope, but any unlock it
				// performs runs at function exit, so it also counts as a
				// deferred unlock for this body.
				checkFuncBody(pass, lit.Body)
				ast.Inspect(lit.Body, func(m ast.Node) bool {
					if call, isCall := m.(*ast.CallExpr); isCall {
						if key, mode, name, ok := mutexMethod(pass, call); ok && (name == "Unlock" || name == "RUnlock") {
							deferred[key+"\x00"+mode] = true
						}
					}
					return true
				})
			}
			return false
		case *ast.CallExpr:
			if key, mode, name, ok := mutexMethod(pass, n); ok {
				kind := "lock"
				if name == "Unlock" || name == "RUnlock" {
					kind = "unlock"
				}
				events = append(events, lockEvent{n.Pos(), key + "\x00" + mode, key, kind})
			}
		case *ast.ReturnStmt:
			events = append(events, lockEvent{n.Pos(), "", "", "return"})
		}
		return true
	}
	ast.Inspect(body, visit)

	if len(events) == 0 {
		return
	}
	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })

	held := map[string]string{} // key -> render, currently held
	for _, e := range events {
		switch e.kind {
		case "lock":
			if !deferred[e.key] {
				held[e.key] = e.render
			}
		case "unlock":
			delete(held, e.key)
		case "return":
			keys := make([]string, 0, len(held))
			for k := range held {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				pass.Reportf(e.pos,
					"return while %s is held (no Unlock between the Lock and this return); unlock before returning or use defer %s.Unlock()",
					held[k], held[k])
			}
		}
	}
}

// checkGuardedFieldReturn flags `return &recv.field` in methods of
// structs that carry a sync.Mutex/RWMutex field.
func checkGuardedFieldReturn(pass *analysis.Pass, fd *ast.FuncDecl) {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return
	}
	recvName := fd.Recv.List[0].Names[0].Name
	if recvName == "_" {
		return
	}
	recvType := pass.Info.TypeOf(fd.Recv.List[0].Type)
	if recvType == nil {
		return
	}
	if p, ok := recvType.(*types.Pointer); ok {
		recvType = p.Elem()
	}
	st, ok := recvType.Underlying().(*types.Struct)
	if !ok || !hasMutexField(st) {
		return
	}
	recvObj := pass.Info.ObjectOf(fd.Recv.List[0].Names[0])

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			ue, ok := ast.Unparen(res).(*ast.UnaryExpr)
			if !ok || ue.Op != token.AND {
				continue
			}
			sel, ok := ast.Unparen(ue.X).(*ast.SelectorExpr)
			if !ok {
				continue
			}
			base, ok := ast.Unparen(sel.X).(*ast.Ident)
			if !ok || pass.Info.ObjectOf(base) != recvObj {
				continue
			}
			if ft := pass.Info.TypeOf(sel); ft != nil && isSyncType(ft) {
				continue // returning the locker itself (sync.Locker accessor)
			}
			pass.Reportf(ue.Pos(),
				"returning &%s.%s hands out a pointer to a field of mutex-guarded %s; callers can then mutate it without the lock",
				recvName, sel.Sel.Name, recvType.String())
		}
		return true
	})
}

func hasMutexField(st *types.Struct) bool {
	for i := 0; i < st.NumFields(); i++ {
		if isSyncType(st.Field(i).Type()) {
			return true
		}
	}
	return false
}

func isSyncType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}
