package locksafe_test

import (
	"testing"

	"revtr/internal/lint/linttest"
	"revtr/internal/lint/locksafe"
)

func TestLocksafe(t *testing.T) {
	linttest.Run(t, "testdata", "locks", locksafe.Analyzer)
}
