// Package locks exercises the locksafe analyzer.
package locks

import "sync"

type store struct {
	mu    sync.Mutex
	state map[string]int
	hits  int
}

// leakyReturn exits a manually bracketed critical section early.
func (s *store) leakyReturn(k string) int {
	s.mu.Lock()
	v, ok := s.state[k]
	if !ok {
		return -1 // want "return while s.mu is held"
	}
	s.mu.Unlock()
	return v
}

// deferredUnlock is the preferred shape.
func (s *store) deferredUnlock(k string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if v, ok := s.state[k]; ok {
		return v
	}
	return -1
}

// manualUnlockEveryPath unlocks before each return: allowed.
func (s *store) manualUnlockEveryPath(k string) int {
	s.mu.Lock()
	if v, ok := s.state[k]; ok {
		s.mu.Unlock()
		return v
	}
	s.mu.Unlock()
	return -1
}

// deferredClosureUnlock unlocks inside a deferred closure: allowed.
func (s *store) deferredClosureUnlock(k string) int {
	s.mu.Lock()
	defer func() {
		s.hits++
		s.mu.Unlock()
	}()
	if v, ok := s.state[k]; ok {
		return v
	}
	return -1
}

type rw struct {
	mu   sync.RWMutex
	data []int
}

// readLeak leaks a read lock.
func (r *rw) readLeak() int {
	r.mu.RLock()
	if len(r.data) == 0 {
		return 0 // want "return while r.mu is held"
	}
	v := r.data[0]
	r.mu.RUnlock()
	return v
}

// guardLeak hands out a pointer to guarded state.
func (s *store) guardLeak() *map[string]int {
	return &s.state // want "returning &s.state hands out a pointer to a field of mutex-guarded"
}

// Locker exposes the mutex itself, which is the sync.Locker accessor
// idiom, not a guarded-field leak.
func (s *store) Locker() sync.Locker {
	return &s.mu
}

// unguarded has no mutex, so pointers to fields are fine.
type unguarded struct {
	n int
}

func (u *unguarded) ptr() *int {
	return &u.n
}
