// TryLock / TryRLock and rwmutex recursive-read (downgrade) regression
// cases: the shapes the boolean held-set model miscounted.
package locks

// tryLeak leaks inside the branch where TryLock succeeded.
func (s *store) tryLeak(k string) int {
	if s.mu.TryLock() {
		if v, ok := s.state[k]; ok {
			return v // want "return while s.mu is held"
		}
		s.mu.Unlock()
	}
	return -1
}

// tryEarlyExit is the guard idiom: the failure path returns, so the
// lock is held only after the if — and the later bare return leaks it.
func (s *store) tryEarlyExit(k string) int {
	if !s.mu.TryLock() {
		return -1
	}
	v := s.state[k]
	if v < 0 {
		return v // want "return while s.mu is held"
	}
	s.mu.Unlock()
	return v
}

// tryClean brackets the critical section correctly in both shapes.
func (s *store) tryClean(k string) int {
	if s.mu.TryLock() {
		v := s.state[k]
		s.mu.Unlock()
		return v
	}
	if !s.mu.TryLock() {
		return -1
	}
	defer s.mu.Unlock()
	return s.state[k]
}

// tryReadLeak is the read-mode variant.
func (r *rw) tryReadLeak() int {
	if r.mu.TryRLock() {
		if len(r.data) == 0 {
			return 0 // want "return while r.mu is held"
		}
		r.mu.RUnlock()
	}
	return -1
}

// doubleRead takes a second, recursive read lock under a deferred
// RUnlock that only covers the first: the early return leaks one hold.
// A boolean held-set cancels the two and misses this.
func (r *rw) doubleRead() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	r.mu.RLock()
	if len(r.data) == 0 {
		return 0 // want "return while r.mu is held"
	}
	r.mu.RUnlock()
	return r.data[0]
}

// downgrade swaps the write lock for a read lock and defers the matching
// RUnlock: clean, and the write mode must not be charged to the read
// mode's deferred unlock.
func (r *rw) downgrade() int {
	r.mu.Lock()
	r.data = append(r.data, 1)
	r.mu.Unlock()
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.data[0]
}
