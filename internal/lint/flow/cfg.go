// Statement-level intraprocedural control-flow graphs. The builder
// covers the statement forms the analyzers care about — if/else, for,
// range, switch, type switch, select, labeled break/continue, return —
// and is deliberately conservative elsewhere (goto edges go to the
// function exit, so facts stay sound rather than precise). Function
// literals are NOT inlined into the enclosing graph: a closure runs at
// some other time, so its statements belong to its own CFG.
package flow

import (
	"go/ast"
	"go/token"
)

// Block is one straight-line run of statements. Statements appear in
// execution order; control transfers only at the end of the block.
type Block struct {
	// Stmts are the block's statements in order. Compound statements
	// (if/for/switch/...) never appear here — only their init/condition
	// scaffolding and simple statements do.
	Stmts []ast.Stmt
	// Cond, when non-nil, is a condition evaluated after Stmts; Succs[0]
	// is then the true edge and Succs[1] the false edge. The lock
	// dataflow uses this to model TryLock-guarded branches.
	Cond ast.Expr
	// Succs are the successor blocks.
	Succs []*Block

	index int
}

// CFG is one function body's control-flow graph.
type CFG struct {
	Entry *Block
	// Exit is a synthetic block every return (and the fall-off-the-end
	// path) flows into.
	Exit   *Block
	Blocks []*Block
}

type cfgBuilder struct {
	cfg *CFG
	// brk/cont map label names to jump targets; "" is the innermost
	// enclosing loop or switch.
	brk, cont map[string]*Block
}

// BuildCFG constructs the CFG for one function body.
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{
		cfg:  &CFG{},
		brk:  map[string]*Block{},
		cont: map[string]*Block{},
	}
	b.cfg.Exit = b.newBlock()
	b.cfg.Entry = b.newBlock()
	last := b.stmts(b.cfg.Entry, body.List)
	if last != nil {
		b.edge(last, b.cfg.Exit)
	}
	return b.cfg
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block) { from.Succs = append(from.Succs, to) }

// stmts threads the statement list through cur, returning the block
// control falls out of, or nil when the list always transfers away
// (return/break/continue/goto on every path).
func (b *cfgBuilder) stmts(cur *Block, list []ast.Stmt) *Block {
	for _, s := range list {
		if cur == nil {
			// Dead code after a terminator still gets a (disconnected)
			// block so its statements are visited exactly once.
			cur = b.newBlock()
		}
		cur = b.stmt(cur, s, "")
	}
	return cur
}

// stmt adds one statement to cur; label carries a pending label name
// down to the loop/switch it annotates.
func (b *cfgBuilder) stmt(cur *Block, s ast.Stmt, label string) *Block {
	switch s := s.(type) {
	case *ast.LabeledStmt:
		return b.stmt(cur, s.Stmt, s.Label.Name)

	case *ast.BlockStmt:
		return b.stmts(cur, s.List)

	case *ast.ReturnStmt:
		cur.Stmts = append(cur.Stmts, s)
		b.edge(cur, b.cfg.Exit)
		return nil

	case *ast.BranchStmt:
		name := ""
		if s.Label != nil {
			name = s.Label.Name
		}
		switch s.Tok {
		case token.BREAK:
			if t := b.brk[name]; t != nil {
				b.edge(cur, t)
				return nil
			}
		case token.CONTINUE:
			if t := b.cont[name]; t != nil {
				b.edge(cur, t)
				return nil
			}
		case token.FALLTHROUGH:
			// Handled by the switch builder (the clause body's fallthrough
			// edge); reaching here means a malformed tree — treat as exit.
		}
		// goto, or a branch whose target we do not track: conservatively
		// route to the function exit so no fact flows past it unseen.
		b.edge(cur, b.cfg.Exit)
		return nil

	case *ast.IfStmt:
		if s.Init != nil {
			cur.Stmts = append(cur.Stmts, s.Init)
		}
		cur.Cond = s.Cond
		after := b.newBlock()
		then := b.newBlock()
		b.edge(cur, then) // Succs[0]: condition true
		if end := b.stmts(then, s.Body.List); end != nil {
			b.edge(end, after)
		}
		if s.Else != nil {
			els := b.newBlock()
			b.edge(cur, els) // Succs[1]: condition false
			if end := b.stmt(els, s.Else, ""); end != nil {
				b.edge(end, after)
			}
		} else {
			b.edge(cur, after) // Succs[1]: condition false
		}
		return after

	case *ast.ForStmt:
		if s.Init != nil {
			cur.Stmts = append(cur.Stmts, s.Init)
		}
		head := b.newBlock()
		b.edge(cur, head)
		body := b.newBlock()
		after := b.newBlock()
		if s.Cond != nil {
			head.Cond = s.Cond
			b.edge(head, body)  // true
			b.edge(head, after) // false
		} else {
			b.edge(head, body) // for {}: after is reachable only via break
		}
		post := head
		if s.Post != nil {
			post = b.newBlock()
			post.Stmts = append(post.Stmts, s.Post)
			b.edge(post, head)
		}
		sb, sc := b.pushLoop(label, after, post)
		if end := b.stmts(body, s.Body.List); end != nil {
			b.edge(end, post)
		}
		b.popLoop(label, sb, sc)
		return after

	case *ast.RangeStmt:
		// The range expression (and key/value assignment) evaluates at
		// the head; model it as a head block with a body edge and an
		// exhausted edge.
		head := b.newBlock()
		head.Stmts = append(head.Stmts, s)
		b.edge(cur, head)
		body := b.newBlock()
		after := b.newBlock()
		b.edge(head, body)
		b.edge(head, after)
		sb, sc := b.pushLoop(label, after, head)
		if end := b.stmts(body, s.Body.List); end != nil {
			b.edge(end, head)
		}
		b.popLoop(label, sb, sc)
		return after

	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		var clauses []ast.Stmt
		switch sw := s.(type) {
		case *ast.SwitchStmt:
			if sw.Init != nil {
				cur.Stmts = append(cur.Stmts, sw.Init)
			}
			if sw.Tag != nil {
				cur.Stmts = append(cur.Stmts, &ast.ExprStmt{X: sw.Tag})
			}
			clauses = sw.Body.List
		case *ast.TypeSwitchStmt:
			if sw.Init != nil {
				cur.Stmts = append(cur.Stmts, sw.Init)
			}
			cur.Stmts = append(cur.Stmts, sw.Assign)
			clauses = sw.Body.List
		}
		after := b.newBlock()
		saved := b.pushSwitch(label, after)
		hasDefault := false
		bodies := make([]*Block, len(clauses))
		ends := make([]*Block, len(clauses))
		for i, c := range clauses {
			cc := c.(*ast.CaseClause)
			if cc.List == nil {
				hasDefault = true
			}
			bodies[i] = b.newBlock()
			b.edge(cur, bodies[i])
			ends[i] = b.stmts(bodies[i], cc.Body)
		}
		for i, end := range ends {
			if end == nil {
				continue
			}
			if fallsThrough(clauses[i].(*ast.CaseClause).Body) && i+1 < len(bodies) {
				b.edge(end, bodies[i+1])
			} else {
				b.edge(end, after)
			}
		}
		if !hasDefault {
			b.edge(cur, after)
		}
		b.popSwitch(label, saved)
		return after

	case *ast.SelectStmt:
		after := b.newBlock()
		saved := b.pushSwitch(label, after)
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			body := b.newBlock()
			if cc.Comm != nil {
				body.Stmts = append(body.Stmts, cc.Comm)
			}
			b.edge(cur, body)
			if end := b.stmts(body, cc.Body); end != nil {
				b.edge(end, after)
			}
		}
		b.popSwitch(label, saved)
		return after

	default:
		// Simple statements: assignments, expressions, go, defer, send,
		// incdec, declarations, empty.
		cur.Stmts = append(cur.Stmts, s)
		return cur
	}
}

// pushLoop/popLoop and pushSwitch/popSwitch save and restore the
// enclosing jump targets, so nested loops and switches see the right
// innermost ("") target when the inner construct ends.
func (b *cfgBuilder) pushLoop(label string, brk, cont *Block) (savedBrk, savedCont *Block) {
	savedBrk, savedCont = b.brk[""], b.cont[""]
	b.brk[""], b.cont[""] = brk, cont
	if label != "" {
		b.brk[label], b.cont[label] = brk, cont
	}
	return savedBrk, savedCont
}

func (b *cfgBuilder) popLoop(label string, savedBrk, savedCont *Block) {
	b.brk[""], b.cont[""] = savedBrk, savedCont
	if label != "" {
		delete(b.brk, label)
		delete(b.cont, label)
	}
}

func (b *cfgBuilder) pushSwitch(label string, brk *Block) (savedBrk *Block) {
	savedBrk = b.brk[""]
	b.brk[""] = brk
	if label != "" {
		b.brk[label] = brk
	}
	return savedBrk
}

func (b *cfgBuilder) popSwitch(label string, savedBrk *Block) {
	b.brk[""] = savedBrk
	if label != "" {
		delete(b.brk, label)
	}
}

// fallsThrough reports whether a case body ends in a fallthrough.
func fallsThrough(body []ast.Stmt) bool {
	if len(body) == 0 {
		return false
	}
	br, ok := body[len(body)-1].(*ast.BranchStmt)
	return ok && br.Tok == token.FALLTHROUGH
}
