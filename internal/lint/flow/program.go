// Package flow is the flow-aware layer of the lint suite: a module-wide
// view of every loaded package (Program), a statement-level
// intraprocedural CFG (BuildCFG), a module-local call graph, and a
// may-held lock/ticket dataflow (LockFacts). The concurrency analyzers
// (lockorder, suspendsafe, spawnbound) consume it; the per-package
// analyzers in internal/lint/analysis do not need it.
//
// Two //revtr: directives make the static graphs match the dynamic
// ones:
//
//   - //revtr:calls pkgpath.Func (or pkgpath.Type.Method) on a call line
//     declares the target of an indirect call — a function-typed field
//     or interface the resolver cannot see through. The sched layer uses
//     it to declare that s.opts.TryCharge lands in the service registry,
//     which is exactly the cross-package edge the lock-order graph must
//     know about.
//   - //revtr:suspends <why> on a function or interface-method
//     declaration marks it as a suspension point: calling it may park
//     the measurement (probe pool async submission, the engine's
//     resumable machine). suspendsafe propagates the mark up the call
//     graph.
//
// The call graph is goroutine-local by construction: `go` statement
// subtrees are excluded, because work launched on another goroutine
// neither holds the caller's locks nor suspends the caller. Non-go
// function literals (deferred closures, inline callbacks) are included
// conservatively.
package flow

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"revtr/internal/lint/analysis"
	"revtr/internal/lint/directive"
	"revtr/internal/lint/loader"
)

// FuncInfo is one module function with a body.
type FuncInfo struct {
	Fn   *types.Func
	Decl *ast.FuncDecl
	Pkg  *loader.Package
}

// Program is the module-wide analysis context: every loaded package,
// indexed functions, parsed directives, and memoized per-function facts.
type Program struct {
	Fset *token.FileSet
	Pkgs []*loader.Package
	// Funcs indexes every function declared with a body in the loaded
	// packages.
	Funcs map[*types.Func]*FuncInfo

	dirs   []pkgDirs
	byName map[string]*types.Func
	calls  map[*types.Func][]*types.Func
	facts  map[*types.Func]*LockFacts
}

type pkgDirs struct {
	pkg *loader.Package
	m   *directive.Map
}

// BuildProgram assembles the module view from one loader.Load result.
// All packages must share one FileSet (loader.Load guarantees this for
// a single call).
func BuildProgram(pkgs []*loader.Package) *Program {
	p := &Program{
		Funcs:  map[*types.Func]*FuncInfo{},
		byName: map[string]*types.Func{},
		calls:  map[*types.Func][]*types.Func{},
		facts:  map[*types.Func]*LockFacts{},
	}
	if len(pkgs) > 0 {
		p.Fset = pkgs[0].Fset
	}
	p.Pkgs = pkgs
	for _, pkg := range pkgs {
		p.dirs = append(p.dirs, pkgDirs{pkg, directive.Parse(pkg.Fset, pkg.Files)})
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				p.Funcs[fn] = &FuncInfo{Fn: fn, Decl: fd, Pkg: pkg}
				if key := FuncKey(fn); key != "" && p.byName[key] == nil {
					p.byName[key] = fn
				}
			}
			// Index interface methods too: a cross-package call resolves
			// to the importer's object, and Canon must be able to map it
			// back to the source-checked one //revtr:suspends seeds use.
			ast.Inspect(f, func(n ast.Node) bool {
				it, ok := n.(*ast.InterfaceType)
				if !ok {
					return true
				}
				for _, field := range it.Methods.List {
					for _, name := range field.Names {
						if fn, ok := pkg.Info.Defs[name].(*types.Func); ok {
							if key := FuncKey(fn); key != "" && p.byName[key] == nil {
								p.byName[key] = fn
							}
						}
					}
				}
				return true
			})
		}
	}
	return p
}

// Canon maps fn to the source-checked object for the same function, if
// the declaring package is loaded. The type checker materializes a
// DISTINCT *types.Func for an imported function (built from export
// data), so cross-package call facts would never match the Funcs index
// without this.
func (p *Program) Canon(fn *types.Func) *types.Func {
	if fn == nil {
		return nil
	}
	if p.Funcs[fn] != nil {
		return fn
	}
	if canon := p.byName[FuncKey(fn)]; canon != nil {
		return canon
	}
	return fn
}

// FuncKey renders fn as the //revtr:calls target grammar:
// pkgpath.Func for package functions, pkgpath.Type.Method for methods
// (pointer receivers are spelled like value receivers). Empty for
// functions outside any package.
func FuncKey(fn *types.Func) string {
	if fn.Pkg() == nil {
		return ""
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return fn.Pkg().Path() + "." + named.Obj().Name() + "." + fn.Name()
		}
		return ""
	}
	return fn.Pkg().Path() + "." + fn.Name()
}

// SortedFuncs returns every indexed function in source-position order,
// so analyzers iterating the module produce deterministic output.
func (p *Program) SortedFuncs() []*FuncInfo {
	out := make([]*FuncInfo, 0, len(p.Funcs))
	for _, fi := range p.Funcs {
		out = append(out, fi)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := p.Fset.Position(out[i].Decl.Pos()), p.Fset.Position(out[j].Decl.Pos())
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Offset < b.Offset
	})
	return out
}

// Allows reports whether any package's directives suppress kind at pos.
func (p *Program) Allows(pos token.Pos, kind string) bool {
	for _, d := range p.dirs {
		if d.m.Allows(p.Fset, pos, kind) {
			return true
		}
	}
	return false
}

// directivesAt collects directives of the given kind attached to pos
// across all packages (a position lives in exactly one file, so at most
// one package contributes).
func (p *Program) directivesAt(pos token.Pos, kind string) []directive.Directive {
	for _, d := range p.dirs {
		if ds := d.m.At(p.Fset, pos, kind); len(ds) > 0 {
			return ds
		}
	}
	return nil
}

// DeclaredCallees resolves the //revtr:calls directives attached to a
// call at pos. Targets that do not resolve in the loaded package set are
// dropped (partial loads — linting one package — must not fail on
// declarations about packages that are not in view).
func (p *Program) DeclaredCallees(pos token.Pos) []*types.Func {
	var out []*types.Func
	for _, d := range p.directivesAt(pos, directive.Calls) {
		if fn := p.byName[d.Justification]; fn != nil {
			out = append(out, fn)
		}
	}
	return out
}

// Callees returns fn's module-local, goroutine-local callees in first-
// call order: static calls resolved by the type checker plus targets
// declared with //revtr:calls. `go` statement subtrees are excluded;
// non-go function literals are included. Results are memoized.
func (p *Program) Callees(fn *types.Func) []*types.Func {
	if out, ok := p.calls[fn]; ok {
		return out
	}
	fi := p.Funcs[fn]
	if fi == nil {
		p.calls[fn] = nil
		return nil
	}
	var out []*types.Func
	seen := map[*types.Func]bool{}
	add := func(callee *types.Func) {
		if callee == nil || seen[callee] {
			return
		}
		seen[callee] = true
		out = append(out, callee)
	}
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			return false
		case *ast.CallExpr:
			if callee := analysis.CalleeFunc(fi.Pkg.Info, n); callee != nil {
				add(p.Canon(callee))
			}
			for _, callee := range p.DeclaredCallees(n.Pos()) {
				add(callee)
			}
		}
		return true
	})
	p.calls[fn] = out
	return out
}

// SuspendSeeds returns the functions and interface methods declared as
// suspension points with //revtr:suspends.
func (p *Program) SuspendSeeds() map[*types.Func]bool {
	seeds := map[*types.Func]bool{}
	for _, d := range p.dirs {
		for _, f := range d.pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.FuncDecl:
					if d.m.Allows(p.Fset, n.Pos(), directive.Suspends) {
						if fn, ok := d.pkg.Info.Defs[n.Name].(*types.Func); ok {
							seeds[fn] = true
						}
					}
				case *ast.InterfaceType:
					for _, field := range n.Methods.List {
						if len(field.Names) == 0 {
							continue // embedded interface
						}
						if d.m.Allows(p.Fset, field.Pos(), directive.Suspends) {
							if fn, ok := d.pkg.Info.Defs[field.Names[0]].(*types.Func); ok {
								seeds[fn] = true
							}
						}
					}
				}
				return true
			})
		}
	}
	return seeds
}

// Analyzer is one module-wide, flow-aware static check. It differs from
// analysis.Analyzer in scope: one run sees every loaded package through
// a shared Program instead of one package at a time.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Pass carries one Program through one module analyzer.
type Pass struct {
	Analyzer *Analyzer
	Prog     *Program

	report func(analysis.Diagnostic)
}

// NewPass assembles a module pass; report receives every diagnostic.
func NewPass(a *Analyzer, prog *Program, report func(analysis.Diagnostic)) *Pass {
	return &Pass{Analyzer: a, Prog: prog, report: report}
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(analysis.Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// ReportfDir records a diagnostic at pos suppressible by the named
// //revtr: directive kind.
func (p *Pass) ReportfDir(pos token.Pos, dir, format string, args ...any) {
	p.report(analysis.Diagnostic{Pos: pos, Directive: dir, Message: fmt.Sprintf(format, args...)})
}
