// May-held lock and ticket dataflow over the CFG. For one function the
// analysis computes, at every mutex acquisition and every call site, the
// set of locks (sync.Mutex / sync.RWMutex) and tickets (sends into a
// `chan struct{}` semaphore) that may already be held. Downstream,
// lockorder turns acquisition facts into order-graph edges and
// suspendsafe checks call facts against suspension points.
//
// Approximations, all deliberate and all on the conservative side for
// the analyzers that consume the facts:
//
//   - Deferred unlocks do not release: a defer fires at return, so the
//     lock really is held at every statement in between.
//   - Function-literal bodies are opaque for lock/unlock events: a
//     callback's unlock (the async engine's done-callback pattern) runs
//     at some later time on some other goroutine, not at the call site
//     that registers it. Deferred closures contribute their call events
//     (they run on this goroutine, with the locks held at return), but
//     not their unlocks.
//   - TryLock/TryRLock used as an if condition is modelled edge-
//     sensitively: the lock is held only on the branch where the call
//     returned true. Any other TryLock shape is untracked.
package flow

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"

	"revtr/internal/lint/analysis"
	"revtr/internal/lint/loader"
)

// Held is one lock or ticket that may be held at a program point.
type Held struct {
	// Key canonically identifies the lock across functions and packages:
	// "pkgpath.Type.field" for struct-field mutexes, "pkgpath.var" for
	// package-level ones, with a "ticket " prefix for channel semaphores.
	Key string
	// Render is the source-level spelling for messages (e.g. "s.mu").
	Render string
	// Read marks a read-side (RLock) hold.
	Read bool
	// Ticket marks a channel-semaphore slot rather than a mutex.
	Ticket bool
	// Pos is the acquisition site the fact flowed from.
	Pos token.Pos
}

// Acquire is one lock/ticket acquisition site with the set already held.
type Acquire struct {
	Held
	// Holding is what may already be held when this acquisition runs,
	// sorted by key.
	Holding []Held
}

// CallSite is one resolved (or declared) call with the held set.
type CallSite struct {
	Callee *types.Func
	Pos    token.Pos
	// Holding is what may be held when the call runs, sorted by key.
	Holding []Held
}

// LockFacts is the dataflow result for one function.
type LockFacts struct {
	Acquires []Acquire
	Calls    []CallSite
}

// LockFacts runs (memoized) the may-held dataflow for fn.
func (p *Program) LockFacts(fn *types.Func) *LockFacts {
	if f, ok := p.facts[fn]; ok {
		return f
	}
	fi := p.Funcs[fn]
	if fi == nil {
		p.facts[fn] = nil
		return nil
	}
	f := computeLockFacts(p, fi)
	p.facts[fn] = f
	return f
}

type evKind int

const (
	evLock evKind = iota
	evUnlock
	evCall
)

type event struct {
	kind   evKind
	held   Held         // evLock/evUnlock
	callee *types.Func  // evCall
	pos    token.Pos
}

// condAcq describes a TryLock-shaped branch condition.
type condAcq struct {
	held    Held
	negated bool // `if !mu.TryLock()`: held on the FALSE edge
}

func computeLockFacts(p *Program, fi *FuncInfo) *LockFacts {
	cfg := BuildCFG(fi.Decl.Body)
	x := &extractor{pkg: fi.Pkg, prog: p}

	events := make([][]event, len(cfg.Blocks))
	conds := make([]*condAcq, len(cfg.Blocks))
	for i, b := range cfg.Blocks {
		for _, s := range b.Stmts {
			events[i] = x.stmtEvents(events[i], s)
		}
		if b.Cond != nil {
			events[i] = x.exprEvents(events[i], b.Cond, true)
			conds[i] = x.condTry(b.Cond)
		}
	}

	// Forward may-held fixpoint: join is union, transfer is the block's
	// event sequence, TryLock conditions adjust per-edge.
	type heldSet = map[string]Held
	apply := func(in heldSet, evs []event) heldSet {
		out := make(heldSet, len(in))
		for k, v := range in {
			out[k] = v
		}
		for _, e := range evs {
			switch e.kind {
			case evLock:
				if _, ok := out[e.held.Key]; !ok {
					out[e.held.Key] = e.held
				}
			case evUnlock:
				delete(out, e.held.Key)
			}
		}
		return out
	}
	ins := make([]heldSet, len(cfg.Blocks))
	ins[cfg.Entry.index] = heldSet{}
	work := []int{cfg.Entry.index}
	for len(work) > 0 {
		bi := work[len(work)-1]
		work = work[:len(work)-1]
		b := cfg.Blocks[bi]
		out := apply(ins[bi], events[bi])
		for si, succ := range b.Succs {
			eo := out
			if c := conds[bi]; c != nil && b.Cond != nil {
				onTrue := si == 0
				if onTrue != c.negated {
					eo = apply(out, []event{{kind: evLock, held: c.held}})
				}
			}
			if ins[succ.index] == nil {
				ins[succ.index] = apply(eo, nil)
				work = append(work, succ.index)
				continue
			}
			grew := false
			for k, v := range eo {
				if _, ok := ins[succ.index][k]; !ok {
					ins[succ.index][k] = v
					grew = true
				}
			}
			if grew {
				work = append(work, succ.index)
			}
		}
	}

	// Recording pass: replay each reachable block once with its final
	// in-set, snapshotting held sets at acquisitions and calls.
	facts := &LockFacts{}
	snapshot := func(s heldSet) []Held {
		out := make([]Held, 0, len(s))
		for _, h := range s {
			out = append(out, h)
		}
		sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
		return out
	}
	for bi := range cfg.Blocks {
		if ins[bi] == nil {
			continue // unreachable
		}
		state := apply(ins[bi], nil)
		for _, e := range events[bi] {
			switch e.kind {
			case evLock:
				facts.Acquires = append(facts.Acquires, Acquire{Held: e.held, Holding: snapshot(state)})
				if _, ok := state[e.held.Key]; !ok {
					state[e.held.Key] = e.held
				}
			case evUnlock:
				delete(state, e.held.Key)
			case evCall:
				facts.Calls = append(facts.Calls, CallSite{Callee: e.callee, Pos: e.pos, Holding: snapshot(state)})
			}
		}
		if c := conds[bi]; c != nil {
			facts.Acquires = append(facts.Acquires, Acquire{Held: c.held, Holding: snapshot(state)})
		}
	}
	sort.Slice(facts.Acquires, func(i, j int) bool { return facts.Acquires[i].Pos < facts.Acquires[j].Pos })
	sort.Slice(facts.Calls, func(i, j int) bool { return facts.Calls[i].Pos < facts.Calls[j].Pos })
	return facts
}

// extractor turns statements into ordered lock/unlock/call events.
type extractor struct {
	pkg  *loader.Package
	prog *Program
}

func (x *extractor) stmtEvents(evs []event, s ast.Stmt) []event {
	switch s := s.(type) {
	case *ast.RangeStmt:
		// Only the range expression evaluates at the loop head; the body
		// has its own blocks.
		return x.exprEvents(evs, s.X, true)
	case *ast.DeferStmt:
		return x.deferEvents(evs, s)
	case *ast.GoStmt:
		return evs // runs on another goroutine
	default:
		var walk func(n ast.Node) bool
		walk = func(n ast.Node) bool {
			evs = x.nodeEvents(evs, n)
			_, isLit := n.(*ast.FuncLit)
			_, isGo := n.(*ast.GoStmt)
			return !isLit && !isGo
		}
		ast.Inspect(s, walk)
		return evs
	}
}

// exprEvents extracts events from one expression subtree.
func (x *extractor) exprEvents(evs []event, e ast.Expr, descend bool) []event {
	ast.Inspect(e, func(n ast.Node) bool {
		evs = x.nodeEvents(evs, n)
		_, isLit := n.(*ast.FuncLit)
		return descend && !isLit
	})
	return evs
}

// deferEvents handles `defer f(...)`: a deferred unlock is NOT a release
// (it fires at return); a deferred closure contributes only its calls.
func (x *extractor) deferEvents(evs []event, s *ast.DeferStmt) []event {
	if _, _, ok := x.mutexMethod(s.Call); ok {
		return evs // a deferred Unlock releases at return, not here
	}
	if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if _, _, isMu := x.mutexMethod(call); !isMu {
					if callee := analysis.CalleeFunc(x.pkg.Info, call); callee != nil {
						evs = append(evs, event{kind: evCall, callee: x.canon(callee), pos: call.Pos()})
					}
				}
			}
			_, isLit := n.(*ast.FuncLit)
			_, isGo := n.(*ast.GoStmt)
			return !isLit && !isGo
		})
		return evs
	}
	// Deferred named call: runs at return; approximate at the defer site.
	if callee := analysis.CalleeFunc(x.pkg.Info, s.Call); callee != nil {
		evs = append(evs, event{kind: evCall, callee: x.canon(callee), pos: s.Call.Pos()})
	}
	return evs
}

// nodeEvents appends the events n itself produces.
func (x *extractor) nodeEvents(evs []event, n ast.Node) []event {
	switch n := n.(type) {
	case *ast.CallExpr:
		if h, name, ok := x.mutexMethod(n); ok {
			switch name {
			case "Lock", "RLock":
				evs = append(evs, event{kind: evLock, held: h})
			case "Unlock", "RUnlock":
				evs = append(evs, event{kind: evUnlock, held: h})
			}
			// TryLock/TryRLock outside an if condition is untracked.
			return evs
		}
		if callee := analysis.CalleeFunc(x.pkg.Info, n); callee != nil {
			evs = append(evs, event{kind: evCall, callee: x.canon(callee), pos: n.Pos()})
		}
		for _, callee := range x.declared(n) {
			evs = append(evs, event{kind: evCall, callee: callee, pos: n.Pos()})
		}
	case *ast.SendStmt:
		if h, ok := x.ticketRef(n.Chan); ok && isEmptyStructLit(n.Value) {
			h.Pos = n.Pos()
			evs = append(evs, event{kind: evLock, held: h})
		}
	case *ast.UnaryExpr:
		if n.Op == token.ARROW {
			if h, ok := x.ticketRef(n.X); ok {
				evs = append(evs, event{kind: evUnlock, held: h})
			}
		}
	}
	return evs
}

// declared resolves the //revtr:calls directives attached to a call.
func (x *extractor) declared(call *ast.CallExpr) []*types.Func {
	if x.prog == nil {
		return nil
	}
	return x.prog.DeclaredCallees(call.Pos())
}

// canon maps an imported callee object back to its source-checked
// counterpart (see Program.Canon); identity must line up or cross-
// package facts never join.
func (x *extractor) canon(fn *types.Func) *types.Func {
	if x.prog == nil {
		return fn
	}
	return x.prog.Canon(fn)
}

// condTry recognizes `mu.TryLock()` / `!mu.TryLock()` branch conditions.
func (x *extractor) condTry(cond ast.Expr) *condAcq {
	negated := false
	e := ast.Unparen(cond)
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.NOT {
		negated = true
		e = ast.Unparen(u.X)
	}
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return nil
	}
	h, name, ok := x.mutexMethod(call)
	if !ok || (name != "TryLock" && name != "TryRLock") {
		return nil
	}
	h.Read = name == "TryRLock"
	return &condAcq{held: h, negated: negated}
}

// mutexMethod resolves a sync.Mutex/sync.RWMutex method call into a Held
// fact plus the method name.
func (x *extractor) mutexMethod(call *ast.CallExpr) (Held, string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return Held{}, "", false
	}
	fn := analysis.CalleeFunc(x.pkg.Info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return Held{}, "", false
	}
	switch fn.Name() {
	case "Lock", "Unlock", "RLock", "RUnlock", "TryLock", "TryRLock":
	default:
		return Held{}, "", false
	}
	key, render := x.lockRef(sel.X)
	return Held{
		Key:    key,
		Render: render,
		Read:   fn.Name() == "RLock" || fn.Name() == "RUnlock" || fn.Name() == "TryRLock",
		Pos:    call.Pos(),
	}, fn.Name(), true
}

// lockRef canonicalizes the lock expression: struct-field mutexes are
// identified by owner type + field ("pkg.Type.mu"), package-level ones
// by package path + name, and anything else falls back to the package-
// qualified source spelling. Lock and RLock of the same mutex share one
// key: the order graph has one node per lock, whatever the mode.
func (x *extractor) lockRef(e ast.Expr) (key, render string) {
	e = ast.Unparen(e)
	render = types.ExprString(e)
	if sel, ok := e.(*ast.SelectorExpr); ok {
		t := x.pkg.Info.TypeOf(sel.X)
		if t != nil {
			if ptr, ok := t.(*types.Pointer); ok {
				t = ptr.Elem()
			}
			if named, ok := t.(*types.Named); ok {
				return named.String() + "." + sel.Sel.Name, render
			}
		}
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := x.pkg.Info.ObjectOf(id); obj != nil && obj.Pkg() != nil {
			if obj.Parent() == obj.Pkg().Scope() {
				return obj.Pkg().Path() + "." + obj.Name(), render
			}
			// Local mutex: qualify by declaration site so distinct locals
			// in different functions never alias.
			pos := x.pkg.Fset.Position(obj.Pos())
			return obj.Pkg().Path() + "." + obj.Name() + "@" + pos.Filename + ":" + strconv.Itoa(pos.Line), render
		}
	}
	return x.pkg.PkgPath + ":" + render, render
}

// ticketRef canonicalizes a `chan struct{}` semaphore expression.
func (x *extractor) ticketRef(ch ast.Expr) (Held, bool) {
	t := x.pkg.Info.TypeOf(ch)
	if t == nil {
		return Held{}, false
	}
	c, ok := t.Underlying().(*types.Chan)
	if !ok {
		return Held{}, false
	}
	st, ok := c.Elem().Underlying().(*types.Struct)
	if !ok || st.NumFields() != 0 {
		return Held{}, false
	}
	key, render := x.lockRef(ch)
	return Held{Key: "ticket " + key, Render: render, Ticket: true, Pos: ch.Pos()}, true
}

func isEmptyStructLit(e ast.Expr) bool {
	lit, ok := ast.Unparen(e).(*ast.CompositeLit)
	if !ok {
		return false
	}
	return len(lit.Elts) == 0
}
