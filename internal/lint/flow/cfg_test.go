package flow_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"

	"revtr/internal/lint/flow"
)

// buildFor parses src, finds the function named fn, and builds its CFG.
func buildFor(t *testing.T, src, fn string) *flow.CFG {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "cfg.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range f.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if ok && fd.Name.Name == fn {
			return flow.BuildCFG(fd.Body)
		}
	}
	t.Fatalf("no function %q in source", fn)
	return nil
}

// reaches reports whether walking successor edges from `from` visits `to`.
func reaches(from, to *flow.Block) bool {
	seen := map[*flow.Block]bool{}
	var walk func(b *flow.Block) bool
	walk = func(b *flow.Block) bool {
		if b == to {
			return true
		}
		if seen[b] {
			return false
		}
		seen[b] = true
		for _, s := range b.Succs {
			if walk(s) {
				return true
			}
		}
		return false
	}
	return walk(from)
}

func TestCFGIfElse(t *testing.T) {
	cfg := buildFor(t, `package p
func f(c bool) int {
	x := 0
	if c {
		x = 1
	} else {
		x = 2
	}
	return x
}
`, "f")
	var cond *flow.Block
	for _, b := range cfg.Blocks {
		if b.Cond != nil {
			if cond != nil {
				t.Fatalf("more than one condition block")
			}
			cond = b
		}
	}
	if cond == nil {
		t.Fatal("no block carries the if condition")
	}
	if len(cond.Succs) != 2 {
		t.Fatalf("condition block has %d successors, want 2 (true, false)", len(cond.Succs))
	}
	for i, s := range cond.Succs {
		if !reaches(s, cfg.Exit) {
			t.Errorf("branch %d does not reach the exit block", i)
		}
	}
	if !reaches(cfg.Entry, cfg.Exit) {
		t.Error("entry does not reach exit")
	}
}

func TestCFGLoopBackEdge(t *testing.T) {
	cfg := buildFor(t, `package p
func g(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s += i
	}
	return s
}
`, "g")
	var cond *flow.Block
	for _, b := range cfg.Blocks {
		if b.Cond != nil {
			cond = b
		}
	}
	if cond == nil {
		t.Fatal("no block carries the loop condition")
	}
	// The loop body (true edge) must flow back around to the condition.
	if !reaches(cond.Succs[0], cond) {
		t.Error("loop body has no back edge to the condition")
	}
	// The false edge must leave the loop and reach the exit.
	if !reaches(cond.Succs[1], cfg.Exit) {
		t.Error("loop exit edge does not reach the function exit")
	}
	if reaches(cfg.Entry, cfg.Exit) != true {
		t.Error("entry does not reach exit")
	}
}

func TestCFGBreakLeavesLoop(t *testing.T) {
	cfg := buildFor(t, `package p
func h(n int) int {
	for {
		if n > 0 {
			break
		}
		n++
	}
	return n
}
`, "h")
	if !reaches(cfg.Entry, cfg.Exit) {
		t.Error("break does not connect the loop to the function exit")
	}
}
