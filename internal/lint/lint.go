// Package lint assembles the revtr-lint suite: repo-specific go/analysis
// style checkers that turn the determinism, context, metrics, and
// concurrency contracts (DESIGN.md "Determinism contract and static
// enforcement" and "Concurrency contract") into compile-time gates.
// `make lint` / `make ci` run the suite over the whole module via
// cmd/revtr-lint and fail on any diagnostic.
//
// The suite has two analyzer shapes: per-package analyzers
// (analysis.Analyzer — detpath, ctxflow, obsnames, locksafe) that see
// one type-checked package at a time, and module analyzers
// (flow.Analyzer — lockorder, suspendsafe, spawnbound) that see every
// loaded package at once through a flow.Program, because lock order and
// suspension safety are properties of cross-package call chains.
package lint

import (
	"fmt"

	"revtr/internal/lint/analysis"
	"revtr/internal/lint/ctxflow"
	"revtr/internal/lint/detpath"
	"revtr/internal/lint/flow"
	"revtr/internal/lint/loader"
	"revtr/internal/lint/lockorder"
	"revtr/internal/lint/locksafe"
	"revtr/internal/lint/obsnames"
	"revtr/internal/lint/spawnbound"
	"revtr/internal/lint/suspendsafe"
)

// Analyzers returns the per-package analyzers in their fixed run order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		detpath.Analyzer,
		ctxflow.Analyzer,
		obsnames.Analyzer,
		locksafe.Analyzer,
	}
}

// FlowAnalyzers returns the module-wide analyzers in their fixed run
// order.
func FlowAnalyzers() []*flow.Analyzer {
	return []*flow.Analyzer{
		lockorder.Analyzer,
		suspendsafe.Analyzer,
		spawnbound.Analyzer,
	}
}

// Names lists every analyzer in the suite, per-package first, in run
// order. The -run filter of cmd/revtr-lint accepts exactly these names.
func Names() []string {
	var names []string
	for _, a := range Analyzers() {
		names = append(names, a.Name)
	}
	for _, a := range FlowAnalyzers() {
		names = append(names, a.Name)
	}
	return names
}

// Run loads the packages matched by patterns (relative to dir) and runs
// the whole suite, returning the sorted findings.
func Run(dir string, patterns ...string) ([]analysis.Finding, error) {
	return RunSelected(dir, nil, patterns...)
}

// RunSelected is Run restricted to the named analyzers (nil or empty
// means all). Unknown names are an error, so a typo in -run fails loudly
// instead of silently passing.
func RunSelected(dir string, only []string, patterns ...string) ([]analysis.Finding, error) {
	selected := map[string]bool{}
	if len(only) > 0 {
		known := map[string]bool{}
		for _, n := range Names() {
			known[n] = true
		}
		for _, n := range only {
			if !known[n] {
				return nil, fmt.Errorf("unknown analyzer %q (have %v)", n, Names())
			}
			selected[n] = true
		}
	}
	want := func(name string) bool { return len(selected) == 0 || selected[name] }

	pkgs, err := loader.Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	var findings []analysis.Finding
	for _, p := range pkgs {
		for _, a := range Analyzers() {
			if !want(a.Name) {
				continue
			}
			pass := analysis.NewPass(a, p.Fset, p.Files, p.Types, p.Info, func(d analysis.Diagnostic) {
				findings = append(findings, analysis.Finding{
					Position:  p.Fset.Position(d.Pos),
					Analyzer:  a.Name,
					Message:   d.Message,
					Directive: d.Directive,
				})
			})
			if err := a.Run(pass); err != nil {
				return nil, err
			}
		}
	}
	var prog *flow.Program
	for _, a := range FlowAnalyzers() {
		if !want(a.Name) {
			continue
		}
		if prog == nil {
			prog = flow.BuildProgram(pkgs)
		}
		a := a
		pass := flow.NewPass(a, prog, func(d analysis.Diagnostic) {
			findings = append(findings, analysis.Finding{
				Position:  prog.Fset.Position(d.Pos),
				Analyzer:  a.Name,
				Message:   d.Message,
				Directive: d.Directive,
			})
		})
		if err := a.Run(pass); err != nil {
			return nil, err
		}
	}
	analysis.SortFindings(findings)
	return findings, nil
}
