// Package lint assembles the revtr-lint suite: repo-specific go/analysis
// style checkers that turn the determinism, context, and metrics
// contracts (DESIGN.md "Determinism contract and static enforcement")
// into compile-time gates. `make lint` / `make ci` run the suite over
// the whole module via cmd/revtr-lint and fail on any diagnostic.
package lint

import (
	"revtr/internal/lint/analysis"
	"revtr/internal/lint/ctxflow"
	"revtr/internal/lint/detpath"
	"revtr/internal/lint/loader"
	"revtr/internal/lint/locksafe"
	"revtr/internal/lint/obsnames"
)

// Analyzers returns the suite in its fixed run order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		detpath.Analyzer,
		ctxflow.Analyzer,
		obsnames.Analyzer,
		locksafe.Analyzer,
	}
}

// Run loads the packages matched by patterns (relative to dir) and runs
// every analyzer over each, returning the sorted findings.
func Run(dir string, patterns ...string) ([]analysis.Finding, error) {
	pkgs, err := loader.Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	var findings []analysis.Finding
	for _, p := range pkgs {
		for _, a := range Analyzers() {
			pass := analysis.NewPass(a, p.Fset, p.Files, p.Types, p.Info, func(d analysis.Diagnostic) {
				findings = append(findings, analysis.Finding{
					Position: p.Fset.Position(d.Pos),
					Analyzer: a.Name,
					Message:  d.Message,
				})
			})
			if err := a.Run(pass); err != nil {
				return nil, err
			}
		}
	}
	analysis.SortFindings(findings)
	return findings, nil
}
