// Package loader turns package patterns into parsed, type-checked
// packages using only the standard library and the go tool. It shells
// out to `go list -deps -export -json`, which compiles every dependency
// to export data, then parses the matched packages' sources and
// type-checks them against that export data via go/importer. This is the
// same shape as golang.org/x/tools/go/packages' export-data mode, grown
// locally because the build environment has no module proxy.
package loader

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// Package is one parsed, type-checked root package (a package matched by
// the load patterns, as opposed to a dependency).
type Package struct {
	PkgPath string
	Name    string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// listEntry mirrors the `go list -json` fields the loader consumes.
type listEntry struct {
	Dir        string
	ImportPath string
	Name       string
	Export     string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
	ImportMap  map[string]string
}

// Load resolves patterns (e.g. "./...") relative to dir and returns the
// matched packages, parsed with comments and fully type-checked. Test
// files are not loaded: the determinism/context contracts deliberately
// exempt tests, and `go list` only reports GoFiles.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-deps", "-export",
		"-json=ImportPath,Name,Dir,Export,Standard,DepOnly,GoFiles,ImportMap",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}

	exports := map[string]string{}   // import path -> export data file
	importMap := map[string]string{} // source-level path -> real path
	var roots []listEntry
	dec := json.NewDecoder(&stdout)
	for {
		var e listEntry
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		if e.Export != "" {
			exports[e.ImportPath] = e.Export
		}
		for from, to := range e.ImportMap {
			importMap[from] = to
		}
		if !e.DepOnly && !e.Standard {
			roots = append(roots, e)
		}
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].ImportPath < roots[j].ImportPath })

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		if real, ok := importMap[path]; ok {
			path = real
		}
		exp, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(exp)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var out []*Package
	for _, root := range roots {
		var files []*ast.File
		for _, name := range root.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(root.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("%s: %v", root.ImportPath, err)
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Scopes:     map[ast.Node]*types.Scope{},
		}
		conf := types.Config{Importer: imp}
		pkg, err := conf.Check(root.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %v", root.ImportPath, err)
		}
		out = append(out, &Package{
			PkgPath: root.ImportPath,
			Name:    root.Name,
			Dir:     root.Dir,
			Fset:    fset,
			Files:   files,
			Types:   pkg,
			Info:    info,
		})
	}
	return out, nil
}
