// Package suspendsafe flags locks and tickets held across suspension
// points of the async measurement engine. A suspension point is a call
// that may park the current measurement — the probe pool's async
// submission, the engine's resumable state machine — declared at the
// callee with //revtr:suspends <why> (on a function or an interface
// method) and propagated transitively up the goroutine-local call
// graph. A mutex or channel-semaphore slot held at such a call is held
// for the whole suspension: under the 10k-in-flight regime that parks
// an arbitrary number of other measurements behind one suspended one.
//
// An intentional hold is excused at the call site with
// //revtr:heldacross <why> — the atlas read-lock pinned across an
// asynchronous batch measurement is the canonical case.
package suspendsafe

import (
	"go/types"
	"sort"
	"strings"

	"revtr/internal/lint/directive"
	"revtr/internal/lint/flow"
)

// Analyzer is the suspendsafe analyzer.
var Analyzer = &flow.Analyzer{
	Name: "suspendsafe",
	Doc:  "no lock, ticket, or quota slot may be held across a measurement suspension point",
	Run:  run,
}

func run(pass *flow.Pass) error {
	prog := pass.Prog
	may := prog.SuspendSeeds()

	// Propagate "may suspend" up the call graph to a fixpoint: a caller
	// of a suspending function suspends too (the park happens beneath
	// it, with the caller's locks held).
	funcs := prog.SortedFuncs()
	for changed := true; changed; {
		changed = false
		for _, fi := range funcs {
			if may[fi.Fn] {
				continue
			}
			for _, callee := range prog.Callees(fi.Fn) {
				if may[callee] {
					may[fi.Fn] = true
					changed = true
					break
				}
			}
		}
	}

	for _, fi := range funcs {
		facts := prog.LockFacts(fi.Fn)
		if facts == nil {
			continue
		}
		for _, c := range facts.Calls {
			if c.Callee == nil || !may[c.Callee] || len(c.Holding) == 0 {
				continue
			}
			if prog.Allows(c.Pos, directive.HeldAcross) {
				continue
			}
			pass.ReportfDir(c.Pos, directive.HeldAcross,
				"%s held across a suspension point (%s may suspend the measurement); a parked machine keeps it indefinitely — release before the call or annotate //revtr:heldacross <why>",
				describe(c.Holding), calleeName(c.Callee))
		}
	}
	return nil
}

// describe renders the held set for the message, locks before tickets,
// each sorted by spelling.
func describe(holding []flow.Held) string {
	var locks, tickets []string
	for _, h := range holding {
		if h.Ticket {
			tickets = append(tickets, h.Render)
		} else if h.Read {
			locks = append(locks, h.Render+" (read)")
		} else {
			locks = append(locks, h.Render)
		}
	}
	sort.Strings(locks)
	sort.Strings(tickets)
	var parts []string
	if len(locks) > 0 {
		noun := "lock "
		if len(locks) > 1 {
			noun = "locks "
		}
		parts = append(parts, noun+strings.Join(locks, ", "))
	}
	if len(tickets) > 0 {
		noun := "ticket "
		if len(tickets) > 1 {
			noun = "tickets "
		}
		parts = append(parts, noun+strings.Join(tickets, ", "))
	}
	return strings.Join(parts, " and ")
}

func calleeName(fn *types.Func) string {
	if key := flow.FuncKey(fn); key != "" {
		return key
	}
	return fn.Name()
}
