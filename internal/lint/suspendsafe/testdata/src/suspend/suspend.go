// Package suspend exercises suspendsafe: locks and tickets held across
// declared suspension points, transitive propagation through helpers,
// interface-method suspension seeds, and the //revtr:heldacross escape
// hatch.
package suspend

import "sync"

// Pool is the probe-pool stand-in.
type Pool struct{}

// Go submits work to the pool.
//
//revtr:suspends parks the callback until the batch completes
func (p *Pool) Go(done func()) {}

// Backend is the async-measurement interface stand-in.
type Backend interface {
	// MeasureAsync starts a measurement.
	//revtr:suspends parks the caller until the result callback fires
	MeasureAsync(done func())
}

// Engine holds a lock, a read-write lock, and a ticket semaphore around
// pool submissions.
type Engine struct {
	mu  sync.Mutex
	rw  sync.RWMutex
	p   *Pool
	sem chan struct{}
}

// Bad holds e.mu across the suspension point.
func (e *Engine) Bad() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.p.Go(func() {}) // want "lock e.mu held across a suspension point"
}

// Indirect reaches the suspension point through a helper: the mark
// propagates up the call graph.
func (e *Engine) Indirect() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.submit() // want "lock e.mu held across a suspension point"
}

// submit suspends but holds nothing itself: no finding here.
func (e *Engine) submit() {
	e.p.Go(func() {})
}

// IfaceBad holds the lock across an interface-method suspension point.
func (e *Engine) IfaceBad(b Backend) {
	e.mu.Lock()
	defer e.mu.Unlock()
	b.MeasureAsync(func() {}) // want "lock e.mu held across a suspension point"
}

// Annotated pins the read lock deliberately — the atlas pattern: the
// callback releases it when the batch lands.
func (e *Engine) Annotated() {
	e.rw.RLock()
	e.p.Go(e.rw.RUnlock) //revtr:heldacross fixture: the callback releases the read lock when the batch lands
}

// Clean releases before suspending.
func (e *Engine) Clean() {
	e.mu.Lock()
	e.mu.Unlock()
	e.p.Go(func() {})
}

// TicketBad holds a semaphore slot across the suspension.
func (e *Engine) TicketBad() {
	e.sem <- struct{}{}
	e.p.Go(func() {}) // want "ticket e.sem held across a suspension point"
	<-e.sem
}
