package suspendsafe_test

import (
	"testing"

	"revtr/internal/lint/linttest"
	"revtr/internal/lint/suspendsafe"
)

// TestSuspendSafe proves locks and tickets held across //revtr:suspends
// callees (direct, transitive, and via an interface method) are flagged,
// and that //revtr:heldacross and release-before-call keep quiet paths
// quiet.
func TestSuspendSafe(t *testing.T) {
	linttest.RunModule(t, "testdata", suspendsafe.Analyzer)
}
