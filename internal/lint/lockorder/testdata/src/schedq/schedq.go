// Package schedq mirrors the scheduler half of the repo's
// sched↔registry shape: it holds its own lock while charging admission
// through a function-typed callback that lands in the registry package.
// The static resolver cannot see through the field call, so the edge is
// declared with //revtr:calls — exactly how internal/sched declares its
// TryCharge edge.
package schedq

import "sync"

// Q is the scheduler-like half: one lock, one admission callback.
type Q struct {
	mu        sync.Mutex
	TryCharge func(user string) bool
	pending   int
}

// Submit admits one job under q.mu, charging quota through the callback
// while the lock is held. This is the forward half of the lock order:
// Q.mu → Registry.mu.
func (q *Q) Submit(user string) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	ok := q.TryCharge(user) //revtr:calls revtr/internal/lint/lockorder/testdata/src/regq.Registry.tryCharge
	if ok {
		q.pending++
	}
	return ok
}
