// Package regq mirrors the registry half of the sched↔registry shape
// and seeds the inversion the lockorder analyzer must catch: charging
// runs under Registry.mu beneath the scheduler's Q.mu (declared in
// schedq), and ResubmitLocked calls back into the scheduler while
// holding Registry.mu — the opposite order.
package regq

import (
	"sync"

	"revtr/internal/lint/lockorder/testdata/src/schedq"
)

// Registry is the registry-like half.
type Registry struct {
	mu    sync.Mutex
	sched *schedq.Q
	used  map[string]int
}

// tryCharge is the admission callback the scheduler invokes under its
// own lock (the declared edge in schedq.Submit).
func (r *Registry) tryCharge(user string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.used[user]++
	return true
}

// ResubmitLocked seeds the inversion: Registry.mu is held while Submit
// transitively acquires Q.mu (and, through the declared callback,
// Registry.mu again).
func (r *Registry) ResubmitLocked(user string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sched.Submit(user) // want "lock-order cycle"
}
