// The suppressed case: a would-be cycle whose inverted edge carries a
// //revtr:lockorder justification, so no finding is reported.
package regq

import "sync"

type chainA struct {
	mu sync.Mutex
	b  *chainB
}

type chainB struct {
	mu sync.Mutex
	a  *chainA
}

// lockThenB establishes chainA.mu → chainB.mu.
func (a *chainA) lockThenB() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.b.bump()
}

func (b *chainB) bump() {
	b.mu.Lock()
	defer b.mu.Unlock()
}

// invertedButExcused would close the cycle (chainB.mu → chainA.mu), but
// the edge is annotated away, so the graph stays acyclic.
func (b *chainB) invertedButExcused() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.a.lockThenB() //revtr:lockorder fixture: the a/b instances on this path are never cross-linked
}
