package lockorder_test

import (
	"testing"

	"revtr/internal/lint/linttest"
	"revtr/internal/lint/lockorder"
)

// TestLockOrder proves a seeded sched↔registry-style inversion across
// two fixture packages (one edge declared via //revtr:calls, one static)
// is reported as a cycle, and that a //revtr:lockorder-annotated edge
// keeps its would-be cycle out of the graph.
func TestLockOrder(t *testing.T) {
	linttest.RunModule(t, "testdata", lockorder.Analyzer)
}
