// Package lockorder builds the module-wide lock acquisition-order graph
// and reports any cycle. A node is one mutex identity (owner type +
// field); an edge A → B means some code path acquires B while holding A
// — either directly, or by calling (transitively) a function that
// acquires B. Two inverted edges are a potential deadlock: one goroutine
// holding A waits for B while another holding B waits for A. The
// sched → registry ordering the batch layer documents in prose becomes
// a machine-checked invariant here, with //revtr:calls declaring the
// callback edges the static resolver cannot see.
//
// Read locks share their mutex's node: an RLock-while-holding edge still
// orders the two locks (a writer on the far side makes reader/reader
// cases deadlock-equivalent), so cycle detection treats modes alike.
// Self-edges (re-acquiring the same identity) are not reported — two
// instances of one type are distinct locks, and instance identity is
// beyond a static key.
//
// An edge is excused with //revtr:lockorder <why> on the acquisition or
// call line that creates it.
package lockorder

import (
	"fmt"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"

	"revtr/internal/lint/directive"
	"revtr/internal/lint/flow"
)

// Analyzer is the lockorder analyzer.
var Analyzer = &flow.Analyzer{
	Name: "lockorder",
	Doc:  "the module-wide lock acquisition-order graph must stay acyclic",
	Run:  run,
}

type edge struct {
	from, to string
	pos      token.Pos
	// via names the callee the edge flows through ("" for a direct
	// acquisition in the same function).
	via string
}

func run(pass *flow.Pass) error {
	prog := pass.Prog

	// Transitive acquire sets: every lock a call into fn may take, on
	// this goroutine (go-launched work is excluded by the call graph).
	acq := map[*types.Func]map[string]bool{}
	var transAcq func(fn *types.Func, onStack map[*types.Func]bool) map[string]bool
	transAcq = func(fn *types.Func, onStack map[*types.Func]bool) map[string]bool {
		if got, ok := acq[fn]; ok {
			return got
		}
		if onStack[fn] {
			return nil // recursion: the cycle's locks are collected by the caller
		}
		onStack[fn] = true
		defer delete(onStack, fn)
		set := map[string]bool{}
		if facts := prog.LockFacts(fn); facts != nil {
			for _, a := range facts.Acquires {
				if !a.Ticket {
					set[a.Key] = true
				}
			}
		}
		for _, callee := range prog.Callees(fn) {
			for k := range transAcq(callee, onStack) {
				set[k] = true
			}
		}
		acq[fn] = set
		return set
	}

	// Edge collection, deduped on (from, to) keeping the lexically first
	// example so messages are deterministic.
	edges := map[[2]string]edge{}
	before := func(a, b token.Pos) bool {
		pa, pb := prog.Fset.Position(a), prog.Fset.Position(b)
		if pa.Filename != pb.Filename {
			return pa.Filename < pb.Filename
		}
		return pa.Offset < pb.Offset
	}
	addEdge := func(e edge) {
		if e.from == e.to {
			return
		}
		k := [2]string{e.from, e.to}
		if old, ok := edges[k]; !ok || before(e.pos, old.pos) {
			edges[k] = e
		}
	}

	for _, fi := range prog.SortedFuncs() {
		facts := prog.LockFacts(fi.Fn)
		if facts == nil {
			continue
		}
		for _, a := range facts.Acquires {
			if a.Ticket || len(a.Holding) == 0 {
				continue
			}
			if prog.Allows(a.Pos, directive.LockOrder) {
				continue
			}
			for _, h := range a.Holding {
				if !h.Ticket {
					addEdge(edge{from: h.Key, to: a.Key, pos: a.Pos})
				}
			}
		}
		for _, c := range facts.Calls {
			if c.Callee == nil || len(c.Holding) == 0 {
				continue
			}
			if prog.Allows(c.Pos, directive.LockOrder) {
				continue
			}
			for to := range transAcq(c.Callee, map[*types.Func]bool{}) {
				for _, h := range c.Holding {
					if !h.Ticket {
						addEdge(edge{from: h.Key, to: to, pos: c.Pos, via: c.Callee.Name()})
					}
				}
			}
		}
	}

	// Cycle detection: find strongly connected components; any SCC with
	// more than one node contains at least one acquisition-order cycle.
	adj := map[string][]string{}
	nodes := map[string]bool{}
	for k := range edges {
		adj[k[0]] = append(adj[k[0]], k[1])
		nodes[k[0]], nodes[k[1]] = true, true
	}
	for _, succs := range adj {
		sort.Strings(succs)
	}
	for _, scc := range tarjan(nodes, adj) {
		if len(scc) < 2 {
			continue
		}
		cycle := shortestCycle(scc, adj)
		if cycle == nil {
			continue
		}
		var steps []string
		var first edge
		for i := range cycle {
			e := edges[[2]string{cycle[i], cycle[(i+1)%len(cycle)]}]
			if i == 0 {
				first = e
			}
			p := prog.Fset.Position(e.pos)
			via := ""
			if e.via != "" {
				via = " via " + e.via
			}
			steps = append(steps, fmt.Sprintf("%s (%s:%d%s)", cycle[(i+1)%len(cycle)], filepath.Base(p.Filename), p.Line, via))
		}
		pass.ReportfDir(first.pos, directive.LockOrder,
			"lock-order cycle: %s → %s; two goroutines taking these locks in opposite orders deadlock — pick one order everywhere or annotate the benign edge //revtr:lockorder <why>",
			cycle[0], strings.Join(steps, " → "))
	}
	return nil
}

// tarjan returns the strongly connected components of the graph in a
// deterministic order (roots visited in sorted node order).
func tarjan(nodes map[string]bool, adj map[string][]string) [][]string {
	sorted := make([]string, 0, len(nodes))
	for n := range nodes {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)

	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	var sccs [][]string
	next := 0

	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			sort.Strings(scc)
			sccs = append(sccs, scc)
		}
	}
	for _, n := range sorted {
		if _, seen := index[n]; !seen {
			strongconnect(n)
		}
	}
	return sccs
}

// shortestCycle finds a shortest cycle through the smallest node of the
// SCC, restricted to SCC-internal edges, via BFS.
func shortestCycle(scc []string, adj map[string][]string) []string {
	in := map[string]bool{}
	for _, n := range scc {
		in[n] = true
	}
	start := scc[0] // scc is sorted
	parent := map[string]string{}
	queue := []string{start}
	visited := map[string]bool{start: true}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range adj[v] {
			if !in[w] {
				continue
			}
			if w == start {
				// Reconstruct start → ... → v, closing back to start.
				var rev []string
				for u := v; u != start; u = parent[u] {
					rev = append(rev, u)
				}
				cycle := []string{start}
				for i := len(rev) - 1; i >= 0; i-- {
					cycle = append(cycle, rev[i])
				}
				return cycle
			}
			if !visited[w] {
				visited[w] = true
				parent[w] = v
				queue = append(queue, w)
			}
		}
	}
	return nil
}
