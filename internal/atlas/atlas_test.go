package atlas_test

import (
	"testing"

	"revtr/internal/atlas"
	"revtr/internal/measure"
	"revtr/internal/netsim/ipv4"
	"revtr/internal/simtest"
)

func a(s string) ipv4.Addr { return ipv4.MustParseAddr(s) }

func TestLookupDirectAndSuffix(t *testing.T) {
	at := atlas.New(measure.Agent{Addr: a("1.0.0.1")})
	hops := []ipv4.Addr{a("2.0.0.1"), a("3.0.0.1"), a("4.0.0.1"), a("1.0.0.1")}
	e := at.Add("p0", 7, hops, 100)
	x, ok := at.Lookup(a("3.0.0.1"))
	if !ok {
		t.Fatal("no intersection")
	}
	if x.Entry != e || x.Pos != 1 {
		t.Fatalf("wrong ref: pos=%d", x.Pos)
	}
	if len(x.Suffix) != 2 || x.Suffix[0] != a("4.0.0.1") || x.Suffix[1] != a("1.0.0.1") {
		t.Fatalf("suffix %v", x.Suffix)
	}
	if x.ViaRRAlias {
		t.Error("direct hop flagged as RR alias")
	}
	if _, ok := at.Lookup(a("9.9.9.9")); ok {
		t.Error("phantom intersection")
	}
}

func TestFirstWriterWinsOnSharedHops(t *testing.T) {
	at := atlas.New(measure.Agent{Addr: a("1.0.0.1")})
	e1 := at.Add("p0", 1, []ipv4.Addr{a("2.0.0.1"), a("3.0.0.1"), a("1.0.0.1")}, 0)
	at.Add("p1", 2, []ipv4.Addr{a("5.0.0.1"), a("3.0.0.1"), a("1.0.0.1")}, 0)
	x, ok := at.Lookup(a("3.0.0.1"))
	if !ok || x.Entry != e1 {
		t.Fatal("shared hop not owned by first entry")
	}
}

func TestRemoveClearsIndexes(t *testing.T) {
	at := atlas.New(measure.Agent{Addr: a("1.0.0.1")})
	e := at.Add("p0", 1, []ipv4.Addr{a("2.0.0.1"), a("1.0.0.1")}, 0)
	at.Remove(e)
	if at.Size() != 0 {
		t.Fatal("entry not removed")
	}
	if _, ok := at.Lookup(a("2.0.0.1")); ok {
		t.Fatal("index not cleared")
	}
}

func TestBuildRRAliasesEnablesIntersections(t *testing.T) {
	env := simtest.New(t, 300, 4)
	srcHost := env.SourceHost(0)
	src := env.Agent(srcHost)
	at := atlas.New(src)

	// Measure real traceroutes from a few probes and attach RR aliases.
	added := 0
	for _, p := range env.Probes {
		if p.Agent.AS == src.AS {
			continue
		}
		tr := env.Prober.Traceroute(p.Agent, src.Addr)
		if !tr.ReachedDst {
			continue
		}
		e := at.Add(p.Agent.Name, int32(p.Agent.AS), tr.HopAddrs(), 0)
		at.BuildRRAliases(env.Prober, atlas.FixedSites(env.Sites), env.Alias, e)
		added++
		if added >= 15 {
			break
		}
	}
	if added == 0 {
		t.Skip("no traceroutes reached the source")
	}
	// The RR index should contain addresses beyond the traceroute hops
	// (egress interfaces revealed by the background RR probes).
	rrOnly := 0
	for _, e := range at.Entries {
		for _, h := range e.Hops {
			_ = h
		}
	}
	// Probe: take a later RR measurement toward the source from another
	// host and check whether any of its reverse stamps intersect.
	dst := env.ResponsiveHost(4, src.AS)
	rr := env.Prober.RRPing(src, dst.Addr)
	if rr.Responded {
		for _, x := range rr.Recorded {
			if ix, ok := at.Lookup(x); ok && ix.ViaRRAlias {
				rrOnly++
			}
		}
	}
	// At minimum the machinery must not corrupt direct lookups.
	for _, e := range at.Entries {
		for i, h := range e.Hops {
			x, ok := at.Lookup(h)
			if ok && x.Entry == e && x.Pos != i {
				t.Fatalf("direct hop %s has wrong position %d != %d", h, x.Pos, i)
			}
		}
	}
	t.Logf("atlas entries=%d rr-alias hits in sample=%d", added, rrOnly)
}

func TestServiceBuildAndRefresh(t *testing.T) {
	env := simtest.New(t, 300, 4)
	src := env.Agent(env.SourceHost(0))
	svc := atlas.NewService(env.Prober, env.Probes, atlas.FixedSites(env.Sites), env.Alias, 20, true, 4)
	at := svc.BuildFor(src)
	if at.Size() == 0 {
		t.Fatal("empty atlas")
	}
	size1 := at.Size()
	// Mark a couple useful and refresh: useful ones stay (same probe),
	// the rest get replaced.
	kept := map[string]bool{}
	for i, e := range at.Entries {
		if i < 3 {
			e.MarkUseful()
			kept[e.ProbeName] = true
		}
	}
	svc.Refresh(at)
	if at.Size() < size1/2 {
		t.Fatalf("refresh shrank atlas too much: %d -> %d", size1, at.Size())
	}
	found := 0
	for _, e := range at.Entries {
		if kept[e.ProbeName] {
			found++
		}
		if e.WasUseful() {
			t.Fatal("useful flags not reset after refresh")
		}
	}
	if found == 0 {
		t.Error("no useful entries survived refresh")
	}
}

func TestRateLimitStopsAtlasGrowth(t *testing.T) {
	env := simtest.New(t, 300, 4)
	src := env.Agent(env.SourceHost(0))
	for _, p := range env.Probes {
		p.Credits = 0
	}
	svc := atlas.NewService(env.Prober, env.Probes, atlas.FixedSites(env.Sites), env.Alias, 20, false, 4)
	at := svc.BuildFor(src)
	if at.Size() != 0 {
		t.Fatalf("atlas built despite exhausted credits: %d", at.Size())
	}
}
