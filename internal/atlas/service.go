package atlas

import (
	"math/rand"

	"revtr/internal/alias"
	"revtr/internal/measure"
	"revtr/internal/vantage"
)

// Service builds and maintains atlases: random probe selection (Insight
// 1.5), daily refresh with the Random++ replacement policy (keep
// traceroutes that proved useful, replace the rest — Appx D.2.1), and the
// background RR-alias measurements.
type Service struct {
	Prober *measure.Prober
	Probes []*vantage.Probe
	// Pick selects spoofing sites for background RR probes (§4.3
	// ingress-based when wired by the deployment).
	Pick  SitePicker
	Alias alias.Resolver
	// Size is the target number of traceroutes per source (the paper
	// settles on 1000 random RIPE Atlas probes per source daily).
	Size int
	// UseRRAliases enables the §4.2 background probes (revtr 2.0 only).
	UseRRAliases bool

	rng *rand.Rand
}

// NewService creates an atlas service.
func NewService(p *measure.Prober, probes []*vantage.Probe, pick SitePicker, res alias.Resolver, size int, useRRAliases bool, seed int64) *Service {
	return &Service{
		Prober: p, Probes: probes, Pick: pick, Alias: res,
		Size: size, UseRRAliases: useRRAliases,
		rng: rand.New(rand.NewSource(seed)),
	}
}

// BuildFor constructs a fresh atlas for source from Size randomly-chosen
// probes.
func (s *Service) BuildFor(source measure.Agent) *Atlas {
	a := New(source)
	s.fill(a, nil)
	return a
}

// fill tops the atlas up to Size traceroutes from random probes not in
// exclude (probe names).
func (s *Service) fill(a *Atlas, exclude map[string]bool) {
	inAtlas := map[string]bool{}
	for _, e := range a.Entries {
		inAtlas[e.ProbeName] = true
	}
	order := s.rng.Perm(len(s.Probes))
	for _, pi := range order {
		if a.Size() >= s.Size {
			return
		}
		probe := s.Probes[pi]
		if inAtlas[probe.Agent.Name] || (exclude != nil && exclude[probe.Agent.Name]) {
			continue
		}
		if !probe.Spend(1) {
			continue // rate limited
		}
		tr := s.Prober.Traceroute(probe.Agent, a.Source.Addr)
		if !tr.ReachedDst {
			continue
		}
		e := a.Add(probe.Agent.Name, int32(probe.Agent.AS), tr.HopAddrs(), s.Prober.Now())
		if s.UseRRAliases {
			a.BuildRRAliases(s.Prober, s.Pick, s.Alias, e)
		}
		inAtlas[probe.Agent.Name] = true
	}
}

// Refresh applies the daily replacement policy: entries that were useful
// since the last refresh are re-measured from the same probe; the rest
// are dropped and replaced with traceroutes from new random probes.
func (s *Service) Refresh(a *Atlas) {
	byName := map[string]*vantage.Probe{}
	for _, p := range s.Probes {
		byName[p.Agent.Name] = p
	}
	var keep []*Entry
	dropped := map[string]bool{}
	for _, e := range append([]*Entry(nil), a.Entries...) {
		if e.WasUseful() {
			keep = append(keep, e)
		} else {
			dropped[e.ProbeName] = true
			a.Remove(e)
		}
	}
	// Re-measure kept traceroutes so the atlas stays fresh.
	for _, e := range keep {
		probe, ok := byName[e.ProbeName]
		if !ok || !probe.Spend(1) {
			continue
		}
		tr := s.Prober.Traceroute(probe.Agent, a.Source.Addr)
		if !tr.ReachedDst {
			a.Remove(e)
			dropped[e.ProbeName] = true
			continue
		}
		a.Remove(e)
		ne := a.Add(e.ProbeName, e.ProbeAS, tr.HopAddrs(), s.Prober.Now())
		if s.UseRRAliases {
			a.BuildRRAliases(s.Prober, s.Pick, s.Alias, ne)
		}
	}
	s.fill(a, dropped)
	a.ResetUseful()
}
