// Package atlas implements the traceroute atlas (Q1) and the RR-atlas
// intersection technique (Q2, §4.2).
//
// An Atlas holds traceroutes from distributed probes toward one Reverse
// Traceroute source. A reverse traceroute that reaches any hop of an atlas
// traceroute can, under destination-based routing, adopt the traceroute's
// remaining suffix toward the source. Because routers expose different
// addresses to traceroute (ingress interfaces) and to Record Route (egress
// interfaces, loopbacks, …), the atlas also issues background RR probes to
// every traceroute hop to learn, ahead of time, which RR-visible addresses
// correspond to which traceroute position — so runtime intersection is a
// pure map lookup with no online alias resolution.
package atlas

import (
	"sync/atomic"

	"revtr/internal/alias"
	"revtr/internal/measure"
	"revtr/internal/netsim/ipv4"
)

// Entry is one atlas traceroute: the hop addresses measured from a probe
// toward the source, oldest-first (the last hop is at/near the source).
type Entry struct {
	ID           int
	ProbeName    string
	ProbeAS      int32
	Hops         []ipv4.Addr // responsive traceroute hops, in order toward the source
	MeasuredAtUS int64
	// useful records whether any reverse traceroute intersected this
	// entry since the last refresh — the Random++ replacement signal
	// (Appx D.2.1). Atomic because concurrent measurements mark entries
	// while the service reads them; use MarkUseful/WasUseful.
	useful atomic.Bool
	// Stale is set by the staleness auditor when a fresh re-measurement
	// disagrees (Fig 9d).
	Stale bool
}

// MarkUseful records that a reverse traceroute intersected this entry
// since the last refresh. Safe for concurrent use.
func (e *Entry) MarkUseful() { e.useful.Store(true) }

// WasUseful reports whether the entry was intersected since the last
// refresh.
func (e *Entry) WasUseful() bool { return e.useful.Load() }

// hopRef locates a hop within the atlas.
type hopRef struct {
	entry *Entry
	pos   int
}

// Intersection is a successful atlas lookup: the reverse path has reached
// Entry.Hops[Pos], so the rest of the reverse path follows the suffix.
type Intersection struct {
	Entry *Entry
	Pos   int
	// Suffix is the remaining path toward the source, excluding the
	// matched hop itself.
	Suffix []ipv4.Addr
	// ViaRRAlias reports whether the match came from the RR-atlas
	// aliases rather than a direct traceroute address.
	ViaRRAlias bool
}

// Atlas is the per-source traceroute atlas.
type Atlas struct {
	Source  measure.Agent
	Entries []*Entry

	nextID  int
	index   map[ipv4.Addr]hopRef // direct traceroute hop addresses
	rrIndex map[ipv4.Addr]hopRef // RR-visible aliases per hop (§4.2)
}

// New creates an empty atlas for a source.
func New(source measure.Agent) *Atlas {
	return &Atlas{
		Source:  source,
		index:   make(map[ipv4.Addr]hopRef),
		rrIndex: make(map[ipv4.Addr]hopRef),
	}
}

// Add inserts a traceroute measured at nowUS. Hops must be ordered toward
// the source and contain only responsive hops.
func (a *Atlas) Add(probeName string, probeAS int32, hops []ipv4.Addr, nowUS int64) *Entry {
	e := &Entry{
		ID:           a.nextID,
		ProbeName:    probeName,
		ProbeAS:      probeAS,
		Hops:         hops,
		MeasuredAtUS: nowUS,
	}
	a.nextID++
	a.Entries = append(a.Entries, e)
	for i, h := range hops {
		// First writer wins: earlier entries keep their hop claims so
		// suffixes stay internally consistent.
		if _, dup := a.index[h]; !dup {
			a.index[h] = hopRef{entry: e, pos: i}
		}
	}
	return e
}

// Remove deletes an entry and its index claims.
func (a *Atlas) Remove(e *Entry) {
	for i := range a.Entries {
		if a.Entries[i] == e {
			a.Entries = append(a.Entries[:i], a.Entries[i+1:]...)
			break
		}
	}
	drop := func(idx map[ipv4.Addr]hopRef) {
		for k, ref := range idx {
			if ref.entry == e {
				delete(idx, k)
			}
		}
	}
	drop(a.index)
	drop(a.rrIndex)
}

// Lookup checks whether addr is on (or RR-aliases to) an atlas traceroute
// and returns the suffix toward the source.
func (a *Atlas) Lookup(addr ipv4.Addr) (Intersection, bool) {
	if ref, ok := a.index[addr]; ok {
		return Intersection{
			Entry:  ref.entry,
			Pos:    ref.pos,
			Suffix: ref.entry.Hops[ref.pos+1:],
		}, true
	}
	if ref, ok := a.rrIndex[addr]; ok {
		return Intersection{
			Entry:      ref.entry,
			Pos:        ref.pos,
			Suffix:     ref.entry.Hops[ref.pos+1:],
			ViaRRAlias: true,
		}, true
	}
	return Intersection{}, false
}

// SitePicker selects spoofing vantage points for a background RR probe
// toward target (closest-first). The deployment wires this to the ingress
// service so RR-atlas probes use the §4.3 vantage point selection.
type SitePicker func(target ipv4.Addr) []measure.Agent

// BuildRRAliases issues the §4.2 background measurements for entry e:
// an RR ping from the source (or spoofed as the source from vantage
// points near the hop) to each traceroute hop, recording which RR-visible
// addresses correspond to which traceroute positions.
//
// Alignment of RR stamps to traceroute positions uses, in order: identity
// (ingress-stamping routers), the /30 point-to-point heuristic (an RR
// egress stamp shares the /30 of the next hop's traceroute ingress), the
// alias dataset, and finally sequential inference (Appx B.1).
func (a *Atlas) BuildRRAliases(p *measure.Prober, pick SitePicker, res alias.Resolver, e *Entry) {
	var p2p alias.Slash30
	for i, h := range e.Hops {
		rr := p.RRPing(a.Source, h)
		if !rr.Responded || len(rr.Recorded) == 0 {
			// Out of direct range or unresponsive: spoof from up to
			// three vantage points near the hop.
			tried := 0
			for _, s := range pick(h) {
				if !s.CanSpoof || s.Addr == a.Source.Addr {
					continue
				}
				rr = p.SpoofedRRPing(s, a.Source.Addr, h)
				tried++
				if rr.Responded && len(rr.Recorded) > 0 {
					break
				}
				if tried >= 3 {
					break
				}
			}
		}
		if !rr.Responded {
			continue
		}
		a.associate(rr.Recorded, e, i, res, p2p)
	}
}

// FixedSites adapts a static site list into a SitePicker.
func FixedSites(sites []measure.Agent) SitePicker {
	return func(ipv4.Addr) []measure.Agent { return sites }
}

// associate aligns the recorded RR addresses of a probe to hop position
// probedPos of entry e and fills rrIndex.
func (a *Atlas) associate(recorded []ipv4.Addr, e *Entry, probedPos int, res alias.Resolver, p2p alias.Slash30) {
	h := e.Hops[probedPos]
	// Find the marker: the first recorded address attributable to the
	// probed hop's router or its ingress link.
	marker := -1
	for k, x := range recorded {
		if x == h || p2p.SameLink(x, h) || (res != nil && res.SameRouter(x, h)) {
			marker = k
			break
		}
	}
	if marker < 0 {
		return
	}
	// Addresses from the marker on belong to positions probedPos,
	// probedPos+1, …: refine with identity//30 matches against the
	// traceroute, fall back to sequential inference.
	pos := probedPos
	for k := marker; k < len(recorded); k++ {
		x := recorded[k]
		matched := false
		for j := pos; j < len(e.Hops) && j <= pos+2; j++ {
			if x == e.Hops[j] ||
				(j+1 < len(e.Hops) && p2p.SameLink(x, e.Hops[j+1])) ||
				(res != nil && res.SameRouter(x, e.Hops[j])) {
				pos = j
				matched = true
				break
			}
		}
		if !matched && k > marker {
			pos++ // sequential inference
		}
		if pos >= len(e.Hops) {
			break
		}
		if _, dup := a.index[x]; dup {
			continue
		}
		if _, dup := a.rrIndex[x]; !dup {
			a.rrIndex[x] = hopRef{entry: e, pos: pos}
		}
	}
}

// ResetUseful clears the per-refresh usefulness marks.
func (a *Atlas) ResetUseful() {
	for _, e := range a.Entries {
		e.useful.Store(false)
	}
}

// Size returns the number of traceroutes currently in the atlas.
func (a *Atlas) Size() int { return len(a.Entries) }
