package atlas_test

import (
	"testing"

	"revtr/internal/atlas"
	"revtr/internal/netsim/ipv4"
	"revtr/internal/simtest"
)

// TestIntersectionSoundness is the atlas's core correctness property: if
// Lookup(x) says the reverse path continues along Suffix toward the
// source, then a packet at that hop reaches the source through routers
// consistent with the suffix. The property is statistical, not absolute —
// per-flow load balancers pick among equal-cost paths by flow identifier
// and destination-based-routing violators by packet source (Appx E), both
// of which the paper documents as rare sources of divergence. The test
// verifies against ground truth and asserts the violation rate stays in
// the paper's "rare" regime.
func TestIntersectionSoundness(t *testing.T) {
	env := simtest.New(t, 300, 12)
	src := env.Agent(env.SourceHost(0))
	at := atlas.New(src)

	added := 0
	for _, p := range env.Probes {
		if p.Agent.AS == src.AS {
			continue
		}
		tr := env.Prober.Traceroute(p.Agent, src.Addr)
		if !tr.ReachedDst {
			continue
		}
		at.Add(p.Agent.Name, int32(p.Agent.AS), tr.HopAddrs(), 0)
		added++
		if added >= 30 {
			break
		}
	}
	if added == 0 {
		t.Skip("no atlas entries")
	}

	checked, violations := 0, 0
	for _, e := range at.Entries {
		for i, h := range e.Hops[:len(e.Hops)-1] {
			x, ok := at.Lookup(h)
			if !ok || x.Entry != e || x.Pos != i {
				continue // hop owned by an earlier entry: checked there
			}
			router, isRouter := env.Topo.RouterOf(h)
			if !isRouter {
				continue
			}
			truth := env.Fabric.ForwardRouterPath(router, src.Addr, h, 0)
			if truth == nil {
				continue
			}
			onPath := map[ipv4.Addr]bool{src.Addr: true}
			for _, r := range truth {
				for _, a := range env.Topo.Aliases(r) {
					onPath[a] = true
				}
			}
			for _, sfx := range x.Suffix {
				if _, isHost := env.Topo.HostOf(sfx); isHost {
					continue // the source endpoint itself
				}
				checked++
				if !onPath[sfx] {
					violations++
				}
			}
		}
	}
	if checked == 0 {
		t.Skip("no verifiable suffix hops")
	}
	rate := float64(violations) / float64(checked)
	t.Logf("verified %d suffix hops; %d diverge (%.1f%%, load balancing / DBR violators)",
		checked, violations, 100*rate)
	if rate > 0.10 {
		t.Fatalf("intersection violation rate %.1f%% exceeds the rare-divergence regime", 100*rate)
	}
}
