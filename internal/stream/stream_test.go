package stream_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"revtr/internal/obs"
	"revtr/internal/stream"
)

// drain pops everything currently buffered.
func drain(t *testing.T, s *stream.Sub) []stream.Event {
	t.Helper()
	var out []stream.Event
	for {
		ev, ok, err := s.TryNext()
		if err != nil || !ok {
			return out
		}
		out = append(out, ev)
	}
}

// TestPublishSubscribeOrder: events arrive in publish order with
// monotonically increasing per-topic delivery IDs.
func TestPublishSubscribeOrder(t *testing.T) {
	b := stream.New(stream.Options{})
	sub, err := b.Subscribe("t", stream.SubOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		b.Publish("t", stream.Event{Kind: stream.KindHop, Hop: fmt.Sprintf("h%d", i)})
	}
	evs := drain(t, sub)
	if len(evs) != 5 {
		t.Fatalf("got %d events, want 5", len(evs))
	}
	for i, ev := range evs {
		if ev.Hop != fmt.Sprintf("h%d", i) {
			t.Fatalf("event %d out of order: %+v", i, ev)
		}
		if ev.ID != uint64(i+1) {
			t.Fatalf("event %d has ID %d, want %d", i, ev.ID, i+1)
		}
	}
}

// TestOverflowGapsAndLedger: a subscriber that never drains overflows
// its ring, sees a gap event carrying the exact loss, and its ledger
// balances: Offered == Delivered + Dropped + Buffered.
func TestOverflowGapsAndLedger(t *testing.T) {
	o := obs.New()
	b := stream.New(stream.Options{SubBuffer: 4, Obs: o})
	sub, err := b.Subscribe("t", stream.SubOptions{})
	if err != nil {
		t.Fatal(err)
	}
	const published = 20
	for i := 0; i < published; i++ {
		b.Publish("t", stream.Event{Kind: stream.KindHop})
	}
	ev, ok, err := sub.TryNext()
	if err != nil || !ok {
		t.Fatalf("TryNext: ok=%v err=%v", ok, err)
	}
	if ev.Kind != stream.KindGap || ev.Gap != published-4 {
		t.Fatalf("first event = %+v, want gap of %d", ev, published-4)
	}
	rest := drain(t, sub)
	if len(rest) != 4 {
		t.Fatalf("drained %d events after the gap, want 4", len(rest))
	}
	// Survivors are the newest 4.
	if rest[0].ID != published-3 || rest[3].ID != published {
		t.Fatalf("survivor IDs %d..%d, want %d..%d", rest[0].ID, rest[3].ID, published-3, published)
	}
	st := sub.Stats()
	if st.Offered != st.Delivered+st.Dropped+uint64(st.Buffered) {
		t.Fatalf("ledger does not balance: %+v", st)
	}
	if st.Dropped != published-4 || st.Gaps != 1 {
		t.Fatalf("stats = %+v, want dropped=%d gaps=1", st, published-4)
	}
	if got := o.Counter(obs.Label("stream_dropped_total", "reason", "slow-subscriber")).Value(); got != published-4 {
		t.Fatalf("stream_dropped_total{slow-subscriber} = %d, want %d", got, published-4)
	}
}

// TestReplayResume: a reconnecting subscriber resumes after its last
// seen ID; a resume point that slid out of the window yields a leading
// gap, never a silent skip.
func TestReplayResume(t *testing.T) {
	b := stream.New(stream.Options{Replay: 8})
	for i := 0; i < 20; i++ {
		b.Publish("t", stream.Event{Kind: stream.KindHop})
	}
	// Resume within the window (newest 8 events are IDs 13..20).
	sub, err := b.Subscribe("t", stream.SubOptions{AfterID: 15})
	if err != nil {
		t.Fatal(err)
	}
	evs := drain(t, sub)
	if len(evs) != 5 || evs[0].ID != 16 || evs[4].ID != 20 {
		t.Fatalf("resume after 15: got %d events (IDs %v...), want 16..20", len(evs), evs)
	}
	sub.Close()

	// Resume out of the window: IDs 6..12 are lost, reported as a gap.
	sub2, err := b.Subscribe("t", stream.SubOptions{AfterID: 5})
	if err != nil {
		t.Fatal(err)
	}
	evs2 := drain(t, sub2)
	if evs2[0].Kind != stream.KindGap || evs2[0].Gap != 7 {
		t.Fatalf("out-of-window resume: first event %+v, want gap of 7", evs2[0])
	}
	if len(evs2) != 9 { // gap + 8 retained
		t.Fatalf("got %d events, want 9", len(evs2))
	}
	sub2.Close()

	// Live-only: nothing replayed.
	sub3, err := b.Subscribe("t", stream.SubOptions{AfterID: -1})
	if err != nil {
		t.Fatal(err)
	}
	if evs3 := drain(t, sub3); len(evs3) != 0 {
		t.Fatalf("live-only subscription replayed %d events", len(evs3))
	}
	sub3.Close()
}

// TestSubscribeAfterDone: a topic that published its end event and
// finished still serves its retained window — terminal state included —
// to late subscribers, and the end event survives window eviction.
func TestSubscribeAfterDone(t *testing.T) {
	b := stream.New(stream.Options{Replay: 4})
	for i := 0; i < 10; i++ {
		b.Publish("t", stream.Event{Kind: stream.KindState})
	}
	b.Publish("t", stream.Event{Kind: stream.KindEnd, Reason: "done"})
	b.Finish("t")

	sub, err := b.Subscribe("t", stream.SubOptions{})
	if err != nil {
		t.Fatal(err)
	}
	evs := drain(t, sub)
	if len(evs) == 0 {
		t.Fatal("subscribe-after-done got nothing")
	}
	last := evs[len(evs)-1]
	if last.Kind != stream.KindEnd || last.Reason != "done" {
		t.Fatalf("last replayed event = %+v, want the end event", last)
	}
	sub.Close()
}

// TestCloseUser: revocation ends exactly the owner's subscriptions,
// with a terminal end event carrying the reason; other owners' streams
// live on.
func TestCloseUser(t *testing.T) {
	b := stream.New(stream.Options{})
	alice, err := b.Subscribe("t", stream.SubOptions{Owner: "alice-key"})
	if err != nil {
		t.Fatal(err)
	}
	bob, err := b.Subscribe("t", stream.SubOptions{Owner: "bob-key"})
	if err != nil {
		t.Fatal(err)
	}
	b.CloseUser("alice-key", "revoked")

	evs := drain(t, alice)
	if len(evs) != 1 || evs[0].Kind != stream.KindEnd || evs[0].Reason != "revoked" {
		t.Fatalf("alice got %+v, want one end/revoked event", evs)
	}
	if _, _, err := alice.TryNext(); !errors.Is(err, stream.ErrClosed) {
		t.Fatalf("alice after drain: err=%v, want ErrClosed", err)
	}

	b.Publish("t", stream.Event{Kind: stream.KindHop})
	bevs := drain(t, bob)
	if len(bevs) != 1 || bevs[0].Kind != stream.KindHop {
		t.Fatalf("bob got %+v, want the live hop event", bevs)
	}
	bob.Close()
}

// TestShutdown: every subscription ends with an end/shutdown event,
// later publishes are dropped (counted), and later subscriptions are
// refused with ErrShutdown.
func TestShutdown(t *testing.T) {
	o := obs.New()
	b := stream.New(stream.Options{Obs: o})
	sub, err := b.Subscribe("t", stream.SubOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b.Shutdown()
	b.Shutdown() // idempotent

	evs := drain(t, sub)
	if len(evs) != 1 || evs[0].Kind != stream.KindEnd || evs[0].Reason != "shutdown" {
		t.Fatalf("got %+v, want one end/shutdown event", evs)
	}
	if _, _, err := sub.TryNext(); !errors.Is(err, stream.ErrClosed) {
		t.Fatalf("after shutdown drain: err=%v, want ErrClosed", err)
	}

	b.Publish("t", stream.Event{Kind: stream.KindHop})
	if got := o.Counter(obs.Label("stream_dropped_total", "reason", "shutdown")).Value(); got != 1 {
		t.Fatalf("stream_dropped_total{shutdown} = %d, want 1", got)
	}
	if _, err := b.Subscribe("t", stream.SubOptions{}); !errors.Is(err, stream.ErrShutdown) {
		t.Fatalf("Subscribe after shutdown: %v, want ErrShutdown", err)
	}
	if n := b.Subscribers(); n != 0 {
		t.Fatalf("%d subscribers after shutdown, want 0", n)
	}
}

// TestBounds: the per-topic subscriber cap and the topic-registry cap
// hold; finished topics are evicted to admit new ones, closing their
// stragglers with end/evicted.
func TestBounds(t *testing.T) {
	b := stream.New(stream.Options{MaxSubs: 2, MaxTopics: 2})
	s1, _ := b.Subscribe("a", stream.SubOptions{})
	s2, _ := b.Subscribe("a", stream.SubOptions{})
	if _, err := b.Subscribe("a", stream.SubOptions{}); !errors.Is(err, stream.ErrTooManySubscribers) {
		t.Fatalf("3rd subscriber: %v, want ErrTooManySubscribers", err)
	}
	s1.Close()
	s3, err := b.Subscribe("a", stream.SubOptions{})
	if err != nil {
		t.Fatalf("subscribe after a Close should fit: %v", err)
	}

	// Registry full of unfinished topics: nothing evictable.
	b.Publish("b", stream.Event{Kind: stream.KindHop})
	if _, err := b.Subscribe("c", stream.SubOptions{}); !errors.Is(err, stream.ErrTooManyTopics) {
		t.Fatalf("3rd topic: %v, want ErrTooManyTopics", err)
	}

	// Finishing one admits the next; its straggler ends with "evicted".
	b.Publish("a", stream.Event{Kind: stream.KindEnd, Reason: "done"})
	b.Finish("a")
	if _, err := b.Subscribe("c", stream.SubOptions{}); err != nil {
		t.Fatalf("topic after eviction: %v", err)
	}
	for _, s := range []*stream.Sub{s2, s3} {
		evs := drain(t, s)
		last := evs[len(evs)-1]
		if last.Kind != stream.KindEnd || last.Reason != "evicted" {
			t.Fatalf("straggler's last event = %+v, want end/evicted", last)
		}
	}
}

// TestFilter: a filtered subscription sees only admitted events, and
// filtered-out events never count against its ledger.
func TestFilter(t *testing.T) {
	b := stream.New(stream.Options{})
	sub, err := b.Subscribe("t", stream.SubOptions{
		Filter: func(ev stream.Event) bool { return ev.User == "alice" },
	})
	if err != nil {
		t.Fatal(err)
	}
	b.Publish("t", stream.Event{Kind: stream.KindMeasurement, User: "alice"})
	b.Publish("t", stream.Event{Kind: stream.KindMeasurement, User: "bob"})
	b.Publish("t", stream.Event{Kind: stream.KindMeasurement, User: "alice"})
	evs := drain(t, sub)
	if len(evs) != 2 {
		t.Fatalf("filtered subscription got %d events, want 2", len(evs))
	}
	if st := sub.Stats(); st.Offered != 2 {
		t.Fatalf("filtered-out events counted as offered: %+v", st)
	}
	sub.Close()
}

// TestNextBlocking: Next wakes on publish and honors context
// cancellation.
func TestNextBlocking(t *testing.T) {
	b := stream.New(stream.Options{})
	sub, err := b.Subscribe("t", stream.SubOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		b.Publish("t", stream.Event{Kind: stream.KindHop, Hop: "h"})
	}()
	ev, err := sub.Next(context.Background())
	if err != nil || ev.Hop != "h" {
		t.Fatalf("Next = %+v, %v", ev, err)
	}
	wg.Wait()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sub.Next(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Next on cancelled ctx: %v", err)
	}
	sub.Close()
}

// TestConcurrentPublish: racing publishers, subscribers, and closers
// never deadlock or panic, and every ledger balances (run under -race).
func TestConcurrentPublish(t *testing.T) {
	b := stream.New(stream.Options{SubBuffer: 8})
	var wg sync.WaitGroup
	subs := make([]*stream.Sub, 8)
	for i := range subs {
		s, err := b.Subscribe("t", stream.SubOptions{})
		if err != nil {
			t.Fatal(err)
		}
		subs[i] = s
	}
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				b.Publish("t", stream.Event{Kind: stream.KindHop})
			}
		}()
	}
	for _, s := range subs[:4] {
		wg.Add(1)
		go func(s *stream.Sub) {
			defer wg.Done()
			for {
				_, ok, err := s.TryNext()
				if err != nil {
					return
				}
				if !ok {
					st := s.Stats()
					if st.Delivered+st.Dropped >= 2000 {
						return
					}
				}
			}
		}(s)
	}
	wg.Wait()
	for i, s := range subs {
		st := s.Stats()
		if st.Offered != st.Delivered+st.Dropped+uint64(st.Buffered)+st.Gaps*0 {
			t.Fatalf("sub %d ledger does not balance: %+v", i, st)
		}
		s.Close()
	}
}
