// Package stream is the progress-streaming layer: a stdlib-only
// pub/sub broker that fans measurement progress events (hop reveals,
// technique fallbacks, scheduler state transitions, completed
// measurements) out to HTTP subscribers without ever blocking the
// measurement path.
//
// The backpressure contract is strict and one-sided: publishers never
// wait. Every subscriber owns a fixed-size ring; when it overflows the
// oldest buffered events are dropped, the drop is counted
// (stream_dropped_total{reason="slow-subscriber"}), and the subscriber
// receives an explicit synthetic "gap" event carrying the count at the
// position of the loss — a slow reader learns exactly how much it
// missed, and a stalled reader costs the system nothing but its ring.
//
// Every topic keeps a small replay window of its newest events with
// monotonically increasing per-topic delivery IDs, so a reconnecting
// subscriber can resume after the last ID it saw (Last-Event-ID); a
// resume point that has slid out of the window is reported as a
// leading gap, never silently skipped. Terminal "end" events are
// force-appended so the window always retains a finished topic's
// terminal state.
//
// The broker spawns no goroutines: consumption is a non-blocking
// TryNext plus a notification channel (or the blocking Next
// convenience wrapper), so an HTTP handler pumps events from its own
// request goroutine and nothing outlives the request.
package stream

import (
	"context"
	"errors"
	"sync"

	"revtr/internal/obs"
)

// Event kinds. Per-measurement progress kinds (started..cancelled)
// carry deterministic per-measurement sequence numbers and virtual
// timestamps; broker kinds (state, gap, end) are stamped only with the
// per-topic delivery ID.
const (
	// KindStarted opens a measurement's event sequence (src, dst).
	KindStarted = "started"
	// KindHop is one revealed reverse hop (hop, technique, spliced).
	KindHop = "hop"
	// KindSpliced precedes the hop events of a memoized suffix adopted
	// from the segment store; Count is the spliced chain length.
	KindSpliced = "spliced"
	// KindFallback marks a technique giving up and the next one taking
	// over; Tech names the technique being fallen back to.
	KindFallback = "fallback"
	// KindVPFailover marks a vantage point observed dead and skipped;
	// Hop carries the VP address.
	KindVPFailover = "vp-failover"
	// KindDone/KindAborted/KindFailed/KindCancelled close a
	// measurement's event sequence, mirroring its Result status.
	KindDone      = "done"
	KindAborted   = "aborted"
	KindFailed    = "failed"
	KindCancelled = "cancelled"
	// KindState is a scheduler job lifecycle transition
	// (queued → running → coalesced/done/failed/shed).
	KindState = "state"
	// KindGap is synthesized by the broker where events were dropped
	// (slow subscriber) or are unreplayable (resume point out of
	// window); Gap is the number of events missed.
	KindGap = "gap"
	// KindMeasurement is one completed measurement on the firehose.
	KindMeasurement = "measurement"
	// KindEnd terminates a stream: the batch finished, the subscriber's
	// user was revoked, or the server is shutting down (see Reason).
	KindEnd = "end"
)

// Firehose is the well-known topic carrying every completed
// measurement server-wide. Batch topics are named by BatchTopic.
const Firehose = "firehose"

// BatchTopic names the per-batch progress topic.
func BatchTopic(batchID string) string { return "batch/" + batchID }

// Event is one streamed progress event — the NDJSON wire format of the
// /events and /firehose endpoints. Fields are populated per kind; Job
// is meaningful only on batch-topic per-job kinds.
type Event struct {
	// ID is the per-topic delivery sequence number, the resume cursor
	// for Last-Event-ID reconnects. Synthetic events (gap) carry none.
	ID   uint64 `json:"id,omitempty"`
	Kind string `json:"kind"`
	// Seq is the per-measurement deterministic sequence number: for a
	// fixed seed it is bit-identical across workers=1/N and across the
	// blocking and asynchronous measurement paths.
	Seq uint64 `json:"seq,omitempty"`
	// VirtUS is the measurement's accumulated virtual probing time at
	// emission — deterministic, unlike any wall clock.
	VirtUS  int64  `json:"virtualUs,omitempty"`
	Batch   string `json:"batch,omitempty"`
	Job     int    `json:"job"`
	User    string `json:"user,omitempty"`
	Src     string `json:"src,omitempty"`
	Dst     string `json:"dst,omitempty"`
	Hop     string `json:"hop,omitempty"`
	Tech    string `json:"technique,omitempty"`
	Spliced bool   `json:"spliced,omitempty"`
	// Count is the spliced chain length on KindSpliced events.
	Count int `json:"count,omitempty"`
	// State is the scheduler job state on KindState events.
	State  string `json:"state,omitempty"`
	Status string `json:"status,omitempty"`
	// Reason qualifies KindEnd: "done", "revoked", "shutdown", "evicted".
	Reason string `json:"reason,omitempty"`
	// Gap is the number of events missed on KindGap events.
	Gap uint64 `json:"gap,omitempty"`
	Err string `json:"error,omitempty"`
	// Result carries the archived measurement on KindMeasurement events.
	Result any `json:"result,omitempty"`
}

var (
	// ErrClosed reports a subscription whose stream has terminated (its
	// ring is drained and no further events will arrive).
	ErrClosed = errors.New("stream: subscription closed")
	// ErrShutdown rejects subscriptions on a broker that was shut down.
	ErrShutdown = errors.New("stream: broker shut down")
	// ErrTooManySubscribers rejects subscriptions past the per-topic cap.
	ErrTooManySubscribers = errors.New("stream: too many subscribers on topic")
	// ErrTooManyTopics rejects subscriptions when the topic registry is
	// full and nothing finished is evictable.
	ErrTooManyTopics = errors.New("stream: topic registry full")
)

// Options tunes the broker.
type Options struct {
	// SubBuffer is each subscriber's ring capacity; overflow drops the
	// oldest buffered events and synthesizes a gap. <= 0 means 256.
	SubBuffer int
	// Replay is the per-topic replay window (newest events retained for
	// Last-Event-ID resume and subscribe-after-done). <= 0 means 64.
	Replay int
	// MaxSubs bounds subscribers per topic. <= 0 means 64.
	MaxSubs int
	// MaxTopics bounds the topic registry; finished topics are evicted
	// oldest-first to admit new ones. <= 0 means 4096.
	MaxTopics int
	// Obs receives the stream_* metric family; nil disables metrics.
	Obs *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.SubBuffer <= 0 {
		o.SubBuffer = 256
	}
	if o.Replay <= 0 {
		o.Replay = 64
	}
	if o.MaxSubs <= 0 {
		o.MaxSubs = 64
	}
	if o.MaxTopics <= 0 {
		o.MaxTopics = 4096
	}
	return o
}

// topic is one event stream: its replay window, delivery-ID counter,
// and attached subscribers. Lock order: Broker.mu → topic.mu → Sub.mu.
type topic struct {
	name string

	mu     sync.Mutex
	nextID uint64
	subs   []*Sub
	// replay holds the newest events (ascending IDs), bounded by
	// Options.Replay. KindEnd events are force-retained at the tail.
	replay []Event
	done   bool
}

// Broker is the pub/sub fan-out. Safe for concurrent use; Publish
// never blocks on subscribers.
type Broker struct {
	opts Options

	mu       sync.Mutex
	topics   map[string]*topic
	order    []string // topic creation order, for eviction
	shutdown bool

	subs *obs.Gauge
	gaps *obs.Counter
	// delivered counts real (non-synthetic) events handed to consumers.
	delivered *obs.Counter
	// events and dropped pre-resolve the labelled counters for the
	// closed sets of kinds and drop reasons (obsnames: the base names
	// are compile-time constants, registered once, here).
	events  map[string]*obs.Counter
	dropped map[string]*obs.Counter
}

// Drop reasons on stream_dropped_total.
const (
	dropSlowSubscriber = "slow-subscriber"
	dropUnsubscribed   = "unsubscribed"
	dropShutdown       = "shutdown"
	dropTopicsCapped   = "topics-capped"
)

// New builds a broker. Metrics land in opts.Obs (nil-safe).
func New(opts Options) *Broker {
	opts = opts.withDefaults()
	b := &Broker{
		opts:      opts,
		topics:    make(map[string]*topic),
		subs:      opts.Obs.Gauge("stream_subscribers"),
		gaps:      opts.Obs.Counter("stream_gap_events_total"),
		delivered: opts.Obs.Counter("stream_delivered_total"),
		events:    make(map[string]*obs.Counter),
		dropped:   make(map[string]*obs.Counter),
	}
	for _, k := range []string{
		KindStarted, KindHop, KindSpliced, KindFallback, KindVPFailover,
		KindDone, KindAborted, KindFailed, KindCancelled,
		KindState, KindGap, KindMeasurement, KindEnd,
	} {
		b.events[k] = opts.Obs.Counter(obs.Label("stream_events_total", "kind", k))
	}
	for _, reason := range []string{
		dropSlowSubscriber, dropUnsubscribed, dropShutdown, dropTopicsCapped,
	} {
		b.dropped[reason] = opts.Obs.Counter(obs.Label("stream_dropped_total", "reason", reason))
	}
	return b
}

// countEvent tallies one published event by kind.
func (b *Broker) countEvent(kind string) {
	if c, ok := b.events[kind]; ok {
		c.Inc()
	}
}

// countDropped tallies dropped events by reason.
func (b *Broker) countDropped(reason string, n uint64) {
	if n == 0 {
		return
	}
	if c, ok := b.dropped[reason]; ok {
		c.Add(n)
	}
}

// lookup resolves (or creates) a topic. A nil return means the event
// has nowhere to go: the broker is shut down, or the registry is full
// of unfinished topics.
func (b *Broker) lookup(name string, create bool) *topic {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.shutdown {
		return nil
	}
	t := b.topics[name]
	if t != nil || !create {
		return t
	}
	if len(b.topics) >= b.opts.MaxTopics && !b.evictLocked() {
		return nil
	}
	t = &topic{name: name}
	b.topics[name] = t
	b.order = append(b.order, name)
	return t
}

// evictLocked removes the oldest finished topic, closing any straggler
// subscribers with an "evicted" end event. Callers hold b.mu.
func (b *Broker) evictLocked() bool {
	for i, name := range b.order {
		t := b.topics[name]
		if t == nil {
			// Already deleted; compact the order lazily.
			b.order = append(b.order[:i], b.order[i+1:]...)
			return b.evictLocked()
		}
		t.mu.Lock()
		done := t.done
		var subs []*Sub
		if done {
			subs = t.subs
			t.subs = nil
		}
		t.mu.Unlock()
		if !done {
			continue
		}
		for _, s := range subs {
			s.terminate(Event{Kind: KindEnd, Job: -1, Reason: "evicted"}, b)
		}
		delete(b.topics, name)
		b.order = append(b.order[:i], b.order[i+1:]...)
		return true
	}
	return false
}

// Publish fans one event out to a topic's subscribers and appends it
// to the replay window. It never blocks: slow subscribers overflow
// their rings and gap. Publishing to a shut-down broker (or into a
// full registry) drops the event.
func (b *Broker) Publish(topicName string, ev Event) {
	t := b.lookup(topicName, true)
	if t == nil {
		b.countDropped(chooseDropReason(b), 1)
		return
	}
	t.mu.Lock()
	t.nextID++
	ev.ID = t.nextID
	t.appendReplayLocked(ev, b.opts.Replay)
	subs := t.subs
	for _, s := range subs {
		s.offer(ev, b)
	}
	t.mu.Unlock()
	b.countEvent(ev.Kind)
}

// chooseDropReason classifies a Publish that found no topic.
func chooseDropReason(b *Broker) string {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.shutdown {
		return dropShutdown
	}
	return dropTopicsCapped
}

// appendReplayLocked appends ev to the replay window, evicting the
// oldest events past cap — but never an end event at the tail, so a
// finished topic's terminal state always survives for late
// subscribers. Callers hold t.mu.
func (t *topic) appendReplayLocked(ev Event, cap int) {
	t.replay = append(t.replay, ev)
	if len(t.replay) > cap {
		t.replay = t.replay[len(t.replay)-cap:]
	}
}

// Finish marks a topic complete: no further events are expected and
// the topic becomes evictable. The terminal end event must have been
// published first; Finish itself publishes nothing.
func (b *Broker) Finish(topicName string) {
	t := b.lookup(topicName, false)
	if t == nil {
		return
	}
	t.mu.Lock()
	t.done = true
	t.mu.Unlock()
}

// SubOptions configures one subscription.
type SubOptions struct {
	// Owner ties the subscription to an API key: CloseUser(owner)
	// terminates every subscription it owns (user revocation).
	Owner string
	// AfterID resumes delivery after a per-topic delivery ID: replayed
	// events with ID <= AfterID are skipped. 0 replays the whole
	// retained window; negative subscribes live-only (no replay). A
	// resume point older than the window yields a leading gap event.
	AfterID int64
	// Filter, when set, admits only matching events (firehose scoping).
	// It must be pure; it runs under the topic lock on the publish path.
	Filter func(Event) bool
}

// Subscribe attaches a subscriber to a topic, prefilling its ring from
// the replay window per opts.AfterID.
func (b *Broker) Subscribe(topicName string, opts SubOptions) (*Sub, error) {
	t := b.lookup(topicName, true)
	if t == nil {
		b.mu.Lock()
		down := b.shutdown
		b.mu.Unlock()
		if down {
			return nil, ErrShutdown
		}
		return nil, ErrTooManyTopics
	}
	s := &Sub{
		topic:  t,
		broker: b,
		owner:  opts.Owner,
		filter: opts.Filter,
		buf:    make([]Event, b.opts.SubBuffer),
		notify: make(chan struct{}, 1),
	}
	t.mu.Lock()
	if len(t.subs) >= b.opts.MaxSubs {
		t.mu.Unlock()
		return nil, ErrTooManySubscribers
	}
	t.subs = append(t.subs, s)
	if opts.AfterID >= 0 {
		after := uint64(opts.AfterID)
		if len(t.replay) > 0 {
			if oldest := t.replay[0].ID; oldest > after+1 {
				// The resume point slid out of the window: everything
				// between it and the oldest retained event is lost.
				s.pendingGap += oldest - after - 1
			}
		} else if t.nextID > after {
			s.pendingGap += t.nextID - after
		}
		for _, ev := range t.replay {
			if ev.ID > after {
				s.offer(ev, b)
			}
		}
	}
	t.mu.Unlock()
	b.subs.Add(1)
	return s, nil
}

// CloseUser terminates every subscription owned by owner across all
// topics with an end event carrying reason — the revocation hook: a
// revoked key's streams end explicitly instead of idling forever.
func (b *Broker) CloseUser(owner, reason string) {
	b.mu.Lock()
	topics := make([]*topic, 0, len(b.topics))
	for _, t := range b.topics {
		topics = append(topics, t)
	}
	b.mu.Unlock()
	for _, t := range topics {
		var closing []*Sub
		t.mu.Lock()
		kept := t.subs[:0]
		for _, s := range t.subs {
			if s.owner == owner {
				closing = append(closing, s)
				continue
			}
			kept = append(kept, s)
		}
		t.subs = kept
		t.mu.Unlock()
		for _, s := range closing {
			s.terminate(Event{Kind: KindEnd, Job: -1, Reason: reason}, b)
		}
	}
}

// Shutdown terminates every subscription with an end event and rejects
// all future publishes and subscriptions. Call before http.Server
// Shutdown: streaming handlers hold their connections open until their
// subscription ends, and Shutdown waits for active connections.
func (b *Broker) Shutdown() {
	b.mu.Lock()
	if b.shutdown {
		b.mu.Unlock()
		return
	}
	b.shutdown = true
	topics := make([]*topic, 0, len(b.topics))
	for _, t := range b.topics {
		topics = append(topics, t)
	}
	b.topics = make(map[string]*topic)
	b.order = nil
	b.mu.Unlock()
	for _, t := range topics {
		t.mu.Lock()
		subs := t.subs
		t.subs = nil
		t.mu.Unlock()
		for _, s := range subs {
			s.terminate(Event{Kind: KindEnd, Job: -1, Reason: "shutdown"}, b)
		}
	}
}

// Subscribers reports the current subscriber count across all topics.
func (b *Broker) Subscribers() int {
	b.mu.Lock()
	topics := make([]*topic, 0, len(b.topics))
	for _, t := range b.topics {
		topics = append(topics, t)
	}
	b.mu.Unlock()
	n := 0
	for _, t := range topics {
		t.mu.Lock()
		n += len(t.subs)
		t.mu.Unlock()
	}
	return n
}

// SubStats is one subscription's delivery ledger. The conservation
// invariant — checked by the backpressure tests — is
// Offered == Delivered + Dropped + Buffered.
type SubStats struct {
	// Offered counts events the publish path accepted for this
	// subscriber (post-filter), including any replay prefill.
	Offered uint64
	// Delivered counts real events handed out by TryNext/Next
	// (synthetic gap events are counted in Gaps instead).
	Delivered uint64
	// Dropped counts events lost to ring overflow or discarded
	// unconsumed at close.
	Dropped uint64
	// Buffered is the ring's current occupancy.
	Buffered int
	// Gaps counts synthetic gap events delivered.
	Gaps uint64
}

// Sub is one subscription: a fixed ring of undelivered events plus a
// wakeup channel. One consumer goroutine at a time.
type Sub struct {
	topic  *topic
	broker *Broker
	owner  string
	filter func(Event) bool

	mu         sync.Mutex
	buf        []Event // fixed-capacity ring
	head, n    int
	pendingGap uint64
	closed     bool

	offered, delivered, dropped, gaps uint64

	notify chan struct{}
}

// offer enqueues one event without blocking, dropping the oldest
// buffered event (and accounting a gap) on overflow. Called with
// t.mu held on the publish path.
func (s *Sub) offer(ev Event, b *Broker) {
	if s.filter != nil && !s.filter(ev) {
		return
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.offered++
	if s.n == len(s.buf) {
		// Ring full: the oldest event gives way and the loss surfaces
		// as a pending gap delivered before the survivors.
		s.head = (s.head + 1) % len(s.buf)
		s.n--
		s.dropped++
		s.pendingGap++
		b.countDropped(dropSlowSubscriber, 1)
	}
	s.buf[(s.head+s.n)%len(s.buf)] = ev
	s.n++
	s.mu.Unlock()
	s.wake()
}

// terminate force-appends a terminal end event and closes the
// subscription: the consumer drains the ring (ending with the end
// event) and then sees ErrClosed. The caller already detached s from
// its topic.
func (s *Sub) terminate(end Event, b *Broker) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	if s.n == len(s.buf) {
		s.head = (s.head + 1) % len(s.buf)
		s.n--
		s.dropped++
		s.pendingGap++
		b.countDropped(dropSlowSubscriber, 1)
	}
	s.offered++
	s.buf[(s.head+s.n)%len(s.buf)] = end
	s.n++
	s.mu.Unlock()
	b.countEvent(KindEnd)
	b.subs.Add(-1)
	s.wake()
}

// wake nudges the consumer (non-blocking; the channel holds one token).
func (s *Sub) wake() {
	select {
	case s.notify <- struct{}{}:
	default:
	}
}

// Ready returns the wakeup channel: it receives after new events are
// buffered or the subscription closes. Pair with TryNext:
//
//	for {
//	    ev, ok, err := sub.TryNext()
//	    switch { case err != nil: return; case ok: handle(ev); continue }
//	    select { case <-ctx.Done(): return; case <-sub.Ready(): }
//	}
func (s *Sub) Ready() <-chan struct{} { return s.notify }

// TryNext pops the next event without blocking. ok reports whether an
// event was returned; ErrClosed means the stream terminated and the
// ring is drained. Pending gaps are delivered first, as synthetic
// KindGap events, at the position of the loss.
func (s *Sub) TryNext() (Event, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.pendingGap > 0 {
		g := s.pendingGap
		s.pendingGap = 0
		s.gaps++
		s.broker.gaps.Inc()
		return Event{Kind: KindGap, Gap: g}, true, nil
	}
	if s.n == 0 {
		if s.closed {
			return Event{}, false, ErrClosed
		}
		return Event{}, false, nil
	}
	ev := s.buf[s.head]
	s.buf[s.head] = Event{}
	s.head = (s.head + 1) % len(s.buf)
	s.n--
	s.delivered++
	s.broker.delivered.Inc()
	return ev, true, nil
}

// Next blocks for the next event until ctx ends. It returns ErrClosed
// once the stream terminates and the ring is drained.
func (s *Sub) Next(ctx context.Context) (Event, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	for {
		ev, ok, err := s.TryNext()
		if err != nil {
			return Event{}, err
		}
		if ok {
			return ev, nil
		}
		select {
		case <-ctx.Done():
			return Event{}, ctx.Err()
		case <-s.notify:
		}
	}
}

// Buffered reports the ring's current occupancy (plus any pending gap
// event).
func (s *Sub) Buffered() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.n
	if s.pendingGap > 0 {
		n++
	}
	return n
}

// Stats snapshots the subscription's delivery ledger.
func (s *Sub) Stats() SubStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return SubStats{
		Offered:   s.offered,
		Delivered: s.delivered,
		Dropped:   s.dropped,
		Buffered:  s.n,
		Gaps:      s.gaps,
	}
}

// Close detaches the subscription from its topic and releases it.
// Unconsumed buffered events are accounted as dropped ("unsubscribed")
// so the ledger still balances. Idempotent; safe after terminate.
func (s *Sub) Close() {
	t := s.topic
	t.mu.Lock()
	for i, other := range t.subs {
		if other == s {
			t.subs = append(t.subs[:i], t.subs[i+1:]...)
			break
		}
	}
	t.mu.Unlock()
	s.mu.Lock()
	already := s.closed
	s.closed = true
	discarded := uint64(s.n)
	s.dropped += discarded
	s.n = 0
	s.pendingGap = 0
	s.mu.Unlock()
	s.broker.countDropped(dropUnsubscribed, discarded)
	if !already {
		s.broker.subs.Add(-1)
	}
	s.wake()
}
