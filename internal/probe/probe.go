// Package probe executes batches of measurement probes concurrently over
// the simulated fabric — the §5.2.4 scalability substrate. The paper's
// system issues each spoofed-RR batch of 3 vantage points in parallel and
// runs many reverse traceroutes at once; Pool provides exactly that: a
// bounded worker pool over the (thread-safe) fabric that executes
// []probe.Request batches, aggregates probe counters atomically, and
// charges virtual time per batch as the max RTT within the batch rather
// than a serial sum.
//
// Determinism contract: requests are measure.Specs, whose probe IDs and
// load-balancer nonces are pure functions of (packet source, destination,
// sequence). Do always issues every request of a batch (no intra-batch
// early exit), so the replies and counters of a batch are bit-identical
// no matter how many workers execute it or in what order — serial and
// concurrent runs of the same measurement cannot diverge. DoStop trades
// that guarantee for latency and is therefore not used on measurement
// paths that require reproducibility.
//
// Cancellation contract: Do observes ctx between request launches. A
// cancelled batch still returns the replies of every request already
// launched (those probes were "on the wire"); requests never launched
// report Sent == false and are not accounted.
package probe

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"revtr/internal/measure"
	"revtr/internal/netsim/fabric"
	"revtr/internal/netsim/ipv4"
	"revtr/internal/obs"
)

// Request is one probe to issue: a measure.Spec (the pure per-probe
// description introduced by the probe-layer split).
type Request = measure.Spec

// DefaultBackoffUS is the first-retry delay when a policy enables
// retries without choosing one.
const DefaultBackoffUS = 50_000

// RetryPolicy re-issues unanswered probes with capped exponential
// backoff in virtual time: retry k of a request issued at t is issued at
// t plus the cumulative backoff, with no wall-clock sleeping. Retries
// are decided purely by the reply content (answered or not), so a batch
// with retries is still bit-identical across worker counts. Unsent
// probes (spoof-incapable or blacked-out vantage points) are never
// retried — the condition is not transient within a measurement.
type RetryPolicy struct {
	// Max is the number of re-issues after the first attempt (0: none).
	Max int
	// BackoffUS is the virtual-time delay before the first retry
	// (DefaultBackoffUS when 0); it doubles per retry.
	BackoffUS int64
	// MaxBackoffUS caps a single backoff step (0: uncapped).
	MaxBackoffUS int64
}

// backoffFor is the delay before retry attempt (1-based).
func (rp RetryPolicy) backoffFor(attempt int) int64 {
	b := rp.BackoffUS
	if b <= 0 {
		b = DefaultBackoffUS
	}
	for i := 1; i < attempt; i++ {
		if rp.MaxBackoffUS > 0 && b >= rp.MaxBackoffUS {
			break
		}
		b *= 2
	}
	if rp.MaxBackoffUS > 0 && b > rp.MaxBackoffUS {
		b = rp.MaxBackoffUS
	}
	return b
}

// responded reports whether rep answers req (per probe kind), i.e.
// whether a retry would be pointless.
func responded(req Request, rep measure.Reply) bool {
	if !rep.Sent {
		return false
	}
	switch req.Kind {
	case measure.KindPing:
		return rep.Ping.Alive
	case measure.KindRR, measure.KindSpoofedRR:
		return rep.RR.Responded
	case measure.KindTS, measure.KindSpoofedTS:
		return rep.TS.Responded
	case measure.KindTraceroutePkt:
		return rep.Delivered
	}
	return true
}

// addDelay folds the cumulative retry delay into the reply's responder
// RTT, so batch wall-clock (MaxRTTUS) charges the full elapsed virtual
// time of the request including the backoff spent waiting.
func addDelay(rep measure.Reply, delayUS int64) measure.Reply {
	if delayUS == 0 {
		return rep
	}
	if rep.Ping.Alive {
		rep.Ping.RTTUS += delayUS
	}
	if rep.RR.Responded {
		rep.RR.RTTUS += delayUS
	}
	if rep.TS.Responded {
		rep.TS.RTTUS += delayUS
	}
	if rep.Hop.Responded {
		rep.Hop.RTTUS += delayUS
	}
	return rep
}

// Batch is the outcome of one Do call.
type Batch struct {
	// Replies holds one entry per request, in request order, regardless
	// of completion order.
	Replies []measure.Reply
	// Sent tallies the probes actually issued (skipped spoof-incapable
	// vantage points and cancelled slots are not counted).
	Sent measure.Counters
	// MaxRTTUS is the largest responder RTT in the batch — the batch's
	// virtual wall-clock cost under the paper's concurrent-batch
	// semantics (probes fly in parallel; the batch is done when the
	// slowest reply lands).
	MaxRTTUS int64
	// Skipped counts requests never launched (context cancelled or a
	// DoStop predicate fired first).
	Skipped int
}

// Pool executes probe batches over a fabric with bounded concurrency.
// It is safe for concurrent use by any number of goroutines; all Do/One
// calls share one worker budget.
type Pool struct {
	F *fabric.Fabric

	clock   *measure.Clock
	workers int
	sem     chan struct{}
	retry   RetryPolicy

	// Aggregate counters, atomic so concurrent batches can share them.
	ping, rr, spoofRR, ts, spoofTS, traceroute atomic.Uint64

	// Asynchronous work queue (Go / GoTraceroute): tasks wait here as
	// closures, not as parked goroutines. Executor goroutines are spawned
	// on demand up to the worker budget and exit when the queue drains,
	// so an idle pool holds zero goroutines no matter how many suspended
	// measurements it serves.
	qmu   sync.Mutex
	queue []func()
	execs int

	inFlight    *obs.Gauge
	asyncQueued *obs.Gauge
	batchSize   *obs.Histogram
	batchWallUS *obs.Histogram
	batches     *obs.Counter
	retries     *obs.Counter
}

// batchSizeBuckets spans single probes through revtr 1.0's widest VP
// sweeps.
var batchSizeBuckets = []int64{1, 2, 3, 6, 12, 24, 48, 96, 200}

// inlineBatch is the batch size at or below which run executes requests
// on the caller's goroutine instead of fanning out (see run).
const inlineBatch = 4

// New creates a pool over f sharing clock. workers <= 0 selects
// GOMAXPROCS.
func New(f *fabric.Fabric, clock *measure.Clock, workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if clock == nil {
		clock = measure.NewClock()
	}
	return &Pool{
		F:       f,
		clock:   clock,
		workers: workers,
		sem:     make(chan struct{}, workers),
	}
}

// SetObs attaches pool metrics to a registry: the in-flight probe gauge,
// batch-size and batch-latency histograms, and a batch counter. Call
// before the pool is in use.
func (p *Pool) SetObs(reg *obs.Registry) {
	if reg == nil {
		return
	}
	p.inFlight = reg.Gauge("probe_pool_inflight")
	p.asyncQueued = reg.Gauge("probe_pool_async_queue")
	p.batchSize = reg.Histogram("probe_pool_batch_size", batchSizeBuckets)
	p.batchWallUS = reg.Histogram("probe_pool_batch_wall_us", nil)
	p.batches = reg.Counter("probe_pool_batches_total")
	p.retries = reg.Counter("probe_retries_total")
}

// SetRetry installs the pool's default retry policy (used by Do/DoStop/
// One; DoPolicy overrides per call). Call before the pool is in use.
func (p *Pool) SetRetry(pol RetryPolicy) { p.retry = pol }

// Retry reports the pool's default retry policy.
func (p *Pool) Retry() RetryPolicy { return p.retry }

// Clock exposes the pool's virtual clock.
func (p *Pool) Clock() *measure.Clock { return p.clock }

// Now reads the pool's virtual clock (microseconds).
func (p *Pool) Now() int64 { return p.clock.Now() }

// Workers reports the pool's concurrency bound.
func (p *Pool) Workers() int { return p.workers }

// Counters snapshots the pool-wide probe tallies.
func (p *Pool) Counters() measure.Counters {
	return measure.Counters{
		Ping:       p.ping.Load(),
		RR:         p.rr.Load(),
		SpoofRR:    p.spoofRR.Load(),
		TS:         p.ts.Load(),
		SpoofTS:    p.spoofTS.Load(),
		Traceroute: p.traceroute.Load(),
	}
}

// account records one issued spec in the pool-wide tallies.
func (p *Pool) account(sp Request) {
	switch sp.Kind {
	case measure.KindPing:
		p.ping.Add(1)
	case measure.KindRR:
		p.rr.Add(1)
	case measure.KindSpoofedRR:
		p.spoofRR.Add(1)
	case measure.KindTS:
		p.ts.Add(1)
	case measure.KindSpoofedTS:
		p.spoofTS.Add(1)
	case measure.KindTraceroutePkt:
		p.traceroute.Add(1)
	}
}

// Do executes every request concurrently (bounded by the pool's worker
// budget) at one virtual instant and returns when all launched requests
// have completed. Every request is launched unless ctx is cancelled
// first, so the result is deterministic for a deterministic fabric.
func (p *Pool) Do(ctx context.Context, reqs []Request) Batch {
	return p.run(ctx, reqs, nil, p.retry)
}

// DoPolicy is Do with an explicit retry policy for this batch,
// overriding the pool default (engine retry budgets in core.Options use
// this).
func (p *Pool) DoPolicy(ctx context.Context, reqs []Request, pol RetryPolicy) Batch {
	return p.run(ctx, reqs, nil, pol)
}

// DoStop is Do with early cancellation: once a completed reply satisfies
// stop, no further requests are launched (already-launched ones finish
// and are reported). The set of launched requests then depends on
// completion timing, so DoStop is for latency-sensitive callers that do
// not need bit-reproducible probe counts.
func (p *Pool) DoStop(ctx context.Context, reqs []Request, stop func(measure.Reply) bool) Batch {
	return p.run(ctx, reqs, stop, p.retry)
}

func (p *Pool) run(ctx context.Context, reqs []Request, stop func(measure.Reply) bool, pol RetryPolicy) Batch {
	out := Batch{Replies: make([]measure.Reply, len(reqs))}
	if len(reqs) == 0 {
		return out
	}
	nowUS := p.clock.Now()
	attempts := make([]uint64, len(reqs))
	var stopped atomic.Bool
	var wg sync.WaitGroup
	launched := 0
	issue := func(i int) {
		p.inFlight.Add(1)
		rep := measure.Issue(p.F, reqs[i], nowUS)
		if rep.Sent {
			p.account(reqs[i])
			attempts[i] = 1
			// Unanswered probes are re-issued later in virtual time with
			// doubling backoff. The retry decision depends only on the
			// reply, so batches with retries stay deterministic.
			var delayUS int64
			for a := 1; a <= pol.Max && !responded(reqs[i], rep); a++ {
				delayUS += pol.backoffFor(a)
				r2 := measure.Issue(p.F, reqs[i], nowUS+delayUS)
				p.retries.Inc()
				if !r2.Sent {
					break // VP went dark mid-measurement; not transient
				}
				p.account(reqs[i])
				attempts[i]++
				rep = addDelay(r2, delayUS)
			}
		}
		p.inFlight.Add(-1)
		out.Replies[i] = rep
		if stop != nil && stop(rep) {
			stopped.Store(true)
		}
	}
	// Batches at or below inlineBatch execute sequentially on the
	// caller's goroutine, occupying a single worker slot for the whole
	// batch (like Traceroute): issuing a probe into the simulated fabric
	// is a few microseconds of CPU, so goroutine fan-out only pays off
	// for wide sweeps. Concurrency across measurements is unaffected
	// (each caller is its own goroutine; the worker budget still
	// applies), and because replies, counters, and virtual time are
	// computed by request index either way, inline and fanned-out
	// execution are bit-identical.
	if len(reqs) <= inlineBatch || p.workers == 1 {
		p.sem <- struct{}{}
		for i := range reqs {
			if (ctx != nil && ctx.Err() != nil) || stopped.Load() {
				break
			}
			launched++
			issue(i)
		}
		<-p.sem
	} else {
		for i := range reqs {
			if (ctx != nil && ctx.Err() != nil) || stopped.Load() {
				break
			}
			p.sem <- struct{}{}
			// Re-check after a possibly long wait for a worker slot.
			if (ctx != nil && ctx.Err() != nil) || stopped.Load() {
				<-p.sem
				break
			}
			launched++
			// The caller's goroutine executes the batch's final request
			// itself instead of idling in wg.Wait.
			if i == len(reqs)-1 {
				issue(i)
				<-p.sem
				break
			}
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				defer func() { <-p.sem }()
				issue(i)
			}(i)
		}
		wg.Wait()
	}
	out.Skipped = len(reqs) - launched
	for i := range out.Replies {
		rep := &out.Replies[i]
		if !rep.Sent {
			continue
		}
		out.Sent = out.Sent.Add(reqs[i].Delta().Scale(attempts[i]))
		if rtt := rep.RTTUS(); rtt > out.MaxRTTUS {
			out.MaxRTTUS = rtt
		}
	}
	p.batches.Inc()
	p.batchSize.Observe(int64(len(reqs)))
	p.batchWallUS.Observe(out.MaxRTTUS)
	return out
}

// Traceroute runs one pure Paris traceroute occupying a single worker
// slot for its duration (a traceroute is inherently sequential: each
// TTL's outcome decides whether to continue). seqBase reserves
// measure.MaxTracerouteTTL sequence numbers. Returns the zero result
// when ctx is already cancelled.
func (p *Pool) Traceroute(ctx context.Context, a measure.Agent, dst ipv4.Addr, seqBase uint64) (measure.TracerouteResult, int) {
	if ctx != nil && ctx.Err() != nil {
		return measure.TracerouteResult{}, 0
	}
	p.sem <- struct{}{}
	defer func() { <-p.sem }()
	p.inFlight.Add(1)
	tr, sent := measure.RunTraceroute(p.F, a, dst, p.clock.Now(), seqBase)
	p.inFlight.Add(-1)
	p.traceroute.Add(uint64(sent))
	return tr, sent
}

// Go executes a batch asynchronously: the request is queued and done is
// called with the finished Batch from an executor goroutine. The batch
// itself runs through the same run path as DoPolicy, so replies,
// counters, and virtual time are bit-identical to a synchronous call.
// Executors are bounded by the pool's worker budget and spin down when
// the queue drains: a caller with 10k suspended measurements holds 10k
// queued closures, not 10k goroutines. done must not block indefinitely
// (it runs on the executor; typical callers resume a state machine and
// either finish or re-queue).
//
//revtr:suspends queues the batch and parks the measurement until an executor resumes it
func (p *Pool) Go(ctx context.Context, reqs []Request, pol RetryPolicy, done func(Batch)) {
	p.submit(func() { done(p.run(ctx, reqs, nil, pol)) })
}

// GoTraceroute is Traceroute, asynchronously, under the same executor
// discipline as Go.
//
//revtr:suspends queues the traceroute and parks the measurement until an executor resumes it
func (p *Pool) GoTraceroute(ctx context.Context, a measure.Agent, dst ipv4.Addr, seqBase uint64, done func(measure.TracerouteResult, int)) {
	p.submit(func() {
		tr, sent := p.Traceroute(ctx, a, dst, seqBase)
		done(tr, sent)
	})
}

// submit enqueues one task and ensures an executor is running. The
// spawn decision and the queue append happen under one lock, so a task
// is never left queued with zero executors: the last executor only
// exits after observing an empty queue under the same lock.
func (p *Pool) submit(task func()) {
	p.qmu.Lock()
	p.queue = append(p.queue, task)
	p.asyncQueued.Set(int64(len(p.queue)))
	if p.execs < p.workers {
		p.execs++
		go p.executor() //revtr:spawnbound executor count is capped at p.workers under qmu and each exits when the queue drains
	}
	p.qmu.Unlock()
}

// executor drains the async queue FIFO and exits when it is empty.
func (p *Pool) executor() {
	for {
		p.qmu.Lock()
		if len(p.queue) == 0 {
			p.execs--
			p.qmu.Unlock()
			return
		}
		task := p.queue[0]
		p.queue[0] = nil
		p.queue = p.queue[1:]
		if len(p.queue) == 0 {
			p.queue = nil // release the drained array's backing memory
		}
		p.asyncQueued.Set(int64(len(p.queue)))
		p.qmu.Unlock()
		task()
	}
}

// AsyncBacklog reports the number of queued (not yet executing)
// asynchronous tasks.
func (p *Pool) AsyncBacklog() int {
	p.qmu.Lock()
	defer p.qmu.Unlock()
	return len(p.queue)
}

// One issues a single probe inline on the caller's goroutine (still
// respecting the worker budget and the cancellation contract). It is the
// fast path for the engine's serial probes — direct RR pings, timestamp
// tests — between batched stages.
func (p *Pool) One(ctx context.Context, req Request) measure.Reply {
	if ctx != nil && ctx.Err() != nil {
		return measure.Reply{}
	}
	p.sem <- struct{}{}
	defer func() { <-p.sem }()
	p.inFlight.Add(1)
	rep := measure.Issue(p.F, req, p.clock.Now())
	p.inFlight.Add(-1)
	if rep.Sent {
		p.account(req)
	}
	return rep
}
