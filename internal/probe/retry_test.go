package probe_test

import (
	"context"
	"reflect"
	"testing"

	"revtr/internal/measure"
	"revtr/internal/netsim/faults"
	"revtr/internal/obs"
	"revtr/internal/probe"
	"revtr/internal/simtest"
)

func newRetryPool(env *simtest.Env, workers int, pol probe.RetryPolicy) *probe.Pool {
	clock := measure.NewClock()
	clock.Set(1_000_000)
	p := probe.New(env.Fabric, clock, workers)
	p.SetRetry(pol)
	return p
}

// An answered probe is never retried: on a fault-free fabric every ping
// to a responsive host lands on the first attempt, so the pool's sent
// counters equal exactly one probe per request even with retries armed.
func TestRetryNotUsedWhenAnswered(t *testing.T) {
	env := simtest.New(t, 150, 3)
	src := env.Agent(env.SourceHost(0))
	var reqs []probe.Request
	for i := 0; i < 8; i++ {
		dst := env.ResponsiveHost(i, src.AS)
		if dst == nil {
			break
		}
		reqs = append(reqs, probe.Request{Kind: measure.KindPing, VP: src, Dst: dst.Addr, Seq: uint64(i + 1)})
	}
	pool := newRetryPool(env, 4, probe.RetryPolicy{Max: 3})
	reg := obs.New()
	pool.SetObs(reg)
	b := pool.Do(context.Background(), reqs)
	for i, rep := range b.Replies {
		if !rep.Ping.Alive {
			t.Fatalf("req %d: responsive host did not answer", i)
		}
	}
	if got := pool.Counters().Total(); got != uint64(len(reqs)) {
		t.Fatalf("pool issued %d probes for %d answered requests (retried needlessly)", got, len(reqs))
	}
	if b.Sent.Total() != uint64(len(reqs)) {
		t.Fatalf("batch.Sent=%d, want %d", b.Sent.Total(), len(reqs))
	}
}

// An unanswered probe is re-issued Max times and every attempt is
// charged to the accounting, batch and pool alike.
func TestRetryExhaustsBudgetOnSilence(t *testing.T) {
	env := simtest.New(t, 150, 3)
	src := env.Agent(env.SourceHost(0))
	dst := env.ResponsiveHost(0, src.AS)
	if dst == nil {
		t.Skip("no destination")
	}
	// Dark neighbor address: routed to the destination's block, never
	// answers — each attempt fails, so retries run to exhaustion.
	dark := dst.Addr + 199
	const n, maxRetries = 5, 3
	var reqs []probe.Request
	for i := 0; i < n; i++ {
		reqs = append(reqs, probe.Request{Kind: measure.KindPing, VP: src, Dst: dark, Seq: uint64(i + 1)})
	}
	pool := newRetryPool(env, 4, probe.RetryPolicy{Max: maxRetries})
	reg := obs.New()
	pool.SetObs(reg)
	b := pool.Do(context.Background(), reqs)
	want := uint64(n * (maxRetries + 1))
	if got := pool.Counters().Total(); got != want {
		t.Fatalf("pool issued %d probes, want %d (%d requests x %d attempts)", got, want, n, maxRetries+1)
	}
	if got := b.Sent.Total(); got != want {
		t.Fatalf("batch.Sent=%d, want %d", got, want)
	}
	if got := reg.Counter("probe_retries_total").Value(); got != uint64(n*maxRetries) {
		t.Fatalf("probe_retries_total=%d, want %d", got, n*maxRetries)
	}
}

// Probes that were never sent (spoof-incapable vantage point) must not
// be retried — the condition is not transient.
func TestRetrySkipsUnsent(t *testing.T) {
	env := simtest.New(t, 150, 3)
	src := env.Agent(env.SourceHost(0))
	var vp measure.Agent
	for _, site := range env.Sites {
		if !site.CanSpoof && site.Addr != src.Addr {
			vp = site
			break
		}
	}
	if vp.Addr == 0 {
		t.Skip("no spoof-incapable site in this topology seed")
	}
	reqs := []probe.Request{{Kind: measure.KindSpoofedRR, VP: vp, Src: src.Addr, Dst: src.Addr, Seq: 1}}
	pool := newRetryPool(env, 1, probe.RetryPolicy{Max: 5})
	b := pool.Do(context.Background(), reqs)
	if b.Replies[0].Sent {
		t.Fatal("spoof-incapable vantage point sent a spoofed probe")
	}
	if got := pool.Counters().Total(); got != 0 {
		t.Fatalf("pool charged %d probes for an unsent request", got)
	}
}

// Under a lossy fault plan retries fire, and the whole batch — replies
// and accounting — stays bit-identical across worker counts, because
// retry decisions depend only on reply content and virtual time.
func TestRetryDeterministicAcrossWorkers(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		plan := &faults.Plan{Seed: uint64(seed), LinkLoss: 0.3}
		env := simtest.NewFaulty(t, 150, seed, plan)
		reqs := buildRequests(env, 40)
		if len(reqs) == 0 {
			t.Fatalf("seed %d: no requests", seed)
		}
		pol := probe.RetryPolicy{Max: 2, BackoffUS: 40_000}

		run := func(workers int) ([]measure.Reply, measure.Counters, uint64) {
			pool := newRetryPool(env, workers, pol)
			b := pool.Do(context.Background(), reqs)
			return b.Replies, b.Sent, pool.Counters().Total()
		}
		r1, s1, c1 := run(1)
		r8, s8, c8 := run(8)
		if !reflect.DeepEqual(r1, r8) {
			t.Fatalf("seed %d: replies differ between workers=1 and workers=8", seed)
		}
		if s1 != s8 || c1 != c8 {
			t.Fatalf("seed %d: accounting differs: batch %+v vs %+v, pool %d vs %d", seed, s1, s8, c1, c8)
		}
		if c1 < uint64(len(reqs)) {
			t.Fatalf("seed %d: pool issued %d probes for %d requests", seed, c1, len(reqs))
		}
	}
}

// A retried reply that eventually lands carries the cumulative backoff
// in its RTT, so batch wall-clock accounts for time spent waiting.
func TestRetryChargesBackoffToRTT(t *testing.T) {
	env := simtest.New(t, 150, 3)
	src := env.Agent(env.SourceHost(0))
	dst := env.ResponsiveHost(0, src.AS)
	if dst == nil {
		t.Skip("no destination")
	}
	req := probe.Request{Kind: measure.KindPing, VP: src, Dst: dst.Addr, Seq: 1}

	base := newRetryPool(env, 1, probe.RetryPolicy{})
	clean := base.Do(context.Background(), []probe.Request{req})
	baseRTT := clean.Replies[0].Ping.RTTUS

	// LinkLoss=1 on the plan would kill every attempt; instead find a
	// plan seed where the first attempt drops and a retry succeeds.
	pol := probe.RetryPolicy{Max: 6, BackoffUS: 10_000}
	for planSeed := uint64(1); planSeed < 60; planSeed++ {
		fenv := simtest.NewFaulty(t, 150, 3, &faults.Plan{Seed: planSeed, LinkLoss: 0.5})
		pool := newRetryPool(fenv, 1, pol)
		b := pool.Do(context.Background(), []probe.Request{req})
		rep := b.Replies[0]
		if !rep.Ping.Alive {
			continue // every attempt dropped under this seed
		}
		if pool.Counters().Total() == 1 {
			continue // first attempt got through; no backoff to observe
		}
		if rep.Ping.RTTUS <= baseRTT {
			t.Fatalf("plan seed %d: retried reply RTT %dus does not include backoff (clean RTT %dus)",
				planSeed, rep.Ping.RTTUS, baseRTT)
		}
		return
	}
	t.Skip("no plan seed produced a drop-then-answer sequence")
}

// A zero-length batch is a no-op: no probes, no panics, zero counters.
func TestRetryZeroLengthBatch(t *testing.T) {
	env := simtest.New(t, 150, 3)
	pool := newRetryPool(env, 4, probe.RetryPolicy{Max: 3})
	b := pool.Do(context.Background(), nil)
	if len(b.Replies) != 0 || b.Sent.Total() != 0 || b.Skipped != 0 {
		t.Fatalf("empty batch produced %+v", b)
	}
	if pool.Counters().Total() != 0 {
		t.Fatal("empty batch charged probes")
	}
}
