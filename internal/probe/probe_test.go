package probe_test

import (
	"context"
	"reflect"
	"testing"
	"testing/quick"

	"revtr/internal/measure"
	"revtr/internal/obs"
	"revtr/internal/probe"
	"revtr/internal/simtest"
)

// buildRequests assembles a mixed batch over env: direct pings, RR pings,
// spoofed RR from every site (spoof-capable or not), TS probes, and raw
// traceroute packets, with sequence numbers assigned in order — the same
// specs a serial caller and the pool both see.
func buildRequests(env *simtest.Env, n int) []probe.Request {
	src := env.Agent(env.SourceHost(0))
	var reqs []probe.Request
	seq := uint64(0)
	next := func() uint64 { seq++; return seq }
	for i := 0; len(reqs) < n; i++ {
		dst := env.ResponsiveHost(i, src.AS)
		if dst == nil {
			break
		}
		reqs = append(reqs,
			probe.Request{Kind: measure.KindPing, VP: src, Dst: dst.Addr, Seq: next()},
			probe.Request{Kind: measure.KindRR, VP: src, Dst: dst.Addr, Seq: next()},
			probe.Request{Kind: measure.KindTS, VP: src, Dst: dst.Addr, Seq: next()},
			probe.Request{Kind: measure.KindTraceroutePkt, VP: src, Dst: dst.Addr,
				TTL: uint8(1 + i%8), Seq: next()},
		)
		for _, site := range env.Sites {
			if site.Addr == src.Addr {
				continue
			}
			reqs = append(reqs, probe.Request{
				Kind: measure.KindSpoofedRR, VP: site, Src: src.Addr,
				Dst: dst.Addr, Seq: next(),
			})
			if len(reqs) >= n {
				break
			}
		}
	}
	return reqs
}

// TestPoolMatchesSerialQuick is the determinism property: executing a
// batch through the pool (concurrently, any worker count) yields
// byte-identical replies and identical counters to issuing the same specs
// serially, across randomized topologies and worker counts.
func TestPoolMatchesSerialQuick(t *testing.T) {
	prop := func(seed int64, workerBits uint8) bool {
		seed = seed&0xffff | 1
		workers := int(workerBits%16) + 1
		env := simtest.New(t, 150, seed)
		reqs := buildRequests(env, 48)
		if len(reqs) == 0 {
			return true
		}
		const nowUS = int64(1_000_000)

		// Serial reference: one measure.Issue per spec at one instant.
		serial := make([]measure.Reply, len(reqs))
		var want measure.Counters
		for i, sp := range reqs {
			serial[i] = measure.Issue(env.Fabric, sp, nowUS)
			if serial[i].Sent {
				want = want.Add(sp.Delta())
			}
		}

		clock := measure.NewClock()
		clock.Set(nowUS)
		pool := probe.New(env.Fabric, clock, workers)
		b := pool.Do(context.Background(), reqs)

		if !reflect.DeepEqual(b.Replies, serial) {
			t.Logf("seed=%d workers=%d: replies diverge", seed, workers)
			return false
		}
		if b.Sent != want {
			t.Logf("seed=%d workers=%d: counters %+v != %+v", seed, workers, b.Sent, want)
			return false
		}
		if b.Skipped != 0 {
			t.Logf("seed=%d: skipped %d of an uncancelled batch", seed, b.Skipped)
			return false
		}
		if pool.Counters() != want {
			t.Logf("seed=%d: pool counters %+v != %+v", seed, pool.Counters(), want)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 5}); err != nil {
		t.Fatal(err)
	}
}

// TestPoolRepeatable: the same batch through the same fabric twice gives
// the same replies — probe identities are pure functions of the specs, not
// of pool state.
func TestPoolRepeatable(t *testing.T) {
	env := simtest.New(t, 150, 3)
	reqs := buildRequests(env, 24)
	pool := probe.New(env.Fabric, measure.NewClock(), 4)
	b1 := pool.Do(context.Background(), reqs)
	b2 := pool.Do(context.Background(), reqs)
	if !reflect.DeepEqual(b1.Replies, b2.Replies) {
		t.Fatal("identical batches diverged")
	}
	if b1.Sent != b2.Sent || b1.MaxRTTUS != b2.MaxRTTUS {
		t.Fatalf("batch accounting diverged: %+v vs %+v", b1, b2)
	}
}

// TestPoolDoStop: with one worker (strictly serial execution) a stop
// predicate that fires on the first reply prevents every later launch.
func TestPoolDoStop(t *testing.T) {
	env := simtest.New(t, 150, 5)
	reqs := buildRequests(env, 12)
	pool := probe.New(env.Fabric, measure.NewClock(), 1)
	b := pool.DoStop(context.Background(), reqs, func(measure.Reply) bool { return true })
	if b.Skipped != len(reqs)-1 {
		t.Fatalf("skipped = %d, want %d", b.Skipped, len(reqs)-1)
	}
	for i := 1; i < len(reqs); i++ {
		if b.Replies[i].Sent {
			t.Fatalf("request %d launched after stop", i)
		}
	}
}

// TestPoolCancellation: a cancelled context skips the whole batch and the
// single-probe and traceroute paths return zero values without probing.
func TestPoolCancellation(t *testing.T) {
	env := simtest.New(t, 150, 7)
	reqs := buildRequests(env, 8)
	pool := probe.New(env.Fabric, measure.NewClock(), 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	b := pool.Do(ctx, reqs)
	if b.Skipped != len(reqs) {
		t.Fatalf("skipped = %d, want %d", b.Skipped, len(reqs))
	}
	if b.Sent != (measure.Counters{}) || b.MaxRTTUS != 0 {
		t.Fatalf("cancelled batch accounted probes: %+v", b)
	}

	if rep := pool.One(ctx, reqs[0]); rep.Sent {
		t.Fatal("One issued a probe on a cancelled context")
	}
	src := env.Agent(env.SourceHost(0))
	if tr, sent := pool.Traceroute(ctx, src, env.ResponsiveHost(0, src.AS).Addr, 0); sent != 0 || len(tr.Hops) != 0 {
		t.Fatal("Traceroute probed on a cancelled context")
	}
	if pool.Counters() != (measure.Counters{}) {
		t.Fatalf("cancelled pool accounted probes: %+v", pool.Counters())
	}
}

// TestPoolObs: SetObs wires the batch counter/histograms and the in-flight
// gauge returns to zero after the batch drains.
func TestPoolObs(t *testing.T) {
	env := simtest.New(t, 150, 9)
	reqs := buildRequests(env, 6)
	pool := probe.New(env.Fabric, measure.NewClock(), 3)
	reg := obs.New()
	pool.SetObs(reg)
	pool.Do(context.Background(), reqs)
	if got := reg.Counter("probe_pool_batches_total").Value(); got != 1 {
		t.Fatalf("batches counter = %d, want 1", got)
	}
	if reg.Histogram("probe_pool_batch_size", nil).Count() != 1 {
		t.Fatal("batch size histogram not observed")
	}
	if got := reg.Gauge("probe_pool_inflight").Value(); got != 0 {
		t.Fatalf("inflight gauge = %d after drain, want 0", got)
	}
}
