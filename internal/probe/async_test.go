package probe_test

// Async executor suite: Pool.Go / Pool.GoTraceroute run submitted work
// on a bounded set of on-demand executor goroutines and must produce
// exactly the replies the synchronous entry points produce.

import (
	"context"
	"reflect"
	"runtime"
	"sync"
	"testing"

	"revtr/internal/measure"
	"revtr/internal/probe"
	"revtr/internal/simtest"
)

// TestGoMatchesDoPolicy: an async batch yields byte-identical replies
// and counters to the same specs through DoPolicy, and the queue is
// empty once the completion callback has fired.
func TestGoMatchesDoPolicy(t *testing.T) {
	env := simtest.New(t, 150, 3)
	pool := probe.New(env.Fabric, measure.NewClock(), 4)
	reqs := buildRequests(env, 32)
	if len(reqs) == 0 {
		t.Skip("no requests")
	}
	pol := probe.RetryPolicy{Max: 1}
	want := pool.DoPolicy(context.Background(), reqs, pol)

	got := make(chan probe.Batch, 1)
	pool.Go(context.Background(), reqs, pol, func(b probe.Batch) { got <- b })
	b := <-got
	if !reflect.DeepEqual(b.Replies, want.Replies) {
		t.Fatal("async replies diverge from DoPolicy")
	}
	if b.Sent != want.Sent || b.Skipped != want.Skipped {
		t.Fatalf("async accounting %+v/%d != sync %+v/%d", b.Sent, b.Skipped, want.Sent, want.Skipped)
	}
	if n := pool.AsyncBacklog(); n != 0 {
		t.Fatalf("async backlog = %d after completion, want 0", n)
	}
}

// TestGoTracerouteMatchesSync: the async traceroute wrapper returns the
// same hops and sent-count as the blocking call.
func TestGoTracerouteMatchesSync(t *testing.T) {
	env := simtest.New(t, 150, 5)
	pool := probe.New(env.Fabric, measure.NewClock(), 2)
	src := env.Agent(env.SourceHost(0))
	dst := env.ResponsiveHost(1, src.AS)
	if dst == nil {
		t.Skip("no destination")
	}
	wantTr, wantSent := pool.Traceroute(context.Background(), src, dst.Addr, 1000)

	type out struct {
		tr   measure.TracerouteResult
		sent int
	}
	got := make(chan out, 1)
	pool.GoTraceroute(context.Background(), src, dst.Addr, 1000, func(tr measure.TracerouteResult, sent int) {
		got <- out{tr, sent}
	})
	o := <-got
	if !reflect.DeepEqual(o.tr, wantTr) || o.sent != wantSent {
		t.Fatalf("async traceroute diverged: %+v/%d vs %+v/%d", o.tr, o.sent, wantTr, wantSent)
	}
}

// TestGoBoundedExecutors: flooding the pool with async batches never
// spawns more than the worker budget of executor goroutines, all
// callbacks fire, and the executors exit once the queue drains.
func TestGoBoundedExecutors(t *testing.T) {
	env := simtest.New(t, 150, 7)
	const workers = 3
	pool := probe.New(env.Fabric, measure.NewClock(), workers)
	reqs := buildRequests(env, 8)
	if len(reqs) == 0 {
		t.Skip("no requests")
	}

	baseline := runtime.NumGoroutine()
	const n = 200
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		pool.Go(context.Background(), reqs, probe.RetryPolicy{}, func(probe.Batch) { wg.Done() })
	}
	if g := runtime.NumGoroutine(); g > baseline+workers+2 {
		t.Fatalf("executor goroutines unbounded: %d (baseline %d, budget %d)", g, baseline, workers)
	}
	wg.Wait()
	if nq := pool.AsyncBacklog(); nq != 0 {
		t.Fatalf("async backlog = %d after all callbacks, want 0", nq)
	}
}
