// Package ip2as maps IP addresses to ASes, the basis of revtr 2.0's
// intradomain/interdomain link classification (Q5, §4.4) and of all
// AS-level evaluation.
//
// Three mappers are provided. Origin is the production mapper modelled on
// Arnold et al.'s method (EuroIX > PeeringDB > RouteViews > Whois): it
// maps an address to the AS whose announced block contains it, which
// misattributes interdomain point-to-point addresses to the neighbor that
// allocated the /30 — the exact error bdrmapit corrects. Bdrmap simulates
// a bdrmapit-corrected mapping with configurable accuracy (Appx B.2
// ablation). Truth is the oracle used only for evaluation.
package ip2as

import (
	"math/rand"

	"revtr/internal/netsim/ipv4"
	"revtr/internal/netsim/topology"
)

// Mapper maps addresses to AS numbers.
type Mapper interface {
	// ASOf returns the AS owning addr. ok is false for private or
	// unmappable addresses.
	ASOf(addr ipv4.Addr) (topology.ASN, bool)
}

// Truth is the ground-truth mapper.
type Truth struct{ Topo *topology.Topology }

// ASOf implements Mapper.
func (t Truth) ASOf(a ipv4.Addr) (topology.ASN, bool) { return t.Topo.OwnerAS(a) }

// Origin maps by announced address block (RouteViews-style origin
// mapping).
type Origin struct{ Topo *topology.Topology }

// ASOf implements Mapper.
func (o Origin) ASOf(a ipv4.Addr) (topology.ASN, bool) { return o.Topo.BlockAS(a) }

// Bdrmap simulates bdrmapit: it corrects the Origin mapping for border
// interfaces with probability Accuracy, and (like the real tool) is
// imperfect — the remaining cases keep the origin mapping, and a small
// FlipFrac of non-border addresses get mis-assigned to a neighbor AS.
type Bdrmap struct {
	topo      *topology.Topology
	corrected map[ipv4.Addr]topology.ASN
}

// NewBdrmap builds the corrected mapping. accuracy is the fraction of
// border interfaces fixed to their true operator; flipFrac the fraction
// of intradomain interfaces wrongly moved to an adjacent AS.
func NewBdrmap(topo *topology.Topology, accuracy, flipFrac float64, seed int64) *Bdrmap {
	rng := rand.New(rand.NewSource(seed))
	b := &Bdrmap{topo: topo, corrected: make(map[ipv4.Addr]topology.ASN)}
	for li := range topo.Links {
		l := &topo.Links[li]
		for _, ifid := range [2]topology.IfaceID{l.I0, l.I1} {
			ifc := &topo.Ifaces[ifid]
			trueAS := topo.Routers[ifc.Router].AS
			blockAS, ok := topo.BlockAS(ifc.Addr)
			if !ok {
				continue
			}
			if l.Inter {
				if blockAS != trueAS && rng.Float64() < accuracy {
					b.corrected[ifc.Addr] = trueAS
				}
			} else if rng.Float64() < flipFrac {
				// Spurious correction: move to a random neighbor AS.
				nbs := topo.ASes[trueAS].Neighbors
				if len(nbs) > 0 {
					b.corrected[ifc.Addr] = nbs[rng.Intn(len(nbs))].ASN
				}
			}
		}
	}
	return b
}

// ASOf implements Mapper.
func (b *Bdrmap) ASOf(a ipv4.Addr) (topology.ASN, bool) {
	if asn, ok := b.corrected[a]; ok {
		return asn, true
	}
	return b.topo.BlockAS(a)
}

// ASPath maps an address path to an AS path using m, collapsing
// consecutive duplicates and skipping unmappable addresses.
func ASPath(m Mapper, addrs []ipv4.Addr) []topology.ASN {
	var out []topology.ASN
	for _, a := range addrs {
		asn, ok := m.ASOf(a)
		if !ok {
			continue
		}
		if len(out) == 0 || out[len(out)-1] != asn {
			out = append(out, asn)
		}
	}
	return out
}

// SameAS reports whether two addresses map to one AS under m; unmappable
// addresses are never the same AS.
func SameAS(m Mapper, a, b ipv4.Addr) bool {
	x, okx := m.ASOf(a)
	y, oky := m.ASOf(b)
	return okx && oky && x == y
}
