package ip2as

import (
	"testing"

	"revtr/internal/netsim/ipv4"
	"revtr/internal/netsim/topology"
)

func topoFor(t testing.TB) *topology.Topology {
	t.Helper()
	cfg := topology.DefaultConfig(300)
	cfg.Seed = 13
	return topology.Generate(cfg)
}

func TestTruthMatchesTopology(t *testing.T) {
	topo := topoFor(t)
	m := Truth{Topo: topo}
	for _, h := range topo.Hosts[:50] {
		asn, ok := m.ASOf(h.Addr)
		if !ok || asn != h.AS {
			t.Fatalf("host %s mapped to %d, want %d", h.Addr, asn, h.AS)
		}
	}
}

func TestOriginMisattributesBorders(t *testing.T) {
	topo := topoFor(t)
	origin := Origin{Topo: topo}
	truth := Truth{Topo: topo}
	wrong, total := 0, 0
	for li := range topo.Links {
		l := &topo.Links[li]
		if !l.Inter {
			continue
		}
		for _, ifid := range [2]topology.IfaceID{l.I0, l.I1} {
			a := topo.Ifaces[ifid].Addr
			oa, ok1 := origin.ASOf(a)
			ta, ok2 := truth.ASOf(a)
			if !ok1 || !ok2 {
				t.Fatalf("unmappable border addr %s", a)
			}
			total++
			if oa != ta {
				wrong++
			}
		}
	}
	if wrong == 0 {
		t.Fatal("origin mapping never misattributes a border interface; the bdrmapit ablation is vacuous")
	}
	// Exactly one side of each interdomain /30 is misattributed.
	if wrong*2 != total {
		t.Errorf("expected half the border interfaces misattributed, got %d/%d", wrong, total)
	}
}

func TestBdrmapCorrects(t *testing.T) {
	topo := topoFor(t)
	b := NewBdrmap(topo, 1.0, 0, 1)
	truth := Truth{Topo: topo}
	for li := range topo.Links {
		l := &topo.Links[li]
		if !l.Inter {
			continue
		}
		for _, ifid := range [2]topology.IfaceID{l.I0, l.I1} {
			a := topo.Ifaces[ifid].Addr
			ba, _ := b.ASOf(a)
			ta, _ := truth.ASOf(a)
			if ba != ta {
				t.Fatalf("bdrmap(accuracy=1) still wrong on %s", a)
			}
		}
	}
}

func TestBdrmapPartial(t *testing.T) {
	topo := topoFor(t)
	b := NewBdrmap(topo, 0.5, 0, 1)
	truth := Truth{Topo: topo}
	origin := Origin{Topo: topo}
	fixed, broken := 0, 0
	for li := range topo.Links {
		l := &topo.Links[li]
		if !l.Inter {
			continue
		}
		for _, ifid := range [2]topology.IfaceID{l.I0, l.I1} {
			a := topo.Ifaces[ifid].Addr
			oa, _ := origin.ASOf(a)
			ta, _ := truth.ASOf(a)
			if oa == ta {
				continue
			}
			if ba, _ := b.ASOf(a); ba == ta {
				fixed++
			} else {
				broken++
			}
		}
	}
	frac := float64(fixed) / float64(fixed+broken)
	if frac < 0.35 || frac > 0.65 {
		t.Errorf("bdrmap(0.5) fixed %.2f of borders, want ≈0.5", frac)
	}
}

func TestASPathSkipsPrivate(t *testing.T) {
	topo := topoFor(t)
	m := Truth{Topo: topo}
	h0, h1 := topo.Hosts[0], topo.Hosts[len(topo.Hosts)-1]
	path := ASPath(m, []ipv4.Addr{h0.Addr, ipv4.MustParseAddr("10.1.2.3"), h1.Addr})
	want := 2
	if h0.AS == h1.AS {
		want = 1
	}
	if len(path) != want {
		t.Fatalf("path %v, want %d entries", path, want)
	}
}

func TestSameAS(t *testing.T) {
	topo := topoFor(t)
	m := Truth{Topo: topo}
	as := topo.ASes[len(topo.ASes)-1]
	if len(as.Hosts) >= 2 {
		a := topo.Hosts[as.Hosts[0]].Addr
		b := topo.Hosts[as.Hosts[1]].Addr
		if !SameAS(m, a, b) {
			t.Error("same-AS hosts reported different")
		}
	}
	if SameAS(m, topo.Hosts[0].Addr, ipv4.MustParseAddr("10.0.0.1")) {
		t.Error("private address matched an AS")
	}
}
