package measure_test

import (
	"reflect"
	"testing"

	"revtr/internal/measure"
	"revtr/internal/netsim/ipv4"
	"revtr/internal/simtest"
)

// FuzzSpecCodec drives arbitrary probe Specs through Issue against a
// small fabric. The codec contract under fuzz: Issue never panics for
// any Spec (garbage addresses, out-of-range kinds, wild TTLs and
// sequence numbers included), issuing the same Spec at the same virtual
// time twice is bit-identical (the determinism guarantee the concurrent
// probe layer rests on), Record Route never records more than its nine
// slots, RTTs are never negative, and per-kind counter deltas account
// exactly one probe for known kinds and zero for unknown ones.
func FuzzSpecCodec(f *testing.F) {
	env := simtest.New(f, 300, 1)
	src := env.Agent(env.SourceHost(0))
	someDst := env.ResponsiveHost(0, src.AS)

	f.Add(uint8(0), uint16(0), uint32(0), uint32(someDst.Addr), uint8(0), uint64(1), int64(0), false)
	f.Add(uint8(1), uint16(1), uint32(0), uint32(someDst.Addr), uint8(0), uint64(2), int64(1000), false)
	f.Add(uint8(2), uint16(2), uint32(src.Addr), uint32(someDst.Addr), uint8(0), uint64(3), int64(5_000_000), false)
	f.Add(uint8(3), uint16(0), uint32(0), uint32(someDst.Addr), uint8(0), uint64(4), int64(0), true)
	f.Add(uint8(4), uint16(1), uint32(src.Addr), uint32(someDst.Addr), uint8(0), uint64(5), int64(0), true)
	f.Add(uint8(5), uint16(0), uint32(0), uint32(someDst.Addr), uint8(30), uint64(6), int64(0), false)
	f.Add(uint8(250), uint16(9), uint32(1), uint32(2), uint8(255), uint64(0), int64(-1), true)

	f.Fuzz(func(t *testing.T, kind uint8, vpSel uint16, srcRaw, dstRaw uint32, ttl uint8, seq uint64, nowUS int64, prespec bool) {
		vp := src
		if len(env.Sites) > 0 {
			vp = env.Sites[int(vpSel)%len(env.Sites)]
		}
		sp := measure.Spec{
			Kind: measure.Kind(kind),
			VP:   vp,
			Src:  ipv4.Addr(srcRaw),
			Dst:  ipv4.Addr(dstRaw),
			TTL:  ttl,
			Seq:  seq,
		}
		if prespec {
			sp.Prespec = []ipv4.Addr{ipv4.Addr(dstRaw), ipv4.Addr(srcRaw)}
		}

		r1 := measure.Issue(env.Fabric, sp, nowUS)
		r2 := measure.Issue(env.Fabric, sp, nowUS)
		if !reflect.DeepEqual(r1, r2) {
			t.Fatalf("Issue is not deterministic for %+v at %d:\n%+v\nvs\n%+v", sp, nowUS, r1, r2)
		}
		if n := len(r1.RR.Recorded); n > ipv4.RRSlots {
			t.Fatalf("RR recorded %d hops > %d slots", n, ipv4.RRSlots)
		}
		if rtt := r1.RTTUS(); rtt < 0 {
			t.Fatalf("negative RTT %d for %+v", rtt, sp)
		}
		if d := sp.Delta(); sp.Kind <= measure.KindTraceroutePkt {
			if d.Total() != 1 {
				t.Fatalf("known kind %v delta %+v accounts %d probes, want 1", sp.Kind, d, d.Total())
			}
		} else if d.Total() != 0 {
			t.Fatalf("unknown kind %v accounted %d probes, want 0", sp.Kind, d.Total())
		}
		if r1.VPDead && r1.Sent {
			t.Fatalf("reply claims both VPDead and Sent: %+v", r1)
		}
	})
}
