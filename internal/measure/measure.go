// Package measure provides the probing primitives Reverse Traceroute is
// built from, executed against the simulated fabric: ping, Record Route
// ping, spoofed Record Route ping, tsprespec Timestamp ping, and Paris
// traceroute. Every primitive is accounted per packet type, which is how
// the Table 4 probe budget comparison is produced.
package measure

import (
	"fmt"

	"revtr/internal/netsim/fabric"
	"revtr/internal/netsim/ipv4"
	"revtr/internal/netsim/topology"
)

// Agent is a measurement endpoint: an address and the router it injects
// packets at. Agents are built from topology hosts or anycast sites.
type Agent struct {
	Name     string
	Addr     ipv4.Addr
	Router   topology.RouterID
	AS       topology.ASN
	CanSpoof bool // the hosting AS does not filter spoofed sources
	Site     int  // anycast site index, or -1
}

// AgentFromHost builds an agent at a topology host.
func AgentFromHost(topo *topology.Topology, h *topology.Host) Agent {
	return Agent{
		Name:     fmt.Sprintf("host-%s", h.Addr),
		Addr:     h.Addr,
		Router:   h.Router,
		AS:       h.AS,
		CanSpoof: topo.ASes[h.AS].AllowsSpoofing,
		Site:     -1,
	}
}

// Counters tallies probe packets by type — the Table 4 columns.
type Counters struct {
	Ping       uint64
	RR         uint64
	SpoofRR    uint64
	TS         uint64
	SpoofTS    uint64
	Traceroute uint64 // traceroute probe packets
}

// Total is the grand total of probe packets sent.
func (c *Counters) Total() uint64 {
	return c.Ping + c.RR + c.SpoofRR + c.TS + c.SpoofTS + c.Traceroute
}

// Add accumulates other into c.
func (c *Counters) Add(other Counters) {
	c.Ping += other.Ping
	c.RR += other.RR
	c.SpoofRR += other.SpoofRR
	c.TS += other.TS
	c.SpoofTS += other.SpoofTS
	c.Traceroute += other.Traceroute
}

// Sub returns c minus other.
func (c Counters) Sub(other Counters) Counters {
	return Counters{
		Ping:       c.Ping - other.Ping,
		RR:         c.RR - other.RR,
		SpoofRR:    c.SpoofRR - other.SpoofRR,
		TS:         c.TS - other.TS,
		SpoofTS:    c.SpoofTS - other.SpoofTS,
		Traceroute: c.Traceroute - other.Traceroute,
	}
}

// Prober issues probes on a fabric. It is not safe for concurrent use.
type Prober struct {
	F *fabric.Fabric
	// Count accumulates packets sent.
	Count Counters

	nextID    uint16
	nextNonce uint64
	nowUS     int64
}

// NewProber creates a prober over f.
func NewProber(f *fabric.Fabric) *Prober { return &Prober{F: f} }

// Now returns the prober's virtual clock (microseconds).
func (p *Prober) Now() int64 { return p.nowUS }

// Advance moves the virtual clock forward.
func (p *Prober) Advance(us int64) { p.nowUS += us }

// SetNow sets the virtual clock.
func (p *Prober) SetNow(us int64) { p.nowUS = us }

func (p *Prober) id() uint16 {
	p.nextID++
	return p.nextID
}

func (p *Prober) nonce() uint64 {
	p.nextNonce++
	return p.nextNonce
}

// replyTo extracts the first delivery addressed to addr.
func replyTo(res *fabric.Result, addr ipv4.Addr) (*fabric.Delivery, bool) {
	for i := range res.Deliveries {
		if res.Deliveries[i].To == addr {
			return &res.Deliveries[i], true
		}
	}
	return nil, false
}

// PingResult is the outcome of a plain ping.
type PingResult struct {
	Alive bool
	RTTUS int64
	// Site is the anycast site index the request was delivered at, or -1
	// for unicast destinations (used to measure anycast catchments,
	// §6.1).
	Site int
}

// Ping sends one echo request from agent a to dst.
func (p *Prober) Ping(a Agent, dst ipv4.Addr) PingResult {
	p.Count.Ping++
	pkt := ipv4.BuildEchoRequest(a.Addr, dst, p.id(), 1, 64, 0, nil)
	res := p.F.Inject(a.Router, pkt, p.nowUS, flowKey(a.Addr, dst, 0), p.nonce())
	site := -1
	for i := range res.Deliveries {
		if res.Deliveries[i].Site >= 0 {
			site = res.Deliveries[i].Site
		}
	}
	if d, ok := replyTo(res, a.Addr); ok {
		return PingResult{Alive: true, RTTUS: d.TimeUS - p.nowUS, Site: site}
	}
	// The request may have been delivered (fixing the catchment) even if
	// no reply was produced.
	return PingResult{Site: site}
}

// RRResult is the outcome of a Record Route ping.
type RRResult struct {
	Responded bool
	RTTUS     int64
	// Recorded is the full RR array of the reply: forward-path stamps,
	// possibly the destination's stamp, then reverse-path stamps.
	Recorded []ipv4.Addr
	// ReplyFrom is the source address of the echo reply.
	ReplyFrom ipv4.Addr
}

// RRPing sends an echo request with a 9-slot Record Route option from
// agent a to dst. The reply (if any) is received at a.
func (p *Prober) RRPing(a Agent, dst ipv4.Addr) RRResult {
	p.Count.RR++
	return p.rrPing(a.Router, a.Addr, dst, a.Addr)
}

// SpoofedRRPing sends an RR echo request to dst from vantage point vp,
// spoofing src as the source; the reply travels the reverse path from dst
// to src (Insight 1.3). Returns an error-like zero result if vp cannot
// spoof.
func (p *Prober) SpoofedRRPing(vp Agent, src ipv4.Addr, dst ipv4.Addr) RRResult {
	if !vp.CanSpoof {
		return RRResult{}
	}
	p.Count.SpoofRR++
	return p.rrPing(vp.Router, src, dst, src)
}

func (p *Prober) rrPing(at topology.RouterID, srcAddr, dst, recvAddr ipv4.Addr) RRResult {
	pkt := ipv4.BuildEchoRequest(srcAddr, dst, p.id(), 1, 64, ipv4.RRSlots, nil)
	res := p.F.Inject(at, pkt, p.nowUS, flowKey(srcAddr, dst, 0), p.nonce())
	d, ok := replyTo(res, recvAddr)
	if !ok {
		return RRResult{}
	}
	var h ipv4.Header
	if _, err := h.Decode(d.Pkt); err != nil || !h.HasRR {
		return RRResult{}
	}
	rec := make([]ipv4.Addr, h.RR.N)
	copy(rec, h.RR.Recorded())
	return RRResult{
		Responded: true,
		RTTUS:     d.TimeUS - p.nowUS,
		Recorded:  rec,
		ReplyFrom: h.Src,
	}
}

// TSResult is the outcome of a tsprespec Timestamp ping.
type TSResult struct {
	Responded bool
	RTTUS     int64
	// Stamped[i] reports whether prespecified address i recorded a
	// timestamp.
	Stamped []bool
}

// TSPing sends a tsprespec echo request with the given prespecified
// addresses (at most 4) from a to dst.
func (p *Prober) TSPing(a Agent, dst ipv4.Addr, prespec []ipv4.Addr) TSResult {
	p.Count.TS++
	return p.tsPing(a.Router, a.Addr, dst, a.Addr, prespec)
}

// SpoofedTSPing is TSPing sent from vp spoofing src.
func (p *Prober) SpoofedTSPing(vp Agent, src, dst ipv4.Addr, prespec []ipv4.Addr) TSResult {
	if !vp.CanSpoof {
		return TSResult{}
	}
	p.Count.SpoofTS++
	return p.tsPing(vp.Router, src, dst, src, prespec)
}

func (p *Prober) tsPing(at topology.RouterID, srcAddr, dst, recvAddr ipv4.Addr, prespec []ipv4.Addr) TSResult {
	pkt := ipv4.BuildEchoRequest(srcAddr, dst, p.id(), 1, 64, 0, prespec)
	res := p.F.Inject(at, pkt, p.nowUS, flowKey(srcAddr, dst, 0), p.nonce())
	d, ok := replyTo(res, recvAddr)
	if !ok {
		return TSResult{}
	}
	var h ipv4.Header
	if _, err := h.Decode(d.Pkt); err != nil || !h.HasTS {
		return TSResult{}
	}
	out := TSResult{Responded: true, RTTUS: d.TimeUS - p.nowUS, Stamped: make([]bool, h.TS.N)}
	for i := 0; i < h.TS.N; i++ {
		out.Stamped[i] = h.TS.Pairs[i].Stamped
	}
	return out
}

// TracerouteHop is one hop of a traceroute.
type TracerouteHop struct {
	Addr      ipv4.Addr // zero for an unresponsive hop ("*")
	RTTUS     int64
	Responded bool
}

// TracerouteResult is a Paris traceroute outcome.
type TracerouteResult struct {
	Hops       []TracerouteHop
	ReachedDst bool
	RTTUS      int64 // total wall time of the traceroute
}

// MaxTracerouteTTL bounds traceroute probing.
const MaxTracerouteTTL = 40

// Traceroute runs a Paris traceroute (constant flow identifier) from a to
// dst. One probe per TTL; stops at the destination's echo reply or after
// two consecutive silent hops beyond TTL 30.
func (p *Prober) Traceroute(a Agent, dst ipv4.Addr) TracerouteResult {
	var out TracerouteResult
	flow := flowKey(a.Addr, dst, 1)
	silent := 0
	for ttl := 1; ttl <= MaxTracerouteTTL; ttl++ {
		p.Count.Traceroute++
		pkt := ipv4.BuildEchoRequest(a.Addr, dst, p.id(), uint16(ttl), uint8(ttl), 0, nil)
		res := p.F.Inject(a.Router, pkt, p.nowUS, flow, p.nonce())
		d, ok := replyTo(res, a.Addr)
		if !ok {
			out.Hops = append(out.Hops, TracerouteHop{})
			silent++
			if silent >= 4 {
				break
			}
			continue
		}
		silent = 0
		var h ipv4.Header
		payload, err := h.Decode(d.Pkt)
		if err != nil {
			out.Hops = append(out.Hops, TracerouteHop{})
			continue
		}
		var m ipv4.ICMP
		if m.Decode(payload) != nil {
			out.Hops = append(out.Hops, TracerouteHop{})
			continue
		}
		rtt := d.TimeUS - p.nowUS
		out.RTTUS += rtt
		switch m.Type {
		case ipv4.ICMPTimeExceeded:
			out.Hops = append(out.Hops, TracerouteHop{Addr: h.Src, RTTUS: rtt, Responded: true})
		case ipv4.ICMPEchoReply:
			out.Hops = append(out.Hops, TracerouteHop{Addr: h.Src, RTTUS: rtt, Responded: true})
			out.ReachedDst = true
			return out
		default:
			out.Hops = append(out.Hops, TracerouteHop{})
		}
	}
	return out
}

// HopAddrs extracts the responding hop addresses of a traceroute,
// dropping unresponsive hops.
func (t *TracerouteResult) HopAddrs() []ipv4.Addr {
	var out []ipv4.Addr
	for _, h := range t.Hops {
		if h.Responded {
			out = append(out, h.Addr)
		}
	}
	return out
}

// flowKey derives a per-flow load-balancing key (Paris semantics: header
// fields only, so retransmissions follow the same path).
func flowKey(src, dst ipv4.Addr, proto uint64) uint64 {
	x := uint64(src)<<32 | uint64(uint32(dst))
	x ^= proto * 0x9e3779b97f4a7c15
	x ^= x >> 29
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 32
	return x
}
