// Package measure provides the probing primitives Reverse Traceroute is
// built from, executed against the simulated fabric: ping, Record Route
// ping, spoofed Record Route ping, tsprespec Timestamp ping, and Paris
// traceroute. Every primitive is accounted per packet type, which is how
// the Table 4 probe budget comparison is produced.
//
// The package is split into a pure per-probe issue path (Spec/Issue in
// spec.go — a deterministic function of the probe description and the
// virtual time, safe to run concurrently) and the serial Prober
// convenience wrapper below. Concurrent batch execution lives in
// internal/probe, which drives the same pure path through a worker pool.
package measure

import (
	"fmt"

	"revtr/internal/netsim/fabric"
	"revtr/internal/netsim/ipv4"
	"revtr/internal/netsim/topology"
)

// Agent is a measurement endpoint: an address and the router it injects
// packets at. Agents are built from topology hosts or anycast sites.
type Agent struct {
	Name     string
	Addr     ipv4.Addr
	Router   topology.RouterID
	AS       topology.ASN
	CanSpoof bool // the hosting AS does not filter spoofed sources
	Site     int  // anycast site index, or -1
}

// AgentFromHost builds an agent at a topology host.
func AgentFromHost(topo *topology.Topology, h *topology.Host) Agent {
	return Agent{
		Name:     fmt.Sprintf("host-%s", h.Addr),
		Addr:     h.Addr,
		Router:   h.Router,
		AS:       h.AS,
		CanSpoof: topo.ASes[h.AS].AllowsSpoofing,
		Site:     -1,
	}
}

// Counters tallies probe packets by type — the Table 4 columns. It is a
// plain value: Add and Sub return results instead of mutating, so
// aggregation across goroutines stays explicit (accumulate locally, or
// use probe.Pool's atomic aggregation).
type Counters struct {
	Ping       uint64
	RR         uint64
	SpoofRR    uint64
	TS         uint64
	SpoofTS    uint64
	Traceroute uint64 // traceroute probe packets
}

// Total is the grand total of probe packets sent.
func (c Counters) Total() uint64 {
	return c.Ping + c.RR + c.SpoofRR + c.TS + c.SpoofTS + c.Traceroute
}

// Add returns c plus other.
func (c Counters) Add(other Counters) Counters {
	return Counters{
		Ping:       c.Ping + other.Ping,
		RR:         c.RR + other.RR,
		SpoofRR:    c.SpoofRR + other.SpoofRR,
		TS:         c.TS + other.TS,
		SpoofTS:    c.SpoofTS + other.SpoofTS,
		Traceroute: c.Traceroute + other.Traceroute,
	}
}

// Scale returns c with every column multiplied by n (retry accounting:
// n attempts of one spec cost n times its Delta).
func (c Counters) Scale(n uint64) Counters {
	return Counters{
		Ping:       c.Ping * n,
		RR:         c.RR * n,
		SpoofRR:    c.SpoofRR * n,
		TS:         c.TS * n,
		SpoofTS:    c.SpoofTS * n,
		Traceroute: c.Traceroute * n,
	}
}

// Sub returns c minus other.
func (c Counters) Sub(other Counters) Counters {
	return Counters{
		Ping:       c.Ping - other.Ping,
		RR:         c.RR - other.RR,
		SpoofRR:    c.SpoofRR - other.SpoofRR,
		TS:         c.TS - other.TS,
		SpoofTS:    c.SpoofTS - other.SpoofTS,
		Traceroute: c.Traceroute - other.Traceroute,
	}
}

// Prober issues probes serially on a fabric: a convenience wrapper over
// the pure Spec/Issue path for background services (atlas building,
// ingress surveys) and evaluation code. It is not safe for concurrent
// use — concurrent measurement probing goes through probe.Pool, which
// shares the same Clock.
type Prober struct {
	F *fabric.Fabric
	// Count accumulates packets sent.
	Count Counters

	clock *Clock
	seq   uint64
}

// NewProber creates a prober over f with its own clock.
func NewProber(f *fabric.Fabric) *Prober {
	return &Prober{F: f, clock: NewClock()}
}

// NewProberWithClock creates a prober sharing an existing clock (one
// deployment: one clock).
func NewProberWithClock(f *fabric.Fabric, c *Clock) *Prober {
	return &Prober{F: f, clock: c}
}

// Clock exposes the prober's virtual clock.
func (p *Prober) Clock() *Clock { return p.clock }

// Now returns the prober's virtual clock (microseconds).
func (p *Prober) Now() int64 { return p.clock.Now() }

// Advance moves the virtual clock forward.
func (p *Prober) Advance(us int64) { p.clock.Advance(us) }

// SetNow sets the virtual clock.
func (p *Prober) SetNow(us int64) { p.clock.Set(us) }

// next allocates the next probe sequence number.
func (p *Prober) next() uint64 {
	p.seq++
	return p.seq
}

// replyTo extracts the first delivery addressed to addr.
func replyTo(res *fabric.Result, addr ipv4.Addr) (*fabric.Delivery, bool) {
	for i := range res.Deliveries {
		if res.Deliveries[i].To == addr {
			return &res.Deliveries[i], true
		}
	}
	return nil, false
}

// PingResult is the outcome of a plain ping.
type PingResult struct {
	Alive bool
	RTTUS int64
	// Site is the anycast site index the request was delivered at, or -1
	// for unicast destinations (used to measure anycast catchments,
	// §6.1).
	Site int
}

// Ping sends one echo request from agent a to dst.
func (p *Prober) Ping(a Agent, dst ipv4.Addr) PingResult {
	p.Count.Ping++
	return Issue(p.F, Spec{Kind: KindPing, VP: a, Dst: dst, Seq: p.next()}, p.clock.Now()).Ping
}

// RRResult is the outcome of a Record Route ping.
type RRResult struct {
	Responded bool
	RTTUS     int64
	// Recorded is the full RR array of the reply: forward-path stamps,
	// possibly the destination's stamp, then reverse-path stamps.
	Recorded []ipv4.Addr
	// ReplyFrom is the source address of the echo reply.
	ReplyFrom ipv4.Addr
}

// RRPing sends an echo request with a 9-slot Record Route option from
// agent a to dst. The reply (if any) is received at a.
func (p *Prober) RRPing(a Agent, dst ipv4.Addr) RRResult {
	p.Count.RR++
	return Issue(p.F, Spec{Kind: KindRR, VP: a, Dst: dst, Seq: p.next()}, p.clock.Now()).RR
}

// SpoofedRRPing sends an RR echo request to dst from vantage point vp,
// spoofing src as the source; the reply travels the reverse path from dst
// to src (Insight 1.3). Returns an error-like zero result if vp cannot
// spoof.
func (p *Prober) SpoofedRRPing(vp Agent, src ipv4.Addr, dst ipv4.Addr) RRResult {
	if !vp.CanSpoof {
		return RRResult{}
	}
	p.Count.SpoofRR++
	return Issue(p.F, Spec{Kind: KindSpoofedRR, VP: vp, Src: src, Dst: dst, Seq: p.next()}, p.clock.Now()).RR
}

// TSResult is the outcome of a tsprespec Timestamp ping.
type TSResult struct {
	Responded bool
	RTTUS     int64
	// Stamped[i] reports whether prespecified address i recorded a
	// timestamp.
	Stamped []bool
}

// TSPing sends a tsprespec echo request with the given prespecified
// addresses (at most 4) from a to dst.
func (p *Prober) TSPing(a Agent, dst ipv4.Addr, prespec []ipv4.Addr) TSResult {
	p.Count.TS++
	return Issue(p.F, Spec{Kind: KindTS, VP: a, Dst: dst, Prespec: prespec, Seq: p.next()}, p.clock.Now()).TS
}

// SpoofedTSPing is TSPing sent from vp spoofing src.
func (p *Prober) SpoofedTSPing(vp Agent, src, dst ipv4.Addr, prespec []ipv4.Addr) TSResult {
	if !vp.CanSpoof {
		return TSResult{}
	}
	p.Count.SpoofTS++
	return Issue(p.F, Spec{Kind: KindSpoofedTS, VP: vp, Src: src, Dst: dst, Prespec: prespec, Seq: p.next()}, p.clock.Now()).TS
}

// TracerouteHop is one hop of a traceroute.
type TracerouteHop struct {
	Addr      ipv4.Addr // zero for an unresponsive hop ("*")
	RTTUS     int64
	Responded bool
}

// TracerouteResult is a Paris traceroute outcome.
type TracerouteResult struct {
	Hops       []TracerouteHop
	ReachedDst bool
	RTTUS      int64 // total wall time of the traceroute
}

// MaxTracerouteTTL bounds traceroute probing.
const MaxTracerouteTTL = 40

// Traceroute runs a Paris traceroute (constant flow identifier) from a to
// dst. One probe per TTL; stops at the destination's echo reply or after
// four consecutive silent hops.
func (p *Prober) Traceroute(a Agent, dst ipv4.Addr) TracerouteResult {
	tr, sent := RunTraceroute(p.F, a, dst, p.clock.Now(), p.seq)
	p.seq += MaxTracerouteTTL
	p.Count.Traceroute += uint64(sent)
	return tr
}

// HopAddrs extracts the responding hop addresses of a traceroute,
// dropping unresponsive hops.
func (t *TracerouteResult) HopAddrs() []ipv4.Addr {
	var out []ipv4.Addr
	for _, h := range t.Hops {
		if h.Responded {
			out = append(out, h.Addr)
		}
	}
	return out
}

// flowKey derives a per-flow load-balancing key (Paris semantics: header
// fields only, so retransmissions follow the same path).
func flowKey(src, dst ipv4.Addr, proto uint64) uint64 {
	x := uint64(src)<<32 | uint64(uint32(dst))
	x ^= proto * 0x9e3779b97f4a7c15
	x ^= x >> 29
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 32
	return x
}
