package measure

import (
	"sync/atomic"

	"revtr/internal/netsim/fabric"
	"revtr/internal/netsim/ipv4"
)

// Clock is a shared virtual clock in microseconds, safe for concurrent
// use. One deployment owns one Clock: the serial Prober, the concurrent
// probe pool, and every engine read the same virtual time, so cache TTLs
// and atlas ages stay consistent when eval code advances the day.
type Clock struct {
	us atomic.Int64
}

// NewClock creates a clock at virtual time zero.
func NewClock() *Clock { return &Clock{} }

// Now returns the current virtual time (microseconds).
func (c *Clock) Now() int64 { return c.us.Load() }

// Advance moves the virtual clock forward.
func (c *Clock) Advance(us int64) { c.us.Add(us) }

// Set sets the virtual clock.
func (c *Clock) Set(us int64) { c.us.Store(us) }

// Kind enumerates the probe packet types.
type Kind uint8

const (
	// KindPing is a plain echo request.
	KindPing Kind = iota
	// KindRR is an echo request carrying a 9-slot Record Route option.
	KindRR
	// KindSpoofedRR is an RR echo request sent from a vantage point with a
	// spoofed source; the reply travels the reverse path to Spec.Src.
	KindSpoofedRR
	// KindTS is a tsprespec Timestamp echo request.
	KindTS
	// KindSpoofedTS is a spoofed tsprespec Timestamp echo request.
	KindSpoofedTS
	// KindTraceroutePkt is a single TTL-limited traceroute probe packet.
	KindTraceroutePkt
)

// Spec fully describes one probe packet. A Spec plus a virtual time is
// everything Issue needs; issuing the same Spec at the same time against
// the same fabric always yields the same Reply, which is what makes
// concurrent batch execution bit-identical to serial execution.
type Spec struct {
	Kind Kind
	// VP is the endpoint the packet is injected at (and, for unspoofed
	// probes, the reply receiver).
	VP Agent
	// Src is the spoofed source address for KindSpoofedRR/KindSpoofedTS
	// (the reply receiver); zero means the packet carries VP's own
	// address.
	Src ipv4.Addr
	Dst ipv4.Addr
	// Prespec is the tsprespec address list (Timestamp kinds only).
	Prespec []ipv4.Addr
	// TTL is the probe TTL (KindTraceroutePkt only).
	TTL uint8
	// Seq is the per-measurement sequence number the probe's ID and
	// load-balancer nonce are derived from. Callers assign sequence
	// numbers deterministically (a counter per measurement), so probe
	// identities do not depend on execution order.
	Seq uint64
}

// src is the address written into the packet's source field.
func (sp Spec) src() ipv4.Addr {
	if sp.Src.IsZero() {
		return sp.VP.Addr
	}
	return sp.Src
}

// Delta is the Counters increment for one issued packet of this spec.
func (sp Spec) Delta() Counters {
	switch sp.Kind {
	case KindPing:
		return Counters{Ping: 1}
	case KindRR:
		return Counters{RR: 1}
	case KindSpoofedRR:
		return Counters{SpoofRR: 1}
	case KindTS:
		return Counters{TS: 1}
	case KindSpoofedTS:
		return Counters{SpoofTS: 1}
	case KindTraceroutePkt:
		return Counters{Traceroute: 1}
	}
	return Counters{}
}

// Reply is the outcome of one issued Spec. Sent is false when the probe
// was not put on the wire at all (a spoofed kind from a vantage point
// that cannot spoof, or a cancelled batch slot) — unsent probes are not
// accounted.
type Reply struct {
	Sent bool
	// VPDead reports that the probe was suppressed because the vantage
	// point is inside a scheduled blackout window (injected faults): the
	// VP cannot put packets on the wire at all. Always pairs with
	// Sent == false; the engine uses it to fail over to another VP.
	VPDead bool
	Ping   PingResult
	RR     RRResult
	TS     TSResult
	// Hop, EchoReply, and Delivered carry KindTraceroutePkt outcomes
	// (Delivered distinguishes an undecodable reply from silence: only
	// silence advances the traceroute's give-up counter).
	Hop       TracerouteHop
	EchoReply bool
	Delivered bool
}

// RTTUS is the responder round-trip time of the reply, or 0 when nothing
// came back. Batch virtual time is the max over these (paper batch
// semantics: probes fly concurrently).
func (r Reply) RTTUS() int64 {
	switch {
	case r.Ping.Alive:
		return r.Ping.RTTUS
	case r.RR.Responded:
		return r.RR.RTTUS
	case r.TS.Responded:
		return r.TS.RTTUS
	case r.Hop.Responded:
		return r.Hop.RTTUS
	}
	return 0
}

// mix64 is a splitmix64-style finalizer.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// probeKey derives the probe's ICMP identifier and per-packet
// load-balancer nonce as a pure function of (packet source, destination,
// sequence, kind). Serial and concurrent execution therefore put
// bit-identical packets on the wire.
func probeKey(sp Spec) (id uint16, nonce uint64) {
	h := uint64(uint32(sp.src()))<<32 | uint64(uint32(sp.Dst))
	h = mix64(h ^ (sp.Seq+1)*0x9e3779b97f4a7c15 ^ uint64(sp.Kind)<<56)
	return uint16(h >> 48), mix64(h ^ 0xa5a5a5a55a5a5a5a)
}

// Issue sends the probe described by sp on f at virtual time nowUS and
// decodes the reply. It is a pure function of its arguments (the fabric's
// own statistics counters aside) and is safe to call concurrently.
func Issue(f *fabric.Fabric, sp Spec, nowUS int64) Reply {
	if f.VPDown(sp.VP.Addr, nowUS) {
		return Reply{VPDead: true}
	}
	switch sp.Kind {
	case KindPing:
		return issuePing(f, sp, nowUS)
	case KindRR, KindSpoofedRR:
		return issueRR(f, sp, nowUS)
	case KindTS, KindSpoofedTS:
		return issueTS(f, sp, nowUS)
	case KindTraceroutePkt:
		return issueTraceroutePkt(f, sp, nowUS)
	}
	return Reply{}
}

func issuePing(f *fabric.Fabric, sp Spec, nowUS int64) Reply {
	id, nonce := probeKey(sp)
	pkt := ipv4.BuildEchoRequest(sp.VP.Addr, sp.Dst, id, 1, 64, 0, nil)
	res := f.Inject(sp.VP.Router, pkt, nowUS, flowKey(sp.VP.Addr, sp.Dst, 0), nonce)
	out := Reply{Sent: true, Ping: PingResult{Site: -1}}
	for i := range res.Deliveries {
		if res.Deliveries[i].Site >= 0 {
			out.Ping.Site = res.Deliveries[i].Site
		}
	}
	if d, ok := replyTo(res, sp.VP.Addr); ok {
		out.Ping.Alive = true
		out.Ping.RTTUS = d.TimeUS - nowUS
	}
	return out
}

func issueRR(f *fabric.Fabric, sp Spec, nowUS int64) Reply {
	if sp.Kind == KindSpoofedRR && !sp.VP.CanSpoof {
		return Reply{}
	}
	srcAddr := sp.src()
	id, nonce := probeKey(sp)
	pkt := ipv4.BuildEchoRequest(srcAddr, sp.Dst, id, 1, 64, ipv4.RRSlots, nil)
	res := f.Inject(sp.VP.Router, pkt, nowUS, flowKey(srcAddr, sp.Dst, 0), nonce)
	out := Reply{Sent: true}
	d, ok := replyTo(res, srcAddr)
	if !ok {
		return out
	}
	var h ipv4.Header
	if _, err := h.Decode(d.Pkt); err != nil || !h.HasRR {
		return out
	}
	rec := make([]ipv4.Addr, h.RR.N)
	copy(rec, h.RR.Recorded())
	out.RR = RRResult{
		Responded: true,
		RTTUS:     d.TimeUS - nowUS,
		Recorded:  rec,
		ReplyFrom: h.Src,
	}
	return out
}

func issueTS(f *fabric.Fabric, sp Spec, nowUS int64) Reply {
	if sp.Kind == KindSpoofedTS && !sp.VP.CanSpoof {
		return Reply{}
	}
	srcAddr := sp.src()
	id, nonce := probeKey(sp)
	pkt := ipv4.BuildEchoRequest(srcAddr, sp.Dst, id, 1, 64, 0, sp.Prespec)
	res := f.Inject(sp.VP.Router, pkt, nowUS, flowKey(srcAddr, sp.Dst, 0), nonce)
	out := Reply{Sent: true}
	d, ok := replyTo(res, srcAddr)
	if !ok {
		return out
	}
	var h ipv4.Header
	if _, err := h.Decode(d.Pkt); err != nil || !h.HasTS {
		return out
	}
	out.TS = TSResult{Responded: true, RTTUS: d.TimeUS - nowUS, Stamped: make([]bool, h.TS.N)}
	for i := 0; i < h.TS.N; i++ {
		out.TS.Stamped[i] = h.TS.Pairs[i].Stamped
	}
	return out
}

func issueTraceroutePkt(f *fabric.Fabric, sp Spec, nowUS int64) Reply {
	id, nonce := probeKey(sp)
	pkt := ipv4.BuildEchoRequest(sp.VP.Addr, sp.Dst, id, uint16(sp.TTL), sp.TTL, 0, nil)
	// Paris semantics: the flow key is constant across TTLs (and does not
	// include the nonce — traceroute packets carry no IP options, so
	// per-packet load balancers never consult the nonce either).
	res := f.Inject(sp.VP.Router, pkt, nowUS, flowKey(sp.VP.Addr, sp.Dst, 1), nonce)
	out := Reply{Sent: true}
	d, ok := replyTo(res, sp.VP.Addr)
	if !ok {
		return out
	}
	out.Delivered = true
	var h ipv4.Header
	payload, err := h.Decode(d.Pkt)
	if err != nil {
		return out
	}
	var m ipv4.ICMP
	if m.Decode(payload) != nil {
		return out
	}
	rtt := d.TimeUS - nowUS
	switch m.Type {
	case ipv4.ICMPTimeExceeded:
		out.Hop = TracerouteHop{Addr: h.Src, RTTUS: rtt, Responded: true}
	case ipv4.ICMPEchoReply:
		out.Hop = TracerouteHop{Addr: h.Src, RTTUS: rtt, Responded: true}
		out.EchoReply = true
	}
	return out
}

// RunTraceroute is the pure Paris traceroute: one probe per TTL with
// sequence numbers seqBase+1, seqBase+2, …; stops at the destination's
// echo reply or after four consecutive silent hops. Returns the result
// and the number of probe packets sent. Callers reserve MaxTracerouteTTL
// sequence numbers so concurrent measurements never collide.
func RunTraceroute(f *fabric.Fabric, a Agent, dst ipv4.Addr, nowUS int64, seqBase uint64) (TracerouteResult, int) {
	var out TracerouteResult
	sent := 0
	silent := 0
	for ttl := 1; ttl <= MaxTracerouteTTL; ttl++ {
		rep := Issue(f, Spec{
			Kind: KindTraceroutePkt, VP: a, Dst: dst,
			TTL: uint8(ttl), Seq: seqBase + uint64(ttl),
		}, nowUS)
		if rep.Sent {
			sent++
		}
		if !rep.Delivered {
			out.Hops = append(out.Hops, TracerouteHop{})
			silent++
			if silent >= 4 {
				break
			}
			continue
		}
		silent = 0
		if !rep.Hop.Responded {
			// Delivered but undecodable or an unexpected ICMP type.
			out.Hops = append(out.Hops, TracerouteHop{})
			continue
		}
		out.RTTUS += rep.Hop.RTTUS
		out.Hops = append(out.Hops, rep.Hop)
		if rep.EchoReply {
			out.ReachedDst = true
			return out, sent
		}
	}
	return out, sent
}
