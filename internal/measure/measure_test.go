package measure_test

import (
	"testing"

	"revtr/internal/measure"
	"revtr/internal/netsim/ipv4"
	"revtr/internal/simtest"
)

func TestPingCountsAndResponds(t *testing.T) {
	e := simtest.New(t, 300, 2)
	src := e.Agent(e.SourceHost(0))
	dst := e.ResponsiveHost(0, src.AS)
	r := e.Prober.Ping(src, dst.Addr)
	if !r.Alive {
		t.Fatal("responsive host did not answer ping")
	}
	if r.RTTUS <= 0 {
		t.Error("zero RTT")
	}
	if e.Prober.Count.Ping != 1 {
		t.Errorf("ping count %d", e.Prober.Count.Ping)
	}
}

func TestRRPingRecordsHops(t *testing.T) {
	e := simtest.New(t, 300, 2)
	src := e.Agent(e.SourceHost(0))
	for i := 0; i < 30; i++ {
		dst := e.ResponsiveHost(i, src.AS)
		if dst == nil {
			break
		}
		r := e.Prober.RRPing(src, dst.Addr)
		if !r.Responded {
			continue
		}
		if len(r.Recorded) == 0 {
			t.Fatal("responded but no recorded hops")
		}
		if len(r.Recorded) > ipv4.RRSlots {
			t.Fatalf("recorded %d > 9", len(r.Recorded))
		}
		return
	}
	t.Skip("no RR-reachable destination")
}

func TestSpoofedRRRequiresSpoofCapability(t *testing.T) {
	e := simtest.New(t, 300, 2)
	src := e.Agent(e.SourceHost(0))
	dst := e.ResponsiveHost(0, src.AS)
	noSpoof := src
	noSpoof.CanSpoof = false
	before := e.Prober.Count.SpoofRR
	r := e.Prober.SpoofedRRPing(noSpoof, src.Addr, dst.Addr)
	if r.Responded {
		t.Error("spoofed probe sent from non-spoofing agent")
	}
	if e.Prober.Count.SpoofRR != before {
		t.Error("counted a probe that was never sent")
	}
}

func TestSpoofedRRReachesSpoofedSource(t *testing.T) {
	e := simtest.New(t, 300, 2)
	src := e.Agent(e.SourceHost(0))
	for i := 0; i < 20; i++ {
		dst := e.ResponsiveHost(i*2, src.AS)
		if dst == nil {
			break
		}
		for _, site := range e.Sites {
			if site.AS == src.AS || site.AS == dst.AS {
				continue
			}
			r := e.Prober.SpoofedRRPing(site, src.Addr, dst.Addr)
			if r.Responded {
				if len(r.Recorded) == 0 {
					t.Fatal("no RR stamps in spoofed reply")
				}
				return
			}
		}
	}
	t.Skip("no spoofed probe got through")
}

func TestTraceroute(t *testing.T) {
	e := simtest.New(t, 300, 2)
	src := e.Agent(e.SourceHost(0))
	for i := 0; i < 20; i++ {
		dst := e.ResponsiveHost(i, src.AS)
		if dst == nil {
			break
		}
		tr := e.Prober.Traceroute(src, dst.Addr)
		if !tr.ReachedDst {
			continue
		}
		hops := tr.HopAddrs()
		if len(hops) < 2 {
			t.Fatalf("too few hops: %v", hops)
		}
		if hops[len(hops)-1] != dst.Addr {
			t.Fatalf("last hop %s != destination %s", hops[len(hops)-1], dst.Addr)
		}
		// Paris property: rerunning gives identical hops.
		tr2 := e.Prober.Traceroute(src, dst.Addr)
		h2 := tr2.HopAddrs()
		if len(h2) != len(hops) {
			t.Fatal("traceroute not stable")
		}
		for j := range hops {
			if hops[j] != h2[j] {
				t.Fatal("traceroute hops differ between runs")
			}
		}
		return
	}
	t.Skip("no reachable destination")
}

func TestTSPing(t *testing.T) {
	e := simtest.New(t, 300, 2)
	src := e.Agent(e.SourceHost(0))
	// Find a responsive router on the forward path and test prespec
	// semantics: probing [dst, dst] should stamp at most the first.
	for i := 0; i < 30; i++ {
		dst := e.ResponsiveHost(i, src.AS)
		if dst == nil {
			break
		}
		r := e.Prober.TSPing(src, dst.Addr, []ipv4.Addr{dst.Addr, dst.Addr})
		if !r.Responded {
			continue
		}
		if len(r.Stamped) != 2 {
			t.Fatalf("stamped len %d", len(r.Stamped))
		}
		return
	}
	t.Skip("no TS-responsive destination")
}

func TestCountersArithmetic(t *testing.T) {
	a := measure.Counters{Ping: 5, RR: 3, SpoofRR: 2, TS: 1, SpoofTS: 1, Traceroute: 10}
	b := measure.Counters{Ping: 1, RR: 1}
	d := a.Sub(b)
	if d.Ping != 4 || d.RR != 2 || d.Total() != 20 {
		t.Errorf("sub wrong: %+v total %d", d, d.Total())
	}
	var c measure.Counters
	c = c.Add(a)
	c = c.Add(b)
	if c.Total() != a.Total()+b.Total() {
		t.Error("add wrong")
	}
	if a.Ping != 5 || b.Ping != 1 {
		t.Error("Add must not mutate its operands")
	}
}

func TestClock(t *testing.T) {
	e := simtest.New(t, 300, 2)
	e.Prober.SetNow(100)
	e.Prober.Advance(50)
	if e.Prober.Now() != 150 {
		t.Errorf("clock = %d", e.Prober.Now())
	}
}
