package measure

// Internal (white-box) edge-case tests for the Spec codec: probe
// identity derivation, per-kind counter deltas, and source resolution.
// These pin down the determinism contract the concurrent probe layer
// depends on — identical (src, dst, seq, kind) tuples MUST yield
// identical probe IDs and nonces, and any change to one tuple element
// must change the identity.

import (
	"testing"

	"revtr/internal/netsim/ipv4"
)

func TestProbeKeyDuplicateTuplesIdentical(t *testing.T) {
	vp := Agent{Addr: ipv4.MustParseAddr("10.0.0.1"), CanSpoof: true}
	src := ipv4.MustParseAddr("10.9.9.9")
	dst := ipv4.MustParseAddr("10.1.2.3")
	specs := []Spec{
		{Kind: KindPing, VP: vp, Dst: dst, Seq: 1},
		{Kind: KindRR, VP: vp, Dst: dst, Seq: 7},
		{Kind: KindSpoofedRR, VP: vp, Src: src, Dst: dst, Seq: 9},
		{Kind: KindTS, VP: vp, Dst: dst, Prespec: []ipv4.Addr{dst}, Seq: 11},
		{Kind: KindSpoofedTS, VP: vp, Src: src, Dst: dst, Seq: 13},
		{Kind: KindTraceroutePkt, VP: vp, Dst: dst, TTL: 5, Seq: 15},
	}
	for _, sp := range specs {
		id1, n1 := probeKey(sp)
		// A copy with the same (src, dst, seq, kind) — even via a different
		// VP router or prespec list — derives the identical identity.
		cp := sp
		cp.VP.Router = 42
		cp.Prespec = nil
		cp.TTL = 0
		id2, n2 := probeKey(cp)
		if id1 != id2 || n1 != n2 {
			t.Errorf("kind %v: duplicate tuple produced different identity: (%d,%d) vs (%d,%d)",
				sp.Kind, id1, n1, id2, n2)
		}
	}
}

func TestProbeKeyDistinguishesTuple(t *testing.T) {
	vp := Agent{Addr: ipv4.MustParseAddr("10.0.0.1")}
	dst := ipv4.MustParseAddr("10.1.2.3")
	base := Spec{Kind: KindRR, VP: vp, Dst: dst, Seq: 5}
	_, n0 := probeKey(base)
	variants := []Spec{
		{Kind: KindTS, VP: vp, Dst: dst, Seq: 5},                                             // kind differs
		{Kind: KindRR, VP: vp, Dst: dst, Seq: 6},                                             // seq differs
		{Kind: KindRR, VP: vp, Dst: dst + 1, Seq: 5},                                         // dst differs
		{Kind: KindRR, VP: Agent{Addr: vp.Addr + 1}, Dst: dst, Seq: 5},                       // src differs
		{Kind: KindSpoofedRR, VP: vp, Src: ipv4.MustParseAddr("10.5.5.5"), Dst: dst, Seq: 5}, // spoofed src
	}
	for i, v := range variants {
		if _, n := probeKey(v); n == n0 {
			t.Errorf("variant %d: nonce collided with base", i)
		}
	}
}

func TestSpecSrcResolution(t *testing.T) {
	vp := Agent{Addr: ipv4.MustParseAddr("10.0.0.1")}
	spoofed := ipv4.MustParseAddr("10.9.9.9")
	if got := (Spec{VP: vp}).src(); got != vp.Addr {
		t.Errorf("unspoofed src = %s, want VP %s", got, vp.Addr)
	}
	if got := (Spec{VP: vp, Src: spoofed}).src(); got != spoofed {
		t.Errorf("spoofed src = %s, want %s", got, spoofed)
	}
}

func TestSpecDeltaTable(t *testing.T) {
	for _, tc := range []struct {
		kind Kind
		want Counters
	}{
		{KindPing, Counters{Ping: 1}},
		{KindRR, Counters{RR: 1}},
		{KindSpoofedRR, Counters{SpoofRR: 1}},
		{KindTS, Counters{TS: 1}},
		{KindSpoofedTS, Counters{SpoofTS: 1}},
		{KindTraceroutePkt, Counters{Traceroute: 1}},
		{Kind(200), Counters{}},
	} {
		if got := (Spec{Kind: tc.kind}).Delta(); got != tc.want {
			t.Errorf("Delta(%v) = %+v, want %+v", tc.kind, got, tc.want)
		}
		if got, want := (Spec{Kind: tc.kind}).Delta().Total(), tc.want.Total(); got != want {
			t.Errorf("Delta(%v).Total() = %d, want %d", tc.kind, got, want)
		}
	}
}

func TestCountersScale(t *testing.T) {
	c := Counters{Ping: 1, RR: 2, SpoofRR: 3, TS: 4, SpoofTS: 5, Traceroute: 6}
	if got := c.Scale(0); got != (Counters{}) {
		t.Errorf("Scale(0) = %+v", got)
	}
	if got := c.Scale(1); got != c {
		t.Errorf("Scale(1) = %+v", got)
	}
	want := Counters{Ping: 3, RR: 6, SpoofRR: 9, TS: 12, SpoofTS: 15, Traceroute: 18}
	if got := c.Scale(3); got != want {
		t.Errorf("Scale(3) = %+v, want %+v", got, want)
	}
}

// TestRRSlotCap: the RR option carries at most ipv4.RRSlots (9)
// recorded addresses; a long forward path must not overflow the array,
// and the codec reports exactly the stamped prefix.
func TestRRSlotCap(t *testing.T) {
	src := ipv4.MustParseAddr("10.0.0.1")
	dst := ipv4.MustParseAddr("10.1.2.3")
	pkt := ipv4.BuildEchoRequest(src, dst, 1, 1, 64, ipv4.RRSlots, nil)
	// Stamp more addresses than there are slots.
	for i := 0; i < ipv4.RRSlots+5; i++ {
		ipv4.StampRecordRoute(pkt, ipv4.Addr(0x0a000100+uint32(i)))
	}
	var h ipv4.Header
	if _, err := h.Decode(pkt); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !h.HasRR {
		t.Fatal("RR option lost")
	}
	if h.RR.N != ipv4.RRSlots {
		t.Fatalf("recorded %d stamps, want the %d-slot cap", h.RR.N, ipv4.RRSlots)
	}
	rec := h.RR.Recorded()
	if len(rec) != ipv4.RRSlots {
		t.Fatalf("Recorded() returned %d addrs, want %d", len(rec), ipv4.RRSlots)
	}
	for i, a := range rec {
		if want := ipv4.Addr(0x0a000100 + uint32(i)); a != want {
			t.Fatalf("slot %d = %s, want %s (stamps past the cap must be discarded in order)", i, a, want)
		}
	}
}
