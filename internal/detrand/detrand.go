// Package detrand is the shared seeded-source pattern for the
// simulation: every consumer of pseudo-randomness derives a named
// stream from the deployment seed instead of ad-hoc `seed + k` offsets
// or (worse) the global math/rand source. A stream is a pure function
// of (seed, name), so adding a new consumer never perturbs existing
// streams the way renumbering additive offsets does, and two consumers
// can never collide unless they share a name on purpose.
//
// The detpath analyzer forbids global math/rand draws in deterministic
// packages; this package is the sanctioned replacement.
package detrand

import (
	"hash/fnv"
	"math/rand"
)

// New returns a rand.Rand whose seed is a pure function of the
// deployment seed and the stream name.
func New(seed int64, stream string) *rand.Rand {
	return rand.New(rand.NewSource(Seed(seed, stream)))
}

// Seed derives the stream's seed value (exposed for consumers that feed
// other PRNG shapes, e.g. a fault plan's uint64 seed).
func Seed(seed int64, stream string) int64 {
	h := fnv.New64a()
	h.Write([]byte(stream))
	return int64(mix64(uint64(seed) ^ h.Sum64()))
}

// mix64 is the splitmix64-style finalizer used across the simulation
// (fabric tie-breakers, fault plans, probe keys).
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
