package detrand

import "testing"

func TestStreamsAreDeterministic(t *testing.T) {
	a := New(42, "vantage.sites")
	b := New(42, "vantage.sites")
	for i := 0; i < 100; i++ {
		if x, y := a.Int63(), b.Int63(); x != y {
			t.Fatalf("draw %d: same (seed, stream) diverged: %d vs %d", i, x, y)
		}
	}
}

func TestStreamsAreIndependent(t *testing.T) {
	if Seed(42, "vantage.sites") == Seed(42, "vantage.probes") {
		t.Error("distinct streams share a seed")
	}
	if Seed(42, "vantage.sites") == Seed(43, "vantage.sites") {
		t.Error("distinct deployment seeds share a stream seed")
	}
	// Adding a consumer must not perturb existing streams: a stream's
	// seed depends only on its own (seed, name) pair.
	if Seed(42, "ingress.tiebreak") != Seed(42, "ingress.tiebreak") {
		t.Error("stream seed is not a pure function")
	}
}

func TestSeedsWellDistributed(t *testing.T) {
	seen := map[int64]bool{}
	streams := []string{"a", "b", "c", "ingress.tiebreak", "vantage.sites", "vantage.probes"}
	for seed := int64(0); seed < 50; seed++ {
		for _, s := range streams {
			v := Seed(seed, s)
			if seen[v] {
				t.Fatalf("collision at seed=%d stream=%q", seed, s)
			}
			seen[v] = true
		}
	}
}
