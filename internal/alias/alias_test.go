package alias

import (
	"testing"

	"revtr/internal/netsim/ipv4"
	"revtr/internal/netsim/topology"
)

func topoFor(t testing.TB) *topology.Topology {
	t.Helper()
	cfg := topology.DefaultConfig(300)
	cfg.Seed = 9
	return topology.Generate(cfg)
}

func TestMidarPrecision(t *testing.T) {
	topo := topoFor(t)
	m := NewMidar(topo, 0.5, 1)
	// Every positive answer must be true (MIDAR favours precision).
	checked := 0
	for _, r := range topo.Routers[:200] {
		al := topo.Aliases(r.ID)
		if !m.Known(al[0]) {
			continue
		}
		for _, a := range al[1:] {
			if m.SameRouter(al[0], a) {
				if !topo.SameRouter(al[0], a) {
					t.Fatalf("false positive: %s %s", al[0], a)
				}
				checked++
			}
		}
	}
	if checked == 0 {
		t.Fatal("midar resolved nothing")
	}
}

func TestMidarCoverage(t *testing.T) {
	topo := topoFor(t)
	m := NewMidar(topo, 0.4, 1)
	known := 0
	for _, r := range topo.Routers {
		if m.Known(r.Loopback) {
			known++
		}
	}
	frac := float64(known) / float64(len(topo.Routers))
	if frac < 0.3 || frac > 0.5 {
		t.Errorf("coverage %.2f not near 0.4", frac)
	}
}

func TestMidarNoCrossRouterAliases(t *testing.T) {
	topo := topoFor(t)
	m := NewMidar(topo, 1.0, 1)
	a := topo.Routers[0].Loopback
	b := topo.Routers[1].Loopback
	if m.SameRouter(a, b) {
		t.Error("different routers reported as aliases")
	}
	if m.SameRouter(a, a) != true {
		t.Error("self-alias failed")
	}
}

func TestSNMPIdentifiers(t *testing.T) {
	topo := topoFor(t)
	s := NewSNMP(topo, SNMPConfig{AllAddrsFrac: 1.0, SameIDFrac: 1.0}, 1)
	responded := 0
	for _, r := range topo.Routers {
		if !r.SNMPv3 {
			if s.Known(r.Loopback) {
				t.Fatal("non-SNMP router responded")
			}
			continue
		}
		responded++
		al := topo.Aliases(r.ID)
		id0, ok := s.Identifier(al[0])
		if !ok {
			t.Fatal("SNMP router silent on loopback")
		}
		for _, a := range al[1:] {
			id, ok := s.Identifier(a)
			if !ok || id != id0 {
				t.Fatalf("identifier mismatch on %s", a)
			}
			if !s.SameRouter(al[0], a) {
				t.Fatal("SameRouter false for same identifier")
			}
		}
	}
	if responded == 0 {
		t.Fatal("no SNMPv3 responders in topology")
	}
}

func TestSNMPPartialResponse(t *testing.T) {
	topo := topoFor(t)
	s := NewSNMP(topo, SNMPConfig{AllAddrsFrac: 0.0001, SameIDFrac: 1.0}, 1)
	// With AllAddrsFrac≈0 nearly every responder answers only on its
	// first address.
	multi := 0
	for _, r := range topo.Routers {
		if !r.SNMPv3 {
			continue
		}
		al := topo.Aliases(r.ID)
		n := 0
		for _, a := range al {
			if s.Known(a) {
				n++
			}
		}
		if n > 1 {
			multi++
		}
	}
	if multi > len(topo.Routers)/100 {
		t.Errorf("too many multi-address responders: %d", multi)
	}
}

func TestSlash30(t *testing.T) {
	var p Slash30
	a := ipv4.MustParseAddr("10.0.0.1")
	b := ipv4.MustParseAddr("10.0.0.2")
	c := ipv4.MustParseAddr("10.0.0.5")
	if !p.SameLink(a, b) {
		t.Error(".1/.2 should share /30")
	}
	if p.SameLink(a, c) {
		t.Error(".1/.5 do not share /30")
	}
	if p.SameLink(a, a) {
		t.Error("identical addresses are not a link")
	}
}

func TestCombinedFallsThrough(t *testing.T) {
	topo := topoFor(t)
	c := &Combined{
		Midar: NewMidar(topo, 0.0, 1), // empty
		SNMP:  NewSNMP(topo, SNMPConfig{AllAddrsFrac: 1, SameIDFrac: 1}, 1),
	}
	for _, r := range topo.Routers {
		if r.SNMPv3 {
			al := topo.Aliases(r.ID)
			if len(al) > 1 && !c.SameRouter(al[0], al[1]) {
				t.Fatal("combined did not fall through to SNMP")
			}
			return
		}
	}
}

func TestTruthResolver(t *testing.T) {
	topo := topoFor(t)
	tr := Truth{Topo: topo}
	r := topo.Routers[0]
	al := topo.Aliases(r.ID)
	if len(al) > 1 && !tr.SameRouter(al[0], al[1]) {
		t.Error("truth resolver failed on real aliases")
	}
	if !tr.Known(al[0]) {
		t.Error("truth resolver does not know a real address")
	}
}
