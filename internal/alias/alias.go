// Package alias simulates the alias-resolution datasets the paper uses
// (Appx B.1): a MIDAR-like dataset (high precision but covering only a
// fraction of routers), an SNMPv3-like fingerprinting technique (router
// identifiers from unsolicited SNMPv3 responses, per Albakour et al.),
// and the /30–/31 point-to-point heuristic.
//
// Alias coverage is the limiting factor of the paper's router-level
// accuracy evaluation ("75% of the direct traceroute hops not seen in
// revtr 2.0 paths do not allow for alias resolution"), so the datasets
// are derived from topology ground truth with configurable coverage and
// deterministic sampling rather than assumed perfect.
package alias

import (
	"math/rand"

	"revtr/internal/netsim/ipv4"
	"revtr/internal/netsim/topology"
)

// Resolver answers alias questions from a particular dataset's viewpoint.
type Resolver interface {
	// SameRouter reports whether the dataset can positively identify a
	// and b as aliases of one router.
	SameRouter(a, b ipv4.Addr) bool
	// Known reports whether the dataset knows anything about a (can
	// resolve it to a router).
	Known(a ipv4.Addr) bool
}

// Midar is a MIDAR-like dataset: a subset of routers whose full alias
// sets are known.
type Midar struct {
	group map[ipv4.Addr]topology.RouterID
}

// NewMidar samples coverage of routers (deterministically in seed) and
// records their complete alias sets.
func NewMidar(topo *topology.Topology, coverage float64, seed int64) *Midar {
	rng := rand.New(rand.NewSource(seed))
	m := &Midar{group: make(map[ipv4.Addr]topology.RouterID)}
	for _, r := range topo.Routers {
		if rng.Float64() >= coverage {
			continue
		}
		for _, a := range topo.Aliases(r.ID) {
			m.group[a] = r.ID
		}
	}
	return m
}

// Known implements Resolver.
func (m *Midar) Known(a ipv4.Addr) bool { _, ok := m.group[a]; return ok }

// SameRouter implements Resolver.
func (m *Midar) SameRouter(a, b ipv4.Addr) bool {
	ra, oka := m.group[a]
	rb, okb := m.group[b]
	return oka && okb && ra == rb
}

// SNMP is the SNMPv3 fingerprinting dataset: routers that answer
// unsolicited SNMPv3 expose an engine identifier usable to cluster
// aliases (§4.4). Per the paper, 81.4% of responsive routers respond on
// all their addresses and 94.8% use one identifier for all of them.
type SNMP struct {
	id map[ipv4.Addr]uint64
}

// SNMPConfig tunes the dataset imperfections; zero values take the
// paper's numbers.
type SNMPConfig struct {
	AllAddrsFrac float64 // routers responding on all addresses (else one)
	SameIDFrac   float64 // routers using one identifier on all addresses
}

// NewSNMP builds the dataset over the topology's SNMPv3-responsive
// routers.
func NewSNMP(topo *topology.Topology, cfg SNMPConfig, seed int64) *SNMP {
	if cfg.AllAddrsFrac == 0 {
		cfg.AllAddrsFrac = 0.814
	}
	if cfg.SameIDFrac == 0 {
		cfg.SameIDFrac = 0.948
	}
	rng := rand.New(rand.NewSource(seed))
	s := &SNMP{id: make(map[ipv4.Addr]uint64)}
	for _, r := range topo.Routers {
		if !r.SNMPv3 {
			continue
		}
		baseID := rng.Uint64() | 1
		aliases := topo.Aliases(r.ID)
		allAddrs := rng.Float64() < cfg.AllAddrsFrac
		sameID := rng.Float64() < cfg.SameIDFrac
		for i, a := range aliases {
			if !allAddrs && i > 0 {
				continue // only the first address responds
			}
			if sameID {
				s.id[a] = baseID
			} else {
				s.id[a] = rng.Uint64() | 1
			}
		}
	}
	return s
}

// Identifier returns the SNMPv3 engine ID for a, if a responds.
func (s *SNMP) Identifier(a ipv4.Addr) (uint64, bool) {
	id, ok := s.id[a]
	return id, ok
}

// Known implements Resolver.
func (s *SNMP) Known(a ipv4.Addr) bool { _, ok := s.id[a]; return ok }

// SameRouter implements Resolver.
func (s *SNMP) SameRouter(a, b ipv4.Addr) bool {
	ia, oka := s.id[a]
	ib, okb := s.id[b]
	return oka && okb && ia == ib
}

// Slash30 applies the point-to-point heuristic: two addresses in one /30
// (or /31) are the two ends of a link, so a traceroute hop (ingress) and
// an RR hop (egress) in the same /30 belong to adjacent routers — used
// when matching RR and traceroute hops (Appx B.1). Note this identifies
// *link* correspondence, not aliasing, so SameRouter is false; use
// SameLink.
type Slash30 struct{}

// SameLink reports whether a and b look like the two ends of a
// point-to-point link.
func (Slash30) SameLink(a, b ipv4.Addr) bool {
	return a != b && (a.Mask(30) == b.Mask(30) || a.Mask(31) == b.Mask(31))
}

// Combined resolves via MIDAR first, then SNMPv3.
type Combined struct {
	Midar *Midar
	SNMP  *SNMP
}

// Known implements Resolver.
func (c *Combined) Known(a ipv4.Addr) bool {
	return c.Midar.Known(a) || c.SNMP.Known(a)
}

// SameRouter implements Resolver.
func (c *Combined) SameRouter(a, b ipv4.Addr) bool {
	if c.Midar.SameRouter(a, b) {
		return true
	}
	return c.SNMP.SameRouter(a, b)
}

// Truth is the oracle resolver (topology ground truth); used only for
// "optimistic" evaluation bounds, never by the measurement system.
type Truth struct{ Topo *topology.Topology }

// Known implements Resolver.
func (t Truth) Known(a ipv4.Addr) bool {
	_, ok := t.Topo.RouterOf(a)
	return ok
}

// SameRouter implements Resolver.
func (t Truth) SameRouter(a, b ipv4.Addr) bool { return t.Topo.SameRouter(a, b) }
