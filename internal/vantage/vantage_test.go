package vantage

import (
	"testing"

	"revtr/internal/netsim/topology"
)

func topoFor(t testing.TB) *topology.Topology {
	t.Helper()
	cfg := topology.DefaultConfig(400)
	cfg.Seed = 21
	return topology.Generate(cfg)
}

func TestPlaceSites2020AtColos(t *testing.T) {
	topo := topoFor(t)
	sites := PlaceSites(topo, 15, Vintage2020, 1)
	if len(sites) == 0 {
		t.Fatal("no sites placed")
	}
	colo := 0
	for _, s := range sites {
		as := topo.ASes[s.Agent.AS]
		if !as.AllowsSpoofing {
			t.Fatalf("site %s in non-spoofing AS", s.Agent.Name)
		}
		if as.FiltersOptions {
			t.Fatalf("site %s in option-filtering AS", s.Agent.Name)
		}
		if as.Tier == topology.Colo {
			colo++
		}
	}
	if colo == 0 {
		t.Error("no 2020 sites at colo ASes")
	}
}

func TestPlaceSites2016AvoidColo(t *testing.T) {
	topo := topoFor(t)
	sites := PlaceSites(topo, 15, Vintage2016, 1)
	for _, s := range sites {
		if topo.ASes[s.Agent.AS].Tier == topology.Colo {
			t.Fatalf("2016 site at a colo AS")
		}
	}
}

func TestSitesDistinctASes(t *testing.T) {
	topo := topoFor(t)
	sites := PlaceSites(topo, 30, Vintage2020, 1)
	seen := map[topology.ASN]bool{}
	for _, s := range sites {
		if seen[s.Agent.AS] {
			t.Fatal("two sites in one AS")
		}
		seen[s.Agent.AS] = true
	}
}

func TestPlaceProbes(t *testing.T) {
	topo := topoFor(t)
	probes := PlaceProbes(topo, 50, 10, 1)
	if len(probes) < 40 {
		t.Fatalf("only %d probes placed", len(probes))
	}
	seen := map[topology.ASN]bool{}
	for _, p := range probes {
		if topo.ASes[p.Agent.AS].Tier == topology.Tier1 {
			t.Fatal("probe in a tier-1 AS")
		}
		if seen[p.Agent.AS] {
			t.Fatal("two probes in one AS")
		}
		seen[p.Agent.AS] = true
	}
}

func TestProbeSpend(t *testing.T) {
	p := &Probe{Credits: 3}
	if !p.Spend(2) {
		t.Fatal("spend refused with budget")
	}
	if p.Spend(2) {
		t.Fatal("overspend allowed")
	}
	if !p.Spend(1) {
		t.Fatal("exact spend refused")
	}
	if p.Spend(1) {
		t.Fatal("spend from empty budget")
	}
}

func TestPlacementDeterministic(t *testing.T) {
	topo := topoFor(t)
	a := PlaceSites(topo, 10, Vintage2020, 5)
	b := PlaceSites(topo, 10, Vintage2020, 5)
	if len(a) != len(b) {
		t.Fatal("site counts differ")
	}
	for i := range a {
		if a[i].Agent.Addr != b[i].Agent.Addr {
			t.Fatal("site placement not deterministic")
		}
	}
}
