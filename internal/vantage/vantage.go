// Package vantage places and manages the measurement infrastructure the
// Reverse Traceroute system coordinates: M-Lab-style spoofing-capable
// vantage point sites (hosted at colocation networks in the 2020
// deployment, at education networks in the 2016 one — the Fig 11
// contrast) and RIPE-Atlas-style probes in edge networks with per-probe
// rate limits.
package vantage

import (
	"fmt"
	"math/rand"

	"revtr/internal/detrand"
	"revtr/internal/measure"
	"revtr/internal/netsim/topology"
)

// Site is a spoofing-capable vantage point (an M-Lab site analogue).
type Site struct {
	Agent measure.Agent
}

// Vintage selects the deployment era for site placement.
type Vintage int

const (
	// Vintage2020 places sites at colo ASes (flattened Internet).
	Vintage2020 Vintage = iota
	// Vintage2016 places sites mostly at education/stub networks.
	Vintage2016
)

// PlaceSites selects up to n vantage point sites on the topology. A site
// needs a ping- and RR-responsive host in an AS that permits spoofing and
// does not filter options.
func PlaceSites(topo *topology.Topology, n int, vintage Vintage, seed int64) []Site {
	rng := detrand.New(seed, "vantage.sites")
	var candidateASes []topology.ASN
	switch vintage {
	case Vintage2020:
		candidateASes = append(candidateASes, topo.ASesByTier(topology.Colo)...)
		candidateASes = append(candidateASes, topo.ASesByTier(topology.Transit)...)
	case Vintage2016:
		// Education networks: stubs homed behind NRENs, then other stubs.
		for _, as := range topo.ASes {
			if as.Tier != topology.Stub {
				continue
			}
			for _, nb := range as.Neighbors {
				if nb.Rel == topology.RelProvider && topo.ASes[nb.ASN].Tier == topology.NREN {
					candidateASes = append(candidateASes, as.ASN)
					break
				}
			}
		}
		candidateASes = append(candidateASes, topo.ASesByTier(topology.Stub)...)
	}
	var sites []Site
	used := map[topology.ASN]bool{}
	for _, asn := range candidateASes {
		if len(sites) >= n {
			break
		}
		as := topo.ASes[asn]
		if used[asn] || !as.AllowsSpoofing || as.FiltersOptions {
			continue
		}
		h := pickResponsiveHost(topo, as, rng)
		if h == nil {
			continue
		}
		used[asn] = true
		a := measure.AgentFromHost(topo, h)
		a.Name = fmt.Sprintf("site-%03d", len(sites))
		sites = append(sites, Site{Agent: a})
	}
	return sites
}

func pickResponsiveHost(topo *topology.Topology, as *topology.AS, rng *rand.Rand) *topology.Host {
	perm := rng.Perm(len(as.Hosts))
	for _, i := range perm {
		h := &topo.Hosts[as.Hosts[i]]
		if h.PingResponsive && h.RRResponsive {
			return h
		}
	}
	return nil
}

// Probe is a RIPE-Atlas-style probe: it can run traceroutes toward
// sources but is rate limited.
type Probe struct {
	Agent measure.Agent
	// Credits is the remaining measurement budget (traceroutes).
	Credits int
}

// PlaceProbes places up to n probes at hosts in distinct randomly-chosen
// ASes (stub-biased, like the real Atlas), each with the given credit
// budget.
func PlaceProbes(topo *topology.Topology, n int, credits int, seed int64) []*Probe {
	rng := detrand.New(seed, "vantage.probes")
	order := rng.Perm(len(topo.ASes))
	var probes []*Probe
	for _, ai := range order {
		if len(probes) >= n {
			break
		}
		as := topo.ASes[ai]
		// Atlas probes are mostly in edge networks; skip the backbone.
		if as.Tier == topology.Tier1 {
			continue
		}
		h := pickResponsiveHost(topo, as, rng)
		if h == nil {
			continue
		}
		a := measure.AgentFromHost(topo, h)
		a.Name = fmt.Sprintf("probe-%04d", len(probes))
		probes = append(probes, &Probe{Agent: a, Credits: credits})
	}
	return probes
}

// Spend consumes credits; it reports false when the budget is exhausted
// (the RIPE rate-limit behaviour the atlas design works around, Q1).
func (p *Probe) Spend(n int) bool {
	if p.Credits < n {
		return false
	}
	p.Credits -= n
	return true
}
