package sched_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"revtr/internal/detrand"
	"revtr/internal/obs"
	"revtr/internal/sched"
)

// TestChaosSchedulerAccounting hammers the scheduler from many users
// at once with duplicate-heavy batches, deterministic executor
// failures, and a mid-flight revocation, then checks conservation:
// every admitted job ends in exactly one terminal state and the state
// tallies balance against the submission totals. Run under -race (the
// chaos make target does).
func TestChaosSchedulerAccounting(t *testing.T) {
	for _, seed := range []int64{3, 17, 40} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			var execCalls atomic.Int64
			exec := func(ctx context.Context, job sched.JobRef) (any, error) {
				execCalls.Add(1)
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				// Deterministic per-key failures: ~1/8 of unique pairs fail.
				src, dst := job.Src, job.Dst
				if (uint32(src)^uint32(dst)*2654435761)%8 == 0 {
					return nil, errors.New("injected failure")
				}
				return fmt.Sprintf("r:%s>%s", src, dst), nil
			}
			o := obs.New()
			s := sched.New(exec, sched.Options{Workers: 6, QueueCap: 300, Quantum: 3, Obs: o})
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			s.Start(ctx)

			const users = 5
			const batchesPerUser = 4
			var (
				wg       sync.WaitGroup
				mu       sync.Mutex
				batchIDs []string
				admitted int
			)
			for u := 0; u < users; u++ {
				wg.Add(1)
				go func(u int) {
					defer wg.Done()
					name := fmt.Sprintf("user%d", u)
					rng := detrand.New(seed, name)
					for b := 0; b < batchesPerUser; b++ {
						var sp []sched.JobSpec
						n := 20 + int(rng.Intn(30))
						for i := 0; i < n; i++ {
							// Small dst space → heavy duplication within and
							// across users and batches.
							sp = append(sp, sched.JobSpec{
								Src: addr(9),
								Dst: addr(uint32(100 + rng.Intn(40))),
							})
						}
						st, err := s.Submit(context.Background(), name, sp)
						if err != nil && !errors.Is(err, sched.ErrOverloaded) && !errors.Is(err, sched.ErrRevoked) {
							t.Errorf("submit: %v", err)
							return
						}
						if errors.Is(err, sched.ErrRevoked) {
							return
						}
						mu.Lock()
						batchIDs = append(batchIDs, st.ID)
						admitted += len(st.Jobs)
						mu.Unlock()
					}
				}(u)
			}
			// Revoke one user while submissions and dispatch are running.
			wg.Add(1)
			go func() {
				defer wg.Done()
				time.Sleep(5 * time.Millisecond)
				s.Revoke("user3")
			}()
			wg.Wait()

			terminal := map[string]int{}
			total := 0
			for _, id := range batchIDs {
				st := waitBatch(t, s, id)
				for _, j := range st.Jobs {
					terminal[j.State]++
					total++
					switch j.State {
					case "done", "coalesced":
						if j.Result == nil {
							t.Errorf("terminal %s job without result", j.State)
						}
					case "failed", "shed":
						if j.Error == "" {
							t.Errorf("terminal %s job without error", j.State)
						}
					case "queued", "running":
						t.Errorf("Wait returned with non-terminal job state %q", j.State)
					}
				}
			}
			if total != admitted {
				t.Fatalf("job conservation broken: %d admitted, %d accounted", admitted, total)
			}
			if terminal["done"]+terminal["coalesced"]+terminal["failed"]+terminal["shed"] != total {
				t.Fatalf("terminal states don't balance: %v vs total %d", terminal, total)
			}
			// Coalescing must have eliminated most executor work: the dst
			// space is 40 wide, so unique (src,dst) ≤ 40 per cache window.
			// Failures are never cached and can re-run, as can post-revoke
			// promotions, but the executor can never run more than once
			// per non-coalesced terminal job.
			if execCalls.Load() > int64(terminal["done"]+terminal["failed"]) {
				t.Fatalf("executor ran %d times for %d leader-terminal jobs",
					execCalls.Load(), terminal["done"]+terminal["failed"])
			}
			if terminal["coalesced"] == 0 {
				t.Fatal("duplicate-heavy chaos run coalesced nothing")
			}
			// Metrics agree with the per-job ledger.
			if got := o.Counter("sched_shed_total").Value(); got != uint64(terminal["shed"]) {
				t.Fatalf("sched_shed_total = %d, ledger says %d", got, terminal["shed"])
			}
			if got := o.Counter("sched_coalesced_total").Value(); got != uint64(terminal["coalesced"]) {
				t.Fatalf("sched_coalesced_total = %d, ledger says %d", got, terminal["coalesced"])
			}
			if depth := s.QueueDepth(); depth != 0 {
				t.Fatalf("queue depth %d after drain", depth)
			}
		})
	}
}
