// Package sched is the asynchronous batch-measurement scheduler: the
// layer between "one blocking HTTP request" and the offline campaign
// runner that the paper's bulk workload needs (revtr 2.0 sustains
// 11.7M reverse traceroutes per day, §3). It accepts batches of
// (src, dst) jobs, admits them into a bounded queue with explicit
// load-shedding, dispatches onto a bounded worker set with per-user
// fair share (deficit round-robin across users, FIFO within a user),
// and coalesces duplicate (src, dst) work — Doubletree's redundancy
// elimination applied at the request layer: one measurement, N
// subscribers, and neither coalesced jobs nor day-cache hits charge
// any probe budget (Insight 1.4's 24-hour reuse window).
//
// The scheduler is measurement-agnostic: an Exec callback runs one
// job, the service layer supplies one that drives the revtr engine and
// archives the result. Everything else — admission, fairness,
// coalescing, cancellation on key revocation, metrics — lives here.
package sched

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"revtr/internal/netsim/ipv4"
	"revtr/internal/obs"
)

// State is a job's lifecycle state.
type State int

// Job states. Queued and Running are transient; the other four are
// terminal. A queued duplicate waiting on an in-flight leader stays
// Queued until the leader resolves it to Coalesced (or Failed).
const (
	StateQueued State = iota
	StateRunning
	StateCoalesced // resolved by a leader's result or the day cache; zero probes
	StateDone
	StateFailed
	StateShed // rejected at admission: queue full or quota exhausted
)

var stateNames = [...]string{"queued", "running", "coalesced", "done", "failed", "shed"}

func (s State) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// Terminal reports whether a job in this state will never change again.
func (s State) Terminal() bool {
	switch s {
	case StateCoalesced, StateDone, StateFailed, StateShed:
		return true
	}
	return false
}

var (
	// ErrOverloaded is the explicit load-shed error: the queue cap was
	// hit and not a single job of the submission could be admitted.
	ErrOverloaded = errors.New("sched: queue full, batch load-shed")
	// ErrRevoked fails jobs whose user's API key was revoked.
	ErrRevoked = errors.New("sched: user revoked")
	// ErrQuota sheds jobs refused by the Options.TryCharge admission
	// callback (the service's per-user measurements-per-day limit).
	ErrQuota = errors.New("sched: daily quota exhausted")
	// ErrStopped rejects submissions after the scheduler stopped.
	ErrStopped = errors.New("sched: scheduler stopped")
	// ErrUnknownBatch is returned for status queries on unknown IDs.
	ErrUnknownBatch = errors.New("sched: unknown batch")
)

// JobRef identifies one admitted job to the Exec callbacks: its batch,
// index within that batch, owning user key, and measurement endpoints.
// The batch/index pair lets the executor publish per-job progress
// (hop-by-hop streaming) onto the right topic.
type JobRef struct {
	Batch string
	Index int
	User  string
	Src   ipv4.Addr
	Dst   ipv4.Addr
}

// Exec runs one admitted job. It must honor ctx (cancelled jobs should
// return promptly) and may be called from many workers concurrently.
// The result is opaque to the scheduler; the service returns the
// archived *service.Measurement.
type Exec func(ctx context.Context, job JobRef) (any, error)

// ExecAsync starts one admitted job without blocking the dispatcher:
// the callee begins the measurement (e.g. core.Engine.MeasureAsync) and
// calls done exactly once when it finishes. With an ExecAsync callback
// the scheduler runs a single dispatcher instead of a worker pool, and
// concurrency is bounded by Options.MaxInFlight suspended measurements
// rather than Options.Workers parked goroutines — the §5.2.4 shape.
type ExecAsync func(ctx context.Context, job JobRef, done func(res any, err error))

// JobEvent is one job lifecycle transition, delivered to Options.OnJob
// under the scheduler lock — strictly in transition order.
type JobEvent struct {
	Batch     string
	Index     int
	User      string
	Src, Dst  ipv4.Addr
	State     State
	Coalesced bool
	Err       error
	// BatchDone marks the transition that made every job of the batch
	// terminal: the batch's event stream can end after this event.
	BatchDone bool
}

// JobSpec is one (src, dst) pair of a submitted batch.
type JobSpec struct {
	Src ipv4.Addr
	Dst ipv4.Addr
}

// Options tunes the scheduler.
type Options struct {
	// Workers bounds concurrent Exec calls. <= 0 means 4. Ignored when
	// ExecAsync is set (MaxInFlight is the concurrency bound then).
	Workers int
	// ExecAsync, when set, replaces the blocking Exec worker pool with a
	// single non-blocking dispatcher: jobs are started through this
	// callback and complete through its done function, so thousands can
	// be in flight without a goroutine parked per job.
	ExecAsync ExecAsync
	// MaxInFlight bounds concurrently started-but-unfinished ExecAsync
	// jobs. <= 0 means 4096. Unused without ExecAsync.
	MaxInFlight int
	// QueueCap bounds jobs queued for dispatch across all users
	// (coalesced subscribers ride their leader and do not count).
	// Admission past the cap sheds. <= 0 means 1024.
	QueueCap int
	// Quantum is the deficit round-robin quantum: how many jobs one
	// user may dispatch per ring visit before the next user is served.
	// <= 0 means 4.
	Quantum int
	// CacheCap bounds the day cache of completed results. <= 0 means
	// 65536 entries.
	CacheCap int
	// MaxBatches bounds retained batch statuses; the oldest fully
	// terminal batches are forgotten first. <= 0 means 4096.
	MaxBatches int
	// TryCharge, when set, is the admission quota: it is consulted once
	// per job that will drive a measurement of its own — at admission
	// for new flight leaders, and at promotion when a revoked leader's
	// flight is handed to a subscriber — and must atomically charge the
	// user's budget, returning false when it is exhausted (the job is
	// then shed with ErrQuota). Day-cache hits and coalesced
	// subscribers are never charged. The callback runs with the
	// scheduler lock held: it may take its own locks (the service takes
	// its registry lock), which fixes the global lock order at
	// scheduler → callback — nothing may call into the scheduler while
	// holding the callback's locks. nil means unlimited admission.
	TryCharge func(user string) bool
	// OnJob, when set, observes every job state transition (queued,
	// running, coalesced, done, failed, shed — including admission
	// outcomes inside Submit). It is called synchronously with the
	// scheduler lock held, in exact transition order: it must be fast,
	// must never block, and must not call back into the scheduler. The
	// service bridges these events onto per-batch stream topics.
	OnJob func(ev JobEvent)
	// Obs receives scheduler metrics; nil disables them.
	Obs *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = 4
	}
	if o.QueueCap <= 0 {
		o.QueueCap = 1024
	}
	if o.Quantum <= 0 {
		o.Quantum = 4
	}
	if o.CacheCap <= 0 {
		o.CacheCap = 1 << 16
	}
	if o.MaxInFlight <= 0 {
		o.MaxInFlight = 4096
	}
	if o.MaxBatches <= 0 {
		o.MaxBatches = 4096
	}
	return o
}

// Job is one admitted (src, dst) measurement job.
type Job struct {
	batch *Batch
	idx   int
	user  string
	src   ipv4.Addr
	dst   ipv4.Addr

	state     State
	result    any
	err       error
	coalesced bool      // resolved without its own Exec call
	admitted  time.Time // dispatch-latency base //revtr:wallclock observability timestamp, not simulation time
}

// Batch groups the jobs of one submission. open counts its
// non-terminal jobs (maintained by notifyLocked) so the final
// transition can be flagged without rescanning the batch.
type Batch struct {
	id   string
	user string
	jobs []*Job
	open int
}

// ref renders the job's executor-facing identity.
func (j *Job) ref() JobRef {
	return JobRef{Batch: j.batch.id, Index: j.idx, User: j.user, Src: j.src, Dst: j.dst}
}

// JobStatus is the externally visible snapshot of one job.
type JobStatus struct {
	Index int    `json:"index"`
	Src   string `json:"src"`
	Dst   string `json:"dst"`
	State string `json:"state"`
	// Coalesced marks jobs resolved by another job's measurement or
	// the day cache — zero probes charged.
	Coalesced bool `json:"coalesced,omitempty"`
	// Result is the Exec result (the archived measurement, for the
	// service's Exec). Present once the job is terminal and succeeded.
	Result any    `json:"result,omitempty"`
	Error  string `json:"error,omitempty"`
}

// BatchStatus is the externally visible snapshot of one batch.
type BatchStatus struct {
	ID     string         `json:"batchId"`
	User   string         `json:"user"`
	Jobs   []JobStatus    `json:"jobs"`
	Counts map[string]int `json:"counts"`
	Done   bool           `json:"done"`
}

// flight is one in-flight or queued (src, dst) measurement and the
// duplicate jobs riding it (singleflight).
type flight struct {
	leader *Job
	subs   []*Job
}

type key struct{ src, dst ipv4.Addr }

// cacheEntry is one day-cache record: the result and the user whose
// measurement produced it, so revoking that user can purge exactly
// their entries.
type cacheEntry struct {
	res  any
	user string
}

// userQueue is one user's FIFO plus its deficit round-robin state.
type userQueue struct {
	name    string
	jobs    []*Job
	deficit int
	inRing  bool
}

// Scheduler is the batch scheduler. Create with New, start workers with
// Start, submit with Submit. Safe for concurrent use.
type Scheduler struct {
	exec Exec
	opts Options

	mu       sync.Mutex
	dispatch *sync.Cond // queued work available (or stopping)
	progress *sync.Cond // some job reached a terminal state

	users    map[string]*userQueue
	ring     []*userQueue // users with pending jobs, round-robin order
	ringIdx  int
	queued   int
	inflight int // started-but-unfinished ExecAsync jobs
	flights  map[key]*flight
	running  map[*Job]context.CancelFunc
	revoked  map[string]bool
	cache    map[key]cacheEntry // day cache: successful results since last ResetDay
	cacheSeq []key              // insertion order, for cap eviction
	batches  map[string]*Batch
	batchSeq []string // insertion order, for retention
	nextID   int
	stopped  bool
	started  bool
	wg       sync.WaitGroup
	drained  chan struct{} // closed when every worker has exited

	mQueueDepth *obs.Gauge
	mCoalesced  *obs.Counter
	mCacheHits  *obs.Counter
	mShed       *obs.Counter
	mBatches    *obs.Counter
	mDispatch   *obs.Histogram
}

// New builds a scheduler over an Exec callback. Call Start to begin
// dispatching.
func New(exec Exec, opts Options) *Scheduler {
	opts = opts.withDefaults()
	s := &Scheduler{
		exec:        exec,
		opts:        opts,
		users:       make(map[string]*userQueue),
		flights:     make(map[key]*flight),
		running:     make(map[*Job]context.CancelFunc),
		revoked:     make(map[string]bool),
		cache:       make(map[key]cacheEntry),
		batches:     make(map[string]*Batch),
		mQueueDepth: opts.Obs.Gauge("sched_queue_depth"),
		mCoalesced:  opts.Obs.Counter("sched_coalesced_total"),
		mCacheHits:  opts.Obs.Counter("sched_cache_hits_total"),
		mShed:       opts.Obs.Counter("sched_shed_total"),
		mBatches:    opts.Obs.Counter("sched_batches_total"),
		mDispatch:   opts.Obs.Histogram("sched_dispatch_wall_us", nil),
	}
	s.dispatch = sync.NewCond(&s.mu)
	s.progress = sync.NewCond(&s.mu)
	return s
}

// countState tallies a transition into a state on the labelled
// sched_jobs_total counter.
func (s *Scheduler) countState(st State) {
	s.opts.Obs.Counter(obs.Label("sched_jobs_total", "state", st.String())).Inc()
}

// notifyLocked records one job state transition: it maintains the
// batch's open-job count and delivers the transition to Options.OnJob.
// Call exactly once per state assignment (including re-queue on
// promotion, which re-announces "queued"), with s.mu held. The
// transition that empties a batch is flagged BatchDone.
func (s *Scheduler) notifyLocked(j *Job) {
	if j.state.Terminal() {
		j.batch.open--
	}
	if s.opts.OnJob == nil {
		return
	}
	s.opts.OnJob(JobEvent{ //revtr:calls revtr/internal/service.Registry.publishJobEvent
		Batch: j.batch.id, Index: j.idx, User: j.user,
		Src: j.src, Dst: j.dst, State: j.state,
		Coalesced: j.coalesced, Err: j.err,
		BatchDone: j.state.Terminal() && j.batch.open == 0,
	})
}

// countExecPanic tallies one recovered Exec/ExecAsync panic.
func (s *Scheduler) countExecPanic() {
	s.opts.Obs.Counter("sched_exec_panics_total").Inc()
}

// Start launches the worker set. Workers stop when ctx is cancelled
// (or Stop is called); in-flight Exec calls inherit ctx and are
// cancelled with it. Start returns immediately; it is a no-op after
// the first call.
func (s *Scheduler) Start(ctx context.Context) {
	if ctx == nil {
		ctx = context.Background()
	}
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return
	}
	s.started = true
	s.drained = make(chan struct{})
	s.mu.Unlock()
	if s.opts.ExecAsync != nil {
		s.wg.Add(1)
		go s.dispatcher(ctx)
	} else {
		for i := 0; i < s.opts.Workers; i++ {
			s.wg.Add(1)
			go s.worker(ctx)
		}
	}
	go func() {
		s.wg.Wait()
		close(s.drained)
	}()
	go func() {
		<-ctx.Done()
		s.Stop()
	}()
}

// Stop cancels dispatching: workers finish their current job and
// exit, queued jobs stay queued, and Submit starts rejecting. Stop
// does not wait — pair it with Drain for an orderly shutdown.
func (s *Scheduler) Stop() {
	s.mu.Lock()
	s.stopped = true
	s.dispatch.Broadcast()
	s.progress.Broadcast()
	s.mu.Unlock()
}

// Drain blocks until every worker has exited (after Stop or Start-ctx
// cancellation) or ctx ends.
func (s *Scheduler) Drain(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	s.mu.Lock()
	d := s.drained
	s.mu.Unlock()
	if d == nil {
		return nil // never started: nothing to drain
	}
	select {
	case <-d:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Submit admits one batch of jobs for user. Admission is synchronous
// and never blocks: each job is either resolved from the day cache
// (state "coalesced"), attached to an identical in-flight job (stays
// "queued", resolves with the leader), enqueued for dispatch, or shed —
// when the queue cap is hit, or when Options.TryCharge refuses the
// user another measurement. Cache hits and coalesced duplicates are
// free: TryCharge is consulted only for jobs that will drive a
// measurement of their own, each charged at the moment it is admitted.
// The snapshot reflects admission; poll Status (or Wait) for
// completion. The error is ErrOverloaded only when every job that
// needed queue space was shed by the cap.
func (s *Scheduler) Submit(ctx context.Context, user string, specs []JobSpec) (BatchStatus, error) {
	if err := ctx.Err(); err != nil {
		return BatchStatus{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stopped {
		return BatchStatus{}, ErrStopped
	}
	if s.revoked[user] {
		return BatchStatus{}, ErrRevoked
	}

	b := &Batch{id: fmt.Sprintf("b%d", s.nextID), user: user}
	s.nextID++
	now := time.Now() //revtr:wallclock dispatch-latency observability base, not simulation time
	needed, capShed := 0, 0
	for i, spec := range specs {
		j := &Job{batch: b, idx: i, user: user, src: spec.Src, dst: spec.Dst, admitted: now}
		b.jobs = append(b.jobs, j)
		b.open++
		k := key{spec.Src, spec.Dst}
		if e, ok := s.cache[k]; ok {
			// Day-cache hit: resolved immediately, zero probes.
			j.state = StateCoalesced
			j.coalesced = true
			j.result = e.res
			s.mCacheHits.Inc()
			s.mCoalesced.Inc()
			s.countState(StateCoalesced)
			s.notifyLocked(j)
			continue
		}
		if f, ok := s.flights[k]; ok {
			// Identical job queued or in flight: subscribe to its result.
			f.subs = append(f.subs, j)
			j.coalesced = true
			s.countState(StateQueued)
			s.notifyLocked(j)
			continue
		}
		needed++
		// Queue space before quota: a cap-shed job never charges, so no
		// refund path is needed.
		if s.queued >= s.opts.QueueCap {
			j.state = StateShed
			j.err = ErrOverloaded
			capShed++
			s.mShed.Inc()
			s.countState(StateShed)
			s.notifyLocked(j)
			continue
		}
		if !s.tryChargeLocked(user) {
			j.state = StateShed
			j.err = ErrQuota
			s.mShed.Inc()
			s.countState(StateShed)
			s.notifyLocked(j)
			continue
		}
		s.flights[k] = &flight{leader: j}
		s.enqueueLocked(j)
		s.countState(StateQueued)
		s.notifyLocked(j)
	}
	s.rememberBatchLocked(b)
	s.mBatches.Inc()
	st := s.statusLocked(b)
	if needed > 0 && capShed == needed {
		return st, ErrOverloaded
	}
	return st, nil
}

// tryChargeLocked consults the admission quota callback for one
// measurement-driving job. Callers hold s.mu.
func (s *Scheduler) tryChargeLocked(user string) bool {
	return s.opts.TryCharge == nil || s.opts.TryCharge(user) //revtr:calls revtr/internal/service.Registry.tryCharge
}

// enqueueLocked appends a job to its user's FIFO and makes sure the
// user is on the dispatch ring. Callers hold s.mu.
func (s *Scheduler) enqueueLocked(j *Job) {
	u := s.users[j.user]
	if u == nil {
		u = &userQueue{name: j.user}
		s.users[j.user] = u
	}
	u.jobs = append(u.jobs, j)
	if !u.inRing {
		u.inRing = true
		u.deficit = 0
		s.ring = append(s.ring, u)
	}
	s.queued++
	s.mQueueDepth.Set(int64(s.queued))
	s.dispatch.Signal()
}

// requeueFrontLocked puts a promoted job back at the head of its
// user's FIFO (it was admitted earlier than anything queued behind it).
// Callers hold s.mu.
func (s *Scheduler) requeueFrontLocked(j *Job) {
	u := s.users[j.user]
	if u == nil {
		u = &userQueue{name: j.user}
		s.users[j.user] = u
	}
	u.jobs = append([]*Job{j}, u.jobs...)
	if !u.inRing {
		u.inRing = true
		u.deficit = 0
		s.ring = append(s.ring, u)
	}
	s.queued++
	s.mQueueDepth.Set(int64(s.queued))
	s.dispatch.Signal()
}

// rememberBatchLocked indexes a batch and evicts the oldest fully
// terminal batches past the retention cap. Callers hold s.mu.
func (s *Scheduler) rememberBatchLocked(b *Batch) {
	s.batches[b.id] = b
	s.batchSeq = append(s.batchSeq, b.id)
	for len(s.batchSeq) > s.opts.MaxBatches {
		evicted := false
		for i, id := range s.batchSeq {
			old := s.batches[id]
			if old != nil && !s.terminalLocked(old) {
				continue
			}
			delete(s.batches, id)
			s.batchSeq = append(s.batchSeq[:i], s.batchSeq[i+1:]...)
			evicted = true
			break
		}
		if !evicted {
			break // everything retained is still live; let it ride
		}
	}
}

// worker dispatches jobs until the scheduler stops.
func (s *Scheduler) worker(ctx context.Context) {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		j := s.nextLocked()
		if j == nil {
			s.mu.Unlock()
			return
		}
		j.state = StateRunning
		s.countState(StateRunning)
		s.notifyLocked(j)
		s.mDispatch.Observe(time.Since(j.admitted).Microseconds()) //revtr:wallclock dispatch-latency histogram measures real queueing delay
		jctx, cancel := context.WithCancel(ctx)
		s.running[j] = cancel
		s.mu.Unlock()

		res, err := s.safeExec(jctx, j)
		cancel()
		s.complete(j, res, err)
	}
}

// safeExec runs the Exec callback, converting a panic into a failed
// job instead of killing the worker.
func (s *Scheduler) safeExec(ctx context.Context, j *Job) (res any, err error) {
	defer func() {
		if v := recover(); v != nil {
			s.countExecPanic()
			res, err = nil, fmt.Errorf("sched: exec panic: %v", v)
		}
	}()
	return s.exec(ctx, j.ref())
}

// dispatcher is the ExecAsync dispatch loop: one goroutine starts
// every job, bounded by MaxInFlight unfinished starts, and each job's
// completion callback signals it to start the next. On stop it waits
// for in-flight jobs to complete before exiting (mirroring the worker
// pool's "finish your current job" semantics), so Drain still means
// "no job is running".
func (s *Scheduler) dispatcher(ctx context.Context) {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for !s.stopped && s.inflight >= s.opts.MaxInFlight {
			s.dispatch.Wait()
		}
		var j *Job
		if !s.stopped {
			j = s.nextLocked()
		}
		if j == nil { // stopped
			for s.inflight > 0 {
				s.dispatch.Wait()
			}
			s.mu.Unlock()
			return
		}
		j.state = StateRunning
		s.countState(StateRunning)
		s.notifyLocked(j)
		s.mDispatch.Observe(time.Since(j.admitted).Microseconds()) //revtr:wallclock dispatch-latency histogram measures real queueing delay
		jctx, cancel := context.WithCancel(ctx)
		s.running[j] = cancel
		s.inflight++
		s.mu.Unlock()

		s.execAsyncSafe(jctx, cancel, j)
	}
}

// execAsyncSafe starts one job through the ExecAsync callback with a
// single-shot completion function, converting a synchronous panic into
// a failed job instead of killing the dispatcher.
func (s *Scheduler) execAsyncSafe(ctx context.Context, cancel context.CancelFunc, j *Job) {
	var once sync.Once
	done := func(res any, err error) {
		once.Do(func() {
			cancel()
			s.complete(j, res, err)
			s.mu.Lock()
			s.inflight--
			s.dispatch.Signal()
			s.mu.Unlock()
		})
	}
	defer func() {
		if v := recover(); v != nil {
			s.countExecPanic()
			done(nil, fmt.Errorf("sched: exec panic: %v", v))
		}
	}()
	s.opts.ExecAsync(ctx, j.ref(), done) //revtr:calls revtr/internal/service.Registry.batchExecAsync
}

// nextLocked blocks until a job is dispatchable and picks it by
// deficit round-robin: visit the ring user, serve up to Quantum of its
// FIFO, rotate. Returns nil when the scheduler stops. Callers hold
// s.mu; it may be released while waiting.
func (s *Scheduler) nextLocked() *Job {
	for {
		if s.stopped {
			return nil
		}
		if len(s.ring) == 0 {
			s.dispatch.Wait()
			continue
		}
		if s.ringIdx >= len(s.ring) {
			s.ringIdx = 0
		}
		u := s.ring[s.ringIdx]
		if u.deficit <= 0 {
			u.deficit = s.opts.Quantum
		}
		j := u.jobs[0]
		u.jobs = u.jobs[1:]
		u.deficit--
		if len(u.jobs) == 0 {
			// User drained: leave the ring; the next user slides into
			// this index, so don't advance.
			u.inRing = false
			u.deficit = 0
			s.ring = append(s.ring[:s.ringIdx], s.ring[s.ringIdx+1:]...)
		} else if u.deficit == 0 {
			s.ringIdx++
		}
		s.queued--
		s.mQueueDepth.Set(int64(s.queued))
		return j
	}
}

// complete resolves a finished leader and everyone coalesced onto it.
func (s *Scheduler) complete(j *Job, res any, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.running, j)
	k := key{j.src, j.dst}
	f := s.flights[k]
	delete(s.flights, k)

	if err == nil {
		j.state = StateDone
		j.result = res
		s.countState(StateDone)
		s.cachePutLocked(k, res, j.user)
	} else {
		j.state = StateFailed
		j.err = err
		s.countState(StateFailed)
	}
	s.notifyLocked(j)

	if f != nil {
		subs := f.subs
		if err != nil && errors.Is(err, ErrRevoked) {
			// The leader was cancelled by key revocation, not by the
			// measurement failing: promote the first surviving
			// subscriber to leader so other users' jobs still run.
			subs = s.promoteLocked(k, subs)
		}
		for _, sub := range subs {
			if err == nil {
				sub.state = StateCoalesced
				sub.result = res
				s.mCoalesced.Inc()
				s.countState(StateCoalesced)
			} else {
				sub.state = StateFailed
				sub.err = err
				s.countState(StateFailed)
			}
			s.notifyLocked(sub)
		}
	}
	s.progress.Broadcast()
}

// promoteLocked hands a revoked leader's flight to its first surviving
// subscriber and returns the subscribers that must fail with the
// original error (revoked users' own jobs). The promoted job will run
// a real measurement it was never charged for — it was admitted as a
// free coalesced duplicate — so promotion charges its user via
// TryCharge; subscribers whose budget is exhausted are shed in place
// (ErrQuota) and the next one is tried. Callers hold s.mu.
func (s *Scheduler) promoteLocked(k key, subs []*Job) (failNow []*Job) {
	var newLeader *Job
	var carried []*Job
	for _, sub := range subs {
		switch {
		case s.revoked[sub.user]:
			failNow = append(failNow, sub)
		case newLeader == nil:
			if !s.tryChargeLocked(sub.user) {
				sub.state = StateShed
				sub.err = ErrQuota
				s.mShed.Inc()
				s.countState(StateShed)
				s.notifyLocked(sub)
				continue
			}
			newLeader = sub
		default:
			carried = append(carried, sub)
		}
	}
	if newLeader == nil {
		return failNow
	}
	newLeader.coalesced = false
	s.flights[k] = &flight{leader: newLeader, subs: carried}
	s.requeueFrontLocked(newLeader)
	s.notifyLocked(newLeader) // re-announces "queued": leadership handoff
	return failNow
}

// cachePutLocked records a successful result in the day cache under
// the user that measured it, evicting oldest-first past the cap.
// Callers hold s.mu.
func (s *Scheduler) cachePutLocked(k key, res any, user string) {
	if _, ok := s.cache[k]; !ok {
		s.cacheSeq = append(s.cacheSeq, k)
	}
	s.cache[k] = cacheEntry{res: res, user: user}
	for len(s.cache) > s.opts.CacheCap && len(s.cacheSeq) > 0 {
		old := s.cacheSeq[0]
		s.cacheSeq = s.cacheSeq[1:]
		delete(s.cache, old)
	}
}

// ResetDay drops the day cache: the service's midnight maintenance
// calls this next to its quota roll, ending Insight 1.4's reuse window.
func (s *Scheduler) ResetDay() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cache = make(map[key]cacheEntry)
	s.cacheSeq = nil
}

// CacheLen reports the day cache's current entry count.
func (s *Scheduler) CacheLen() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.cache)
}

// Revoke cancels a user: queued jobs fail with ErrRevoked (leaders
// with foreign subscribers hand leadership over instead of killing
// them), running jobs are cancelled, the user's day-cache entries are
// purged, and future submissions are rejected. Without the purge a
// revoked user's results would keep resolving new submissions — their
// own and coalescing strangers' — for free until ResetDay. Idempotent.
func (s *Scheduler) Revoke(user string) {
	s.mu.Lock()
	s.revoked[user] = true
	// Day cache: drop every entry this user's measurements produced and
	// rebuild the eviction order over the survivors.
	purged := 0
	for k, e := range s.cache {
		if e.user == user {
			delete(s.cache, k)
			purged++
		}
	}
	if purged > 0 {
		kept := s.cacheSeq[:0]
		for _, k := range s.cacheSeq {
			if _, ok := s.cache[k]; ok {
				kept = append(kept, k)
			}
		}
		s.cacheSeq = kept
		s.opts.Obs.Counter("sched_cache_purged_total").Add(uint64(purged))
	}
	// Queued jobs: fail them and drop them from their FIFO.
	if u := s.users[user]; u != nil && len(u.jobs) > 0 {
		jobs := u.jobs
		u.jobs = nil
		s.queued -= len(jobs)
		s.mQueueDepth.Set(int64(s.queued))
		if u.inRing {
			u.inRing = false
			u.deficit = 0
			for i, ru := range s.ring {
				if ru == u {
					if i < s.ringIdx {
						s.ringIdx--
					}
					s.ring = append(s.ring[:i], s.ring[i+1:]...)
					break
				}
			}
		}
		for _, j := range jobs {
			k := key{j.src, j.dst}
			var failNow []*Job
			if f := s.flights[k]; f != nil && f.leader == j {
				delete(s.flights, k)
				failNow = s.promoteLocked(k, f.subs)
			}
			j.state = StateFailed
			j.err = ErrRevoked
			s.countState(StateFailed)
			s.notifyLocked(j)
			for _, sub := range failNow {
				sub.state = StateFailed
				sub.err = ErrRevoked
				s.countState(StateFailed)
				s.notifyLocked(sub)
			}
		}
	}
	// Subscribers of other users' flights: detach and fail.
	for _, f := range s.flights {
		kept := f.subs[:0]
		for _, sub := range f.subs {
			if sub.user == user {
				sub.state = StateFailed
				sub.err = ErrRevoked
				s.countState(StateFailed)
				s.notifyLocked(sub)
				continue
			}
			kept = append(kept, sub)
		}
		f.subs = kept
	}
	// Running jobs: cancel their contexts; completion wraps the error
	// as ErrRevoked so flight promotion kicks in.
	var cancels []context.CancelFunc
	for j, cancel := range s.running {
		if j.user == user {
			cancels = append(cancels, cancel)
		}
	}
	s.progress.Broadcast()
	s.mu.Unlock()
	for _, cancel := range cancels {
		cancel()
	}
}

// Revoked reports whether a user has been revoked.
func (s *Scheduler) Revoked(user string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.revoked[user]
}

// WrapRevoked converts an Exec error of a revoked user's job into
// ErrRevoked so the scheduler's promotion logic applies. The service's
// Exec calls this on its error return.
func (s *Scheduler) WrapRevoked(user string, err error) error {
	if err == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.revoked[user] {
		return fmt.Errorf("%w: %v", ErrRevoked, err)
	}
	return err
}

// Status snapshots a batch.
func (s *Scheduler) Status(batchID string) (BatchStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.batches[batchID]
	if !ok {
		return BatchStatus{}, ErrUnknownBatch
	}
	return s.statusLocked(b), nil
}

// terminalLocked reports whether every job of b is terminal. Callers
// hold s.mu.
func (s *Scheduler) terminalLocked(b *Batch) bool {
	for _, j := range b.jobs {
		if !j.state.Terminal() {
			return false
		}
	}
	return true
}

// statusLocked renders a batch snapshot. Callers hold s.mu.
func (s *Scheduler) statusLocked(b *Batch) BatchStatus {
	st := BatchStatus{
		ID:     b.id,
		User:   b.user,
		Counts: make(map[string]int),
		Done:   true,
	}
	for _, j := range b.jobs {
		js := JobStatus{
			Index:     j.idx,
			Src:       j.src.String(),
			Dst:       j.dst.String(),
			State:     j.state.String(),
			Coalesced: j.coalesced,
			Result:    j.result,
		}
		if j.err != nil {
			js.Error = j.err.Error()
		}
		st.Jobs = append(st.Jobs, js)
		st.Counts[j.state.String()]++
		if !j.state.Terminal() {
			st.Done = false
		}
	}
	return st
}

// Wait blocks until every job of the batch is terminal, the context is
// cancelled, or the scheduler stops, and returns the final snapshot.
func (s *Scheduler) Wait(ctx context.Context, batchID string) (BatchStatus, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	// Wake the cond loop when the caller's context ends.
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-ctx.Done():
			s.mu.Lock()
			s.progress.Broadcast()
			s.mu.Unlock()
		case <-done:
		}
	}()

	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		b, ok := s.batches[batchID]
		if !ok {
			return BatchStatus{}, ErrUnknownBatch
		}
		if s.terminalLocked(b) {
			return s.statusLocked(b), nil
		}
		if err := ctx.Err(); err != nil {
			return s.statusLocked(b), err
		}
		if s.stopped {
			return s.statusLocked(b), ErrStopped
		}
		s.progress.Wait()
	}
}

// QueueDepth reports the number of jobs queued for dispatch.
func (s *Scheduler) QueueDepth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queued
}
