package sched_test

import (
	"context"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"revtr/internal/netsim/ipv4"
	"revtr/internal/obs"
	"revtr/internal/sched"
)

// TestRevokePurgesDayCache: revoking a user must also purge their
// entries from the day cache. Before the fix, a revoked user's results
// kept resolving new submissions — their own and coalescing
// strangers' — until ResetDay: the executor here would run only once
// and bob's job would report coalesced instead of done.
func TestRevokePurgesDayCache(t *testing.T) {
	ex := newPureExec()
	o := obs.New()
	s := sched.New(ex.exec, sched.Options{Workers: 2, Obs: o})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.Start(ctx)

	src, dst := addr(1), addr(100)
	st := mustSubmit(t, s, "alice", specs(src, dst))
	waitBatch(t, s, st.ID)
	if n := ex.callsFor(src, dst); n != 1 {
		t.Fatalf("executor calls = %d, want 1", n)
	}
	if s.CacheLen() != 1 {
		t.Fatalf("cache len = %d after first measurement, want 1", s.CacheLen())
	}

	s.Revoke("alice")
	if s.CacheLen() != 0 {
		t.Fatalf("revoke left %d day-cache entries serving the revoked user's results", s.CacheLen())
	}
	if got := o.Counter("sched_cache_purged_total").Value(); got != 1 {
		t.Fatalf("sched_cache_purged_total = %d, want 1", got)
	}

	// A new submission of the same pair must drive its own measurement.
	st2 := mustSubmit(t, s, "bob", specs(src, dst))
	st2 = waitBatch(t, s, st2.ID)
	if st2.Counts["done"] != 1 {
		t.Fatalf("post-revoke resubmission counts = %v, want 1 done", st2.Counts)
	}
	if n := ex.callsFor(src, dst); n != 2 {
		t.Fatalf("revoked user's cached result resolved a new submission (executor calls = %d, want 2)", n)
	}

	// Other users' cache entries survive a revocation.
	s.Revoke("alice")
	if s.CacheLen() != 1 {
		t.Fatalf("revoking alice purged bob's entry (cache len = %d, want 1)", s.CacheLen())
	}
}

// TestAsyncDispatchBoundsInFlight: with an ExecAsync callback the
// scheduler runs jobs through one dispatcher bounded by MaxInFlight
// started-but-unfinished jobs; completions arriving from a foreign
// goroutine resolve jobs and open dispatch slots.
func TestAsyncDispatchBoundsInFlight(t *testing.T) {
	const maxInFlight = 4
	const jobs = 32

	type pendingJob struct {
		src, dst ipv4.Addr
		done     func(res any, err error)
	}
	completions := make(chan pendingJob, jobs)
	var inflight, peak atomic.Int64
	execAsync := func(ctx context.Context, job sched.JobRef, done func(res any, err error)) {
		n := inflight.Add(1)
		for {
			m := peak.Load()
			if n <= m || peak.CompareAndSwap(m, n) {
				break
			}
		}
		completions <- pendingJob{src: job.Src, dst: job.Dst, done: done}
	}
	o := obs.New()
	s := sched.New(nil, sched.Options{ExecAsync: execAsync, MaxInFlight: maxInFlight, Obs: o})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.Start(ctx)

	// The completer stands in for the probe pool's executor goroutines:
	// it finishes jobs out-of-band with a result derived from the pair.
	go func() {
		for p := range completions {
			inflight.Add(-1)
			p.done(fmt.Sprintf("r:%s>%s", p.src, p.dst), nil)
		}
	}()

	var sp []sched.JobSpec
	for i := uint32(0); i < jobs; i++ {
		sp = append(sp, sched.JobSpec{Src: addr(1), Dst: addr(200 + i)})
	}
	st := mustSubmit(t, s, "alice", sp)
	st = waitBatch(t, s, st.ID)

	if st.Counts["done"] != jobs {
		t.Fatalf("counts = %v, want %d done", st.Counts, jobs)
	}
	for _, j := range st.Jobs {
		want := "r:" + j.Src + ">" + j.Dst
		if j.Result != want {
			t.Fatalf("job %d result = %v, want %q", j.Index, j.Result, want)
		}
	}
	if p := peak.Load(); p > maxInFlight {
		t.Fatalf("observed %d concurrent in-flight jobs, cap is %d", p, maxInFlight)
	}
	cancel()
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	close(completions)
}

// TestAsyncExecPanicFailsJob: a synchronous panic inside the ExecAsync
// callback fails that job without killing the dispatcher.
func TestAsyncExecPanicFailsJob(t *testing.T) {
	execAsync := func(ctx context.Context, job sched.JobRef, done func(res any, err error)) {
		if job.Dst == addr(300) {
			panic("boom")
		}
		done("ok", nil)
	}
	s := sched.New(nil, sched.Options{ExecAsync: execAsync, Obs: obs.New()})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.Start(ctx)

	st := mustSubmit(t, s, "alice", specs(addr(1), addr(300), addr(301)))
	st = waitBatch(t, s, st.ID)
	if st.Counts["failed"] != 1 || st.Counts["done"] != 1 {
		t.Fatalf("counts = %v, want 1 failed + 1 done", st.Counts)
	}
	for _, j := range st.Jobs {
		if j.Dst == addr(300).String() && !strings.Contains(j.Error, "exec panic") {
			t.Fatalf("panicked job error = %q, want exec panic", j.Error)
		}
	}
}
