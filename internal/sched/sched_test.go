package sched_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"revtr/internal/netsim/ipv4"
	"revtr/internal/obs"
	"revtr/internal/sched"
)

func addr(n uint32) ipv4.Addr { return ipv4.Addr(0x0a000000 + n) }

// pureExec returns a deterministic result computed only from (src, dst)
// and counts invocations per key — the reference executor for
// coalescing and bit-identity assertions.
type pureExec struct {
	mu    sync.Mutex
	calls map[string]int
	total atomic.Int64
}

func newPureExec() *pureExec { return &pureExec{calls: map[string]int{}} }

func (e *pureExec) exec(ctx context.Context, job sched.JobRef) (any, error) {
	src, dst := job.Src, job.Dst
	k := src.String() + ">" + dst.String()
	e.mu.Lock()
	e.calls[k]++
	e.mu.Unlock()
	e.total.Add(1)
	return fmt.Sprintf("path:%s>%s:hops=%d", src, dst, (uint32(src)^uint32(dst))%16), nil
}

func (e *pureExec) callsFor(src, dst ipv4.Addr) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.calls[src.String()+">"+dst.String()]
}

func specs(src ipv4.Addr, dsts ...ipv4.Addr) []sched.JobSpec {
	out := make([]sched.JobSpec, len(dsts))
	for i, d := range dsts {
		out[i] = sched.JobSpec{Src: src, Dst: d}
	}
	return out
}

func mustSubmit(t *testing.T, s *sched.Scheduler, user string, sp []sched.JobSpec) sched.BatchStatus {
	t.Helper()
	st, err := s.Submit(context.Background(), user, sp)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	return st
}

func waitBatch(t *testing.T, s *sched.Scheduler, id string) sched.BatchStatus {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	st, err := s.Wait(ctx, id)
	if err != nil {
		t.Fatalf("wait %s: %v", id, err)
	}
	return st
}

// TestCoalescingDuplicateHeavyBatch: duplicates coalesce onto one
// measurement each — the executor runs once per unique pair no matter
// how many jobs name it, and coalesced + cache-hit jobs carry the
// leader's result.
func TestCoalescingDuplicateHeavyBatch(t *testing.T) {
	ex := newPureExec()
	o := obs.New()
	s := sched.New(ex.exec, sched.Options{Workers: 4, Obs: o})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.Start(ctx)

	src := addr(1)
	const uniq, dup = 10, 5
	var sp []sched.JobSpec
	for rep := 0; rep < dup; rep++ {
		for i := uint32(0); i < uniq; i++ {
			sp = append(sp, sched.JobSpec{Src: src, Dst: addr(100 + i)})
		}
	}
	st := mustSubmit(t, s, "alice", sp)
	st = waitBatch(t, s, st.ID)

	if n := ex.total.Load(); n != uniq {
		t.Fatalf("executor ran %d times, want %d (duplicates must coalesce)", n, uniq)
	}
	if st.Counts["done"] != uniq || st.Counts["coalesced"] != uniq*(dup-1) {
		t.Fatalf("counts = %v", st.Counts)
	}
	for _, j := range st.Jobs {
		if j.Result == nil {
			t.Fatalf("job %d (%s) has no result", j.Index, j.State)
		}
	}
	if got := o.Counter("sched_coalesced_total").Value(); got != uniq*(dup-1) {
		t.Fatalf("sched_coalesced_total = %d, want %d", got, uniq*(dup-1))
	}

	// A second identical batch resolves entirely from the day cache.
	st2 := mustSubmit(t, s, "bob", sp[:uniq])
	if st2.Counts["coalesced"] != uniq || !st2.Done {
		t.Fatalf("cache-backed batch: %v done=%v", st2.Counts, st2.Done)
	}
	if ex.total.Load() != uniq {
		t.Fatal("cache hit re-ran the executor")
	}
	if o.Counter("sched_cache_hits_total").Value() != uniq {
		t.Fatalf("cache hits = %d", o.Counter("sched_cache_hits_total").Value())
	}

	// ResetDay ends the reuse window: the same pairs measure again.
	s.ResetDay()
	if s.CacheLen() != 0 {
		t.Fatal("ResetDay left cache entries")
	}
	st3 := mustSubmit(t, s, "bob", sp[:uniq])
	st3 = waitBatch(t, s, st3.ID)
	if st3.Counts["done"] != uniq {
		t.Fatalf("post-reset counts = %v", st3.Counts)
	}
	if ex.total.Load() != 2*uniq {
		t.Fatalf("post-reset executor total = %d, want %d", ex.total.Load(), 2*uniq)
	}
}

// TestFairShareDeficitRoundRobin: with one worker and everything
// queued up front, dispatch follows the DRR pattern — quantum jobs per
// user per ring visit — so no user waits more than
// (users-1)*quantum dispatches between two of its own.
func TestFairShareDeficitRoundRobin(t *testing.T) {
	var mu sync.Mutex
	var order []string
	exec := func(ctx context.Context, job sched.JobRef) (any, error) {
		mu.Lock()
		order = append(order, job.User)
		mu.Unlock()
		return "ok", nil
	}
	const quantum = 2
	s := sched.New(exec, sched.Options{Workers: 1, Quantum: quantum, QueueCap: 10_000})

	// alice floods; bob and carol submit small batches. Unique dsts per
	// user so nothing coalesces across users.
	ids := []string{}
	for ui, u := range []string{"alice", "bob", "carol"} {
		n := 8
		if u == "alice" {
			n = 40
		}
		var sp []sched.JobSpec
		for i := 0; i < n; i++ {
			sp = append(sp, sched.JobSpec{Src: addr(uint32(ui + 1)), Dst: addr(uint32(1000*ui + i))})
		}
		ids = append(ids, mustSubmit(t, s, u, sp).ID)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.Start(ctx)
	for _, id := range ids {
		waitBatch(t, s, id)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(order) != 40+8+8 {
		t.Fatalf("dispatched %d jobs", len(order))
	}
	// Starvation bound: while a user has pending jobs, the gap between
	// its consecutive dispatches is at most (users-1)*quantum.
	last := map[string]int{}
	pendingUntil := map[string]int{} // index of each user's final dispatch
	for i, u := range order {
		pendingUntil[u] = i
	}
	for i, u := range order {
		if prev, ok := last[u]; ok && i-prev > 2*quantum+quantum {
			t.Fatalf("user %s starved: gap %d at dispatch %d", u, i-prev, i)
		}
		last[u] = i
	}
	// While all three users are pending, each window of 3*quantum
	// dispatches serves all three users.
	allPending := min(pendingUntil["bob"], pendingUntil["carol"])
	for start := 0; start+3*quantum <= allPending; start++ {
		seen := map[string]bool{}
		for _, u := range order[start : start+3*quantum] {
			seen[u] = true
		}
		if len(seen) < 3 {
			t.Fatalf("window at %d served only %v", start, order[start:start+3*quantum])
		}
	}
}

// TestShedOnQueueCap: admission past the cap sheds explicitly — no
// blocking, no panic — and a submission that cannot place a single job
// returns ErrOverloaded.
func TestShedOnQueueCap(t *testing.T) {
	o := obs.New()
	s := sched.New(newPureExec().exec, sched.Options{Workers: 1, QueueCap: 10, Obs: o})
	// Workers not started: everything stays queued.
	st := mustSubmit(t, s, "alice", specs(addr(1), seqAddrs(100, 25)...))
	if st.Counts["queued"] != 10 || st.Counts["shed"] != 15 {
		t.Fatalf("counts = %v", st.Counts)
	}
	if o.Counter("sched_shed_total").Value() != 15 {
		t.Fatalf("sched_shed_total = %d", o.Counter("sched_shed_total").Value())
	}
	if o.Gauge("sched_queue_depth").Value() != 10 {
		t.Fatalf("queue depth gauge = %d", o.Gauge("sched_queue_depth").Value())
	}
	for _, j := range st.Jobs {
		if j.State == "shed" && j.Error == "" {
			t.Fatal("shed job carries no error")
		}
	}

	// Full queue: entirely shed submission errors explicitly.
	_, err := s.Submit(context.Background(), "bob", specs(addr(2), seqAddrs(500, 3)...))
	if !errors.Is(err, sched.ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}

	// But duplicates of queued work still coalesce even at cap: they
	// need no queue slot.
	st2 := mustSubmit(t, s, "bob", specs(addr(1), seqAddrs(100, 5)...))
	if st2.Counts["queued"] != 5 {
		t.Fatalf("coalesced-at-cap counts = %v", st2.Counts)
	}
	for _, j := range st2.Jobs {
		if !j.Coalesced {
			t.Fatal("duplicate at cap did not coalesce")
		}
	}
}

func seqAddrs(base uint32, n int) []ipv4.Addr {
	out := make([]ipv4.Addr, n)
	for i := range out {
		out[i] = addr(base + uint32(i))
	}
	return out
}

// TestWorkerCountBitIdentity: per-job results are bit-identical
// between workers=1 and workers=8 — scheduling order may differ, the
// result attached to each job may not.
func TestWorkerCountBitIdentity(t *testing.T) {
	run := func(workers int) []byte {
		ex := newPureExec()
		s := sched.New(ex.exec, sched.Options{Workers: workers, QueueCap: 10_000})
		var ids []string
		for ui, u := range []string{"alice", "bob", "carol"} {
			var sp []sched.JobSpec
			for i := 0; i < 60; i++ {
				// Overlapping dst ranges across users force cross-user
				// coalescing too.
				sp = append(sp, sched.JobSpec{Src: addr(7), Dst: addr(uint32(200 + (ui*20+i)%50))})
			}
			ids = append(ids, mustSubmit(t, s, u, sp).ID)
		}
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		s.Start(ctx)
		type jobRes struct {
			Batch string
			Index int
			Res   any
		}
		var all []jobRes
		for _, id := range ids {
			st := waitBatch(t, s, id)
			for _, j := range st.Jobs {
				all = append(all, jobRes{id, j.Index, j.Result})
			}
		}
		b, err := json.Marshal(all)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	one := run(1)
	many := run(8)
	if string(one) != string(many) {
		t.Fatalf("results differ between workers=1 and workers=8:\n%s\nvs\n%s", one, many)
	}
}

// TestRevokeCancelsQueuedAndRunning: revocation fails the user's
// queued jobs, cancels its running job, rejects future submissions —
// and hands flight leadership to another user's coalesced job instead
// of killing it.
func TestRevokeCancelsQueuedAndRunning(t *testing.T) {
	started := make(chan struct{}, 16)
	release := make(chan struct{})
	var schedRef *sched.Scheduler
	exec := func(ctx context.Context, job sched.JobRef) (any, error) {
		started <- struct{}{}
		select {
		case <-ctx.Done():
			return nil, schedRef.WrapRevoked(job.User, ctx.Err())
		case <-release:
			return "ok", nil
		}
	}
	s := sched.New(exec, sched.Options{Workers: 1, QueueCap: 100})
	schedRef = s

	// alice: one job that will run (and block), plus queued jobs.
	stA := mustSubmit(t, s, "alice", specs(addr(1), seqAddrs(100, 4)...))
	// bob coalesces onto alice's first (soon running) job and her
	// second (still queued) job.
	stB := mustSubmit(t, s, "bob", specs(addr(1), addr(100), addr(101)))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.Start(ctx)
	<-started // alice's first job is running

	s.Revoke("alice")

	if _, err := s.Submit(context.Background(), "alice", specs(addr(1), addr(500))); !errors.Is(err, sched.ErrRevoked) {
		t.Fatalf("revoked submit err = %v", err)
	}

	// bob's jobs must complete: the running leader's cancellation
	// promotes bob's subscriber, the queued leader hands over too.
	close(release)
	final := waitBatch(t, s, stB.ID)
	for _, j := range final.Jobs {
		if j.State != "done" && j.State != "coalesced" {
			t.Fatalf("bob job %d ended %q (%s)", j.Index, j.State, j.Error)
		}
	}
	// alice's jobs all failed with the revocation error.
	stAFinal := waitBatch(t, s, stA.ID)
	for _, j := range stAFinal.Jobs {
		if j.State != "failed" {
			t.Fatalf("alice job %d ended %q, want failed", j.Index, j.State)
		}
	}
}

// TestFailedLeaderFailsSubscribers: a measurement failure propagates
// to everything coalesced onto it, and failures are not cached.
func TestFailedLeaderFailsSubscribers(t *testing.T) {
	var calls atomic.Int64
	exec := func(ctx context.Context, job sched.JobRef) (any, error) {
		calls.Add(1)
		return nil, errors.New("measurement failed")
	}
	s := sched.New(exec, sched.Options{Workers: 2})
	st := mustSubmit(t, s, "alice", specs(addr(1), addr(9), addr(9), addr(9)))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.Start(ctx)
	final := waitBatch(t, s, st.ID)
	if final.Counts["failed"] != 3 {
		t.Fatalf("counts = %v", final.Counts)
	}
	if calls.Load() != 1 {
		t.Fatalf("executor ran %d times for one key", calls.Load())
	}
	// The failure must not poison the day cache.
	if s.CacheLen() != 0 {
		t.Fatal("failed result cached")
	}
}

// TestWaitHonorsContext: Wait returns when its context ends even if
// the batch never completes.
func TestWaitHonorsContext(t *testing.T) {
	s := sched.New(newPureExec().exec, sched.Options{Workers: 1})
	st := mustSubmit(t, s, "alice", specs(addr(1), addr(2))) // never started
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := s.Wait(ctx, st.ID); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v", err)
	}
	if _, err := s.Status("nope"); !errors.Is(err, sched.ErrUnknownBatch) {
		t.Fatalf("unknown batch err = %v", err)
	}
}

// TestExecPanicFailsJob: a panicking executor fails the job instead of
// killing the worker, and the worker keeps serving.
func TestExecPanicFailsJob(t *testing.T) {
	var n atomic.Int64
	exec := func(ctx context.Context, job sched.JobRef) (any, error) {
		if n.Add(1) == 1 {
			panic("backend exploded")
		}
		return "ok", nil
	}
	s := sched.New(exec, sched.Options{Workers: 1})
	st := mustSubmit(t, s, "alice", specs(addr(1), addr(2), addr(3)))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.Start(ctx)
	final := waitBatch(t, s, st.ID)
	if final.Counts["failed"] != 1 || final.Counts["done"] != 1 {
		t.Fatalf("counts = %v", final.Counts)
	}
}

// TestStopAndDrain: Stop is prompt, Drain observes worker exit, and
// post-stop submissions are rejected.
func TestStopAndDrain(t *testing.T) {
	s := sched.New(newPureExec().exec, sched.Options{Workers: 2})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.Start(ctx)
	st := mustSubmit(t, s, "alice", specs(addr(1), addr(2)))
	waitBatch(t, s, st.ID)
	s.Stop()
	dctx, dcancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer dcancel()
	if err := s.Drain(dctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if _, err := s.Submit(context.Background(), "alice", specs(addr(1), addr(3))); !errors.Is(err, sched.ErrStopped) {
		t.Fatalf("post-stop submit err = %v", err)
	}
}
