// Package service implements the open Reverse Traceroute service of
// Appendix A: a REST API through which users register sources (triggering
// the bootstrap: a record-route reachability check, atlas construction,
// and RR-alias probing), request reverse traceroute measurements to
// registered sources with per-user rate limits, and retrieve stored
// results. The real deployment exposes the same operations over REST and
// gRPC in front of its M-Lab vantage points; here the "Internet" is the
// simulated deployment.
package service

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"revtr/internal/core"
	"revtr/internal/netsim/ipv4"
	"revtr/internal/obs"
	"revtr/internal/sched"
	"revtr/internal/store"
	"revtr/internal/stream"
)

// User is a registered API user with the two rate-limit parameters the
// paper describes: parallel measurements and measurements per day.
type User struct {
	Name        string `json:"name"`
	APIKey      string `json:"apiKey"`
	MaxParallel int    `json:"maxParallel"`
	MaxPerDay   int    `json:"maxPerDay"`

	usedToday int
	inFlight  int
}

// SourceInfo describes a registered Reverse Traceroute source.
type SourceInfo struct {
	Addr           string `json:"addr"`
	AtlasSize      int    `json:"atlasSize"`
	RRReachable    bool   `json:"rrReachable"`
	ServesAsVP     bool   `json:"servesAsVP"`
	RegisteredAtUS int64  `json:"registeredAtUs"`
}

// Measurement is a stored reverse traceroute result.
type Measurement struct {
	ID  int    `json:"id"`
	Src string `json:"src"`
	Dst string `json:"dst"`
	// User is the requesting user's name (never the API key); empty for
	// NDT-triggered measurements. Firehose owner-scoping matches on it.
	User       string        `json:"user,omitempty"`
	Status     string        `json:"status"`
	Hops       []MeasuredHop `json:"hops"`
	DurationUS int64         `json:"durationUs"`
	Probes     uint64        `json:"probes"`
}

// MeasuredHop is one hop of a stored result.
type MeasuredHop struct {
	Addr      string `json:"addr"`
	Technique string `json:"technique"`
	Suspect   bool   `json:"suspectMissingBefore,omitempty"`
	// Spliced marks hops adopted from the cross-measurement segment
	// store rather than probed by this measurement.
	Spliced bool `json:"spliced,omitempty"`
}

var (
	// ErrRateLimited is returned when a user exceeds a quota.
	ErrRateLimited = errors.New("service: rate limited")
	// ErrUnknownSource is returned for measurements toward unregistered
	// sources.
	ErrUnknownSource = errors.New("service: source not registered")
	// ErrUnauthorized is returned for missing/invalid API keys.
	ErrUnauthorized = errors.New("service: unauthorized")
	// ErrBootstrap is returned when a source cannot be bootstrapped.
	ErrBootstrap = errors.New("service: source bootstrap failed")
)

// Backend abstracts the measurement system the service fronts (the
// simulated deployment in this repository; the M-Lab deployment in the
// real system).
type Backend interface {
	// RegisterSource bootstraps a source: RR reachability check + atlas.
	RegisterSource(addr ipv4.Addr) (core.Source, error)
	// Measure runs one reverse traceroute. Implementations must honor ctx
	// cancellation/deadline by returning promptly with a failed result.
	Measure(ctx context.Context, src core.Source, dst ipv4.Addr) *core.Result
	// RefreshAtlas re-measures a source's atlas (the daily Random++
	// replacement of Appendix D.2).
	RefreshAtlas(src core.Source)
}

// Registry is the service state: users, sources, and the measurement
// archive. Safe for concurrent use. The archive is an internal/store
// append-only log — durable when the registry is built over an
// on-disk store, so measurement IDs survive a restart.
type Registry struct {
	mu          sync.Mutex
	backend     Backend
	users       map[string]*User // by API key
	sources     map[ipv4.Addr]*registeredSource
	archive     *store.Log
	sched       *sched.Scheduler // batch scheduler; nil until EnableBatch
	adminKey    string
	ndtInFlight int
	obs         *obs.Registry

	// broker is the progress-streaming fan-out; nil until EnableStream.
	// Atomic because publishJobEvent reads it under sched.mu, where
	// taking r.mu is forbidden (lock order sched.mu → r.mu).
	broker atomic.Pointer[stream.Broker]
}

type registeredSource struct {
	info SourceInfo
	src  core.Source
	// atlasMu serializes atlas refresh (DailyMaintenance) against
	// in-flight measurements, which read the same core.Source atlas:
	// measurements hold it shared, refresh holds it exclusive.
	atlasMu sync.RWMutex
}

// NewRegistry creates the service state with a memory-only measurement
// archive. adminKey authorizes user management. Every registry carries
// an obs.Registry; attach engine or campaign metrics to Obs() to
// surface them on GET /metrics.
func NewRegistry(backend Backend, adminKey string) *Registry {
	// A memory-only store.Log never fails to open.
	archive, err := store.Open("", store.Options{})
	if err != nil {
		panic(err)
	}
	return newRegistry(backend, adminKey, archive, obs.New())
}

// NewRegistryWithArchive creates the service state over an existing
// measurement archive (typically store.Open on a durable directory):
// measurements already in it keep their IDs, and new ones append after
// them — a restarted server recovers the identical pre-crash archive.
func NewRegistryWithArchive(backend Backend, adminKey string, archive *store.Log) *Registry {
	return newRegistry(backend, adminKey, archive, obs.New())
}

func newRegistry(backend Backend, adminKey string, archive *store.Log, o *obs.Registry) *Registry {
	// The archive's metrics (store_wal_bytes, ...) join the registry's
	// namespace, whatever obs it was opened with.
	archive.SetObs(o)
	return &Registry{
		backend:  backend,
		users:    make(map[string]*User),
		sources:  make(map[ipv4.Addr]*registeredSource),
		archive:  archive,
		adminKey: adminKey,
		obs:      o,
	}
}

// Obs exposes the service's metric registry (rendered by GET /metrics).
func (r *Registry) Obs() *obs.Registry { return r.obs }

// userGauges publishes a user's live quota consumption. Callers hold r.mu.
func (r *Registry) userGauges(u *User) {
	r.obs.Gauge(obs.Label("service_user_inflight", "user", u.Name)).Set(int64(u.inFlight))
	r.obs.Gauge(obs.Label("service_user_used_today", "user", u.Name)).Set(int64(u.usedToday))
}

// newKey mints a random API key.
func newKey() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(err)
	}
	return hex.EncodeToString(b[:])
}

// AddUser registers a user (admin operation; the real system maintains
// this database manually).
func (r *Registry) AddUser(adminKey, name string, maxParallel, maxPerDay int) (*User, error) {
	if adminKey != r.adminKey {
		return nil, ErrUnauthorized
	}
	if maxParallel <= 0 {
		maxParallel = 4
	}
	if maxPerDay <= 0 {
		maxPerDay = 1000
	}
	u := &User{Name: name, APIKey: newKey(), MaxParallel: maxParallel, MaxPerDay: maxPerDay}
	r.mu.Lock()
	r.users[u.APIKey] = u
	r.userGauges(u)
	r.mu.Unlock()
	return u, nil
}

// Authenticate resolves an API key to a user.
func (r *Registry) Authenticate(key string) (*User, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	u, ok := r.users[key]
	if !ok {
		return nil, ErrUnauthorized
	}
	return u, nil
}

// RegisterSource bootstraps and registers a source for measurements
// (Appx A: "the process starts by checking whether the source can receive
// record route packets", then builds its traceroute atlas).
func (r *Registry) RegisterSource(key string, addr ipv4.Addr, serveAsVP bool) (SourceInfo, error) {
	if _, err := r.Authenticate(key); err != nil {
		return SourceInfo{}, err
	}
	r.mu.Lock()
	if reg, ok := r.sources[addr]; ok {
		info := reg.info
		r.mu.Unlock()
		return info, nil
	}
	r.mu.Unlock()

	src, err := r.backend.RegisterSource(addr)
	if err != nil {
		return SourceInfo{}, fmt.Errorf("%w: %v", ErrBootstrap, err)
	}
	info := SourceInfo{
		Addr:        addr.String(),
		AtlasSize:   src.Atlas.Size(),
		RRReachable: true,
		ServesAsVP:  serveAsVP,
	}
	r.mu.Lock()
	r.sources[addr] = &registeredSource{info: info, src: src}
	r.mu.Unlock()
	return info, nil
}

// Sources lists registered sources.
func (r *Registry) Sources() []SourceInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]SourceInfo, 0, len(r.sources))
	for _, s := range r.sources {
		out = append(out, s.info)
	}
	return out
}

// Measure runs a reverse traceroute from dst to the registered source,
// enforcing the user's quotas, and archives the result. ctx aborts
// in-flight probing: a cancelled or expired context makes the backend
// return promptly with a failed measurement. A panicking backend is
// surfaced as a measurement with status "failed" — and, critically, both
// paths release the user's MaxParallel slot (the slot decrement runs
// under defer, so no code path can leak it).
func (r *Registry) Measure(ctx context.Context, key string, srcAddr, dstAddr ipv4.Addr) (*Measurement, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	u, err := r.Authenticate(key)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	reg, ok := r.sources[srcAddr]
	if !ok {
		r.mu.Unlock()
		return nil, ErrUnknownSource
	}
	if u.usedToday >= u.MaxPerDay || u.inFlight >= u.MaxParallel {
		r.mu.Unlock()
		r.obs.Counter("service_measure_rate_limited_total").Inc()
		return nil, ErrRateLimited
	}
	u.usedToday++
	u.inFlight++
	r.userGauges(u)
	r.mu.Unlock()
	defer func() {
		r.mu.Lock()
		u.inFlight--
		r.userGauges(u)
		r.mu.Unlock()
	}()

	start := time.Now() //revtr:wallclock service wall-time metric, distinct from virtual probe time
	res := r.safeMeasure(ctx, reg, dstAddr)
	r.obs.Histogram("service_measure_wall_us", nil).Observe(time.Since(start).Microseconds()) //revtr:wallclock service wall-time metric, distinct from virtual probe time
	r.obs.Counter("service_measure_total").Inc()
	if ctx.Err() != nil {
		r.obs.Counter("service_measure_cancelled_total").Inc()
	}

	m := buildMeasurement(srcAddr, dstAddr, res)
	m.User = u.Name
	r.obs.Counter(obs.Label("service_measure_status_total", "status", m.Status)).Inc()
	if err := r.archiveMeasurement(m); err != nil {
		return nil, err
	}
	r.publishMeasurement(m)
	return m, nil
}

// buildMeasurement converts a backend result (nil = backend panic)
// into the stored form. The ID is assigned at archive time.
func buildMeasurement(srcAddr, dstAddr ipv4.Addr, res *core.Result) *Measurement {
	m := &Measurement{
		Src: srcAddr.String(),
		Dst: dstAddr.String(),
	}
	if res == nil { // backend panicked
		m.Status = "failed"
		return m
	}
	m.Status = res.Status.String()
	m.DurationUS = res.DurationUS
	m.Probes = res.Probes.Total()
	for _, h := range res.Hops {
		m.Hops = append(m.Hops, MeasuredHop{
			Addr:      h.Addr.String(),
			Technique: h.Tech.String(),
			Suspect:   h.SuspectBefore,
			Spliced:   h.Spliced,
		})
	}
	return m
}

// archiveMeasurement appends m to the durable archive, stamping its ID
// with the log's next sequence number. The marshalled bytes in the WAL
// are what a restarted server replays, bit for bit.
func (r *Registry) archiveMeasurement(m *Measurement) error {
	_, err := r.archive.Append(func(id uint64) any {
		m.ID = int(id)
		return m
	})
	if errors.Is(err, store.ErrCompaction) {
		// The measurement is durably archived and its ID consumed; only
		// the store's post-append compaction failed (it retries on a
		// later append). Reporting failure here would push the caller
		// into retrying a measurement that already exists.
		r.obs.Counter("service_archive_compact_errors_total").Inc()
		return nil
	}
	if err != nil {
		return fmt.Errorf("service: archive: %w", err)
	}
	return nil
}

// safeMeasure runs one backend measurement holding the source's atlas
// lock shared (so DailyMaintenance cannot swap entries mid-measurement)
// and converts a backend panic into a nil result instead of letting it
// unwind through the service.
func (r *Registry) safeMeasure(ctx context.Context, reg *registeredSource, dst ipv4.Addr) (res *core.Result) {
	return r.safeMeasureStream(ctx, reg, dst, nil)
}

// safeMeasureStream is safeMeasure with an optional progress sink:
// when the backend can stream (StreamBackend) and a sink is given,
// hop-by-hop events flow to it as the measurement runs.
func (r *Registry) safeMeasureStream(ctx context.Context, reg *registeredSource, dst ipv4.Addr, sink func(stream.Event)) (res *core.Result) {
	reg.atlasMu.RLock()
	defer reg.atlasMu.RUnlock()
	defer func() {
		if v := recover(); v != nil {
			r.countBackendPanic()
			res = nil
		}
	}()
	if sink != nil {
		if sb, ok := r.backend.(StreamBackend); ok {
			return sb.MeasureStream(ctx, reg.src, dst, sink)
		}
	}
	return r.backend.Measure(ctx, reg.src, dst)
}

// countBackendPanic tallies one recovered backend panic (blocking or
// asynchronous measurement path).
func (r *Registry) countBackendPanic() {
	r.obs.Counter("service_backend_panics_total").Inc()
}

// Get retrieves a stored measurement by ID. Records evicted by the
// archive's retention cap report as missing, same as never-assigned IDs.
func (r *Registry) Get(id int) (*Measurement, bool) {
	if id < 0 {
		return nil, false
	}
	var m Measurement
	ok, err := r.archive.Get(uint64(id), &m)
	if err != nil || !ok {
		return nil, false
	}
	return &m, true
}

// ResetDay clears the per-day counters (the real system rolls these at
// midnight) and the batch scheduler's day cache. Batch jobs admitted
// before the reset were charged against the old day's quota at admission
// time and are never re-charged on completion, so in-flight queues carry
// no quota debt into the new day.
func (r *Registry) ResetDay() {
	r.mu.Lock()
	sc := r.sched
	for _, u := range r.users {
		u.usedToday = 0
		r.userGauges(u)
	}
	r.mu.Unlock()
	if sc != nil {
		sc.ResetDay()
	}
}

// DailyMaintenance is the midnight job: refresh every source's traceroute
// atlas (entries intersected during the day survive and are re-measured;
// the rest are replaced with fresh random probes — Appendix D.2's
// Random++ policy) and roll the per-user quotas. Returns per-source atlas
// sizes after refresh.
func (r *Registry) DailyMaintenance() map[string]int {
	r.mu.Lock()
	var srcs []*registeredSource
	for _, reg := range r.sources {
		srcs = append(srcs, reg)
	}
	r.mu.Unlock()

	out := make(map[string]int, len(srcs))
	for _, reg := range srcs {
		// Exclusive per-source lock: no measurement may read this atlas
		// while the refresh replaces its entries.
		reg.atlasMu.Lock()
		r.backend.RefreshAtlas(reg.src)
		size := reg.src.Atlas.Size()
		reg.atlasMu.Unlock()

		r.mu.Lock()
		reg.info.AtlasSize = size
		out[reg.info.Addr] = size
		r.mu.Unlock()
		r.obs.Counter("service_atlas_refresh_total").Inc()
	}
	r.ResetDay()
	return out
}

// UsefulEntries reports how many of a source's atlas entries have been
// intersected since the last refresh.
func (r *Registry) UsefulEntries(addr ipv4.Addr) (useful, total int, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	reg, found := r.sources[addr]
	if !found {
		return 0, 0, false
	}
	reg.atlasMu.RLock()
	defer reg.atlasMu.RUnlock()
	for _, e := range reg.src.Atlas.Entries {
		if e.WasUseful() {
			useful++
		}
	}
	return useful, reg.src.Atlas.Size(), true
}

// NDT implements the Appendix A measurement hook: when a client runs an
// NDT speed test against a server that is a registered source, the
// service opportunistically measures the reverse path from the client to
// that server (complementing M-Lab's forward traceroute). Acceptance
// depends on system load, modelled as a simple in-flight cap; rejected
// requests return (nil, nil) — they are best-effort by design.
func (r *Registry) NDT(ctx context.Context, serverAddr, clientAddr ipv4.Addr) (*Measurement, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	r.mu.Lock()
	reg, ok := r.sources[serverAddr]
	if !ok {
		r.mu.Unlock()
		return nil, ErrUnknownSource
	}
	if r.ndtInFlight >= maxNDTInFlight {
		r.mu.Unlock()
		r.obs.Counter("service_ndt_shed_total").Inc()
		return nil, nil // load shedding
	}
	r.ndtInFlight++
	inflight := r.obs.Gauge("service_ndt_inflight")
	inflight.Set(int64(r.ndtInFlight))
	r.mu.Unlock()
	defer func() {
		r.mu.Lock()
		r.ndtInFlight--
		inflight.Set(int64(r.ndtInFlight))
		r.mu.Unlock()
	}()

	res := r.safeMeasure(ctx, reg, clientAddr)
	r.obs.Counter("service_ndt_total").Inc()

	m := buildMeasurement(serverAddr, clientAddr, res)
	if err := r.archiveMeasurement(m); err != nil {
		return nil, err
	}
	r.publishMeasurement(m)
	return m, nil
}

// maxNDTInFlight bounds opportunistic NDT-triggered measurements.
const maxNDTInFlight = 8

// Stats summarizes service state.
type Stats struct {
	Users        int `json:"users"`
	Sources      int `json:"sources"`
	Measurements int `json:"measurements"`
}

// Stats returns current counts.
func (r *Registry) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return Stats{Users: len(r.users), Sources: len(r.sources), Measurements: r.archive.Len()}
}
