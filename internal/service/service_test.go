package service_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"revtr"
	"revtr/internal/netsim/topology"
	"revtr/internal/service"
)

func testAPI(t *testing.T) (*httptest.Server, *revtr.Deployment) {
	t.Helper()
	cfg := revtr.DefaultConfig(300)
	cfg.Seed = 31
	cfg.Topology.Seed = 31
	d := revtr.Build(cfg)
	reg := service.NewRegistry(service.NewDeploymentBackend(d), "admin-secret")
	ts := httptest.NewServer(service.NewAPI(reg))
	t.Cleanup(ts.Close)
	return ts, d
}

func postJSON(t *testing.T, url string, headers map[string]string, body any) *http.Response {
	t.Helper()
	b, _ := json.Marshal(body)
	req, err := http.NewRequest("POST", url, bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decode[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func TestFullServiceFlow(t *testing.T) {
	ts, d := testAPI(t)

	// Health.
	resp, err := http.Get(ts.URL + "/api/v1/health")
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("health: %v %v", err, resp.StatusCode)
	}
	resp.Body.Close()

	// Admin creates a user.
	resp = postJSON(t, ts.URL+"/api/v1/users",
		map[string]string{"X-Admin-Key": "admin-secret"},
		map[string]any{"name": "alice", "maxParallel": 2, "maxPerDay": 5})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("add user: %d", resp.StatusCode)
	}
	user := decode[service.User](t, resp)
	if user.APIKey == "" {
		t.Fatal("no API key issued")
	}

	// Wrong admin key is rejected.
	resp = postJSON(t, ts.URL+"/api/v1/users",
		map[string]string{"X-Admin-Key": "wrong"}, map[string]any{"name": "eve"})
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("bad admin key: %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Register a source (a responsive host of the simulated Internet).
	srcHost := d.PickSourceHost(0)
	resp = postJSON(t, ts.URL+"/api/v1/sources",
		map[string]string{"X-API-Key": user.APIKey},
		map[string]any{"addr": srcHost.Addr.String()})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("add source: %d", resp.StatusCode)
	}
	src := decode[service.SourceInfo](t, resp)
	if src.AtlasSize == 0 {
		t.Error("bootstrap built no atlas")
	}

	// Run measurements up to the daily quota.
	var dsts []string
	for i, h := range d.OnePerPrefix() {
		if h.AS != srcHost.AS {
			dsts = append(dsts, h.Addr.String())
		}
		if len(dsts) == 5 || i > 50 {
			break
		}
	}
	resp = postJSON(t, ts.URL+"/api/v1/revtr",
		map[string]string{"X-API-Key": user.APIKey},
		map[string]any{"src": srcHost.Addr.String(), "dsts": dsts})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("measure: %d", resp.StatusCode)
	}
	ms := decode[[]service.Measurement](t, resp)
	if len(ms) != len(dsts) {
		t.Fatalf("got %d measurements", len(ms))
	}
	for _, m := range ms {
		if len(m.Hops) == 0 {
			t.Error("measurement with no hops")
		}
		if m.Hops[0].Technique != "dst" {
			t.Errorf("first hop technique %s", m.Hops[0].Technique)
		}
	}

	// The daily quota (5) is now exhausted.
	resp = postJSON(t, ts.URL+"/api/v1/revtr",
		map[string]string{"X-API-Key": user.APIKey},
		map[string]any{"src": srcHost.Addr.String(), "dsts": dsts[:1]})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("quota not enforced: %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Fetch a stored measurement.
	resp, err = http.Get(fmt.Sprintf("%s/api/v1/revtr/%d", ts.URL, ms[0].ID))
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("get: %v %d", err, resp.StatusCode)
	}
	got := decode[service.Measurement](t, resp)
	if got.Dst != ms[0].Dst {
		t.Error("stored measurement mismatch")
	}

	// Stats reflect activity.
	resp, _ = http.Get(ts.URL + "/api/v1/stats")
	st := decode[service.Stats](t, resp)
	if st.Users != 1 || st.Sources != 1 || st.Measurements != 5 {
		t.Errorf("stats: %+v", st)
	}
}

func TestMeasureRequiresAuthAndSource(t *testing.T) {
	ts, d := testAPI(t)
	// No API key.
	resp := postJSON(t, ts.URL+"/api/v1/revtr", nil,
		map[string]any{"src": "16.0.128.1", "dsts": []string{"16.1.128.1"}})
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("unauthenticated measure: %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Authenticated but unregistered source.
	resp = postJSON(t, ts.URL+"/api/v1/users",
		map[string]string{"X-Admin-Key": "admin-secret"}, map[string]any{"name": "bob"})
	u := decode[service.User](t, resp)
	h := d.PickSourceHost(1)
	resp = postJSON(t, ts.URL+"/api/v1/revtr",
		map[string]string{"X-API-Key": u.APIKey},
		map[string]any{"src": h.Addr.String(), "dsts": []string{h.Addr.String()}})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown source: %d", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestBootstrapRejectsDeadSource(t *testing.T) {
	ts, d := testAPI(t)
	resp := postJSON(t, ts.URL+"/api/v1/users",
		map[string]string{"X-Admin-Key": "admin-secret"}, map[string]any{"name": "carol"})
	u := decode[service.User](t, resp)

	// A host that never answers cannot pass the bootstrap check.
	var dead *topology.Host
	for i := range d.Topo.Hosts {
		if !d.Topo.Hosts[i].PingResponsive {
			dead = &d.Topo.Hosts[i]
			break
		}
	}
	if dead == nil {
		t.Skip("no unresponsive host")
	}
	resp = postJSON(t, ts.URL+"/api/v1/sources",
		map[string]string{"X-API-Key": u.APIKey},
		map[string]any{"addr": dead.Addr.String()})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("dead source accepted: %d", resp.StatusCode)
	}
	resp.Body.Close()

	// A non-existent address is also rejected.
	resp = postJSON(t, ts.URL+"/api/v1/sources",
		map[string]string{"X-API-Key": u.APIKey},
		map[string]any{"addr": "203.0.113.7"})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("phantom source accepted: %d", resp.StatusCode)
	}
	resp.Body.Close()
}
