package service_test

import (
	"context"

	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"

	"revtr"
	"revtr/internal/atlas"
	"revtr/internal/core"
	"revtr/internal/measure"
	"revtr/internal/netsim/ipv4"
	"revtr/internal/service"
)

// fakeBackend is a controllable service.Backend: it can panic on demand,
// and its Measure/RefreshAtlas genuinely read and write the shared
// core.Source atlas so the race detector sees any unserialized access.
type fakeBackend struct {
	mu        sync.Mutex
	panicNext bool
}

func (b *fakeBackend) armPanic() {
	b.mu.Lock()
	b.panicNext = true
	b.mu.Unlock()
}

func (b *fakeBackend) RegisterSource(addr ipv4.Addr) (core.Source, error) {
	a := atlas.New(measure.Agent{Addr: addr})
	// A realistically sized atlas so the concurrent read/write windows in
	// Measure and RefreshAtlas are wide enough for the race detector.
	for i := 0; i < 256; i++ {
		a.Add("probe", int32(i), []ipv4.Addr{addr}, 0)
	}
	return core.Source{Agent: measure.Agent{Addr: addr}, Atlas: a}, nil
}

func (b *fakeBackend) Measure(_ context.Context, src core.Source, dst ipv4.Addr) *core.Result {
	b.mu.Lock()
	p := b.panicNext
	b.panicNext = false
	b.mu.Unlock()
	if p {
		panic("fake backend exploded")
	}
	// Read the atlas the way the engine does during intersection.
	// (Read-only: concurrent measurements may share the atlas lock;
	// only the maintenance refresh writes, exclusively.) The Gosched
	// forces the read window to overlap a concurrent refresh so the race
	// detector can observe any unserialized access.
	useful := 0
	for i, e := range src.Atlas.Entries {
		if e.WasUseful() {
			useful++
		}
		if i%32 == 0 {
			runtime.Gosched()
		}
	}
	_ = useful
	return &core.Result{Src: src.Agent.Addr, Dst: dst, Status: core.StatusComplete}
}

func (b *fakeBackend) RefreshAtlas(src core.Source) {
	// Mutate entries the way atlas.Service.Refresh does: reset usefulness
	// and bump measurement times.
	src.Atlas.ResetUseful()
	for i, e := range src.Atlas.Entries {
		e.MarkUseful()
		e.MeasuredAtUS++
		if i%32 == 0 {
			runtime.Gosched()
		}
	}
}

func fakeRegistry(t *testing.T, maxParallel, maxPerDay int) (*service.Registry, *fakeBackend, *service.User, ipv4.Addr) {
	t.Helper()
	fb := &fakeBackend{}
	reg := service.NewRegistry(fb, "adm")
	u, err := reg.AddUser("adm", "alice", maxParallel, maxPerDay)
	if err != nil {
		t.Fatal(err)
	}
	srcAddr, _ := ipv4.ParseAddr("10.0.0.1")
	if _, err := reg.RegisterSource(u.APIKey, srcAddr, false); err != nil {
		t.Fatal(err)
	}
	return reg, fb, u, srcAddr
}

// TestBackendPanicReleasesSlot: in the seed, a panicking backend unwound
// through Registry.Measure between inFlight++ and inFlight--, permanently
// consuming one of the user's MaxParallel slots. The slot must be
// released and the panic surfaced as a failed measurement.
func TestBackendPanicReleasesSlot(t *testing.T) {
	reg, fb, u, srcAddr := fakeRegistry(t, 1, 100) // exactly one parallel slot
	dst, _ := ipv4.ParseAddr("10.0.0.2")

	fb.armPanic()
	m, err := reg.Measure(context.Background(), u.APIKey, srcAddr, dst)
	if err != nil {
		t.Fatalf("panic must surface as a failed measurement, got error %v", err)
	}
	if m.Status != "failed" {
		t.Fatalf("status = %q, want failed", m.Status)
	}

	// The single slot must be free again: a second measurement runs
	// instead of returning ErrRateLimited forever.
	m2, err := reg.Measure(context.Background(), u.APIKey, srcAddr, dst)
	if err != nil {
		t.Fatalf("slot leaked: second measure failed with %v", err)
	}
	if m2.Status != "complete" {
		t.Fatalf("second measure status = %q", m2.Status)
	}
	if got := reg.Obs().Counter("service_backend_panics_total").Value(); got != 1 {
		t.Fatalf("panic counter = %d, want 1", got)
	}
	// Both attempts are archived.
	if st := reg.Stats(); st.Measurements != 2 {
		t.Fatalf("stats.Measurements = %d, want 2", st.Measurements)
	}
}

// TestConcurrentMeasureAndMaintenance exercises the DailyMaintenance /
// Measure race under the race detector: maintenance rewrites each
// source's atlas while measurements read it. The per-source RWMutex must
// serialize them.
func TestConcurrentMeasureAndMaintenance(t *testing.T) {
	reg, _, u, srcAddr := fakeRegistry(t, 64, 1<<20)
	src2, _ := ipv4.ParseAddr("10.0.0.3")
	if _, err := reg.RegisterSource(u.APIKey, src2, false); err != nil {
		t.Fatal(err)
	}
	dst, _ := ipv4.ParseAddr("10.9.9.9")

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				s := srcAddr
				if (g+i)%2 == 0 {
					s = src2
				}
				if _, err := reg.Measure(context.Background(), u.APIKey, s, dst); err != nil {
					t.Errorf("measure: %v", err)
					return
				}
				if i%10 == 0 {
					reg.UsefulEntries(s)
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 25; i++ {
			reg.DailyMaintenance()
		}
	}()
	wg.Wait()
}

// TestMetricsAndHealthz drives one real measurement through the HTTP API
// with engine metrics attached and asserts GET /metrics reports nonzero
// engine stage counters and latency histograms — the acceptance check of
// the observability tentpole.
func TestMetricsAndHealthz(t *testing.T) {
	cfg := revtr.DefaultConfig(300)
	cfg.Seed = 31
	cfg.Topology.Seed = 31
	d := revtr.Build(cfg)
	backend := service.NewDeploymentBackend(d)
	reg := service.NewRegistry(backend, "admin-secret")
	backend.Engine.SetMetrics(core.NewMetrics(reg.Obs()))
	ts := httptest.NewServer(service.NewAPI(reg))
	t.Cleanup(ts.Close)

	// Liveness probe.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", err, resp)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if strings.TrimSpace(string(body)) != "ok" {
		t.Fatalf("healthz body = %q", body)
	}

	// One full measurement through the API.
	resp = postJSON(t, ts.URL+"/api/v1/users",
		map[string]string{"X-Admin-Key": "admin-secret"},
		map[string]any{"name": "alice"})
	u := decode[service.User](t, resp)
	srcHost := d.PickSourceHost(0)
	resp = postJSON(t, ts.URL+"/api/v1/sources",
		map[string]string{"X-API-Key": u.APIKey},
		map[string]any{"addr": srcHost.Addr.String()})
	resp.Body.Close()
	var dst string
	for _, h := range d.OnePerPrefix() {
		if h.AS != srcHost.AS {
			dst = h.Addr.String()
			break
		}
	}
	resp = postJSON(t, ts.URL+"/api/v1/revtr",
		map[string]string{"X-API-Key": u.APIKey},
		map[string]any{"src": srcHost.Addr.String(), "dsts": []string{dst}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("measure: %d", resp.StatusCode)
	}
	resp.Body.Close()

	// The metrics endpoint must now report engine and service activity.
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %v %v", err, resp)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)

	if !strings.Contains(text, "service_measure_total 1") {
		t.Errorf("metrics missing service_measure_total:\n%s", text)
	}
	if !strings.Contains(text, "engine_measure_wall_us_count 1") {
		t.Errorf("metrics missing engine latency histogram:\n%s", text)
	}
	// At least one engine stage counter must be nonzero after a real
	// measurement (which stage depends on the topology).
	stageTotal := uint64(0)
	for _, c := range []string{
		"engine_stage_atlas_intersect_total",
		"engine_stage_direct_rr_total",
		"engine_stage_spoofed_rr_total",
		"engine_stage_symmetry_total",
	} {
		stageTotal += reg.Obs().Counter(c).Value()
	}
	if stageTotal == 0 {
		t.Errorf("no engine stage counter advanced:\n%s", text)
	}
	if !strings.Contains(text, `service_user_inflight{user="alice"} 0`) {
		t.Errorf("metrics missing per-user quota gauge:\n%s", text)
	}
	if !strings.Contains(text, "http_requests_total") {
		t.Errorf("metrics missing http request counters:\n%s", text)
	}
}
