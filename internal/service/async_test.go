package service_test

// Async batch dispatch: when the backend implements AsyncBackend, the
// batch scheduler routes jobs through the non-blocking path, so the
// number of measurements in flight is bounded by MaxInFlight suspended
// measurements — not by Workers goroutines.

import (
	"context"
	"sync"
	"testing"
	"time"

	"revtr"
	"revtr/internal/atlas"
	"revtr/internal/core"
	"revtr/internal/measure"
	"revtr/internal/netsim/ipv4"
	"revtr/internal/sched"
	"revtr/internal/service"
)

// asyncGate is an AsyncBackend that parks every measurement as a stored
// completion callback until the test releases it — the measurement
// holds no goroutine while parked, exactly like a suspended machine.
type asyncGate struct {
	mu      sync.Mutex
	pending []func()
	started chan struct{} // one tick per MeasureAsync entry
}

func (b *asyncGate) RegisterSource(addr ipv4.Addr) (core.Source, error) {
	return core.Source{Agent: measure.Agent{Addr: addr}, Atlas: atlas.New(measure.Agent{Addr: addr})}, nil
}

// Measure is the blocking fallback; the async dispatch path must never
// use it.
func (b *asyncGate) Measure(ctx context.Context, src core.Source, dst ipv4.Addr) *core.Result {
	return &core.Result{Src: src.Agent.Addr, Dst: dst, Status: core.StatusComplete}
}

func (b *asyncGate) RefreshAtlas(core.Source) {}

func (b *asyncGate) MeasureAsync(ctx context.Context, src core.Source, dst ipv4.Addr, done func(*core.Result)) {
	res := &core.Result{Src: src.Agent.Addr, Dst: dst, Status: core.StatusComplete}
	b.mu.Lock()
	b.pending = append(b.pending, func() { done(res) })
	b.mu.Unlock()
	b.started <- struct{}{}
}

// flushOne releases the oldest parked measurement.
func (b *asyncGate) flushOne() bool {
	b.mu.Lock()
	if len(b.pending) == 0 {
		b.mu.Unlock()
		return false
	}
	f := b.pending[0]
	b.pending = b.pending[1:]
	b.mu.Unlock()
	f()
	return true
}

// TestBatchAsyncInFlightBeyondWorkers: with one worker but MaxInFlight
// of 8, eight measurements enter the backend before any completes —
// impossible on the blocking path, where a single worker goroutine
// serializes them — and a ninth is dispatched only once a slot frees.
func TestBatchAsyncInFlightBeyondWorkers(t *testing.T) {
	const maxInFlight = 8
	bb := &asyncGate{started: make(chan struct{}, 64)}
	reg := service.NewRegistry(bb, "adm")
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	sc := reg.EnableBatch(ctx, sched.Options{Workers: 1, MaxInFlight: maxInFlight})
	t.Cleanup(func() {
		cancel()
		_ = sc.Drain(context.Background())
	})
	u, err := reg.AddUser("adm", "alice", 4, 100)
	if err != nil {
		t.Fatal(err)
	}
	srcAddr, _ := ipv4.ParseAddr("10.0.0.1")
	if _, err := reg.RegisterSource(u.APIKey, srcAddr, false); err != nil {
		t.Fatal(err)
	}

	st, err := reg.SubmitBatch(context.Background(), u.APIKey,
		pairs(srcAddr, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < maxInFlight; i++ {
		select {
		case <-bb.started:
		case <-time.After(10 * time.Second):
			t.Fatalf("only %d of %d measurements entered the backend concurrently", i, maxInFlight)
		}
	}
	// The dispatcher is now out of slots; completing one measurement
	// must hand its slot to job nine.
	if !bb.flushOne() {
		t.Fatal("nothing parked to flush")
	}
	select {
	case <-bb.started:
	case <-time.After(10 * time.Second):
		t.Fatal("freed in-flight slot was never handed to the next queued job")
	}

	// Release everything else and let the batch finish.
	go func() {
		for i := 0; i < 11; i++ {
			select {
			case <-bb.started:
			case <-time.After(10 * time.Second):
				return
			}
		}
	}()
	for {
		if !bb.flushOne() {
			bs, err := reg.BatchStatus(u.APIKey, st.ID)
			if err != nil {
				t.Fatal(err)
			}
			if bs.Done {
				break
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	final := waitDone(t, reg, u.APIKey, st.ID)
	if final.Counts["done"] != 12 {
		t.Fatalf("counts = %v, want 12 done", final.Counts)
	}
	if got := reg.Stats().Measurements; got != 12 {
		t.Fatalf("archived %d measurements, want 12", got)
	}
	if got := reg.Obs().Counter("service_batch_exec_total").Value(); got != 12 {
		t.Fatalf("service_batch_exec_total = %d, want 12", got)
	}
}

// TestBatchAsyncEndToEnd: the real engine's MeasureAsync drives a batch
// through the service layer — submitted jobs complete, results carry
// reverse paths, and measurements land in the archive.
func TestBatchAsyncEndToEnd(t *testing.T) {
	cfg := revtr.DefaultConfig(300)
	cfg.Seed = 31
	cfg.Topology.Seed = 31
	d := revtr.Build(cfg)
	reg := service.NewRegistry(service.NewDeploymentBackend(d), "adm")
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	sc := reg.EnableBatch(ctx, sched.Options{MaxInFlight: 256})
	t.Cleanup(func() {
		cancel()
		_ = sc.Drain(context.Background())
	})
	u, err := reg.AddUser("adm", "alice", 4, 100)
	if err != nil {
		t.Fatal(err)
	}
	srcHost := d.PickSourceHost(0)
	if _, err := reg.RegisterSource(u.APIKey, srcHost.Addr, false); err != nil {
		t.Fatal(err)
	}
	var sp []sched.JobSpec
	for _, h := range d.OnePerPrefix() {
		if h.AS != srcHost.AS {
			sp = append(sp, sched.JobSpec{Src: srcHost.Addr, Dst: h.Addr})
		}
		if len(sp) == 6 {
			break
		}
	}
	if len(sp) == 0 {
		t.Skip("no destinations")
	}
	st, err := reg.SubmitBatch(context.Background(), u.APIKey, sp)
	if err != nil {
		t.Fatal(err)
	}
	final := waitDone(t, reg, u.APIKey, st.ID)
	if final.Counts["done"] != len(sp) {
		t.Fatalf("counts = %v, want %d done", final.Counts, len(sp))
	}
	if got := reg.Stats().Measurements; got != len(sp) {
		t.Fatalf("archived %d measurements, want %d", got, len(sp))
	}
}
