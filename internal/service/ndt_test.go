package service_test

import (
	"net/http"
	"testing"

	"revtr/internal/service"
)

func TestNDTHook(t *testing.T) {
	ts, d := testAPI(t)
	// Register a source through the API first.
	resp := postJSON(t, ts.URL+"/api/v1/users",
		map[string]string{"X-Admin-Key": "admin-secret"}, map[string]any{"name": "ops"})
	u := decode[service.User](t, resp)
	server := d.PickSourceHost(0)
	resp = postJSON(t, ts.URL+"/api/v1/sources",
		map[string]string{"X-API-Key": u.APIKey},
		map[string]any{"addr": server.Addr.String()})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("add source: %d", resp.StatusCode)
	}
	resp.Body.Close()

	// An NDT test reports a client; the service measures the reverse
	// path opportunistically — no API key needed.
	var client string
	for _, h := range d.OnePerPrefix() {
		if h.AS != server.AS {
			client = h.Addr.String()
			break
		}
	}
	resp = postJSON(t, ts.URL+"/api/v1/ndt", nil,
		map[string]any{"server": server.Addr.String(), "client": client})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ndt: %d", resp.StatusCode)
	}
	m := decode[service.Measurement](t, resp)
	if m.Dst != client || len(m.Hops) == 0 {
		t.Fatalf("ndt measurement: %+v", m)
	}

	// NDT toward an unregistered server is refused.
	resp = postJSON(t, ts.URL+"/api/v1/ndt", nil,
		map[string]any{"server": client, "client": server.Addr.String()})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("ndt unknown server: %d", resp.StatusCode)
	}
	resp.Body.Close()
}
