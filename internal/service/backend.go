package service

import (
	"fmt"
	"sync"

	"revtr"
	"revtr/internal/core"
	"revtr/internal/measure"
	"revtr/internal/netsim/ipv4"
)

// DeploymentBackend fronts a simulated deployment: sources are hosts of
// the simulated Internet, bootstrap checks RR reachability end to end,
// and measurements run on the deployment's revtr 2.0 engine.
//
// The engine, its cache, and the shared prober are single-writer, so the
// backend serializes all operations that touch them with mu. The service
// layer above allows concurrent HTTP measurements; they queue here.
type DeploymentBackend struct {
	D      *revtr.Deployment
	Engine *core.Engine

	mu sync.Mutex
}

// NewDeploymentBackend wires a deployment with a revtr 2.0 engine.
func NewDeploymentBackend(d *revtr.Deployment) *DeploymentBackend {
	return &DeploymentBackend{D: d, Engine: d.Engine(core.Revtr20Options())}
}

// RegisterSource implements Backend: the Appendix A bootstrap. The source
// must exist, answer pings, and be able to receive record route packets
// (checked with a probe from a vantage point); then its traceroute atlas
// and RR-alias measurements are built.
func (b *DeploymentBackend) RegisterSource(addr ipv4.Addr) (core.Source, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	h, ok := b.D.Topo.HostOf(addr)
	if !ok {
		return core.Source{}, fmt.Errorf("no host at %s", addr)
	}
	agent := measure.AgentFromHost(b.D.Topo, h)
	// RR reachability check: at least one vantage point's RR ping must
	// come back with the option intact.
	reachable := false
	for i, vp := range b.D.SiteAgents {
		if rr := b.D.Prober.RRPing(vp, addr); rr.Responded {
			reachable = true
			break
		}
		if i >= 5 {
			break
		}
	}
	if !reachable {
		return core.Source{}, fmt.Errorf("source %s cannot receive record route packets", addr)
	}
	return core.Source{Agent: agent, Atlas: b.D.AtlasSvc.BuildFor(agent)}, nil
}

// Measure implements Backend.
func (b *DeploymentBackend) Measure(src core.Source, dst ipv4.Addr) *core.Result {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.Engine.MeasureReverse(src, dst)
}

// RefreshAtlas implements Backend with the deployment's atlas service.
func (b *DeploymentBackend) RefreshAtlas(src core.Source) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.D.AtlasSvc.Refresh(src.Atlas)
}
