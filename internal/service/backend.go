package service

import (
	"context"
	"fmt"
	"sync"

	"revtr"
	"revtr/internal/core"
	"revtr/internal/measure"
	"revtr/internal/netsim/ipv4"
	"revtr/internal/stream"
)

// DeploymentBackend fronts a simulated deployment: sources are hosts of
// the simulated Internet, bootstrap checks RR reachability end to end,
// and measurements run on the deployment's revtr 2.0 engine.
//
// Measure runs lock-free: the engine submits probe batches through the
// deployment's shared probe.Pool and is safe for concurrent use, so
// concurrent HTTP measurements really do probe concurrently. Bootstrap
// and atlas refresh still use the deployment's serial prober and atlas
// service, which are single-writer; mu serializes only those.
type DeploymentBackend struct {
	D      *revtr.Deployment
	Engine *core.Engine

	mu sync.Mutex // guards the serial prober + atlas service paths
}

// NewDeploymentBackend wires a deployment with a revtr 2.0 engine.
func NewDeploymentBackend(d *revtr.Deployment) *DeploymentBackend {
	return NewDeploymentBackendOptions(d, core.Revtr20Options())
}

// NewDeploymentBackendOptions wires a deployment with an engine built
// from explicit options — the server uses it to thread operator knobs
// (segment memoization, cache sizing) into the measurement engine.
func NewDeploymentBackendOptions(d *revtr.Deployment, opts core.Options) *DeploymentBackend {
	return &DeploymentBackend{D: d, Engine: d.Engine(opts)}
}

// RegisterSource implements Backend: the Appendix A bootstrap. The source
// must exist, answer pings, and be able to receive record route packets
// (checked with a probe from a vantage point); then its traceroute atlas
// and RR-alias measurements are built.
func (b *DeploymentBackend) RegisterSource(addr ipv4.Addr) (core.Source, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	h, ok := b.D.Topo.HostOf(addr)
	if !ok {
		return core.Source{}, fmt.Errorf("no host at %s", addr)
	}
	agent := measure.AgentFromHost(b.D.Topo, h)
	// RR reachability check: at least one vantage point's RR ping must
	// come back with the option intact.
	reachable := false
	for i, vp := range b.D.SiteAgents {
		if rr := b.D.Prober.RRPing(vp, addr); rr.Responded {
			reachable = true
			break
		}
		if i >= 5 {
			break
		}
	}
	if !reachable {
		return core.Source{}, fmt.Errorf("source %s cannot receive record route packets", addr)
	}
	return core.Source{Agent: agent, Atlas: b.D.AtlasSvc.BuildFor(agent)}, nil
}

// Measure implements Backend. The engine is safe for concurrent use and
// checks ctx between measurement stages, so cancelled requests abort
// in-flight work promptly.
func (b *DeploymentBackend) Measure(ctx context.Context, src core.Source, dst ipv4.Addr) *core.Result {
	return b.Engine.MeasureReverse(ctx, src, dst)
}

// MeasureAsync implements AsyncBackend: the engine's resumable state
// machine runs the measurement without parking a goroutine across
// spoofed-batch timeouts, and done receives the finished result (nil on
// a backend panic, matching Measure's recover contract in the service).
func (b *DeploymentBackend) MeasureAsync(ctx context.Context, src core.Source, dst ipv4.Addr, done func(*core.Result)) {
	b.Engine.MeasureAsync(ctx, src, dst, done)
}

// MeasureStream implements StreamBackend: a blocking measurement that
// reports hop-by-hop progress events to sink as the engine reveals the
// reverse path.
func (b *DeploymentBackend) MeasureStream(ctx context.Context, src core.Source, dst ipv4.Addr, sink func(stream.Event)) *core.Result {
	return b.Engine.MeasureReverseStream(ctx, src, dst, sink)
}

// MeasureAsyncStream implements StreamAsyncBackend: MeasureAsync with
// progress events flowing to sink from whichever pool executor resumes
// the suspended machine.
func (b *DeploymentBackend) MeasureAsyncStream(ctx context.Context, src core.Source, dst ipv4.Addr, sink func(stream.Event), done func(*core.Result)) {
	b.Engine.MeasureAsyncStream(ctx, src, dst, sink, done)
}

// RefreshAtlas implements Backend with the deployment's atlas service.
func (b *DeploymentBackend) RefreshAtlas(src core.Source) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.D.AtlasSvc.Refresh(src.Atlas)
}
