package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"revtr/internal/netsim/ipv4"
	"revtr/internal/obs"
	"revtr/internal/sched"
	"revtr/internal/stream"
)

// API is the HTTP front end (the REST flavour of the Appendix A APIs).
//
//	POST /api/v1/users            admin: create a user           (X-Admin-Key)
//	POST /api/v1/sources          register + bootstrap a source  (X-API-Key)
//	GET  /api/v1/sources          list sources
//	POST /api/v1/revtr            run reverse traceroutes        (X-API-Key)
//	GET  /api/v1/revtr/{id}       fetch a stored measurement
//	POST /api/v1/batch            submit an async batch (202)    (X-API-Key)
//	GET  /api/v1/batch/{id}       poll a batch's per-job states  (X-API-Key)
//	GET  /api/v1/batch/{id}/events  follow a batch live (NDJSON) (X-API-Key)
//	GET  /api/v1/firehose         follow completed measurements  (X-API-Key)
//	DELETE /api/v1/users/{key}    admin: revoke a key + cancel its batch jobs
//	GET  /api/v1/stats            service statistics
//	GET  /api/v1/health           liveness (JSON)
//	GET  /healthz                 liveness (plain text, for probes)
//	GET  /metrics                 observability registry, text format
type API struct {
	reg *Registry
	mux *http.ServeMux

	// MeasureTimeout caps the wall-clock time of each measurement in a
	// POST /api/v1/revtr request when the request does not set its own
	// timeoutMs. Zero means no server-imposed limit (the client can still
	// abort by closing the connection: the request context propagates
	// into the engine either way).
	MeasureTimeout time.Duration

	// MaxBatchPairs caps the pairs accepted in one POST /api/v1/batch
	// request (400 past it). Every pair allocates a scheduler job
	// retained until its batch is evicted and is echoed in every status
	// poll, so without a cap a single request with millions of pairs
	// means unbounded allocation even though the queue cap sheds them.
	// <= 0 means the default 10000.
	MaxBatchPairs int

	// HeartbeatInterval paces keep-alive lines on idle event streams
	// (/events, /firehose). <= 0 means 15s.
	HeartbeatInterval time.Duration

	// FirehoseReplay caps the ?replay= parameter of GET /api/v1/firehose
	// (archived measurements served before going live). <= 0 means 64.
	FirehoseReplay int
}

// defaultMaxBatchPairs bounds a POST /api/v1/batch submission when
// API.MaxBatchPairs is unset.
const defaultMaxBatchPairs = 10000

// NewAPI builds the HTTP handler over a registry.
func NewAPI(reg *Registry) *API {
	a := &API{reg: reg, mux: http.NewServeMux()}
	a.mux.HandleFunc("POST /api/v1/users", a.handleAddUser)
	a.mux.HandleFunc("POST /api/v1/sources", a.handleAddSource)
	a.mux.HandleFunc("GET /api/v1/sources", a.handleListSources)
	a.mux.HandleFunc("POST /api/v1/revtr", a.handleMeasure)
	a.mux.HandleFunc("GET /api/v1/revtr/{id}", a.handleGet)
	a.mux.HandleFunc("POST /api/v1/batch", a.handleBatchSubmit)
	a.mux.HandleFunc("GET /api/v1/batch/{id}", a.handleBatchStatus)
	a.mux.HandleFunc("GET /api/v1/batch/{id}/events", a.handleBatchEvents)
	a.mux.HandleFunc("GET /api/v1/firehose", a.handleFirehose)
	a.mux.HandleFunc("DELETE /api/v1/users/{key}", a.handleRevokeUser)
	a.mux.HandleFunc("POST /api/v1/ndt", a.handleNDT)
	a.mux.HandleFunc("GET /api/v1/stats", a.handleStats)
	a.mux.HandleFunc("GET /api/v1/health", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	a.mux.HandleFunc("GET /healthz", a.handleHealthz)
	a.mux.HandleFunc("GET /metrics", a.handleMetrics)
	return a
}

// ServeHTTP implements http.Handler, recording request count, latency,
// and response-class counters for every route.
func (a *API) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	o := a.reg.Obs()
	start := time.Now() //revtr:wallclock HTTP latency histogram measures real request time
	sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
	a.mux.ServeHTTP(sw, r)
	o.Counter("http_requests_total").Inc()
	o.Counter(obs.Label("http_responses_total", "class",
		fmt.Sprintf("%dxx", sw.code/100))).Inc()
	o.Histogram("http_request_duration_us", nil).Observe(time.Since(start).Microseconds()) //revtr:wallclock HTTP latency histogram measures real request time
}

// statusWriter captures the response status code for metrics.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the wrapped writer so the NDJSON event streams can
// push partial responses; without it the wrapper would mask the
// Flusher interface and events would sit buffered until the handler
// returned.
func (w *statusWriter) Flush() {
	if fl, ok := w.ResponseWriter.(http.Flusher); ok {
		fl.Flush()
	}
}

// handleHealthz is the plain-text liveness probe for load balancers and
// orchestration: cheap, no JSON, no auth.
func (a *API) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = io.WriteString(w, "ok\n")
}

// handleMetrics renders the full observability registry (service,
// engine, and anything else attached to it) in text format.
func (a *API) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_ = a.reg.Obs().WriteText(w)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

type errorBody struct {
	Error string `json:"error"`
}

func writeErr(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrUnauthorized):
		code = http.StatusUnauthorized
	case errors.Is(err, ErrRateLimited):
		code = http.StatusTooManyRequests
	case errors.Is(err, ErrUnknownSource):
		code = http.StatusNotFound
	case errors.Is(err, ErrBootstrap):
		code = http.StatusUnprocessableEntity
	case errors.Is(err, sched.ErrRevoked):
		code = http.StatusUnauthorized
	case errors.Is(err, sched.ErrUnknownBatch), errors.Is(err, ErrUnknownUser):
		code = http.StatusNotFound
	case errors.Is(err, sched.ErrOverloaded), errors.Is(err, sched.ErrStopped),
		errors.Is(err, ErrBatchDisabled), errors.Is(err, ErrStreamDisabled),
		errors.Is(err, stream.ErrShutdown):
		code = http.StatusServiceUnavailable
	case errors.Is(err, stream.ErrTooManySubscribers), errors.Is(err, stream.ErrTooManyTopics):
		code = http.StatusTooManyRequests
	}
	writeJSON(w, code, errorBody{Error: err.Error()})
}

func (a *API) handleAddUser(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Name        string `json:"name"`
		MaxParallel int    `json:"maxParallel"`
		MaxPerDay   int    `json:"maxPerDay"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad request body"})
		return
	}
	u, err := a.reg.AddUser(r.Header.Get("X-Admin-Key"), req.Name, req.MaxParallel, req.MaxPerDay)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, u)
}

func (a *API) handleAddSource(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Addr      string `json:"addr"`
		ServeAsVP bool   `json:"serveAsVP"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad request body"})
		return
	}
	addr, err := ipv4.ParseAddr(req.Addr)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad source address"})
		return
	}
	info, err := a.reg.RegisterSource(r.Header.Get("X-API-Key"), addr, req.ServeAsVP)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, info)
}

func (a *API) handleListSources(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, a.reg.Sources())
}

func (a *API) handleMeasure(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Src  string   `json:"src"`
		Dsts []string `json:"dsts"`
		// TimeoutMs caps each measurement's wall-clock time; 0 falls back
		// to the server's MeasureTimeout.
		TimeoutMs int64 `json:"timeoutMs"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad request body"})
		return
	}
	src, err := ipv4.ParseAddr(req.Src)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad src address"})
		return
	}
	timeout := a.MeasureTimeout
	if req.TimeoutMs > 0 {
		timeout = time.Duration(req.TimeoutMs) * time.Millisecond
	}
	key := r.Header.Get("X-API-Key")
	var out []*Measurement
	for _, ds := range req.Dsts {
		dst, err := ipv4.ParseAddr(ds)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad dst address " + ds})
			return
		}
		// The request context propagates into the engine, so a client
		// that disconnects aborts its in-flight probing. The per-
		// measurement timeout stacks on top of it.
		ctx := r.Context()
		cancel := context.CancelFunc(func() {})
		if timeout > 0 {
			ctx, cancel = context.WithTimeout(ctx, timeout)
		}
		m, err := a.reg.Measure(ctx, key, src, dst)
		cancel()
		if err != nil {
			writeErr(w, err)
			return
		}
		out = append(out, m)
	}
	writeJSON(w, http.StatusOK, out)
}

func (a *API) handleGet(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad id"})
		return
	}
	m, ok := a.reg.Get(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "no such measurement"})
		return
	}
	writeJSON(w, http.StatusOK, m)
}

// handleBatchSubmit accepts an asynchronous batch of (src, dst) pairs
// and answers 202 with the admission snapshot: cached pairs are already
// "coalesced", the rest are "queued" or "shed". Clients poll
// GET /api/v1/batch/{id} until done.
func (a *API) handleBatchSubmit(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Pairs []struct {
			Src string `json:"src"`
			Dst string `json:"dst"`
		} `json:"pairs"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad request body"})
		return
	}
	if len(req.Pairs) == 0 {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "empty batch"})
		return
	}
	maxPairs := a.MaxBatchPairs
	if maxPairs <= 0 {
		maxPairs = defaultMaxBatchPairs
	}
	if len(req.Pairs) > maxPairs {
		writeJSON(w, http.StatusBadRequest, errorBody{
			Error: fmt.Sprintf("batch too large: %d pairs exceeds the %d-pair limit; split the submission", len(req.Pairs), maxPairs)})
		return
	}
	specs := make([]sched.JobSpec, 0, len(req.Pairs))
	for _, p := range req.Pairs {
		src, err1 := ipv4.ParseAddr(p.Src)
		dst, err2 := ipv4.ParseAddr(p.Dst)
		if err1 != nil || err2 != nil {
			writeJSON(w, http.StatusBadRequest,
				errorBody{Error: fmt.Sprintf("bad pair %s>%s", p.Src, p.Dst)})
			return
		}
		specs = append(specs, sched.JobSpec{Src: src, Dst: dst})
	}
	st, err := a.reg.SubmitBatch(r.Context(), r.Header.Get("X-API-Key"), specs)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, st)
}

// handleBatchStatus polls one batch. The admin key may inspect any
// batch; users see only their own.
func (a *API) handleBatchStatus(w http.ResponseWriter, r *http.Request) {
	key := r.Header.Get("X-API-Key")
	if key == "" {
		key = r.Header.Get("X-Admin-Key")
	}
	st, err := a.reg.BatchStatus(key, r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleRevokeUser deletes an API key and cancels the key's queued and
// running batch jobs.
func (a *API) handleRevokeUser(w http.ResponseWriter, r *http.Request) {
	if err := a.reg.RevokeUser(r.Header.Get("X-Admin-Key"), r.PathValue("key")); err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "revoked"})
}

// handleNDT is the Appendix A hook: an NDT server reports a speed test
// and the service opportunistically measures the reverse path from the
// client. No API key: the hook runs on trusted infrastructure; load
// shedding protects the system.
func (a *API) handleNDT(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Server string `json:"server"`
		Client string `json:"client"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad request body"})
		return
	}
	server, err1 := ipv4.ParseAddr(req.Server)
	client, err2 := ipv4.ParseAddr(req.Client)
	if err1 != nil || err2 != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad address"})
		return
	}
	m, err := a.reg.NDT(r.Context(), server, client)
	if err != nil {
		writeErr(w, err)
		return
	}
	if m == nil {
		writeJSON(w, http.StatusAccepted, map[string]string{"status": "shed"})
		return
	}
	writeJSON(w, http.StatusOK, m)
}

func (a *API) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, a.reg.Stats())
}
