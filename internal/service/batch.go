// Batch measurement API: the service face of internal/sched. The
// user's daily quota is charged through the scheduler's TryCharge
// callback, once per job that drives a measurement of its own: at
// admission for new flight leaders, and at promotion when a revoked
// leader's flight is handed to one of its subscribers (whose coalesced
// ride was free until then). Day-cache hits and duplicates coalesced
// onto an in-flight leader are never charged (Insight 1.4's reuse
// window applied at the request layer). Because completion never
// charges, jobs admitted before a midnight ResetDay cannot
// double-charge the new day's budget.
//
// Lock order: the scheduler calls TryCharge with its own lock held and
// TryCharge takes r.mu, so the global order is sched.mu → r.mu —
// nothing in this package may call into the scheduler while holding
// r.mu.
package service

import (
	"context"
	"errors"

	"revtr/internal/core"
	"revtr/internal/netsim/ipv4"
	"revtr/internal/obs"
	"revtr/internal/sched"
)

// AsyncBackend is the optional non-blocking measurement interface: a
// backend that can start a measurement and deliver its result through a
// callback without parking a goroutine for the duration
// (core.Engine.MeasureAsync). When the registry's backend implements
// it, EnableBatch dispatches batch jobs through the scheduler's
// asynchronous path, so batch concurrency is bounded by
// sched.Options.MaxInFlight suspended measurements instead of
// Options.Workers goroutines. done receives nil when the backend
// panicked mid-measurement (mirroring Backend.Measure's recover
// contract in safeMeasure).
type AsyncBackend interface {
	//revtr:suspends starting a measurement parks it until the backend's completion callback fires
	MeasureAsync(ctx context.Context, src core.Source, dst ipv4.Addr, done func(*core.Result))
}

var (
	// ErrBatchDisabled rejects batch calls on a registry without an
	// enabled scheduler (EnableBatch was never called).
	ErrBatchDisabled = errors.New("service: batch scheduler not enabled")
	// ErrUnknownUser is returned when revoking a key that does not exist.
	ErrUnknownUser = errors.New("service: unknown user")
)

// EnableBatch attaches a batch scheduler to the registry and starts its
// workers; ctx stops them (pair with Drain on the returned scheduler
// for an orderly shutdown). The scheduler shares the registry's metric
// registry regardless of opts.Obs. Calling EnableBatch again returns
// the already-enabled scheduler.
func (r *Registry) EnableBatch(ctx context.Context, opts sched.Options) *sched.Scheduler {
	if ctx == nil {
		ctx = context.Background()
	}
	opts.Obs = r.obs
	opts.TryCharge = r.tryCharge
	opts.OnJob = r.publishJobEvent
	if _, ok := r.backend.(AsyncBackend); ok && opts.ExecAsync == nil {
		opts.ExecAsync = r.batchExecAsync
	}
	sc := sched.New(r.batchExec, opts)
	r.mu.Lock()
	if r.sched != nil {
		sc = r.sched
		r.mu.Unlock()
		return sc
	}
	r.sched = sc
	r.mu.Unlock()
	sc.Start(ctx)
	return sc
}

// batchExec is the scheduler's Exec callback: run one measurement and
// archive it. Quota was charged at admission (or at promotion, for a
// leader that inherited a revoked flight), so nothing is charged
// here — and the user's MaxParallel sync-request limit does not apply;
// the scheduler's worker bound is the batch concurrency control.
// Cancelled or panicked measurements return an error so their partial
// results never resolve coalesced subscribers or enter the day cache.
func (r *Registry) batchExec(ctx context.Context, job sched.JobRef) (any, error) {
	key, src, dst := job.User, job.Src, job.Dst
	r.mu.Lock()
	reg, ok := r.sources[src]
	sc := r.sched
	name := ""
	if u, known := r.users[key]; known {
		name = u.Name
	}
	r.mu.Unlock()
	if !ok {
		return nil, ErrUnknownSource
	}
	res := r.safeMeasureStream(ctx, reg, dst, r.progressSink(job))
	r.countBatchExec()
	if res == nil {
		return nil, sc.WrapRevoked(key, errors.New("service: backend panic"))
	}
	if err := ctx.Err(); err != nil {
		return nil, sc.WrapRevoked(key, err)
	}
	m := buildMeasurement(src, dst, res)
	m.User = name
	r.obs.Counter(obs.Label("service_measure_status_total", "status", m.Status)).Inc()
	if err := r.archiveMeasurement(m); err != nil {
		return nil, err
	}
	r.publishMeasurement(m)
	return m, nil
}

// batchExecAsync is the scheduler's ExecAsync callback: start one
// measurement through the AsyncBackend and finish it — archive, status
// metrics, revocation wrapping — inside the completion callback, which
// runs on a probe-pool executor goroutine. The source's atlas lock is
// held shared across the measurement's entire (suspended) lifetime,
// exactly as the blocking path holds it across safeMeasure, so
// DailyMaintenance cannot swap atlas entries mid-measurement. Falls
// back to the blocking batchExec when the backend is not asynchronous.
func (r *Registry) batchExecAsync(ctx context.Context, job sched.JobRef, done func(res any, err error)) {
	key, src, dst := job.User, job.Src, job.Dst
	r.mu.Lock()
	reg, ok := r.sources[src]
	sc := r.sched
	name := ""
	if u, known := r.users[key]; known {
		name = u.Name
	}
	r.mu.Unlock()
	if !ok {
		done(nil, ErrUnknownSource)
		return
	}
	ab, isAsync := r.backend.(AsyncBackend)
	if !isAsync {
		res, err := r.batchExec(ctx, job)
		done(res, err)
		return
	}
	finish := func(res *core.Result) {
		r.countBatchExec()
		if res == nil {
			r.countBackendPanic()
			done(nil, sc.WrapRevoked(key, errors.New("service: backend panic")))
			return
		}
		if err := ctx.Err(); err != nil {
			done(nil, sc.WrapRevoked(key, err))
			return
		}
		m := buildMeasurement(src, dst, res)
		m.User = name
		r.obs.Counter(obs.Label("service_measure_status_total", "status", m.Status)).Inc()
		if err := r.archiveMeasurement(m); err != nil {
			done(nil, err)
			return
		}
		r.publishMeasurement(m)
		done(m, nil)
	}
	sink := r.progressSink(job)
	sab, canStream := r.backend.(StreamAsyncBackend)
	reg.atlasMu.RLock()
	if canStream && sink != nil {
		//revtr:heldacross the atlas read lock is pinned for the measurement's suspended lifetime — DailyMaintenance must not swap entries mid-measurement; the completion callback releases it
		sab.MeasureAsyncStream(ctx, reg.src, dst, sink, func(res *core.Result) {
			reg.atlasMu.RUnlock()
			finish(res)
		})
	} else {
		//revtr:heldacross the atlas read lock is pinned for the measurement's suspended lifetime — DailyMaintenance must not swap entries mid-measurement; the completion callback releases it
		ab.MeasureAsync(ctx, reg.src, dst, func(res *core.Result) {
			reg.atlasMu.RUnlock()
			finish(res)
		})
	}
}

// countBatchExec tallies one finished batch measurement attempt.
func (r *Registry) countBatchExec() {
	r.obs.Counter("service_batch_exec_total").Inc()
}

// tryCharge is the scheduler's admission-quota callback: atomically
// charge one measurement against the user's daily budget, refusing
// when it is exhausted (or the user no longer exists). The scheduler
// calls it with its own lock held — see the package comment for the
// resulting sched.mu → r.mu lock order.
func (r *Registry) tryCharge(key string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	u, ok := r.users[key]
	if !ok || u.usedToday >= u.MaxPerDay {
		return false
	}
	u.usedToday++
	r.userGauges(u)
	return true
}

// SubmitBatch admits a batch of (src, dst) jobs for the user owning
// key. Every src must be a registered source — a batch with any
// unknown source is rejected whole, before charging anything. The
// quota check and the charge are atomic inside tryCharge, serialized
// under the scheduler's admission lock, so concurrent submissions
// cannot overdraw MaxPerDay. The returned snapshot reflects admission
// (jobs may already be resolved from the day cache); poll BatchStatus
// for completion. ErrOverloaded means the dispatch queue shed the
// entire batch.
func (r *Registry) SubmitBatch(ctx context.Context, key string, specs []sched.JobSpec) (sched.BatchStatus, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	r.mu.Lock()
	sc := r.sched
	if sc == nil {
		r.mu.Unlock()
		return sched.BatchStatus{}, ErrBatchDisabled
	}
	if _, ok := r.users[key]; !ok {
		r.mu.Unlock()
		return sched.BatchStatus{}, ErrUnauthorized
	}
	for _, sp := range specs {
		if _, ok := r.sources[sp.Src]; !ok {
			r.mu.Unlock()
			return sched.BatchStatus{}, ErrUnknownSource
		}
	}
	// r.mu must be released before calling into the scheduler: Submit
	// takes sched.mu and charges quota back through tryCharge (r.mu).
	r.mu.Unlock()
	return sc.Submit(ctx, key, specs)
}

// BatchStatus snapshots a batch. Only the submitting user (or the
// admin key) may see it; other users' batch IDs report as unknown
// rather than leaking their existence.
func (r *Registry) BatchStatus(key, id string) (sched.BatchStatus, error) {
	r.mu.Lock()
	sc := r.sched
	_, isUser := r.users[key]
	isAdmin := key != "" && key == r.adminKey
	r.mu.Unlock()
	if sc == nil {
		return sched.BatchStatus{}, ErrBatchDisabled
	}
	if !isUser && !isAdmin {
		return sched.BatchStatus{}, ErrUnauthorized
	}
	st, err := sc.Status(id)
	if err != nil {
		return sched.BatchStatus{}, err
	}
	if !isAdmin && st.User != key {
		return sched.BatchStatus{}, sched.ErrUnknownBatch
	}
	return st, nil
}

// RevokeUser deletes a user's API key (admin operation) and cancels
// the user's batch work: queued jobs fail with ErrRevoked, running
// measurements are interrupted, and in-flight leaders with other
// users' jobs coalesced onto them hand leadership over before failing,
// so revocation never takes other users' results down with it.
func (r *Registry) RevokeUser(adminKey, key string) error {
	if adminKey != r.adminKey {
		return ErrUnauthorized
	}
	r.mu.Lock()
	u, ok := r.users[key]
	if ok {
		delete(r.users, key)
	}
	sc := r.sched
	r.mu.Unlock()
	if !ok {
		return ErrUnknownUser
	}
	// Close the revoked key's event streams with an explicit end/revoked
	// before revoking its jobs: revocation fails the user's queued jobs,
	// which can turn a batch terminal and publish a normal end/done —
	// closing first guarantees the user's subscribers always see the
	// revocation as the terminal reason.
	if b := r.broker.Load(); b != nil {
		b.CloseUser(key, "revoked")
	}
	if sc != nil {
		sc.Revoke(key)
	}
	r.obs.Counter(obs.Label("service_user_revoked_total", "user", u.Name)).Inc()
	return nil
}
