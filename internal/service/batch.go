// Batch measurement API: the service face of internal/sched. A batch
// submission charges the user's daily quota once, at admission, and
// only for jobs that will drive a measurement of their own — day-cache
// hits and duplicates coalesced onto an in-flight leader are free
// (Insight 1.4's reuse window applied at the request layer). Because
// completion never charges, jobs admitted before a midnight ResetDay
// cannot double-charge the new day's budget.
package service

import (
	"context"
	"errors"

	"revtr/internal/netsim/ipv4"
	"revtr/internal/obs"
	"revtr/internal/sched"
)

var (
	// ErrBatchDisabled rejects batch calls on a registry without an
	// enabled scheduler (EnableBatch was never called).
	ErrBatchDisabled = errors.New("service: batch scheduler not enabled")
	// ErrUnknownUser is returned when revoking a key that does not exist.
	ErrUnknownUser = errors.New("service: unknown user")
)

// EnableBatch attaches a batch scheduler to the registry and starts its
// workers; ctx stops them (pair with Drain on the returned scheduler
// for an orderly shutdown). The scheduler shares the registry's metric
// registry regardless of opts.Obs. Calling EnableBatch again returns
// the already-enabled scheduler.
func (r *Registry) EnableBatch(ctx context.Context, opts sched.Options) *sched.Scheduler {
	if ctx == nil {
		ctx = context.Background()
	}
	opts.Obs = r.obs
	sc := sched.New(r.batchExec, opts)
	r.mu.Lock()
	if r.sched != nil {
		sc = r.sched
		r.mu.Unlock()
		return sc
	}
	r.sched = sc
	r.mu.Unlock()
	sc.Start(ctx)
	return sc
}

// batchExec is the scheduler's Exec callback: run one measurement and
// archive it. Quota was charged at admission, so nothing is charged
// here — and the user's MaxParallel sync-request limit does not apply;
// the scheduler's worker bound is the batch concurrency control.
// Cancelled or panicked measurements return an error so their partial
// results never resolve coalesced subscribers or enter the day cache.
func (r *Registry) batchExec(ctx context.Context, key string, src, dst ipv4.Addr) (any, error) {
	r.mu.Lock()
	reg, ok := r.sources[src]
	sc := r.sched
	r.mu.Unlock()
	if !ok {
		return nil, ErrUnknownSource
	}
	res := r.safeMeasure(ctx, reg, dst)
	r.obs.Counter("service_batch_exec_total").Inc()
	if res == nil {
		return nil, sc.WrapRevoked(key, errors.New("service: backend panic"))
	}
	if err := ctx.Err(); err != nil {
		return nil, sc.WrapRevoked(key, err)
	}
	m := buildMeasurement(src, dst, res)
	r.obs.Counter(obs.Label("service_measure_status_total", "status", m.Status)).Inc()
	if err := r.archiveMeasurement(m); err != nil {
		return nil, err
	}
	return m, nil
}

// SubmitBatch admits a batch of (src, dst) jobs for the user owning
// key. Every src must be a registered source — a batch with any
// unknown source is rejected whole, before charging anything. The
// quota check and the charge are atomic under the registry lock, so
// concurrent submissions cannot overdraw MaxPerDay. The returned
// snapshot reflects admission (jobs may already be resolved from the
// day cache); poll BatchStatus for completion. ErrOverloaded means the
// dispatch queue shed the entire batch.
func (r *Registry) SubmitBatch(ctx context.Context, key string, specs []sched.JobSpec) (sched.BatchStatus, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	sc := r.sched
	if sc == nil {
		return sched.BatchStatus{}, ErrBatchDisabled
	}
	u, ok := r.users[key]
	if !ok {
		return sched.BatchStatus{}, ErrUnauthorized
	}
	for _, sp := range specs {
		if _, ok := r.sources[sp.Src]; !ok {
			return sched.BatchStatus{}, ErrUnknownSource
		}
	}
	quota := u.MaxPerDay - u.usedToday
	if quota < 0 {
		quota = 0
	}
	// Lock order: r.mu then sched.mu. The scheduler never calls Exec
	// while holding its own lock, so batchExec re-taking r.mu from a
	// worker cannot deadlock against this.
	st, admitted, err := sc.SubmitQuota(ctx, key, specs, quota)
	if admitted > 0 {
		u.usedToday += admitted
		r.userGauges(u)
	}
	return st, err
}

// BatchStatus snapshots a batch. Only the submitting user (or the
// admin key) may see it; other users' batch IDs report as unknown
// rather than leaking their existence.
func (r *Registry) BatchStatus(key, id string) (sched.BatchStatus, error) {
	r.mu.Lock()
	sc := r.sched
	_, isUser := r.users[key]
	isAdmin := key != "" && key == r.adminKey
	r.mu.Unlock()
	if sc == nil {
		return sched.BatchStatus{}, ErrBatchDisabled
	}
	if !isUser && !isAdmin {
		return sched.BatchStatus{}, ErrUnauthorized
	}
	st, err := sc.Status(id)
	if err != nil {
		return sched.BatchStatus{}, err
	}
	if !isAdmin && st.User != key {
		return sched.BatchStatus{}, sched.ErrUnknownBatch
	}
	return st, nil
}

// RevokeUser deletes a user's API key (admin operation) and cancels
// the user's batch work: queued jobs fail with ErrRevoked, running
// measurements are interrupted, and in-flight leaders with other
// users' jobs coalesced onto them hand leadership over before failing,
// so revocation never takes other users' results down with it.
func (r *Registry) RevokeUser(adminKey, key string) error {
	if adminKey != r.adminKey {
		return ErrUnauthorized
	}
	r.mu.Lock()
	u, ok := r.users[key]
	if ok {
		delete(r.users, key)
	}
	sc := r.sched
	r.mu.Unlock()
	if !ok {
		return ErrUnknownUser
	}
	if sc != nil {
		sc.Revoke(key)
	}
	r.obs.Counter(obs.Label("service_user_revoked_total", "user", u.Name)).Inc()
	return nil
}
