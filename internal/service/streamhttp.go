// Streaming HTTP endpoints: per-batch progress events and the
// server-wide measurement firehose, both NDJSON over chunked transfer.
//
//	GET /api/v1/batch/{id}/events   follow one batch hop-by-hop
//	GET /api/v1/firehose            follow completed measurements
//
// Both handlers pump a broker subscription from the request goroutine
// (the stream package spawns no goroutines), write one JSON event per
// line, flush between bursts, and keep idle connections alive with
// heartbeat lines. They end on: a terminal "end" event (batch done,
// user revoked, broker shutdown), client disconnect (request context),
// or an encoder error. A stalled client only ever overflows its own
// subscription ring — measurements and other subscribers are never
// delayed.
package service

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strconv"
	"time"

	"revtr/internal/stream"
)

// ErrStreamDisabled rejects streaming requests on a registry without
// an attached broker (EnableStream was never called).
var ErrStreamDisabled = errors.New("service: streaming not enabled")

// defaultHeartbeat keeps idle streams alive through proxies when
// API.HeartbeatInterval is unset.
const defaultHeartbeat = 15 * time.Second

// defaultFirehoseReplay caps ?replay= when API.FirehoseReplay is unset.
const defaultFirehoseReplay = 64

// heartbeatLine is the raw NDJSON keep-alive record. It is not an
// Event: it carries no id and consumes no sequence number.
const heartbeatLine = "{\"kind\":\"heartbeat\"}\n"

// parseAfter resolves the resume cursor for a batch event stream: the
// Last-Event-ID header (set by reconnecting EventSource-style clients)
// or the ?after= query parameter. 0 means "replay the whole retained
// window".
func parseAfter(r *http.Request) (int64, bool) {
	raw := r.Header.Get("Last-Event-ID")
	if raw == "" {
		raw = r.URL.Query().Get("after")
	}
	if raw == "" {
		return 0, true
	}
	v, err := strconv.ParseInt(raw, 10, 64)
	if err != nil || v < 0 {
		return 0, false
	}
	return v, true
}

// handleBatchEvents streams one batch's lifecycle: scheduler state
// transitions, per-hop reveals, technique fallbacks, and a terminal
// "end" event once every job is terminal. Authorization mirrors
// GET /api/v1/batch/{id}: the submitting user or the admin key.
func (a *API) handleBatchEvents(w http.ResponseWriter, r *http.Request) {
	key := r.Header.Get("X-API-Key")
	if key == "" {
		key = r.Header.Get("X-Admin-Key")
	}
	id := r.PathValue("id")
	st, err := a.reg.BatchStatus(key, id)
	if err != nil {
		writeErr(w, err)
		return
	}
	b := a.reg.Broker()
	if b == nil {
		writeErr(w, ErrStreamDisabled)
		return
	}
	after, ok := parseAfter(r)
	if !ok {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad resume cursor"})
		return
	}
	sub, err := b.Subscribe(stream.BatchTopic(id), stream.SubOptions{Owner: key, AfterID: after})
	if err != nil {
		writeErr(w, err)
		return
	}
	defer sub.Close()

	// Subscribe-after-done with nothing retained (the topic was evicted,
	// or was never published because the batch predates EnableStream):
	// synthesize the terminal states from the status snapshot so a late
	// subscriber still gets a complete, well-terminated stream.
	var prelude []stream.Event
	if st.Done && after == 0 && sub.Buffered() == 0 {
		for _, j := range st.Jobs {
			ev := stream.Event{
				Kind: stream.KindState, Batch: id, Job: j.Index,
				Src: j.Src, Dst: j.Dst, State: j.State, Err: j.Error,
			}
			prelude = append(prelude, ev)
		}
		prelude = append(prelude, stream.Event{Kind: stream.KindEnd, Batch: id, Job: -1, Reason: "done"})
	}
	a.pumpEvents(w, r, sub, prelude)
}

// handleFirehose streams completed measurements server-wide. The admin
// key sees everything and may filter by ?user=, ?src=, ?dst=; a user
// key is scoped to its own measurements (its user filter is forced).
// ?replay=K first serves up to K of the newest archived measurements
// matching the filters, then switches to live events, deduplicating
// measurements that landed in both.
func (a *API) handleFirehose(w http.ResponseWriter, r *http.Request) {
	b := a.reg.Broker()
	if b == nil {
		writeErr(w, ErrStreamDisabled)
		return
	}
	adminKey := r.Header.Get("X-Admin-Key")
	key := r.Header.Get("X-API-Key")
	isAdmin := a.reg.isAdmin(adminKey) || a.reg.isAdmin(key)
	owner := key
	if owner == "" {
		owner = adminKey
	}
	q := r.URL.Query()
	userF, srcF, dstF := q.Get("user"), q.Get("src"), q.Get("dst")
	if !isAdmin {
		u, err := a.reg.Authenticate(key)
		if err != nil {
			writeErr(w, err)
			return
		}
		// Owner scoping: a non-admin subscriber sees only its own
		// measurements, whatever filter it asked for.
		userF = u.Name
	}
	replay := 0
	if raw := q.Get("replay"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v < 0 {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad replay count"})
			return
		}
		replay = v
	}
	maxReplay := a.FirehoseReplay
	if maxReplay <= 0 {
		maxReplay = defaultFirehoseReplay
	}
	if replay > maxReplay {
		replay = maxReplay
	}

	filter := func(ev stream.Event) bool {
		if userF != "" && ev.User != userF {
			return false
		}
		if srcF != "" && ev.Src != srcF {
			return false
		}
		if dstF != "" && ev.Dst != dstF {
			return false
		}
		return true
	}
	// Subscribe live-only before scanning the archive: anything
	// published during the scan is both in the scan result and in the
	// ring, and the ID-based dedupe below drops the ring copy.
	sub, err := b.Subscribe(stream.Firehose, stream.SubOptions{Owner: owner, AfterID: -1, Filter: filter})
	if err != nil {
		writeErr(w, err)
		return
	}
	defer sub.Close()

	var prelude []stream.Event
	lastReplayed := -1
	for _, m := range a.reg.replayMeasurements(replay, userF, srcF, dstF) {
		prelude = append(prelude, stream.Event{
			Kind: stream.KindMeasurement, Job: -1,
			User: m.User, Src: m.Src, Dst: m.Dst, Status: m.Status,
			Result: m,
		})
		if m.ID > lastReplayed {
			lastReplayed = m.ID
		}
	}
	a.pumpFiltered(w, r, sub, prelude, func(ev stream.Event) bool {
		if ev.Kind != stream.KindMeasurement {
			return true
		}
		m, ok := ev.Result.(*Measurement)
		return !ok || m.ID > lastReplayed
	})
}

// pumpEvents drives one subscription to the client as NDJSON: prelude
// first, then buffered and live events, heartbeats while idle.
func (a *API) pumpEvents(w http.ResponseWriter, r *http.Request, sub *stream.Sub, prelude []stream.Event) {
	a.pumpFiltered(w, r, sub, prelude, nil)
}

// pumpFiltered is pumpEvents with a client-side admit predicate (nil
// admits everything), used by the firehose to drop live duplicates of
// replayed measurements. Skipped events still count as delivered in
// the subscription ledger — they were consumed, just not written.
func (a *API) pumpFiltered(w http.ResponseWriter, r *http.Request, sub *stream.Sub, prelude []stream.Event, admit func(stream.Event) bool) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)
	flush := func() {
		if fl != nil {
			fl.Flush()
		}
	}
	enc := json.NewEncoder(w)
	for _, ev := range prelude {
		if err := enc.Encode(ev); err != nil {
			return
		}
	}
	flush()

	hb := a.HeartbeatInterval
	if hb <= 0 {
		hb = defaultHeartbeat
	}
	ticker := time.NewTicker(hb)
	defer ticker.Stop()
	ctx := r.Context()
	for {
		ev, ok, err := sub.TryNext()
		switch {
		case err != nil:
			// ErrClosed: the stream terminated (the terminal end event,
			// if any, was already written) and the ring is drained.
			flush()
			return
		case ok:
			if admit != nil && !admit(ev) {
				continue
			}
			if err := enc.Encode(ev); err != nil {
				return
			}
			if ev.Kind == stream.KindEnd {
				flush()
				return
			}
			continue
		}
		flush()
		select {
		case <-ctx.Done():
			return
		case <-sub.Ready():
		case <-ticker.C:
			if _, err := io.WriteString(w, heartbeatLine); err != nil {
				return
			}
			flush()
		}
	}
}
