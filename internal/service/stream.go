// Streaming glue: the service face of internal/stream. EnableStream
// attaches a broker; batch measurements then publish hop-by-hop
// progress onto per-batch topics (through the StreamBackend /
// StreamAsyncBackend interfaces below), the scheduler's OnJob callback
// mirrors job lifecycle transitions onto the same topics, and every
// archived measurement — sync, batch, or NDT — lands on the server-wide
// firehose topic.
//
// Lock discipline: publishJobEvent runs under sched.mu (the scheduler
// invokes OnJob with its lock held), so it must never take r.mu — the
// broker is reached through an atomic pointer instead. The resulting
// global order gains sched.mu → stream broker locks, alongside the
// existing sched.mu → r.mu edge through TryCharge.
package service

import (
	"context"

	"revtr/internal/core"
	"revtr/internal/netsim/ipv4"
	"revtr/internal/sched"
	"revtr/internal/stream"
)

// StreamBackend is the optional progress-streaming measurement
// interface: a backend that can report typed progress events (hop
// reveals, technique fallbacks, VP failovers) while a blocking
// measurement runs. The sink is called from the measurement goroutine;
// it must not block.
type StreamBackend interface {
	MeasureStream(ctx context.Context, src core.Source, dst ipv4.Addr, sink func(stream.Event)) *core.Result
}

// StreamAsyncBackend is the asynchronous flavour: progress events flow
// to sink while the suspended measurement advances on probe-pool
// executors, and done receives the finished result exactly as in
// AsyncBackend.
type StreamAsyncBackend interface {
	//revtr:suspends starting a measurement parks it until the backend's completion callback fires
	MeasureAsyncStream(ctx context.Context, src core.Source, dst ipv4.Addr, sink func(stream.Event), done func(*core.Result))
}

// EnableStream attaches a progress broker to the registry: batch jobs
// start streaming hop reveals onto per-batch topics and archived
// measurements onto the firehose. The broker shares the registry's
// metric registry regardless of opts.Obs. Idempotent: a second call
// returns the already-attached broker. Enable before EnableBatch so
// the first batch streams from its first event.
func (r *Registry) EnableStream(opts stream.Options) *stream.Broker {
	opts.Obs = r.obs
	b := stream.New(opts)
	if r.broker.CompareAndSwap(nil, b) {
		return b
	}
	return r.broker.Load()
}

// Broker returns the attached stream broker, or nil when streaming was
// never enabled.
func (r *Registry) Broker() *stream.Broker { return r.broker.Load() }

// publishJobEvent is the scheduler's OnJob callback: mirror one job
// lifecycle transition onto its batch topic as a "state" event, and
// close the topic with an "end" event when the whole batch turns
// terminal. It runs under sched.mu, so the broker comes from the
// atomic pointer — taking r.mu here would deadlock against the
// sched.mu → r.mu order that TryCharge establishes.
func (r *Registry) publishJobEvent(ev sched.JobEvent) {
	b := r.broker.Load()
	if b == nil {
		return
	}
	se := stream.Event{
		Kind:  stream.KindState,
		Batch: ev.Batch,
		Job:   ev.Index,
		Src:   ev.Src.String(),
		Dst:   ev.Dst.String(),
		State: ev.State.String(),
	}
	if ev.Err != nil {
		se.Err = ev.Err.Error()
	}
	topicName := stream.BatchTopic(ev.Batch)
	b.Publish(topicName, se)
	if ev.BatchDone {
		b.Publish(topicName, stream.Event{
			Kind: stream.KindEnd, Batch: ev.Batch, Job: -1, Reason: "done",
		})
		b.Finish(topicName)
	}
}

// publishMeasurement puts one archived measurement on the firehose.
func (r *Registry) publishMeasurement(m *Measurement) {
	b := r.broker.Load()
	if b == nil {
		return
	}
	b.Publish(stream.Firehose, stream.Event{
		Kind:   stream.KindMeasurement,
		Job:    -1,
		User:   m.User,
		Src:    m.Src,
		Dst:    m.Dst,
		Status: m.Status,
		Result: m,
	})
}

// progressSink tags engine progress events with their batch
// coordinates and publishes them onto the batch topic. Nil when
// streaming is not enabled, so backends fall back to their
// non-streaming paths.
func (r *Registry) progressSink(job sched.JobRef) func(stream.Event) {
	b := r.broker.Load()
	if b == nil {
		return nil
	}
	topicName := stream.BatchTopic(job.Batch)
	return func(ev stream.Event) {
		ev.Batch = job.Batch
		ev.Job = job.Index
		b.Publish(topicName, ev)
	}
}

// replayMeasurements serves firehose replay-on-connect: up to k of the
// newest archived measurements matching the (empty = wildcard)
// user/src/dst filters, oldest first. The scan walks archive IDs
// downward from the newest, bounded by k matches and the archive's
// retention base.
func (r *Registry) replayMeasurements(k int, user, src, dst string) []*Measurement {
	if k <= 0 {
		return nil
	}
	var out []*Measurement
	base := r.archive.Base()
	for id := r.archive.NextID(); id > base && len(out) < k; id-- {
		var m Measurement
		ok, err := r.archive.Get(id-1, &m)
		if err != nil || !ok {
			continue
		}
		if user != "" && m.User != user {
			continue
		}
		if src != "" && m.Src != src {
			continue
		}
		if dst != "" && m.Dst != dst {
			continue
		}
		mm := m
		out = append(out, &mm)
	}
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// isAdmin checks the admin key. adminKey is immutable after
// construction, so no lock is needed.
func (r *Registry) isAdmin(key string) bool { return key != "" && key == r.adminKey }
