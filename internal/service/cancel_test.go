package service_test

import (
	"context"
	"testing"
	"time"

	"revtr/internal/atlas"
	"revtr/internal/core"
	"revtr/internal/measure"
	"revtr/internal/netsim/ipv4"
	"revtr/internal/service"
)

// blockingBackend simulates a slow topology: Measure blocks until its
// context is cancelled, then reports a failed measurement — the contract
// context-aware backends follow.
type blockingBackend struct {
	entered chan struct{} // signals a measurement is in flight
}

func (b *blockingBackend) RegisterSource(addr ipv4.Addr) (core.Source, error) {
	return core.Source{Agent: measure.Agent{Addr: addr}, Atlas: atlas.New(measure.Agent{Addr: addr})}, nil
}

func (b *blockingBackend) Measure(ctx context.Context, src core.Source, dst ipv4.Addr) *core.Result {
	select {
	case b.entered <- struct{}{}:
	default:
	}
	<-ctx.Done()
	return &core.Result{Src: src.Agent.Addr, Dst: dst, Status: core.StatusFailed}
}

func (b *blockingBackend) RefreshAtlas(core.Source) {}

// TestMeasureCancellationReleasesSlot: cancelling a request mid-
// measurement makes Registry.Measure return promptly with a failed
// measurement and releases the user's MaxParallel slot for the next
// request.
func TestMeasureCancellationReleasesSlot(t *testing.T) {
	bb := &blockingBackend{entered: make(chan struct{}, 1)}
	reg := service.NewRegistry(bb, "adm")
	u, err := reg.AddUser("adm", "carol", 1, 100) // exactly one parallel slot
	if err != nil {
		t.Fatal(err)
	}
	srcAddr, _ := ipv4.ParseAddr("10.0.0.1")
	if _, err := reg.RegisterSource(u.APIKey, srcAddr, false); err != nil {
		t.Fatal(err)
	}
	dst, _ := ipv4.ParseAddr("10.0.0.2")

	ctx, cancel := context.WithCancel(context.Background())
	type outcome struct {
		m   *service.Measurement
		err error
	}
	res := make(chan outcome, 1)
	go func() {
		m, err := reg.Measure(ctx, u.APIKey, srcAddr, dst)
		res <- outcome{m, err}
	}()

	<-bb.entered // the measurement holds the only slot and is blocked
	cancel()

	select {
	case o := <-res:
		if o.err != nil {
			t.Fatalf("cancelled measure errored: %v", o.err)
		}
		if o.m.Status != "failed" {
			t.Fatalf("status = %q, want failed", o.m.Status)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled measurement did not return promptly")
	}

	// The slot must be free again: a second measurement must get past the
	// quota check into the backend instead of ErrRateLimited.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel2()
	if _, err := reg.Measure(ctx2, u.APIKey, srcAddr, dst); err != nil {
		t.Fatalf("slot leaked after cancellation: %v", err)
	}
}

// TestMeasureDeadline: a context deadline bounds measurement wall time —
// the per-request timeout the HTTP layer builds from timeoutMs.
func TestMeasureDeadline(t *testing.T) {
	bb := &blockingBackend{entered: make(chan struct{}, 1)}
	reg := service.NewRegistry(bb, "adm")
	u, err := reg.AddUser("adm", "dave", 4, 100)
	if err != nil {
		t.Fatal(err)
	}
	srcAddr, _ := ipv4.ParseAddr("10.0.0.1")
	if _, err := reg.RegisterSource(u.APIKey, srcAddr, false); err != nil {
		t.Fatal(err)
	}
	dst, _ := ipv4.ParseAddr("10.0.0.2")

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	m, err := reg.Measure(ctx, u.APIKey, srcAddr, dst)
	if err != nil {
		t.Fatal(err)
	}
	if m.Status != "failed" {
		t.Fatalf("status = %q, want failed", m.Status)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("deadline did not bound measurement wall time")
	}
}
