package service_test

import (
	"context"
	"net/http"
	"sync"
	"testing"
	"time"

	"revtr"
	"revtr/internal/sched"
	"revtr/internal/service"
)

// TestSoakBatch pushes a 1000-job duplicate-heavy workload from three
// users through a live HTTP server (the `make soak` target) and checks
// the books: every submitted job lands in exactly one terminal state,
// done+coalesced+failed+shed balances the submission total, the
// coalescing and shed counters agree with the per-job ledger, quota
// charges stay within each user's daily budget, and the dispatch queue
// is empty afterwards.
func TestSoakBatch(t *testing.T) {
	cfg := revtr.DefaultConfig(300)
	cfg.Seed = 31
	cfg.Topology.Seed = 31
	d := revtr.Build(cfg)
	reg := service.NewRegistry(service.NewDeploymentBackend(d), "admin-secret")
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	sc := reg.EnableBatch(ctx, sched.Options{Workers: 6, QueueCap: 2048, Quantum: 3})
	ts := httptestServer(t, reg)

	srcHost := d.PickSourceHost(0)
	var all []string
	for i, h := range d.OnePerPrefix() {
		if h.AS != srcHost.AS {
			all = append(all, h.Addr.String())
		}
		if len(all) == 35 || i > 400 {
			break
		}
	}
	if len(all) < 15 {
		t.Fatalf("only %d destinations available", len(all))
	}
	// carol's destinations are disjoint from alice's and bob's so her
	// jobs cannot ride their flights: her tiny budget must actually shed.
	carolN := min(10, len(all)/3)
	dsts := all[:len(all)-carolN]       // shared by alice and bob
	carolDsts := all[len(all)-carolN:]

	// Three users; carol's tiny daily budget guarantees quota shedding
	// shows up in the books.
	budgets := map[string]int{"alice": 1000, "bob": 1000, "carol": 5}
	users := map[string]service.User{}
	for name, perDay := range budgets {
		u := decode[service.User](t, postJSON(t, ts+"/api/v1/users",
			map[string]string{"X-Admin-Key": "admin-secret"},
			map[string]any{"name": name, "maxPerDay": perDay}))
		users[name] = u
	}
	resp := postJSON(t, ts+"/api/v1/sources",
		map[string]string{"X-API-Key": users["alice"].APIKey},
		map[string]any{"addr": srcHost.Addr.String()})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("add source: %d", resp.StatusCode)
	}
	resp.Body.Close()

	// 1000 jobs: 2 batches per user, duplicate-heavy (25 unique dsts,
	// each user cycling through them from a different offset).
	const batchesPerUser, jobsPerBatch = 2, 167 // 3*2*167 = 1002
	var (
		mu       sync.Mutex
		wg       sync.WaitGroup
		batchIDs = map[string][]string{} // user -> batch ids
		total    int
	)
	i := 0
	for name, u := range users {
		i++
		wg.Add(1)
		go func(name, key string, offset int) {
			defer wg.Done()
			pool := dsts
			if name == "carol" {
				pool = carolDsts
			}
			for b := 0; b < batchesPerUser; b++ {
				var reqPairs []map[string]string
				for j := 0; j < jobsPerBatch; j++ {
					dst := pool[(offset+j)%len(pool)]
					reqPairs = append(reqPairs, map[string]string{
						"src": srcHost.Addr.String(), "dst": dst})
				}
				resp := postJSON(t, ts+"/api/v1/batch",
					map[string]string{"X-API-Key": key}, map[string]any{"pairs": reqPairs})
				if resp.StatusCode != http.StatusAccepted {
					t.Errorf("%s batch %d: status %d", name, b, resp.StatusCode)
					resp.Body.Close()
					return
				}
				st := decode[sched.BatchStatus](t, resp)
				mu.Lock()
				batchIDs[name] = append(batchIDs[name], st.ID)
				total += len(st.Jobs)
				mu.Unlock()
			}
		}(name, u.APIKey, i*7)
	}
	wg.Wait()
	if total != 3*batchesPerUser*jobsPerBatch {
		t.Fatalf("submitted %d jobs, want %d", total, 3*batchesPerUser*jobsPerBatch)
	}

	// Poll every batch to completion and tally terminal states.
	terminal := map[string]int{}
	accounted := 0
	deadline := time.Now().Add(60 * time.Second) //revtr:wallclock soak timeout
	for name, ids := range batchIDs {
		key := users[name].APIKey
		for _, id := range ids {
			for {
				if time.Now().After(deadline) { //revtr:wallclock soak timeout
					t.Fatalf("batch %s/%s never finished", name, id)
				}
				r, err := http.NewRequest("GET", ts+"/api/v1/batch/"+id, nil)
				if err != nil {
					t.Fatal(err)
				}
				r.Header.Set("X-API-Key", key)
				resp, err := http.DefaultClient.Do(r)
				if err != nil {
					t.Fatal(err)
				}
				st := decode[sched.BatchStatus](t, resp)
				if !st.Done {
					time.Sleep(10 * time.Millisecond)
					continue
				}
				for _, j := range st.Jobs {
					terminal[j.State]++
					accounted++
					switch j.State {
					case "done", "coalesced":
						if j.Result == nil {
							t.Errorf("terminal %s job without result", j.State)
						}
					case "failed", "shed":
						if j.Error == "" {
							t.Errorf("terminal %s job without error", j.State)
						}
					default:
						t.Errorf("non-terminal state %q in done batch", j.State)
					}
				}
				break
			}
		}
	}

	// The books must balance.
	if accounted != total {
		t.Fatalf("job conservation broken: %d submitted, %d accounted", total, accounted)
	}
	if n := terminal["done"] + terminal["coalesced"] + terminal["failed"] + terminal["shed"]; n != total {
		t.Fatalf("terminal states don't balance: %v vs total %d", terminal, total)
	}
	if terminal["coalesced"] == 0 {
		t.Fatal("duplicate-heavy soak coalesced nothing")
	}
	if terminal["shed"] == 0 {
		t.Fatal("carol's 5-job budget shed nothing")
	}
	o := reg.Obs()
	if got := o.Counter("sched_coalesced_total").Value(); got != uint64(terminal["coalesced"]) {
		t.Fatalf("sched_coalesced_total = %d, ledger says %d", got, terminal["coalesced"])
	}
	if got := o.Counter("sched_shed_total").Value(); got != uint64(terminal["shed"]) {
		t.Fatalf("sched_shed_total = %d, ledger says %d", got, terminal["shed"])
	}
	// Only leaders run measurements, and each ran at most once.
	if execs := o.Counter("service_batch_exec_total").Value(); execs > uint64(terminal["done"]+terminal["failed"]) {
		t.Fatalf("executor ran %d times for %d leader-terminal jobs",
			execs, terminal["done"]+terminal["failed"])
	}
	// Quota books: nobody overdrew, and carol hit her cap exactly.
	for name, perDay := range budgets {
		used := usedToday(reg, name)
		if used > int64(perDay) {
			t.Fatalf("%s overdrew quota: %d > %d", name, used, perDay)
		}
	}
	if used := usedToday(reg, "carol"); used != 5 {
		t.Fatalf("carol used %d, want her full budget of 5", used)
	}
	if depth := sc.QueueDepth(); depth != 0 {
		t.Fatalf("queue depth %d after soak", depth)
	}
	t.Logf("soak ledger: %v (execs=%d)", terminal, o.Counter("service_batch_exec_total").Value())
}
