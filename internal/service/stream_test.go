package service_test

// End-to-end tests for the streaming surface: following a batch over
// NDJSON, backpressure isolation (a stalled subscriber never delays
// the measurement pipeline), resume cursors, subscribe-after-done,
// revocation and shutdown terminating streams, and firehose scoping.

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"revtr"
	"revtr/internal/obs"
	"revtr/internal/sched"
	"revtr/internal/service"
	"revtr/internal/stream"
)

// wireEvent mirrors stream.Event's NDJSON encoding for decoding test
// streams; Result stays raw.
type wireEvent struct {
	ID     uint64          `json:"id"`
	Kind   string          `json:"kind"`
	Seq    uint64          `json:"seq"`
	Batch  string          `json:"batch"`
	Job    int             `json:"job"`
	User   string          `json:"user"`
	Src    string          `json:"src"`
	Dst    string          `json:"dst"`
	Hop    string          `json:"hop"`
	Tech   string          `json:"technique"`
	State  string          `json:"state"`
	Status string          `json:"status"`
	Reason string          `json:"reason"`
	Gap    uint64          `json:"gap"`
	Err    string          `json:"error"`
	Result json.RawMessage `json:"result"`
}

// streamServer is httptestServer with fast heartbeats so idle-stream
// tests don't wait the production 15s interval.
func streamServer(t *testing.T, reg *service.Registry) string {
	t.Helper()
	api := service.NewAPI(reg)
	api.HeartbeatInterval = 25 * time.Millisecond
	ts := httptest.NewServer(api)
	t.Cleanup(ts.Close)
	return ts.URL
}

// openStream starts an NDJSON stream and feeds decoded lines to a
// channel that closes when the stream ends. The returned cancel
// disconnects the client.
func openStream(t *testing.T, url string, headers map[string]string) (<-chan wireEvent, context.CancelFunc) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	req, err := http.NewRequestWithContext(ctx, "GET", url, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		t.Fatalf("stream %s: status %d", url, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		resp.Body.Close()
		t.Fatalf("stream content type %q", ct)
	}
	ch := make(chan wireEvent, 4096)
	go func() {
		defer close(ch)
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 0, 64<<10), 4<<20)
		for sc.Scan() {
			var ev wireEvent
			if json.Unmarshal(sc.Bytes(), &ev) == nil {
				ch <- ev
			}
		}
	}()
	return ch, cancel
}

// collectUntilEnd drains a stream channel until the terminal end event
// (heartbeats excluded), failing on timeout.
func collectUntilEnd(t *testing.T, ch <-chan wireEvent, timeout time.Duration) []wireEvent {
	t.Helper()
	var evs []wireEvent
	deadline := time.After(timeout)
	for {
		select {
		case ev, ok := <-ch:
			if !ok {
				t.Fatalf("stream closed before end event; got %d events", len(evs))
			}
			if ev.Kind == "heartbeat" {
				continue
			}
			evs = append(evs, ev)
			if ev.Kind == stream.KindEnd {
				return evs
			}
		case <-deadline:
			t.Fatalf("no end event within %v; got %d events", timeout, len(evs))
		}
	}
}

// nextEvent pulls one non-heartbeat event, failing on timeout or close.
func nextEvent(t *testing.T, ch <-chan wireEvent, timeout time.Duration) wireEvent {
	t.Helper()
	deadline := time.After(timeout)
	for {
		select {
		case ev, ok := <-ch:
			if !ok {
				t.Fatal("stream closed")
			}
			if ev.Kind == "heartbeat" {
				continue
			}
			return ev
		case <-deadline:
			t.Fatal("no event within timeout")
		}
	}
}

// deploymentRegistry builds a streaming registry over the simulated
// deployment with one user and one registered source.
func deploymentRegistry(t *testing.T, streamOpts stream.Options) (*service.Registry, *service.User, *revtr.Deployment) {
	t.Helper()
	cfg := revtr.DefaultConfig(300)
	cfg.Seed = 31
	cfg.Topology.Seed = 31
	d := revtr.Build(cfg)
	reg := service.NewRegistry(service.NewDeploymentBackend(d), "admin-secret")
	reg.EnableStream(streamOpts)
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	sc := reg.EnableBatch(ctx, sched.Options{Workers: 4})
	t.Cleanup(func() {
		cancel()
		_ = sc.Drain(context.Background())
	})
	u, err := reg.AddUser("admin-secret", "alice", 8, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.RegisterSource(u.APIKey, d.PickSourceHost(0).Addr, false); err != nil {
		t.Fatal(err)
	}
	return reg, u, d
}

// batchSpecs builds n unique src→dst jobs against the deployment.
func batchSpecs(t *testing.T, d *revtr.Deployment, n int) []sched.JobSpec {
	t.Helper()
	src := d.PickSourceHost(0)
	var sp []sched.JobSpec
	hosts := d.OnePerPrefix()
	for i := 0; len(sp) < n && i < len(hosts) && i < 200; i++ {
		if hosts[i].AS == src.AS {
			continue
		}
		sp = append(sp, sched.JobSpec{Src: src.Addr, Dst: hosts[i].Addr})
	}
	if len(sp) < n {
		t.Fatalf("only %d destinations available", len(sp))
	}
	return sp
}

// TestStreamBatchFollowHTTP follows a real batch over the wire: hop
// events stream while measurements run, job states transition, and the
// stream self-terminates with end/done. Then the resume cursor is
// exercised: reconnecting with Last-Event-ID replays only later events.
func TestStreamBatchFollowHTTP(t *testing.T) {
	reg, u, d := deploymentRegistry(t, stream.Options{SubBuffer: 2048, Replay: 2048})
	ts := streamServer(t, reg)

	st, err := reg.SubmitBatch(context.Background(), u.APIKey, batchSpecs(t, d, 3))
	if err != nil {
		t.Fatal(err)
	}
	ch, _ := openStream(t, ts+"/api/v1/batch/"+st.ID+"/events",
		map[string]string{"X-API-Key": u.APIKey})
	evs := collectUntilEnd(t, ch, 30*time.Second)

	last := evs[len(evs)-1]
	if last.Kind != stream.KindEnd || last.Reason != "done" {
		t.Fatalf("terminal event %s/%s, want end/done", last.Kind, last.Reason)
	}
	hops, terminal := 0, map[int]string{}
	var lastID uint64
	for _, ev := range evs {
		if ev.ID <= lastID {
			t.Fatalf("delivery IDs not increasing: %d after %d", ev.ID, lastID)
		}
		lastID = ev.ID
		switch ev.Kind {
		case stream.KindHop:
			hops++
			if ev.Hop == "" || ev.Tech == "" {
				t.Fatalf("hop event missing hop/technique: %+v", ev)
			}
			if ev.Batch != st.ID || ev.Job < 0 {
				t.Fatalf("hop event missing batch coordinates: %+v", ev)
			}
		case stream.KindState:
			if ev.State == "done" || ev.State == "failed" || ev.State == "coalesced" || ev.State == "shed" {
				terminal[ev.Job] = ev.State
			}
		}
	}
	if hops == 0 {
		t.Fatal("no hop events streamed")
	}
	if len(terminal) != len(st.Jobs) {
		t.Fatalf("terminal states for %d/%d jobs: %v", len(terminal), len(st.Jobs), terminal)
	}

	// Resume from the middle of the stream: only later events replay,
	// still terminated by the retained end event.
	mid := evs[len(evs)/2].ID
	ch2, _ := openStream(t, ts+"/api/v1/batch/"+st.ID+"/events",
		map[string]string{"X-API-Key": u.APIKey, "Last-Event-ID": strconv.FormatUint(mid, 10)})
	evs2 := collectUntilEnd(t, ch2, 10*time.Second)
	for _, ev := range evs2 {
		if ev.ID <= mid {
			t.Fatalf("resume after %d replayed event %d", mid, ev.ID)
		}
	}
	if evs2[len(evs2)-1].Kind != stream.KindEnd {
		t.Fatal("resumed stream not terminated")
	}
	if want := len(evs) - len(evs)/2 - 1; len(evs2) != want {
		t.Fatalf("resume replayed %d events, want %d", len(evs2), want)
	}

	// Authorization mirrors batch status: a stranger gets 404-shaped
	// errors, not someone else's progress.
	bob, err := reg.AddUser("admin-secret", "bob", 4, 100)
	if err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest("GET", ts+"/api/v1/batch/"+st.ID+"/events", nil)
	req.Header.Set("X-API-Key", bob.APIKey)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("foreign subscriber: status %d, want 404", resp.StatusCode)
	}
}

// TestStreamBackpressureStalledSubscriber: a subscriber that never
// consumes must not delay batch completion — its ring overflows,
// drop-oldest discards history, and on eventual drain it sees one gap
// event followed by the retained tail ending in end/done. The
// subscription ledger balances exactly: offered == delivered + dropped
// (+ buffered, zero after drain), with gaps accounted separately.
func TestStreamBackpressureStalledSubscriber(t *testing.T) {
	reg, bb, u, src := batchRegistry(t, 10000)
	broker := reg.EnableStream(stream.Options{SubBuffer: 8, Replay: 16})

	var last []int
	for i := 1; i <= 32; i++ {
		last = append(last, i)
	}
	st, err := reg.SubmitBatch(context.Background(), u.APIKey, pairs(src, last...))
	if err != nil {
		t.Fatal(err)
	}

	stalled, err := broker.Subscribe(stream.BatchTopic(st.ID), stream.SubOptions{Owner: u.APIKey})
	if err != nil {
		t.Fatal(err)
	}
	defer stalled.Close()

	// A live follower over HTTP shares the flood; it only has to stay
	// terminated, not lossless, with a ring of 8.
	ts := streamServer(t, reg)
	ch, _ := openStream(t, ts+"/api/v1/batch/"+st.ID+"/events",
		map[string]string{"X-API-Key": u.APIKey})

	start := time.Now() //revtr:wallclock test wall-clock bound
	close(bb.release)
	waitDone(t, reg, u.APIKey, st.ID)
	if el := time.Since(start); el > 5*time.Second { //revtr:wallclock test wall-clock bound
		t.Fatalf("batch with stalled subscriber took %v", el)
	}

	evs := collectUntilEnd(t, ch, 10*time.Second)
	if lastEv := evs[len(evs)-1]; lastEv.Reason != "done" {
		t.Fatalf("follower terminal reason %q", lastEv.Reason)
	}

	// Drain the stalled subscription after the fact: a single gap event
	// reports everything drop-oldest discarded, then the retained tail.
	var drained []stream.Event
	gaps := 0
	for {
		ev, ok, err := stalled.TryNext()
		if err != nil || !ok {
			break
		}
		drained = append(drained, ev)
		if ev.Kind == stream.KindGap {
			gaps++
			if ev.Gap == 0 {
				t.Fatal("gap event with zero count")
			}
			if len(drained) != 1 {
				t.Fatalf("gap event at position %d, want first", len(drained))
			}
		}
	}
	if gaps != 1 {
		t.Fatalf("%d gap events, want exactly 1", gaps)
	}
	if lastEv := drained[len(drained)-1]; lastEv.Kind != stream.KindEnd || lastEv.Reason != "done" {
		t.Fatalf("stalled drain terminal %s/%s, want end/done", lastEv.Kind, lastEv.Reason)
	}

	stats := stalled.Stats()
	if stats.Dropped == 0 {
		t.Fatal("stalled subscriber dropped nothing; backpressure untested")
	}
	if stats.Offered != stats.Delivered+stats.Dropped {
		t.Fatalf("ledger imbalance: offered %d != delivered %d + dropped %d",
			stats.Offered, stats.Delivered, stats.Dropped)
	}
	if stats.Buffered != 0 {
		t.Fatalf("%d events still buffered after drain", stats.Buffered)
	}
	if got := reg.Obs().Counter(obs.Label("stream_dropped_total", "reason", "slow-subscriber")).Value(); got < stats.Dropped {
		t.Fatalf("stream_dropped_total{slow-subscriber} = %d, want >= %d", got, stats.Dropped)
	}
}

// TestStreamSubscribeAfterDoneReplay: subscribing after completion
// while the topic's replay window survives serves the retained events,
// IDs intact, terminated by the retained end event.
func TestStreamSubscribeAfterDoneReplay(t *testing.T) {
	reg, bb, u, src := batchRegistry(t, 100)
	reg.EnableStream(stream.Options{Replay: 256})
	close(bb.release)

	st, err := reg.SubmitBatch(context.Background(), u.APIKey, pairs(src, 1, 2, 3))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, reg, u.APIKey, st.ID)

	ts := streamServer(t, reg)
	ch, _ := openStream(t, ts+"/api/v1/batch/"+st.ID+"/events",
		map[string]string{"X-API-Key": u.APIKey})
	evs := collectUntilEnd(t, ch, 10*time.Second)
	if evs[0].ID == 0 {
		t.Fatal("replayed events carry no delivery IDs; synthesized path taken instead")
	}
	terminal := map[int]bool{}
	for _, ev := range evs {
		if ev.Kind == stream.KindState && (ev.State == "done" || ev.State == "coalesced") {
			terminal[ev.Job] = true
		}
	}
	if len(terminal) != 3 {
		t.Fatalf("replay covered %d/3 jobs", len(terminal))
	}
}

// TestStreamSubscribeAfterDoneSynthesized: when nothing was retained —
// here the batch ran before EnableStream, so its topic never saw an
// event — a late subscriber still gets a complete, well-terminated
// stream synthesized from the status snapshot.
func TestStreamSubscribeAfterDoneSynthesized(t *testing.T) {
	reg, bb, u, src := batchRegistry(t, 100)
	close(bb.release)
	st, err := reg.SubmitBatch(context.Background(), u.APIKey, pairs(src, 1, 2, 3))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, reg, u.APIKey, st.ID)

	reg.EnableStream(stream.Options{})
	ts := streamServer(t, reg)
	ch, _ := openStream(t, ts+"/api/v1/batch/"+st.ID+"/events",
		map[string]string{"X-API-Key": u.APIKey})
	evs := collectUntilEnd(t, ch, 10*time.Second)
	if len(evs) != 4 {
		t.Fatalf("synthesized stream has %d events, want 3 states + end", len(evs))
	}
	for _, ev := range evs[:3] {
		if ev.Kind != stream.KindState || ev.ID != 0 {
			t.Fatalf("synthesized event %+v, want id-less state", ev)
		}
		if ev.State != "done" && ev.State != "coalesced" {
			t.Fatalf("synthesized state %q not terminal", ev.State)
		}
		if ev.Src == "" || ev.Dst == "" {
			t.Fatalf("synthesized event missing endpoints: %+v", ev)
		}
	}
	if last := evs[3]; last.Kind != stream.KindEnd || last.Reason != "done" {
		t.Fatalf("synthesized terminal %s/%s", last.Kind, last.Reason)
	}
}

// TestStreamRevokeEndsStream: revoking a user closes that user's live
// event streams with end/revoked. The parked batch keeps the stream
// open (heartbeats prove liveness) until the revocation lands.
func TestStreamRevokeEndsStream(t *testing.T) {
	reg, bb, u, src := batchRegistry(t, 100)
	reg.EnableStream(stream.Options{})
	ts := streamServer(t, reg)

	st, err := reg.SubmitBatch(context.Background(), u.APIKey, pairs(src, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	ch, _ := openStream(t, ts+"/api/v1/batch/"+st.ID+"/events",
		map[string]string{"X-API-Key": u.APIKey})

	// Jobs are parked behind the gate; consume the admission/running
	// states, then let a heartbeat or two prove the stream is idle-alive.
	seenHeartbeat := false
	deadline := time.After(5 * time.Second)
drain:
	for {
		select {
		case ev, ok := <-ch:
			if !ok {
				t.Fatal("stream closed before revocation")
			}
			if ev.Kind == "heartbeat" {
				seenHeartbeat = true
				break drain
			}
		case <-deadline:
			break drain
		}
	}
	if !seenHeartbeat {
		t.Fatal("no heartbeat on idle stream")
	}

	req, _ := http.NewRequest("DELETE", ts+"/api/v1/users/"+u.APIKey, nil)
	req.Header.Set("X-Admin-Key", "adm")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("revoke: %d", resp.StatusCode)
	}

	for {
		ev := nextEvent(t, ch, 5*time.Second)
		if ev.Kind == stream.KindEnd {
			if ev.Reason != "revoked" {
				t.Fatalf("end reason %q, want revoked", ev.Reason)
			}
			break
		}
	}
	close(bb.release)
}

// TestStreamShutdownEndsStreams: Broker.Shutdown terminates every live
// stream with end/shutdown, leaves no subscribers behind, and makes
// new subscriptions fail with 503.
func TestStreamShutdownEndsStreams(t *testing.T) {
	reg, bb, u, src := batchRegistry(t, 100)
	broker := reg.EnableStream(stream.Options{})
	ts := streamServer(t, reg)

	st, err := reg.SubmitBatch(context.Background(), u.APIKey, pairs(src, 1))
	if err != nil {
		t.Fatal(err)
	}
	ch, _ := openStream(t, ts+"/api/v1/batch/"+st.ID+"/events",
		map[string]string{"X-API-Key": u.APIKey})
	// Absorb the queued/running states so the terminal end is next.
	nextEvent(t, ch, 5*time.Second)

	broker.Shutdown()
	for {
		ev := nextEvent(t, ch, 5*time.Second)
		if ev.Kind == stream.KindEnd {
			if ev.Reason != "shutdown" {
				t.Fatalf("end reason %q, want shutdown", ev.Reason)
			}
			break
		}
	}
	// The handler returns on end; the body closes behind it.
	deadline := time.After(5 * time.Second)
waitClose:
	for {
		select {
		case _, ok := <-ch:
			if !ok {
				break waitClose
			}
		case <-deadline:
			t.Fatal("stream not closed after shutdown end event")
		}
	}
	if n := broker.Subscribers(); n != 0 {
		t.Fatalf("%d subscribers survive shutdown", n)
	}
	req, _ := http.NewRequest("GET", ts+"/api/v1/batch/"+st.ID+"/events", nil)
	req.Header.Set("X-API-Key", u.APIKey)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-shutdown subscribe: %d, want 503", resp.StatusCode)
	}
	close(bb.release)
}

// TestStreamFirehose: owner scoping (a user key sees only its own
// measurements regardless of requested filters), admin filtering by
// user/src/dst, replay-on-connect of archived measurements, and
// dedupe between the replayed prelude and the live feed.
func TestStreamFirehose(t *testing.T) {
	reg, alice, d := deploymentRegistry(t, stream.Options{})
	ts := streamServer(t, reg)
	bob, err := reg.AddUser("admin-secret", "bob", 8, 10000)
	if err != nil {
		t.Fatal(err)
	}

	src := d.PickSourceHost(0)
	specs := batchSpecs(t, d, 3)
	dstA, dstB, dstC := specs[0].Dst, specs[1].Dst, specs[2].Dst
	if _, err := reg.Measure(context.Background(), alice.APIKey, src.Addr, dstA); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Measure(context.Background(), bob.APIKey, src.Addr, dstB); err != nil {
		t.Fatal(err)
	}

	users := func(evs []wireEvent) map[string]int {
		out := map[string]int{}
		for _, ev := range evs {
			if ev.Kind != stream.KindMeasurement {
				t.Fatalf("firehose carried %q event", ev.Kind)
			}
			if len(ev.Result) == 0 {
				t.Fatalf("measurement event without result: %+v", ev)
			}
			out[ev.User]++
		}
		return out
	}
	replayed := func(url string, headers map[string]string, n int) []wireEvent {
		t.Helper()
		ch, cancel := openStream(t, url, headers)
		var evs []wireEvent
		for len(evs) < n {
			evs = append(evs, nextEvent(t, ch, 5*time.Second))
		}
		cancel()
		return evs
	}

	// Admin replay sees both users' archived measurements.
	got := users(replayed(ts+"/api/v1/firehose?replay=10",
		map[string]string{"X-Admin-Key": "admin-secret"}, 2))
	if got["alice"] != 1 || got["bob"] != 1 {
		t.Fatalf("admin replay saw %v", got)
	}
	// Admin filters: by user, and by dst.
	got = users(replayed(ts+"/api/v1/firehose?replay=10&user=alice",
		map[string]string{"X-Admin-Key": "admin-secret"}, 1))
	if got["alice"] != 1 || len(got) != 1 {
		t.Fatalf("user filter saw %v", got)
	}
	evs := replayed(ts+"/api/v1/firehose?replay=10&dst="+dstB.String(),
		map[string]string{"X-Admin-Key": "admin-secret"}, 1)
	if evs[0].Dst != dstB.String() {
		t.Fatalf("dst filter returned %s", evs[0].Dst)
	}
	// Owner scoping: bob asking for alice's traffic still sees only bob.
	got = users(replayed(ts+"/api/v1/firehose?replay=10&user=alice",
		map[string]string{"X-API-Key": bob.APIKey}, 1))
	if got["bob"] != 1 || len(got) != 1 {
		t.Fatalf("scoped replay saw %v", got)
	}
	// A stranger's key is rejected outright.
	req, _ := http.NewRequest("GET", ts+"/api/v1/firehose", nil)
	req.Header.Set("X-API-Key", "bogus")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("bogus firehose key: %d", resp.StatusCode)
	}

	// Replay→live handoff with dedupe: the two archived measurements
	// arrive once via replay; a fresh measurement then arrives once via
	// the live feed, not twice.
	ch, cancel := openStream(t, ts+"/api/v1/firehose?replay=10",
		map[string]string{"X-Admin-Key": "admin-secret"})
	nextEvent(t, ch, 5*time.Second)
	nextEvent(t, ch, 5*time.Second)
	if _, err := reg.Measure(context.Background(), alice.APIKey, src.Addr, dstC); err != nil {
		t.Fatal(err)
	}
	live := nextEvent(t, ch, 5*time.Second)
	if live.Kind != stream.KindMeasurement || live.Dst != dstC.String() || live.User != "alice" {
		t.Fatalf("live event %+v, want alice's %s measurement", live, dstC)
	}
	// Nothing else (in particular no duplicate of the replayed pair)
	// within a few heartbeats.
	select {
	case ev, ok := <-ch:
		if ok && ev.Kind != "heartbeat" {
			t.Fatalf("unexpected extra event %+v", ev)
		}
	case <-time.After(150 * time.Millisecond):
	}
	cancel()
}
