package service_test

// TestSoakStream runs the 1000-job duplicate-heavy soak with the full
// streaming surface attached: one HTTP follower per batch, concurrent
// firehose subscribers (admin plus user-scoped), and one permanently
// stalled subscriber parked on the busiest batch topic. It checks that
// streaming never interferes with the measurement pipeline (the soak
// completes inside the same deadline as the non-streaming soak), that
// every follower stream self-terminates with end/done, that firehose
// event accounting conserves (delivered measurements + gap counts ==
// executed measurements), that the stalled subscriber's ledger
// balances, and that no subscriber survives the teardown.

import (
	"context"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"revtr"
	"revtr/internal/obs"
	"revtr/internal/sched"
	"revtr/internal/service"
	"revtr/internal/stream"
)

func TestSoakStream(t *testing.T) {
	cfg := revtr.DefaultConfig(300)
	cfg.Seed = 31
	cfg.Topology.Seed = 31
	d := revtr.Build(cfg)
	reg := service.NewRegistry(service.NewDeploymentBackend(d), "admin-secret")
	// A deliberately small ring, smaller than the replay window: the
	// per-batch topics carry hundreds of events each, so any subscriber
	// that stalls (and the one below does, permanently) must overflow
	// and drop rather than grow — even when the simulated soak finishes
	// faster than the subscriber attaches and the flood arrives as
	// replay prefill.
	broker := reg.EnableStream(stream.Options{SubBuffer: 8, Replay: 64})
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	reg.EnableBatch(ctx, sched.Options{Workers: 6, QueueCap: 2048, Quantum: 3})
	ts := streamServer(t, reg)

	srcHost := d.PickSourceHost(0)
	var all []string
	for i, h := range d.OnePerPrefix() {
		if h.AS != srcHost.AS {
			all = append(all, h.Addr.String())
		}
		if len(all) == 30 || i > 400 {
			break
		}
	}
	if len(all) < 9 {
		t.Fatalf("only %d destinations available", len(all))
	}
	// Disjoint per-user destination pools: every user leads its own
	// flights, so the user-scoped firehose subscribers below each see
	// their own measurements rather than losing them to cross-user
	// coalescing.
	third := len(all) / 3
	pools := map[string][]string{
		"alice": all[:third], "bob": all[third : 2*third], "carol": all[2*third:],
	}

	users := map[string]service.User{}
	for _, name := range []string{"alice", "bob", "carol"} {
		u := decode[service.User](t, postJSON(t, ts+"/api/v1/users",
			map[string]string{"X-Admin-Key": "admin-secret"},
			map[string]any{"name": name, "maxPerDay": 1000}))
		users[name] = u
	}
	resp := postJSON(t, ts+"/api/v1/sources",
		map[string]string{"X-API-Key": users["alice"].APIKey},
		map[string]any{"addr": srcHost.Addr.String()})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("add source: %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Firehose subscribers attach before any job is submitted so the
	// admin one's accounting covers every executed measurement.
	type fhCount struct {
		meas, gaps atomic.Uint64
	}
	fhCounts := map[string]*fhCount{}
	fhDone := map[string]<-chan wireEvent{}
	fhCancel := []context.CancelFunc{}
	for name, hdr := range map[string]map[string]string{
		"admin": {"X-Admin-Key": "admin-secret"},
		"alice": {"X-API-Key": users["alice"].APIKey},
		"bob":   {"X-API-Key": users["bob"].APIKey},
	} {
		ch, cn := openStream(t, ts+"/api/v1/firehose", hdr)
		fhCancel = append(fhCancel, cn)
		c := &fhCount{}
		fhCounts[name] = c
		drained := make(chan wireEvent) // closed (never sent on) at stream end
		fhDone[name] = drained
		go func(name string) {
			defer close(drained)
			for ev := range ch {
				switch ev.Kind {
				case "heartbeat":
				case stream.KindGap:
					c.gaps.Add(ev.Gap)
				case stream.KindMeasurement:
					if name != "admin" && ev.User != name {
						t.Errorf("firehose subscriber %s saw %s's measurement", name, ev.User)
					}
					c.meas.Add(1)
				default:
					t.Errorf("firehose subscriber %s saw %q event", name, ev.Kind)
				}
			}
		}(name)
	}

	// Submit 6 duplicate-heavy batches (1002 jobs over 30 unique pairs)
	// and follow each over HTTP while it runs.
	const batchesPerUser, jobsPerBatch = 2, 167
	var (
		mu       sync.Mutex
		subWG    sync.WaitGroup
		batchIDs = map[string][]string{}
		total    int
	)
	submitOne := func(name, key string) bool {
		pool := pools[name]
		var reqPairs []map[string]string
		for j := 0; j < jobsPerBatch; j++ {
			reqPairs = append(reqPairs, map[string]string{
				"src": srcHost.Addr.String(), "dst": pool[j%len(pool)]})
		}
		resp := postJSON(t, ts+"/api/v1/batch",
			map[string]string{"X-API-Key": key}, map[string]any{"pairs": reqPairs})
		if resp.StatusCode != http.StatusAccepted {
			t.Errorf("%s batch: status %d", name, resp.StatusCode)
			resp.Body.Close()
			return false
		}
		st := decode[sched.BatchStatus](t, resp)
		mu.Lock()
		batchIDs[name] = append(batchIDs[name], st.ID)
		total += len(st.Jobs)
		mu.Unlock()
		return true
	}

	// Alice's first batch goes in synchronously so the stalled
	// subscriber can park on its topic as early as possible; whether the
	// batch is still live (hundreds of events flood the ring) or already
	// done (the 64-event replay window prefills it), the 8-slot ring
	// overflows either way.
	if !submitOne("alice", users["alice"].APIKey) {
		t.Fatal("first submission failed")
	}
	stalled, err := broker.Subscribe(stream.BatchTopic(batchIDs["alice"][0]),
		stream.SubOptions{Owner: "admin-secret"})
	if err != nil {
		t.Fatal(err)
	}

	for name, u := range users {
		first := 0
		if name == "alice" {
			first = 1 // batch 0 already submitted above
		}
		subWG.Add(1)
		go func(name, key string, first int) {
			defer subWG.Done()
			for b := first; b < batchesPerUser; b++ {
				if !submitOne(name, key) {
					return
				}
			}
		}(name, u.APIKey, first)
	}
	subWG.Wait()
	if total != 3*batchesPerUser*jobsPerBatch {
		t.Fatalf("submitted %d jobs, want %d", total, 3*batchesPerUser*jobsPerBatch)
	}

	// One follower per batch, each drained to its terminal end event.
	start := time.Now() //revtr:wallclock soak deadline
	type followResult struct {
		batch string
		evs   []wireEvent
	}
	results := make(chan followResult, 6)
	var followWG sync.WaitGroup
	for name, ids := range batchIDs {
		key := users[name].APIKey
		for _, id := range ids {
			followWG.Add(1)
			ch, _ := openStream(t, ts+"/api/v1/batch/"+id+"/events",
				map[string]string{"X-API-Key": key})
			go func(id string, ch <-chan wireEvent) {
				defer followWG.Done()
				var evs []wireEvent
				for ev := range ch {
					if ev.Kind == "heartbeat" {
						continue
					}
					evs = append(evs, ev)
				}
				// Channel closed: the handler wrote the end event,
				// released its subscription, and finished the response.
				results <- followResult{batch: id, evs: evs}
			}(id, ch)
		}
	}
	followDone := make(chan struct{})
	go func() { followWG.Wait(); close(followDone) }()
	select {
	case <-followDone:
	case <-time.After(90 * time.Second):
		t.Fatal("batch followers did not all terminate within 90s")
	}
	elapsed := time.Since(start) //revtr:wallclock soak deadline
	close(results)
	for fr := range results {
		if len(fr.evs) == 0 {
			t.Fatalf("batch %s follower saw no events", fr.batch)
		}
		last := fr.evs[len(fr.evs)-1]
		if last.Kind != stream.KindEnd || last.Reason != "done" {
			t.Fatalf("batch %s follower ended %s/%s", fr.batch, last.Kind, last.Reason)
		}
	}
	t.Logf("streamed soak: %d jobs done in %v with 10 live subscribers", total, elapsed)

	// Books: terminal-state conservation over the API, as in TestSoakBatch.
	terminal := map[string]int{}
	accounted := 0
	for name, ids := range batchIDs {
		key := users[name].APIKey
		for _, id := range ids {
			st, err := reg.BatchStatus(key, id)
			if err != nil {
				t.Fatal(err)
			}
			if !st.Done {
				t.Fatalf("batch %s/%s follower ended but batch not done", name, id)
			}
			for _, j := range st.Jobs {
				terminal[j.State]++
				accounted++
			}
		}
	}
	if accounted != total {
		t.Fatalf("job conservation broken: %d submitted, %d accounted", total, accounted)
	}
	execs := reg.Obs().Counter("service_batch_exec_total").Value()
	if execs == 0 {
		t.Fatal("no measurements executed")
	}

	// Firehose conservation: the admin subscriber attached before the
	// first submit, so every executed measurement was offered to it —
	// delivered directly or summarized in a gap. Drain-lag is bounded by
	// a settle deadline.
	adm := fhCounts["admin"]
	settle := time.Now().Add(10 * time.Second) //revtr:wallclock settle deadline
	for adm.meas.Load()+adm.gaps.Load() < execs && time.Now().Before(settle) { //revtr:wallclock settle deadline
		time.Sleep(10 * time.Millisecond)
	}
	if got := adm.meas.Load() + adm.gaps.Load(); got != execs {
		t.Fatalf("firehose accounting: %d delivered + gap events for %d executed measurements", got, execs)
	}
	if a, b := fhCounts["alice"].meas.Load(), fhCounts["bob"].meas.Load(); a == 0 || b == 0 {
		t.Fatalf("scoped firehose subscribers starved: alice=%d bob=%d", a, b)
	}
	for _, cn := range fhCancel {
		cn()
	}
	for name, done := range fhDone {
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatalf("firehose subscriber %s did not shut down", name)
		}
	}

	// The stalled subscriber: its topic flooded an 8-slot ring, so it
	// must have dropped, report the loss as one leading gap event, end
	// cleanly, and balance its ledger exactly.
	var gapEvents int
	var sawEnd bool
	first := true
	for {
		ev, ok, err := stalled.TryNext()
		if err != nil || !ok {
			break
		}
		if ev.Kind == stream.KindGap {
			gapEvents++
			if !first {
				t.Fatal("gap event not first in stalled drain")
			}
		}
		if ev.Kind == stream.KindEnd {
			sawEnd = true
		}
		first = false
	}
	if gapEvents != 1 {
		t.Fatalf("stalled subscriber saw %d gap events, want 1", gapEvents)
	}
	if !sawEnd {
		t.Fatal("stalled subscriber's retained tail lost the end event")
	}
	stats := stalled.Stats()
	if stats.Dropped == 0 {
		t.Fatal("stalled subscriber dropped nothing; ring bound untested")
	}
	if stats.Offered != stats.Delivered+stats.Dropped || stats.Buffered != 0 {
		t.Fatalf("stalled ledger imbalance: %+v", stats)
	}
	stalled.Close()

	if dropped := reg.Obs().Counter(obs.Label("stream_dropped_total", "reason", "slow-subscriber")).Value(); dropped < stats.Dropped {
		t.Fatalf("stream_dropped_total{slow-subscriber} = %d < stalled drops %d", dropped, stats.Dropped)
	}
	// A cancelled firehose client observes its disconnect before the
	// server handler runs its deferred unsubscribe; give teardown a
	// moment to settle instead of racing it.
	teardown := time.Now().Add(5 * time.Second) //revtr:wallclock teardown settle deadline
	for broker.Subscribers() != 0 && time.Now().Before(teardown) { //revtr:wallclock teardown settle deadline
		time.Sleep(5 * time.Millisecond)
	}
	if n := broker.Subscribers(); n != 0 {
		t.Fatalf("%d subscribers survive the soak teardown", n)
	}
	t.Logf("stream soak ledger: execs=%d admin meas=%d gaps=%d stalled=%+v",
		execs, adm.meas.Load(), adm.gaps.Load(), stats)
}
