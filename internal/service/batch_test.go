package service_test

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"revtr"
	"revtr/internal/atlas"
	"revtr/internal/core"
	"revtr/internal/measure"
	"revtr/internal/netsim/ipv4"
	"revtr/internal/obs"
	"revtr/internal/sched"
	"revtr/internal/service"
	"revtr/internal/store"
)

// gatedBackend holds every measurement until release is closed, then
// completes it. Lets tests park batch jobs in flight across ResetDay
// or a revocation.
type gatedBackend struct {
	entered chan struct{} // one tick per Measure entry
	release chan struct{} // close to let measurements finish
}

func (b *gatedBackend) RegisterSource(addr ipv4.Addr) (core.Source, error) {
	return core.Source{Agent: measure.Agent{Addr: addr}, Atlas: atlas.New(measure.Agent{Addr: addr})}, nil
}

func (b *gatedBackend) Measure(ctx context.Context, src core.Source, dst ipv4.Addr) *core.Result {
	select {
	case b.entered <- struct{}{}:
	default:
	}
	select {
	case <-b.release:
		return &core.Result{Src: src.Agent.Addr, Dst: dst, Status: core.StatusComplete}
	case <-ctx.Done():
		return &core.Result{Src: src.Agent.Addr, Dst: dst, Status: core.StatusFailed}
	}
}

func (b *gatedBackend) RefreshAtlas(core.Source) {}

// batchRegistry builds a registry over a gated backend with the batch
// scheduler enabled, one registered source, and one user.
func batchRegistry(t *testing.T, maxPerDay int) (*service.Registry, *gatedBackend, *service.User, ipv4.Addr) {
	t.Helper()
	bb := &gatedBackend{entered: make(chan struct{}, 1024), release: make(chan struct{})}
	reg := service.NewRegistry(bb, "adm")
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	sc := reg.EnableBatch(ctx, sched.Options{Workers: 4, QueueCap: 256})
	t.Cleanup(func() {
		cancel()
		_ = sc.Drain(context.Background())
	})
	u, err := reg.AddUser("adm", "alice", 4, maxPerDay)
	if err != nil {
		t.Fatal(err)
	}
	srcAddr, _ := ipv4.ParseAddr("10.0.0.1")
	if _, err := reg.RegisterSource(u.APIKey, srcAddr, false); err != nil {
		t.Fatal(err)
	}
	return reg, bb, u, srcAddr
}

func pairs(src ipv4.Addr, dstLast ...int) []sched.JobSpec {
	var sp []sched.JobSpec
	for _, n := range dstLast {
		dst, _ := ipv4.ParseAddr(fmt.Sprintf("10.0.1.%d", n))
		sp = append(sp, sched.JobSpec{Src: src, Dst: dst})
	}
	return sp
}

// waitDone polls a batch until every job is terminal.
func waitDone(t *testing.T, reg *service.Registry, key, id string) sched.BatchStatus {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second) //revtr:wallclock test timeout
	for {
		st, err := reg.BatchStatus(key, id)
		if err != nil {
			t.Fatalf("batch status: %v", err)
		}
		if st.Done {
			return st
		}
		if time.Now().After(deadline) { //revtr:wallclock test timeout
			t.Fatalf("batch %s never finished: %+v", id, st.Counts)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func usedToday(reg *service.Registry, user string) int64 {
	return reg.Obs().Gauge(obs.Label("service_user_used_today", "user", user)).Value()
}

// TestBatchQuotaChargedAtAdmissionOnly: the daily budget is charged
// when a job is admitted, only for jobs that drive their own
// measurement; duplicates and day-cache hits are free.
func TestBatchQuotaChargedAtAdmissionOnly(t *testing.T) {
	reg, bb, u, src := batchRegistry(t, 3)
	close(bb.release) // measurements complete immediately

	// 5 jobs, 2 unique pairs: 2 admitted (charged), 3 coalesced (free).
	st, err := reg.SubmitBatch(context.Background(), u.APIKey, pairs(src, 1, 1, 2, 2, 2))
	if err != nil {
		t.Fatal(err)
	}
	st = waitDone(t, reg, u.APIKey, st.ID)
	if st.Counts["done"] != 2 || st.Counts["coalesced"] != 3 {
		t.Fatalf("counts = %v, want 2 done + 3 coalesced", st.Counts)
	}
	if got := usedToday(reg, "alice"); got != 2 {
		t.Fatalf("used today = %d, want 2 (leaders only)", got)
	}

	// Same pairs again: all day-cache hits, still free.
	st2, err := reg.SubmitBatch(context.Background(), u.APIKey, pairs(src, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if st2.Counts["coalesced"] != 2 || !st2.Done {
		t.Fatalf("repeat batch not served from day cache: %v", st2.Counts)
	}
	if got := usedToday(reg, "alice"); got != 2 {
		t.Fatalf("cache hits charged quota: used = %d", got)
	}

	// New pairs past the remaining budget (1 of 3 left) shed with the
	// quota error; the admitted one still runs.
	st3, err := reg.SubmitBatch(context.Background(), u.APIKey, pairs(src, 3, 4, 5))
	if err != nil {
		t.Fatal(err)
	}
	st3 = waitDone(t, reg, u.APIKey, st3.ID)
	if st3.Counts["done"] != 1 || st3.Counts["shed"] != 2 {
		t.Fatalf("quota shed wrong: %v", st3.Counts)
	}
	for _, j := range st3.Jobs {
		if j.State == "shed" && !strings.Contains(j.Error, "quota") {
			t.Fatalf("shed job error %q does not name the quota", j.Error)
		}
	}
	if got := usedToday(reg, "alice"); got != 3 {
		t.Fatalf("used today = %d, want 3", got)
	}
}

// TestBatchResetDayNoDoubleCharge is the midnight regression: jobs
// admitted (and charged) before ResetDay complete after it without
// charging the new day's budget — completion never touches quota.
func TestBatchResetDayNoDoubleCharge(t *testing.T) {
	reg, bb, u, src := batchRegistry(t, 4)

	st, err := reg.SubmitBatch(context.Background(), u.APIKey, pairs(src, 1, 2, 3))
	if err != nil {
		t.Fatal(err)
	}
	if got := usedToday(reg, "alice"); got != 3 {
		t.Fatalf("admission charge = %d, want 3", got)
	}
	<-bb.entered // at least one measurement is parked in flight

	reg.ResetDay() // midnight: quotas roll while the queue is non-empty
	if got := usedToday(reg, "alice"); got != 0 {
		t.Fatalf("used today after reset = %d, want 0", got)
	}

	close(bb.release)
	st = waitDone(t, reg, u.APIKey, st.ID)
	if st.Counts["done"] != 3 {
		t.Fatalf("counts = %v, want 3 done", st.Counts)
	}
	// The old day's in-flight jobs completed without re-charging.
	if got := usedToday(reg, "alice"); got != 0 {
		t.Fatalf("completion double-charged the new day: used = %d", got)
	}
	// The whole new-day budget is available.
	st2, err := reg.SubmitBatch(context.Background(), u.APIKey, pairs(src, 11, 12, 13, 14))
	if err != nil {
		t.Fatal(err)
	}
	if st2.Counts["shed"] != 0 {
		t.Fatalf("new day budget partially consumed: %v", st2.Counts)
	}
	waitDone(t, reg, u.APIKey, st2.ID)
}

// TestBatchRevokeUserCancelsJobs: revoking a key fails its queued jobs
// and interrupts its running ones, and the key stops authenticating.
func TestBatchRevokeUserCancelsJobs(t *testing.T) {
	reg, bb, u, src := batchRegistry(t, 100)

	st, err := reg.SubmitBatch(context.Background(), u.APIKey, pairs(src, 1, 2, 3, 4, 5, 6, 7, 8))
	if err != nil {
		t.Fatal(err)
	}
	<-bb.entered // a measurement is parked in flight

	if err := reg.RevokeUser("wrong", u.APIKey); !errors.Is(err, service.ErrUnauthorized) {
		t.Fatalf("bad admin key revoked: %v", err)
	}
	if err := reg.RevokeUser("adm", u.APIKey); err != nil {
		t.Fatal(err)
	}
	if err := reg.RevokeUser("adm", u.APIKey); !errors.Is(err, service.ErrUnknownUser) {
		t.Fatalf("double revoke: %v", err)
	}
	close(bb.release)

	// The revoked key no longer authenticates, so the admin key reads
	// the batch.
	if _, err := reg.BatchStatus(u.APIKey, st.ID); !errors.Is(err, service.ErrUnauthorized) {
		t.Fatalf("revoked key still reads batches: %v", err)
	}
	fin := waitDone(t, reg, "adm", st.ID)
	if fin.Counts["failed"] != len(fin.Jobs) {
		t.Fatalf("counts after revoke = %v, want all failed", fin.Counts)
	}
	for _, j := range fin.Jobs {
		if !strings.Contains(j.Error, "revoked") {
			t.Fatalf("job error %q does not name revocation", j.Error)
		}
	}
	if _, err := reg.SubmitBatch(context.Background(), u.APIKey, pairs(src, 9)); !errors.Is(err, service.ErrUnauthorized) {
		t.Fatalf("revoked key still submits: %v", err)
	}
}

// TestBatchRestartRecoversArchive: batch measurements archived through
// a durable store survive a restart bit-identically and keep their IDs.
func TestBatchRestartRecoversArchive(t *testing.T) {
	dir := t.TempDir()
	arch, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	bb := &gatedBackend{entered: make(chan struct{}, 64), release: make(chan struct{})}
	close(bb.release)
	reg := service.NewRegistryWithArchive(bb, "adm", arch)
	ctx, cancel := context.WithCancel(context.Background())
	sc := reg.EnableBatch(ctx, sched.Options{Workers: 2})
	u, err := reg.AddUser("adm", "alice", 4, 100)
	if err != nil {
		t.Fatal(err)
	}
	src, _ := ipv4.ParseAddr("10.0.0.1")
	if _, err := reg.RegisterSource(u.APIKey, src, false); err != nil {
		t.Fatal(err)
	}
	st, err := reg.SubmitBatch(context.Background(), u.APIKey, pairs(src, 1, 2, 3, 4, 5))
	if err != nil {
		t.Fatal(err)
	}
	st = waitDone(t, reg, u.APIKey, st.ID)
	var before []service.Measurement
	for i := 0; i < 5; i++ {
		m, ok := reg.Get(i)
		if !ok {
			t.Fatalf("measurement %d missing before restart", i)
		}
		before = append(before, *m)
	}
	cancel()
	if err := sc.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := arch.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: a fresh registry over the same directory serves the same
	// measurement set, and new IDs continue after the recovered ones.
	arch2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer arch2.Close()
	reg2 := service.NewRegistryWithArchive(bb, "adm", arch2)
	for i, want := range before {
		got, ok := reg2.Get(i)
		if !ok {
			t.Fatalf("measurement %d lost in restart", i)
		}
		if fmt.Sprintf("%+v", *got) != fmt.Sprintf("%+v", want) {
			t.Fatalf("measurement %d changed across restart:\n%+v\n%+v", i, *got, want)
		}
	}
	if reg2.Stats().Measurements != 5 {
		t.Fatalf("recovered %d measurements", reg2.Stats().Measurements)
	}
	u2, err := reg2.AddUser("adm", "bob", 4, 100)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg2.RegisterSource(u2.APIKey, src, false); err != nil {
		t.Fatal(err)
	}
	m, err := reg2.Measure(context.Background(), u2.APIKey, src, mustAddr("10.0.2.9"))
	if err != nil {
		t.Fatal(err)
	}
	if m.ID != 5 {
		t.Fatalf("post-restart ID = %d, want 5", m.ID)
	}
}

func mustAddr(s string) ipv4.Addr {
	a, err := ipv4.ParseAddr(s)
	if err != nil {
		panic(err)
	}
	return a
}

// httptestServer serves an API over reg for the test's lifetime.
func httptestServer(t *testing.T, reg *service.Registry) string {
	t.Helper()
	ts := httptest.NewServer(service.NewAPI(reg))
	t.Cleanup(ts.Close)
	return ts.URL
}

// TestBatchHTTPFlow drives the REST surface end to end over the
// simulated deployment: submit a duplicate-heavy batch, poll to
// completion, check coalescing did the measurement work once per
// unique pair, and check ownership rules.
func TestBatchHTTPFlow(t *testing.T) {
	cfg := revtr.DefaultConfig(300)
	cfg.Seed = 31
	cfg.Topology.Seed = 31
	d := revtr.Build(cfg)
	reg := service.NewRegistry(service.NewDeploymentBackend(d), "admin-secret")
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	reg.EnableBatch(ctx, sched.Options{Workers: 4})
	ts := httptestServer(t, reg)

	alice := decode[service.User](t, postJSON(t, ts+"/api/v1/users",
		map[string]string{"X-Admin-Key": "admin-secret"},
		map[string]any{"name": "alice", "maxPerDay": 100}))
	bob := decode[service.User](t, postJSON(t, ts+"/api/v1/users",
		map[string]string{"X-Admin-Key": "admin-secret"},
		map[string]any{"name": "bob", "maxPerDay": 100}))

	srcHost := d.PickSourceHost(0)
	resp := postJSON(t, ts+"/api/v1/sources",
		map[string]string{"X-API-Key": alice.APIKey},
		map[string]any{"addr": srcHost.Addr.String()})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("add source: %d", resp.StatusCode)
	}
	resp.Body.Close()

	var dsts []string
	for i, h := range d.OnePerPrefix() {
		if h.AS != srcHost.AS {
			dsts = append(dsts, h.Addr.String())
		}
		if len(dsts) == 3 || i > 50 {
			break
		}
	}
	// 9 jobs over 3 unique pairs.
	var reqPairs []map[string]string
	for rep := 0; rep < 3; rep++ {
		for _, dst := range dsts {
			reqPairs = append(reqPairs, map[string]string{"src": srcHost.Addr.String(), "dst": dst})
		}
	}
	resp = postJSON(t, ts+"/api/v1/batch",
		map[string]string{"X-API-Key": alice.APIKey}, map[string]any{"pairs": reqPairs})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("batch submit: %d", resp.StatusCode)
	}
	st := decode[sched.BatchStatus](t, resp)
	if st.ID == "" || len(st.Jobs) != 9 {
		t.Fatalf("admission snapshot: %+v", st)
	}

	deadline := time.Now().Add(15 * time.Second) //revtr:wallclock test timeout
	for !st.Done {
		if time.Now().After(deadline) { //revtr:wallclock test timeout
			t.Fatalf("batch never finished: %v", st.Counts)
		}
		time.Sleep(5 * time.Millisecond)
		r, err := http.NewRequest("GET", ts+"/api/v1/batch/"+st.ID, nil)
		if err != nil {
			t.Fatal(err)
		}
		r.Header.Set("X-API-Key", alice.APIKey)
		resp, err := http.DefaultClient.Do(r)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("poll: %d", resp.StatusCode)
		}
		st = decode[sched.BatchStatus](t, resp)
	}
	if st.Counts["done"] != 3 || st.Counts["coalesced"] != 6 {
		t.Fatalf("counts = %v, want 3 done + 6 coalesced", st.Counts)
	}
	for _, j := range st.Jobs {
		if j.Result == nil {
			t.Fatalf("terminal job %d without result", j.Index)
		}
	}
	// The executor ran once per unique pair: the /metrics text carries
	// the batch exec counter.
	mresp, err := http.Get(ts + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(string(body), "service_batch_exec_total 3") {
		t.Fatalf("metrics missing 'service_batch_exec_total 3':\n%s", body)
	}

	// Ownership: bob cannot see alice's batch; a bogus key cannot see
	// anything; the admin key can.
	for _, tc := range []struct {
		key  string
		want int
	}{
		{bob.APIKey, http.StatusNotFound},
		{"bogus", http.StatusUnauthorized},
		{"admin-secret", http.StatusOK},
	} {
		r, _ := http.NewRequest("GET", ts+"/api/v1/batch/"+st.ID, nil)
		r.Header.Set("X-API-Key", tc.key)
		resp, err := http.DefaultClient.Do(r)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Fatalf("key %q: status %d, want %d", tc.key, resp.StatusCode, tc.want)
		}
	}

	// Revoke alice over HTTP; her key stops working.
	r, _ := http.NewRequest("DELETE", ts+"/api/v1/users/"+alice.APIKey, nil)
	r.Header.Set("X-Admin-Key", "admin-secret")
	dresp, err := http.DefaultClient.Do(r)
	if err != nil || dresp.StatusCode != http.StatusOK {
		t.Fatalf("revoke: %v %d", err, dresp.StatusCode)
	}
	dresp.Body.Close()
	resp = postJSON(t, ts+"/api/v1/batch",
		map[string]string{"X-API-Key": alice.APIKey}, map[string]any{"pairs": reqPairs})
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("revoked key submits: %d", resp.StatusCode)
	}
	resp.Body.Close()
}

// TestBatchPromotionChargesQuota: a subscriber promoted to flight
// leader after its leader's user is revoked runs a real measurement it
// never paid for at admission (it rode the flight as a free coalesced
// duplicate), so promotion charges its user's daily budget — and sheds
// the job with the quota error instead when that budget is exhausted,
// handing the flight to the next subscriber in line.
func TestBatchPromotionChargesQuota(t *testing.T) {
	bb := &gatedBackend{entered: make(chan struct{}, 64), release: make(chan struct{})}
	reg := service.NewRegistry(bb, "adm")
	ctx, cancel := context.WithCancel(context.Background())
	sc := reg.EnableBatch(ctx, sched.Options{Workers: 4, QueueCap: 64})
	t.Cleanup(func() {
		cancel()
		_ = sc.Drain(context.Background())
	})

	alice, err := reg.AddUser("adm", "alice", 4, 10)
	if err != nil {
		t.Fatal(err)
	}
	bob, err := reg.AddUser("adm", "bob", 4, 1) // budget of exactly 1
	if err != nil {
		t.Fatal(err)
	}
	carol, err := reg.AddUser("adm", "carol", 4, 10)
	if err != nil {
		t.Fatal(err)
	}
	src := mustAddr("10.0.0.1")
	if _, err := reg.RegisterSource(alice.APIKey, src, false); err != nil {
		t.Fatal(err)
	}

	// Bob burns his whole budget on a measurement of his own (parked in
	// flight behind the gate).
	stBobOwn, err := reg.SubmitBatch(context.Background(), bob.APIKey, pairs(src, 99))
	if err != nil {
		t.Fatal(err)
	}
	<-bb.entered
	// Alice leads the shared pair, in flight.
	if _, err := reg.SubmitBatch(context.Background(), alice.APIKey, pairs(src, 1)); err != nil {
		t.Fatal(err)
	}
	<-bb.entered
	// Bob, then carol, coalesce onto alice's flight — free at admission.
	stBobX, err := reg.SubmitBatch(context.Background(), bob.APIKey, pairs(src, 1))
	if err != nil {
		t.Fatal(err)
	}
	stCarolX, err := reg.SubmitBatch(context.Background(), carol.APIKey, pairs(src, 1))
	if err != nil {
		t.Fatal(err)
	}
	if got := usedToday(reg, "bob"); got != 1 {
		t.Fatalf("bob used = %d before revocation, want 1", got)
	}
	if got := usedToday(reg, "carol"); got != 0 {
		t.Fatalf("carol used = %d before revocation, want 0", got)
	}

	// Revoking alice interrupts her leader; promotion walks the
	// subscribers in admission order: bob first (broke — shed), then
	// carol (charged, runs the measurement).
	if err := reg.RevokeUser("adm", alice.APIKey); err != nil {
		t.Fatal(err)
	}
	close(bb.release)

	fin := waitDone(t, reg, bob.APIKey, stBobX.ID)
	if fin.Counts["shed"] != 1 {
		t.Fatalf("bob's coalesced job after promotion: %v, want shed", fin.Counts)
	}
	if !strings.Contains(fin.Jobs[0].Error, "quota") {
		t.Fatalf("bob's shed error %q does not name the quota", fin.Jobs[0].Error)
	}
	if got := usedToday(reg, "bob"); got != 1 {
		t.Fatalf("bob used = %d after failed promotion, want 1 (never charged)", got)
	}

	fin = waitDone(t, reg, carol.APIKey, stCarolX.ID)
	if fin.Counts["done"] != 1 {
		t.Fatalf("carol's promoted job: %v, want done", fin.Counts)
	}
	if got := usedToday(reg, "carol"); got != 1 {
		t.Fatalf("carol used = %d after promotion, want 1 (charged at promotion)", got)
	}

	// Bob's own measurement still completes normally.
	fin = waitDone(t, reg, bob.APIKey, stBobOwn.ID)
	if fin.Counts["done"] != 1 {
		t.Fatalf("bob's own job: %v, want done", fin.Counts)
	}
}

// TestBatchHTTPPairCap: POST /api/v1/batch rejects oversized
// submissions with 400 before allocating any scheduler state — the
// queue cap sheds jobs but cannot stop a single request from allocating
// millions of retained Job entries.
func TestBatchHTTPPairCap(t *testing.T) {
	reg, bb, u, src := batchRegistry(t, 100)
	close(bb.release)
	api := service.NewAPI(reg)
	api.MaxBatchPairs = 3
	ts := httptest.NewServer(api)
	t.Cleanup(ts.Close)

	var reqPairs []map[string]string
	for i := 1; i <= 4; i++ {
		reqPairs = append(reqPairs, map[string]string{
			"src": src.String(), "dst": fmt.Sprintf("10.0.1.%d", i)})
	}
	resp := postJSON(t, ts.URL+"/api/v1/batch",
		map[string]string{"X-API-Key": u.APIKey}, map[string]any{"pairs": reqPairs})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized batch: status %d, want 400", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "batch too large") {
		t.Fatalf("oversized batch error body %q", body)
	}

	// At the cap, the submission is accepted.
	resp = postJSON(t, ts.URL+"/api/v1/batch",
		map[string]string{"X-API-Key": u.APIKey}, map[string]any{"pairs": reqPairs[:3]})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("at-cap batch: status %d, want 202", resp.StatusCode)
	}
	st := decode[sched.BatchStatus](t, resp)
	waitDone(t, reg, u.APIKey, st.ID)
}
