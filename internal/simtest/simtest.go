// Package simtest assembles small simulated deployments for the unit
// tests of the measurement-layer packages (measure, atlas, ingress, core)
// without depending on the public revtr package.
package simtest

import (
	"testing"

	"revtr/internal/alias"
	"revtr/internal/measure"
	"revtr/internal/netsim/bgp"
	"revtr/internal/netsim/fabric"
	"revtr/internal/netsim/faults"
	"revtr/internal/netsim/topology"
	"revtr/internal/probe"
	"revtr/internal/vantage"
)

// Env is a ready-to-probe simulated Internet. Prober and Pool share one
// clock, so serial and pooled probing see the same virtual time.
type Env struct {
	Topo   *topology.Topology
	Fabric *fabric.Fabric
	Prober *measure.Prober
	Pool   *probe.Pool
	Sites  []measure.Agent
	Probes []*vantage.Probe
	Alias  *alias.Combined
}

// New builds an Env with n ASes, deterministic in seed.
func New(t testing.TB, n int, seed int64) *Env {
	t.Helper()
	cfg := topology.DefaultConfig(n)
	cfg.Seed = seed
	return NewWithConfig(t, cfg)
}

// NewFaulty is New with a fault plan attached to the fabric: the chaos
// harness entry point. plan may be nil (equivalent to New); a non-nil
// plan must Validate.
func NewFaulty(t testing.TB, n int, seed int64, plan *faults.Plan) *Env {
	t.Helper()
	if err := plan.Validate(); err != nil {
		t.Fatalf("simtest: invalid fault plan: %v", err)
	}
	env := New(t, n, seed)
	env.Fabric.SetFaults(plan)
	return env
}

// NewWithConfig builds an Env over a custom topology configuration
// (responsiveness/violator ablations).
func NewWithConfig(t testing.TB, cfg topology.Config) *Env {
	t.Helper()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("simtest: invalid topology config: %v", err)
	}
	seed := cfg.Seed
	topo := topology.Generate(cfg)
	routing := bgp.NewRouting(topo, bgp.DefaultTieBreak(seed), 64)
	fab := fabric.New(topo, routing, seed)
	sites := vantage.PlaceSites(topo, 12, vantage.Vintage2020, seed)
	agents := make([]measure.Agent, len(sites))
	for i, s := range sites {
		agents[i] = s.Agent
	}
	clock := measure.NewClock()
	return &Env{
		Topo:   topo,
		Fabric: fab,
		Prober: measure.NewProberWithClock(fab, clock),
		Pool:   probe.New(fab, clock, 0),
		Sites:  agents,
		Probes: vantage.PlaceProbes(topo, 60, 1_000_000, seed),
		Alias: &alias.Combined{
			Midar: alias.NewMidar(topo, 0.35, seed),
			SNMP:  alias.NewSNMP(topo, alias.SNMPConfig{}, seed),
		},
	}
}

// SourceHost returns the i'th host usable as a source.
func (e *Env) SourceHost(i int) *topology.Host {
	for hi := range e.Topo.Hosts {
		h := &e.Topo.Hosts[hi]
		if h.PingResponsive && h.RRResponsive && !e.Topo.ASes[h.AS].FiltersOptions {
			if i == 0 {
				return h
			}
			i--
		}
	}
	panic("simtest: no source host")
}

// Agent builds a measurement agent at host h.
func (e *Env) Agent(h *topology.Host) measure.Agent {
	return measure.AgentFromHost(e.Topo, h)
}

// ResponsiveHost returns the i'th RR-responsive host outside AS avoid.
func (e *Env) ResponsiveHost(i int, avoid topology.ASN) *topology.Host {
	for hi := range e.Topo.Hosts {
		h := &e.Topo.Hosts[hi]
		if h.PingResponsive && h.RRResponsive && h.AS != avoid {
			if i == 0 {
				return h
			}
			i--
		}
	}
	return nil
}
