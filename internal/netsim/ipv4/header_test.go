package ipv4

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func marshalPacket(h *Header, payload []byte) []byte {
	pkt := h.Marshal(nil)
	pkt = append(pkt, payload...)
	pkt[2] = byte(len(pkt) >> 8)
	pkt[3] = byte(len(pkt))
	SetChecksum(pkt)
	return pkt
}

func TestHeaderRoundTripPlain(t *testing.T) {
	h := Header{
		TOS: 0, ID: 0x1234, TTL: 64, Protocol: ProtoICMP,
		Src: MustParseAddr("1.2.3.4"), Dst: MustParseAddr("5.6.7.8"),
	}
	pkt := marshalPacket(&h, []byte{0xde, 0xad})
	var got Header
	payload, err := got.Decode(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if got.Src != h.Src || got.Dst != h.Dst || got.TTL != 64 || got.ID != 0x1234 {
		t.Errorf("decoded header mismatch: %+v", got)
	}
	if len(payload) != 2 || payload[0] != 0xde {
		t.Errorf("payload mismatch: %x", payload)
	}
	if !VerifyChecksum(pkt) {
		t.Error("checksum invalid after marshal")
	}
}

func TestHeaderRoundTripRR(t *testing.T) {
	h := Header{
		TTL: 32, Protocol: ProtoICMP,
		Src: MustParseAddr("10.0.0.1"), Dst: MustParseAddr("10.0.0.2"),
		HasRR: true,
	}
	h.RR.Slots = 9
	h.RR.N = 3
	h.RR.Routes[0] = MustParseAddr("1.1.1.1")
	h.RR.Routes[1] = MustParseAddr("2.2.2.2")
	h.RR.Routes[2] = MustParseAddr("3.3.3.3")
	pkt := marshalPacket(&h, nil)
	var got Header
	if _, err := got.Decode(pkt); err != nil {
		t.Fatal(err)
	}
	if !got.HasRR || got.RR.N != 3 || got.RR.Slots != 9 {
		t.Fatalf("RR mismatch: %+v", got.RR)
	}
	for i := 0; i < 3; i++ {
		if got.RR.Routes[i] != h.RR.Routes[i] {
			t.Errorf("route %d mismatch: %s != %s", i, got.RR.Routes[i], h.RR.Routes[i])
		}
	}
}

func TestHeaderRoundTripTS(t *testing.T) {
	h := Header{
		TTL: 32, Protocol: ProtoICMP,
		Src: MustParseAddr("10.0.0.1"), Dst: MustParseAddr("10.0.0.2"),
		HasTS: true,
	}
	h.TS.N = 2
	h.TS.Pairs[0] = TimestampPair{Addr: MustParseAddr("4.4.4.4"), Stamp: 111, Stamped: true}
	h.TS.Pairs[1] = TimestampPair{Addr: MustParseAddr("5.5.5.5")}
	pkt := marshalPacket(&h, nil)
	var got Header
	if _, err := got.Decode(pkt); err != nil {
		t.Fatal(err)
	}
	if !got.HasTS || got.TS.N != 2 {
		t.Fatalf("TS mismatch: %+v", got.TS)
	}
	if !got.TS.Pairs[0].Stamped || got.TS.Pairs[0].Stamp != 111 {
		t.Errorf("pair 0 mismatch: %+v", got.TS.Pairs[0])
	}
	if got.TS.Pairs[1].Stamped {
		t.Errorf("pair 1 should be unstamped")
	}
}

// TestHeaderRoundTripProperty fuzzes header fields and RR/TS population and
// checks encode→decode identity.
func TestHeaderRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 2000; i++ {
		h := Header{
			TOS:      uint8(rng.Intn(256)),
			ID:       uint16(rng.Intn(65536)),
			TTL:      uint8(1 + rng.Intn(255)),
			Protocol: ProtoICMP,
			Src:      Addr(rng.Uint32()),
			Dst:      Addr(rng.Uint32()),
		}
		if rng.Intn(2) == 0 {
			h.HasTS = true
			h.TS.N = 1 + rng.Intn(TSSlots)
			stamped := rng.Intn(h.TS.N + 1)
			for j := 0; j < h.TS.N; j++ {
				h.TS.Pairs[j].Addr = Addr(rng.Uint32())
				if j < stamped {
					h.TS.Pairs[j].Stamped = true
					h.TS.Pairs[j].Stamp = rng.Uint32()
				}
			}
		}
		// An RR option must fit alongside whatever TS option was chosen:
		// the 40-byte option area is shared.
		tsLen := 0
		if h.HasTS {
			tsLen = 4 + 8*h.TS.N
		}
		if maxSlots := (MaxOptionsLen - tsLen - 3) / 4; maxSlots >= 1 && rng.Intn(2) == 0 {
			if maxSlots > RRSlots {
				maxSlots = RRSlots
			}
			h.HasRR = true
			h.RR.Slots = 1 + rng.Intn(maxSlots)
			h.RR.N = rng.Intn(h.RR.Slots + 1)
			for j := 0; j < h.RR.N; j++ {
				h.RR.Routes[j] = Addr(rng.Uint32())
			}
		}
		pkt := marshalPacket(&h, nil)
		var got Header
		if _, err := got.Decode(pkt); err != nil {
			t.Fatalf("iter %d: decode: %v (header %+v)", i, err, h)
		}
		if got.Src != h.Src || got.Dst != h.Dst || got.TTL != h.TTL ||
			got.TOS != h.TOS || got.ID != h.ID {
			t.Fatalf("iter %d: fixed fields mismatch", i)
		}
		if got.HasRR != h.HasRR || got.HasTS != h.HasTS {
			t.Fatalf("iter %d: option presence mismatch", i)
		}
		if h.HasRR {
			if got.RR.N != h.RR.N || got.RR.Slots != h.RR.Slots {
				t.Fatalf("iter %d: RR shape mismatch: %+v vs %+v", i, got.RR, h.RR)
			}
			for j := 0; j < h.RR.N; j++ {
				if got.RR.Routes[j] != h.RR.Routes[j] {
					t.Fatalf("iter %d: RR route %d mismatch", i, j)
				}
			}
		}
		if h.HasTS {
			if got.TS.N != h.TS.N {
				t.Fatalf("iter %d: TS count mismatch", i)
			}
			for j := 0; j < h.TS.N; j++ {
				if got.TS.Pairs[j].Addr != h.TS.Pairs[j].Addr ||
					got.TS.Pairs[j].Stamped != h.TS.Pairs[j].Stamped {
					t.Fatalf("iter %d: TS pair %d mismatch", i, j)
				}
				if h.TS.Pairs[j].Stamped && got.TS.Pairs[j].Stamp != h.TS.Pairs[j].Stamp {
					t.Fatalf("iter %d: TS stamp %d mismatch", i, j)
				}
			}
		}
		if !VerifyChecksum(pkt) {
			t.Fatalf("iter %d: bad checksum", i)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	var h Header
	if _, err := h.Decode(nil); err != ErrTruncated {
		t.Errorf("nil: %v", err)
	}
	if _, err := h.Decode(make([]byte, 10)); err != ErrTruncated {
		t.Errorf("short: %v", err)
	}
	bad := make([]byte, 20)
	bad[0] = 6 << 4 // IPv6 version
	if _, err := h.Decode(bad); err != ErrBadVersion {
		t.Errorf("version: %v", err)
	}
	bad[0] = 4<<4 | 15 // claims 60-byte header but only 20 bytes present
	if _, err := h.Decode(bad); err != ErrBadHeaderLen {
		t.Errorf("hlen: %v", err)
	}
	bad[0] = 4<<4 | 3 // below minimum
	if _, err := h.Decode(bad); err != ErrBadHeaderLen {
		t.Errorf("hlen min: %v", err)
	}
}

func TestDecodeMalformedOptions(t *testing.T) {
	// RR option with a pointer past the option end must be rejected.
	h := Header{TTL: 1, Protocol: ProtoICMP, Src: 1, Dst: 2, HasRR: true}
	h.RR.Slots = 2
	pkt := marshalPacket(&h, nil)
	pkt[22] = 200 // pointer way out of range
	SetChecksum(pkt)
	var got Header
	if _, err := got.Decode(pkt); err != ErrBadOption {
		t.Errorf("bad pointer: %v", err)
	}
	// Option length overrunning the header must be rejected.
	pkt2 := marshalPacket(&h, nil)
	pkt2[21] = 100
	SetChecksum(pkt2)
	if _, err := got.Decode(pkt2); err != ErrBadOption {
		t.Errorf("overrun length: %v", err)
	}
}

func TestDecodeSkipsUnknownOptions(t *testing.T) {
	// Hand-build a header with an unknown option (type 0x94, len 4)
	// followed by padding, and confirm decode succeeds.
	pkt := make([]byte, 24)
	pkt[0] = 4<<4 | 6
	pkt[8] = 64
	pkt[9] = ProtoICMP
	pkt[20] = 0x94
	pkt[21] = 4
	pkt[2] = 0
	pkt[3] = 24
	SetChecksum(pkt)
	var got Header
	if _, err := got.Decode(pkt); err != nil {
		t.Fatalf("unknown option: %v", err)
	}
	if got.HasRR || got.HasTS {
		t.Error("phantom options decoded")
	}
}

func TestHeaderChecksumProperty(t *testing.T) {
	// The checksum of a header with its computed checksum installed
	// verifies; flipping any byte breaks it.
	f := func(src, dst uint32, ttl uint8) bool {
		h := Header{TTL: ttl | 1, Protocol: ProtoICMP, Src: Addr(src), Dst: Addr(dst)}
		pkt := marshalPacket(&h, nil)
		if !VerifyChecksum(pkt) {
			return false
		}
		pkt[16] ^= 0xff
		return !VerifyChecksum(pkt)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHeaderString(t *testing.T) {
	h := Header{Src: MustParseAddr("1.2.3.4"), Dst: MustParseAddr("5.6.7.8"), TTL: 9, Protocol: 1, HasRR: true}
	h.RR.Slots = 9
	if s := h.String(); s == "" {
		t.Error("empty String()")
	}
}
