package ipv4

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBuildEchoRequestDecodes(t *testing.T) {
	src, dst := MustParseAddr("1.1.1.1"), MustParseAddr("2.2.2.2")
	pkt := BuildEchoRequest(src, dst, 7, 3, 64, RRSlots, nil)
	if !VerifyChecksum(pkt) {
		t.Fatal("bad IP checksum")
	}
	var h Header
	payload, err := h.Decode(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if h.Src != src || h.Dst != dst || !h.HasRR || h.RR.Slots != RRSlots || h.RR.N != 0 {
		t.Fatalf("header mismatch: %+v", h)
	}
	var m ICMP
	if err := m.Decode(payload); err != nil {
		t.Fatal(err)
	}
	if m.Type != ICMPEchoRequest || m.ID != 7 || m.Seq != 3 {
		t.Fatalf("icmp mismatch: %+v", m)
	}
	if !VerifyICMPChecksum(payload) {
		t.Fatal("bad ICMP checksum")
	}
}

func TestFixedOffsetAccessors(t *testing.T) {
	src, dst := MustParseAddr("9.8.7.6"), MustParseAddr("1.2.3.4")
	pkt := BuildEchoRequest(src, dst, 1, 1, 33, 0, nil)
	if PacketSrc(pkt) != src || PacketDst(pkt) != dst || PacketTTL(pkt) != 33 || PacketProto(pkt) != ProtoICMP {
		t.Error("accessor mismatch")
	}
	if PacketHeaderLen(pkt) != HeaderLen {
		t.Errorf("header len = %d", PacketHeaderLen(pkt))
	}
}

func TestDecrementTTLKeepsChecksum(t *testing.T) {
	pkt := BuildEchoRequest(1, 2, 1, 1, 64, RRSlots, nil)
	for i := 0; i < 63; i++ {
		DecrementTTL(pkt)
		if !VerifyChecksum(pkt) {
			t.Fatalf("checksum broken at ttl %d", PacketTTL(pkt))
		}
	}
	if PacketTTL(pkt) != 1 {
		t.Errorf("ttl = %d", PacketTTL(pkt))
	}
}

func TestSetSrcDstKeepChecksum(t *testing.T) {
	f := func(a, b uint32) bool {
		pkt := BuildEchoRequest(111, 222, 1, 1, 64, 3, nil)
		SetPacketSrc(pkt, Addr(a))
		SetPacketDst(pkt, Addr(b))
		return PacketSrc(pkt) == Addr(a) && PacketDst(pkt) == Addr(b) && VerifyChecksum(pkt)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestStampRecordRouteNeverExceedsSlots is the central RR-option invariant:
// no matter how many routers stamp, at most Slots addresses are recorded
// and the checksum stays valid.
func TestStampRecordRouteNeverExceedsSlots(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for slots := 1; slots <= RRSlots; slots++ {
		pkt := BuildEchoRequest(1, 2, 1, 1, 64, slots, nil)
		stamped := 0
		for i := 0; i < 20; i++ {
			if StampRecordRoute(pkt, Addr(rng.Uint32())) {
				stamped++
			}
			if !VerifyChecksum(pkt) {
				t.Fatalf("slots=%d: checksum broken after stamp %d", slots, i)
			}
		}
		if stamped != slots {
			t.Errorf("slots=%d: stamped %d", slots, stamped)
		}
		var h Header
		if _, err := h.Decode(pkt); err != nil {
			t.Fatalf("slots=%d: decode: %v", slots, err)
		}
		if h.RR.N != slots {
			t.Errorf("slots=%d: decoded N=%d", slots, h.RR.N)
		}
		full, present := RecordRouteFull(pkt)
		if !present || !full {
			t.Errorf("slots=%d: full=%v present=%v", slots, full, present)
		}
	}
}

func TestStampRecordRouteOrder(t *testing.T) {
	pkt := BuildEchoRequest(1, 2, 1, 1, 64, RRSlots, nil)
	want := []Addr{100, 200, 300}
	for _, a := range want {
		if !StampRecordRoute(pkt, a) {
			t.Fatal("stamp refused")
		}
	}
	var h Header
	if _, err := h.Decode(pkt); err != nil {
		t.Fatal(err)
	}
	for i, a := range want {
		if h.RR.Routes[i] != a {
			t.Errorf("slot %d = %v, want %v", i, h.RR.Routes[i], a)
		}
	}
}

func TestStampRecordRouteNoOption(t *testing.T) {
	pkt := BuildEchoRequest(1, 2, 1, 1, 64, 0, nil)
	if StampRecordRoute(pkt, 42) {
		t.Error("stamped a packet with no RR option")
	}
	if _, present := RecordRouteFull(pkt); present {
		t.Error("RR reported present")
	}
}

// TestStampTimestampOrdering verifies tsprespec semantics: the second
// prespecified address can only stamp after the first has.
func TestStampTimestampOrdering(t *testing.T) {
	a1, a2 := Addr(10), Addr(20)
	pkt := BuildEchoRequest(1, 2, 1, 1, 64, 0, []Addr{a1, a2})
	if StampTimestamp(pkt, a2, 5) {
		t.Fatal("out-of-order stamp accepted")
	}
	if !StampTimestamp(pkt, a1, 5) {
		t.Fatal("first stamp refused")
	}
	if StampTimestamp(pkt, a1, 6) {
		t.Fatal("re-stamp of first address accepted")
	}
	if !StampTimestamp(pkt, a2, 7) {
		t.Fatal("second stamp refused after first")
	}
	if !VerifyChecksum(pkt) {
		t.Fatal("checksum broken")
	}
	var h Header
	if _, err := h.Decode(pkt); err != nil {
		t.Fatal(err)
	}
	if !h.TS.Pairs[0].Stamped || h.TS.Pairs[0].Stamp != 5 {
		t.Errorf("pair 0: %+v", h.TS.Pairs[0])
	}
	if !h.TS.Pairs[1].Stamped || h.TS.Pairs[1].Stamp != 7 {
		t.Errorf("pair 1: %+v", h.TS.Pairs[1])
	}
}

func TestEchoReplyCopiesOptions(t *testing.T) {
	src, dst := Addr(0x01010101), Addr(0x02020202)
	pkt := BuildEchoRequest(src, dst, 9, 1, 64, RRSlots, nil)
	// Simulate three forward hops stamping.
	for _, a := range []Addr{11, 12, 13} {
		StampRecordRoute(pkt, a)
	}
	reply := BuildEchoReply(pkt, dst, 64)
	if PacketSrc(reply) != dst || PacketDst(reply) != src {
		t.Fatal("reply addressing wrong")
	}
	if !VerifyChecksum(reply) {
		t.Fatal("reply checksum invalid")
	}
	var h Header
	payload, err := h.Decode(reply)
	if err != nil {
		t.Fatal(err)
	}
	if !h.HasRR || h.RR.N != 3 {
		t.Fatalf("options not copied: %+v", h.RR)
	}
	var m ICMP
	if err := m.Decode(payload); err != nil {
		t.Fatal(err)
	}
	if m.Type != ICMPEchoReply || m.ID != 9 {
		t.Fatalf("reply icmp: %+v", m)
	}
	if !VerifyICMPChecksum(payload) {
		t.Fatal("reply icmp checksum invalid")
	}
	// Reverse hops continue stamping in the copied option.
	if !StampRecordRoute(reply, 14) {
		t.Fatal("reverse stamp refused")
	}
	h = Header{}
	if _, err := h.Decode(reply); err != nil {
		t.Fatal(err)
	}
	if h.RR.N != 4 || h.RR.Routes[3] != 14 {
		t.Fatalf("reverse hop not recorded: %+v", h.RR)
	}
}

func TestTimeExceededEmbedsOriginal(t *testing.T) {
	src, dst := Addr(0x0a000001), Addr(0x0a000002)
	orig := BuildEchoRequest(src, dst, 0x4242, 5, 1, RRSlots, nil)
	router := Addr(0x0b000001)
	te := BuildTimeExceeded(orig, router, 64)
	if PacketSrc(te) != router || PacketDst(te) != src {
		t.Fatal("time-exceeded addressing wrong")
	}
	var h Header
	payload, err := h.Decode(te)
	if err != nil {
		t.Fatal(err)
	}
	if h.HasRR {
		t.Error("ICMP error must not carry options")
	}
	var m ICMP
	if err := m.Decode(payload); err != nil {
		t.Fatal(err)
	}
	if m.Type != ICMPTimeExceeded {
		t.Fatalf("type = %d", m.Type)
	}
	esrc, edst, eid, ok := EmbeddedOriginal(m.Payload)
	if !ok || esrc != src || edst != dst || eid != 0x4242 {
		t.Fatalf("embedded original mismatch: %v %v %v %v", esrc, edst, eid, ok)
	}
}

func TestDestUnreachable(t *testing.T) {
	orig := BuildEchoRequest(1, 2, 3, 4, 64, 0, nil)
	du := BuildDestUnreachable(orig, 99, 1, 64)
	var h Header
	payload, err := h.Decode(du)
	if err != nil {
		t.Fatal(err)
	}
	var m ICMP
	if err := m.Decode(payload); err != nil {
		t.Fatal(err)
	}
	if m.Type != ICMPDestUnreach || m.Code != 1 {
		t.Fatalf("icmp: %+v", m)
	}
}

func TestEmbeddedOriginalBad(t *testing.T) {
	if _, _, _, ok := EmbeddedOriginal([]byte{1, 2, 3}); ok {
		t.Error("accepted junk")
	}
}

func TestICMPChecksumOddLength(t *testing.T) {
	m := ICMP{Type: ICMPEchoRequest, ID: 1, Seq: 2, Payload: []byte{0xab}}
	b := m.Marshal(nil)
	if !VerifyICMPChecksum(b) {
		t.Error("odd-length checksum invalid")
	}
}

func BenchmarkStampRecordRoute(b *testing.B) {
	pkt := BuildEchoRequest(1, 2, 1, 1, 64, RRSlots, nil)
	tpl := make([]byte, len(pkt))
	copy(tpl, pkt)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		copy(pkt, tpl)
		StampRecordRoute(pkt, Addr(i))
	}
}

func BenchmarkHeaderDecode(b *testing.B) {
	pkt := BuildEchoRequest(1, 2, 1, 1, 64, RRSlots, nil)
	for _, a := range []Addr{11, 12, 13, 14, 15} {
		StampRecordRoute(pkt, a)
	}
	var h Header
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := h.Decode(pkt); err != nil {
			b.Fatal(err)
		}
	}
}
