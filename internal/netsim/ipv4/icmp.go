package ipv4

import (
	"encoding/binary"
)

// ICMP message types used by the simulator.
const (
	ICMPEchoReply      = 0
	ICMPDestUnreach    = 3
	ICMPEchoRequest    = 8
	ICMPTimeExceeded   = 11
	ICMPParamProblem   = 12
	icmpEchoHeaderLen  = 8
	icmpErrorHeaderLen = 8
)

// ICMP is a decoded ICMP message. For echo messages, ID/Seq are the echo
// identifiers and Payload the echo data. For error messages (time exceeded,
// destination unreachable), Payload carries the embedded original datagram
// (IP header + 8 bytes) per RFC 792.
type ICMP struct {
	Type    uint8
	Code    uint8
	ID      uint16
	Seq     uint16
	Payload []byte // aliases the decode input
}

// IsEcho reports whether the message is an echo request or reply.
func (m *ICMP) IsEcho() bool {
	return m.Type == ICMPEchoRequest || m.Type == ICMPEchoReply
}

// Marshal appends the encoded message, with checksum, to b.
func (m *ICMP) Marshal(b []byte) []byte {
	off := len(b)
	b = append(b, m.Type, m.Code, 0, 0)
	if m.IsEcho() {
		b = binary.BigEndian.AppendUint16(b, m.ID)
		b = binary.BigEndian.AppendUint16(b, m.Seq)
	} else {
		b = append(b, 0, 0, 0, 0) // unused
	}
	b = append(b, m.Payload...)
	ck := icmpChecksum(b[off:])
	binary.BigEndian.PutUint16(b[off+2:], ck)
	return b
}

// Decode parses an ICMP message from data into m. Payload aliases data.
func (m *ICMP) Decode(data []byte) error {
	if len(data) < icmpEchoHeaderLen {
		return ErrTruncated
	}
	m.Type = data[0]
	m.Code = data[1]
	if m.IsEchoType(data[0]) {
		m.ID = binary.BigEndian.Uint16(data[4:])
		m.Seq = binary.BigEndian.Uint16(data[6:])
	} else {
		m.ID, m.Seq = 0, 0
	}
	m.Payload = data[8:]
	return nil
}

// IsEchoType reports whether t is an echo request or reply type.
func (*ICMP) IsEchoType(t uint8) bool {
	return t == ICMPEchoRequest || t == ICMPEchoReply
}

func icmpChecksum(b []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(b); i += 2 {
		if i == 2 {
			continue
		}
		sum += uint32(binary.BigEndian.Uint16(b[i:]))
	}
	if len(b)%2 == 1 {
		sum += uint32(b[len(b)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// VerifyICMPChecksum reports whether the ICMP message bytes carry a valid
// checksum.
func VerifyICMPChecksum(b []byte) bool {
	if len(b) < 4 {
		return false
	}
	return icmpChecksum(b) == binary.BigEndian.Uint16(b[2:])
}
