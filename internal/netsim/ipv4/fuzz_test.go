package ipv4

import (
	"testing"
)

// Fuzz targets: the decoder must never panic or read out of bounds on
// arbitrary bytes, and whatever it accepts must re-encode losslessly.
// Run longer with: go test -fuzz=FuzzHeaderDecode ./internal/netsim/ipv4

func FuzzHeaderDecode(f *testing.F) {
	// Seed with real packets.
	f.Add(BuildEchoRequest(0x01020304, 0x05060708, 1, 1, 64, RRSlots, nil))
	f.Add(BuildEchoRequest(1, 2, 3, 4, 8, 0, []Addr{10, 20}))
	f.Add(BuildEchoRequest(1, 2, 3, 4, 8, 3, nil))
	te := BuildTimeExceeded(BuildEchoRequest(9, 8, 7, 6, 1, RRSlots, nil), 42, 64)
	f.Add(te)
	f.Add([]byte{})
	f.Add([]byte{0x45})

	f.Fuzz(func(t *testing.T, data []byte) {
		var h Header
		payload, err := h.Decode(data)
		if err != nil {
			return
		}
		// Anything accepted must satisfy basic invariants.
		if h.HasRR && (h.RR.N > h.RR.Slots || h.RR.Slots > RRSlots) {
			t.Fatalf("RR shape invalid: %+v", h.RR)
		}
		if h.HasTS && h.TS.N > TSSlots {
			t.Fatalf("TS shape invalid: %+v", h.TS)
		}
		if len(payload) > len(data) {
			t.Fatal("payload longer than input")
		}
		// Re-encode and re-decode: option contents must survive.
		re := h.Marshal(nil)
		var h2 Header
		if _, err := h2.Decode(re); err != nil {
			t.Fatalf("re-decode of re-encoded header failed: %v", err)
		}
		if h2.Src != h.Src || h2.Dst != h.Dst || h2.HasRR != h.HasRR || h2.HasTS != h.HasTS {
			t.Fatal("round trip changed header")
		}
		if h.HasRR && h2.RR.N != h.RR.N {
			t.Fatal("round trip changed RR count")
		}
	})
}

func FuzzICMPDecode(f *testing.F) {
	m := ICMP{Type: ICMPEchoRequest, ID: 7, Seq: 9, Payload: []byte{1, 2, 3}}
	f.Add(m.Marshal(nil))
	f.Add([]byte{11, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		var m ICMP
		if err := m.Decode(data); err != nil {
			return
		}
		if len(m.Payload) > len(data) {
			t.Fatal("payload longer than input")
		}
		// Round trip echo messages.
		if m.IsEcho() {
			re := m.Marshal(nil)
			var m2 ICMP
			if err := m2.Decode(re); err != nil {
				t.Fatalf("re-decode failed: %v", err)
			}
			if m2.Type != m.Type || m2.ID != m.ID || m2.Seq != m.Seq {
				t.Fatal("round trip changed echo header")
			}
		}
	})
}

func FuzzStampRecordRoute(f *testing.F) {
	f.Add(BuildEchoRequest(1, 2, 3, 4, 64, RRSlots, nil), uint32(0x0a000001))
	f.Add(BuildEchoRequest(1, 2, 3, 4, 64, 2, nil), uint32(7))

	f.Fuzz(func(t *testing.T, data []byte, addr uint32) {
		if len(data) < HeaderLen {
			return
		}
		// Normalize the header-length nibble so offsets stay in bounds,
		// then stamping must preserve decodability for valid packets.
		var h Header
		if _, err := h.Decode(data); err != nil {
			return
		}
		cp := append([]byte(nil), data...)
		StampRecordRoute(cp, Addr(addr))
		StampTimestamp(cp, Addr(addr), 123)
		var h2 Header
		if _, err := h2.Decode(cp); err != nil {
			t.Fatalf("packet undecodable after stamping: %v", err)
		}
	})
}
