package ipv4

import (
	"encoding/binary"
)

// This file contains the hot-path routines the simulated forwarding plane
// uses on serialized packets: fixed-offset accessors, in-place TTL
// decrement, and in-place Record Route / Timestamp stamping with
// incremental checksum updates (RFC 1624). Routers never decode a full
// Header while forwarding.

// PacketSrc reads the source address of a serialized IPv4 packet.
func PacketSrc(pkt []byte) Addr { return Addr(binary.BigEndian.Uint32(pkt[12:])) }

// PacketDst reads the destination address of a serialized IPv4 packet.
func PacketDst(pkt []byte) Addr { return Addr(binary.BigEndian.Uint32(pkt[16:])) }

// PacketTTL reads the TTL of a serialized IPv4 packet.
func PacketTTL(pkt []byte) uint8 { return pkt[8] }

// PacketProto reads the protocol of a serialized IPv4 packet.
func PacketProto(pkt []byte) uint8 { return pkt[9] }

// PacketHeaderLen returns the header length of a serialized IPv4 packet.
func PacketHeaderLen(pkt []byte) int { return int(pkt[0]&0x0f) * 4 }

// SetPacketSrc rewrites the source address in place, updating the checksum.
// The spoofing vantage points use this: "the request sent from a different
// vantage point than where the response is received" (Insight 1.3).
func SetPacketSrc(pkt []byte, a Addr) {
	old := binary.BigEndian.Uint32(pkt[12:])
	binary.BigEndian.PutUint32(pkt[12:], uint32(a))
	updateChecksum32(pkt, old, uint32(a))
}

// SetPacketDst rewrites the destination address in place, updating the
// checksum.
func SetPacketDst(pkt []byte, a Addr) {
	old := binary.BigEndian.Uint32(pkt[16:])
	binary.BigEndian.PutUint32(pkt[16:], uint32(a))
	updateChecksum32(pkt, old, uint32(a))
}

// DecrementTTL decrements the TTL in place with an incremental checksum
// update and reports the new TTL.
func DecrementTTL(pkt []byte) uint8 {
	oldWord := binary.BigEndian.Uint16(pkt[8:])
	pkt[8]--
	newWord := binary.BigEndian.Uint16(pkt[8:])
	updateChecksum16(pkt, oldWord, newWord)
	return pkt[8]
}

// SetChecksum recomputes and writes the header checksum of pkt.
func SetChecksum(pkt []byte) {
	hlen := PacketHeaderLen(pkt)
	binary.BigEndian.PutUint16(pkt[10:], HeaderChecksum(pkt[:hlen]))
}

// VerifyChecksum reports whether the header checksum of pkt is valid.
func VerifyChecksum(pkt []byte) bool {
	hlen := PacketHeaderLen(pkt)
	if hlen < HeaderLen || hlen > len(pkt) {
		return false
	}
	return HeaderChecksum(pkt[:hlen]) == binary.BigEndian.Uint16(pkt[10:])
}

// updateChecksum16 folds the replacement of a 16-bit word into the header
// checksum per RFC 1624: HC' = ~(~HC + ~m + m'). old and new must be the
// values of a word aligned to an even offset within the header.
func updateChecksum16(pkt []byte, old, new uint16) {
	hc := binary.BigEndian.Uint16(pkt[10:])
	sum := uint32(^hc) + uint32(^old) + uint32(new)
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	binary.BigEndian.PutUint16(pkt[10:], ^uint16(sum))
}

// patchHeaderBytes writes val into pkt[off:] (within the IP header, never
// overlapping the checksum field) and incrementally updates the header
// checksum. Option fields sit at odd offsets, so the patch is applied per
// aligned 16-bit word.
func patchHeaderBytes(pkt []byte, off int, val []byte) {
	start := off &^ 1
	end := (off + len(val) + 1) &^ 1
	for w := start; w < end; w += 2 {
		old := binary.BigEndian.Uint16(pkt[w:])
		for b := w; b < w+2 && b < len(pkt); b++ {
			if b >= off && b < off+len(val) {
				pkt[b] = val[b-off]
			}
		}
		updateChecksum16(pkt, old, binary.BigEndian.Uint16(pkt[w:]))
	}
}

func updateChecksum32(pkt []byte, old, new uint32) {
	updateChecksum16(pkt, uint16(old>>16), uint16(new>>16))
	updateChecksum16(pkt, uint16(old), uint16(new))
}

// findOption locates an option of the given type in the options area of a
// serialized packet and returns its offset within pkt, or -1.
func findOption(pkt []byte, typ uint8) int {
	hlen := PacketHeaderLen(pkt)
	for i := HeaderLen; i < hlen; {
		switch pkt[i] {
		case OptEnd:
			return -1
		case OptNOP:
			i++
		default:
			if pkt[i] == typ {
				return i
			}
			if i+1 >= hlen || pkt[i+1] < 2 {
				return -1
			}
			i += int(pkt[i+1])
		}
	}
	return -1
}

// StampRecordRoute writes addr into the next free Record Route slot of a
// serialized packet, in place, advancing the pointer and fixing the header
// checksum. It reports whether a slot was available. Packets without an RR
// option, and full RR options, are left untouched — a full option is
// forwarded unchanged, which is exactly what lets reverse hops accumulate
// after the forward path used fewer than 9 slots (§2).
func StampRecordRoute(pkt []byte, addr Addr) bool {
	o := findOption(pkt, OptRecordRoute)
	if o < 0 {
		return false
	}
	optLen, ptr := int(pkt[o+1]), int(pkt[o+2])
	if ptr+3 > optLen {
		return false // full
	}
	var val [4]byte
	binary.BigEndian.PutUint32(val[:], uint32(addr))
	patchHeaderBytes(pkt, o+ptr-1, val[:])
	patchHeaderBytes(pkt, o+2, []byte{uint8(ptr + 4)})
	return true
}

// RecordRouteFull reports whether the packet carries a Record Route option
// with no free slots (or no RR option at all, in which case it returns
// false, false).
func RecordRouteFull(pkt []byte) (full, present bool) {
	o := findOption(pkt, OptRecordRoute)
	if o < 0 {
		return false, false
	}
	return int(pkt[o+2])+3 > int(pkt[o+1]), true
}

// StampTimestamp implements tsprespec semantics on a serialized packet: if
// the prespecified address at the current pointer equals addr, the router
// writes ts and advances the pointer. "each IP address will record its
// timestamp only if previous addresses already recorded their timestamp"
// (§2). Reports whether a stamp was written.
func StampTimestamp(pkt []byte, addr Addr, ts uint32) bool {
	o := findOption(pkt, OptTimestamp)
	if o < 0 {
		return false
	}
	optLen, ptr := int(pkt[o+1]), int(pkt[o+2])
	if ptr+7 > optLen {
		return false // all pairs stamped
	}
	pos := o + ptr - 1
	if Addr(binary.BigEndian.Uint32(pkt[pos:])) != addr {
		return false
	}
	var val [4]byte
	binary.BigEndian.PutUint32(val[:], ts)
	patchHeaderBytes(pkt, pos+4, val[:])
	patchHeaderBytes(pkt, o+2, []byte{uint8(ptr + 8)})
	return true
}

// BuildEchoRequest serializes an ICMP echo request from src to dst with the
// given options. rrSlots of zero means no Record Route option; tsPairs nil
// means no Timestamp option.
func BuildEchoRequest(src, dst Addr, id, seq uint16, ttl uint8, rrSlots int, tsPairs []Addr) []byte {
	h := Header{
		TTL:      ttl,
		Protocol: ProtoICMP,
		ID:       id,
		Src:      src,
		Dst:      dst,
	}
	if rrSlots > 0 {
		h.HasRR = true
		h.RR.Slots = rrSlots
	}
	if len(tsPairs) > 0 {
		h.HasTS = true
		h.TS.N = len(tsPairs)
		for i, a := range tsPairs {
			h.TS.Pairs[i].Addr = a
		}
	}
	m := ICMP{Type: ICMPEchoRequest, ID: id, Seq: seq}
	pkt := h.Marshal(nil)
	pkt = m.Marshal(pkt)
	binary.BigEndian.PutUint16(pkt[2:], uint16(len(pkt)))
	SetChecksum(pkt)
	return pkt
}

// BuildEchoReply constructs the destination host's reply to a serialized
// echo request: source and destination are swapped, the TTL is reset, and —
// critically for Reverse Traceroute — the IP options are copied verbatim
// from the request, so a partially-filled Record Route option keeps
// accumulating addresses on the reverse path ("when the current hop replies
// ... it copies the IP options into the response", §2). replySrc is the
// address the destination answers from (usually the request destination,
// but non-stamping hosts may use an alias).
func BuildEchoReply(req []byte, replySrc Addr, ttl uint8) []byte {
	hlen := PacketHeaderLen(req)
	reply := make([]byte, len(req))
	copy(reply, req)
	binary.BigEndian.PutUint32(reply[12:], uint32(replySrc))
	binary.BigEndian.PutUint32(reply[16:], uint32(PacketSrc(req)))
	reply[8] = ttl
	// Flip the ICMP type from request to reply and fix its checksum.
	icmp := reply[hlen:]
	icmp[0] = ICMPEchoReply
	ck := icmpChecksum(icmp)
	binary.BigEndian.PutUint16(icmp[2:], ck)
	SetChecksum(reply)
	return reply
}

// BuildTimeExceeded constructs the ICMP time-exceeded error a router sends
// when TTL expires: addressed to the packet's source, originated from the
// router interface address from, embedding the original header + 8 payload
// bytes per RFC 792. Error messages carry no IP options — which is why
// traceroute reveals ingress interfaces while RR reveals other addresses
// (Fig 3).
func BuildTimeExceeded(orig []byte, from Addr, ttl uint8) []byte {
	hlen := PacketHeaderLen(orig)
	embed := hlen + 8
	if embed > len(orig) {
		embed = len(orig)
	}
	h := Header{
		TTL:      ttl,
		Protocol: ProtoICMP,
		Src:      from,
		Dst:      PacketSrc(orig),
	}
	m := ICMP{Type: ICMPTimeExceeded, Payload: orig[:embed]}
	pkt := h.Marshal(nil)
	pkt = m.Marshal(pkt)
	binary.BigEndian.PutUint16(pkt[2:], uint16(len(pkt)))
	SetChecksum(pkt)
	return pkt
}

// BuildDestUnreachable constructs an ICMP destination-unreachable error.
func BuildDestUnreachable(orig []byte, from Addr, code uint8, ttl uint8) []byte {
	hlen := PacketHeaderLen(orig)
	embed := hlen + 8
	if embed > len(orig) {
		embed = len(orig)
	}
	h := Header{
		TTL:      ttl,
		Protocol: ProtoICMP,
		Src:      from,
		Dst:      PacketSrc(orig),
	}
	m := ICMP{Type: ICMPDestUnreach, Code: code, Payload: orig[:embed]}
	pkt := h.Marshal(nil)
	pkt = m.Marshal(pkt)
	binary.BigEndian.PutUint16(pkt[2:], uint16(len(pkt)))
	SetChecksum(pkt)
	return pkt
}

// EmbeddedOriginal extracts the embedded original datagram header from an
// ICMP error payload, returning its source, destination and ID. Traceroute
// uses the ID to match time-exceeded errors to its probes.
func EmbeddedOriginal(errPayload []byte) (src, dst Addr, id uint16, ok bool) {
	var h Header
	if _, err := h.Decode(errPayload); err != nil {
		return 0, 0, 0, false
	}
	return h.Src, h.Dst, h.ID, true
}
