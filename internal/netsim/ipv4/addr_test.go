package ipv4

import (
	"testing"
	"testing/quick"
)

func TestParseAddr(t *testing.T) {
	cases := []struct {
		in   string
		want Addr
		ok   bool
	}{
		{"0.0.0.0", 0, true},
		{"255.255.255.255", 0xffffffff, true},
		{"10.0.0.1", 0x0a000001, true},
		{"192.168.1.254", 0xc0a801fe, true},
		{"1.2.3", 0, false},
		{"1.2.3.4.5", 0, false},
		{"256.0.0.1", 0, false},
		{"a.b.c.d", 0, false},
		{"-1.0.0.0", 0, false},
		{"", 0, false},
	}
	for _, c := range cases {
		got, err := ParseAddr(c.in)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("ParseAddr(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
		if !c.ok && err == nil {
			t.Errorf("ParseAddr(%q) succeeded; want error", c.in)
		}
	}
}

func TestAddrStringRoundTrip(t *testing.T) {
	f := func(a uint32) bool {
		addr := Addr(a)
		back, err := ParseAddr(addr.String())
		return err == nil && back == addr
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMustParseAddrPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParseAddr did not panic on bad input")
		}
	}()
	MustParseAddr("not an address")
}

func TestIsPrivate(t *testing.T) {
	private := []string{"10.0.0.1", "10.255.255.255", "172.16.0.1", "172.31.255.254", "192.168.0.1"}
	public := []string{"11.0.0.1", "172.15.0.1", "172.32.0.1", "192.169.0.1", "8.8.8.8"}
	for _, s := range private {
		if !MustParseAddr(s).IsPrivate() {
			t.Errorf("%s should be private", s)
		}
	}
	for _, s := range public {
		if MustParseAddr(s).IsPrivate() {
			t.Errorf("%s should be public", s)
		}
	}
}

func TestPrefix(t *testing.T) {
	p := MustParsePrefix("10.1.2.0/24")
	if p.String() != "10.1.2.0/24" {
		t.Errorf("String = %s", p.String())
	}
	if p.NumAddrs() != 256 {
		t.Errorf("NumAddrs = %d", p.NumAddrs())
	}
	if !p.Contains(MustParseAddr("10.1.2.200")) {
		t.Error("Contains failed for in-prefix address")
	}
	if p.Contains(MustParseAddr("10.1.3.0")) {
		t.Error("Contains succeeded for out-of-prefix address")
	}
	if got := p.Nth(5); got != MustParseAddr("10.1.2.5") {
		t.Errorf("Nth(5) = %s", got)
	}
}

func TestParsePrefixMasksHostBits(t *testing.T) {
	p := MustParsePrefix("10.1.2.77/24")
	if p.Addr != MustParseAddr("10.1.2.0") {
		t.Errorf("host bits not masked: %s", p.Addr)
	}
}

func TestParsePrefixErrors(t *testing.T) {
	for _, s := range []string{"10.0.0.0", "10.0.0.0/33", "10.0.0.0/-1", "banana/8", "10.0.0.0/x"} {
		if _, err := ParsePrefix(s); err == nil {
			t.Errorf("ParsePrefix(%q) succeeded; want error", s)
		}
	}
}

func TestMaskProperty(t *testing.T) {
	// Masking is idempotent and monotone in prefix length.
	f := func(a uint32, bits uint8) bool {
		b := bits % 33
		m := Addr(a).Mask(b)
		return m.Mask(b) == m && Prefix{Addr: m, Bits: b}.Contains(Addr(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNthPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Nth out of range did not panic")
		}
	}()
	MustParsePrefix("10.0.0.0/30").Nth(4)
}
