package ipv4

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Protocol numbers used by the simulator.
const (
	ProtoICMP = 1
)

// IPv4 option types (copied flag | class | number per RFC 791).
const (
	OptEnd         = 0  // end of option list
	OptNOP         = 1  // no-operation (padding)
	OptRecordRoute = 7  // record route
	OptTimestamp   = 68 // internet timestamp
)

// RRSlots is the number of address slots a maximally-sized Record Route
// option carries: the 40-byte option area holds type+len+ptr (3 bytes) plus
// nine 4-byte addresses, "which has space for up to nine addresses" (§2).
const RRSlots = 9

// TSSlots is the number of ⟨address, timestamp⟩ pairs a prespecified
// Timestamp option carries. RFC 791 allows the sender to specify up to four.
const TSSlots = 4

// TSFlagPrespec is the Timestamp option flag requesting timestamps only
// from prespecified addresses (tsprespec, the mode Reverse Traceroute uses).
const TSFlagPrespec = 3

const (
	// HeaderLen is the length of an IPv4 header without options.
	HeaderLen = 20
	// MaxOptionsLen is the size of the IPv4 options area.
	MaxOptionsLen = 40
	// MaxHeaderLen is the maximum IPv4 header length.
	MaxHeaderLen = HeaderLen + MaxOptionsLen
)

var (
	ErrTruncated     = errors.New("ipv4: truncated packet")
	ErrBadVersion    = errors.New("ipv4: not an IPv4 packet")
	ErrBadHeaderLen  = errors.New("ipv4: bad header length")
	ErrBadOption     = errors.New("ipv4: malformed option")
	ErrOptionMissing = errors.New("ipv4: option not present")
)

// RecordRoute is a decoded Record Route option. Routes[:N] holds the
// addresses recorded so far.
type RecordRoute struct {
	Routes [RRSlots]Addr
	N      int // number of recorded addresses
	Slots  int // total slots allocated in the option
}

// Full reports whether every allocated slot has been stamped.
func (rr *RecordRoute) Full() bool { return rr.N >= rr.Slots }

// Recorded returns the recorded addresses as a slice aliasing rr.
func (rr *RecordRoute) Recorded() []Addr { return rr.Routes[:rr.N] }

// TimestampPair is one ⟨prespecified address, timestamp⟩ entry of a
// tsprespec option.
type TimestampPair struct {
	Addr    Addr
	Stamp   uint32
	Stamped bool
}

// Timestamp is a decoded prespecified Timestamp option.
type Timestamp struct {
	Pairs [TSSlots]TimestampPair
	N     int // number of prespecified pairs present
}

// Header is a decoded IPv4 header. Decoding writes into the receiver
// without allocating, in the style of gopacket's DecodingLayer, so a single
// Header can be reused across millions of packets.
type Header struct {
	TOS      uint8
	TotalLen uint16
	ID       uint16
	TTL      uint8
	Protocol uint8
	Checksum uint16
	Src, Dst Addr

	HasRR bool
	RR    RecordRoute
	HasTS bool
	TS    Timestamp
}

// optionsLen computes the padded length of the options area for the
// configured options.
func (h *Header) optionsLen() int {
	n := 0
	if h.HasRR {
		n += 3 + 4*h.rrSlots()
	}
	if h.HasTS {
		n += 4 + 8*h.TS.N
	}
	// Pad to a multiple of 4 with NOPs.
	return (n + 3) &^ 3
}

func (h *Header) rrSlots() int {
	if h.RR.Slots == 0 {
		return RRSlots
	}
	return h.RR.Slots
}

// Len returns the encoded header length.
func (h *Header) Len() int { return HeaderLen + h.optionsLen() }

// Marshal appends the encoded header to b and returns the result. The
// caller appends the payload afterwards, writes the total length, and calls
// SetChecksum (BuildEchoRequest and friends do all three). Marshal panics
// if the configured options exceed the 40-byte option area — RR with 9
// slots and a 4-pair tsprespec option cannot coexist, matching real IPv4.
func (h *Header) Marshal(b []byte) []byte {
	if h.optionsLen() > MaxOptionsLen {
		panic("ipv4: options exceed 40-byte option area")
	}
	hlen := h.Len()
	off := len(b)
	for i := 0; i < hlen; i++ {
		b = append(b, 0)
	}
	hdr := b[off : off+hlen]
	hdr[0] = 4<<4 | uint8(hlen/4)
	hdr[1] = h.TOS
	binary.BigEndian.PutUint16(hdr[2:], h.TotalLen)
	binary.BigEndian.PutUint16(hdr[4:], h.ID)
	// flags+frag offset zero: the simulator never fragments.
	hdr[8] = h.TTL
	hdr[9] = h.Protocol
	binary.BigEndian.PutUint32(hdr[12:], uint32(h.Src))
	binary.BigEndian.PutUint32(hdr[16:], uint32(h.Dst))
	p := 20
	if h.HasRR {
		slots := h.rrSlots()
		optLen := 3 + 4*slots
		hdr[p] = OptRecordRoute
		hdr[p+1] = uint8(optLen)
		hdr[p+2] = uint8(4 + 4*h.RR.N) // pointer: 1-indexed first free octet
		for i := 0; i < h.RR.N; i++ {
			binary.BigEndian.PutUint32(hdr[p+3+4*i:], uint32(h.RR.Routes[i]))
		}
		p += optLen
	}
	if h.HasTS {
		optLen := 4 + 8*h.TS.N
		hdr[p] = OptTimestamp
		hdr[p+1] = uint8(optLen)
		ptr := 5
		for i := 0; i < h.TS.N; i++ {
			if h.TS.Pairs[i].Stamped {
				ptr = 5 + 8*(i+1)
			}
		}
		hdr[p+2] = uint8(ptr)
		hdr[p+3] = TSFlagPrespec // overflow=0, flag=3
		for i := 0; i < h.TS.N; i++ {
			binary.BigEndian.PutUint32(hdr[p+4+8*i:], uint32(h.TS.Pairs[i].Addr))
			binary.BigEndian.PutUint32(hdr[p+8+8*i:], h.TS.Pairs[i].Stamp)
		}
		p += optLen
	}
	for ; p < hlen; p++ {
		hdr[p] = OptNOP
	}
	return b
}

// Decode parses an IPv4 header from data into h, returning the payload
// (aliasing data) after the header. h is fully overwritten; no memory is
// retained beyond the call except the returned payload slice.
func (h *Header) Decode(data []byte) (payload []byte, err error) {
	if len(data) < HeaderLen {
		return nil, ErrTruncated
	}
	if data[0]>>4 != 4 {
		return nil, ErrBadVersion
	}
	hlen := int(data[0]&0x0f) * 4
	if hlen < HeaderLen || hlen > len(data) {
		return nil, ErrBadHeaderLen
	}
	h.TOS = data[1]
	h.TotalLen = binary.BigEndian.Uint16(data[2:])
	h.ID = binary.BigEndian.Uint16(data[4:])
	h.TTL = data[8]
	h.Protocol = data[9]
	h.Checksum = binary.BigEndian.Uint16(data[10:])
	h.Src = Addr(binary.BigEndian.Uint32(data[12:]))
	h.Dst = Addr(binary.BigEndian.Uint32(data[16:]))
	h.HasRR, h.HasTS = false, false
	h.RR = RecordRoute{}
	h.TS = Timestamp{}
	if err := h.decodeOptions(data[HeaderLen:hlen]); err != nil {
		return nil, err
	}
	if int(h.TotalLen) >= hlen && int(h.TotalLen) <= len(data) {
		return data[hlen:h.TotalLen], nil
	}
	return data[hlen:], nil
}

func (h *Header) decodeOptions(opts []byte) error {
	for i := 0; i < len(opts); {
		switch opts[i] {
		case OptEnd:
			return nil
		case OptNOP:
			i++
		case OptRecordRoute:
			if i+3 > len(opts) {
				return ErrBadOption
			}
			optLen := int(opts[i+1])
			ptr := int(opts[i+2])
			if optLen < 3 || i+optLen > len(opts) || (optLen-3)%4 != 0 || ptr < 4 {
				return ErrBadOption
			}
			h.HasRR = true
			h.RR.Slots = (optLen - 3) / 4
			if h.RR.Slots > RRSlots {
				return ErrBadOption
			}
			h.RR.N = (ptr - 4) / 4
			if h.RR.N > h.RR.Slots {
				return ErrBadOption
			}
			for j := 0; j < h.RR.N; j++ {
				h.RR.Routes[j] = Addr(binary.BigEndian.Uint32(opts[i+3+4*j:]))
			}
			i += optLen
		case OptTimestamp:
			if i+4 > len(opts) {
				return ErrBadOption
			}
			optLen := int(opts[i+1])
			ptr := int(opts[i+2])
			flag := opts[i+3] & 0x0f
			if optLen < 4 || i+optLen > len(opts) || flag != TSFlagPrespec || (optLen-4)%8 != 0 {
				return ErrBadOption
			}
			h.HasTS = true
			h.TS.N = (optLen - 4) / 8
			if h.TS.N > TSSlots {
				return ErrBadOption
			}
			stamped := (ptr - 5) / 8
			for j := 0; j < h.TS.N; j++ {
				h.TS.Pairs[j].Addr = Addr(binary.BigEndian.Uint32(opts[i+4+8*j:]))
				h.TS.Pairs[j].Stamp = binary.BigEndian.Uint32(opts[i+8+8*j:])
				h.TS.Pairs[j].Stamped = j < stamped
			}
			i += optLen
		default:
			// Unknown option: honor its length byte if plausible, else bail.
			if i+2 > len(opts) || opts[i+1] < 2 || i+int(opts[i+1]) > len(opts) {
				return ErrBadOption
			}
			i += int(opts[i+1])
		}
	}
	return nil
}

// Checksum computes the IPv4 header checksum over hdr (whose checksum
// field need not be zeroed; it is skipped).
func HeaderChecksum(hdr []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(hdr); i += 2 {
		if i == 10 {
			continue // checksum field
		}
		sum += uint32(binary.BigEndian.Uint16(hdr[i:]))
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// String summarizes the header for diagnostics.
func (h *Header) String() string {
	s := fmt.Sprintf("IPv4 %s -> %s ttl=%d proto=%d", h.Src, h.Dst, h.TTL, h.Protocol)
	if h.HasRR {
		s += fmt.Sprintf(" rr=%d/%d", h.RR.N, h.RR.Slots)
	}
	if h.HasTS {
		s += fmt.Sprintf(" ts=%d", h.TS.N)
	}
	return s
}
