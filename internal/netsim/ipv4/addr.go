// Package ipv4 implements the IPv4 wire formats the Reverse Traceroute
// system depends on: the IPv4 header, the Record Route and Timestamp IP
// options (RFC 791), and the ICMP messages used by ping and traceroute.
//
// The package is written in the style of high-throughput packet libraries:
// decoding writes into preallocated structs with no per-packet allocation,
// and the routines that routers use on the hot path (TTL decrement, option
// stamping) mutate serialized packets in place with incremental checksum
// updates (RFC 1624), so a simulated forwarding plane can push millions of
// packets without generating garbage.
package ipv4

import (
	"fmt"
	"strconv"
	"strings"
)

// Addr is an IPv4 address in host byte order. The zero Addr (0.0.0.0) is
// treated as "no address" throughout the simulator.
type Addr uint32

// MustParseAddr parses a dotted-quad address and panics on failure. It is
// intended for tests and static tables.
func MustParseAddr(s string) Addr {
	a, err := ParseAddr(s)
	if err != nil {
		panic(err)
	}
	return a
}

// ParseAddr parses a dotted-quad IPv4 address.
func ParseAddr(s string) (Addr, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return 0, fmt.Errorf("ipv4: invalid address %q", s)
	}
	var a uint32
	for _, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil || v < 0 || v > 255 {
			return 0, fmt.Errorf("ipv4: invalid address %q", s)
		}
		a = a<<8 | uint32(v)
	}
	return Addr(a), nil
}

// String renders the address as a dotted quad.
func (a Addr) String() string {
	var b [15]byte
	buf := strconv.AppendUint(b[:0], uint64(a>>24), 10)
	buf = append(buf, '.')
	buf = strconv.AppendUint(buf, uint64(a>>16&0xff), 10)
	buf = append(buf, '.')
	buf = strconv.AppendUint(buf, uint64(a>>8&0xff), 10)
	buf = append(buf, '.')
	buf = strconv.AppendUint(buf, uint64(a&0xff), 10)
	return string(buf)
}

// IsZero reports whether a is the unspecified address.
func (a Addr) IsZero() bool { return a == 0 }

// IsPrivate reports whether a falls in RFC 1918 space. Simulated routers
// configured to stamp private addresses draw from these ranges, and the
// IP-to-AS mapper refuses to map them, mirroring the paper's
// "private IP addresses (that cannot be mapped to ASes)" failure mode.
func (a Addr) IsPrivate() bool {
	switch {
	case a>>24 == 10: // 10.0.0.0/8
		return true
	case a>>20 == 0xac1: // 172.16.0.0/12
		return true
	case a>>16 == 0xc0a8: // 192.168.0.0/16
		return true
	}
	return false
}

// Prefix is an IPv4 CIDR prefix.
type Prefix struct {
	Addr Addr
	Bits uint8
}

// MustParsePrefix parses "a.b.c.d/len" and panics on failure.
func MustParsePrefix(s string) Prefix {
	p, err := ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}

// ParsePrefix parses "a.b.c.d/len".
func ParsePrefix(s string) (Prefix, error) {
	i := strings.IndexByte(s, '/')
	if i < 0 {
		return Prefix{}, fmt.Errorf("ipv4: invalid prefix %q", s)
	}
	a, err := ParseAddr(s[:i])
	if err != nil {
		return Prefix{}, err
	}
	bits, err := strconv.Atoi(s[i+1:])
	if err != nil || bits < 0 || bits > 32 {
		return Prefix{}, fmt.Errorf("ipv4: invalid prefix %q", s)
	}
	return Prefix{Addr: a.Mask(uint8(bits)), Bits: uint8(bits)}, nil
}

// Mask zeroes the host bits of a for a prefix of the given length.
func (a Addr) Mask(bits uint8) Addr {
	if bits >= 32 {
		return a
	}
	return a &^ (1<<(32-bits) - 1)
}

// Contains reports whether addr falls inside the prefix.
func (p Prefix) Contains(a Addr) bool { return a.Mask(p.Bits) == p.Addr }

// String renders the prefix in CIDR notation.
func (p Prefix) String() string {
	return p.Addr.String() + "/" + strconv.Itoa(int(p.Bits))
}

// NumAddrs returns the number of addresses covered by the prefix.
func (p Prefix) NumAddrs() uint64 { return 1 << (32 - p.Bits) }

// Nth returns the i'th address in the prefix. It panics if i is out of
// range; callers iterate within NumAddrs.
func (p Prefix) Nth(i uint64) Addr {
	if i >= p.NumAddrs() {
		panic("ipv4: address index out of prefix range")
	}
	return p.Addr + Addr(i)
}
