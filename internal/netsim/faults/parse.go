package faults

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"revtr/internal/netsim/ipv4"
)

// Parse builds a Plan from a compact spec string, the form the binaries'
// -fault-* flags and test fixtures use:
//
//	loss=0.01,icmp-frac=0.3,icmp-pass=0.5,flap=0.02,blackout=10.0.0.1@5s-20s,seed=42
//
// Keys: loss, icmp-frac, icmp-pass, icmp-epoch, icmp-burst, flap,
// flap-period, flap-down, blackout (repeatable, ADDR@FROM-TO with Go
// durations; TO of 0 means forever), seed. The empty string is the empty
// plan. The returned plan has been Validated: NaN, infinite, negative,
// or >1 rates are rejected as errors, never panics.
func Parse(spec string) (*Plan, error) {
	p := &Plan{}
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return nil, fmt.Errorf("faults: %q is not key=value", field)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		var err error
		switch key {
		case "loss":
			p.LinkLoss, err = parseRate(key, val)
		case "icmp-frac":
			p.ICMPFrac, err = parseRate(key, val)
		case "icmp-pass":
			p.ICMPPass, err = parseRate(key, val)
		case "icmp-epoch":
			p.ICMPEpochUS, err = parseDurUS(key, val)
		case "icmp-burst":
			p.ICMPBurstUS, err = parseDurUS(key, val)
		case "flap":
			p.FlapFrac, err = parseRate(key, val)
		case "flap-period":
			p.FlapPeriodUS, err = parseDurUS(key, val)
		case "flap-down":
			p.FlapDownUS, err = parseDurUS(key, val)
		case "blackout":
			var b Blackout
			b, err = parseBlackout(val)
			p.Blackouts = append(p.Blackouts, b)
		case "seed":
			p.Seed, err = strconv.ParseUint(val, 10, 64)
		default:
			return nil, fmt.Errorf("faults: unknown key %q", key)
		}
		if err != nil {
			return nil, err
		}
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustParse is Parse for compile-time-constant specs in tests.
func MustParse(spec string) *Plan {
	p, err := Parse(spec)
	if err != nil {
		panic(err)
	}
	return p
}

// String renders the plan back into Parse's spec syntax (canonical field
// order, defaults omitted), so specs round-trip.
func (p *Plan) String() string {
	if p == nil {
		return ""
	}
	var parts []string
	add := func(k string, v float64) {
		if v != 0 {
			parts = append(parts, fmt.Sprintf("%s=%v", k, v))
		}
	}
	addUS := func(k string, us int64) {
		if us != 0 {
			parts = append(parts, fmt.Sprintf("%s=%s", k, time.Duration(us)*time.Microsecond))
		}
	}
	add("loss", p.LinkLoss)
	add("icmp-frac", p.ICMPFrac)
	add("icmp-pass", p.ICMPPass)
	addUS("icmp-epoch", p.ICMPEpochUS)
	addUS("icmp-burst", p.ICMPBurstUS)
	add("flap", p.FlapFrac)
	addUS("flap-period", p.FlapPeriodUS)
	addUS("flap-down", p.FlapDownUS)
	for _, b := range p.Blackouts {
		parts = append(parts, fmt.Sprintf("blackout=%s@%s-%s", b.Addr,
			time.Duration(b.FromUS)*time.Microsecond, time.Duration(b.ToUS)*time.Microsecond))
	}
	if p.Seed != 0 {
		parts = append(parts, fmt.Sprintf("seed=%d", p.Seed))
	}
	return strings.Join(parts, ",")
}

func parseRate(key, val string) (float64, error) {
	v, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return 0, fmt.Errorf("faults: %s=%q: %v", key, val, err)
	}
	// Range and NaN checks happen in Validate, so the error message can
	// name the field regardless of how the plan was built.
	return v, nil
}

func parseDurUS(key, val string) (int64, error) {
	d, err := time.ParseDuration(val)
	if err != nil {
		return 0, fmt.Errorf("faults: %s=%q: %v", key, val, err)
	}
	return d.Microseconds(), nil
}

// parseBlackout parses ADDR@FROM-TO (durations; TO of 0 = forever).
func parseBlackout(val string) (Blackout, error) {
	addrStr, window, ok := strings.Cut(val, "@")
	if !ok {
		return Blackout{}, fmt.Errorf("faults: blackout=%q is not ADDR@FROM-TO", val)
	}
	addr, err := ipv4.ParseAddr(addrStr)
	if err != nil {
		return Blackout{}, fmt.Errorf("faults: blackout address %q: %v", addrStr, err)
	}
	fromStr, toStr, ok := strings.Cut(window, "-")
	if !ok {
		return Blackout{}, fmt.Errorf("faults: blackout window %q is not FROM-TO", window)
	}
	from, err := parseDurUS("blackout from", fromStr)
	if err != nil {
		return Blackout{}, err
	}
	to, err := parseDurUS("blackout to", toStr)
	if err != nil {
		return Blackout{}, err
	}
	return Blackout{Addr: addr, FromUS: from, ToUS: to}, nil
}
