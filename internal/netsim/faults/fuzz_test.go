package faults

import (
	"strings"
	"testing"
)

// FuzzParsePlan feeds arbitrary spec strings through the parser. The
// contract: Parse never panics, and any plan it accepts both passes
// Validate (NaN/negative/out-of-range rates are errors, not plans) and
// round-trips through String.
func FuzzParsePlan(f *testing.F) {
	for _, seed := range []string{
		"",
		"loss=0.01",
		"loss=0.01,icmp-frac=0.3,icmp-pass=0.5,flap=0.02,seed=42",
		"blackout=10.0.0.1@5s-20s",
		"blackout=10.0.0.1@0s-0s,blackout=10.0.0.2@1h-0s",
		"icmp-epoch=1s,icmp-burst=100ms",
		"flap-period=60s,flap-down=5s",
		"loss=NaN",
		"loss=-1",
		"loss=1e309",
		"icmp-burst=2s,icmp-epoch=1s",
		"seed=18446744073709551615",
		"blackout=@-",
		"loss=0.5,loss=0.25",
		" loss = 0.1 , flap = 0.2 ",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		p, err := Parse(spec)
		if err != nil {
			return
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("Parse(%q) accepted a plan Validate rejects: %v", spec, err)
		}
		// Accepted plans render to a canonical spec that re-parses to the
		// same canonical form.
		s := p.String()
		q, err := Parse(s)
		if err != nil {
			t.Fatalf("String() of accepted plan does not re-parse: %q: %v", s, err)
		}
		if q.String() != s {
			t.Fatalf("canonical form unstable: %q -> %q", s, q.String())
		}
		// Decision methods must not panic on accepted plans.
		_ = p.DropOnLink(1, 0, 1)
		_ = p.RateLimited(1, 0, 1)
		_ = p.LinkFlapped(1, 0)
		if strings.Contains(spec, "blackout") {
			for _, b := range p.Blackouts {
				_ = p.EndpointDown(b.Addr, b.FromUS)
			}
		}
	})
}
