package faults

import (
	"math"
	"testing"

	"revtr/internal/netsim/ipv4"
	"revtr/internal/netsim/topology"
)

// Two plans with equal fields must make identical decisions for every
// query — the determinism contract the chaos harness builds on.
func TestPlanDeterministic(t *testing.T) {
	mk := func() *Plan {
		return &Plan{Seed: 7, LinkLoss: 0.3, ICMPFrac: 0.5, ICMPPass: 0.4, FlapFrac: 0.2}
	}
	a, b := mk(), mk()
	for l := topology.LinkID(0); l < 200; l++ {
		for _, tUS := range []int64{0, 999, 150_000, 1_000_001, 61_000_000} {
			nonce := uint64(l)*0x9e37 + uint64(tUS)
			if a.DropOnLink(l, tUS, nonce) != b.DropOnLink(l, tUS, nonce) {
				t.Fatalf("DropOnLink diverged at link=%d t=%d", l, tUS)
			}
			if a.LinkFlapped(l, tUS) != b.LinkFlapped(l, tUS) {
				t.Fatalf("LinkFlapped diverged at link=%d t=%d", l, tUS)
			}
			r := topology.RouterID(l)
			if a.RateLimited(r, tUS, nonce) != b.RateLimited(r, tUS, nonce) {
				t.Fatalf("RateLimited diverged at router=%d t=%d", r, tUS)
			}
		}
	}
}

// Different seeds must produce different fault patterns (otherwise the
// seed parameter is dead).
func TestSeedChangesPattern(t *testing.T) {
	a := &Plan{Seed: 1, LinkLoss: 0.5}
	b := &Plan{Seed: 2, LinkLoss: 0.5}
	diff := 0
	for l := topology.LinkID(0); l < 500; l++ {
		if a.DropOnLink(l, 0, uint64(l)) != b.DropOnLink(l, 0, uint64(l)) {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("seeds 1 and 2 produced identical loss patterns")
	}
}

// A nil plan must answer every query negatively and absorb every
// mutation without panicking — the fabric hooks run unconditionally.
func TestNilPlanSafe(t *testing.T) {
	var p *Plan
	if p.DropOnLink(1, 0, 0) || p.RateLimited(1, 0, 0) || p.LinkFlapped(1, 0) ||
		p.EndpointDown(ipv4.MustParseAddr("10.0.0.1"), 0) {
		t.Fatal("nil plan injected a fault")
	}
	p.Record(KindLinkLoss) // must not panic
	p.SetObs(nil)
	if p.Count(KindLinkLoss) != 0 || p.Total() != 0 {
		t.Fatal("nil plan counted something")
	}
	if p.Enabled() {
		t.Fatal("nil plan claims to be enabled")
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("nil plan failed validation: %v", err)
	}
}

// Loss frequency should track the configured rate (law of large numbers
// over deterministic draws).
func TestLossRateApprox(t *testing.T) {
	p := &Plan{Seed: 3, LinkLoss: 0.25}
	drops := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if p.DropOnLink(topology.LinkID(i%97), int64(i)*1000, uint64(i)*0x9e3779b9) {
			drops++
		}
	}
	got := float64(drops) / n
	if math.Abs(got-0.25) > 0.02 {
		t.Fatalf("loss rate %.3f, want ~0.25", got)
	}
}

func TestRateLimitBurstWindow(t *testing.T) {
	p := &Plan{Seed: 5, ICMPFrac: 1, ICMPPass: 0}
	// Inside the burst window every reply passes, regardless of nonce.
	for n := uint64(0); n < 100; n++ {
		if p.RateLimited(3, 50_000, n) {
			t.Fatal("rate-limited inside the burst window")
		}
	}
	// After the burst, with ICMPPass=0 every reply is suppressed.
	for n := uint64(0); n < 100; n++ {
		if !p.RateLimited(3, 500_000, n) {
			t.Fatal("passed after burst with ICMPPass=0")
		}
	}
	// The next epoch's burst resets the bucket.
	if p.RateLimited(3, 1_050_000, 1) {
		t.Fatal("rate-limited inside the next epoch's burst window")
	}
}

func TestRateLimitFraction(t *testing.T) {
	// ICMPFrac=0.5: roughly half the routers limit; the rest never do.
	p := &Plan{Seed: 11, ICMPFrac: 0.5, ICMPPass: 0}
	limiting := 0
	const n = 2000
	for r := topology.RouterID(0); r < n; r++ {
		if p.RateLimited(r, 500_000, 1) {
			limiting++
		}
	}
	got := float64(limiting) / n
	if math.Abs(got-0.5) > 0.05 {
		t.Fatalf("limiting fraction %.3f, want ~0.5", got)
	}
}

func TestFlapWindows(t *testing.T) {
	p := &Plan{Seed: 9, FlapFrac: 1} // every link flaps
	if !p.LinkFlapped(4, 1_000_000) {
		t.Fatal("link not flapped inside the down window")
	}
	if p.LinkFlapped(4, DefaultFlapDownUS+1) {
		t.Fatal("link flapped after the down window")
	}
	// Next period: down again at its start.
	if !p.LinkFlapped(4, DefaultFlapPeriodUS+1000) {
		t.Fatal("link not flapped at the next period's start")
	}
}

func TestBlackoutWindows(t *testing.T) {
	a := ipv4.MustParseAddr("10.1.2.3")
	other := ipv4.MustParseAddr("10.1.2.4")
	p := (&Plan{}).AddBlackout(a, 1000, 5000)
	for _, tc := range []struct {
		addr ipv4.Addr
		tUS  int64
		want bool
	}{
		{a, 0, false}, {a, 999, false}, {a, 1000, true},
		{a, 4999, true}, {a, 5000, false}, {other, 2000, false},
	} {
		if got := p.EndpointDown(tc.addr, tc.tUS); got != tc.want {
			t.Fatalf("EndpointDown(%s, %d) = %v, want %v", tc.addr, tc.tUS, got, tc.want)
		}
	}
	// ToUS <= 0: outage never ends.
	forever := (&Plan{}).AddBlackout(a, 2000, 0)
	if forever.EndpointDown(a, 1999) {
		t.Fatal("down before the forever-outage starts")
	}
	if !forever.EndpointDown(a, 1<<60) {
		t.Fatal("forever outage ended")
	}
}

func TestRecordCounts(t *testing.T) {
	p := &Plan{}
	p.Record(KindLinkLoss)
	p.Record(KindLinkLoss)
	p.Record(KindFlap)
	if p.Count(KindLinkLoss) != 2 || p.Count(KindFlap) != 1 || p.Count(KindRateLimit) != 0 {
		t.Fatalf("counts: loss=%d flap=%d limit=%d", p.Count(KindLinkLoss), p.Count(KindFlap), p.Count(KindRateLimit))
	}
	if p.Total() != 3 {
		t.Fatalf("total=%d, want 3", p.Total())
	}
}

func TestValidateRejects(t *testing.T) {
	nan := math.NaN()
	for name, p := range map[string]*Plan{
		"nan loss":          {LinkLoss: nan},
		"inf pass":          {ICMPPass: math.Inf(1)},
		"negative frac":     {ICMPFrac: -0.1},
		"rate above one":    {FlapFrac: 1.5},
		"negative epoch":    {ICMPEpochUS: -1},
		"burst over epoch":  {ICMPEpochUS: 1000, ICMPBurstUS: 2000},
		"down over period":  {FlapPeriodUS: 1000, FlapDownUS: 2000},
		"negative blackout": {Blackouts: []Blackout{{FromUS: -5}}},
		"inverted blackout": {Blackouts: []Blackout{{FromUS: 10, ToUS: 5}}},
	} {
		if err := p.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", name, p)
		}
	}
	ok := &Plan{LinkLoss: 0.01, ICMPFrac: 1, ICMPPass: 1, FlapFrac: 0,
		Blackouts: []Blackout{{FromUS: 0, ToUS: 0}}}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid plan rejected: %v", err)
	}
}

func TestParseRoundTrip(t *testing.T) {
	spec := "loss=0.01,icmp-frac=0.3,icmp-pass=0.5,flap=0.02,blackout=10.0.0.1@5s-20s,seed=42"
	p := MustParse(spec)
	if p.LinkLoss != 0.01 || p.ICMPFrac != 0.3 || p.ICMPPass != 0.5 || p.FlapFrac != 0.02 || p.Seed != 42 {
		t.Fatalf("parsed fields wrong: %+v", p)
	}
	if len(p.Blackouts) != 1 || p.Blackouts[0].FromUS != 5_000_000 || p.Blackouts[0].ToUS != 20_000_000 {
		t.Fatalf("blackout wrong: %+v", p.Blackouts)
	}
	q, err := Parse(p.String())
	if err != nil {
		t.Fatalf("re-parse of %q: %v", p.String(), err)
	}
	if q.String() != p.String() {
		t.Fatalf("round trip: %q != %q", q.String(), p.String())
	}
}

func TestParseErrors(t *testing.T) {
	for _, spec := range []string{
		"loss",                        // not key=value
		"bogus=1",                     // unknown key
		"loss=NaN",                    // rejected by Validate
		"loss=-1",                     // out of range
		"loss=2",                      // out of range
		"icmp-burst=2s,icmp-epoch=1s", // burst over epoch
		"blackout=10.0.0.1",           // missing window
		"blackout=notanip@0s-1s",
		"blackout=10.0.0.1@9s-4s", // inverted
		"seed=notanumber",
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted", spec)
		}
	}
	if p, err := Parse(""); err != nil || p.Enabled() {
		t.Errorf("empty spec: plan=%+v err=%v", p, err)
	}
}
