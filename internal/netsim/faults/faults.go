// Package faults is the deterministic fault layer of the simulated data
// plane: per-link random loss, per-router ICMP rate limiting, scheduled
// endpoint blackout windows (M-Lab-style vantage point dropouts), and
// transient route flaps. The real system lives on a hostile Internet —
// spoofed probes get filtered, routers rate-limit ICMP, vantage points
// drop out mid-batch — and the measurement stack above the fabric has to
// survive all of it; this package lets tests and binaries turn those
// failure modes on reproducibly.
//
// Determinism contract: every decision method is a pure function of
// (plan seed, entity identifier, virtual time, per-packet nonce). The
// plan holds no mutable decision state — a shared token count or loss
// history would make concurrent probe batches depend on goroutine
// scheduling, breaking the workers=1 ≡ workers=N bit-identity guarantee
// the probe layer provides. In particular the ICMP limiter models a
// token bucket in virtual time statelessly: each epoch starts with a
// full bucket (replies inside the burst window pass free) and then
// drains to a steady state where a reply passes with probability
// ICMPPass, decided by a deterministic per-packet draw.
//
// All methods are nil-safe: a nil *Plan injects nothing, so the fabric
// hooks run unconditionally at zero cost to fault-free deployments.
package faults

import (
	"fmt"
	"math"
	"sync/atomic"

	"revtr/internal/netsim/ipv4"
	"revtr/internal/netsim/topology"
	"revtr/internal/obs"
)

// Kind enumerates the injectable fault classes.
type Kind uint8

const (
	// KindLinkLoss is a packet lost crossing a link.
	KindLinkLoss Kind = iota
	// KindRateLimit is an ICMP reply suppressed by a router's limiter.
	KindRateLimit
	// KindBlackout is a packet lost to (or never sent from) an endpoint
	// inside a scheduled outage window.
	KindBlackout
	// KindFlap is a packet blackholed on a link that is mid route-flap.
	KindFlap

	numKinds
)

func (k Kind) String() string {
	switch k {
	case KindLinkLoss:
		return "link-loss"
	case KindRateLimit:
		return "icmp-rate-limit"
	case KindBlackout:
		return "blackout"
	case KindFlap:
		return "route-flap"
	}
	return "?"
}

// Blackout is one scheduled endpoint outage: the machine at Addr is dead
// during [FromUS, ToUS). ToUS <= 0 means the outage never ends.
type Blackout struct {
	Addr   ipv4.Addr
	FromUS int64
	ToUS   int64
}

// Default virtual-time parameters (overridable per plan).
const (
	DefaultICMPEpochUS  = 1_000_000  // 1 s limiter epoch
	DefaultICMPBurstUS  = 100_000    // bucket is full for the first 100 ms
	DefaultFlapPeriodUS = 60_000_000 // links re-roll flap state every 60 s
	DefaultFlapDownUS   = 5_000_000  // a flapping link is down for 5 s
)

// Plan is a seed-deterministic fault plan. Configure the exported fields
// (or Parse a spec string), Validate, and attach to a fabric with
// SetFaults. The zero value injects nothing.
type Plan struct {
	// Seed keys every deterministic draw. Two plans with equal fields
	// inject exactly the same faults.
	Seed uint64

	// LinkLoss is the probability a packet is dropped on each link
	// traversal (drawn per traversal, so longer paths suffer more — the
	// compounding that corrupts hop inference in the traceroute-artifact
	// literature).
	LinkLoss float64

	// ICMPFrac of routers rate-limit the ICMP they originate (echo
	// replies and time-exceeded). For a limiting router each epoch of
	// ICMPEpochUS starts with a full bucket — replies in the first
	// ICMPBurstUS pass free — after which a reply passes with
	// probability ICMPPass (the steady-state refill share).
	ICMPFrac    float64
	ICMPPass    float64
	ICMPEpochUS int64
	ICMPBurstUS int64

	// FlapFrac of links are mid-flap in any given flap period: the link
	// blackholes traffic for the first FlapDownUS of the period and is
	// withdrawn from interdomain egress choices for that window, so
	// packets reroute where an alternative exists and are lost where
	// none does. Which links flap re-rolls every period.
	FlapFrac     float64
	FlapPeriodUS int64
	FlapDownUS   int64

	// Blackouts are the scheduled endpoint outages.
	Blackouts []Blackout

	// Injection tallies per fault kind, recorded by the acting layer
	// (fabric/probe) via Record — decision methods themselves are pure
	// queries and count nothing.
	counts [numKinds]atomic.Uint64

	// total mirrors the sum into an attached registry
	// (faults_injected_total); nil-safe when no registry is attached.
	total *obs.Counter
}

// SetObs attaches the faults_injected_total counter to reg. Call before
// the plan is in use.
func (p *Plan) SetObs(reg *obs.Registry) {
	if p == nil || reg == nil {
		return
	}
	p.total = reg.Counter("faults_injected_total")
}

// Record tallies one injected fault of kind k.
func (p *Plan) Record(k Kind) {
	if p == nil {
		return
	}
	p.counts[k].Add(1)
	p.total.Inc()
}

// Count reports how many faults of kind k were recorded.
func (p *Plan) Count(k Kind) uint64 {
	if p == nil {
		return 0
	}
	return p.counts[k].Load()
}

// Total reports all recorded fault injections.
func (p *Plan) Total() uint64 {
	if p == nil {
		return 0
	}
	var t uint64
	for i := range p.counts {
		t += p.counts[i].Load()
	}
	return t
}

// Enabled reports whether the plan can inject anything at all.
func (p *Plan) Enabled() bool {
	return p != nil && (p.LinkLoss > 0 || p.ICMPFrac > 0 || p.FlapFrac > 0 || len(p.Blackouts) > 0)
}

// Validate rejects unusable plans: NaN/Inf or out-of-range rates and
// negative or inverted time parameters.
func (p *Plan) Validate() error {
	if p == nil {
		return nil
	}
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"loss", p.LinkLoss},
		{"icmp-frac", p.ICMPFrac},
		{"icmp-pass", p.ICMPPass},
		{"flap", p.FlapFrac},
	} {
		if math.IsNaN(f.v) || math.IsInf(f.v, 0) {
			return fmt.Errorf("faults: %s is not a finite number", f.name)
		}
		if f.v < 0 || f.v > 1 {
			return fmt.Errorf("faults: %s=%v outside [0,1]", f.name, f.v)
		}
	}
	for _, d := range []struct {
		name string
		v    int64
	}{
		{"icmp-epoch", p.ICMPEpochUS},
		{"icmp-burst", p.ICMPBurstUS},
		{"flap-period", p.FlapPeriodUS},
		{"flap-down", p.FlapDownUS},
	} {
		if d.v < 0 {
			return fmt.Errorf("faults: %s=%d negative", d.name, d.v)
		}
	}
	if p.ICMPEpochUS > 0 && p.ICMPBurstUS > p.ICMPEpochUS {
		return fmt.Errorf("faults: icmp-burst %d exceeds epoch %d", p.ICMPBurstUS, p.ICMPEpochUS)
	}
	if p.FlapPeriodUS > 0 && p.FlapDownUS > p.FlapPeriodUS {
		return fmt.Errorf("faults: flap-down %d exceeds period %d", p.FlapDownUS, p.FlapPeriodUS)
	}
	for _, b := range p.Blackouts {
		if b.FromUS < 0 {
			return fmt.Errorf("faults: blackout of %s starts at negative time %d", b.Addr, b.FromUS)
		}
		if b.ToUS > 0 && b.ToUS <= b.FromUS {
			return fmt.Errorf("faults: blackout of %s ends (%d) before it starts (%d)", b.Addr, b.ToUS, b.FromUS)
		}
	}
	return nil
}

// icmpEpochUS / flap period accessors with defaults applied.
func (p *Plan) icmpEpochUS() int64 {
	if p.ICMPEpochUS > 0 {
		return p.ICMPEpochUS
	}
	return DefaultICMPEpochUS
}

func (p *Plan) icmpBurstUS() int64 {
	if p.ICMPBurstUS > 0 {
		return p.ICMPBurstUS
	}
	return DefaultICMPBurstUS
}

func (p *Plan) flapPeriodUS() int64 {
	if p.FlapPeriodUS > 0 {
		return p.FlapPeriodUS
	}
	return DefaultFlapPeriodUS
}

func (p *Plan) flapDownUS() int64 {
	if p.FlapDownUS > 0 {
		return p.FlapDownUS
	}
	return DefaultFlapDownUS
}

// DropOnLink reports whether the traversal of link l at virtual time tUS
// by the packet with per-packet nonce is lost.
func (p *Plan) DropOnLink(l topology.LinkID, tUS int64, nonce uint64) bool {
	if p == nil || p.LinkLoss <= 0 {
		return false
	}
	return draw(p.Seed, uint64(KindLinkLoss), uint64(uint32(l)), uint64(tUS), nonce) < p.LinkLoss
}

// RateLimited reports whether router r suppresses an ICMP reply it would
// originate at virtual time tUS for the packet with the given nonce.
func (p *Plan) RateLimited(r topology.RouterID, tUS int64, nonce uint64) bool {
	if p == nil || p.ICMPFrac <= 0 {
		return false
	}
	// Which routers limit is a stable per-router property of the plan.
	if draw(p.Seed, uint64(KindRateLimit), uint64(uint32(r)), 0, 0) >= p.ICMPFrac {
		return false
	}
	epochUS := p.icmpEpochUS()
	epoch := tUS / epochUS
	if tUS%epochUS < p.icmpBurstUS() {
		return false // bucket still full at epoch start
	}
	return draw(p.Seed, uint64(KindRateLimit)<<8, uint64(uint32(r)), uint64(epoch), nonce) >= p.ICMPPass
}

// LinkFlapped reports whether link l is mid route-flap (withdrawn and
// blackholing) at virtual time tUS.
func (p *Plan) LinkFlapped(l topology.LinkID, tUS int64) bool {
	if p == nil || p.FlapFrac <= 0 {
		return false
	}
	period := p.flapPeriodUS()
	if tUS%period >= p.flapDownUS() {
		return false
	}
	return draw(p.Seed, uint64(KindFlap), uint64(uint32(l)), uint64(tUS/period), 0) < p.FlapFrac
}

// EndpointDown reports whether the machine at a is inside a scheduled
// blackout window at virtual time tUS.
func (p *Plan) EndpointDown(a ipv4.Addr, tUS int64) bool {
	if p == nil {
		return false
	}
	for i := range p.Blackouts {
		b := &p.Blackouts[i]
		if b.Addr == a && tUS >= b.FromUS && (b.ToUS <= 0 || tUS < b.ToUS) {
			return true
		}
	}
	return false
}

// AddBlackout schedules an outage of addr over [fromUS, toUS) (toUS <= 0:
// forever) and returns the plan for chaining.
func (p *Plan) AddBlackout(addr ipv4.Addr, fromUS, toUS int64) *Plan {
	p.Blackouts = append(p.Blackouts, Blackout{Addr: addr, FromUS: fromUS, ToUS: toUS})
	return p
}

// draw maps the mixed inputs to a uniform float64 in [0, 1).
func draw(seed, kind, entity, epoch, nonce uint64) float64 {
	h := mix64(seed ^ kind*0x9e3779b97f4a7c15)
	h = mix64(h ^ entity<<32 ^ epoch)
	h = mix64(h ^ nonce)
	return float64(h>>11) / float64(1<<53)
}

// mix64 is a splitmix64-style finalizer (same family as the fabric's
// deterministic tie-breakers).
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
