package fabric

import (
	"sync"

	"revtr/internal/netsim/topology"
)

// intraTrees caches per-target-router BFS trees within each AS: for a
// target t, tree(t) gives every router in t's AS its hop distance to t and
// the equal-cost next-hop links toward t (IGP shortest path with ECMP).
type intraTrees struct {
	topo *topology.Topology

	mu       sync.Mutex
	byTarget map[topology.RouterID]*intraTree
}

type intraTree struct {
	dist map[topology.RouterID]int32
	next map[topology.RouterID][]topology.LinkID
}

func newIntraTrees(topo *topology.Topology) *intraTrees {
	return &intraTrees{topo: topo, byTarget: make(map[topology.RouterID]*intraTree)}
}

// invalidate drops cached trees (after intradomain link state changes).
func (it *intraTrees) invalidate() {
	it.mu.Lock()
	it.byTarget = make(map[topology.RouterID]*intraTree)
	it.mu.Unlock()
}

func (it *intraTrees) tree(target topology.RouterID) *intraTree {
	it.mu.Lock()
	tr, ok := it.byTarget[target]
	it.mu.Unlock()
	if ok {
		return tr
	}
	tr = it.compute(target)
	it.mu.Lock()
	it.byTarget[target] = tr
	it.mu.Unlock()
	return tr
}

func (it *intraTrees) compute(target topology.RouterID) *intraTree {
	topo := it.topo
	tr := &intraTree{
		dist: make(map[topology.RouterID]int32),
		next: make(map[topology.RouterID][]topology.LinkID),
	}
	tr.dist[target] = 0
	queue := []topology.RouterID{target}
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		for _, e := range topo.IntraNeighbors(x) {
			if topo.Links[e.Link].Down {
				continue
			}
			d, seen := tr.dist[e.To]
			nd := tr.dist[x] + 1
			switch {
			case !seen:
				tr.dist[e.To] = nd
				tr.next[e.To] = append(tr.next[e.To], e.Link)
				queue = append(queue, e.To)
			case d == nd:
				// Equal-cost alternative toward target.
				tr.next[e.To] = append(tr.next[e.To], e.Link)
			}
		}
	}
	return tr
}

// dist returns the hop distance from router from to target within their
// AS, or -1 if unreachable or in different ASes.
func (it *intraTrees) dist(target, from topology.RouterID) int32 {
	if it.topo.Routers[target].AS != it.topo.Routers[from].AS {
		return -1
	}
	tr := it.tree(target)
	d, ok := tr.dist[from]
	if !ok {
		return -1
	}
	return d
}

// nextCands returns the equal-cost next-hop links from from toward target.
func (it *intraTrees) nextCands(target, from topology.RouterID) []topology.LinkID {
	if it.topo.Routers[target].AS != it.topo.Routers[from].AS {
		return nil
	}
	return it.tree(target).next[from]
}
