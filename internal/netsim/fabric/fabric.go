// Package fabric is the simulated data plane: it forwards serialized IPv4
// packets router-by-router over a generated topology under BGP-derived
// interdomain routes and hop-count intradomain routes with hot-potato
// egress selection.
//
// The fabric implements the behaviours Reverse Traceroute depends on and
// contends with: Record Route stamping with per-router address policies,
// tsprespec Timestamp handling, ICMP echo/time-exceeded generation (error
// sources are ingress interfaces while RR reveals egress interfaces —
// Fig 3), spoofed sources (replies route to the spoofed address), option
// filtering ASes, per-flow and per-packet load balancing, and
// destination-based-routing violators (Appx E). Packets are forwarded as
// wire bytes using the in-place mutation routines of the ipv4 package.
package fabric

import (
	"sync/atomic"

	"revtr/internal/netsim/bgp"
	"revtr/internal/netsim/faults"
	"revtr/internal/netsim/ipv4"
	"revtr/internal/netsim/topology"
)

// MaxHops bounds a packet's router traversal, independent of TTL.
const MaxHops = 96

// perHopProcUS is fixed per-router processing latency in microseconds.
const perHopProcUS = 30

// Delivery is a packet arriving at an endpoint (a host address or an
// anycast site).
type Delivery struct {
	Pkt    []byte
	To     ipv4.Addr // destination address the packet was delivered to
	TimeUS int64     // virtual arrival time
	Site   int       // anycast site index, or -1
}

// Result is the outcome of injecting one packet: endpoint deliveries
// (including any replies generated along the way) and the router trace of
// the injected packet itself.
type Result struct {
	Deliveries []Delivery
	// Trace lists routers traversed by the injected packet, in order.
	Trace []topology.RouterID
	// ReachedDst reports whether the injected packet reached its
	// destination endpoint (even if the endpoint chose not to reply).
	ReachedDst bool
}

// AnycastSite is one attachment point of an anycast group: packets routed
// to the group that reach Router in AS Via are delivered to the site.
type AnycastSite struct {
	Name   string
	Via    topology.ASN      // neighbor AS hosting the attachment
	Router topology.RouterID // router in Via where the site machine hangs
}

// AnycastGroup is an anycast prefix with per-AS BGP route choices computed
// by the bgp path-vector engine.
type AnycastGroup struct {
	Prefix ipv4.Prefix
	// ServiceAddr is the address endpoints use for the service.
	ServiceAddr ipv4.Addr
	Routes      *bgp.Routes
	Sites       []AnycastSite
}

// Fabric is the simulated data plane.
type Fabric struct {
	Topo    *topology.Topology
	Routing *bgp.Routing

	seed    uint64
	anycast []*AnycastGroup

	intra *intraTrees

	// faults, when non-nil, is consulted on the walk and reply paths.
	// Decisions are pure functions of (plan, entity, virtual time,
	// nonce), so an attached plan preserves the fabric's determinism.
	faults *faults.Plan

	// Counters (atomic: campaigns drive one fabric from many workers).
	// Conservation invariant: packetsInjected == packetsDelivered +
	// packetsDropped + packetsAbsorbed once all walks have returned —
	// every packet (injected requests and every generated reply alike)
	// terminates in exactly one bucket.
	hopsForwarded    atomic.Uint64
	packetsInjected  atomic.Uint64
	packetsDropped   atomic.Uint64
	packetsDelivered atomic.Uint64
	packetsAbsorbed  atomic.Uint64
}

// HopsForwarded reports the total router hops traversed by all packets.
func (f *Fabric) HopsForwarded() uint64 { return f.hopsForwarded.Load() }

// PacketsInjected reports all packets that entered the fabric: injected
// requests plus every reply generated inside it.
func (f *Fabric) PacketsInjected() uint64 { return f.packetsInjected.Load() }

// PacketsDropped reports packets dropped (filtered, unroutable,
// unresponsive endpoints, TTL exhaustion without reply, injected faults).
func (f *Fabric) PacketsDropped() uint64 { return f.packetsDropped.Load() }

// PacketsDelivered reports packets that reached an endpoint delivery.
func (f *Fabric) PacketsDelivered() uint64 { return f.packetsDelivered.Load() }

// PacketsAbsorbed reports packets consumed by a router that answered
// them (echo reply, time exceeded) — neither delivered nor dropped; the
// answer itself is counted as a new injected packet.
func (f *Fabric) PacketsAbsorbed() uint64 { return f.packetsAbsorbed.Load() }

// SetFaults attaches (or with nil detaches) a fault plan. Attach before
// traffic flows; the hook is nil-safe and free when no plan is set.
func (f *Fabric) SetFaults(p *faults.Plan) { f.faults = p }

// Faults returns the attached fault plan (nil when none).
func (f *Fabric) Faults() *faults.Plan { return f.faults }

// VPDown reports whether the endpoint at a is inside a scheduled
// blackout window at tUS, recording the suppressed probe when it is.
// The probe layer consults it before putting a packet on the wire — a
// blacked-out vantage point cannot send at all.
func (f *Fabric) VPDown(a ipv4.Addr, tUS int64) bool {
	if !f.faults.EndpointDown(a, tUS) {
		return false
	}
	f.faults.Record(faults.KindBlackout)
	return true
}

// New builds a fabric over topo using routing for interdomain next hops.
func New(topo *topology.Topology, routing *bgp.Routing, seed int64) *Fabric {
	return &Fabric{
		Topo:    topo,
		Routing: routing,
		seed:    uint64(seed),
		intra:   newIntraTrees(topo),
	}
}

// AddAnycast registers an anycast group. Later groups take precedence on
// overlap.
func (f *Fabric) AddAnycast(g *AnycastGroup) { f.anycast = append(f.anycast, g) }

// ClearAnycast removes all anycast groups (between TE configurations).
func (f *Fabric) ClearAnycast() { f.anycast = nil }

func (f *Fabric) anycastFor(a ipv4.Addr) *AnycastGroup {
	for i := len(f.anycast) - 1; i >= 0; i-- {
		if f.anycast[i].Prefix.Contains(a) {
			return f.anycast[i]
		}
	}
	return nil
}

// walkCtx carries one packet's forwarding state.
type walkCtx struct {
	res     *Result
	flowID  uint64 // per-flow load-balancing key (constant per measurement flow)
	nonce   uint64 // per-packet entropy for per-packet load balancing
	isReply bool   // replies do not generate further replies
	tUS     int64  // virtual time at the current hop (route choices consult it)
}

// Inject sends pkt into the network at the given router (a host's access
// router or an anycast site's attachment router), at virtual time nowUS.
// flowID should be constant for packets of one logical flow (Paris
// traceroute semantics); nonce must differ per packet.
func (f *Fabric) Inject(at topology.RouterID, pkt []byte, nowUS int64, flowID, nonce uint64) *Result {
	res := &Result{}
	c := &walkCtx{res: res, flowID: flowID, nonce: nonce}
	f.walk(at, topology.None, pkt, nowUS, c)
	return res
}

// walk forwards pkt starting at router cur (arrived via iface arrIface,
// or None if locally injected) until delivery, drop, or hop exhaustion.
func (f *Fabric) walk(cur topology.RouterID, arrIface topology.IfaceID, pkt []byte, tUS int64, c *walkCtx) {
	f.packetsInjected.Add(1)
	topo := f.Topo
	dst := ipv4.PacketDst(pkt)
	hasOpts := ipv4.PacketHeaderLen(pkt) > ipv4.HeaderLen
	prevAS := topology.ASN(topology.None)
	if arrIface != topology.None {
		// Reply walks start on the generating router; mark its AS.
		prevAS = topo.Routers[cur].AS
	}

	for hops := 0; hops < MaxHops; hops++ {
		c.tUS = tUS
		r := topo.Routers[cur]
		if !c.isReply {
			c.res.Trace = append(c.res.Trace, cur)
		}

		// Option filtering at AS ingress.
		if hasOpts && prevAS != r.AS && topo.ASes[r.AS].FiltersOptions {
			f.packetsDropped.Add(1)
			return
		}

		// Destination processing: the packet is for this router.
		if owner, ok := topo.Owner(dst); ok && owner.Kind != topology.OwnerHost && owner.Router == cur {
			f.deliverToRouter(cur, arrIface, pkt, tUS, c)
			return
		}

		// Host delivery: dst is a host hanging off this router.
		if h, ok := topo.HostOf(dst); ok && h.Router == cur {
			f.deliverToHost(h, pkt, tUS, c)
			return
		}

		// Anycast site delivery. The site machine answers echo requests
		// like a host (stamping its service address into RR options), so
		// pings measure catchments and RTTs.
		if g := f.anycastFor(dst); g != nil {
			if site := f.anycastSiteAt(g, cur); site >= 0 {
				if !c.isReply {
					c.res.ReachedDst = true
				}
				c.res.Deliveries = append(c.res.Deliveries, Delivery{
					Pkt: pkt, To: dst, TimeUS: tUS, Site: site,
				})
				f.packetsDelivered.Add(1)
				if !c.isReply && ipv4.PacketProto(pkt) == ipv4.ProtoICMP {
					var hdr ipv4.Header
					if payload, err := hdr.Decode(pkt); err == nil {
						var m ipv4.ICMP
						if m.Decode(payload) == nil && m.Type == ipv4.ICMPEchoRequest {
							reply := ipv4.BuildEchoReply(pkt, dst, 64)
							if hasOpts {
								ipv4.StampRecordRoute(reply, dst)
							}
							f.startReply(cur, reply, tUS, c)
						}
					}
				}
				return
			}
		}

		// Forwarding: TTL first.
		if ipv4.DecrementTTL(pkt) == 0 {
			f.sendTimeExceeded(cur, arrIface, pkt, tUS, c)
			return
		}

		nextIface, ok := f.nextHopIface(cur, dst, ipv4.PacketSrc(pkt), hasOpts, c)
		if !ok {
			f.packetsDropped.Add(1)
			return
		}

		// Stamp options on the way out.
		if hasOpts {
			f.stampTransit(cur, arrIface, nextIface, pkt, tUS)
		}

		link := &topo.Links[topo.Ifaces[nextIface].Link]
		// Injected faults on the chosen link. Flapped interdomain links
		// are withdrawn from egress choices (reroute); a packet can still
		// land on a flapped intradomain link, where it blackholes.
		if f.faults.LinkFlapped(link.ID, tUS) {
			f.faults.Record(faults.KindFlap)
			f.packetsDropped.Add(1)
			return
		}
		if f.faults.DropOnLink(link.ID, tUS, c.nonce) {
			f.faults.Record(faults.KindLinkLoss)
			f.packetsDropped.Add(1)
			return
		}
		nxt, nxtIface := topo.LinkOtherEnd(link.ID, cur)
		tUS += int64(link.LatencyUS) + perHopProcUS
		prevAS = r.AS
		cur, arrIface = nxt, nxtIface
		f.hopsForwarded.Add(1)
	}
	f.packetsDropped.Add(1)
}

// deliverToRouter handles a packet addressed to a router interface or
// loopback.
func (f *Fabric) deliverToRouter(cur topology.RouterID, arrIface topology.IfaceID, pkt []byte, tUS int64, c *walkCtx) {
	topo := f.Topo
	r := topo.Routers[cur]
	if !c.isReply {
		c.res.ReachedDst = true
	}
	if c.isReply {
		// A reply addressed to a router (e.g. a router-sourced probe):
		// deliver it as an endpoint delivery so measurement agents
		// attached to routers can observe it.
		c.res.Deliveries = append(c.res.Deliveries, Delivery{Pkt: pkt, To: ipv4.PacketDst(pkt), TimeUS: tUS, Site: -1})
		f.packetsDelivered.Add(1)
		return
	}
	hasOpts := ipv4.PacketHeaderLen(pkt) > ipv4.HeaderLen
	if !r.RespondsToPing || (hasOpts && !r.RespondsToOptions) {
		f.packetsDropped.Add(1)
		return
	}
	if f.faults.RateLimited(cur, tUS, c.nonce) {
		f.faults.Record(faults.KindRateLimit)
		f.packetsDropped.Add(1)
		return
	}
	src := ipv4.PacketSrc(pkt)
	// The destination stamps its own RR slot before replying (Fig 1c:
	// "D records its address"). The stamped address follows the router's
	// policy; the egress is the interface the reply will leave from.
	replyIface, _ := f.nextHopIface(cur, src, ipv4.PacketDst(pkt), hasOpts, c)
	reply := ipv4.BuildEchoReply(pkt, ipv4.PacketDst(pkt), 64)
	if hasOpts {
		f.stampPolicy(r, arrIface, replyIface, reply, tUS)
	}
	f.packetsAbsorbed.Add(1)
	f.startReply(cur, reply, tUS, c)
}

// deliverToHost handles a packet addressed to an end host.
func (f *Fabric) deliverToHost(h *topology.Host, pkt []byte, tUS int64, c *walkCtx) {
	if f.faults.EndpointDown(h.Addr, tUS) {
		f.faults.Record(faults.KindBlackout)
		f.packetsDropped.Add(1)
		return
	}
	if !c.isReply {
		c.res.ReachedDst = true
	}
	c.res.Deliveries = append(c.res.Deliveries, Delivery{Pkt: pkt, To: h.Addr, TimeUS: tUS, Site: -1})
	f.packetsDelivered.Add(1)
	if c.isReply {
		return
	}
	// Hosts answer echo requests subject to responsiveness.
	hasOpts := ipv4.PacketHeaderLen(pkt) > ipv4.HeaderLen
	if !h.PingResponsive || (hasOpts && !h.RRResponsive) {
		return
	}
	var hdr ipv4.Header
	payload, err := hdr.Decode(pkt)
	if err != nil || hdr.Protocol != ipv4.ProtoICMP {
		return
	}
	var m ipv4.ICMP
	if m.Decode(payload) != nil || m.Type != ipv4.ICMPEchoRequest {
		return
	}
	reply := ipv4.BuildEchoReply(pkt, h.Addr, 64)
	if hasOpts && h.Stamps {
		ipv4.StampRecordRoute(reply, h.Addr)
	}
	f.startReply(h.Router, reply, tUS, c)
}

// startReply forwards a locally generated reply from router at.
func (f *Fabric) startReply(at topology.RouterID, reply []byte, tUS int64, c *walkCtx) {
	if c.isReply {
		return
	}
	rc := &walkCtx{res: c.res, flowID: c.flowID, nonce: c.nonce + 1, isReply: true}
	f.walk(at, topology.None, reply, tUS, rc)
}

// sendTimeExceeded emits the ICMP error for an expired TTL. Its source is
// the arrival (ingress) interface — the classic traceroute behaviour that
// makes traceroute reveal ingress addresses (Fig 3).
func (f *Fabric) sendTimeExceeded(cur topology.RouterID, arrIface topology.IfaceID, pkt []byte, tUS int64, c *walkCtx) {
	r := f.Topo.Routers[cur]
	if !r.RespondsToPing || c.isReply {
		f.packetsDropped.Add(1)
		return
	}
	if f.faults.RateLimited(cur, tUS, c.nonce) {
		f.faults.Record(faults.KindRateLimit)
		f.packetsDropped.Add(1)
		return
	}
	from := r.Loopback
	if arrIface != topology.None {
		from = f.Topo.Ifaces[arrIface].Addr
	}
	te := ipv4.BuildTimeExceeded(pkt, from, 64)
	f.packetsAbsorbed.Add(1)
	f.startReply(cur, te, tUS, c)
}

// stampTransit applies the router's RR/TS stamping policy while
// forwarding.
func (f *Fabric) stampTransit(cur topology.RouterID, arrIface, egrIface topology.IfaceID, pkt []byte, tUS int64) {
	f.stampPolicy(f.Topo.Routers[cur], arrIface, egrIface, pkt, tUS)
}

func (f *Fabric) stampPolicy(r *topology.Router, arrIface, egrIface topology.IfaceID, pkt []byte, tUS int64) {
	var addr ipv4.Addr
	switch r.Stamp {
	case topology.StampEgress:
		if egrIface != topology.None {
			addr = f.Topo.Ifaces[egrIface].Addr
		} else {
			addr = r.Loopback
		}
	case topology.StampIngress:
		if arrIface != topology.None {
			addr = f.Topo.Ifaces[arrIface].Addr
		} else {
			addr = r.Loopback
		}
	case topology.StampLoopback:
		addr = r.Loopback
	case topology.StampPrivate:
		addr = r.PrivateAddr
	case topology.StampNone:
		addr = 0
	}
	if !addr.IsZero() {
		ipv4.StampRecordRoute(pkt, addr)
	}
	// Timestamp: stamp if the prespecified address at the pointer is any
	// of this router's addresses.
	if ts := uint32(tUS / 1000); true {
		if ipv4.StampTimestamp(pkt, r.Loopback, ts) {
			return
		}
		for _, ifid := range r.Ifaces {
			if ipv4.StampTimestamp(pkt, f.Topo.Ifaces[ifid].Addr, ts) {
				return
			}
		}
	}
}

// anycastSiteAt reports which site of g (if any) is attached at router cur.
func (f *Fabric) anycastSiteAt(g *AnycastGroup, cur topology.RouterID) int {
	for i := range g.Sites {
		if g.Sites[i].Router == cur {
			return i
		}
	}
	return -1
}
